package nomad

import (
	"fmt"
	"sort"
	"testing"

	"nomad/internal/factor"
)

// recommendFullSort is the reference implementation Recommend replaced:
// score every candidate, sort all N, truncate. The equivalence test
// pins the heap to it; the benchmarks measure the gap at N ≫ topN.
func recommendFullSort(m *Model, d *Dataset, user, topN int) []Recommendation {
	if topN <= 0 {
		return nil
	}
	recs := make([]Recommendation, 0, m.inner.N)
	for j := 0; j < m.inner.N; j++ {
		if d != nil && d.Rated(user, j) {
			continue
		}
		recs = append(recs, Recommendation{Item: j, Score: m.Predict(user, j)})
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Score != recs[b].Score {
			return recs[a].Score > recs[b].Score
		}
		return recs[a].Item < recs[b].Item
	})
	if len(recs) > topN {
		recs = recs[:topN]
	}
	return recs
}

func testModel(users, items, k int, seed uint64) *Model {
	return &Model{inner: factor.NewInit(users, items, k, seed)}
}

func TestRecommendMatchesFullSort(t *testing.T) {
	m := testModel(40, 500, 8, 11)
	for _, topN := range []int{1, 3, 10, 499, 500, 501, 2000} {
		for user := 0; user < 5; user++ {
			got := m.Recommend(nil, user, topN)
			want := recommendFullSort(m, nil, user, topN)
			if len(got) != len(want) {
				t.Fatalf("topN=%d user=%d: %d recs, want %d", topN, user, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("topN=%d user=%d rank %d: got %+v want %+v", topN, user, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRecommendTieBreaksByItem(t *testing.T) {
	// A zero model scores every item identically; the ranking must
	// still be deterministic: lowest item indices first.
	m := &Model{inner: factor.New(3, 20, 4)}
	recs := m.Recommend(nil, 0, 5)
	if len(recs) != 5 {
		t.Fatalf("got %d recs", len(recs))
	}
	for i, r := range recs {
		if r.Item != i {
			t.Fatalf("rank %d = item %d, want %d (tie-break by index)", i, r.Item, i)
		}
	}
}

// The benchmark pair demonstrates the heap's win when the catalog is
// much larger than the requested list (the serving-path shape).
func benchmarkRecommend(b *testing.B, impl func(*Model, *Dataset, int, int) []Recommendation) {
	const items, topN = 50000, 10
	m := testModel(16, items, 16, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := impl(m, nil, i%16, topN)
		if len(recs) != topN {
			b.Fatalf("got %d recs", len(recs))
		}
	}
}

func BenchmarkRecommendTop10Heap(b *testing.B) {
	benchmarkRecommend(b, func(m *Model, d *Dataset, user, topN int) []Recommendation {
		return m.Recommend(d, user, topN)
	})
}

func BenchmarkRecommendTop10FullSort(b *testing.B) {
	benchmarkRecommend(b, recommendFullSort)
}

func ExampleModel_Recommend() {
	ds, _ := Synthesize("netflix", 0.0002, 9)
	s, _ := NewSession(ds, WithWorkers(2), WithSeed(2), WithStopConditions(MaxEpochs(5)))
	res, _ := s.Run(nil)
	recs := res.Model.Recommend(ds, 0, 3)
	fmt.Println(len(recs))
	// Output: 3
}
