// Loadbalance: §3.3 of the paper in action. One worker is artificially
// slowed 4× (a heterogeneous or overloaded machine); with dynamic load
// balancing on, tokens carry queue-length gossip and route away from
// the straggler, recovering most of the lost throughput.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"nomad"
)

func main() {
	ds, err := nomad.Synthesize("netflix", 0.001, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d ratings; worker 0 runs 4× slower\n\n",
		ds.Users(), ds.Items(), ds.TrainSize())

	const budgetSeconds = 2.0
	type outcome struct {
		label   string
		rmse    float64
		updates int64
	}
	var results []outcome
	for _, balance := range []bool{false, true} {
		cfg := nomad.Config{
			Workers:     4,
			Straggle:    4,
			LoadBalance: balance,
			MaxSeconds:  budgetSeconds,
			Seed:        5,
		}
		res, err := nomad.Train(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "uniform routing     "
		if balance {
			label = "load-balanced (§3.3)"
		}
		results = append(results, outcome{label, res.TestRMSE, res.Updates})
	}
	for _, r := range results {
		fmt.Printf("%s  RMSE %.4f  %12d updates in %.0fs\n", r.label, r.rmse, r.updates, budgetSeconds)
	}
	if results[1].updates > results[0].updates {
		fmt.Println("\nload balancing routed work away from the straggler: more updates,")
		fmt.Println("equal or better RMSE for the same wall-clock budget.")
	} else {
		fmt.Println("\n(no throughput win this run — try a larger dataset or budget)")
	}
}
