// Loadbalance: §3.3 of the paper in action. One worker is artificially
// slowed 4× (a heterogeneous or overloaded machine); with dynamic load
// balancing on, tokens carry queue-length gossip and route away from
// the straggler, recovering most of the lost throughput.
//
//	go run ./examples/loadbalance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nomad"
)

func main() {
	ds, err := nomad.Synthesize("netflix", 0.001, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d ratings; worker 0 runs 4× slower\n\n",
		ds.Users(), ds.Items(), ds.TrainSize())

	const budget = 2 * time.Second
	type outcome struct {
		label   string
		rmse    float64
		updates int64
	}
	var results []outcome
	for _, balance := range []bool{false, true} {
		opts := []nomad.Option{
			nomad.WithWorkers(4),
			nomad.WithStraggler(4),
			nomad.WithSeed(5),
			nomad.WithStopConditions(nomad.MaxDuration(budget)),
		}
		label := "uniform routing     "
		if balance {
			opts = append(opts, nomad.WithLoadBalance())
			label = "load-balanced (§3.3)"
		}
		s, err := nomad.NewSession(ds, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{label, res.TestRMSE, res.Updates})
	}
	for _, r := range results {
		fmt.Printf("%s  RMSE %.4f  %12d updates in %.0fs\n", r.label, r.rmse, r.updates, budget.Seconds())
	}
	if results[1].updates > results[0].updates {
		fmt.Println("\nload balancing routed work away from the straggler: more updates,")
		fmt.Println("equal or better RMSE for the same wall-clock budget.")
	} else {
		fmt.Println("\n(no throughput win this run — try a larger dataset or budget)")
	}
}
