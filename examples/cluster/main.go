// Cluster: the paper's headline scenario — matrix completion on a
// commodity cluster with slow interconnect. NOMAD (asynchronous,
// nomadic tokens) races the bulk-synchronous DSGD on the same simulated
// 8-machine, 1 Gb/s network; compare how much RMSE each buys with the
// same wall-clock budget.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nomad"
)

func main() {
	ds, err := nomad.Synthesize("yahoo", 0.0005, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d ratings "+
		"(yahoo shape: few ratings per item ⇒ communication-bound)\n\n",
		ds.Users(), ds.Items(), ds.TrainSize())

	const budget = 3 * time.Second
	const target = 0.35 // "good enough" RMSE for this dataset
	for _, algo := range []string{"nomad", "dsgd", "dsgdpp", "ccd"} {
		s, err := nomad.NewSession(ds,
			nomad.WithAlgorithm(algo),
			nomad.WithCluster(8, "commodity"),
			nomad.WithWorkers(2),
			nomad.WithSeed(5),
			nomad.WithStopConditions(nomad.MaxDuration(budget)),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		reached := "never"
		for _, p := range res.Trace {
			if p.RMSE <= target {
				reached = fmt.Sprintf("%.2fs", p.Seconds)
				break
			}
		}
		fmt.Printf("%-7s RMSE %.4f after %.1fs; reached %.2f at %-6s (%d msgs, %.1f MB on the wire)\n",
			algo, res.TestRMSE, res.Seconds, target, reached,
			res.MessagesSent, float64(res.BytesSent)/1e6)
	}
	fmt.Println("\nexpected shape (paper Fig 11): NOMAD reaches the target RMSE first;")
	fmt.Println("the bulk-synchronous baselines pay for their synchronization steps.")
}
