// Quickstart: synthesize a small Netflix-shaped dataset, train NOMAD,
// and predict a rating.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nomad"
)

func main() {
	// A small dataset with the Netflix shape: many users, few items,
	// 1–5 star ratings.
	ds, err := nomad.Synthesize("netflix", 0.001, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d train / %d test ratings\n",
		ds.Users(), ds.Items(), ds.TrainSize(), ds.TestSize())

	// Train with defaults: the NOMAD solver, 4 worker goroutines.
	res, err := nomad.Train(ds, nomad.Config{Workers: 4, Epochs: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nconvergence:")
	for _, p := range res.Trace {
		fmt.Printf("  %6.2fs  %12d updates  RMSE %.4f\n", p.Seconds, p.Updates, p.RMSE)
	}
	fmt.Printf("\nfinal test RMSE: %.4f (%d updates in %.2fs)\n",
		res.TestRMSE, res.Updates, res.Seconds)

	// Predict an unseen rating for user 7.
	user := 7
	for item := 0; item < ds.Items(); item++ {
		if !ds.Rated(user, item) {
			fmt.Printf("predicted rating of user %d for unseen item %d: %.2f stars\n",
				user, item, res.Model.Predict(user, item))
			break
		}
	}
}
