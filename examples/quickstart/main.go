// Quickstart: synthesize a small Netflix-shaped dataset, train NOMAD
// through the Session API with a live event stream, and predict a
// rating.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"nomad"
)

func main() {
	// A small dataset with the Netflix shape: many users, few items,
	// 1–5 star ratings.
	ds, err := nomad.Synthesize("netflix", 0.001, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users × %d items, %d train / %d test ratings\n",
		ds.Users(), ds.Items(), ds.TrainSize(), ds.TestSize())

	// A Session is a first-class training run: options instead of a
	// config struct, context cancellation, streamed progress events.
	s, err := nomad.NewSession(ds,
		nomad.WithWorkers(4),
		nomad.WithSeed(1),
		nomad.WithStopConditions(nomad.MaxEpochs(10)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Watch convergence live instead of reading a post-hoc trace.
	events, cancel := s.Subscribe(64)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fmt.Println("\nconvergence:")
		for e := range events {
			if p, ok := e.(nomad.TraceEvent); ok {
				fmt.Printf("  %6.2fs  %12d updates  RMSE %.4f\n", p.Seconds, p.Updates, p.RMSE)
			}
		}
	}()

	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	cancel()
	<-done
	fmt.Printf("\nfinal test RMSE: %.4f (%d updates in %.2fs)\n",
		res.TestRMSE, res.Updates, res.Seconds)

	// Predict an unseen rating for user 7.
	user := 7
	for item := 0; item < ds.Items(); item++ {
		if !ds.Rated(user, item) {
			fmt.Printf("predicted rating of user %d for unseen item %d: %.2f stars\n",
				user, item, res.Model.Predict(user, item))
			break
		}
	}
}
