// Recommend: the workload the paper's introduction motivates — train a
// recommender on star ratings and produce top-N item lists per user,
// excluding what each user has already rated.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"

	"nomad"
)

func main() {
	ds, err := nomad.Synthesize("netflix", 0.002, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d items; audience: %d users; %d observed ratings\n",
		ds.Items(), ds.Users(), ds.TrainSize())

	s, err := nomad.NewSession(ds,
		nomad.WithWorkers(4),
		nomad.WithRank(16),
		nomad.WithSeed(3),
		nomad.WithStopConditions(nomad.MaxEpochs(12)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model trained: test RMSE %.4f\n\n", res.TestRMSE)

	for _, user := range []int{3, 11, 42} {
		history := ds.UserRatings(user)
		fmt.Printf("user %d rated %d items", user, len(history))
		if len(history) > 0 {
			fmt.Printf(" (e.g. item %d → %.0f stars)", history[0].Item, history[0].Value)
		}
		fmt.Println()
		// Recommend streams all items through a bounded top-N heap —
		// the serving-path shape (catalog ≫ list length).
		for rank, rec := range res.Model.Recommend(ds, user, 5) {
			fmt.Printf("  #%d: item %-6d predicted %.2f stars\n", rank+1, rec.Item, rec.Score)
		}
	}
}
