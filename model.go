package nomad

import (
	"fmt"
	"io"
	"sort"

	"nomad/internal/factor"
)

// Model is a trained low-rank factorization: the predicted rating of
// (user, item) is the inner product of their latent factor rows.
type Model struct {
	inner *factor.Model
}

// Predict returns the model's estimate of user's rating for item.
func (m *Model) Predict(user, item int) float64 { return m.inner.Predict(user, item) }

// Rank returns the latent dimension.
func (m *Model) Rank() int { return m.inner.K }

// Users returns the number of user rows.
func (m *Model) Users() int { return m.inner.M }

// Items returns the number of item rows.
func (m *Model) Items() int { return m.inner.N }

// Recommendation is one scored item.
type Recommendation struct {
	Item  int
	Score float64
}

// Recommend returns the topN highest-predicted items for the user,
// excluding items the user already rated in d's training set. Pass a
// nil dataset to rank over all items.
func (m *Model) Recommend(d *Dataset, user, topN int) []Recommendation {
	if topN <= 0 {
		return nil
	}
	recs := make([]Recommendation, 0, m.inner.N)
	for j := 0; j < m.inner.N; j++ {
		if d != nil && d.Rated(user, j) {
			continue
		}
		recs = append(recs, Recommendation{Item: j, Score: m.Predict(user, j)})
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Score != recs[b].Score {
			return recs[a].Score > recs[b].Score
		}
		return recs[a].Item < recs[b].Item
	})
	if len(recs) > topN {
		recs = recs[:topN]
	}
	return recs
}

// Save serializes the model in the repository's binary format.
func (m *Model) Save(w io.Writer) error { return m.inner.WriteBinary(w) }

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	inner, err := factor.ReadBinary(r)
	if err != nil {
		return nil, fmt.Errorf("nomad: %w", err)
	}
	return &Model{inner: inner}, nil
}
