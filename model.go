package nomad

import (
	"fmt"
	"io"

	"nomad/internal/factor"
)

// recHeap is a bounded min-heap of recommendations ordered worst-first
// (lowest score at the root; on equal scores the larger item index is
// "worse", matching Recommend's deterministic tie-breaking). Keeping
// only the current top-N makes Recommend O(N·log topN) over N items
// instead of the O(N·log N) full sort.
type recHeap []Recommendation

// worse reports whether a ranks below b in the final ordering.
func worse(a, b Recommendation) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

func (h recHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h recHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && worse(h[l], h[min]) {
			min = l
		}
		if r < len(h) && worse(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// offer inserts rec if the heap is below capacity topN, or replaces
// the current worst if rec outranks it.
func (h *recHeap) offer(rec Recommendation, topN int) {
	if len(*h) < topN {
		*h = append(*h, rec)
		h.siftUp(len(*h) - 1)
		return
	}
	if worse(rec, (*h)[0]) {
		return
	}
	(*h)[0] = rec
	h.siftDown(0)
}

// sorted pops the heap into best-first order, consuming it.
func (h recHeap) sorted() []Recommendation {
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		h[:n].siftDown(0)
	}
	return h
}

// Model is a trained low-rank factorization: the predicted rating of
// (user, item) is the inner product of their latent factor rows.
type Model struct {
	inner *factor.Model
}

// Predict returns the model's estimate of user's rating for item.
func (m *Model) Predict(user, item int) float64 { return m.inner.Predict(user, item) }

// Rank returns the latent dimension.
func (m *Model) Rank() int { return m.inner.K }

// Precision returns the element type of the factor storage; see
// WithPrecision.
func (m *Model) Precision() Precision { return Precision(m.inner.Precision()) }

// Users returns the number of user rows.
func (m *Model) Users() int { return m.inner.M }

// Items returns the number of item rows.
func (m *Model) Items() int { return m.inner.N }

// Recommendation is one scored item.
type Recommendation struct {
	Item  int
	Score float64
}

// Recommend returns the topN highest-predicted items for the user,
// excluding items the user already rated in d's training set. Pass a
// nil dataset to rank over all items. Ties rank the lower item index
// first.
//
// Scores are streamed through a bounded min-heap of size topN, so the
// cost is O(N·log topN) with no per-call N-sized allocation — the
// serving-path shape, where the catalog N is large and topN is 10.
func (m *Model) Recommend(d *Dataset, user, topN int) []Recommendation {
	if topN <= 0 {
		return nil
	}
	h := make(recHeap, 0, topN)
	for j := 0; j < m.inner.N; j++ {
		if d != nil && d.Rated(user, j) {
			continue
		}
		h.offer(Recommendation{Item: j, Score: m.Predict(user, j)}, topN)
	}
	return h.sorted()
}

// Save serializes the model in the repository's binary format.
func (m *Model) Save(w io.Writer) error { return m.inner.WriteBinary(w) }

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	inner, err := factor.ReadBinary(r)
	if err != nil {
		return nil, fmt.Errorf("nomad: %w", err)
	}
	return &Model{inner: inner}, nil
}
