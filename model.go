package nomad

import (
	"fmt"
	"io"

	"nomad/internal/factor"
	"nomad/internal/topn"
)

// Model is a trained low-rank factorization: the predicted rating of
// (user, item) is the inner product of their latent factor rows.
type Model struct {
	inner *factor.Model
}

// Predict returns the model's estimate of user's rating for item.
func (m *Model) Predict(user, item int) float64 { return m.inner.Predict(user, item) }

// Rank returns the latent dimension.
func (m *Model) Rank() int { return m.inner.K }

// Precision returns the element type of the factor storage; see
// WithPrecision.
func (m *Model) Precision() Precision { return Precision(m.inner.Precision()) }

// Users returns the number of user rows.
func (m *Model) Users() int { return m.inner.M }

// Items returns the number of item rows.
func (m *Model) Items() int { return m.inner.N }

// Recommendation is one scored item.
type Recommendation struct {
	Item  int
	Score float64
}

// Recommend returns the topN highest-predicted items for the user,
// excluding items the user already rated in d's training set. Pass a
// nil dataset to rank over all items. Ties rank the lower item index
// first.
//
// Scores are streamed through a bounded min-heap of size topN
// (internal/topn — the same heap and ordering the nomad-serve
// scatter/gather path uses), so the cost is O(N·log topN) with no
// per-call N-sized allocation — the serving-path shape, where the
// catalog N is large and topN is 10.
func (m *Model) Recommend(d *Dataset, user, topN int) []Recommendation {
	if topN <= 0 {
		return nil
	}
	h := topn.NewHeap(topN)
	for j := 0; j < m.inner.N; j++ {
		if d != nil && d.Rated(user, j) {
			continue
		}
		h.Offer(topn.Rec{Item: int32(j), Score: m.Predict(user, j)})
	}
	recs := h.Sorted()
	out := make([]Recommendation, len(recs))
	for i, r := range recs {
		out[i] = Recommendation{Item: int(r.Item), Score: r.Score}
	}
	return out
}

// Save serializes the model in the repository's binary format.
func (m *Model) Save(w io.Writer) error { return m.inner.WriteBinary(w) }

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	inner, err := factor.ReadBinary(r)
	if err != nil {
		return nil, fmt.Errorf("nomad: %w", err)
	}
	return &Model{inner: inner}, nil
}
