package nomad

import (
	"fmt"
	"io"

	"nomad/internal/dataset"
	"nomad/internal/metrics"
	"nomad/internal/sparse"
)

// Rating is one observed (user, item, value) triple.
type Rating struct {
	User, Item int
	Value      float64
}

// Dataset is a train/test split over a rating matrix.
type Dataset struct {
	inner *dataset.Dataset
}

// NewDataset builds a dataset from explicit train and test ratings
// over a users×items matrix. Test ratings may reference only users and
// items that also appear in the training set if meaningful evaluation
// is desired, but this is not enforced.
func NewDataset(users, items int, trainRatings, testRatings []Rating) (*Dataset, error) {
	b := sparse.NewBuilder(users, items, len(trainRatings))
	for _, r := range trainRatings {
		b.Add(r.User, r.Item, r.Value)
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("nomad: building training matrix: %w", err)
	}
	test := make([]sparse.Entry, 0, len(testRatings))
	for _, r := range testRatings {
		if r.User < 0 || r.User >= users || r.Item < 0 || r.Item >= items {
			return nil, fmt.Errorf("nomad: test rating (%d,%d) out of range", r.User, r.Item)
		}
		test = append(test, sparse.Entry{Row: int32(r.User), Col: int32(r.Item), Val: r.Value})
	}
	return &Dataset{inner: &dataset.Dataset{Name: "custom", Train: m, Test: test}}, nil
}

// Split builds a dataset from one list of ratings, holding out the
// given fraction (e.g. 0.1) as the test set. Held-out ratings whose
// user or item would otherwise vanish from training are kept in train.
func Split(users, items int, ratings []Rating, testFraction float64, seed uint64) (*Dataset, error) {
	b := sparse.NewBuilder(users, items, len(ratings))
	for _, r := range ratings {
		b.Add(r.User, r.Item, r.Value)
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("nomad: building rating matrix: %w", err)
	}
	ds, err := dataset.FromMatrix("custom", m, testFraction, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}

// Synthesize generates a dataset with the shape of one of the paper's
// benchmarks — profile is "netflix", "yahoo" or "hugewiki" — at the
// given scale (fraction of the original size; 0.002 is a comfortable
// laptop scale).
func Synthesize(profile string, scale float64, seed uint64) (*Dataset, error) {
	spec, err := dataset.ByName(profile, scale)
	if err != nil {
		return nil, err
	}
	spec.Seed = seed
	ds, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}

// Users returns the number of user rows.
func (d *Dataset) Users() int { return d.inner.Rows() }

// Items returns the number of item columns.
func (d *Dataset) Items() int { return d.inner.Cols() }

// TrainSize returns the number of training ratings.
func (d *Dataset) TrainSize() int { return d.inner.Train.NNZ() }

// TestSize returns the number of held-out test ratings.
func (d *Dataset) TestSize() int { return len(d.inner.Test) }

// UserRatings returns the training ratings of one user.
func (d *Dataset) UserRatings(user int) []Rating {
	cols, vals := d.inner.Train.Row(user)
	out := make([]Rating, len(cols))
	for x, j := range cols {
		out[x] = Rating{User: user, Item: int(j), Value: vals[x]}
	}
	return out
}

// RatedItems returns the ascending-sorted item ids the user rated in
// the training set — the serving layer's exclusion list shape. The
// slice aliases internal storage and must not be modified.
func (d *Dataset) RatedItems(user int) []int32 {
	cols, _ := d.inner.Train.Row(user)
	return cols
}

// Rated reports whether the training set contains (user, item).
func (d *Dataset) Rated(user, item int) bool {
	_, ok := d.inner.Train.At(user, item)
	return ok
}

// RMSE evaluates a model on this dataset's test split.
func (d *Dataset) RMSE(m *Model) float64 {
	return metrics.RMSE(m.inner, d.inner.Test)
}

// RankingQuality summarizes top-K recommendation quality on the test
// split: mean precision@K, recall@K and NDCG@K over test users, where
// an item is relevant if its held-out rating is at least the given
// threshold. Items from each user's training row are excluded from the
// candidate ranking.
type RankingQuality struct {
	Users      int
	K          int
	PrecisionK float64
	RecallK    float64
	NDCGK      float64
}

// Ranking evaluates the model's top-K recommendations against the test
// split.
func (d *Dataset) Ranking(m *Model, k int, relevantAtLeast float64) RankingQuality {
	rep := metrics.Ranking(m.inner, d.inner.Train, d.inner.Test, k, relevantAtLeast)
	return RankingQuality{
		Users:      rep.Users,
		K:          rep.K,
		PrecisionK: rep.PrecisionK,
		RecallK:    rep.RecallK,
		NDCGK:      rep.NDCGK,
	}
}

// WriteTrainMatrix writes the training matrix in the repository's text
// format ("rows cols nnz" header then "user item value" lines).
func (d *Dataset) WriteTrainMatrix(w io.Writer) error {
	return d.inner.Train.WriteText(w)
}

// ReadDataset reads a text-format rating matrix (see WriteTrainMatrix)
// and splits it into train and test portions.
func ReadDataset(r io.Reader, testFraction float64, seed uint64) (*Dataset, error) {
	m, err := sparse.ReadText(r)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.FromMatrix("file", m, testFraction, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}
