// Package vecmath provides the dense linear-algebra kernels used by the
// matrix-completion algorithms: inner products, fused SGD updates on
// factor rows, Gram-matrix accumulation and a small Cholesky solver for
// the alternating-least-squares baselines.
//
// All kernels operate on float64 slices. Hot paths avoid bounds checks
// where the compiler can prove lengths and never allocate.
package vecmath

import (
	"errors"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
//
//nomad:noalloc
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2Sq returns the squared Euclidean norm of a.
//
//nomad:noalloc
func Norm2Sq(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
//
//nomad:noalloc
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vecmath: Axpy length mismatch")
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
//
//nomad:noalloc
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// SGDUpdate performs one stochastic gradient step for the square-loss
// matrix-completion objective on a single rating, updating the user row
// w and item row h in place:
//
//	e   = rating − ⟨w, h⟩
//	w ← w + step·(e·h − λ·w)
//	h ← h + step·(e·w_old − λ·h)
//
// This is the update of NOMAD Algorithm 1 lines 17–20 (with the gradient
// sign corrected; the paper's displayed equations (9)–(10) have a
// transcription sign slip). Both rows are read at their old values, as a
// simultaneous update requires. It returns the prediction error e.
//
//nomad:noalloc
func SGDUpdate(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdate length mismatch")
	}
	e := rating - Dot(w, h)
	se := step * e
	sl := step * lambda
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + se*hl - sl*wl
		h[l] = hl + se*wl - sl*hl
	}
	return e
}

// SGDUpdateGrad performs the generic separable-loss SGD step of the
// paper's §6 extension, with the negative-gradient scalar g already
// computed by a loss.Loss:
//
//	w ← w + step·(g·h − λ·w)
//	h ← h + step·(g·w_old − λ·h)
//
// With g = rating − ⟨w,h⟩ this is exactly SGDUpdate.
//
//nomad:noalloc
func SGDUpdateGrad(w, h []float64, g, step, lambda float64) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	sg := step * g
	sl := step * lambda
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + sg*hl - sl*wl
		h[l] = hl + sg*wl - sl*hl
	}
}

// AddOuterScaled accumulates g += x xᵀ * alpha into the k×k matrix g
// stored row-major. Only the upper triangle (including diagonal) is
// written; use SymmetrizeLower to fill the rest when needed.
func AddOuterScaled(g []float64, x []float64, alpha float64, k int) {
	if len(g) != k*k || len(x) != k {
		panic("vecmath: AddOuterScaled dimension mismatch")
	}
	for i := 0; i < k; i++ {
		xi := alpha * x[i]
		row := g[i*k : i*k+k]
		for j := i; j < k; j++ {
			row[j] += xi * x[j]
		}
	}
}

// SymmetrizeLower copies the upper triangle of the k×k row-major matrix
// g onto its lower triangle.
func SymmetrizeLower(g []float64, k int) {
	for i := 1; i < k; i++ {
		for j := 0; j < i; j++ {
			g[i*k+j] = g[j*k+i]
		}
	}
}

// ErrNotPositiveDefinite is returned by CholeskySolve when the system
// matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("vecmath: matrix not positive definite")

// CholeskySolve solves the symmetric positive-definite system A x = b
// for x, where A is k×k row-major (only its upper triangle is read) and
// b has length k. A is overwritten with its Cholesky factor and b with
// the solution. This is the inner solver of the ALS update
// wᵢ ← (HᵀΩᵢHΩᵢ + λ|Ωᵢ|I)⁻¹ Hᵀaᵢ (paper eq. (3) rewritten as M⁻¹b).
func CholeskySolve(a []float64, b []float64, k int) error {
	if len(a) != k*k || len(b) != k {
		panic("vecmath: CholeskySolve dimension mismatch")
	}
	// Upper-triangular Cholesky: A = Uᵀ U, computed in place in the
	// upper triangle of a.
	for j := 0; j < k; j++ {
		d := a[j*k+j]
		for r := 0; r < j; r++ {
			u := a[r*k+j]
			d -= u * u
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		a[j*k+j] = d
		inv := 1 / d
		for c := j + 1; c < k; c++ {
			s := a[j*k+c]
			for r := 0; r < j; r++ {
				s -= a[r*k+j] * a[r*k+c]
			}
			a[j*k+c] = s * inv
		}
	}
	// Forward solve Uᵀ y = b.
	for i := 0; i < k; i++ {
		s := b[i]
		for r := 0; r < i; r++ {
			s -= a[r*k+i] * b[r]
		}
		b[i] = s / a[i*k+i]
	}
	// Back solve U x = y.
	for i := k - 1; i >= 0; i-- {
		s := b[i]
		for c := i + 1; c < k; c++ {
			s -= a[i*k+c] * b[c]
		}
		b[i] = s / a[i*k+i]
	}
	return nil
}

// MatVec computes y = A x for a k×k row-major A. y must not alias x.
func MatVec(a, x, y []float64, k int) {
	if len(a) != k*k || len(x) != k || len(y) != k {
		panic("vecmath: MatVec dimension mismatch")
	}
	for i := 0; i < k; i++ {
		y[i] = Dot(a[i*k:i*k+k], x)
	}
}
