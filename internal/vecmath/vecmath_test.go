package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nomad/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2Sq(t *testing.T) {
	if got := Norm2Sq([]float64{3, 4}); got != 25 {
		t.Fatalf("Norm2Sq = %v, want 25", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2, 4}
	Scale(0.5, x)
	want := []float64{0.5, -1, 2}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Scale = %v, want %v", x, want)
		}
	}
}

// TestSGDUpdateReducesError checks the defining property of the SGD
// step: for a small enough step size, the squared prediction error on
// the touched rating decreases. The quick.Check rand is pinned — the
// property holds across this seeded sample but is not a theorem for
// arbitrary inputs (a large residual against long rows can overshoot),
// and an unpinned global rand made the test fail rarely and
// unreproducibly, against this repository's single-seed determinism.
func TestSGDUpdateReducesError(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		k := 4 + rr.Intn(12)
		w := make([]float64, k)
		h := make([]float64, k)
		for i := range w {
			w[i] = rr.Uniform(-1, 1)
			h[i] = rr.Uniform(-1, 1)
		}
		rating := rr.Uniform(-5, 5)
		before := rating - Dot(w, h)
		SGDUpdate(w, h, rating, 0.01, 0.001)
		after := rating - Dot(w, h)
		return math.Abs(after) <= math.Abs(before)+1e-12
	}, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSGDUpdateMatchesGradient verifies that the update equals an exact
// simultaneous gradient step computed independently.
func TestSGDUpdateMatchesGradient(t *testing.T) {
	w := []float64{0.5, -0.25, 0.75}
	h := []float64{-0.1, 0.4, 0.2}
	w0 := append([]float64(nil), w...)
	h0 := append([]float64(nil), h...)
	rating, step, lambda := 1.3, 0.05, 0.02

	e := rating - Dot(w0, h0)
	wantW := make([]float64, 3)
	wantH := make([]float64, 3)
	for l := 0; l < 3; l++ {
		wantW[l] = w0[l] + step*(e*h0[l]-lambda*w0[l])
		wantH[l] = h0[l] + step*(e*w0[l]-lambda*h0[l])
	}
	gotE := SGDUpdate(w, h, rating, step, lambda)
	if !almostEqual(gotE, e, 1e-15) {
		t.Fatalf("returned error %v, want %v", gotE, e)
	}
	for l := 0; l < 3; l++ {
		if !almostEqual(w[l], wantW[l], 1e-15) || !almostEqual(h[l], wantH[l], 1e-15) {
			t.Fatalf("update mismatch at %d: w=%v h=%v", l, w[l], h[l])
		}
	}
}

func TestSGDUpdateRegularizationShrinks(t *testing.T) {
	// With rating exactly predicted, the only force is the regularizer,
	// which must shrink both rows.
	w := []float64{1, 0}
	h := []float64{1, 0}
	rating := Dot(w, h)
	SGDUpdate(w, h, rating, 0.1, 0.5)
	if w[0] >= 1 || h[0] >= 1 {
		t.Fatalf("regularizer did not shrink: w=%v h=%v", w, h)
	}
}

func TestAddOuterScaledAndSymmetrize(t *testing.T) {
	k := 3
	g := make([]float64, k*k)
	x := []float64{1, 2, 3}
	AddOuterScaled(g, x, 2, k)
	SymmetrizeLower(g, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := 2 * x[i] * x[j]
			if g[i*k+j] != want {
				t.Fatalf("g[%d,%d] = %v, want %v", i, j, g[i*k+j], want)
			}
		}
	}
}

// TestCholeskySolveRandomSPD builds random SPD systems A = BᵀB + I and
// verifies the solver inverts them: property-based via testing/quick.
func TestCholeskySolveRandomSPD(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		k := 2 + r.Intn(10)
		// A = BᵀB + I (SPD by construction).
		b := make([]float64, k*k)
		for i := range b {
			b[i] = r.Uniform(-1, 1)
		}
		a := make([]float64, k*k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += b[l*k+i] * b[l*k+j]
				}
				if i == j {
					s++
				}
				a[i*k+j] = s
			}
		}
		aCopy := append([]float64(nil), a...)
		xTrue := make([]float64, k)
		for i := range xTrue {
			xTrue[i] = r.Uniform(-2, 2)
		}
		rhs := make([]float64, k)
		MatVec(aCopy, xTrue, rhs, k)
		if err := CholeskySolve(a, rhs, k); err != nil {
			return false
		}
		for i := range rhs {
			if !almostEqual(rhs[i], xTrue[i], 1e-8) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	k := 4
	a := make([]float64, k*k)
	for i := 0; i < k; i++ {
		a[i*k+i] = 1
	}
	b := []float64{1, 2, 3, 4}
	if err := CholeskySolve(a, b, k); err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if !almostEqual(v, float64(i+1), 1e-12) {
			t.Fatalf("identity solve wrong: %v", b)
		}
	}
}

func TestCholeskySolveRejectsIndefinite(t *testing.T) {
	k := 2
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1: not PD
	b := []float64{1, 1}
	if err := CholeskySolve(a, b, k); err != ErrNotPositiveDefinite {
		t.Fatalf("got err=%v, want ErrNotPositiveDefinite", err)
	}
}

func TestMatVec(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	x := []float64{5, 6}
	y := make([]float64, 2)
	MatVec(a, x, y, 2)
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MatVec = %v, want [17 39]", y)
	}
}

func BenchmarkDotK100(b *testing.B) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(100 - i)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkSGDUpdateK100(b *testing.B) {
	w := make([]float64, 100)
	h := make([]float64, 100)
	for i := range w {
		w[i] = 0.05
		h[i] = 0.05
	}
	for i := 0; i < b.N; i++ {
		SGDUpdate(w, h, 3.5, 0.001, 0.05)
	}
}

func BenchmarkCholeskySolveK100(b *testing.B) {
	k := 100
	base := make([]float64, k*k)
	r := rng.New(1)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			v := r.Uniform(-0.1, 0.1)
			base[i*k+j] = v
			base[j*k+i] = v
		}
		base[i*k+i] += float64(k)
	}
	a := make([]float64, k*k)
	rhs := make([]float64, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a, base)
		for j := range rhs {
			rhs[j] = float64(j)
		}
		if err := CholeskySolve(a, rhs, k); err != nil {
			b.Fatal(err)
		}
	}
}
