package vecmath

import (
	"math"
	"testing"

	"nomad/internal/rng"
)

// kernelWidths covers every specialization boundary: below, at and
// above each unroll width, plus the tail cases of the generic kernel.
var kernelWidths = []int{1, 7, 8, 15, 16, 32, 33}

// fill populates a with uniform values in [-1, 1), the magnitude range
// of factor entries in this repository.
func fill(r *rng.Source, a []float64) {
	for i := range a {
		a[i] = r.Uniform(-1, 1)
	}
}

// forcePortable pins kernel dispatch to the portable Go kernels for
// one test. The bit-exactness tests below state the *portable* kernels'
// contract (expression-for-expression identical update arithmetic);
// the asm kernels fuse multiply-adds and are held to the documented
// tolerances in kernels_asm_test.go instead.
func forcePortable(t *testing.T) {
	t.Helper()
	old := SIMDEnabled()
	SetSIMD(false)
	t.Cleanup(func() { SetSIMD(old) })
}

// dotTolerance bounds how far a reassociated dot product may sit from
// the reference sequential one. Both orderings have forward error at
// most (n−1)·u·Σ|aᵢbᵢ| with u = 2⁻⁵³ (standard recursive-summation
// analysis, e.g. Higham, "Accuracy and Stability of Numerical
// Algorithms", §4.2 — blocked summation is strictly tighter), so their
// difference is at most twice that. The bound is exact arithmetic, not
// a fudge factor: a kernel that reorders products any further fails.
func dotTolerance(a, b []float64) float64 {
	const u = 0x1p-53
	var s float64
	for i := range a {
		s += math.Abs(a[i] * b[i])
	}
	return 2 * float64(len(a)) * u * s
}

// TestDotKernelsMatchReference checks every specialized dot against
// the reference Dot across widths and random inputs, within the
// summation-error tolerance above (bit-for-bit equality is not
// required only because the accumulators reassociate the sum).
func TestDotKernelsMatchReference(t *testing.T) {
	r := rng.New(11)
	for _, k := range kernelWidths {
		kern := KernelFor(k)
		if kern.K != k {
			t.Fatalf("KernelFor(%d).K = %d", k, kern.K)
		}
		for trial := 0; trial < 200; trial++ {
			a := make([]float64, k)
			b := make([]float64, k)
			fill(r, a)
			fill(r, b)
			want := Dot(a, b)
			got := kern.Dot(a, b)
			if tol := dotTolerance(a, b); math.Abs(got-want) > tol {
				t.Fatalf("K=%d trial %d: kernel dot %v, reference %v, |diff| %g > tol %g",
					k, trial, got, want, math.Abs(got-want), tol)
			}
			if g2 := DotKernel(k)(a, b); g2 != got {
				t.Fatalf("K=%d: DotKernel disagrees with KernelFor.Dot", k)
			}
			if gen := DotUnrolled(a, b); math.Abs(gen-want) > dotTolerance(a, b) {
				t.Fatalf("K=%d: DotUnrolled %v vs reference %v", k, gen, want)
			}
		}
	}
}

// TestGradKernelBitIdentical: the specialized grad step uses
// expression-for-expression the same per-element arithmetic as the
// reference SGDUpdateGrad (only the dot product reassociates, and
// there is no dot product here), so given the same g the results must
// match bit for bit.
func TestGradKernelBitIdentical(t *testing.T) {
	forcePortable(t)
	r := rng.New(12)
	for _, k := range kernelWidths {
		kern := KernelFor(k)
		for trial := 0; trial < 100; trial++ {
			w := make([]float64, k)
			h := make([]float64, k)
			fill(r, w)
			fill(r, h)
			wRef := append([]float64(nil), w...)
			hRef := append([]float64(nil), h...)
			g := r.Uniform(-2, 2)
			step := r.Uniform(0, 0.1)
			lambda := r.Uniform(0, 0.2)
			SGDUpdateGrad(wRef, hRef, g, step, lambda)
			kern.Grad(w, h, g, step, lambda)
			for l := 0; l < k; l++ {
				if w[l] != wRef[l] || h[l] != hRef[l] {
					t.Fatalf("K=%d trial %d elem %d: kernel (%v,%v) != reference (%v,%v)",
						k, trial, l, w[l], h[l], wRef[l], hRef[l])
				}
			}
		}
	}
}

// TestFusedStepDecomposition pins down the fused kernel exactly: its
// residual equals rating − Dot_kernel(w,h) bit for bit, and its row
// update is bit-identical to SGDUpdateGrad applied with that residual.
func TestFusedStepDecomposition(t *testing.T) {
	forcePortable(t)
	r := rng.New(13)
	for _, k := range kernelWidths {
		kern := KernelFor(k)
		for trial := 0; trial < 100; trial++ {
			w := make([]float64, k)
			h := make([]float64, k)
			fill(r, w)
			fill(r, h)
			wRef := append([]float64(nil), w...)
			hRef := append([]float64(nil), h...)
			rating := r.Uniform(-5, 5)
			step := r.Uniform(0, 0.1)
			lambda := r.Uniform(0, 0.2)

			wantE := rating - kern.Dot(w, h)
			e := kern.Step(w, h, rating, step, lambda)
			if e != wantE {
				t.Fatalf("K=%d: fused residual %v != rating − kernel dot %v", k, e, wantE)
			}
			SGDUpdateGrad(wRef, hRef, e, step, lambda)
			for l := 0; l < k; l++ {
				if w[l] != wRef[l] || h[l] != hRef[l] {
					t.Fatalf("K=%d trial %d elem %d: fused (%v,%v) != reference-at-same-e (%v,%v)",
						k, trial, l, w[l], h[l], wRef[l], hRef[l])
				}
			}
		}
	}
}

// TestFusedStepMatchesSGDUpdate compares the fused kernel end to end
// against the reference SGDUpdate. The residuals differ only by the
// dot reassociation, so each updated element differs by at most
// step·|δe|·|partner| plus one rounding of that perturbation.
func TestFusedStepMatchesSGDUpdate(t *testing.T) {
	forcePortable(t)
	r := rng.New(14)
	for _, k := range kernelWidths {
		kern := KernelFor(k)
		for trial := 0; trial < 100; trial++ {
			w := make([]float64, k)
			h := make([]float64, k)
			fill(r, w)
			fill(r, h)
			wRef := append([]float64(nil), w...)
			hRef := append([]float64(nil), h...)
			rating := r.Uniform(-5, 5)
			step := r.Uniform(0, 0.1)
			lambda := r.Uniform(0, 0.2)

			deltaE := dotTolerance(w, h)
			eRef := SGDUpdate(wRef, hRef, rating, step, lambda)
			e := kern.Step(w, h, rating, step, lambda)
			if math.Abs(e-eRef) > deltaE {
				t.Fatalf("K=%d: fused residual %v vs reference %v beyond dot tolerance %g",
					k, e, eRef, deltaE)
			}
			for l := 0; l < k; l++ {
				// |w − wRef| ≤ step·δe·|h_old| + rounding; h_old here is
				// bounded by the post-update value's neighbourhood, so a
				// couple of ULPs of headroom covers the final rounding.
				tol := step*deltaE*(math.Abs(hRef[l])+1) + 4*math.Abs(wRef[l])*0x1p-53
				if math.Abs(w[l]-wRef[l]) > tol {
					t.Fatalf("K=%d elem %d: fused w %v vs reference %v (tol %g)", k, l, w[l], wRef[l], tol)
				}
				tol = step*deltaE*(math.Abs(wRef[l])+1) + 4*math.Abs(hRef[l])*0x1p-53
				if math.Abs(h[l]-hRef[l]) > tol {
					t.Fatalf("K=%d elem %d: fused h %v vs reference %v (tol %g)", k, l, h[l], hRef[l], tol)
				}
			}
		}
	}
}

// TestFusedSGDStepGeneric covers the exported generic fused kernel on
// its own (KernelFor routes non-common widths to it, but it is part of
// the public surface and must hold for the common widths too).
func TestFusedSGDStepGeneric(t *testing.T) {
	r := rng.New(15)
	for _, k := range kernelWidths {
		w := make([]float64, k)
		h := make([]float64, k)
		fill(r, w)
		fill(r, h)
		wRef := append([]float64(nil), w...)
		hRef := append([]float64(nil), h...)
		rating := r.Uniform(-5, 5)

		wantE := rating - DotUnrolled(w, h)
		e := FusedSGDStep(w, h, rating, 0.05, 0.01)
		if e != wantE {
			t.Fatalf("K=%d: FusedSGDStep residual %v, want %v", k, e, wantE)
		}
		SGDUpdateGrad(wRef, hRef, e, 0.05, 0.01)
		for l := 0; l < k; l++ {
			if w[l] != wRef[l] || h[l] != hRef[l] {
				t.Fatalf("K=%d elem %d: FusedSGDStep diverges from reference at equal e", k, l)
			}
		}
	}
}

// TestItemPassMatchesPerRatingLoop: the batched kernel must be
// bit-identical to calling Kernel.Step per rating with the step size
// looked up from the same table — it is the same arithmetic with the
// per-rating overheads hoisted, so exact equality is required.
func TestItemPassMatchesPerRatingLoop(t *testing.T) {
	if ReferenceOnly() {
		t.Skip("reference mode has no batched kernel by design")
	}
	r := rng.New(16)
	for _, k := range kernelWidths {
		kern := KernelFor(k)
		if kern.ItemPass == nil {
			t.Fatalf("K=%d: ItemPass missing", k)
		}
		const nUsers, nRatings = 12, 40
		steps := make([]float64, 5) // short table to exercise the slow fallback
		for i := range steps {
			steps[i] = r.Uniform(0.001, 0.1)
		}
		slowCalls := 0
		slow := func(t int) float64 { slowCalls++; return 0.01 / float64(t+1) }

		wData := make([]float64, nUsers*k)
		h := make([]float64, k)
		fill(r, wData)
		fill(r, h)
		users := make([]int32, nRatings)
		vals := make([]float64, nRatings)
		counts := make([]int32, nRatings)
		for x := range users {
			users[x] = int32(r.Intn(nUsers))
			vals[x] = r.Uniform(-3, 3)
			counts[x] = int32(r.Intn(8)) // some past the table boundary
		}

		wRef := append([]float64(nil), wData...)
		hRef := append([]float64(nil), h...)
		countsRef := append([]int32(nil), counts...)
		for x := range users {
			tc := countsRef[x]
			countsRef[x] = tc + 1
			var step float64
			if int(tc) < len(steps) {
				step = steps[tc]
			} else {
				step = 0.01 / float64(int(tc)+1)
			}
			o := int(users[x]) * k
			kern.Step(wRef[o:o+k], hRef, vals[x], step, 0.02)
		}

		kern.ItemPass(wData, users, vals, counts, h, 0.02, steps, slow)
		if slowCalls == 0 {
			t.Fatalf("K=%d: slow fallback never exercised", k)
		}
		for i := range wData {
			if wData[i] != wRef[i] {
				t.Fatalf("K=%d: wData[%d] = %v, per-rating loop %v", k, i, wData[i], wRef[i])
			}
		}
		for i := range h {
			if h[i] != hRef[i] {
				t.Fatalf("K=%d: h[%d] = %v, per-rating loop %v", k, i, h[i], hRef[i])
			}
		}
		for i := range counts {
			if counts[i] != countsRef[i] {
				t.Fatalf("K=%d: counts[%d] = %d, want %d", k, i, counts[i], countsRef[i])
			}
		}
	}
}

func TestKernelPanicsOnMismatch(t *testing.T) {
	for _, fn := range []func(){
		func() { dot8(make([]float64, 7), make([]float64, 8)) },
		func() { dot16(make([]float64, 16), make([]float64, 15)) },
		func() { dot32(make([]float64, 31), make([]float64, 32)) },
		func() { DotUnrolled(make([]float64, 3), make([]float64, 4)) },
		func() { FusedSGDStep(make([]float64, 3), make([]float64, 4), 1, 0.1, 0.1) },
		func() { gradAny(make([]float64, 3), make([]float64, 4), 1, 0.1, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on length mismatch")
				}
			}()
			fn()
		}()
	}
}
