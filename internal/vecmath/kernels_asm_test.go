package vecmath

import (
	"math"
	"sync"
	"testing"

	"nomad/internal/rng"
)

// Equivalence of the assembly kernels against the reference
// implementations, to the documented tolerances.
//
// Error model. The asm kernels differ from the references in exactly
// two ways: the dot product reassociates its sum (multi-accumulator
// blocks), and every multiply-add is fused (one rounding instead of
// two). Both are covered by standard forward-error analysis:
//
//   - dot: either ordering has forward error ≤ n·u·Σ|aᵢbᵢ| (Higham
//     §4.2; FMA strictly tightens it), so reference and asm differ by
//     at most 2·n·u·Σ|aᵢbᵢ| — the same dotTolerance the portable
//     kernels are held to. u = 2⁻⁵³ (f64) or 2⁻²⁴ (f32).
//   - update: w′ = w + sg·h − sl·w evaluated with two roundings (Go)
//     vs fused (asm) differs by at most a few u of the intermediate
//     magnitudes, ≤ C·u·(|w| + |sg·h| + |sl·w|) with C = 8 giving
//     comfortable headroom; add the residual-difference term
//     step·δe·|partner| when e itself came from the dot.
//
// Non-finite inputs (±Inf, NaN) can turn into NaN differently under
// reassociation (∞ − ∞ appears in one order but not another), so for
// those the contract is class equivalence: reference non-finite ⇔ asm
// non-finite. Subnormals get absolute slack of a few
// math.SmallestNonzeroFloat64 on top of the relative bound, since
// flush-free FMA keeps subnormal products the separate rounding loses.
//
// These tests pass trivially (skip) off amd64 or on amd64 hardware
// without AVX2+FMA — CI's cross-compile matrix only builds there, and
// the NOMAD_NO_SIMD test pass covers the fallback dispatch on hardware
// that has the features.

// forceSIMD pins dispatch to the assembly kernels for one test
// (clearing reference mode, which would shadow them), skipping when
// the hardware cannot run them.
func forceSIMD(t *testing.T) {
	t.Helper()
	if !SIMDAvailable() {
		t.Skip("no AVX2/FMA on this machine")
	}
	oldRef, oldSIMD := ReferenceOnly(), SIMDEnabled()
	SetReferenceOnly(false)
	SetSIMD(true)
	t.Cleanup(func() { SetReferenceOnly(oldRef); SetSIMD(oldSIMD) })
}

// asmLengths covers every asm loop boundary: the 16/32-wide blocks, the
// 4/8-wide mid loops, the scalar tails, and off-by-ones around each.
var asmLengths = []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 20, 31, 32, 33, 48, 63, 64, 100, 129}

// updTolerance is the fused-vs-separate rounding bound for one updated
// element (see the error model above).
func updTolerance(w, partner, sg, sl float64) float64 {
	const u, c = 0x1p-53, 8
	return c * u * (math.Abs(w) + math.Abs(sg*partner) + math.Abs(sl*w))
}

func TestSIMDDotMatchesReference(t *testing.T) {
	forceSIMD(t)
	r := rng.New(41)
	for _, n := range asmLengths {
		kern := KernelFor(n)
		for trial := 0; trial < 100; trial++ {
			a := make([]float64, n)
			b := make([]float64, n)
			fill(r, a)
			fill(r, b)
			want := Dot(a, b)
			got := kern.Dot(a, b)
			if tol := dotTolerance(a, b); math.Abs(got-want) > tol {
				t.Fatalf("n=%d trial %d: asm dot %v, reference %v, |diff| %g > tol %g",
					n, trial, got, want, math.Abs(got-want), tol)
			}
		}
	}
}

func TestSIMDStepMatchesReference(t *testing.T) {
	forceSIMD(t)
	r := rng.New(42)
	for _, n := range asmLengths {
		kern := KernelFor(n)
		for trial := 0; trial < 100; trial++ {
			w := make([]float64, n)
			h := make([]float64, n)
			fill(r, w)
			fill(r, h)
			wRef := append([]float64(nil), w...)
			hRef := append([]float64(nil), h...)
			rating := r.Uniform(-5, 5)
			step := r.Uniform(0, 0.1)
			lambda := r.Uniform(0, 0.2)

			// δe ≤ δdot plus one rounding of the subtraction
			// rating − dot on each side.
			eRef := SGDUpdate(wRef, hRef, rating, step, lambda)
			deltaE := dotTolerance(w, h) + 2*math.Abs(eRef)*0x1p-53
			e := kern.Step(w, h, rating, step, lambda)
			if math.Abs(e-eRef) > deltaE {
				t.Fatalf("n=%d: asm residual %v vs reference %v beyond dot tolerance %g",
					n, e, eRef, deltaE)
			}
			sg, sl := step*math.Max(math.Abs(e), math.Abs(eRef)), step*lambda
			for l := 0; l < n; l++ {
				tol := step*deltaE*(math.Abs(hRef[l])+1) + updTolerance(wRef[l], hRef[l], sg, sl)
				if math.Abs(w[l]-wRef[l]) > tol {
					t.Fatalf("n=%d elem %d: asm w %v vs reference %v (tol %g)", n, l, w[l], wRef[l], tol)
				}
				tol = step*deltaE*(math.Abs(wRef[l])+1) + updTolerance(hRef[l], wRef[l], sg, sl)
				if math.Abs(h[l]-hRef[l]) > tol {
					t.Fatalf("n=%d elem %d: asm h %v vs reference %v (tol %g)", n, l, h[l], hRef[l], tol)
				}
			}
		}
	}
}

func TestSIMDGradMatchesReference(t *testing.T) {
	forceSIMD(t)
	r := rng.New(43)
	for _, n := range asmLengths {
		kern := KernelFor(n)
		for trial := 0; trial < 100; trial++ {
			w := make([]float64, n)
			h := make([]float64, n)
			fill(r, w)
			fill(r, h)
			wRef := append([]float64(nil), w...)
			hRef := append([]float64(nil), h...)
			g := r.Uniform(-2, 2)
			step := r.Uniform(0, 0.1)
			lambda := r.Uniform(0, 0.2)
			SGDUpdateGrad(wRef, hRef, g, step, lambda)
			kern.Grad(w, h, g, step, lambda)
			sg, sl := step*g, step*lambda
			for l := 0; l < n; l++ {
				if tol := updTolerance(wRef[l], hRef[l], sg, sl); math.Abs(w[l]-wRef[l]) > tol {
					t.Fatalf("n=%d elem %d: asm w %v vs reference %v (tol %g)", n, l, w[l], wRef[l], tol)
				}
				if tol := updTolerance(hRef[l], wRef[l], sg, sl); math.Abs(h[l]-hRef[l]) > tol {
					t.Fatalf("n=%d elem %d: asm h %v vs reference %v (tol %g)", n, l, h[l], hRef[l], tol)
				}
			}
		}
	}
}

// TestSIMDItemPassBitMatchesStep: the asm item pass calls the same
// fused asm step per rating, so against kern.Step at the same schedule
// it must agree bit for bit (this mirrors the portable item-pass test).
func TestSIMDItemPassBitMatchesStep(t *testing.T) {
	forceSIMD(t)
	r := rng.New(44)
	for _, k := range []int{8, 16, 32, 17} {
		kern := KernelFor(k)
		const nUsers, nRatings = 10, 60
		steps := []float64{0.05, 0.04, 0.03}
		slow := func(t int) float64 { return 0.02 / float64(t+1) }
		wData := make([]float64, nUsers*k)
		h := make([]float64, k)
		fill(r, wData)
		fill(r, h)
		users := make([]int32, nRatings)
		vals := make([]float64, nRatings)
		counts := make([]int32, nRatings)
		for x := range users {
			users[x] = int32(r.Intn(nUsers))
			vals[x] = r.Uniform(-3, 3)
			counts[x] = int32(r.Intn(6))
		}
		wRef := append([]float64(nil), wData...)
		hRef := append([]float64(nil), h...)
		for x := range users {
			tc := counts[x]
			step := slow(int(tc))
			if int(tc) < len(steps) {
				step = steps[tc]
			}
			o := int(users[x]) * k
			kern.Step(wRef[o:o+k], hRef, vals[x], step, 0.02)
		}
		kern.ItemPass(wData, users, vals, counts, h, 0.02, steps, slow)
		for i := range wData {
			if wData[i] != wRef[i] {
				t.Fatalf("K=%d: wData[%d] = %v, per-rating %v", k, i, wData[i], wRef[i])
			}
		}
		for i := range h {
			if h[i] != hRef[i] {
				t.Fatalf("K=%d: h[%d] = %v, per-rating %v", k, i, h[i], hRef[i])
			}
		}
	}
}

// special packs the awkward values the property tests below mix into
// otherwise-random rows.
var special = []float64{
	0, math.Copysign(0, -1),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	0x1p-1040, -0x1p-1035, // deeper subnormals
	0x1p-520, 0x1p510, -0x1p510, // magnitude extremes that stay finite
	math.Inf(1), math.Inf(-1), math.NaN(),
}

// TestSIMDDotSpecialValues drives the asm dot with subnormals and
// non-finite values mixed into random rows. Finite references must
// agree within tolerance (plus absolute subnormal slack); non-finite
// references require a non-finite asm result (class equivalence — the
// exact NaN/Inf split legitimately depends on summation order).
func TestSIMDDotSpecialValues(t *testing.T) {
	forceSIMD(t)
	r := rng.New(45)
	for trial := 0; trial < 400; trial++ {
		n := asmLengths[r.Intn(len(asmLengths))]
		kern := KernelFor(n)
		a := make([]float64, n)
		b := make([]float64, n)
		fill(r, a)
		fill(r, b)
		for injected := 0; injected < 1+r.Intn(3); injected++ {
			a[r.Intn(n)] = special[r.Intn(len(special))]
			if r.Intn(2) == 0 {
				b[r.Intn(n)] = special[r.Intn(len(special))]
			}
		}
		want := Dot(a, b)
		got := kern.Dot(a, b)
		if math.IsNaN(want) || math.IsInf(want, 0) {
			if !math.IsNaN(got) && !math.IsInf(got, 0) {
				t.Fatalf("n=%d: reference %v non-finite, asm %v finite (a=%v b=%v)", n, want, got, a, b)
			}
			continue
		}
		tol := dotTolerance(a, b) + 16*math.SmallestNonzeroFloat64
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: asm dot %v, reference %v, tol %g (a=%v b=%v)", n, got, want, tol, a, b)
		}
	}
}

// TestSIMDGradSpecialValues does the same for the update kernel, where
// subnormal rows exercise FMA's flush-free products.
func TestSIMDGradSpecialValues(t *testing.T) {
	forceSIMD(t)
	r := rng.New(46)
	for trial := 0; trial < 400; trial++ {
		n := asmLengths[r.Intn(len(asmLengths))]
		kern := KernelFor(n)
		w := make([]float64, n)
		h := make([]float64, n)
		fill(r, w)
		fill(r, h)
		for injected := 0; injected < 1+r.Intn(3); injected++ {
			w[r.Intn(n)] = special[r.Intn(len(special))]
			if r.Intn(2) == 0 {
				h[r.Intn(n)] = special[r.Intn(len(special))]
			}
		}
		wRef := append([]float64(nil), w...)
		hRef := append([]float64(nil), h...)
		g := r.Uniform(-2, 2)
		step := r.Uniform(0, 0.1)
		lambda := r.Uniform(0, 0.2)
		SGDUpdateGrad(wRef, hRef, g, step, lambda)
		kern.Grad(w, h, g, step, lambda)
		sg, sl := step*g, step*lambda
		for l := 0; l < n; l++ {
			for _, pair := range [2][3]float64{{w[l], wRef[l], hRef[l]}, {h[l], hRef[l], wRef[l]}} {
				got, want, partner := pair[0], pair[1], pair[2]
				if math.IsNaN(want) || math.IsInf(want, 0) {
					if !math.IsNaN(got) && !math.IsInf(got, 0) {
						t.Fatalf("n=%d elem %d: reference %v non-finite, asm %v finite", n, l, want, got)
					}
					continue
				}
				tol := updTolerance(want, partner, sg, sl) + 16*math.SmallestNonzeroFloat64
				if math.Abs(got-want) > tol {
					t.Fatalf("n=%d elem %d: asm %v vs reference %v (tol %g)", n, l, got, want, tol)
				}
			}
		}
	}
}

// FuzzSIMDDot fuzzes asm-vs-reference dot equivalence over raw bytes
// reinterpreted as float64 pairs — lengths, alignment offsets, and bit
// patterns (subnormals, infinities, NaNs) all come from the fuzzer. In
// CI only the seed corpus runs, as a regular test.
func FuzzSIMDDot(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, false)
	f.Add(make([]byte, 8*33), true)
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1}, false)
	f.Fuzz(func(t *testing.T, raw []byte, odd bool) {
		if !SIMDAvailable() {
			t.Skip("no AVX2/FMA on this machine")
		}
		old := SIMDEnabled()
		SetSIMD(true)
		defer SetSIMD(old)
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(raw[i*8+j])
			}
			vals[i] = math.Float64frombits(bits)
		}
		// Odd split offsets the second row by one element so the two
		// base pointers land on different 32-byte phases.
		n := len(vals) / 2
		if odd && n > 0 {
			n--
		}
		if n == 0 {
			return
		}
		a, b := vals[:n], vals[len(vals)-n:]
		want := Dot(a, b)
		got := KernelFor(n).Dot(a, b)
		if math.IsNaN(want) || math.IsInf(want, 0) {
			if !math.IsNaN(got) && !math.IsInf(got, 0) {
				t.Fatalf("reference %v non-finite, asm %v finite", want, got)
			}
			return
		}
		tol := dotTolerance(a, b) + 16*math.SmallestNonzeroFloat64
		if math.IsInf(tol, 0) {
			return // |products| overflow: no finite bound to check against
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("asm dot %v, reference %v, tol %g (n=%d)", got, want, tol, n)
		}
	})
}

// TestKernelSwitchesAreRaceSafe hammers the two dispatch switches from
// concurrent goroutines while readers select kernels — the -race CI
// job turns any non-atomic access here into a failure. (This is the
// regression test for SetReferenceOnly's former plain-bool write.)
func TestKernelSwitchesAreRaceSafe(t *testing.T) {
	oldRef, oldSIMD := ReferenceOnly(), SIMDEnabled()
	t.Cleanup(func() { SetReferenceOnly(oldRef); SetSIMD(oldSIMD) })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(flip bool) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				SetReferenceOnly(flip)
				SetSIMD(!flip)
			}
		}(i%2 == 0)
		go func() {
			defer wg.Done()
			a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
			for j := 0; j < 200; j++ {
				_ = KernelFor(8).Dot(a, a)
				_ = ReferenceOnly()
				_ = SIMDEnabled()
			}
		}()
	}
	wg.Wait()
}
