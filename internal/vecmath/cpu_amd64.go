package vecmath

// Runtime CPU-feature detection for the amd64 SIMD kernels. The asm
// kernels require AVX2 and FMA3, plus an OS that saves the YMM state
// (OSXSAVE set and XCR0 enabling XMM+YMM) — the standard AVX enablement
// check from the Intel SDM, the same one runtime/internal/cpu performs.

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended control register that records which
// register states the OS context-switches.
func xgetbv0() (eax, edx uint32)

// detectSIMD reports whether the AVX2/FMA kernels can run here: the CPU
// advertises AVX2+FMA and the OS saves the YMM halves across context
// switches. Checked once at init on amd64.
func detectSIMD() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fma     = 1 << 12 // CPUID.1:ECX
		osxsave = 1 << 27
		avx     = 1 << 28
		avx2    = 1 << 5 // CPUID.7.0:EBX
	)
	_, _, c1, _ := cpuidex(1, 0)
	if c1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&avx2 != 0
}

// featureList names the vector features the dispatcher can use on this
// CPU, for benchmark metadata ("avx2,fma" or "").
func featureList() string {
	if simdAvailable {
		return "avx2,fma"
	}
	return ""
}
