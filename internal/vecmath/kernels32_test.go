package vecmath

import (
	"math"
	"testing"

	"nomad/internal/rng"
)

// float32 kernel equivalence, same structure as the float64 tests with
// u = 2⁻²⁴. KernelFor32 dispatches exactly like KernelFor, so running
// these on amd64 covers the AVX2 float32 kernels and under
// NOMAD_NO_SIMD (or off amd64) the portable unrolled set.

func fill32(r *rng.Source, a []float32) {
	for i := range a {
		a[i] = float32(r.Uniform(-1, 1))
	}
}

// dotTolerance32 is the float32 twin of dotTolerance.
func dotTolerance32(a, b []float32) float64 {
	const u = 0x1p-24
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) * float64(b[i]))
	}
	return 2 * float64(len(a)) * u * s
}

// updTolerance32 is the float32 twin of updTolerance.
func updTolerance32(w, partner, sg, sl float32) float64 {
	const u, c = 0x1p-24, 8
	return c * u * (math.Abs(float64(w)) +
		math.Abs(float64(sg)*float64(partner)) + math.Abs(float64(sl)*float64(w)))
}

func TestKernel32DotMatchesReference(t *testing.T) {
	r := rng.New(51)
	for _, n := range asmLengths {
		kern := KernelFor32(n)
		if kern.K != n {
			t.Fatalf("KernelFor32(%d).K = %d", n, kern.K)
		}
		for trial := 0; trial < 100; trial++ {
			a := make([]float32, n)
			b := make([]float32, n)
			fill32(r, a)
			fill32(r, b)
			want := Dot32(a, b)
			got := kern.Dot(a, b)
			if tol := dotTolerance32(a, b); math.Abs(float64(got)-float64(want)) > tol {
				t.Fatalf("n=%d trial %d: kernel dot %v, reference %v, tol %g",
					n, trial, got, want, tol)
			}
			if g2 := DotKernel32(n)(a, b); g2 != got {
				t.Fatalf("n=%d: DotKernel32 disagrees with KernelFor32.Dot", n)
			}
		}
	}
}

func TestKernel32StepMatchesReference(t *testing.T) {
	r := rng.New(52)
	for _, n := range asmLengths {
		kern := KernelFor32(n)
		for trial := 0; trial < 100; trial++ {
			w := make([]float32, n)
			h := make([]float32, n)
			fill32(r, w)
			fill32(r, h)
			wRef := append([]float32(nil), w...)
			hRef := append([]float32(nil), h...)
			rating := float32(r.Uniform(-5, 5))
			step := float32(r.Uniform(0, 0.1))
			lambda := float32(r.Uniform(0, 0.2))

			// δe ≤ δdot plus one rounding of the subtraction on each side.
			eRef := SGDUpdate32(wRef, hRef, rating, step, lambda)
			deltaE := dotTolerance32(w, h) + 2*math.Abs(float64(eRef))*0x1p-24
			e := kern.Step(w, h, rating, step, lambda)
			if math.Abs(float64(e)-float64(eRef)) > deltaE {
				t.Fatalf("n=%d: residual %v vs reference %v beyond tol %g", n, e, eRef, deltaE)
			}
			emax := float32(math.Max(math.Abs(float64(e)), math.Abs(float64(eRef))))
			sg, sl := step*emax, step*lambda
			for l := 0; l < n; l++ {
				tol := float64(step)*deltaE*(math.Abs(float64(hRef[l]))+1) +
					updTolerance32(wRef[l], hRef[l], sg, sl)
				if math.Abs(float64(w[l])-float64(wRef[l])) > tol {
					t.Fatalf("n=%d elem %d: w %v vs reference %v (tol %g)", n, l, w[l], wRef[l], tol)
				}
				tol = float64(step)*deltaE*(math.Abs(float64(wRef[l]))+1) +
					updTolerance32(hRef[l], wRef[l], sg, sl)
				if math.Abs(float64(h[l])-float64(hRef[l])) > tol {
					t.Fatalf("n=%d elem %d: h %v vs reference %v (tol %g)", n, l, h[l], hRef[l], tol)
				}
			}
		}
	}
}

func TestKernel32GradMatchesReference(t *testing.T) {
	r := rng.New(53)
	for _, n := range asmLengths {
		kern := KernelFor32(n)
		for trial := 0; trial < 50; trial++ {
			w := make([]float32, n)
			h := make([]float32, n)
			fill32(r, w)
			fill32(r, h)
			wRef := append([]float32(nil), w...)
			hRef := append([]float32(nil), h...)
			g := float32(r.Uniform(-2, 2))
			step := float32(r.Uniform(0, 0.1))
			lambda := float32(r.Uniform(0, 0.2))
			SGDUpdateGrad32(wRef, hRef, g, step, lambda)
			kern.Grad(w, h, g, step, lambda)
			sg, sl := step*g, step*lambda
			for l := 0; l < n; l++ {
				if tol := updTolerance32(wRef[l], hRef[l], sg, sl); math.Abs(float64(w[l])-float64(wRef[l])) > tol {
					t.Fatalf("n=%d elem %d: w %v vs reference %v (tol %g)", n, l, w[l], wRef[l], tol)
				}
				if tol := updTolerance32(hRef[l], wRef[l], sg, sl); math.Abs(float64(h[l])-float64(hRef[l])) > tol {
					t.Fatalf("n=%d elem %d: h %v vs reference %v (tol %g)", n, l, h[l], hRef[l], tol)
				}
			}
		}
	}
}

// TestItemPass32BitMatchesStep: like the float64 item-pass tests, the
// batched float32 pass is the same arithmetic as per-rating Step calls
// and must match bit for bit on whichever kernel set is dispatched.
func TestItemPass32BitMatchesStep(t *testing.T) {
	if ReferenceOnly() {
		t.Skip("reference mode has no batched kernel by design")
	}
	r := rng.New(54)
	for _, k := range []int{8, 16, 32, 17} {
		kern := KernelFor32(k)
		if kern.ItemPass == nil {
			t.Fatalf("K=%d: ItemPass missing", k)
		}
		const nUsers, nRatings = 10, 60
		steps := []float64{0.05, 0.04, 0.03}
		slowCalls := 0
		slow := func(t int) float64 { slowCalls++; return 0.02 / float64(t+1) }
		wData := make([]float32, nUsers*k)
		h := make([]float32, k)
		fill32(r, wData)
		fill32(r, h)
		users := make([]int32, nRatings)
		vals := make([]float64, nRatings)
		counts := make([]int32, nRatings)
		for x := range users {
			users[x] = int32(r.Intn(nUsers))
			vals[x] = r.Uniform(-3, 3)
			counts[x] = int32(r.Intn(6))
		}
		wRef := append([]float32(nil), wData...)
		hRef := append([]float32(nil), h...)
		for x := range users {
			tc := counts[x]
			step := 0.02 / float64(int(tc)+1)
			if int(tc) < len(steps) {
				step = steps[tc]
			}
			o := int(users[x]) * k
			kern.Step(wRef[o:o+k], hRef, float32(vals[x]), float32(step), 0.02)
		}
		kern.ItemPass(wData, users, vals, counts, h, 0.02, steps, slow)
		if slowCalls == 0 {
			t.Fatalf("K=%d: slow fallback never exercised", k)
		}
		for i := range wData {
			if wData[i] != wRef[i] {
				t.Fatalf("K=%d: wData[%d] = %v, per-rating %v", k, i, wData[i], wRef[i])
			}
		}
		for i := range h {
			if h[i] != hRef[i] {
				t.Fatalf("K=%d: h[%d] = %v, per-rating %v", k, i, h[i], hRef[i])
			}
		}
	}
}

func TestKernelFor32ReferenceMode(t *testing.T) {
	old := ReferenceOnly()
	SetReferenceOnly(true)
	t.Cleanup(func() { SetReferenceOnly(old) })
	kern := KernelFor32(8)
	if kern.ItemPass != nil {
		t.Fatal("reference mode must not provide a batched kernel")
	}
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if got, want := kern.Dot(a, a), Dot32(a, a); got != want {
		t.Fatalf("reference dot %v, want %v", got, want)
	}
}

func TestNorm2Sq32(t *testing.T) {
	a := []float32{1, -2, 3}
	if got := Norm2Sq32(a); got != 14 {
		t.Fatalf("Norm2Sq32 = %v, want 14", got)
	}
}

func TestKernel32PanicsOnMismatch(t *testing.T) {
	for _, fn := range []func(){
		func() { Dot32(make([]float32, 3), make([]float32, 4)) },
		func() { DotUnrolled32(make([]float32, 3), make([]float32, 4)) },
		func() { SGDUpdate32(make([]float32, 3), make([]float32, 4), 1, 0.1, 0.1) },
		func() { FusedSGDStep32(make([]float32, 3), make([]float32, 4), 1, 0.1, 0.1) },
		func() { gradAny32(make([]float32, 3), make([]float32, 4), 1, 0.1, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on length mismatch")
				}
			}()
			fn()
		}()
	}
}
