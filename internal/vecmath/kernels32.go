// float32 twins of the hot-path kernels, for models trained with
// Precision(Float32). The shapes mirror the float64 set exactly —
// reference implementations as oracle, portable unrolled kernels, and
// (on amd64) AVX2 variants selected by the same dispatcher — with two
// deliberate differences:
//
//   - Ratings, step-size tables, and the schedule slow path stay
//     float64: they are shared with the rest of the system (dataset,
//     sched.Table) and converting one scalar per rating is free next
//     to the O(K) row work. Only the factor rows are float32.
//   - All row arithmetic, including dot-product accumulation, is
//     float32 — that is the precision contract WithPrecision(Float32)
//     documents, and it is what keeps the portable and AVX2 kernels in
//     the same error class. Norm2Sq32 is the exception: it feeds the
//     global objective, which sums over every row, so it accumulates
//     in float64.
package vecmath

// DotFunc32 computes the inner product of two equal-length float32 rows.
type DotFunc32 func(a, b []float32) float32

// StepFunc32 performs one fused square-loss SGD step on float32 rows
// and returns the pre-update residual e = rating − ⟨w, h⟩.
type StepFunc32 func(w, h []float32, rating, step, lambda float32) float32

// GradFunc32 applies the generic separable-loss step with the
// negative-gradient scalar g already computed by a loss.Loss.
type GradFunc32 func(w, h []float32, g, step, lambda float32)

// ItemPassFunc32 is the float32 batched item pass; same contract as
// ItemPassFunc except the factor rows are float32. Ratings, the step
// table, and the slow path stay float64 (shared with the float64 world)
// and are narrowed per rating.
type ItemPassFunc32 func(wData []float32, users []int32, vals []float64,
	counts []int32, h []float32, lambda float32, steps []float64, slow func(int) float64)

// Kernel32 bundles the float32 hot-path kernels for one rank.
type Kernel32 struct {
	K    int
	Dot  DotFunc32
	Step StepFunc32
	Grad GradFunc32
	// ItemPass is nil under NOMAD_REFERENCE_KERNELS, like Kernel.ItemPass.
	ItemPass ItemPassFunc32
}

// KernelFor32 is the float32 twin of KernelFor: AVX2 kernels when the
// dispatcher allows, portable unrolled kernels otherwise, reference
// implementations under NOMAD_REFERENCE_KERNELS.
func KernelFor32(k int) Kernel32 {
	if referenceOnly.Load() {
		return Kernel32{K: k, Dot: Dot32, Step: SGDUpdate32, Grad: SGDUpdateGrad32}
	}
	if simdOn.Load() {
		if kn, ok := simdKernelFor32(k); ok {
			return kn
		}
	}
	return Kernel32{K: k, Dot: DotUnrolled32, Step: FusedSGDStep32, Grad: gradAny32,
		ItemPass: itemPassGeneric32(k)}
}

// DotKernel32 returns just the float32 inner-product kernel for rank k.
func DotKernel32(k int) DotFunc32 {
	return KernelFor32(k).Dot
}

// --- reference implementations (the float32 oracle) ------------------

// Dot32 is the reference float32 inner product: strictly sequential
// accumulation, the ground truth the unrolled and AVX2 float32 dots are
// compared against.
//
//nomad:noalloc
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// SGDUpdate32 is the reference fused float32 SGD step: residual against
// the sequential dot, then the simultaneous update, element
// expressions identical to the float64 SGDUpdate.
//
//nomad:noalloc
func SGDUpdate32(w, h []float32, rating, step, lambda float32) float32 {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdate length mismatch")
	}
	e := rating - Dot32(w, h)
	sg, sl := step*e, step*lambda
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + sg*hl - sl*wl
		h[l] = hl + sg*wl - sl*hl
	}
	return e
}

// SGDUpdateGrad32 is the reference generic separable-loss float32 step.
//
//nomad:noalloc
func SGDUpdateGrad32(w, h []float32, g, step, lambda float32) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	sg, sl := step*g, step*lambda
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + sg*hl - sl*wl
		h[l] = hl + sg*wl - sl*hl
	}
}

// Norm2Sq32 is the squared Euclidean norm of a float32 row, accumulated
// in float64 because it feeds the whole-model regularization term.
//
//nomad:noalloc
func Norm2Sq32(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return s
}

// --- portable unrolled kernels ---------------------------------------

// DotUnrolled32 is the generic-width multi-accumulator float32 inner
// product, the float32 twin of DotUnrolled.
//
//nomad:noalloc
func DotUnrolled32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		aa := (*[4]float32)(a)
		bb := (*[4]float32)(b)
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		a = a[4:]
		b = b[4:]
	}
	s := (s0 + s1) + (s2 + s3)
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// FusedSGDStep32 is the generic-width fused float32 step.
//
//nomad:noalloc
func FusedSGDStep32(w, h []float32, rating, step, lambda float32) float32 {
	if len(w) != len(h) {
		panic("vecmath: FusedSGDStep length mismatch")
	}
	e := rating - DotUnrolled32(w, h)
	applyStep32(w, h, step*e, step*lambda)
	return e
}

// gradAny32 is Kernel32.Grad for every width.
func gradAny32(w, h []float32, g, step, lambda float32) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	applyStep32(w, h, step*g, step*lambda)
}

// applyStep32 applies the simultaneous per-element float32 update in
// 4-wide array-pointer chunks; expressions identical to the reference
// SGDUpdate32 loop so results agree bit for bit at equal sg, sl.
func applyStep32(w, h []float32, sg, sl float32) {
	for len(w) >= 4 && len(h) >= 4 {
		ww := (*[4]float32)(w)
		hh := (*[4]float32)(h)
		w0, h0 := ww[0], hh[0]
		w1, h1 := ww[1], hh[1]
		w2, h2 := ww[2], hh[2]
		w3, h3 := ww[3], hh[3]
		ww[0] = w0 + sg*h0 - sl*w0
		hh[0] = h0 + sg*w0 - sl*h0
		ww[1] = w1 + sg*h1 - sl*w1
		hh[1] = h1 + sg*w1 - sl*h1
		ww[2] = w2 + sg*h2 - sl*w2
		hh[2] = h2 + sg*w2 - sl*h2
		ww[3] = w3 + sg*h3 - sl*w3
		hh[3] = h3 + sg*w3 - sl*h3
		w = w[4:]
		h = h[4:]
	}
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + sg*hl - sl*wl
		h[l] = hl + sg*wl - sl*hl
	}
}

// itemPassGeneric32 returns the portable batched float32 item pass for
// width k.
func itemPassGeneric32(k int) ItemPassFunc32 {
	return func(wData []float32, users []int32, vals []float64,
		counts []int32, h []float32, lambda float32, steps []float64, slow func(int) float64) {
		if len(h) != k {
			panic("vecmath: ItemPass width mismatch")
		}
		vals = vals[:len(users)]
		counts = counts[:len(users)]
		for x := range users {
			t := counts[x]
			counts[x] = t + 1
			step := float32(stepAt(t, steps, slow))
			w := wData[int(users[x])*k:][:k]
			e := float32(vals[x]) - DotUnrolled32(w, h)
			applyStep32(w, h, step*e, step*lambda)
		}
	}
}
