// Hot-path SGD kernels: width-specialized inner products and fused
// square-loss update steps.
//
// The functions in vecmath.go are the *reference* implementations —
// simple, obviously correct, and the ground truth the kernel
// equivalence tests compare against. The kernels here trade a little
// code size for throughput on the per-rating hot path that every
// SGD-family solver (nomad, hogwild, dsgd, dsgd++, fpsgd, biassgd)
// spends most of its time in:
//
//   - Multi-accumulator dot products break the sequential-add
//     dependency chain of the reference Dot, letting the CPU retire
//     several multiply-adds per cycle.
//   - Fully unrolled variants for the common ranks K = 8, 16 and 32
//     work through slice→array-pointer conversion, which proves the
//     width to the compiler: one length check per call, zero
//     per-element bounds checks, zero loop overhead.
//   - FusedSGDStep folds residual computation and the simultaneous
//     row update into one call, replacing the reference path's
//     Dot + loss.Grad + SGDUpdateGrad triple (two slice traversals,
//     one interface dispatch) for the square loss.
//
// A solver selects its kernels once per run with KernelFor(k) — never
// per rating — and calls through plain function values from then on.
//
// Reassociated summation changes low-order bits: the specialized dots
// agree with the reference Dot to within standard summation error
// bounds (see kernels_test.go), and the per-element update arithmetic
// is kept expression-for-expression identical to the reference so
// that, at equal residual, updates match bit for bit.
//
// On amd64 with AVX2+FMA, KernelFor returns assembly kernels instead
// of the unrolled Go ones (kernels_amd64.s); the Go kernels remain the
// fallback for every other GOARCH and whenever SIMD is switched off.
//
// Two environment switches control dispatch, both overridable at run
// time for in-process A/B benchmarking:
//
//   - NOMAD_REFERENCE_KERNELS=1 forces the reference implementations
//     (and the raw schedule / Grad-dispatch paths in the solvers),
//     for bisecting numerical differences.
//   - NOMAD_NO_SIMD=1 keeps the portable unrolled Go kernels but skips
//     the assembly, so CI can exercise the fallback path on hardware
//     that would normally dispatch to asm.
package vecmath

import (
	"os"
	"sync/atomic"
)

// referenceOnly pins every kernel selector to the reference
// implementations. Atomic because cmd/nomad-bench flips it between
// interleaved A/B measurements in one process (and the -race CI job
// covers that interleaving).
var referenceOnly atomic.Bool

// simdOn gates dispatch to the assembly kernels. True only when the
// hardware supports them (simdAvailable) and NOMAD_NO_SIMD is unset.
var simdOn atomic.Bool

func init() {
	referenceOnly.Store(os.Getenv("NOMAD_REFERENCE_KERNELS") != "")
	simdOn.Store(simdAvailable && os.Getenv("NOMAD_NO_SIMD") == "")
}

// ReferenceOnly reports whether the reference hot path is forced:
// reference kernels here, the raw Power schedule in internal/train,
// and the square loss's original Grad-dispatch path in the solvers.
// Worker-loop restructuring (token routing, hoisted lookups) is
// structural and is not reverted.
func ReferenceOnly() bool { return referenceOnly.Load() }

// SetReferenceOnly overrides the NOMAD_REFERENCE_KERNELS switch at
// run time. cmd/nomad-bench uses it to measure both sides of the A/B
// interleaved in one process, so machine noise hits them equally. The
// switch is consulted when a run selects its kernels and schedule —
// never flip it while a training run is active.
func SetReferenceOnly(v bool) { referenceOnly.Store(v) }

// SIMDAvailable reports whether this CPU and OS support the assembly
// kernels (AVX2+FMA with YMM state saved, amd64 only).
func SIMDAvailable() bool { return simdAvailable }

// SIMDEnabled reports whether KernelFor currently dispatches to the
// assembly kernels.
func SIMDEnabled() bool { return simdOn.Load() }

// SetSIMD switches assembly dispatch on or off at run time; enabling is
// a no-op on hardware without the features. Like SetReferenceOnly it is
// consulted at kernel selection, never per rating — don't flip it while
// a run is active.
func SetSIMD(v bool) { simdOn.Store(v && simdAvailable) }

// Features names the vector features the dispatcher can use here
// ("avx2,fma" or ""), for benchmark environment metadata.
func Features() string { return featureList() }

// DotFunc computes the inner product of two equal-length rows.
type DotFunc func(a, b []float64) float64

// StepFunc performs one fused square-loss SGD step on rows w and h
// (the update of SGDUpdate) and returns the pre-update residual
// e = rating − ⟨w, h⟩.
type StepFunc func(w, h []float64, rating, step, lambda float64) float64

// GradFunc applies the generic separable-loss step of SGDUpdateGrad
// with the negative-gradient scalar g already computed by a loss.Loss.
type GradFunc func(w, h []float64, g, step, lambda float64)

// ItemPassFunc is the batched fused kernel shaped for NOMAD's
// owner-computes discipline: one call runs the square-loss step over
// every rating of a single item. h is the item row, shared (and
// sequentially updated) across all the item's ratings; users[x] indexes
// the x-th rating's user row inside the flat row-major wData; vals[x]
// is its rating and counts[x] its per-rating update count t, which is
// incremented in place. The step size for count t is steps[t], falling
// back to slow(t) past the table (sched.Table supplies both halves).
//
// Batching the whole item pass hoists every per-rating overhead the
// caller would otherwise pay — kernel dispatch, schedule branch, row
// slicing — out of the inner loop.
type ItemPassFunc func(wData []float64, users []int32, vals []float64,
	counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64)

// Kernel bundles the hot-path kernels specialized for one rank. Select
// it once per run with KernelFor and reuse it for every rating.
type Kernel struct {
	K    int
	Dot  DotFunc
	Step StepFunc
	Grad GradFunc
	// ItemPass is the batched fused square-loss kernel; see
	// ItemPassFunc. It is nil under NOMAD_REFERENCE_KERNELS (callers
	// fall back to their per-rating loops).
	ItemPass ItemPassFunc
}

// KernelFor returns the kernels specialized for rank k: AVX2/FMA
// assembly when the dispatcher allows (amd64 with the features, SIMD
// not disabled), otherwise fully unrolled Go variants for K = 8, 16
// and 32 and unrolled-by-4 generic fallbacks. With
// NOMAD_REFERENCE_KERNELS set it returns the reference
// implementations.
func KernelFor(k int) Kernel {
	if referenceOnly.Load() {
		return Kernel{K: k, Dot: Dot, Step: SGDUpdate, Grad: SGDUpdateGrad}
	}
	if simdOn.Load() {
		if kn, ok := simdKernelFor(k); ok {
			return kn
		}
	}
	switch k {
	case 8:
		return Kernel{K: 8, Dot: dot8, Step: step8, Grad: gradAny, ItemPass: itemPass8}
	case 16:
		return Kernel{K: 16, Dot: dot16, Step: step16, Grad: gradAny, ItemPass: itemPass16}
	case 32:
		return Kernel{K: 32, Dot: dot32, Step: step32, Grad: gradAny, ItemPass: itemPass32}
	default:
		return Kernel{K: k, Dot: DotUnrolled, Step: FusedSGDStep, Grad: gradAny,
			ItemPass: itemPassGeneric(k)}
	}
}

// DotKernel returns just the inner-product kernel for rank k, for
// callers (model evaluation, the bias-augmented solvers) that need fast
// predictions without the update half.
func DotKernel(k int) DotFunc {
	return KernelFor(k).Dot
}

// FusedSGDStep is the generic-width fused square-loss kernel: one call
// computes the residual with the unrolled dot and applies the
// simultaneous SGDUpdate step. It matches SGDUpdate up to the dot
// product's summation order and returns the residual e.
//
//nomad:noalloc
func FusedSGDStep(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != len(h) {
		panic("vecmath: FusedSGDStep length mismatch")
	}
	e := rating - DotUnrolled(w, h)
	applyStep(w, h, step*e, step*lambda)
	return e
}

// DotUnrolled is the generic-width multi-accumulator inner product:
// four independent partial sums over array-pointer chunks, plus a
// scalar tail. It panics if lengths differ.
//
//nomad:noalloc
func DotUnrolled(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		aa := (*[4]float64)(a)
		bb := (*[4]float64)(b)
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		a = a[4:]
		b = b[4:]
	}
	s := (s0 + s1) + (s2 + s3)
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// gradAny is Kernel.Grad for every width: the reference per-element
// arithmetic, unrolled by 4.
func gradAny(w, h []float64, g, step, lambda float64) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	applyStep(w, h, step*g, step*lambda)
}

// applyStep applies the simultaneous per-element update
//
//	w[l] = w[l] + sg·h[l] − sl·w[l]
//	h[l] = h[l] + sg·w_old[l] − sl·h[l]
//
// in 4-wide array-pointer chunks. The expressions are kept identical
// to the reference SGDUpdate/SGDUpdateGrad loops so that, given the
// same sg and sl, the results agree bit for bit.
func applyStep(w, h []float64, sg, sl float64) {
	for len(w) >= 4 && len(h) >= 4 {
		ww := (*[4]float64)(w)
		hh := (*[4]float64)(h)
		upd4(ww, hh, sg, sl)
		w = w[4:]
		h = h[4:]
	}
	for l, wl := range w {
		hl := h[l]
		w[l] = wl + sg*hl - sl*wl
		h[l] = hl + sg*wl - sl*hl
	}
}

// upd4 updates one 4-element block of both rows.
func upd4(w, h *[4]float64, sg, sl float64) {
	w0, h0 := w[0], h[0]
	w1, h1 := w[1], h[1]
	w2, h2 := w[2], h[2]
	w3, h3 := w[3], h[3]
	w[0] = w0 + sg*h0 - sl*w0
	h[0] = h0 + sg*w0 - sl*h0
	w[1] = w1 + sg*h1 - sl*w1
	h[1] = h1 + sg*w1 - sl*h1
	w[2] = w2 + sg*h2 - sl*w2
	h[2] = h2 + sg*w2 - sl*h2
	w[3] = w3 + sg*h3 - sl*w3
	h[3] = h3 + sg*w3 - sl*h3
}

// upd8 updates one 8-element block of both rows, fully unrolled.
func upd8(w, h *[8]float64, sg, sl float64) {
	w0, h0 := w[0], h[0]
	w1, h1 := w[1], h[1]
	w2, h2 := w[2], h[2]
	w3, h3 := w[3], h[3]
	w4, h4 := w[4], h[4]
	w5, h5 := w[5], h[5]
	w6, h6 := w[6], h[6]
	w7, h7 := w[7], h[7]
	w[0] = w0 + sg*h0 - sl*w0
	h[0] = h0 + sg*w0 - sl*h0
	w[1] = w1 + sg*h1 - sl*w1
	h[1] = h1 + sg*w1 - sl*h1
	w[2] = w2 + sg*h2 - sl*w2
	h[2] = h2 + sg*w2 - sl*h2
	w[3] = w3 + sg*h3 - sl*w3
	h[3] = h3 + sg*w3 - sl*h3
	w[4] = w4 + sg*h4 - sl*w4
	h[4] = h4 + sg*w4 - sl*h4
	w[5] = w5 + sg*h5 - sl*w5
	h[5] = h5 + sg*w5 - sl*h5
	w[6] = w6 + sg*h6 - sl*w6
	h[6] = h6 + sg*w6 - sl*h6
	w[7] = w7 + sg*h7 - sl*w7
	h[7] = h7 + sg*w7 - sl*h7
}

// stepAt looks the step size up in the table, falling back to the
// exact schedule past it. t never goes negative (counts start at 0).
func stepAt(t int32, steps []float64, slow func(int) float64) float64 {
	if int(t) < len(steps) {
		return steps[t]
	}
	return slow(int(t))
}

// itemPassGeneric returns the batched fused kernel for an uncommon
// width k.
func itemPassGeneric(k int) ItemPassFunc {
	return func(wData []float64, users []int32, vals []float64,
		counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64) {
		if len(h) != k {
			panic("vecmath: ItemPass width mismatch")
		}
		vals = vals[:len(users)]
		counts = counts[:len(users)]
		for x := range users {
			t := counts[x]
			counts[x] = t + 1
			step := stepAt(t, steps, slow)
			o := int(users[x]) * k
			w := wData[o : o+k]
			e := vals[x] - DotUnrolled(w, h)
			applyStep(w, h, step*e, step*lambda)
		}
	}
}

// --- K = 8 ----------------------------------------------------------

func dotA8(a, b *[8]float64) float64 {
	s0 := a[0]*b[0] + a[4]*b[4]
	s1 := a[1]*b[1] + a[5]*b[5]
	s2 := a[2]*b[2] + a[6]*b[6]
	s3 := a[3]*b[3] + a[7]*b[7]
	return (s0 + s1) + (s2 + s3)
}

func dot8(a, b []float64) float64 {
	if len(a) != 8 || len(b) != 8 {
		panic("vecmath: dot8 length mismatch")
	}
	return dotA8((*[8]float64)(a), (*[8]float64)(b))
}

func step8(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != 8 || len(h) != 8 {
		panic("vecmath: step8 length mismatch")
	}
	ww := (*[8]float64)(w)
	hh := (*[8]float64)(h)
	e := rating - dotA8(ww, hh)
	upd8(ww, hh, step*e, step*lambda)
	return e
}

func itemPass8(wData []float64, users []int32, vals []float64,
	counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64) {
	hh := (*[8]float64)(h) // one width check for the whole pass
	vals = vals[:len(users)]
	counts = counts[:len(users)]
	for x := range users {
		t := counts[x]
		counts[x] = t + 1
		step := stepAt(t, steps, slow)
		o := int(users[x]) * 8
		ww := (*[8]float64)(wData[o : o+8])
		e := vals[x] - dotA8(ww, hh)
		upd8(ww, hh, step*e, step*lambda)
	}
}

// --- K = 16 ---------------------------------------------------------

func dotA16(a, b *[16]float64) float64 {
	s0 := a[0]*b[0] + a[4]*b[4] + a[8]*b[8] + a[12]*b[12]
	s1 := a[1]*b[1] + a[5]*b[5] + a[9]*b[9] + a[13]*b[13]
	s2 := a[2]*b[2] + a[6]*b[6] + a[10]*b[10] + a[14]*b[14]
	s3 := a[3]*b[3] + a[7]*b[7] + a[11]*b[11] + a[15]*b[15]
	return (s0 + s1) + (s2 + s3)
}

func dot16(a, b []float64) float64 {
	if len(a) != 16 || len(b) != 16 {
		panic("vecmath: dot16 length mismatch")
	}
	return dotA16((*[16]float64)(a), (*[16]float64)(b))
}

func step16(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != 16 || len(h) != 16 {
		panic("vecmath: step16 length mismatch")
	}
	ww := (*[16]float64)(w)
	hh := (*[16]float64)(h)
	e := rating - dotA16(ww, hh)
	sg, sl := step*e, step*lambda
	upd8((*[8]float64)(ww[0:8]), (*[8]float64)(hh[0:8]), sg, sl)
	upd8((*[8]float64)(ww[8:16]), (*[8]float64)(hh[8:16]), sg, sl)
	return e
}

func itemPass16(wData []float64, users []int32, vals []float64,
	counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64) {
	hh := (*[16]float64)(h) // one width check for the whole pass
	vals = vals[:len(users)]
	counts = counts[:len(users)]
	for x := range users {
		t := counts[x]
		counts[x] = t + 1
		step := stepAt(t, steps, slow)
		o := int(users[x]) * 16
		ww := (*[16]float64)(wData[o : o+16])
		e := vals[x] - dotA16(ww, hh)
		sg, sl := step*e, step*lambda
		upd8((*[8]float64)(ww[0:8]), (*[8]float64)(hh[0:8]), sg, sl)
		upd8((*[8]float64)(ww[8:16]), (*[8]float64)(hh[8:16]), sg, sl)
	}
}

// --- K = 32 ---------------------------------------------------------

func dotA32(a, b *[32]float64) float64 {
	s0 := a[0]*b[0] + a[4]*b[4] + a[8]*b[8] + a[12]*b[12] +
		a[16]*b[16] + a[20]*b[20] + a[24]*b[24] + a[28]*b[28]
	s1 := a[1]*b[1] + a[5]*b[5] + a[9]*b[9] + a[13]*b[13] +
		a[17]*b[17] + a[21]*b[21] + a[25]*b[25] + a[29]*b[29]
	s2 := a[2]*b[2] + a[6]*b[6] + a[10]*b[10] + a[14]*b[14] +
		a[18]*b[18] + a[22]*b[22] + a[26]*b[26] + a[30]*b[30]
	s3 := a[3]*b[3] + a[7]*b[7] + a[11]*b[11] + a[15]*b[15] +
		a[19]*b[19] + a[23]*b[23] + a[27]*b[27] + a[31]*b[31]
	return (s0 + s1) + (s2 + s3)
}

func dot32(a, b []float64) float64 {
	if len(a) != 32 || len(b) != 32 {
		panic("vecmath: dot32 length mismatch")
	}
	return dotA32((*[32]float64)(a), (*[32]float64)(b))
}

func step32(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != 32 || len(h) != 32 {
		panic("vecmath: step32 length mismatch")
	}
	ww := (*[32]float64)(w)
	hh := (*[32]float64)(h)
	e := rating - dotA32(ww, hh)
	sg, sl := step*e, step*lambda
	upd8((*[8]float64)(ww[0:8]), (*[8]float64)(hh[0:8]), sg, sl)
	upd8((*[8]float64)(ww[8:16]), (*[8]float64)(hh[8:16]), sg, sl)
	upd8((*[8]float64)(ww[16:24]), (*[8]float64)(hh[16:24]), sg, sl)
	upd8((*[8]float64)(ww[24:32]), (*[8]float64)(hh[24:32]), sg, sl)
	return e
}

func itemPass32(wData []float64, users []int32, vals []float64,
	counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64) {
	hh := (*[32]float64)(h) // one width check for the whole pass
	vals = vals[:len(users)]
	counts = counts[:len(users)]
	for x := range users {
		t := counts[x]
		counts[x] = t + 1
		step := stepAt(t, steps, slow)
		o := int(users[x]) * 32
		ww := (*[32]float64)(wData[o : o+32])
		e := vals[x] - dotA32(ww, hh)
		sg, sl := step*e, step*lambda
		upd8((*[8]float64)(ww[0:8]), (*[8]float64)(hh[0:8]), sg, sl)
		upd8((*[8]float64)(ww[8:16]), (*[8]float64)(hh[8:16]), sg, sl)
		upd8((*[8]float64)(ww[16:24]), (*[8]float64)(hh[16:24]), sg, sl)
		upd8((*[8]float64)(ww[24:32]), (*[8]float64)(hh[24:32]), sg, sl)
	}
}
