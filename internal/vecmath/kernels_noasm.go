//go:build !amd64

package vecmath

// Pure-Go fallback surface for GOARCHes without assembly kernels: SIMD
// is never available and the dispatcher always falls through to the
// portable unrolled kernels.

const simdAvailable = false

func featureList() string { return "" }

func simdKernelFor(k int) (Kernel, bool) { return Kernel{}, false }

func simdKernelFor32(k int) (Kernel32, bool) { return Kernel32{}, false }
