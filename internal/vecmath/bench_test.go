package vecmath

// Micro-benchmarks for the per-rating hot-path kernels, reference vs
// specialized, across the ranks that matter (K = 8, 16, 32 have fully
// unrolled variants; 100 is the paper's Table 1 rank and exercises the
// generic fallback). ns/op here is ns/update for the Step kernels —
// the quantity NOMAD's throughput claims reduce to. Run with:
//
//	go test ./internal/vecmath -run '^$' -bench . -benchtime 100000x

import (
	"fmt"
	"testing"

	"nomad/internal/rng"
)

var benchWidths = []int{8, 16, 32, 100}

func benchRows(k int) (w, h []float64) {
	r := rng.New(uint64(k))
	w = make([]float64, k)
	h = make([]float64, k)
	fill(r, w)
	fill(r, h)
	return w, h
}

func BenchmarkDotReference(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = Dot(w, h)
			}
			_ = sink
		})
	}
}

func BenchmarkDotKernel(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		dot := KernelFor(k).Dot
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = dot(w, h)
			}
			_ = sink
		})
	}
}

// BenchmarkStepReference is the pre-optimization square-loss path as
// the solvers ran it: Dot, then a separate SGDUpdateGrad with the
// residual — two row traversals per rating.
func BenchmarkStepReference(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := 0.7 - Dot(w, h)
				SGDUpdateGrad(w, h, g, 1e-6, 1e-3)
			}
		})
	}
}

func BenchmarkStepFused(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		step := KernelFor(k).Step
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				step(w, h, 0.7, 1e-6, 1e-3)
			}
		})
	}
}

func BenchmarkGradReference(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SGDUpdateGrad(w, h, 0.1, 1e-6, 1e-3)
			}
		})
	}
}

func BenchmarkGradKernel(b *testing.B) {
	for _, k := range benchWidths {
		w, h := benchRows(k)
		grad := KernelFor(k).Grad
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				grad(w, h, 0.1, 1e-6, 1e-3)
			}
		})
	}
}
