package vecmath

// Go-side surface of the AVX2/FMA kernels in kernels_amd64.s: argument
// declarations, bounds-checked slice wrappers, and the Kernel/Kernel32
// constructors the dispatcher in kernels.go consults. The wrappers do
// the length checks the asm cannot (the kernels trust n), so asm sees
// only in-bounds base pointers; zero-length rows never reach asm at
// all.

// simdAvailable records, once at init, whether the CPU and OS support
// the AVX2/FMA kernels. On other GOARCHes it is a false constant (see
// kernels_noasm.go).
var simdAvailable = detectSIMD()

//go:noescape
func dotAVX(a, b *float64, n int) float64

//go:noescape
func sgdAVX(w, h *float64, n int, sg, sl float64)

//go:noescape
func fstepAVX(w, h *float64, n int, rating, step, lambda float64) float64

//go:noescape
func dotAVX32(a, b *float32, n int) float32

//go:noescape
func sgdAVX32(w, h *float32, n int, sg, sl float32)

//go:noescape
func fstepAVX32(w, h *float32, n int, rating, step, lambda float32) float32

// simdKernelFor returns the AVX2 kernel bundle for rank k, or ok=false
// when the hardware lacks AVX2/FMA (the caller then falls through to
// the portable kernels).
func simdKernelFor(k int) (Kernel, bool) {
	if !simdAvailable || k <= 0 {
		return Kernel{}, false
	}
	return Kernel{K: k, Dot: dotSIMD, Step: stepSIMD, Grad: gradSIMD,
		ItemPass: itemPassSIMD(k)}, true
}

// simdKernelFor32 is the float32 twin of simdKernelFor.
func simdKernelFor32(k int) (Kernel32, bool) {
	if !simdAvailable || k <= 0 {
		return Kernel32{}, false
	}
	return Kernel32{K: k, Dot: dotSIMD32, Step: stepSIMD32, Grad: gradSIMD32,
		ItemPass: itemPassSIMD32(k)}, true
}

func dotSIMD(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return dotAVX(&a[0], &b[0], len(a))
}

func stepSIMD(w, h []float64, rating, step, lambda float64) float64 {
	if len(w) != len(h) {
		panic("vecmath: FusedSGDStep length mismatch")
	}
	if len(w) == 0 {
		return rating
	}
	return fstepAVX(&w[0], &h[0], len(w), rating, step, lambda)
}

func gradSIMD(w, h []float64, g, step, lambda float64) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	if len(w) == 0 {
		return
	}
	sgdAVX(&w[0], &h[0], len(w), step*g, step*lambda)
}

// itemPassSIMD returns the batched item pass for rank k with the fused
// step in assembly. The loop itself stays in Go: the per-rating
// schedule lookup needs the slow-path closure, and hoisting just the
// arithmetic is where all the time goes anyway.
func itemPassSIMD(k int) ItemPassFunc {
	return func(wData []float64, users []int32, vals []float64,
		counts []int32, h []float64, lambda float64, steps []float64, slow func(int) float64) {
		if len(h) != k {
			panic("vecmath: ItemPass width mismatch")
		}
		hp := &h[0]
		vals = vals[:len(users)]
		counts = counts[:len(users)]
		for x := range users {
			t := counts[x]
			counts[x] = t + 1
			step := stepAt(t, steps, slow)
			w := wData[int(users[x])*k:][:k]
			fstepAVX(&w[0], hp, k, vals[x], step, lambda)
		}
	}
}

func dotSIMD32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return dotAVX32(&a[0], &b[0], len(a))
}

func stepSIMD32(w, h []float32, rating, step, lambda float32) float32 {
	if len(w) != len(h) {
		panic("vecmath: FusedSGDStep length mismatch")
	}
	if len(w) == 0 {
		return rating
	}
	return fstepAVX32(&w[0], &h[0], len(w), rating, step, lambda)
}

func gradSIMD32(w, h []float32, g, step, lambda float32) {
	if len(w) != len(h) {
		panic("vecmath: SGDUpdateGrad length mismatch")
	}
	if len(w) == 0 {
		return
	}
	sgdAVX32(&w[0], &h[0], len(w), step*g, step*lambda)
}

func itemPassSIMD32(k int) ItemPassFunc32 {
	return func(wData []float32, users []int32, vals []float64,
		counts []int32, h []float32, lambda float32, steps []float64, slow func(int) float64) {
		if len(h) != k {
			panic("vecmath: ItemPass width mismatch")
		}
		hp := &h[0]
		vals = vals[:len(users)]
		counts = counts[:len(users)]
		for x := range users {
			t := counts[x]
			counts[x] = t + 1
			step := float32(stepAt(t, steps, slow))
			w := wData[int(users[x])*k:][:k]
			fstepAVX32(&w[0], hp, k, float32(vals[x]), step, lambda)
		}
	}
}
