// AVX2/FMA kernels for the SGD hot path, both precisions.
//
// Layout rules (see DESIGN.md §9): rows are ordinary Go slices — 8-byte
// aligned, not 32 — so every vector access is unaligned (VMOVUPS/UPD);
// callers pass the base pointer and element count and the kernels never
// touch memory outside [ptr, ptr+n). All functions are NOSPLIT leaf
// routines with no stack frame, and every exit runs VZEROUPPER so mixed
// SSE code after a call pays no AVX transition penalty.
//
// Numerics: the dot products accumulate into 4 YMM registers (16 f64 /
// 32 f32 partial sums) with fused multiply-adds, so results differ from
// the reference implementations in summation order and intermediate
// rounding — kernels_asm_test.go bounds the difference by standard
// summation-error analysis. The SGD update keeps the reference
// association ((w + sg·h) − sl·w) but fuses each multiply-add.

#include "textflag.h"

// ---------------------------------------------------------------------
// float64
// ---------------------------------------------------------------------

// dot product loop body: accumulates a[0:n]·b[0:n] into X0 (low lane).
// Clobbers SI, DI, CX, Y0-Y7. Shared textually by dotAVX and fstepAVX.
// The single-pass 8-wide stage keeps two FMA chains in flight for the
// small ranks (K=8, and the n mod 16 ≥ 8 tails) instead of serializing
// two 4-wide iterations on one accumulator.
#define DOT64(lblk, loct, lquad, lred, lsca, ldone)   \
	VXORPD X0, X0, X0                             \
	VXORPD X1, X1, X1                             \
	VXORPD X2, X2, X2                             \
	VXORPD X3, X3, X3                             \
lblk:                                                 \
	CMPQ CX, $16                                  \
	JLT  loct                                     \
	VMOVUPD (SI), Y4                              \
	VMOVUPD 32(SI), Y5                            \
	VMOVUPD 64(SI), Y6                            \
	VMOVUPD 96(SI), Y7                            \
	VFMADD231PD (DI), Y4, Y0                      \
	VFMADD231PD 32(DI), Y5, Y1                    \
	VFMADD231PD 64(DI), Y6, Y2                    \
	VFMADD231PD 96(DI), Y7, Y3                    \
	ADDQ $128, SI                                 \
	ADDQ $128, DI                                 \
	SUBQ $16, CX                                  \
	JMP  lblk                                     \
loct:                                                 \
	CMPQ CX, $8                                   \
	JLT  lquad                                    \
	VMOVUPD (SI), Y4                              \
	VMOVUPD 32(SI), Y5                            \
	VFMADD231PD (DI), Y4, Y0                      \
	VFMADD231PD 32(DI), Y5, Y1                    \
	ADDQ $64, SI                                  \
	ADDQ $64, DI                                  \
	SUBQ $8, CX                                   \
lquad:                                                \
	CMPQ CX, $4                                   \
	JLT  lred                                     \
	VMOVUPD (SI), Y4                              \
	VFMADD231PD (DI), Y4, Y0                      \
	ADDQ $32, SI                                  \
	ADDQ $32, DI                                  \
	SUBQ $4, CX                                   \
	JMP  lquad                                    \
lred:                                                 \
	VADDPD Y1, Y0, Y0                             \
	VADDPD Y3, Y2, Y2                             \
	VADDPD Y2, Y0, Y0                             \
	VEXTRACTF128 $1, Y0, X1                       \
	VADDPD X1, X0, X0                             \
	VHADDPD X0, X0, X0                            \
lsca:                                                 \
	TESTQ CX, CX                                  \
	JEQ   ldone                                   \
	VMOVSD (SI), X4                               \
	VFMADD231SD (DI), X4, X0                      \
	ADDQ $8, SI                                   \
	ADDQ $8, DI                                   \
	DECQ CX                                       \
	JMP  lsca                                     \
ldone:

// func dotAVX(a, b *float64, n int) float64
TEXT ·dotAVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	DOT64(dblk, doct, dquad, dred, dsca, ddone)
	VZEROUPPER
	VMOVSD X0, ret+24(FP)
	RET

// SGD update loop body: the simultaneous row update
//
//	w[l] = w[l] + sg·h[l] − sl·w[l]
//	h[l] = h[l] + sg·w_old[l] − sl·h[l]
//
// over w[0:n], h[0:n]. Expects Y10/X10 = sg broadcast, Y11/X11 = sl
// broadcast. Clobbers SI, DI, CX, Y0-Y3, Y12-Y15 (X5 preserved: it
// carries fstepAVX's residual).
#define UPD64(loct, lquad, lsca, ldone)               \
loct:                                                 \
	CMPQ CX, $8                                   \
	JLT  lquad                                    \
	VMOVUPD (SI), Y0                              \
	VMOVUPD 32(SI), Y1                            \
	VMOVUPD (DI), Y2                              \
	VMOVUPD 32(DI), Y3                            \
	VMOVAPD Y0, Y12                               \
	VFMADD231PD Y10, Y2, Y12                      \
	VFNMADD231PD Y11, Y0, Y12                     \
	VMOVAPD Y2, Y13                               \
	VFMADD231PD Y10, Y0, Y13                      \
	VFNMADD231PD Y11, Y2, Y13                     \
	VMOVAPD Y1, Y14                               \
	VFMADD231PD Y10, Y3, Y14                      \
	VFNMADD231PD Y11, Y1, Y14                     \
	VMOVAPD Y3, Y15                               \
	VFMADD231PD Y10, Y1, Y15                      \
	VFNMADD231PD Y11, Y3, Y15                     \
	VMOVUPD Y12, (SI)                             \
	VMOVUPD Y13, (DI)                             \
	VMOVUPD Y14, 32(SI)                           \
	VMOVUPD Y15, 32(DI)                           \
	ADDQ $64, SI                                  \
	ADDQ $64, DI                                  \
	SUBQ $8, CX                                   \
	JMP  loct                                     \
lquad:                                                \
	CMPQ CX, $4                                   \
	JLT  lsca                                     \
	VMOVUPD (SI), Y0                              \
	VMOVUPD (DI), Y2                              \
	VMOVAPD Y0, Y12                               \
	VFMADD231PD Y10, Y2, Y12                      \
	VFNMADD231PD Y11, Y0, Y12                     \
	VMOVAPD Y2, Y13                               \
	VFMADD231PD Y10, Y0, Y13                      \
	VFNMADD231PD Y11, Y2, Y13                     \
	VMOVUPD Y12, (SI)                             \
	VMOVUPD Y13, (DI)                             \
	ADDQ $32, SI                                  \
	ADDQ $32, DI                                  \
	SUBQ $4, CX                                   \
lsca:                                                 \
	TESTQ CX, CX                                  \
	JEQ   ldone                                   \
	VMOVSD (SI), X0                               \
	VMOVSD (DI), X2                               \
	VMOVAPD X0, X12                               \
	VFMADD231SD X10, X2, X12                      \
	VFNMADD231SD X11, X0, X12                     \
	VMOVAPD X2, X13                               \
	VFMADD231SD X10, X0, X13                      \
	VFNMADD231SD X11, X2, X13                     \
	VMOVSD X12, (SI)                              \
	VMOVSD X13, (DI)                              \
	ADDQ $8, SI                                   \
	ADDQ $8, DI                                   \
	DECQ CX                                       \
	JMP  lsca                                     \
ldone:

// func sgdAVX(w, h *float64, n int, sg, sl float64)
TEXT ·sgdAVX(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	VBROADCASTSD sg+24(FP), Y10
	VBROADCASTSD sl+32(FP), Y11
	UPD64(soct, squad, ssca, sdone)
	VZEROUPPER
	RET

// func fstepAVX(w, h *float64, n int, rating, step, lambda float64) float64
//
// The fused square-loss step: e = rating − ⟨w,h⟩, then the simultaneous
// update with sg = step·e, sl = step·lambda. Returns e.
TEXT ·fstepAVX(SB), NOSPLIT, $0-56
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	DOT64(fblk, fdoct, fquad, fred, fsca, fdot)
	// e = rating − dot; sg = step·e; sl = step·lambda
	VMOVSD rating+24(FP), X5
	VSUBSD X0, X5, X5
	VMOVSD step+32(FP), X6
	VMULSD X5, X6, X10
	VMULSD lambda+40(FP), X6, X11
	VBROADCASTSD X10, Y10
	VBROADCASTSD X11, Y11
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	UPD64(foct, fuquad, fusca, fupd)
	VZEROUPPER
	VMOVSD X5, ret+48(FP)
	RET

// ---------------------------------------------------------------------
// float32
// ---------------------------------------------------------------------

// float32 dot loop body: accumulates into X0 lane 0. Clobbers SI, DI,
// CX, Y0-Y7. Like DOT64, a single-pass 16-wide stage keeps two FMA
// chains in flight for K=16 and the larger tails.
#define DOT32(lblk, lhex, loct, lred, lsca, ldone)    \
	VXORPS X0, X0, X0                             \
	VXORPS X1, X1, X1                             \
	VXORPS X2, X2, X2                             \
	VXORPS X3, X3, X3                             \
lblk:                                                 \
	CMPQ CX, $32                                  \
	JLT  lhex                                     \
	VMOVUPS (SI), Y4                              \
	VMOVUPS 32(SI), Y5                            \
	VMOVUPS 64(SI), Y6                            \
	VMOVUPS 96(SI), Y7                            \
	VFMADD231PS (DI), Y4, Y0                      \
	VFMADD231PS 32(DI), Y5, Y1                    \
	VFMADD231PS 64(DI), Y6, Y2                    \
	VFMADD231PS 96(DI), Y7, Y3                    \
	ADDQ $128, SI                                 \
	ADDQ $128, DI                                 \
	SUBQ $32, CX                                  \
	JMP  lblk                                     \
lhex:                                                 \
	CMPQ CX, $16                                  \
	JLT  loct                                     \
	VMOVUPS (SI), Y4                              \
	VMOVUPS 32(SI), Y5                            \
	VFMADD231PS (DI), Y4, Y0                      \
	VFMADD231PS 32(DI), Y5, Y1                    \
	ADDQ $64, SI                                  \
	ADDQ $64, DI                                  \
	SUBQ $16, CX                                  \
loct:                                                 \
	CMPQ CX, $8                                   \
	JLT  lred                                     \
	VMOVUPS (SI), Y4                              \
	VFMADD231PS (DI), Y4, Y0                      \
	ADDQ $32, SI                                  \
	ADDQ $32, DI                                  \
	SUBQ $8, CX                                   \
	JMP  loct                                     \
lred:                                                 \
	VADDPS Y1, Y0, Y0                             \
	VADDPS Y3, Y2, Y2                             \
	VADDPS Y2, Y0, Y0                             \
	VEXTRACTF128 $1, Y0, X1                       \
	VADDPS X1, X0, X0                             \
	VHADDPS X0, X0, X0                            \
	VHADDPS X0, X0, X0                            \
lsca:                                                 \
	TESTQ CX, CX                                  \
	JEQ   ldone                                   \
	VMOVSS (SI), X4                               \
	VFMADD231SS (DI), X4, X0                      \
	ADDQ $4, SI                                   \
	ADDQ $4, DI                                   \
	DECQ CX                                       \
	JMP  lsca                                     \
ldone:

// func dotAVX32(a, b *float32, n int) float32
TEXT ·dotAVX32(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	DOT32(dblk32, dhex32, doct32, dred32, dsca32, ddone32)
	VZEROUPPER
	VMOVSS X0, ret+24(FP)
	RET

// float32 SGD update loop body; expects Y10/X10 = sg, Y11/X11 = sl.
// Clobbers SI, DI, CX, Y0-Y3, Y12-Y15 (X5 preserved).
#define UPD32(lhex, loct, lsca, ldone)                \
lhex:                                                 \
	CMPQ CX, $16                                  \
	JLT  loct                                     \
	VMOVUPS (SI), Y0                              \
	VMOVUPS 32(SI), Y1                            \
	VMOVUPS (DI), Y2                              \
	VMOVUPS 32(DI), Y3                            \
	VMOVAPS Y0, Y12                               \
	VFMADD231PS Y10, Y2, Y12                      \
	VFNMADD231PS Y11, Y0, Y12                     \
	VMOVAPS Y2, Y13                               \
	VFMADD231PS Y10, Y0, Y13                      \
	VFNMADD231PS Y11, Y2, Y13                     \
	VMOVAPS Y1, Y14                               \
	VFMADD231PS Y10, Y3, Y14                      \
	VFNMADD231PS Y11, Y1, Y14                     \
	VMOVAPS Y3, Y15                               \
	VFMADD231PS Y10, Y1, Y15                      \
	VFNMADD231PS Y11, Y3, Y15                     \
	VMOVUPS Y12, (SI)                             \
	VMOVUPS Y13, (DI)                             \
	VMOVUPS Y14, 32(SI)                           \
	VMOVUPS Y15, 32(DI)                           \
	ADDQ $64, SI                                  \
	ADDQ $64, DI                                  \
	SUBQ $16, CX                                  \
	JMP  lhex                                     \
loct:                                                 \
	CMPQ CX, $8                                   \
	JLT  lsca                                     \
	VMOVUPS (SI), Y0                              \
	VMOVUPS (DI), Y2                              \
	VMOVAPS Y0, Y12                               \
	VFMADD231PS Y10, Y2, Y12                      \
	VFNMADD231PS Y11, Y0, Y12                     \
	VMOVAPS Y2, Y13                               \
	VFMADD231PS Y10, Y0, Y13                      \
	VFNMADD231PS Y11, Y2, Y13                     \
	VMOVUPS Y12, (SI)                             \
	VMOVUPS Y13, (DI)                             \
	ADDQ $32, SI                                  \
	ADDQ $32, DI                                  \
	SUBQ $8, CX                                   \
lsca:                                                 \
	TESTQ CX, CX                                  \
	JEQ   ldone                                   \
	VMOVSS (SI), X0                               \
	VMOVSS (DI), X2                               \
	VMOVAPS X0, X12                               \
	VFMADD231SS X10, X2, X12                      \
	VFNMADD231SS X11, X0, X12                     \
	VMOVAPS X2, X13                               \
	VFMADD231SS X10, X0, X13                      \
	VFNMADD231SS X11, X2, X13                     \
	VMOVSS X12, (SI)                              \
	VMOVSS X13, (DI)                              \
	ADDQ $4, SI                                   \
	ADDQ $4, DI                                   \
	DECQ CX                                       \
	JMP  lsca                                     \
ldone:

// func sgdAVX32(w, h *float32, n int, sg, sl float32)
TEXT ·sgdAVX32(SB), NOSPLIT, $0-32
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	VBROADCASTSS sg+24(FP), Y10
	VBROADCASTSS sl+28(FP), Y11
	UPD32(shex32, soct32, ssca32, sdone32)
	VZEROUPPER
	RET

// func fstepAVX32(w, h *float32, n int, rating, step, lambda float32) float32
TEXT ·fstepAVX32(SB), NOSPLIT, $0-44
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	DOT32(fblk32, fdhex32, foct32, fred32, fsca32, fdot32)
	// e = rating − dot; sg = step·e; sl = step·lambda
	VMOVSS rating+24(FP), X5
	VSUBSS X0, X5, X5
	VMOVSS step+28(FP), X6
	VMULSS X5, X6, X10
	VMULSS lambda+32(FP), X6, X11
	VBROADCASTSS X10, Y10
	VBROADCASTSS X11, Y11
	MOVQ w+0(FP), SI
	MOVQ h+8(FP), DI
	MOVQ n+16(FP), CX
	UPD32(fhex32, fuoct32, fusca32, fupd32)
	VZEROUPPER
	VMOVSS X5, ret+40(FP)
	RET
