// Package rng provides a fast, deterministic pseudo-random number
// generator with support for independent streams, plus the sampling
// distributions used across the repository (uniform, normal, Zipf and
// arbitrary discrete distributions via the alias method).
//
// All stochastic behaviour in this repository — parameter
// initialization, token routing, dataset synthesis — draws from this
// package so that experiments are reproducible from a single seed.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors. It is not cryptographically secure.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed.
// Two Sources constructed with the same seed produce identical streams.
func New(seed uint64) *Source {
	// SplitMix64 expansion of the seed into four non-zero words.
	r := &Source{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15 // all-zero state is the one forbidden state
	}
	return r
}

// Split returns a new Source whose stream is independent of r's for all
// practical purposes. It is used to hand one stream to each worker so
// that concurrent workers never contend on a shared generator.
func (r *Source) Split(i uint64) *Source {
	// Derive a fresh seed from the parent stream state and the index.
	// Mixing with a large odd constant keeps nearby indices far apart.
	return New(r.Uint64() ^ (i+1)*0xd1342543de82ef95)
}

// State captures the generator's exact position in its stream, so a
// paused training run can serialize its RNG sources and resume them
// bit-compatibly (see train.State).
func (r *Source) State() [4]uint64 { return [4]uint64{r.s0, r.s1, r.s2, r.s3} }

// FromState reconstructs a Source at the exact position captured by
// State: the restored source produces the same stream the original
// would have produced from that point on.
func FromState(s [4]uint64) *Source {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15 // all-zero state is the one forbidden state
	}
	return &Source{s0: s[0], s1: s[1], s2: s[2], s3: s[3]}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Pair returns two independent uniformly random ints in [0, n) from a
// single generator step, one from each 32-bit half via fixed-point
// reduction. The reduction bias is at most n·2⁻³² — immaterial for the
// small fan-outs (worker counts) this serves — in exchange for halving
// the RNG cost of NOMAD's two-choice token routing. It panics if n is
// not in [1, 2³²).
func (r *Source) Pair(n int) (int, int) {
	if n <= 0 || int64(n) > 1<<32-1 {
		panic("rng: Pair called with n out of range")
	}
	v := r.Uint64()
	return int(uint64(uint32(v)) * uint64(n) >> 32), int((v >> 32) * uint64(n) >> 32)
}

// Quad returns four independent uniformly random ints in [0, n) from a
// single generator step, one from each 16-bit quarter via fixed-point
// reduction. The reduction bias is at most n·2⁻¹⁶ — immaterial for the
// worker-count fan-outs this serves — in exchange for quartering the
// RNG cost of batched token routing. It panics if n is not in
// [1, 2¹⁶).
func (r *Source) Quad(n int) (a, b, c, d int) {
	if n <= 0 || n > 1<<16-1 {
		panic("rng: Quad called with n out of range")
	}
	v := r.Uint64()
	a = int(uint64(uint16(v)) * uint64(n) >> 16)
	b = int(uint64(uint16(v>>16)) * uint64(n) >> 16)
	c = int(uint64(uint16(v>>32)) * uint64(n) >> 16)
	d = int(uint64(uint16(v>>48)) * uint64(n) >> 16)
	return
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniformly random float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the polar Box-Muller transform.
func (r *Source) Normal(mean, stddev float64) float64 {
	// Polar method: rejection-sample a point in the unit disc.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm fills p with a uniformly random permutation of [0, len(p)) using
// the Fisher-Yates shuffle. It allocates nothing.
func (r *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle randomly permutes the first n indices using swap, in the
// manner of math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
