package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 stream looks degenerate: only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d too far from expected %.0f", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of [-2,3): %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(1.5, 2.0)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1.5) > 0.02 {
		t.Errorf("mean = %v, want ~1.5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2.0) > 0.03 {
		t.Errorf("stddev = %v, want ~2.0", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := make([]int, 257)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, trials = 5, 50000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < trials; i++ {
		r.Perm(p)
		counts[p[0]]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("first-element bucket %d count %d far from %.0f", i, c, expected)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	r := New(23)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		rr := New(seed)
		rr.Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestZipfRange(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.1)
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 1000, 1.2)
	const n = 100000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank 1 must dominate rank 10 which must dominate rank 100.
	if !(counts[1] > counts[10] && counts[10] > counts[100]) {
		t.Errorf("Zipf not skewed: c1=%d c10=%d c100=%d", counts[1], counts[10], counts[100])
	}
}

func TestZipfExponentOne(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 50, 1.0)
	for i := 0; i < 5000; i++ {
		v := z.Sample()
		if v < 1 || v > 50 {
			t.Fatalf("Zipf(s=1) sample out of range: %d", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 1.0) },
		func() { NewZipf(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(43)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(r, weights)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample()]++
	}
	total := 10.0
	for i, w := range weights {
		want := float64(n) * w / total
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Errorf("alias bucket %d: got %d want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias(New(1), []float64{5})
	for i := 0; i < 100; i++ {
		if a.Sample() != 0 {
			t.Fatal("single-outcome alias returned nonzero")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias(New(2), []float64{1, 0, 1})
	for i := 0; i < 20000; i++ {
		if a.Sample() == 1 {
			t.Fatal("zero-weight outcome sampled")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		w := weights
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", w)
				}
			}()
			NewAlias(New(1), w)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 1.1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample()
	}
	_ = sink
}

func BenchmarkAlias(b *testing.B) {
	w := make([]float64, 1<<16)
	for i := range w {
		w[i] = float64(i%97) + 1
	}
	a := NewAlias(New(1), w)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.Sample()
	}
	_ = sink
}

func TestQuadRangeAndUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 7, 20000
	var counts [n]int
	for i := 0; i < draws; i++ {
		a, b, c, d := r.Quad(n)
		for _, v := range []int{a, b, c, d} {
			if v < 0 || v >= n {
				t.Fatalf("Quad value %d out of [0,%d)", v, n)
			}
			counts[v]++
		}
	}
	want := float64(4*draws) / n
	for v, got := range counts {
		if float64(got) < 0.9*want || float64(got) > 1.1*want {
			t.Errorf("value %d drawn %d times, want ≈%.0f", v, got, want)
		}
	}
}

func TestQuadPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quad(0) did not panic")
		}
	}()
	New(1).Quad(0)
}
