package rng

import "math"

// Zipf samples from a (truncated) Zipf distribution over {1, ..., n}
// with exponent s > 0: P(X = x) ∝ x^(-s). It uses rejection-inversion
// (Hörmann & Derflinger), which needs no per-distribution table and is
// O(1) per sample.
type Zipf struct {
	src             *Source
	n               float64
	s               float64
	oneMinusS       float64
	hX0, hIntegralN float64
	hIntegralX1     float64
}

// NewZipf returns a Zipf sampler over {1..n} with exponent s.
// It panics if n < 1 or s <= 0 or s == 1 is handled via a limit form.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n < 1 {
		panic("rng: NewZipf requires n >= 1")
	}
	if s <= 0 {
		panic("rng: NewZipf requires s > 0")
	}
	z := &Zipf{src: src, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hX0 = z.h(0.5) - math.Exp(-s*math.Log(1))
	z.hIntegralN = z.h(z.n + 0.5)
	z.hIntegralX1 = z.h(1.5) - 1
	return z
}

// h is the integral of x^-s: H(x) = (x^(1-s)-1)/(1-s), or log x when s=1.
func (z *Zipf) h(x float64) float64 {
	logX := math.Log(x)
	if z.oneMinusS == 0 {
		return logX
	}
	return helper(z.oneMinusS*logX) * logX
}

// hInv inverts h.
func (z *Zipf) hInv(x float64) float64 {
	if z.oneMinusS == 0 {
		return math.Exp(x)
	}
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helperInv(t) * x)
}

// helper computes (exp(x)-1)/x with care near 0.
func helper(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2*(1+x/3*(1+x/4))
}

// helperInv computes log1p(x)/x with care near 0.
func helperInv(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// Sample draws one value in {1, ..., n}.
func (z *Zipf) Sample() int {
	for {
		u := z.hIntegralN + z.src.Float64()*(z.hX0-z.hIntegralN)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.hX0-z.hIntegralX1 ||
			u >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k)) {
			return int(k)
		}
	}
}

// Alias is Walker's alias method for O(1) sampling from an arbitrary
// discrete distribution over {0, ..., n-1}.
type Alias struct {
	src   *Source
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the (unnormalized, non-negative)
// weights. It panics if weights is empty or sums to zero.
func NewAlias(src *Source, weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias requires at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAlias weight must be non-negative and finite")
		}
		total += w
	}
	if total == 0 {
		panic("rng: NewAlias weights sum to zero")
	}
	a := &Alias{
		src:   src,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; classic two-stack construction.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
	}
	for _, s := range small {
		a.prob[s] = 1 // numerical leftovers
	}
	return a
}

// Sample draws one index distributed according to the table's weights.
func (a *Alias) Sample() int {
	i := a.src.Intn(len(a.prob))
	if a.src.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// N returns the number of outcomes in the table.
func (a *Alias) N() int { return len(a.prob) }
