package loss

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSquareMatchesPaperGradient(t *testing.T) {
	var s Square
	// eq. (9): gradient factor is the residual A_ij − ⟨w,h⟩.
	if g := s.Grad(1.5, 4.0); g != 2.5 {
		t.Fatalf("square grad = %v, want 2.5", g)
	}
	if v := s.Value(1.5, 4.0); v != 2.5*2.5/2 {
		t.Fatalf("square value = %v", v)
	}
}

func TestAbsoluteGrad(t *testing.T) {
	var a Absolute
	if a.Grad(0, 1) != 1 || a.Grad(1, 0) != -1 || a.Grad(2, 2) != 0 {
		t.Fatal("absolute grad signs wrong")
	}
	if a.Value(3, 1) != 2 {
		t.Fatal("absolute value wrong")
	}
}

func TestLogisticValueStable(t *testing.T) {
	var l Logistic
	// Large-margin correct prediction: loss ≈ 0, no overflow.
	if v := l.Value(100, 1); v > 1e-6 || math.IsNaN(v) {
		t.Fatalf("logistic value at large margin = %v", v)
	}
	// Large-margin wrong prediction: loss ≈ |pred|, no overflow.
	if v := l.Value(100, -1); math.Abs(v-100) > 1e-6 {
		t.Fatalf("logistic value at large negative margin = %v", v)
	}
	if v := l.Value(0, 1); math.Abs(v-math.Log(2)) > 1e-12 {
		t.Fatalf("logistic value at 0 = %v, want ln 2", v)
	}
}

// TestGradIsNegativeDerivative verifies each loss's Grad against a
// numerical derivative of Value, property-based over random points.
func TestGradIsNegativeDerivative(t *testing.T) {
	losses := []Loss{Square{}, Logistic{}}
	err := quick.Check(func(predRaw, actualRaw int16, pickLogistic bool) bool {
		pred := float64(predRaw) / 1000
		var actual float64
		var l Loss
		if pickLogistic {
			l = losses[1]
			actual = 1.0
			if actualRaw < 0 {
				actual = -1.0
			}
		} else {
			l = losses[0]
			actual = float64(actualRaw) / 1000
		}
		const h = 1e-6
		numeric := -(l.Value(pred+h, actual) - l.Value(pred-h, actual)) / (2 * h)
		return math.Abs(numeric-l.Grad(pred, actual)) < 1e-4
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidRange(t *testing.T) {
	for _, z := range []float64{-700, -10, 0, 10, 700} {
		s := sigmoid(z)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("sigmoid(%v) = %v", z, s)
		}
	}
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "square", "absolute", "logistic"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("hinge"); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestIsSquare(t *testing.T) {
	if !IsSquare(Square{}) || !IsSquare(nil) {
		t.Fatal("IsSquare must accept Square and nil (the default)")
	}
	if IsSquare(Absolute{}) || IsSquare(Logistic{}) {
		t.Fatal("IsSquare must reject non-square losses")
	}
}

func TestNames(t *testing.T) {
	if (Square{}).Name() != "square" || (Absolute{}).Name() != "absolute" || (Logistic{}).Name() != "logistic" {
		t.Fatal("names wrong")
	}
}
