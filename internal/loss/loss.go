// Package loss implements the separable loss functions that the NOMAD
// framework generalizes over. The paper's §6 notes that the algorithm
// applies to any objective of the form
//
//	f(W,H) = Σ_{(i,j)∈Ω} f_ij(wᵢ, hⱼ),
//
// not just the square loss of eq. (1): the nomadic-token machinery only
// needs a per-rating gradient. This package provides the square loss
// (the paper's experiments), the absolute loss (robust to outliers) and
// the logistic loss (binary/one-class matrices, the SVM/logistic
// direction the paper names as ongoing work).
package loss

import (
	"fmt"
	"math"

	"nomad/internal/vecmath"
)

// Loss is a separable per-rating loss f(pred, actual) with the scalar
// factor of its negative gradient: for matrix completion the SGD step
// is
//
//	w ← w + s·(g·h − λ·w),  h ← h + s·(g·w_old − λ·h)
//
// where g = Grad(pred, actual). For the square loss g is the residual
// (actual − pred), recovering paper eq. (9)–(10).
type Loss interface {
	// Name returns the loss's identifier ("square", "absolute", "logistic").
	Name() string
	// Value returns f(pred, actual).
	Value(pred, actual float64) float64
	// Grad returns the negative-gradient scalar g described above.
	Grad(pred, actual float64) float64
}

// Square is ½(actual − pred)², the paper's loss.
type Square struct{}

// Name implements Loss.
func (Square) Name() string { return "square" }

// Value implements Loss.
func (Square) Value(pred, actual float64) float64 {
	d := actual - pred
	return d * d / 2
}

// Grad implements Loss.
func (Square) Grad(pred, actual float64) float64 { return actual - pred }

// Absolute is |actual − pred|, whose constant-magnitude gradient makes
// the fit robust to rating outliers.
type Absolute struct{}

// Name implements Loss.
func (Absolute) Name() string { return "absolute" }

// Value implements Loss.
func (Absolute) Value(pred, actual float64) float64 { return math.Abs(actual - pred) }

// Grad implements Loss. At the (measure-zero) kink the subgradient 0
// is used.
func (Absolute) Grad(pred, actual float64) float64 {
	switch {
	case actual > pred:
		return 1
	case actual < pred:
		return -1
	default:
		return 0
	}
}

// Logistic is log(1+exp(−y·pred)) for labels y ∈ {−1, +1}, the binary
// matrix-completion loss of the paper's §6 future-work direction.
type Logistic struct{}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// Value implements Loss.
func (Logistic) Value(pred, actual float64) float64 {
	// log(1+exp(−y·p)) computed stably.
	z := -actual * pred
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// Grad implements Loss: d/dpred[−loss] = y·σ(−y·pred).
func (Logistic) Grad(pred, actual float64) float64 {
	return actual * sigmoid(-actual*pred)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// IsSquare reports whether l is the square loss (or nil, which every
// solver defaults to square). The SGD solvers use it to devirtualize
// the hot path: for the square loss, g = actual − pred is exactly the
// residual the fused vecmath kernels compute internally, so the
// per-rating Grad interface dispatch can be skipped entirely.
// Non-square losses keep the generic Grad path.
func IsSquare(l Loss) bool {
	if l == nil {
		return true
	}
	_, ok := l.(Square)
	return ok
}

// UseFused is the one predicate behind the square-loss fast path: the
// fused kernels replace Grad dispatch only for the square loss, and
// never when the reference hot path is forced (the A/B baseline must
// pay the dispatch cost the fused path eliminates). Every solver that
// devirtualizes consults this, so the switch semantics live in one
// place.
func UseFused(l Loss) bool {
	return IsSquare(l) && !vecmath.ReferenceOnly()
}

// ByName returns the named loss.
func ByName(name string) (Loss, error) {
	switch name {
	case "", "square":
		return Square{}, nil
	case "absolute":
		return Absolute{}, nil
	case "logistic":
		return Logistic{}, nil
	default:
		return nil, fmt.Errorf("loss: unknown loss %q (square, absolute, logistic)", name)
	}
}
