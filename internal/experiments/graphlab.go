package experiments

import (
	"fmt"

	"nomad/internal/core"
	"nomad/internal/glals"
	"nomad/internal/netsim"
	"nomad/internal/train"
)

func init() {
	register("fig21", Fig21)
	register("fig22", Fig22)
	register("fig23", Fig23)
}

// graphlabCompare is the Appendix F layout: NOMAD against the
// GraphLab-style comparators on netflix- and yahoo-like data (the
// paper could not run GraphLab on Hugewiki at all).
func graphlabCompare(id, title string, machines int, profile netsim.Profile, o Options, algos []train.Algorithm) (*Result, error) {
	res := &Result{
		ID:    id,
		Title: title,
		XAxis: "seconds",
		Notes: []string{fmt.Sprintf("machines=%d, network=%s", machines, profile.Name)},
	}
	for _, prof := range []string{"netflix", "yahoo"} {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			// Equal wall-clock budgets, as in the paper's plots.
			cfg := timedConfig(prof, o)
			cfg.Machines = machines
			cfg.Profile = profile
			s, tr, err := runSeries(prof+" "+algo.Name(), algo, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
			res.Notes = append(res.Notes, fmt.Sprintf("%s %s: %.2fs for %d updates",
				prof, algo.Name(), tr.Elapsed.Seconds(), tr.Updates))
		}
	}
	return res, nil
}

// Fig21 reproduces Figure 21: NOMAD vs GraphLab ALS on a single
// machine (shared memory — the emulated ALS pays no network cost here,
// only its much higher per-sweep compute).
func Fig21(o Options) (*Result, error) {
	return graphlabCompare("fig21", "NOMAD vs GraphLab-style ALS (single machine)",
		1, netsim.Instant(), o, []train.Algorithm{core.New(), glals.New()})
}

// Fig22 reproduces Figure 22: the HPC-cluster version, where the ALS
// emulation starts paying lock/fetch round trips.
func Fig22(o Options) (*Result, error) {
	return graphlabCompare("fig22", "NOMAD vs GraphLab-style ALS (HPC cluster)",
		o.Machines, netsim.HPC(), o, []train.Algorithm{core.New(), glals.New()})
}

// Fig23 reproduces Figure 23: the commodity-cluster version with
// GraphLab biassgd added. Expected: NOMAD orders of magnitude faster
// per unit of RMSE progress.
func Fig23(o Options) (*Result, error) {
	return graphlabCompare("fig23", "NOMAD vs GraphLab-style ALS and biassgd (commodity cluster)",
		o.Machines, netsim.Commodity(), o,
		[]train.Algorithm{core.New(), glals.New(), glals.NewBiasSGD()})
}
