package experiments

import (
	"fmt"

	"nomad/internal/ccd"
	"nomad/internal/core"
	"nomad/internal/dataset"
	"nomad/internal/dsgd"
	"nomad/internal/dsgdpp"
	"nomad/internal/netsim"
	"nomad/internal/train"
)

func init() {
	register("fig8", Fig8)
	register("fig9", Fig9)
	register("fig10L", Fig10Updates)
	register("fig10R", Fig10Throughput)
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("fig17", Fig17)
	register("fig19", Fig19)
}

// machineSweep is the {1..32}-machine sweep of the paper, scaled down.
var machineSweep = []int{1, 2, 4, 8}

// distAlgos are the four solvers of the distributed comparisons.
func distAlgos() []train.Algorithm {
	return []train.Algorithm{core.New(), dsgd.New(), dsgdpp.New(), ccd.New()}
}

// distCompare runs the four-way comparison on every profile over the
// given network, reproducing the Fig 8 / Fig 11 layout.
func distCompare(id, title string, profile netsim.Profile, o Options, nomadWorkers int) (*Result, error) {
	res := &Result{
		ID:    id,
		Title: title,
		XAxis: "seconds",
		Notes: []string{fmt.Sprintf("machines=%d, workers=%d, network=%s, scale=%g",
			o.Machines, o.Workers, profile.Name, o.Scale)},
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, algo := range distAlgos() {
			cfg := timedConfig(prof, o)
			cfg.Machines = o.Machines
			cfg.Profile = profile
			if algo.Name() == "nomad" && nomadWorkers > 0 {
				// On commodity hardware NOMAD and DSGD++ reserve two of
				// the four cores for communication (§5.4).
				cfg.Workers = nomadWorkers
			}
			if algo.Name() == "dsgdpp" && nomadWorkers > 0 {
				cfg.Workers = o.Workers // footnote 8: 4 compute threads
			}
			s, tr, err := runSeries(prof+" "+algo.Name(), algo, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
			res.Notes = append(res.Notes, fmt.Sprintf("%s %s: %d msgs, %d bytes",
				prof, algo.Name(), tr.MessagesSent, tr.BytesSent))
		}
	}
	return res, nil
}

// Fig8 reproduces Figure 8: the HPC-cluster comparison of NOMAD,
// DSGD, DSGD++ and CCD++ on all three datasets.
func Fig8(o Options) (*Result, error) {
	return distCompare("fig8", "HPC cluster: NOMAD vs DSGD vs DSGD++ vs CCD++", netsim.HPC(), o, 0)
}

// Fig11 reproduces Figure 11: the same comparison on a commodity
// cluster, where NOMAD reserves half its cores for communication yet
// still wins — communication efficiency dominates (§5.4).
func Fig11(o Options) (*Result, error) {
	nomadWorkers := o.Workers / 2
	if nomadWorkers < 1 {
		nomadWorkers = 1
	}
	return distCompare("fig11", "Commodity cluster: NOMAD vs DSGD vs DSGD++ vs CCD++", netsim.Commodity(), o, nomadWorkers)
}

// machineScaling runs NOMAD across the machine sweep and reports RMSE
// against seconds×machines×cores, the Fig 9 / Fig 17 layout.
func machineScaling(id, title string, profile netsim.Profile, o Options) (*Result, error) {
	res := &Result{
		ID:    id,
		Title: title,
		XAxis: "seconds×workers",
		Notes: []string{fmt.Sprintf("network=%s; curves coinciding ⇒ linear scaling", profile.Name)},
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, machines := range machineSweep {
			cfg := baseConfig(prof, o)
			cfg.Machines = machines
			cfg.Profile = profile
			s, _, err := runSeries(fmt.Sprintf("%s machines=%d", prof, machines),
				core.New(), ds, cfg, "seconds×workers", float64(machines*cfg.Workers))
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig9 reproduces Figure 9 (HPC machine-scaling of NOMAD).
func Fig9(o Options) (*Result, error) {
	return machineScaling("fig9", "NOMAD: RMSE vs seconds×machines×cores (HPC)", netsim.HPC(), o)
}

// Fig17 reproduces Appendix C Figure 17 (the commodity version).
func Fig17(o Options) (*Result, error) {
	return machineScaling("fig17", "NOMAD: RMSE vs seconds×machines×cores (commodity)", netsim.Commodity(), o)
}

// machineUpdates runs NOMAD across the machine sweep reporting RMSE vs
// update count (Figs 10-left, 15, 19).
func machineUpdates(id, title string, profile netsim.Profile, o Options, profs []string) (*Result, error) {
	res := &Result{ID: id, Title: title, XAxis: "updates",
		Notes: []string{fmt.Sprintf("network=%s", profile.Name)}}
	for _, prof := range profs {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, machines := range machineSweep {
			cfg := baseConfig(prof, o)
			cfg.Machines = machines
			cfg.Profile = profile
			s, _, err := runSeries(fmt.Sprintf("%s machines=%d", prof, machines),
				core.New(), ds, cfg, "updates", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig10Updates reproduces Figure 10 (left): RMSE vs updates on
// yahoo-like data as machines vary (HPC).
func Fig10Updates(o Options) (*Result, error) {
	return machineUpdates("fig10L", "NOMAD: RMSE vs updates as machines vary (yahoo-like, HPC)",
		netsim.HPC(), o, []string{"yahoo"})
}

// Fig15 reproduces Appendix C Figure 15: the commodity version, all
// datasets.
func Fig15(o Options) (*Result, error) {
	return machineUpdates("fig15", "NOMAD: RMSE vs updates as machines vary (commodity)",
		netsim.Commodity(), o, profiles)
}

// Fig19 reproduces Appendix D Figure 19: the HPC version, all datasets.
func Fig19(o Options) (*Result, error) {
	return machineUpdates("fig19", "NOMAD: RMSE vs updates as machines vary (HPC)",
		netsim.HPC(), o, profiles)
}

// machineThroughput reports updates/machine/core/sec across the
// machine sweep (Figs 10-right and 16).
func machineThroughput(id, title string, profile netsim.Profile, o Options) (*Result, error) {
	res := &Result{
		ID:    id,
		Title: title,
		Notes: []string{fmt.Sprintf("network=%s", profile.Name)},
		Table: &Table{Headers: []string{"machines", "netflix", "yahoo", "hugewiki"}},
	}
	rows := map[int][]string{}
	for _, machines := range machineSweep {
		rows[machines] = []string{fmt.Sprintf("%d", machines)}
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, machines := range machineSweep {
			cfg := baseConfig(prof, o)
			cfg.Machines = machines
			cfg.Profile = profile
			_, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			rows[machines] = append(rows[machines], fmt.Sprintf("%.0f", tr.Throughput(cfg).PerWorkerPerSec()))
		}
	}
	for _, machines := range machineSweep {
		res.Table.Rows = append(res.Table.Rows, rows[machines])
	}
	return res, nil
}

// Fig10Throughput reproduces Figure 10 (right) on the HPC profile.
func Fig10Throughput(o Options) (*Result, error) {
	return machineThroughput("fig10R", "NOMAD: updates/machine/core/sec vs machines (HPC)", netsim.HPC(), o)
}

// Fig16 reproduces Appendix C Figure 16 (commodity).
func Fig16(o Options) (*Result, error) {
	return machineThroughput("fig16", "NOMAD: updates/machine/core/sec vs machines (commodity)", netsim.Commodity(), o)
}

// Fig12 reproduces Figure 12 (§5.5): both the data and the machine
// count grow together; the synthetic generator fixes the item count
// and scales users and ratings with the machine count.
func Fig12(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig12",
		Title: "Weak scaling: data grows with machines (NOMAD vs DSGD vs DSGD++ vs CCD++)",
		XAxis: "seconds",
		Notes: []string{"§5.5 generator: items fixed, users ∝ machines, commodity network"},
	}
	for _, machines := range []int{2, 4, 8} {
		spec := dataset.Grow(machines, o.Scale/4)
		spec.Seed = o.Seed
		ds, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		for _, algo := range distAlgos() {
			cfg := timedConfig("netflix", o)
			cfg.Machines = machines
			cfg.Profile = netsim.Commodity()
			s, _, err := runSeries(fmt.Sprintf("m=%d %s", machines, algo.Name()), algo, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}
