// Package experiments regenerates every table and figure of the
// paper's evaluation (§5 and Appendices A–F) on the synthetic datasets,
// at a configurable scale. Each experiment is a named Runner in the
// Registry; cmd/nomad-bench and the repository-root benchmarks drive
// them.
//
// Axes match the paper: convergence figures report test RMSE against
// wall-clock seconds, update counts, or seconds×workers; throughput
// figures report updates/worker/second. Absolute values differ from the
// paper (different hardware, simulated network, scaled data) — the
// reproduced object is the *shape*: who wins, roughly by how much, and
// where behaviour crosses over. EXPERIMENTS.md records paper-vs-measured
// for each id.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/metrics"
	"nomad/internal/queue"
	"nomad/internal/textplot"
	"nomad/internal/train"
)

// Options are the global knobs of an experiment run.
type Options struct {
	Scale    float64 // dataset scale factor (fraction of Table 2 sizes)
	Epochs   int     // training sweeps per run (NOMAD scaling figures)
	Seconds  float64 // wall-clock budget per run (solver-comparison figures)
	K        int     // latent dimension
	Workers  int     // threads per machine ("cores")
	Machines int     // machines for distributed experiments
	Seed     uint64
	// Transport selects NOMAD's token transport (queue.KindAuto by
	// default, which resolves to the batched SPSC mesh).
	Transport queue.Kind
}

// WithDefaults fills unset fields with the standard small-scale values.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.002
	}
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.Seconds <= 0 {
		o.Seconds = 1.5
	}
	if o.K <= 0 {
		o.K = 16
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Machines <= 0 {
		o.Machines = 4
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Series is one labeled convergence curve.
type Series struct {
	Label  string
	Points []metrics.Point
}

// Final returns the last RMSE of the series (NaN if empty).
func (s Series) Final() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	return s.Points[len(s.Points)-1].RMSE
}

// Table is simple tabular output.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	XAxis  string // "seconds", "updates", "seconds×workers", or "" for tables
	Notes  []string
	Series []Series
	Table  *Table
}

// Runner regenerates one experiment.
type Runner func(Options) (*Result, error)

// Registry maps experiment ids (see DESIGN.md §3) to runners.
var Registry = map[string]Runner{}

// register is called from the per-figure files' init functions.
func register(id string, r Runner) {
	if _, dup := Registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	Registry[id] = r
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, o Options) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(o.WithDefaults())
}

// --- dataset cache -------------------------------------------------

var (
	cacheMu sync.Mutex
	cache   = map[string]*dataset.Dataset{}
)

// profileScale normalizes the three profiles to comparable total
// sizes at a given Options.Scale: Yahoo has 2.55× and Hugewiki 27.6×
// Netflix's rating count, which at full size is exactly the paper's
// point but at experiment scale would make run times incomparable.
// Each profile keeps its defining ratings-per-item ratio.
var profileScale = map[string]float64{
	"netflix":  1,
	"yahoo":    1 / 2.55,
	"hugewiki": 1 / 27.6,
}

// data returns the named profile generated at the options' scale,
// cached for the lifetime of the process so sweeps share one dataset.
func data(profile string, o Options) (*dataset.Dataset, error) {
	scale := o.Scale
	if f, ok := profileScale[profile]; ok {
		scale *= f
	}
	key := fmt.Sprintf("%s|%g|%d", profile, scale, o.Seed)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := cache[key]; ok {
		return ds, nil
	}
	spec, err := dataset.ByName(profile, scale)
	if err != nil {
		return nil, err
	}
	spec.Seed = o.Seed
	ds, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	cache[key] = ds
	return ds, nil
}

// baseConfig returns the synthetic-data hyper-parameters for a profile
// under the given options, with an epoch (update-count) budget.
func baseConfig(profile string, o Options) train.Config {
	cfg := train.SynthDefaults(profile + "-like")
	cfg.K = o.K
	cfg.Epochs = o.Epochs
	cfg.Seed = o.Seed
	cfg.EvalPoints = 12
	cfg.BoldStep = cfg.Alpha
	cfg.Workers = o.Workers
	cfg.Machines = 1
	cfg.QueueKind = o.Transport
	return cfg
}

// timedConfig returns baseConfig with the stop condition switched to
// the wall-clock budget — the paper's solver comparisons give every
// algorithm equal time, not equal updates.
func timedConfig(profile string, o Options) train.Config {
	cfg := baseConfig(profile, o)
	cfg.Epochs = 0
	cfg.Deadline = time.Duration(o.Seconds * float64(time.Second))
	return cfg
}

// runSeries trains one algorithm and converts its trace to a Series
// with the requested x-axis.
func runSeries(label string, algo train.Algorithm, ds *dataset.Dataset, cfg train.Config, xAxis string, scaleX float64) (Series, *train.Result, error) {
	res, err := algo.Train(context.Background(), ds, cfg, nil)
	if err != nil {
		return Series{}, nil, fmt.Errorf("%s: %w", label, err)
	}
	s := Series{Label: label}
	for _, p := range res.Trace.Points {
		q := p
		if xAxis == "seconds×workers" {
			q.Seconds = p.Seconds * scaleX
		}
		s.Points = append(s.Points, q)
	}
	return s, res, nil
}

// --- rendering -----------------------------------------------------

// Render writes a Result as human-readable text: notes, table, an
// ASCII chart of the convergence curves (the regenerated figure), then
// the raw series data.
func Render(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	if r.Table != nil {
		renderTable(w, r.Table)
	}
	if len(r.Series) > 0 {
		if err := renderChart(w, r); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "-- %s\n", s.Label)
		switch r.XAxis {
		case "updates":
			fmt.Fprintf(w, "   %-14s %s\n", "updates", "testRMSE")
			for _, p := range s.Points {
				fmt.Fprintf(w, "   %-14d %.6f\n", p.Updates, p.RMSE)
			}
		default:
			fmt.Fprintf(w, "   %-14s %s\n", r.XAxis, "testRMSE")
			for _, p := range s.Points {
				fmt.Fprintf(w, "   %-14.3f %.6f\n", p.Seconds, p.RMSE)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

// renderChart draws the result's series as an ASCII figure. Charts cap
// at 8 series (the marker alphabet); larger sweeps plot the first 8
// and say so.
func renderChart(w io.Writer, r *Result) error {
	series := r.Series
	const maxSeries = 8
	if len(series) > maxSeries {
		fmt.Fprintf(w, "   (chart shows first %d of %d series)\n", maxSeries, len(series))
		series = series[:maxSeries]
	}
	ts := make([]textplot.Series, 0, len(series))
	for _, s := range series {
		p := textplot.Series{Label: s.Label}
		for _, pt := range s.Points {
			if r.XAxis == "updates" {
				p.X = append(p.X, float64(pt.Updates))
			} else {
				p.X = append(p.X, pt.Seconds)
			}
			p.Y = append(p.Y, pt.RMSE)
		}
		ts = append(ts, p)
	}
	return textplot.Render(w, ts, textplot.Options{Width: 64, Height: 14, XLabel: r.XAxis, YLabel: "testRMSE"})
}

func renderTable(w io.Writer, t *Table) {
	widths := make([]int, len(t.Headers))
	for c, h := range t.Headers {
		widths[c] = len(h)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = fmt.Sprintf("%-*s", widths[c], cell)
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// fmtI formats an int for table cells.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
