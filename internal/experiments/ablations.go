package experiments

import (
	"fmt"

	"nomad/internal/core"
	"nomad/internal/hogwild"
	"nomad/internal/netsim"
	"nomad/internal/queue"
)

func init() {
	register("abl-queue", AblQueues)
	register("abl-lb", AblLoadBalance)
	register("abl-part", AblPartition)
	register("abl-batch", AblBatchSize)
	register("abl-serial", AblSerializability)
	register("abl-circ", AblCirculation)
}

// AblQueues ablates the token-transport implementation (§3.5 discusses
// TBB's concurrent queue; we compare the batched SPSC ring mesh against
// a mutex ring, a lock-free linked queue and a channel).
func AblQueues(o Options) (*Result, error) {
	ds, err := data("netflix", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"queue", "final RMSE", "updates/sec/worker"}}
	for _, kind := range []queue.Kind{queue.KindSPSC, queue.KindMutex, queue.KindLockFree, queue.KindChan} {
		cfg := baseConfig("netflix", o)
		cfg.QueueKind = kind
		s, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{kind.String(), fmtF(s.Final()),
			fmt.Sprintf("%.0f", tr.Throughput(cfg).PerWorkerPerSec())})
	}
	return &Result{
		ID: "abl-queue", Title: "Ablation: worker queue implementation",
		Notes: []string{"paper §3.5: the queue is not the bottleneck; all variants should be close"},
		Table: t,
	}, nil
}

// AblLoadBalance ablates §3.3 dynamic load balancing with worker 0
// artificially slowed 4×: with balancing on, tokens route away from
// the straggler, so the same wall-clock budget buys more updates.
func AblLoadBalance(o Options) (*Result, error) {
	ds, err := data("netflix", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"load balancing", "final RMSE", "updates"}}
	for _, lb := range []bool{false, true} {
		cfg := timedConfig("netflix", o) // equal wall-clock budget
		cfg.Straggle = 4
		cfg.LoadBalance = lb
		s, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%v", lb), fmtF(s.Final()), fmtI(tr.Updates)})
	}
	return &Result{
		ID: "abl-lb", Title: "Ablation: §3.3 dynamic load balancing with a 4× straggler (equal time)",
		Table: t,
	}, nil
}

// AblPartition ablates the paper's footnote-1 user-partitioning
// alternative: equal user counts versus equal rating counts, on the
// degree-skewed netflix profile.
func AblPartition(o Options) (*Result, error) {
	ds, err := data("netflix", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"user partition", "final RMSE", "updates"}}
	for _, balanced := range []bool{false, true} {
		cfg := timedConfig("netflix", o)
		cfg.BalanceUsers = balanced
		label := "equal users"
		if balanced {
			label = "equal ratings (footnote 1)"
		}
		s, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{label, fmtF(s.Final()), fmtI(tr.Updates)})
	}
	return &Result{
		ID: "abl-part", Title: "Ablation: user partitioning by count vs by rating volume (equal time)",
		Table: t,
	}, nil
}

// AblBatchSize ablates the §3.5 message-batching size on a commodity
// network: batches too small spend the run in per-message latency,
// batches too large delay fresh parameters.
func AblBatchSize(o Options) (*Result, error) {
	// Yahoo profile: the largest item count, so tokens actually queue
	// up and batching has something to batch.
	ds, err := data("yahoo", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"batch", "final RMSE", "updates", "messages", "bytes"}}
	for _, batch := range []int{1, 10, 100, 1000} {
		cfg := timedConfig("yahoo", o)
		cfg.Machines = o.Machines
		cfg.Profile = netsim.Commodity()
		cfg.BatchSize = batch
		s, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmtI(int64(batch)), fmtF(s.Final()),
			fmtI(tr.Updates), fmtI(tr.MessagesSent), fmtI(tr.BytesSent)})
	}
	return &Result{
		ID: "abl-batch", Title: "Ablation: §3.5 message batch size (commodity network, equal time)",
		Notes: []string{"the paper batches ~100 pairs per message"},
		Table: t,
	}, nil
}

// AblSerializability compares NOMAD against Hogwild at an equal update
// budget: NOMAD's serializable (never-stale, never-raced) updates
// should buy a lower RMSE per update (§4.3).
func AblSerializability(o Options) (*Result, error) {
	ds, err := data("netflix", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"algorithm", "updates", "final RMSE"}}
	for _, algo := range []interface {
		Name() string
	}{core.New(), hogwild.New()} {
		cfg := baseConfig("netflix", o)
		cfg.Workers = o.Workers
		switch a := algo.(type) {
		case *core.NOMAD:
			s, tr, err := runSeries("", a, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"nomad (serializable)", fmtI(tr.Updates), fmtF(s.Final())})
		case *hogwild.Hogwild:
			s, tr, err := runSeries("", a, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"hogwild (non-serializable)", fmtI(tr.Updates), fmtF(s.Final())})
		}
	}
	return &Result{
		ID: "abl-serial", Title: "Ablation: serializable NOMAD vs non-serializable Hogwild",
		Notes: []string{"equal epoch budget; §4.3 predicts NOMAD converges at least as fast per update"},
		Table: t,
	}, nil
}

// AblCirculation ablates §3.4's intra-machine circulation count. The
// paper found visiting local workers more than once does not help.
func AblCirculation(o Options) (*Result, error) {
	ds, err := data("yahoo", o)
	if err != nil {
		return nil, err
	}
	t := &Table{Headers: []string{"circulations", "final RMSE", "messages", "bytes"}}
	for _, c := range []int{1, 2} {
		cfg := baseConfig("yahoo", o)
		cfg.Machines = o.Machines
		cfg.Profile = netsim.HPC()
		cfg.Circulate = c
		s, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmtI(int64(c)), fmtF(s.Final()),
			fmtI(tr.MessagesSent), fmtI(tr.BytesSent)})
	}
	return &Result{
		ID: "abl-circ", Title: "Ablation: §3.4 intra-machine circulation count",
		Table: t,
	}, nil
}
