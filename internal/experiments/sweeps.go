package experiments

import (
	"fmt"
	"time"

	"nomad/internal/ccd"
	"nomad/internal/core"
	"nomad/internal/dsgd"
	"nomad/internal/netsim"
	"nomad/internal/train"
)

func init() {
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("fig20", Fig20)
}

// lambdaFactors are multipliers applied to each profile's default λ,
// standing in for the paper's absolute λ grids (Figs 13 and 20) which
// were tuned to the proprietary datasets.
var lambdaFactors = []float64{0.1, 0.5, 1, 10}

// Fig13 reproduces Appendix A Figure 13: NOMAD's convergence across a
// λ sweep on all three datasets. Expected shape: too-small λ overfits
// (test RMSE rises after an early minimum), too-large λ underfits,
// and NOMAD converges stably in every case.
func Fig13(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig13",
		Title: "NOMAD convergence vs regularization λ",
		XAxis: "seconds",
		Notes: []string{"λ values are multiples of each profile's default"},
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		base := baseConfig(prof, o)
		for _, f := range lambdaFactors {
			cfg := base
			cfg.Lambda = base.Lambda * f
			s, _, err := runSeries(fmt.Sprintf("%s λ=%.4g", prof, cfg.Lambda),
				core.New(), ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig14 reproduces Appendix B Figure 14: NOMAD's convergence across a
// latent-dimension sweep. The synthetic ground truth has rank 16, so
// small k underfits and large k converges slower per second but can
// reach lower RMSE — mirroring the paper's richer-model trade-off.
func Fig14(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig14",
		Title: "NOMAD convergence vs latent dimension k",
		XAxis: "seconds",
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{4, 8, 16, 32} {
			cfg := baseConfig(prof, o)
			cfg.K = k
			s, _, err := runSeries(fmt.Sprintf("%s k=%d", prof, k),
				core.New(), ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig20 reproduces Appendix E Figure 20: NOMAD vs DSGD vs CCD++ on an
// HPC cluster across the λ grid. The paper's finding to reproduce:
// the two SGD methods react to λ similarly; CCD++'s greedy descent
// overfits at small λ but converges quickly at large λ; NOMAD is
// competitive with the better of the other two everywhere.
func Fig20(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig20",
		Title: "λ grid: NOMAD vs DSGD vs CCD++ (HPC cluster)",
		XAxis: "seconds",
		Notes: []string{fmt.Sprintf("machines=%d", o.Machines)},
	}
	algos := []train.Algorithm{core.New(), dsgd.New(), ccd.New()}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		base := baseConfig(prof, o)
		for _, f := range lambdaFactors {
			for _, algo := range algos {
				cfg := base
				cfg.Lambda = base.Lambda * f
				cfg.Machines = o.Machines
				cfg.Profile = netsim.HPC()
				cfg.Epochs = 0
				cfg.Deadline = time.Duration(o.Seconds * float64(time.Second))
				s, _, err := runSeries(fmt.Sprintf("%s λ=%.4g %s", prof, cfg.Lambda, algo.Name()),
					algo, ds, cfg, "seconds", 1)
				if err != nil {
					return nil, err
				}
				res.Series = append(res.Series, s)
			}
		}
	}
	return res, nil
}
