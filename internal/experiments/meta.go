package experiments

import (
	"fmt"

	"nomad/internal/train"
)

func init() {
	register("table1", Table1Exp)
	register("table2", Table2Exp)
	register("fig1", Fig1)
	register("fig4", Fig4)
}

// Table1Exp reproduces Table 1: the hyper-parameters used per dataset,
// both the paper's originals and this repository's synthetic-scale
// equivalents.
func Table1Exp(o Options) (*Result, error) {
	t := &Table{Headers: []string{"dataset", "k", "λ", "α", "β", "source"}}
	for _, prof := range []string{"netflix-like", "yahoo-like", "hugewiki-like"} {
		c, ok := train.Table1(prof)
		if !ok {
			return nil, fmt.Errorf("missing Table 1 entry for %s", prof)
		}
		t.Rows = append(t.Rows, []string{prof, fmtI(int64(c.K)), fmt.Sprintf("%g", c.Lambda),
			fmt.Sprintf("%g", c.Alpha), fmt.Sprintf("%g", c.Beta), "paper Table 1"})
		s := train.SynthDefaults(prof)
		t.Rows = append(t.Rows, []string{prof, fmtI(int64(o.K)), fmt.Sprintf("%g", s.Lambda),
			fmt.Sprintf("%g", s.Alpha), fmt.Sprintf("%g", s.Beta), "synthetic defaults"})
	}
	return &Result{ID: "table1", Title: "Hyper-parameters (paper Table 1 vs synthetic defaults)", Table: t}, nil
}

// Table2Exp reproduces Table 2: dataset shapes. For each profile it
// reports the generated matrix next to the paper's target ratios.
func Table2Exp(o Options) (*Result, error) {
	t := &Table{Headers: []string{"dataset", "rows", "cols", "train nnz", "test nnz",
		"ratings/item", "paper ratings/item"}}
	paperPerItem := map[string]float64{"netflix": 5575, "yahoo": 404, "hugewiki": 68790}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		st := ds.Stats()
		t.Rows = append(t.Rows, []string{
			st.Name, fmtI(int64(st.Rows)), fmtI(int64(st.Cols)), fmtI(int64(st.TrainNNZ)),
			fmtI(int64(st.TestNNZ)), fmt.Sprintf("%.0f", st.RatingsPerItem),
			fmt.Sprintf("%.0f (×%g scale)", paperPerItem[prof], o.Scale),
		})
	}
	return &Result{
		ID: "table2", Title: "Dataset shapes (synthetic, scaled Table 2)",
		Notes: []string{"ratings/item is scale-invariant by construction; see DESIGN.md substitutions"},
		Table: t,
	}, nil
}

// Fig1 quantifies Figure 1: how many item parameters one update reads
// under ALS/CCD (all of Ωᵢ) versus SGD (exactly one). The table
// reports the mean and max over users of the generated datasets.
func Fig1(o Options) (*Result, error) {
	t := &Table{Headers: []string{"dataset", "ALS/CCD reads per wᵢ update (mean)", "(max)", "SGD reads per update"}}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		rs := ds.Train.RowStats()
		t.Rows = append(t.Rows, []string{prof, fmt.Sprintf("%.1f", rs.Mean), fmtI(int64(rs.Max)), "1"})
	}
	return &Result{
		ID: "fig1", Title: "Update access patterns (Fig 1): ALS/CCD vs SGD",
		Notes: []string{"SGD's single-row reads are what make NOMAD's fine-grained parallelism possible (§3)"},
		Table: t,
	}, nil
}

// Fig4 reproduces Figure 4's comparison of data-partitioning schemes:
// the number and granularity of blocks each algorithm can schedule
// independently, for this run's worker count and item count.
func Fig4(o Options) (*Result, error) {
	ds, err := data("netflix", o)
	if err != nil {
		return nil, err
	}
	p := o.Workers * o.Machines
	n := ds.Cols()
	t := &Table{Headers: []string{"algorithm", "blocks", "granularity"}}
	t.Rows = append(t.Rows, []string{"DSGD", fmt.Sprintf("%d×%d", p, p), "item block per worker"})
	t.Rows = append(t.Rows, []string{"DSGD++", fmt.Sprintf("%d×%d", p, 2*p), "half-size item blocks"})
	t.Rows = append(t.Rows, []string{"FPSGD**", fmt.Sprintf("%d×%d", 2*p, 2*p), "grid with free-block scheduling"})
	t.Rows = append(t.Rows, []string{"NOMAD", fmt.Sprintf("%d×%d", p, n), "one block per item (finest)"})
	return &Result{
		ID: "fig4", Title: "Partitioning schemes (Fig 4)",
		Notes: []string{fmt.Sprintf("p=%d workers, n=%d items; finer blocks ⇒ more scheduling freedom (§4.1)", p, n)},
		Table: t,
	}, nil
}
