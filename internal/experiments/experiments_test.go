package experiments

import (
	"strings"
	"testing"
)

// tinyOpts keeps experiment smoke tests fast.
func tinyOpts() Options {
	return Options{Scale: 0.0003, Epochs: 3, Seconds: 0.3, K: 8, Workers: 2, Machines: 2, Seed: 5}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised in DESIGN.md's index must be registered.
	want := []string{
		"table1", "table2", "fig1", "fig4",
		"fig5", "fig6L", "fig6R", "fig7",
		"fig8", "fig9", "fig10L", "fig10R", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23",
		"abl-queue", "abl-lb", "abl-part", "abl-batch", "abl-serial", "abl-circ",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, DESIGN.md lists %d", len(Registry), len(want))
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyOpts()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "fig1", "fig4"} {
		res, err := Run(id, tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Table == nil || len(res.Table.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestFig5SmokeAndShape(t *testing.T) {
	res, err := Run("fig5", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 9 { // 3 datasets × 3 algorithms
		t.Fatalf("fig5 has %d series, want 9", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) < 2 {
			t.Errorf("series %q too short", s.Label)
			continue
		}
		// Every solver must improve over the initial model at its best
		// point — except CCD++ on hugewiki-like data, which overfits
		// from the start at small λ (the deterioration the paper's own
		// Fig 5 shows).
		if strings.Contains(s.Label, "hugewiki ccd") {
			continue
		}
		first := s.Points[0].RMSE
		best := first
		for _, p := range s.Points[1:] {
			if p.RMSE < best {
				best = p.RMSE
			}
		}
		if best >= first {
			t.Errorf("series %q never improved from %.4f", s.Label, first)
		}
		if strings.Contains(s.Label, "nomad") && s.Final() >= first {
			t.Errorf("nomad series %q regressed: %.4f -> %.4f", s.Label, first, s.Final())
		}
	}
}

func TestFig6ThroughputTable(t *testing.T) {
	res, err := Run("fig6R", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != len(coreSweep) {
		t.Fatalf("fig6R rows = %d, want %d", len(res.Table.Rows), len(coreSweep))
	}
}

func TestAblationLoadBalance(t *testing.T) {
	res, err := Run("abl-lb", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("abl-lb rows = %d, want 2", len(res.Table.Rows))
	}
}

func TestRenderSeriesAndTable(t *testing.T) {
	res, err := Run("table1", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "netflix-like") {
		t.Errorf("render output missing content:\n%s", out)
	}
}

func TestRenderChartsConvergenceFigures(t *testing.T) {
	res, err := Run("fig21", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The ASCII figure must be present: axis frame and legend markers.
	if !strings.Contains(out, "+----") {
		t.Errorf("chart frame missing:\n%s", out)
	}
	if !strings.Contains(out, "* netflix nomad") {
		t.Errorf("chart legend missing:\n%s", out)
	}
}

func TestDistributedComparisonSmoke(t *testing.T) {
	// fig8's four-way distributed comparison at tiny scale: all series
	// must exist and improve at their best point.
	res, err := Run("fig8", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 12 { // 3 profiles × 4 algorithms
		t.Fatalf("fig8 series = %d, want 12", len(res.Series))
	}
	for _, s := range res.Series {
		// CCD++ on hugewiki-like data overfits from the start at small
		// λ — the deterioration the paper itself shows in Figs 5 and 8
		// — so it is exempt from the improvement check.
		if strings.Contains(s.Label, "hugewiki ccd") {
			continue
		}
		first := s.Points[0].RMSE
		best := first
		for _, p := range s.Points[1:] {
			if p.RMSE < best {
				best = p.RMSE
			}
		}
		if best >= first {
			t.Errorf("series %q never improved from %.4f", s.Label, first)
		}
	}
}

func TestWeakScalingSmoke(t *testing.T) {
	res, err := Run("fig12", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 12 { // 3 machine counts × 4 algorithms
		t.Fatalf("fig12 series = %d, want 12", len(res.Series))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale <= 0 || o.Epochs <= 0 || o.K <= 0 || o.Workers <= 0 || o.Machines <= 0 || o.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", o)
	}
}

func TestDataCaching(t *testing.T) {
	o := tinyOpts()
	a, err := data("netflix", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := data("netflix", o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not cached")
	}
}
