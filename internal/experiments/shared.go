package experiments

import (
	"fmt"

	"nomad/internal/ccd"
	"nomad/internal/core"
	"nomad/internal/fpsgd"
	"nomad/internal/train"
)

func init() {
	register("fig5", Fig5)
	register("fig6L", Fig6Updates)
	register("fig6R", Fig6Throughput)
	register("fig7", Fig7)
	register("fig18", Fig18)
}

var profiles = []string{"netflix", "yahoo", "hugewiki"}

// coreSweep is the {4, 8, 16, 30}-cores sweep of the paper, scaled to
// worker-goroutine counts sensible for one process.
var coreSweep = []int{1, 2, 4, 8}

// Fig5 reproduces Figure 5: single machine, all cores, NOMAD vs
// FPSGD** vs CCD++ on all three datasets; test RMSE vs seconds.
func Fig5(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig5",
		Title: "Shared memory: NOMAD vs FPSGD** vs CCD++ (test RMSE vs seconds)",
		XAxis: "seconds",
		Notes: []string{fmt.Sprintf("workers=%d, scale=%g; paper Fig 5 used 30 cores on Stampede", o.Workers, o.Scale)},
	}
	algos := []train.Algorithm{core.New(), fpsgd.New(), ccd.New()}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			cfg := timedConfig(prof, o)
			s, _, err := runSeries(prof+" "+algo.Name(), algo, ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig6Updates reproduces Figure 6 (left): NOMAD's test RMSE as a
// function of the number of updates on yahoo-like data as the worker
// count varies. The paper's observation — more workers converge faster
// *per update* because tokens circulate fresher information — is the
// target shape.
func Fig6Updates(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig6L",
		Title: "NOMAD: test RMSE vs updates as cores vary (yahoo-like)",
		XAxis: "updates",
	}
	ds, err := data("yahoo", o)
	if err != nil {
		return nil, err
	}
	for _, workers := range coreSweep {
		cfg := baseConfig("yahoo", o)
		cfg.Workers = workers
		s, _, err := runSeries(fmt.Sprintf("cores=%d", workers), core.New(), ds, cfg, "updates", 1)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig6Throughput reproduces Figure 6 (right): NOMAD updates per core
// per second as the core count varies, for all three datasets.
func Fig6Throughput(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig6R",
		Title: "NOMAD throughput: updates/core/sec vs cores",
		Notes: []string{"host parallelism bounds wall-clock scaling; see EXPERIMENTS.md"},
		Table: &Table{Headers: []string{"cores", "netflix", "yahoo", "hugewiki"}},
	}
	rows := map[int][]string{}
	for _, workers := range coreSweep {
		rows[workers] = []string{fmt.Sprintf("%d", workers)}
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, workers := range coreSweep {
			cfg := baseConfig(prof, o)
			cfg.Workers = workers
			_, tr, err := runSeries("", core.New(), ds, cfg, "seconds", 1)
			if err != nil {
				return nil, err
			}
			tp := tr.Throughput(cfg).PerWorkerPerSec()
			rows[workers] = append(rows[workers], fmt.Sprintf("%.0f", tp))
		}
	}
	for _, workers := range coreSweep {
		res.Table.Rows = append(res.Table.Rows, rows[workers])
	}
	return res, nil
}

// Fig7 reproduces Figure 7: test RMSE against seconds×cores. If the
// curves for different core counts coincide, scaling is linear.
func Fig7(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig7",
		Title: "NOMAD: test RMSE vs seconds×cores as cores vary",
		XAxis: "seconds×workers",
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, workers := range coreSweep {
			cfg := baseConfig(prof, o)
			cfg.Workers = workers
			s, _, err := runSeries(fmt.Sprintf("%s cores=%d", prof, workers),
				core.New(), ds, cfg, "seconds×workers", float64(workers))
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig18 reproduces Appendix D Figure 18: RMSE vs updates under the
// core sweep for all three datasets (the full version of Fig 6 left).
func Fig18(o Options) (*Result, error) {
	res := &Result{
		ID:    "fig18",
		Title: "NOMAD: test RMSE vs updates as cores vary (all datasets)",
		XAxis: "updates",
	}
	for _, prof := range profiles {
		ds, err := data(prof, o)
		if err != nil {
			return nil, err
		}
		for _, workers := range coreSweep {
			cfg := baseConfig(prof, o)
			cfg.Workers = workers
			s, _, err := runSeries(fmt.Sprintf("%s cores=%d", prof, workers),
				core.New(), ds, cfg, "updates", 1)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}
