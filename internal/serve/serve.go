// Package serve is the recommendation serving layer: it answers
// top-N queries over a trained factor model at request latency, while
// training keeps producing newer models in the background.
//
// The design (DESIGN.md §12) has four load-bearing pieces:
//
//   - Store: an RCU-style epoch holder. Requests Acquire the current
//     Epoch (model + candidate index) with a refcount, a background
//     promotion atomically swaps in a new epoch, and the old epoch is
//     drained — kept alive until its last in-flight request Releases —
//     so a hot model swap drops zero requests.
//
//   - Watcher: a directory poller that turns checkpoint files written
//     by training into promotions. Files are validated (magic, shape,
//     precision) before they are promoted; a truncated or mismatched
//     file is rejected and remembered, never served.
//
//   - Index: a norm-ordered candidate pre-filter. Items are scanned in
//     descending ‖hⱼ‖ order, so once the top-N heap is full and
//     ‖w_u‖·‖hⱼ‖ falls below the heap's admission threshold no
//     remaining item can enter the result — an admissible (exact)
//     early exit that prunes the bulk of a long-tail catalog.
//
//   - Gateway/ServeShard: scatter/gather over cluster.Link. Item
//     factors are sharded by the same ownership-map machinery the
//     trainer uses (partition.EqualRanges broadcast via the netlink
//     rendezvous); each shard answers its local top-N and the gateway
//     merges with the shared internal/topn heap. Disjoint parts make
//     the merge exact.
//
// The result is bit-compatible with Model.Recommend: same dispatched
// dot kernels, same heap, same tie-breaking — asserted by tests and by
// the serve-smoke CI job's equality check.
package serve

import (
	"fmt"
	"time"

	"nomad/internal/factor"
)

// Source locates the model(s) a serving stack reads. Exactly one of
// Path (a static model or checkpoint file) and WatchDir (a directory
// of epoch-numbered files, hot-swapped as they appear) must be set.
type Source struct {
	// Path is a single model/checkpoint file, loaded once.
	Path string
	// WatchDir is a directory polled for epoch-numbered model or
	// checkpoint files ("model-7.bin"); the highest epoch wins and new
	// epochs are promoted live.
	WatchDir string
	// Poll is the watch interval (default 200ms).
	Poll time.Duration
}

func (src Source) poll() time.Duration {
	if src.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return src.Poll
}

// Open builds a Store (and, for WatchDir sources, a running Watcher)
// over the source. owned restricts the candidate index to an item
// shard (nil = all items). validate, when non-nil, vets the first
// loaded model (e.g. against the exclusion dataset's shape). For
// WatchDir sources an empty directory is not an error: the store
// starts empty (requests 503) and fills on the first valid file.
func (src Source) Open(owned []int32, validate func(md *factor.Model) error) (*Store, *Watcher, error) {
	switch {
	case src.Path != "" && src.WatchDir != "":
		return nil, nil, fmt.Errorf("serve: source has both a static path and a watch directory")
	case src.Path == "" && src.WatchDir == "":
		return nil, nil, fmt.Errorf("serve: source has neither a static path nor a watch directory")
	}
	store := NewStore()
	if src.Path != "" {
		ep, err := LoadEpoch(src.Path, 1, owned)
		if err != nil {
			return nil, nil, err
		}
		if validate != nil {
			if err := validate(ep.Model); err != nil {
				return nil, nil, err
			}
		}
		store.Promote(ep)
		return store, nil, nil
	}
	w := NewWatcher(store, src.WatchDir, owned, src.poll(), validate)
	if _, err := w.ScanOnce(); err != nil {
		return nil, nil, err
	}
	return store, w, nil
}

// ConfigDigest summarizes the serving configuration for the
// rendezvous handshake, so a shard joining with a different model
// shape or shard count is refused before any traffic flows. FNV-1a
// over the shape tuple.
func ConfigDigest(m, n, k int, prec factor.Precision, shards int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range []uint64{uint64(m), uint64(n), uint64(k), uint64(prec), uint64(shards), 0x73657276} { // "serv"
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	return h
}
