package serve

import (
	"context"
	"testing"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/partition"
	"nomad/internal/topn"
)

func TestShardWireRoundTrip(t *testing.T) {
	req := shardReq{
		id:    77,
		user:  5,
		n:     12,
		row:   []float64{1.5, -2.25, 0.0078125, 3e-9},
		rated: []int32{1, 9, 200},
	}
	got, err := decodeShardReq(encodeShardReq(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if got.id != req.id || got.user != req.user || got.n != req.n ||
		len(got.row) != len(req.row) || len(got.rated) != len(req.rated) {
		t.Fatalf("req round trip: %+v", got)
	}
	for i := range req.row {
		if got.row[i] != req.row[i] {
			t.Fatalf("row[%d] = %v", i, got.row[i])
		}
	}
	resp := shardResp{
		id:     77,
		status: shardOK,
		epoch:  3,
		recs:   []topn.Rec{{Item: 4, Score: 1.25}, {Item: 2, Score: -0.5}},
		stats:  ScanStats{Scanned: 100, Pruned: 900},
	}
	rgot, err := decodeShardResp(encodeShardResp(nil, resp))
	if err != nil {
		t.Fatal(err)
	}
	if rgot.id != resp.id || rgot.epoch != resp.epoch || rgot.stats != resp.stats ||
		len(rgot.recs) != 2 || rgot.recs[0] != resp.recs[0] || rgot.recs[1] != resp.recs[1] {
		t.Fatalf("resp round trip: %+v", rgot)
	}
	if _, err := decodeShardReq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := decodeShardResp(encodeShardResp(nil, resp)[:20]); err == nil {
		t.Fatal("short response accepted")
	}
}

// gatherHarness boots a gateway plus shards-1 peer shard servers over
// an in-process simulated cluster, each owning one contiguous item
// range of md — the same partition.EqualRanges split training uses.
func gatherHarness(t *testing.T, md *factor.Model, shards int) (*Gateway, func()) {
	t.Helper()
	sim := cluster.NewSimCluster(shards, netsim.Instant(), md.K)
	links := sim.Links()
	parts := partition.EqualRanges(md.N, shards)
	localStore := NewStore()
	localStore.Promote(&Epoch{Seq: 1, Model: md, Index: BuildIndex(md, parts.Part(0))})
	gw := NewGateway(links[0], localStore, 5*time.Second)
	go gw.Dispatch()

	ctx, cancel := context.WithCancel(context.Background())
	for rank := 1; rank < shards; rank++ {
		st := NewStore()
		st.Promote(&Epoch{Seq: 1, Model: md, Index: BuildIndex(md, parts.Part(rank))})
		go ServeShard(ctx, links[rank], st) //nolint:errcheck // torn down by cancel
	}
	return gw, func() {
		cancel()
		sim.Close()
	}
}

func TestGatherMatchesSingleShard(t *testing.T) {
	for _, prec := range []factor.Precision{factor.Float64, factor.Float32} {
		md := factor.NewInitP(10, 400, 8, 21, prec)
		full := BuildIndex(md, nil)
		gw, done := gatherHarness(t, md, 3)
		for user := 0; user < 10; user++ {
			rated := []int32{int32(user), int32(user + 100), int32(user + 350)}
			want, _ := indexQuery(full, md, user, 20, rated)
			res, err := gw.Gather(int32(user), 20, wireUserRow(md, user), rated)
			if err != nil {
				t.Fatal(err)
			}
			if res.Shards != 3 || res.Epoch != 1 {
				t.Fatalf("gather meta: %+v", res)
			}
			sameRecs(t, res.Recs, want)
		}
		done()
	}
}

func TestGatherEmptyShard(t *testing.T) {
	md := factor.NewInitP(4, 60, 4, 2, factor.Float64)
	sim := cluster.NewSimCluster(2, netsim.Instant(), md.K)
	links := sim.Links()
	defer sim.Close()
	localStore := NewStore()
	localStore.Promote(&Epoch{Seq: 1, Model: md, Index: BuildIndex(md, nil)})
	gw := NewGateway(links[0], localStore, time.Second)
	go gw.Dispatch()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ServeShard(ctx, links[1], NewStore()) //nolint:errcheck // torn down by cancel
	if _, err := gw.Gather(0, 5, wireUserRow(md, 0), nil); err == nil {
		t.Fatal("gather over an empty shard succeeded")
	}
}
