package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nomad/internal/factor"
	"nomad/internal/topn"
	"nomad/internal/train"
)

// naiveTopN is the unpruned oracle: score every item with
// Model.Predict, exclude rated, keep the deterministic top-N.
func naiveTopN(md *factor.Model, user, n int, rated []int32) []topn.Rec {
	h := topn.NewHeap(n)
	for j := 0; j < md.N; j++ {
		if ratedContains(rated, int32(j)) {
			continue
		}
		h.Offer(topn.Rec{Item: int32(j), Score: md.Predict(user, j)})
	}
	return h.Sorted()
}

func sameRecs(t *testing.T, got, want []topn.Rec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d recs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rec %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func indexQuery(ix *Index, md *factor.Model, user, n int, rated []int32) ([]topn.Rec, ScanStats) {
	h := topn.NewHeap(n)
	var st ScanStats
	if md.Precision() == factor.Float32 {
		st = ix.TopN(nil, md.UserRow32(user), md.UserNorm(user), rated, h)
	} else {
		st = ix.TopN(md.UserRow(user), nil, md.UserNorm(user), rated, h)
	}
	return h.Sorted(), st
}

func TestIndexMatchesNaiveScan(t *testing.T) {
	for _, prec := range []factor.Precision{factor.Float64, factor.Float32} {
		md := factor.NewInitP(40, 500, 8, 11, prec)
		if prec == factor.Float32 {
			// Duplicate rows to force exact score ties across item ids.
			copy(md.HData32()[10*8:11*8], md.HData32()[200*8:201*8])
			copy(md.HData32()[11*8:12*8], md.HData32()[200*8:201*8])
		} else {
			copy(md.HData()[10*8:11*8], md.HData()[200*8:201*8])
			copy(md.HData()[11*8:12*8], md.HData()[200*8:201*8])
		}
		ix := BuildIndex(md, nil)
		rng := rand.New(rand.NewSource(5))
		for user := 0; user < 40; user++ {
			var rated []int32
			for j := int32(0); j < 500; j++ {
				if rng.Intn(10) == 0 {
					rated = append(rated, j)
				}
			}
			for _, n := range []int{1, 10, 100} {
				got, _ := indexQuery(ix, md, user, n, rated)
				sameRecs(t, got, naiveTopN(md, user, n, rated))
			}
		}
	}
}

func TestIndexPrunesLongTail(t *testing.T) {
	// With a heavy-tailed norm distribution most items must be pruned,
	// otherwise the "single-digit ms at 600K items" budget is fiction.
	md := factor.NewInitP(4, 20000, 8, 3, factor.Float64)
	h := md.HData()
	rng := rand.New(rand.NewSource(9))
	for j := 0; j < 20000; j++ {
		scale := 1.0 / float64(1+rng.Intn(1000))
		for x := 0; x < 8; x++ {
			h[j*8+x] *= scale
		}
	}
	ix := BuildIndex(md, nil)
	recs, st := indexQuery(ix, md, 0, 10, nil)
	sameRecs(t, recs, naiveTopN(md, 0, 10, nil))
	if st.Pruned == 0 || st.Scanned > 20000/2 {
		t.Fatalf("no meaningful pruning: scanned %d pruned %d", st.Scanned, st.Pruned)
	}
}

func TestIndexShardEquivalence(t *testing.T) {
	// Union of disjoint shard top-Ns merged == full-catalog top-N.
	md := factor.NewInitP(8, 300, 4, 7, factor.Float64)
	full := BuildIndex(md, nil)
	var shards []*Index
	for lo := 0; lo < 300; lo += 100 {
		owned := make([]int32, 100)
		for i := range owned {
			owned[i] = int32(lo + i)
		}
		shards = append(shards, BuildIndex(md, owned))
	}
	for user := 0; user < 8; user++ {
		want, _ := indexQuery(full, md, user, 15, nil)
		var parts [][]topn.Rec
		for _, ix := range shards {
			part, _ := indexQuery(ix, md, user, 15, nil)
			parts = append(parts, part)
		}
		sameRecs(t, topn.Merge(15, parts...), want)
	}
}

func TestStoreSwapAndDrain(t *testing.T) {
	s := NewStore()
	if s.Acquire() != nil {
		t.Fatal("empty store returned an epoch")
	}
	md := factor.NewInitP(2, 10, 4, 1, factor.Float64)
	e1 := &Epoch{Seq: 1, Model: md, Index: BuildIndex(md, nil)}
	s.Promote(e1)
	held := s.Acquire()
	if held == nil || held.Seq != 1 {
		t.Fatalf("acquire after promote: %+v", held)
	}
	e2 := &Epoch{Seq: 2, Model: md, Index: BuildIndex(md, nil)}
	s.Promote(e2)
	// e1 is retired but still referenced: not drained yet.
	if st := s.Stats(); st.Swaps != 2 || st.Drains != 0 {
		t.Fatalf("stats before release: %+v", st)
	}
	if got := s.Acquire(); got == nil || got.Seq != 2 {
		t.Fatalf("current epoch after swap: %+v", got)
	} else {
		got.Release()
	}
	held.Release()
	if st := s.Stats(); st.Drains != 1 {
		t.Fatalf("stats after release: %+v", st)
	}
	// A drained epoch can never be re-acquired.
	if e1.acquire() {
		t.Fatal("drained epoch re-acquired")
	}
}

// TestStoreConcurrentSwap hammers Acquire/scan/Release from many
// goroutines while epochs are promoted underneath them — the
// hot-swap-drops-zero-requests property, run under -race in CI.
func TestStoreConcurrentSwap(t *testing.T) {
	s := NewStore()
	models := make([]*factor.Model, 4)
	for i := range models {
		models[i] = factor.NewInitP(8, 200, 4, uint64(i+1), factor.Float64)
	}
	s.Promote(&Epoch{Seq: 1, Model: models[0], Index: BuildIndex(models[0], nil)})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := s.Acquire()
				if ep == nil {
					t.Error("acquire returned nil while serving")
					return
				}
				h := topn.NewHeap(5)
				user := (w + i) % ep.Model.M
				ep.Index.TopN(ep.Model.UserRow(user), nil, ep.Model.UserNorm(user), nil, h)
				if len(h.Sorted()) != 5 {
					t.Error("short result during swap")
					ep.Release()
					return
				}
				ep.Release()
			}
		}(w)
	}
	for seq := uint64(2); seq <= 40; seq++ {
		md := models[seq%4]
		s.Promote(&Epoch{Seq: seq, Model: md, Index: BuildIndex(md, nil)})
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.Swaps != 40 {
		t.Fatalf("swaps = %d", st.Swaps)
	}
	// Every retired epoch must eventually drain (39 retired, the 40th
	// is still current and holds the store reference).
	if st.Drains != 39 {
		t.Fatalf("drains = %d, want 39", st.Drains)
	}
}

func writeModelFile(t *testing.T, path string, md *factor.Model) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWatcherPromotesAndRejects(t *testing.T) {
	dir := t.TempDir()
	md := factor.NewInitP(6, 50, 4, 3, factor.Float64)
	store := NewStore()
	w := NewWatcher(store, dir, nil, time.Millisecond, nil)

	// Empty directory: no promotion, no error.
	if promoted, err := w.ScanOnce(); err != nil || promoted {
		t.Fatalf("empty dir: promoted=%v err=%v", promoted, err)
	}

	// Ignored files: no digits, dotfile, in-progress extension.
	writeModelFile(t, filepath.Join(dir, "model.bin"), md)
	writeModelFile(t, filepath.Join(dir, ".model-9.bin"), md)
	writeModelFile(t, filepath.Join(dir, "model-9.bin.tmp"), md)
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("promoted from an ignored file")
	}

	writeModelFile(t, filepath.Join(dir, "model-1.bin"), md)
	if promoted, err := w.ScanOnce(); err != nil || !promoted {
		t.Fatalf("valid file: promoted=%v err=%v", promoted, err)
	}
	if store.Seq() != 1 {
		t.Fatalf("seq = %d", store.Seq())
	}

	// Truncated file: rejected, and the same bytes are not retried.
	writeModelFile(t, filepath.Join(dir, "model-2.bin"), md)
	full, err := os.ReadFile(filepath.Join(dir, "model-2.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model-2.bin"), full[:len(full)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("promoted a truncated file")
	}
	if n, msg := w.Rejects(); n != 1 || msg == "" {
		t.Fatalf("rejects = %d (%q)", n, msg)
	}
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("re-promoted an unchanged bad file")
	}
	if n, _ := w.Rejects(); n != 1 {
		t.Fatalf("unchanged bad file re-rejected: %d", n)
	}

	// Precision mismatch: a float32 file in a float64 serving dir.
	writeModelFile(t, filepath.Join(dir, "model-3.bin"), md.Convert(factor.Float32))
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("promoted a precision-mismatched file")
	}

	// Shape mismatch.
	writeModelFile(t, filepath.Join(dir, "model-4.bin"), factor.NewInitP(6, 51, 4, 3, factor.Float64))
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("promoted a shape-mismatched file")
	}

	// A valid higher epoch still goes through after all that.
	writeModelFile(t, filepath.Join(dir, "model-5.bin"), md)
	if promoted, _ := w.ScanOnce(); !promoted {
		t.Fatal("valid successor not promoted")
	}
	if store.Seq() != 5 {
		t.Fatalf("seq = %d", store.Seq())
	}

	// Lower or equal epochs are never revisited.
	if promoted, _ := w.ScanOnce(); promoted {
		t.Fatal("re-promoted an old epoch")
	}
}

func TestWatcherReadsCheckpointFormat(t *testing.T) {
	dir := t.TempDir()
	md := factor.NewInitP(5, 30, 4, 8, factor.Float64)
	st := &train.State{Algorithm: "nomad", Model: md}
	f, err := os.Create(filepath.Join(dir, "run-7.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	store := NewStore()
	w := NewWatcher(store, dir, nil, time.Millisecond, nil)
	if promoted, err := w.ScanOnce(); err != nil || !promoted {
		t.Fatalf("checkpoint: promoted=%v err=%v", promoted, err)
	}
	ep := store.Acquire()
	defer ep.Release()
	if ep.Seq != 7 || ep.Model.N != 30 {
		t.Fatalf("epoch %+v", ep)
	}
}

func TestSourceOpenStatic(t *testing.T) {
	dir := t.TempDir()
	md := factor.NewInitP(4, 20, 4, 2, factor.Float64)
	path := filepath.Join(dir, "model.bin")
	writeModelFile(t, path, md)
	store, watcher, err := Source{Path: path}.Open(nil, nil)
	if err != nil || watcher != nil {
		t.Fatalf("static open: watcher=%v err=%v", watcher, err)
	}
	ep := store.Acquire()
	defer ep.Release()
	if ep.Model.M != 4 || ep.Index.Len() != 20 {
		t.Fatalf("epoch %+v", ep)
	}
	if _, _, err := (Source{}).Open(nil, nil); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, _, err := (Source{Path: path, WatchDir: dir}).Open(nil, nil); err == nil {
		t.Fatal("ambiguous source accepted")
	}
}

func TestEpochSeqParsing(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{"model-12.bin", 12, true},
		{"epoch_003.ckpt", 3, true},
		{"model-2-final.bin", 2, true}, // trailing word after digits
		{"model.bin", 0, false},
		{"9.model", 9, true},
		{"model-18446744073709551615.bin", 0, false}, // overflow guard
	}
	for _, c := range cases {
		seq, ok := epochSeq(c.name)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Fatalf("epochSeq(%q) = %d,%v want %d,%v", c.name, seq, ok, c.seq, c.ok)
		}
	}
}
