package serve

// Graceful degradation under shard failure: a dead shard peer turns
// into 503 + Retry-After by default, or a flagged partial merge with
// SetAllowPartial — never a hang, never a silently wrong full top-N.

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
)

// downLink is a cluster.Link whose peer is already confirmed dead:
// every scatter fails with a typed *cluster.PeerDownError, as the
// netlink TCP link does in whole-link mode after a heartbeat timeout.
type downLink struct {
	machines int
	err      error
	ctl      chan cluster.Ctl
}

func newDownLink(machines, deadRank int) *downLink {
	return &downLink{
		machines: machines,
		err:      &cluster.PeerDownError{Rank: deadRank, Cause: fmt.Errorf("heartbeat timeout")},
		ctl:      make(chan cluster.Ctl),
	}
}

func (l *downLink) Rank() int                          { return 0 }
func (l *downLink) Machines() int                      { return l.machines }
func (l *downLink) Send(int, cluster.TokenBatch) error { return l.err }
func (l *downLink) Recv() <-chan cluster.Inbound       { return nil }
func (l *downLink) SendCtl(int, uint8, []byte) error   { return l.err }
func (l *downLink) Ctl() <-chan cluster.Ctl            { return l.ctl }
func (l *downLink) Barrier() error                     { return l.err }
func (l *downLink) CloseSend() error                   { return nil }
func (l *downLink) Close() error                       { return nil }
func (l *downLink) Err() error                         { return l.err }
func (l *downLink) Stats() cluster.LinkStats           { return cluster.LinkStats{} }

// degradedServer builds a 2-shard gateway whose peer shard is dead,
// backed by a local store over md's full index.
func degradedServer(md *factor.Model, allowPartial bool) (*Server, *Gateway) {
	store := NewStore()
	store.Promote(&Epoch{Seq: 1, Model: md, Index: BuildIndex(md, nil)})
	gw := NewGateway(newDownLink(2, 1), store, 100*time.Millisecond)
	gw.SetAllowPartial(allowPartial)
	return NewServer(Config{Store: store, Gateway: gw}), gw
}

func TestGatherPeerDownFailsTyped(t *testing.T) {
	md := factor.NewInitP(6, 80, 4, 11, factor.Float64)
	_, gw := degradedServer(md, false)
	_, err := gw.Gather(0, 5, wireUserRow(md, 0), nil)
	var pd *cluster.PeerDownError
	if !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("want *cluster.PeerDownError for rank 1, got %v", err)
	}
	if down, partial := gw.Degraded(); down != 1 || partial != 0 {
		t.Fatalf("degraded counters (down=%d, partial=%d), want (1, 0)", down, partial)
	}
}

func TestGatherPeerDownPartial(t *testing.T) {
	md := factor.NewInitP(6, 80, 4, 11, factor.Float64)
	_, gw := degradedServer(md, true)
	res, err := gw.Gather(0, 5, wireUserRow(md, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Shards != 1 {
		t.Fatalf("want partial single-shard result, got %+v", res)
	}
	if len(res.Recs) != 5 {
		t.Fatalf("partial merge returned %d recs, want 5", len(res.Recs))
	}
	if down, partial := gw.Degraded(); down != 1 || partial != 1 {
		t.Fatalf("degraded counters (down=%d, partial=%d), want (1, 1)", down, partial)
	}
}

func TestRecommendPeerDownHTTP(t *testing.T) {
	md := factor.NewInitP(6, 80, 4, 11, factor.Float64)

	// Default policy: 503 with a Retry-After hint, counted in stats.
	srv, _ := degradedServer(md, false)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/recommend?user=0&n=5", nil))
	if rec.Code != 503 {
		t.Fatalf("peer-down recommend returned %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	st := srv.Snapshot()
	if st.PeerDown != 1 || st.Rejects != 1 {
		t.Fatalf("stats after 503: peer_down=%d rejects=%d, want 1 1", st.PeerDown, st.Rejects)
	}

	// Degraded policy: 200, flagged partial, counted in stats.
	srv, _ = degradedServer(md, true)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/recommend?user=0&n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("allow-partial recommend returned %d, want 200", rec.Code)
	}
	if rec.Header().Get("X-Nomad-Partial") != "true" {
		t.Fatal("partial response without X-Nomad-Partial: true")
	}
	st = srv.Snapshot()
	if st.PartialResults != 1 || st.Rejects != 0 {
		t.Fatalf("stats after partial: partial_results=%d rejects=%d, want 1 0", st.PartialResults, st.Rejects)
	}
}
