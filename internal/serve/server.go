package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/topn"
)

// Config wires a Server.
type Config struct {
	// Store holds the serving epochs (required).
	Store *Store
	// Gateway, when non-nil, scatters queries across shard peers
	// instead of scanning Store locally.
	Gateway *Gateway
	// Rated returns the user's ascending-sorted rated item list for
	// training-set exclusion (nil = no exclusion).
	Rated func(user int32) []int32
	// Watcher, when non-nil, contributes rejection counters to /v1/stats.
	Watcher *Watcher
	// MaxN caps the n query parameter (default 1000).
	MaxN int
}

// Server is the HTTP face of the serving stack:
//
//	GET /v1/recommend?user=U&n=N  → top-N JSON
//	GET /healthz                  → 200 once a model is loaded
//	GET /v1/stats                 → counters and epoch info
//
// Handlers are lock-free on the request path: epoch access goes
// through Store.Acquire, counters are atomics.
type Server struct {
	cfg Config

	requests atomic.Int64
	rejects  atomic.Int64 // non-200 responses
	scanned  atomic.Int64
	pruned   atomic.Int64
}

// NewServer builds a Server over cfg.
func NewServer(cfg Config) *Server {
	if cfg.MaxN <= 0 {
		cfg.MaxN = 1000
	}
	return &Server{cfg: cfg}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/recommend", s.handleRecommend)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// RecItem is one scored recommendation on the wire.
type RecItem struct {
	Item  int32   `json:"item"`
	Score float64 `json:"score"`
}

// RecResponse is the /v1/recommend payload.
type RecResponse struct {
	User  int32  `json:"user"`
	N     int    `json:"n"`
	Epoch uint64 `json:"epoch"`
	// Shards is how many item shards contributed (1 for local serving).
	Shards int       `json:"shards"`
	Items  []RecItem `json:"items"`
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.rejects.Add(1)
	http.Error(w, msg, code)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	user64, err := strconv.ParseInt(r.URL.Query().Get("user"), 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad or missing user parameter")
		return
	}
	user := int32(user64)
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad n parameter")
			return
		}
	}
	if n > s.cfg.MaxN {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("n exceeds limit %d", s.cfg.MaxN))
		return
	}

	ep := s.cfg.Store.Acquire()
	if ep == nil {
		s.fail(w, http.StatusServiceUnavailable, "no model loaded yet")
		return
	}
	md := ep.Model
	if user < 0 || int(user) >= md.M {
		ep.Release()
		s.fail(w, http.StatusNotFound, fmt.Sprintf("user %d outside model rows [0,%d)", user, md.M))
		return
	}

	var rated []int32
	if s.cfg.Rated != nil {
		rated = s.cfg.Rated(user)
	}

	resp := RecResponse{User: user, N: n}
	if s.cfg.Gateway != nil {
		// Sharded: widen the user row for the wire (exact for float32)
		// and scatter. The gateway holds its own epoch references; ours
		// only pinned the user row.
		row := wireUserRow(md, int(user))
		ep.Release()
		res, err := s.cfg.Gateway.Gather(user, n, row, rated)
		if err != nil {
			var pd *cluster.PeerDownError
			if errors.As(err, &pd) {
				// A shard machine is down, not the query: tell the client
				// when to come back instead of letting it hammer a
				// degraded cluster.
				w.Header().Set("Retry-After", "1")
				s.fail(w, http.StatusServiceUnavailable,
					fmt.Sprintf("shard machine %d is down; retry shortly", pd.Rank))
				return
			}
			s.fail(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if res.Partial {
			w.Header().Set("X-Nomad-Partial", "true")
		}
		resp.Epoch = res.Epoch
		resp.Shards = res.Shards
		resp.Items = recItems(res.Recs)
		s.scanned.Add(int64(res.Stats.Scanned))
		s.pruned.Add(int64(res.Stats.Pruned))
	} else {
		h := topn.NewHeap(n)
		var st ScanStats
		if md.Precision() == factor.Float32 {
			st = ep.Index.TopN(nil, md.UserRow32(int(user)), md.UserNorm(int(user)), rated, h)
		} else {
			st = ep.Index.TopN(md.UserRow(int(user)), nil, md.UserNorm(int(user)), rated, h)
		}
		resp.Epoch = ep.Seq
		resp.Shards = 1
		resp.Items = recItems(h.Sorted())
		ep.Release()
		s.scanned.Add(int64(st.Scanned))
		s.pruned.Add(int64(st.Pruned))
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone
}

// wireUserRow widens the user's factor row to float64 for the scatter
// wire format. Widening float32 is exact, so the shard recovers the
// original bits by narrowing.
func wireUserRow(md *factor.Model, user int) []float64 {
	if md.Precision() == factor.Float32 {
		r32 := md.UserRow32(user)
		row := make([]float64, len(r32))
		for i, v := range r32 {
			row[i] = float64(v)
		}
		return row
	}
	return append([]float64(nil), md.UserRow(user)...)
}

func recItems(recs []topn.Rec) []RecItem {
	out := make([]RecItem, len(recs))
	for i, r := range recs {
		out[i] = RecItem{Item: r.Item, Score: r.Score}
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ep := s.cfg.Store.Acquire()
	if ep == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	ep.Release()
	fmt.Fprintln(w, "ok")
}

// Stats is the /v1/stats payload.
type Stats struct {
	Epoch     uint64     `json:"epoch"`
	Users     int        `json:"users"`
	Items     int        `json:"items"`
	Rank      int        `json:"rank"`
	Precision string     `json:"precision"`
	IndexLen  int        `json:"index_len"`
	Requests  int64      `json:"requests"`
	Rejects   int64      `json:"rejects"`
	Scanned   int64      `json:"scanned"`
	Pruned    int64      `json:"pruned"`
	Store     StoreStats `json:"store"`
	// WatchRejects counts checkpoint files the watcher refused to
	// promote; WatchLastReject is the most recent reason.
	WatchRejects    int64  `json:"watch_rejects"`
	WatchLastReject string `json:"watch_last_reject,omitempty"`
	// GatherTimeouts counts sharded queries that missed the deadline.
	GatherTimeouts int64 `json:"gather_timeouts,omitempty"`
	// PeerDown counts sharded queries that hit a dead shard peer;
	// PartialResults counts those answered with a degraded partial
	// merge (gateway -allow-partial) instead of an error.
	PeerDown       int64 `json:"peer_down,omitempty"`
	PartialResults int64 `json:"partial_results,omitempty"`
}

// Snapshot collects the server's counters (also used by tests and the
// load generator's user-range discovery).
func (s *Server) Snapshot() Stats {
	st := Stats{
		Requests: s.requests.Load(),
		Rejects:  s.rejects.Load(),
		Scanned:  s.scanned.Load(),
		Pruned:   s.pruned.Load(),
		Store:    s.cfg.Store.Stats(),
	}
	if ep := s.cfg.Store.Acquire(); ep != nil {
		st.Epoch = ep.Seq
		st.Users = ep.Model.M
		st.Items = ep.Model.N
		st.Rank = ep.Model.K
		st.Precision = ep.Model.Precision().String()
		st.IndexLen = ep.Index.Len()
		ep.Release()
	}
	if s.cfg.Watcher != nil {
		st.WatchRejects, st.WatchLastReject = s.cfg.Watcher.Rejects()
	}
	if s.cfg.Gateway != nil {
		st.GatherTimeouts = s.cfg.Gateway.Timeouts()
		st.PeerDown, st.PartialResults = s.cfg.Gateway.Degraded()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot()) //nolint:errcheck // client gone
}
