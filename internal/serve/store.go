package serve

import (
	"sync/atomic"
	"time"

	"nomad/internal/factor"
)

// Epoch is one immutable, servable model generation: the loaded factor
// model (user rows for query vectors), the candidate index over this
// process's item shard, and a reference count that keeps the epoch
// alive while requests are in flight.
type Epoch struct {
	// Seq is the epoch's monotone sequence number (parsed from the
	// checkpoint filename, or assigned by the promoter).
	Seq uint64
	// Path is the file the epoch was loaded from ("" for in-memory
	// epochs built by tests or benchmarks).
	Path string
	// Model holds the full factor model. Only the user rows are read on
	// the request path — item scoring goes through Index's compact
	// copies — but the model is kept for shape validation of successor
	// epochs and diagnostics.
	Model *factor.Model
	// Index is the norm-ordered candidate pre-filter over the epoch's
	// owned items.
	Index *Index
	// Loaded is when the epoch was promoted-ready.
	Loaded time.Time

	// refs counts the store's own reference (1 while current) plus one
	// per in-flight request. It can only reach zero after the epoch has
	// been retired by a swap; the request that drops the last reference
	// observes retiredNs and records the drain.
	refs      atomic.Int64
	retiredNs atomic.Int64
	store     *Store
}

// acquire takes a reference unless the epoch is already drained.
func (e *Epoch) acquire() bool {
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference. The caller must not touch the epoch
// afterwards. The last release of a retired epoch records the drain
// (swap→quiescence latency) on the owning store.
func (e *Epoch) Release() {
	if e.refs.Add(-1) != 0 {
		return
	}
	if s := e.store; s != nil {
		s.drains.Add(1)
		if t := e.retiredNs.Load(); t > 0 {
			s.lastDrainNs.Store(time.Now().UnixNano() - t)
		}
	}
}

// Store is the RCU epoch holder: a lock-free pointer to the current
// Epoch. Requests Acquire/Release; Promote swaps atomically. No
// request ever observes a half-installed epoch, and a swap never
// invalidates an epoch a request is still reading — the two halves of
// "hot swap drops zero requests".
type Store struct {
	cur atomic.Pointer[Epoch]

	swaps       atomic.Int64
	drains      atomic.Int64
	lastDrainNs atomic.Int64
}

// NewStore returns an empty store; Acquire returns nil until the
// first Promote.
func NewStore() *Store { return &Store{} }

// Acquire returns the current epoch with a reference taken, or nil
// when no epoch is loaded yet. The caller must Release it.
func (s *Store) Acquire() *Epoch {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil
		}
		if e.acquire() {
			return e
		}
		// The epoch drained between the load and the acquire — the swap
		// that retired it has already installed its successor.
	}
}

// Promote atomically installs e as the current epoch. The previous
// epoch is retired: new requests no longer see it, and it is released
// once its in-flight requests drain.
func (s *Store) Promote(e *Epoch) {
	e.store = s
	e.refs.Store(1) // the store's own reference
	if e.Loaded.IsZero() {
		e.Loaded = time.Now()
	}
	old := s.cur.Swap(e)
	s.swaps.Add(1)
	if old != nil {
		old.retiredNs.Store(time.Now().UnixNano())
		old.Release()
	}
}

// Seq returns the current epoch's sequence number (0 when empty)
// without taking a reference.
func (s *Store) Seq() uint64 {
	if e := s.cur.Load(); e != nil {
		return e.Seq
	}
	return 0
}

// StoreStats is the swap/drain accounting snapshot.
type StoreStats struct {
	Swaps       int64   `json:"swaps"`
	Drains      int64   `json:"drains"`
	LastDrainMs float64 `json:"last_drain_ms"`
}

// Stats snapshots the store's swap/drain counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Swaps:       s.swaps.Load(),
		Drains:      s.drains.Load(),
		LastDrainMs: float64(s.lastDrainNs.Load()) / 1e6,
	}
}
