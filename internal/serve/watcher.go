package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/factor"
	"nomad/internal/train"
)

// LoadEpoch reads a servable epoch from path: either a bare factor
// model (Model.Save / factor.WriteBinary, magic "NMDM") or a full
// training checkpoint (Session.Checkpoint / train.State, magic
// "NMCK"), whose embedded model is extracted. owned restricts the
// candidate index to an item shard (nil = all items). A truncated,
// corrupt or unrecognized file is an error — the caller never serves
// from it.
func LoadEpoch(path string, seq uint64, owned []int32) (*Epoch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	md, err := readModel(f)
	if err != nil {
		return nil, fmt.Errorf("serve: load %s: %w", path, err)
	}
	return &Epoch{Seq: seq, Path: path, Model: md, Index: BuildIndex(md, owned)}, nil
}

// readModel sniffs the container magic and decodes either format.
func readModel(r io.Reader) (*factor.Model, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("unreadable header: %w", err)
	}
	switch magic := binary.LittleEndian.Uint32(head); magic {
	case 0x4e4d444d: // "NMDM": bare factor model
		md, err := factor.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		return ensureComplete(br, md)
	case 0x4e4d434b: // "NMCK": train.State checkpoint
		st, err := train.ReadState(br)
		if err != nil {
			return nil, err
		}
		if st.Model == nil {
			return nil, fmt.Errorf("checkpoint has no model")
		}
		return st.Model, nil
	default:
		return nil, fmt.Errorf("not a model or checkpoint (magic %#x)", magic)
	}
}

// ensureComplete rejects a model file that decoded but ended short —
// binary.Read fills what it can, so a truncated tail must be caught
// here rather than served as zero factors.
func ensureComplete(br *bufio.Reader, md *factor.Model) (*factor.Model, error) {
	// factor.ReadBinary errors on short reads itself; this guards the
	// inverse: trailing garbage appended to a model file.
	if _, err := br.Peek(1); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes after model payload")
	}
	return md, nil
}

// fileSig identifies a file version: a failed load is not retried
// until the file's size or mtime changes.
type fileSig struct {
	size  int64
	mtime int64
}

// Watcher polls a directory for epoch-numbered checkpoint files and
// promotes each new valid epoch into its Store. One watcher serves one
// store (one shard); several watchers may poll the same directory.
type Watcher struct {
	store    *Store
	dir      string
	owned    []int32
	interval time.Duration
	validate func(md *factor.Model) error

	mu     sync.Mutex
	failed map[string]fileSig // rejected file versions, not retried

	rejects    atomic.Int64
	lastReject atomic.Pointer[string]
}

// NewWatcher builds a watcher; call Run (or ScanOnce) to poll.
// validate, when non-nil, vets the first model (later models are
// validated against the serving epoch's shape).
func NewWatcher(store *Store, dir string, owned []int32, interval time.Duration, validate func(md *factor.Model) error) *Watcher {
	return &Watcher{
		store:    store,
		dir:      dir,
		owned:    owned,
		interval: interval,
		validate: validate,
		failed:   make(map[string]fileSig),
	}
}

// Rejects returns how many candidate files were rejected, and the
// most recent rejection reason.
func (w *Watcher) Rejects() (int64, string) {
	n := w.rejects.Load()
	if p := w.lastReject.Load(); p != nil {
		return n, *p
	}
	return n, ""
}

func (w *Watcher) reject(path string, sig fileSig, err error) {
	w.mu.Lock()
	w.failed[path] = sig
	w.mu.Unlock()
	w.rejects.Add(1)
	msg := fmt.Sprintf("%s: %v", filepath.Base(path), err)
	w.lastReject.Store(&msg)
}

// epochSeq parses the epoch number from a filename: the last run of
// digits before the extension ("model-12.bin" → 12).
func epochSeq(name string) (uint64, bool) {
	base := strings.TrimSuffix(name, filepath.Ext(name))
	end := len(base)
	for end > 0 && !isDigit(base[end-1]) {
		end--
	}
	start := end
	for start > 0 && isDigit(base[start-1]) {
		start--
	}
	if start == end {
		return 0, false
	}
	var seq uint64
	for _, c := range base[start:end] {
		d := uint64(c - '0')
		if seq > (1<<63)/10 {
			return 0, false
		}
		seq = seq*10 + d
	}
	return seq, true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// candidate is one promotable file found in the watch directory.
type candidate struct {
	path string
	seq  uint64
	sig  fileSig
}

// ScanOnce polls the directory once, promoting the highest-epoch
// valid file above the current epoch. It returns whether a promotion
// happened; the error is reserved for an unreadable directory —
// individual bad files are rejected and remembered, not fatal.
func (w *Watcher) ScanOnce() (bool, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return false, fmt.Errorf("serve: watch %s: %w", w.dir, err)
	}
	cur := w.store.Seq()
	var cands []candidate
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		switch ext := filepath.Ext(name); ext {
		case ".bin", ".ckpt", ".model":
		default:
			continue // in-progress writes (.tmp, .part) and foreign files
		}
		seq, ok := epochSeq(name)
		if !ok || seq <= cur {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced a delete; next scan sees the truth
		}
		cands = append(cands, candidate{
			path: filepath.Join(w.dir, name),
			seq:  seq,
			sig:  fileSig{size: info.Size(), mtime: info.ModTime().UnixNano()},
		})
	}
	// Highest epoch first; on a tie (same seq, different extension) the
	// lexicographically first path wins deterministically.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].seq != cands[b].seq {
			return cands[a].seq > cands[b].seq
		}
		return cands[a].path < cands[b].path
	})
	for _, c := range cands {
		w.mu.Lock()
		failedSig, failedBefore := w.failed[c.path]
		w.mu.Unlock()
		if failedBefore && failedSig == c.sig {
			continue // same bad file version; wait for it to change
		}
		ep, err := LoadEpoch(c.path, c.seq, w.owned)
		if err != nil {
			w.reject(c.path, c.sig, err)
			continue
		}
		if err := w.vet(ep.Model); err != nil {
			w.reject(c.path, c.sig, err)
			continue
		}
		w.store.Promote(ep)
		return true, nil
	}
	return false, nil
}

// vet validates a loaded model against the current serving epoch (or
// the configured validator for the first one). Shape and precision
// must match: the serving fleet's user ids, item shard map and scan
// kernels are all derived from them, and PR 6's precision contract
// makes every cross-precision conversion explicit — a float32 file
// appearing in a float64 serving directory is a deployment mistake,
// not a swap.
func (w *Watcher) vet(md *factor.Model) error {
	cur := w.store.Acquire()
	if cur == nil {
		if w.validate != nil {
			return w.validate(md)
		}
		return nil
	}
	defer cur.Release()
	old := cur.Model
	if md.M != old.M || md.N != old.N || md.K != old.K {
		return fmt.Errorf("shape %d×%d rank %d does not match serving epoch's %d×%d rank %d",
			md.M, md.N, md.K, old.M, old.N, old.K)
	}
	if md.Precision() != old.Precision() {
		return fmt.Errorf("precision %v does not match serving epoch's %v", md.Precision(), old.Precision())
	}
	return nil
}

// Run polls until ctx is cancelled. Promotion failures are recorded
// in Rejects; directory read errors are tolerated (the directory may
// appear after the server boots).
func (w *Watcher) Run(ctx context.Context) {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.ScanOnce() //nolint:errcheck // unreadable dir: retried next tick
		}
	}
}
