package serve

import (
	"math"
	"sort"

	"nomad/internal/factor"
	"nomad/internal/topn"
	"nomad/internal/vecmath"
)

// Index is the candidate pre-filter over (a shard of) the item
// factors: item vectors copied into norm-descending contiguous
// storage, so a top-N scan reads memory sequentially and can stop
// early on the Cauchy–Schwarz bound |⟨w_u,hⱼ⟩| ≤ ‖w_u‖·‖hⱼ‖.
//
// The early exit is admissible: the scan only stops once no remaining
// item can displace the heap's current worst (strictly below the
// threshold, so equal-score/lower-index ties keep scanning), which
// makes the pruned result identical to a full scan — the property the
// equivalence tests and the CI equality gate assert. Scores are
// computed with the same rank-dispatched vecmath kernels at the same
// precision as Model.Predict, so pruning changes nothing downstream.
//
// Floating-point slack: the computed dot may exceed the computed norm
// product by a few ulps of accumulated rounding, so the bound is
// inflated by a relative slack (larger for float32) before comparing.
type Index struct {
	k     int
	prec  factor.Precision
	items []int32   // owned items in descending-norm order
	norms []float64 // ‖hⱼ‖ in items order, accumulated in float64
	vec64 []float64 // len(items)×k contiguous rows, items order
	vec32 []float32
	dot64 vecmath.DotFunc
	dot32 vecmath.DotFunc32
	slack float64
}

// indexSlack64 and indexSlack32 bound the relative rounding gap
// between a dot product and its norm-product upper bound: ~k ulps of
// the accumulation precision, with two orders of magnitude of margin.
const (
	indexSlack64 = 1 + 1e-12
	indexSlack32 = 1 + 1e-4
)

// BuildIndex copies the owned item rows of md (nil owned = every
// item) into a fresh scan-ordered index. The index is self-contained:
// it does not alias model storage, so an epoch's index stays valid
// whatever happens to the model it came from.
func BuildIndex(md *factor.Model, owned []int32) *Index {
	n := md.N
	if owned == nil {
		owned = make([]int32, n)
		for j := range owned {
			owned[j] = int32(j)
		}
	}
	ix := &Index{
		k:     md.K,
		prec:  md.Precision(),
		items: append([]int32(nil), owned...),
		norms: make([]float64, len(owned)),
		slack: indexSlack64,
	}
	for i, j := range ix.items {
		ix.norms[i] = md.ItemNorm(int(j))
	}
	// Descending norm; ties by ascending item id for determinism.
	sort.Sort(byNormDesc{ix})
	if ix.prec == factor.Float32 {
		ix.slack = indexSlack32
		ix.dot32 = vecmath.DotKernel32(ix.k)
		ix.vec32 = make([]float32, len(ix.items)*ix.k)
		for i, j := range ix.items {
			copy(ix.vec32[i*ix.k:(i+1)*ix.k], md.ItemRow32(int(j)))
		}
		return ix
	}
	ix.dot64 = vecmath.DotKernel(ix.k)
	ix.vec64 = make([]float64, len(ix.items)*ix.k)
	for i, j := range ix.items {
		copy(ix.vec64[i*ix.k:(i+1)*ix.k], md.ItemRow(int(j)))
	}
	return ix
}

type byNormDesc struct{ ix *Index }

func (s byNormDesc) Len() int { return len(s.ix.items) }
func (s byNormDesc) Less(a, b int) bool {
	if s.ix.norms[a] != s.ix.norms[b] {
		return s.ix.norms[a] > s.ix.norms[b]
	}
	return s.ix.items[a] < s.ix.items[b]
}
func (s byNormDesc) Swap(a, b int) {
	s.ix.items[a], s.ix.items[b] = s.ix.items[b], s.ix.items[a]
	s.ix.norms[a], s.ix.norms[b] = s.ix.norms[b], s.ix.norms[a]
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.items) }

// K returns the latent rank the index was built at.
func (ix *Index) K() int { return ix.k }

// Precision returns the element precision of the indexed vectors.
func (ix *Index) Precision() factor.Precision { return ix.prec }

// ScanStats reports how far one top-N scan went.
type ScanStats struct {
	// Scanned is the number of candidate items whose score was computed.
	Scanned int
	// Pruned is the number of items skipped by the norm-bound early
	// exit (Scanned + Pruned + excluded = Len()).
	Pruned int
}

// norm64 is the float64-accumulated Euclidean norm of row — the same
// accumulation Model.UserNorm uses, so a gateway-side bound computed
// from a wire row agrees with the model-side one.
func norm64(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v * v
	}
	return math.Sqrt(s)
}

// ratedContains reports whether item is in the ascending-sorted rated
// list (the training-set exclusion).
func ratedContains(rated []int32, item int32) bool {
	lo, hi := 0, len(rated)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rated[mid] < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(rated) && rated[lo] == item
}

// TopN streams the indexed items into h, excluding the
// ascending-sorted rated list, stopping early once the norm bound
// proves no remaining item can enter. user64/user32 is the query
// user's factor row at the index's precision; unorm is its Euclidean
// norm. The result in h is identical to an unpruned full scan.
func (ix *Index) TopN(user64 []float64, user32 []float32, unorm float64, rated []int32, h *topn.Heap) ScanStats {
	var st ScanStats
	k := ix.k
	for i, item := range ix.items {
		if h.Full() {
			if worst, ok := h.Worst(); ok && unorm*ix.norms[i]*ix.slack < worst.Score {
				st.Pruned = len(ix.items) - i
				break
			}
		}
		if ratedContains(rated, item) {
			continue
		}
		var score float64
		if ix.prec == factor.Float32 {
			score = float64(ix.dot32(user32, ix.vec32[i*k:(i+1)*k]))
		} else {
			score = ix.dot64(user64, ix.vec64[i*k:(i+1)*k])
		}
		st.Scanned++
		h.Offer(topn.Rec{Item: item, Score: score})
	}
	return st
}
