package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/topn"
)

// Control-frame kinds for the serving scatter/gather plane. The
// trainer's lockstep runner owns 1-6 and failover owns 16+, so
// serving takes a disjoint high block.
const (
	ctlServeReq  uint8 = 0x40 // gateway → shard: top-N query
	ctlServeResp uint8 = 0x41 // shard → gateway: scored part
)

// Shard response status bytes.
const (
	shardOK      uint8 = 0 // payload carries (item,score) pairs
	shardEmpty   uint8 = 1 // shard has no epoch loaded yet
	shardBadReq  uint8 = 2 // malformed or shape-mismatched request
	shardRefused uint8 = 3 // shard is shutting down
)

// shardReq is one scatter query. The user's factor row travels with
// the request (as float64 — exact for float32 rows, which round-trip
// the widening without loss), so shards never need the user matrix;
// the sorted rated list travels too, so shards exclude before filling
// their heaps and the per-shard top-N merge stays exact.
type shardReq struct {
	id    uint64
	user  int32
	n     int32
	row   []float64
	rated []int32
}

// encodeShardReq appends the wire form of r: little-endian
// id u64 | user i32 | n i32 | k u32 | rated u32 | k×f64 | rated×i32.
func encodeShardReq(buf []byte, r shardReq) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.user))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.row)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.rated)))
	for _, v := range r.row {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, j := range r.rated {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(j))
	}
	return buf
}

func decodeShardReq(p []byte) (shardReq, error) {
	var r shardReq
	if len(p) < 20 {
		return r, fmt.Errorf("serve: short shard request (%d bytes)", len(p))
	}
	r.id = binary.LittleEndian.Uint64(p)
	r.user = int32(binary.LittleEndian.Uint32(p[8:]))
	r.n = int32(binary.LittleEndian.Uint32(p[12:]))
	k := int(binary.LittleEndian.Uint32(p[16:]))
	if len(p) < 24 {
		return r, fmt.Errorf("serve: short shard request (%d bytes)", len(p))
	}
	nr := int(binary.LittleEndian.Uint32(p[20:]))
	need := 24 + 8*k + 4*nr
	if k < 0 || nr < 0 || k > 1<<16 || len(p) != need {
		return r, fmt.Errorf("serve: shard request length %d != %d (k=%d rated=%d)", len(p), need, k, nr)
	}
	r.row = make([]float64, k)
	off := 24
	for i := range r.row {
		r.row[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	r.rated = make([]int32, nr)
	for i := range r.rated {
		r.rated[i] = int32(binary.LittleEndian.Uint32(p[off:]))
		off += 4
	}
	return r, nil
}

// shardResp is one gathered part: the shard's local top-N (already
// exclusion-filtered) plus the epoch it was scored against.
type shardResp struct {
	id     uint64
	status uint8
	epoch  uint64
	recs   []topn.Rec
	stats  ScanStats
}

// encodeShardResp appends the wire form: id u64 | status u8 | epoch
// u64 | scanned u32 | pruned u32 | count u32 | count×(item i32 +
// score f64).
func encodeShardResp(buf []byte, r shardResp) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.id)
	buf = append(buf, r.status)
	buf = binary.LittleEndian.AppendUint64(buf, r.epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.stats.Scanned))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.stats.Pruned))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.recs)))
	for _, rec := range r.recs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Item))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Score))
	}
	return buf
}

func decodeShardResp(p []byte) (shardResp, error) {
	var r shardResp
	if len(p) < 29 {
		return r, fmt.Errorf("serve: short shard response (%d bytes)", len(p))
	}
	r.id = binary.LittleEndian.Uint64(p)
	r.status = p[8]
	r.epoch = binary.LittleEndian.Uint64(p[9:])
	r.stats.Scanned = int(binary.LittleEndian.Uint32(p[17:]))
	r.stats.Pruned = int(binary.LittleEndian.Uint32(p[21:]))
	count := int(binary.LittleEndian.Uint32(p[25:]))
	if count < 0 || len(p) != 29+12*count {
		return r, fmt.Errorf("serve: shard response length %d != %d (count=%d)", len(p), 29+12*count, count)
	}
	r.recs = make([]topn.Rec, count)
	off := 29
	for i := range r.recs {
		r.recs[i].Item = int32(binary.LittleEndian.Uint32(p[off:]))
		r.recs[i].Score = math.Float64frombits(binary.LittleEndian.Uint64(p[off+4:]))
		off += 12
	}
	return r, nil
}

// GatherResult is one completed scatter/gather query.
type GatherResult struct {
	// Recs is the exact merged top-N in the shared deterministic order.
	Recs []topn.Rec
	// Epoch is the highest epoch any answering shard scored with (shards
	// may briefly disagree mid-swap; each part is internally consistent
	// because a shard holds one epoch reference per request).
	Epoch uint64
	// Shards is how many shard parts (including the gateway's own local
	// part, when it serves one) went into the merge.
	Shards int
	// Partial reports that one or more shard parts are missing because a
	// peer is down and the gateway was configured to degrade gracefully
	// (SetAllowPartial) instead of failing the query.
	Partial bool
	// Stats sums the candidate-scan accounting across shards.
	Stats ScanStats
}

// ErrGatherTimeout reports that one or more shards missed the gather
// deadline; the request fails rather than returning a silently
// partial (wrong) top-N.
var ErrGatherTimeout = fmt.Errorf("serve: shard gather timed out")

// errShardEmpty reports that a shard has no epoch loaded.
var errShardEmpty = fmt.Errorf("serve: shard has no model loaded")

// Gateway scatters top-N queries to every peer shard over a
// cluster.Link and gathers the exact merge. It owns the link's
// control-frame receive side; run Dispatch in a goroutine for the
// gateway's lifetime.
type Gateway struct {
	link    cluster.Link
	local   *Store // gateway's own shard (nil when it serves none)
	timeout time.Duration

	// allowPartial degrades instead of failing when a shard peer is
	// down: queries merge the parts that did answer and are flagged
	// Partial. Set before traffic flows (SetAllowPartial).
	allowPartial bool

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan shardResp

	timeouts atomic.Int64
	peerDown atomic.Int64
	partials atomic.Int64
}

// NewGateway builds a gateway over link. local, when non-nil, is the
// gateway's own item shard, scanned in-process instead of over the
// wire. timeout bounds each gather (default 2s).
func NewGateway(link cluster.Link, local *Store, timeout time.Duration) *Gateway {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Gateway{
		link:    link,
		local:   local,
		timeout: timeout,
		pending: make(map[uint64]chan shardResp),
	}
}

// Timeouts returns how many gathers have missed the deadline.
func (g *Gateway) Timeouts() int64 { return g.timeouts.Load() }

// SetAllowPartial selects the degraded-serving policy for dead shard
// peers: merge and flag the parts that answered rather than failing
// the query. Call before traffic flows.
func (g *Gateway) SetAllowPartial(v bool) { g.allowPartial = v }

// Degraded returns the peer-failure accounting: queries that saw a
// dead shard peer, and queries answered with a partial merge.
func (g *Gateway) Degraded() (peerDown, partial int64) {
	return g.peerDown.Load(), g.partials.Load()
}

// Dispatch routes inbound shard responses to their waiting gathers
// until the link's control channel closes. Run it in one goroutine.
func (g *Gateway) Dispatch() {
	for ct := range g.link.Ctl() {
		if ct.Kind != ctlServeResp {
			continue
		}
		resp, err := decodeShardResp(ct.Payload)
		if err != nil {
			continue // corrupt frame; the gather times out and reports
		}
		g.mu.Lock()
		ch := g.pending[resp.id]
		g.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Gather answers one top-N query: scatter to every peer shard,
// scan the local shard (if any) while responses stream in, and merge
// the disjoint parts exactly. rated must be ascending-sorted.
func (g *Gateway) Gather(user int32, n int, row []float64, rated []int32) (GatherResult, error) {
	var res GatherResult
	peers := g.link.Machines() - 1
	id := g.nextID.Add(1)
	ch := make(chan shardResp, peers)
	g.mu.Lock()
	g.pending[id] = ch
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.pending, id)
		g.mu.Unlock()
	}()

	req := shardReq{id: id, user: user, n: int32(n), row: row, rated: rated}
	if peers > 0 {
		if err := g.link.SendCtl(-1, ctlServeReq, encodeShardReq(nil, req)); err != nil {
			var pd *cluster.PeerDownError
			if !errors.As(err, &pd) {
				return res, fmt.Errorf("serve: scatter: %w", err)
			}
			// A shard machine is down. Without the degraded policy the
			// typed error propagates (the HTTP layer maps it to 503 +
			// Retry-After); with it, the query is answered from whatever
			// parts remain — only the gateway's own shard here, since a
			// failed whole-link scatter reached no peer.
			g.peerDown.Add(1)
			if !g.allowPartial || g.local == nil {
				return res, err
			}
			peers = 0
			res.Partial = true
		}
	}

	parts := make([][]topn.Rec, 0, peers+1)
	if g.local != nil {
		part, err := answerLocal(g.local, req)
		if err != nil {
			return res, err
		}
		parts = append(parts, part.recs)
		res.Shards++
		res.Stats.Scanned += part.stats.Scanned
		res.Stats.Pruned += part.stats.Pruned
		if part.epoch > res.Epoch {
			res.Epoch = part.epoch
		}
	}

	deadline := time.NewTimer(g.timeout)
	defer deadline.Stop()
gather:
	for got := 0; got < peers; got++ {
		select {
		case resp := <-ch:
			switch resp.status {
			case shardOK:
			case shardEmpty:
				return res, errShardEmpty
			default:
				return res, fmt.Errorf("serve: shard rejected query (status %d)", resp.status)
			}
			parts = append(parts, resp.recs)
			res.Shards++
			res.Stats.Scanned += resp.stats.Scanned
			res.Stats.Pruned += resp.stats.Pruned
			if resp.epoch > res.Epoch {
				res.Epoch = resp.epoch
			}
		case <-deadline.C:
			g.timeouts.Add(1)
			var pd *cluster.PeerDownError
			if lerr := g.link.Err(); errors.As(lerr, &pd) {
				// The deadline exposed a peer death the failure detector
				// had already confirmed: degrade or fail typed, never
				// report a bare timeout for a known-dead shard.
				g.peerDown.Add(1)
				if !g.allowPartial || len(parts) == 0 {
					return res, lerr
				}
				res.Partial = true
				break gather
			}
			return res, ErrGatherTimeout
		}
	}
	if res.Partial {
		g.partials.Add(1)
	}
	res.Recs = topn.Merge(n, parts...)
	return res, nil
}

// answerLocal scans one store's shard for a request. The epoch
// reference is held across the scan, so a concurrent promotion never
// yanks the index mid-read.
func answerLocal(store *Store, req shardReq) (shardResp, error) {
	resp := shardResp{id: req.id}
	ep := store.Acquire()
	if ep == nil {
		resp.status = shardEmpty
		return resp, errShardEmpty
	}
	defer ep.Release()
	if len(req.row) != ep.Index.K() || req.n < 0 {
		resp.status = shardBadReq
		return resp, fmt.Errorf("serve: query rank %d does not match epoch rank %d", len(req.row), ep.Index.K())
	}
	resp.epoch = ep.Seq
	h := topn.NewHeap(int(req.n))
	var row32 []float32
	if ep.Index.Precision() == factor.Float32 {
		// The row was widened float32→float64 for the wire, which is
		// exact, so narrowing recovers the original bits.
		row32 = make([]float32, len(req.row))
		for i, v := range req.row {
			row32[i] = float32(v)
		}
	}
	resp.stats = ep.Index.TopN(req.row, row32, norm64(req.row), req.rated, h)
	resp.recs = h.Sorted()
	resp.status = shardOK
	return resp, nil
}

// ServeShard answers scatter queries on link until ctx is cancelled
// or the link's control channel closes. Each shard process runs one.
func ServeShard(ctx context.Context, link cluster.Link, store *Store) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ct, ok := <-link.Ctl():
			if !ok {
				return link.Err()
			}
			if ct.Kind != ctlServeReq {
				continue
			}
			req, err := decodeShardReq(ct.Payload)
			if err != nil {
				// Can't even recover the id; nothing to NACK.
				continue
			}
			resp, err := answerLocal(store, req)
			_ = err // status byte carries the failure to the gateway
			if err := link.SendCtl(ct.From, ctlServeResp, encodeShardResp(nil, resp)); err != nil {
				return fmt.Errorf("serve: shard reply: %w", err)
			}
		}
	}
}
