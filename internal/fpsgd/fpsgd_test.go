package fpsgd

import (
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/partition"
	"nomad/internal/rng"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	res := algotest.Run(t, New(), ds, algotest.SGDConfig())
	algotest.RequireConverged(t, res, 0.6)
}

func TestMultiWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Workers = 4
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestManagerExclusivity(t *testing.T) {
	pp := 4
	tm := &manager{
		pp:       pp,
		rowBusy:  make([]bool, pp),
		colBusy:  make([]bool, pp),
		updates:  make([]int, pp*pp),
		nonEmpty: make([]bool, pp*pp),
	}
	for i := range tm.nonEmpty {
		tm.nonEmpty[i] = true
	}
	r := rng.New(1)
	held := map[int]bool{}
	// Acquire up to pp blocks; all must have distinct rows and cols.
	rows := map[int]bool{}
	cols := map[int]bool{}
	for i := 0; i < pp; i++ {
		id := tm.acquire(r)
		if id < 0 {
			t.Fatalf("acquire %d returned none", i)
		}
		a, b := id/pp, id%pp
		if rows[a] || cols[b] {
			t.Fatalf("block (%d,%d) conflicts with held blocks", a, b)
		}
		rows[a], cols[b] = true, true
		held[id] = true
	}
	// Grid is saturated: next acquire must fail.
	if id := tm.acquire(r); id >= 0 {
		t.Fatalf("acquired %d from saturated grid", id)
	}
	// Release one; a block in the freed row/col becomes available.
	for id := range held {
		tm.release(id)
		break
	}
	if id := tm.acquire(r); id < 0 {
		t.Fatal("no block available after release")
	}
}

func TestManagerPrefersLeastUpdated(t *testing.T) {
	pp := 2
	tm := &manager{
		pp:       pp,
		rowBusy:  make([]bool, pp),
		colBusy:  make([]bool, pp),
		updates:  []int{5, 3, 2, 9},
		nonEmpty: []bool{true, true, true, true},
	}
	r := rng.New(1)
	if id := tm.acquire(r); id != 2 {
		t.Fatalf("acquired block %d, want least-updated block 2", id)
	}
}

func TestBuildBlocksConservation(t *testing.T) {
	ds := algotest.Data(t)
	pp := 6
	blocks := buildBlocks(ds, partition.EqualRanges(ds.Rows(), pp), partition.EqualRanges(ds.Cols(), pp), pp)
	total := 0
	for _, b := range blocks {
		total += len(b.users)
	}
	if total != ds.Train.NNZ() {
		t.Fatalf("blocks hold %d ratings, train has %d", total, ds.Train.NNZ())
	}
}

func TestName(t *testing.T) {
	if New().Name() != "fpsgd" {
		t.Fatal("wrong name")
	}
}
