// Package fpsgd implements FPSGD** (Zhuang et al., RecSys 2013), the
// shared-memory baseline of the paper's §5.2 experiments.
//
// FPSGD** partitions the rating matrix into a p′×p′ grid of blocks with
// p′ > p (here p′ = 2p) and runs p worker threads under a task manager:
// a worker may process block (a, b) only if no other worker currently
// holds row-stripe a or column-stripe b — so no two workers ever touch
// the same wᵢ or hⱼ, making updates race-free without locks on
// individual rows. When a worker finishes a block it asks the manager
// for another *free* block, preferring the least-updated one (with
// random tie-breaking), which keeps block update counts balanced.
//
// Compared to NOMAD's p×n partitioning (one "block" per item), the
// coarse grid forces workers to synchronize through the manager and
// limits overlap; the Fig 5 benchmark reproduces that contrast.
package fpsgd

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/partition"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/sparse"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// FPSGD is the solver. The zero value is ready to use.
type FPSGD struct{}

// New returns an FPSGD** solver.
func New() *FPSGD { return &FPSGD{} }

// Name implements train.Algorithm.
func (*FPSGD) Name() string { return "fpsgd" }

// block is one grid cell's ratings, stored flat for cache-friendly
// passes, with per-rating update counts for the step-size schedule.
// Block exclusivity makes all of this single-owner at any moment.
type block struct {
	users  []int32
	items  []int32
	vals   []float64
	counts []int32
	perm   []int32 // scratch for randomized visiting order
}

// manager is the FPSGD** task manager.
type manager struct {
	mu       sync.Mutex
	pp       int // grid side p′
	rowBusy  []bool
	colBusy  []bool
	updates  []int // per-block completed passes
	nonEmpty []bool
}

// acquire returns a free block id (no busy row/col), preferring the
// least-updated candidate with random tie-breaking, or -1 if no block
// is currently free.
func (tm *manager) acquire(r *rng.Source) int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	best, bestCount, ties := -1, int(^uint(0)>>1), 0
	for a := 0; a < tm.pp; a++ {
		if tm.rowBusy[a] {
			continue
		}
		for b := 0; b < tm.pp; b++ {
			if tm.colBusy[b] {
				continue
			}
			id := a*tm.pp + b
			if !tm.nonEmpty[id] {
				continue
			}
			c := tm.updates[id]
			switch {
			case c < bestCount:
				best, bestCount, ties = id, c, 1
			case c == bestCount:
				ties++
				if r.Intn(ties) == 0 {
					best = id
				}
			}
		}
	}
	if best >= 0 {
		tm.rowBusy[best/tm.pp] = true
		tm.colBusy[best%tm.pp] = true
	}
	return best
}

// release returns a block to the pool and credits one pass over it.
func (tm *manager) release(id int) {
	tm.mu.Lock()
	tm.rowBusy[id/tm.pp] = false
	tm.colBusy[id%tm.pp] = false
	tm.updates[id]++
	tm.mu.Unlock()
}

// Train implements train.Algorithm. FPSGD** is a shared-memory
// algorithm; Machines is folded into the worker count.
func (*FPSGD) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("fpsgd"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("fpsgd", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	pp := 2 * p // grid side: strictly more blocks than workers
	if pp < 2 {
		pp = 2
	}
	m, n := ds.Rows(), ds.Cols()
	schedule := cfg.Schedule()
	userPart := partition.EqualRanges(m, pp)
	itemPart := partition.EqualRanges(n, pp)
	blocks := buildBlocks(ds, userPart, itemPart, pp)

	var md *factor.Model
	root := rng.New(cfg.Seed)
	workerRNG := make([]*rng.Source, p)
	if st := cfg.Resume; st != nil {
		md = st.Model
		importCounts(ds.Train, userPart, itemPart, blocks, pp, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	tm := &manager{
		pp:       pp,
		rowBusy:  make([]bool, pp),
		colBusy:  make([]bool, pp),
		updates:  make([]int, pp*pp),
		nonEmpty: make([]bool, pp*pp),
	}
	for id, blk := range blocks {
		tm.nonEmpty[id] = len(blk.users) > 0
	}

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	kern := vecmath.KernelFor(cfg.K) // square loss: fused kernel, chosen once
	var stop atomic.Bool
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int, r *rng.Source) {
			defer wg.Done()
			runWorker(q, md, blocks, tm, kern, schedule, cfg, counter, &stop, r)
		}(q, workerRNG[q])
	}

	runErr := train.Monitor(ctx, &stop, counter, cfg, rec, md, hooks)
	wg.Wait()
	rec.Sample(md, counter.Total())

	return &train.Result{
		Algorithm: "fpsgd",
		Model:     md,
		Trace:     rec.Trace(),
		Updates:   counter.Total(),
		Elapsed:   rec.Elapsed(),
		Final: &train.State{
			Algorithm: "fpsgd",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    exportCounts(ds.Train, userPart, itemPart, blocks, pp),
			RNG:       train.CaptureStreams(root, workerRNG),
		},
	}, runErr
}

// runWorker repeatedly leases a free block from the manager and runs
// one randomized SGD pass over it. FPSGD** implements the paper's
// square loss, so every update goes through the fused kernel.
func runWorker(q int, md *factor.Model, blocks []*block, tm *manager,
	kern vecmath.Kernel, schedule sched.Schedule, cfg train.Config,
	counter *train.Counter, stop *atomic.Bool, r *rng.Source) {

	lambda := cfg.Lambda
	table, _ := schedule.(*sched.Table)
	for !stop.Load() {
		id := tm.acquire(r)
		if id < 0 {
			runtime.Gosched()
			continue
		}
		blk := blocks[id]
		// Visit the block's ratings in fresh random order each pass.
		for i := range blk.perm {
			blk.perm[i] = int32(i)
		}
		r.Shuffle(len(blk.perm), func(i, j int) { blk.perm[i], blk.perm[j] = blk.perm[j], blk.perm[i] })
		for _, x := range blk.perm {
			t := blk.counts[x]
			blk.counts[x] = t + 1
			var step float64
			if table != nil {
				step = table.Step(int(t)) // direct, inlinable lookup
			} else {
				step = schedule.Step(int(t))
			}
			kern.Step(md.UserRow(int(blk.users[x])), md.ItemRow(int(blk.items[x])),
				blk.vals[x], step, lambda)
		}
		counter.Add(q, int64(len(blk.perm)))
		// Worker-side budget check: stop promptly at a block boundary
		// once the counted total crosses the update budget.
		if counter.Total() >= cfg.MaxUpdates {
			stop.Store(true)
		}
		tm.release(id)
	}
}

// exportCounts flattens the per-block, per-rating update counts into
// the training matrix's canonical CSR entry order. Blocks are built by
// one CSR traversal (buildBlocks), so replaying that traversal visits
// each block's array exactly in storage order.
func exportCounts(tr *sparse.Matrix, userPart, itemPart *partition.Partition, blocks []*block, pp int) []int32 {
	out := make([]int32, 0, tr.NNZ())
	cur := make([]int32, len(blocks))
	for i := 0; i < tr.Rows(); i++ {
		a := userPart.Owner(i)
		cols, _ := tr.Row(i)
		for _, j := range cols {
			id := a*pp + itemPart.Owner(int(j))
			out = append(out, blocks[id].counts[cur[id]])
			cur[id]++
		}
	}
	return out
}

// importCounts is the inverse of exportCounts: it scatters canonical
// CSR-ordered counts back into freshly built blocks.
func importCounts(tr *sparse.Matrix, userPart, itemPart *partition.Partition, blocks []*block, pp int, counts []int32) {
	cur := make([]int32, len(blocks))
	x := 0
	for i := 0; i < tr.Rows(); i++ {
		a := userPart.Owner(i)
		cols, _ := tr.Row(i)
		for _, j := range cols {
			id := a*pp + itemPart.Owner(int(j))
			blocks[id].counts[cur[id]] = counts[x]
			cur[id]++
			x++
		}
	}
}

// buildBlocks sorts the training ratings into the p′×p′ grid.
func buildBlocks(ds *dataset.Dataset, userPart, itemPart *partition.Partition, pp int) []*block {
	counts := make([]int, pp*pp)
	train := ds.Train
	for i := 0; i < train.Rows(); i++ {
		a := userPart.Owner(i)
		cols, _ := train.Row(i)
		for _, j := range cols {
			counts[a*pp+itemPart.Owner(int(j))]++
		}
	}
	blocks := make([]*block, pp*pp)
	for id := range blocks {
		c := counts[id]
		blocks[id] = &block{
			users:  make([]int32, 0, c),
			items:  make([]int32, 0, c),
			vals:   make([]float64, 0, c),
			counts: make([]int32, c),
			perm:   make([]int32, c),
		}
	}
	for i := 0; i < train.Rows(); i++ {
		a := userPart.Owner(i)
		cols, vals := train.Row(i)
		for x, j := range cols {
			blk := blocks[a*pp+itemPart.Owner(int(j))]
			blk.users = append(blk.users, int32(i))
			blk.items = append(blk.items, j)
			blk.vals = append(blk.vals, vals[x])
		}
	}
	return blocks
}
