package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerAtZero(t *testing.T) {
	s := Power{Alpha: 0.012, Beta: 0.05}
	if got := s.Step(0); got != 0.012 {
		t.Fatalf("Step(0) = %v, want alpha", got)
	}
}

func TestPowerMonotoneDecreasing(t *testing.T) {
	err := quick.Check(func(aRaw, bRaw uint16, tRaw uint8) bool {
		alpha := 0.001 + float64(aRaw)/1e6
		beta := 0.001 + float64(bRaw)/1e6
		s := Power{Alpha: alpha, Beta: beta}
		tt := int(tRaw)
		return s.Step(tt+1) < s.Step(tt) || s.Step(tt+1) == s.Step(tt) && beta == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPowerMatchesFormula(t *testing.T) {
	s := Power{Alpha: 0.00075, Beta: 0.01}
	for _, tt := range []int{0, 1, 2, 10, 100, 1000} {
		want := 0.00075 / (1 + 0.01*math.Pow(float64(tt), 1.5))
		if got := s.Step(tt); math.Abs(got-want) > 1e-15 {
			t.Fatalf("Step(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant(0.5)
	for _, tt := range []int{0, 1, 1000000} {
		if c.Step(tt) != 0.5 {
			t.Fatal("Constant changed over time")
		}
	}
}

func TestInverseTime(t *testing.T) {
	s := InverseTime{Alpha: 1, Beta: 1}
	if s.Step(0) != 1 || s.Step(1) != 0.5 || s.Step(3) != 0.25 {
		t.Fatalf("InverseTime wrong: %v %v %v", s.Step(0), s.Step(1), s.Step(3))
	}
}

func TestBoldDriverGrowsOnImprovement(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(100) // primes
	step := b.Observe(90)
	if math.Abs(step-0.1*1.05) > 1e-12 {
		t.Fatalf("step after improvement = %v, want %v", step, 0.105)
	}
}

func TestBoldDriverShrinksOnRegression(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(100)
	step := b.Observe(200)
	if math.Abs(step-0.05) > 1e-12 {
		t.Fatalf("step after regression = %v, want 0.05", step)
	}
}

func TestBoldDriverFirstObservationPrimesOnly(t *testing.T) {
	b := NewBoldDriver(0.1)
	if step := b.Observe(100); step != 0.1 {
		t.Fatalf("first observation changed step to %v", step)
	}
}

func TestBoldDriverSequence(t *testing.T) {
	b := NewBoldDriver(1)
	b.Observe(10)
	b.Observe(9)  // grow -> 1.05
	b.Observe(8)  // grow -> 1.1025
	b.Observe(12) // shrink -> 0.55125
	want := 1.05 * 1.05 * 0.5
	if math.Abs(b.Step-want) > 1e-12 {
		t.Fatalf("step = %v, want %v", b.Step, want)
	}
}
