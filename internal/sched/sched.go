// Package sched provides the step-size schedules used by the SGD-based
// algorithms.
//
// NOMAD uses the schedule of paper eq. (11),
//
//	s_t = α / (1 + β·t^1.5),
//
// where t counts the updates already applied to the specific (i,j)
// rating. DSGD and DSGD++ instead use the "bold driver" heuristic: the
// step size grows slightly while the training objective decreases and
// is cut sharply when it increases.
package sched

import "math"

// Schedule maps an update count t (for one rating) to a step size.
type Schedule interface {
	// Step returns the step size for the t-th update, t starting at 0.
	Step(t int) float64
}

// Power is the paper's eq. (11) schedule s_t = α/(1+β·t^1.5).
type Power struct {
	Alpha, Beta float64
}

// Step implements Schedule.
func (p Power) Step(t int) float64 {
	tf := float64(t)
	return p.Alpha / (1 + p.Beta*tf*math.Sqrt(tf))
}

// Table precomputes another schedule's first maxT step sizes so the
// per-update hot path pays one slice load instead of recomputing the
// schedule formula — for Power that formula costs a math.Sqrt and a
// divide per rating, by far the most expensive scalar work in the SGD
// inner loop. Past the table it falls back to the exact schedule, so a
// Table is observationally identical to the schedule it wraps: every
// entry is produced by calling Step, hence matches bit for bit.
//
// t counts the updates applied to one specific rating, which in
// practice is the number of training sweeps, so a few thousand entries
// cover any realistic run.
//
// Solvers that hold a concrete *Table (rather than the Schedule
// interface) get a direct, inlinable call with no dynamic dispatch.
type Table struct {
	steps []float64
	exact Schedule
}

// NewTable tabulates s.Step(t) for t in [0, maxT).
func NewTable(s Schedule, maxT int) *Table {
	if maxT < 0 {
		maxT = 0
	}
	t := &Table{steps: make([]float64, maxT), exact: s}
	for i := range t.steps {
		t.steps[i] = s.Step(i)
	}
	return t
}

// Step implements Schedule: a table lookup inside [0, maxT), the exact
// schedule beyond it.
func (tb *Table) Step(t int) float64 {
	if uint(t) < uint(len(tb.steps)) {
		return tb.steps[t]
	}
	return tb.exact.Step(t)
}

// Len returns the number of tabulated steps.
func (tb *Table) Len() int { return len(tb.steps) }

// Steps exposes the precomputed table so batched kernels
// (vecmath.ItemPassFunc) can index it directly: steps[t] == Step(t)
// for t < Len(). Callers must not mutate it.
func (tb *Table) Steps() []float64 { return tb.steps }

// Fallback returns the wrapped exact schedule used past the table.
func (tb *Table) Fallback() Schedule { return tb.exact }

// Constant is a fixed step size, useful in tests and ablations.
type Constant float64

// Step implements Schedule.
func (c Constant) Step(int) float64 { return float64(c) }

// InverseTime is the classical Robbins-Monro s_t = α/(1+β·t) schedule.
type InverseTime struct {
	Alpha, Beta float64
}

// Step implements Schedule.
func (s InverseTime) Step(t int) float64 { return s.Alpha / (1 + s.Beta*float64(t)) }

// BoldDriver adapts a global step size from epoch to epoch by watching
// the training objective: if the objective decreased, the step size is
// multiplied by Grow (>1); if it increased, by Shrink (<1). This is the
// strategy Gemulla et al. use for DSGD (§5.1 of the NOMAD paper).
//
// BoldDriver is not safe for concurrent use; the bulk-synchronous
// algorithms call it once per epoch from their coordinator.
type BoldDriver struct {
	Step          float64 // current step size
	Grow, Shrink  float64
	prevObjective float64
	primed        bool
}

// NewBoldDriver returns a driver starting at step with the customary
// 1.05× growth and 0.5× shrink factors.
func NewBoldDriver(step float64) *BoldDriver {
	return &BoldDriver{Step: step, Grow: 1.05, Shrink: 0.5}
}

// Snapshot returns the driver's adaptive state for checkpointing.
func (b *BoldDriver) Snapshot() (step, prevObjective float64, primed bool) {
	return b.Step, b.prevObjective, b.primed
}

// Restore sets the driver's adaptive state from a checkpoint, so a
// resumed run continues the same growth/shrink trajectory.
func (b *BoldDriver) Restore(step, prevObjective float64, primed bool) {
	b.Step, b.prevObjective, b.primed = step, prevObjective, primed
}

// Observe reports the training objective after an epoch and adapts the
// step size. The first observation only primes the reference value.
// It returns the step size to use for the next epoch.
func (b *BoldDriver) Observe(objective float64) float64 {
	if !b.primed {
		b.primed = true
		b.prevObjective = objective
		return b.Step
	}
	if objective <= b.prevObjective {
		b.Step *= b.Grow
	} else {
		b.Step *= b.Shrink
	}
	b.prevObjective = objective
	return b.Step
}
