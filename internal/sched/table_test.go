package sched

import (
	"math"
	"testing"
)

// TestTableMatchesPowerExactly: every tabulated entry is produced by
// calling the wrapped schedule's Step, and lookups past the table fall
// back to the same call, so Table must equal Power bit for bit for all
// t — including across the table boundary.
func TestTableMatchesPowerExactly(t *testing.T) {
	p := Power{Alpha: 0.05, Beta: 0.02}
	tb := NewTable(p, 64)
	if tb.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tb.Len())
	}
	for i := 0; i < 300; i++ {
		if got, want := tb.Step(i), p.Step(i); got != want {
			t.Fatalf("Step(%d) = %v, want %v (table boundary at 64)", i, got, want)
		}
	}
}

func TestTableNegativeAndEmpty(t *testing.T) {
	p := Power{Alpha: 0.1, Beta: 0.5}
	tb := NewTable(p, 0)
	for _, i := range []int{0, 1, 17} {
		if got, want := tb.Step(i), p.Step(i); got != want {
			t.Fatalf("empty table Step(%d) = %v, want %v", i, got, want)
		}
	}
	// Negative t is out of schedule domain but must not panic on the
	// table any more than on Power itself (Power yields NaN there).
	tb = NewTable(p, 8)
	got, want := tb.Step(-1), p.Step(-1)
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("Step(-1) = %v, want %v", got, want)
	}
}

func TestTableWrapsAnySchedule(t *testing.T) {
	tb := NewTable(Constant(0.25), 4)
	for i := 0; i < 10; i++ {
		if tb.Step(i) != 0.25 {
			t.Fatalf("Step(%d) = %v, want 0.25", i, tb.Step(i))
		}
	}
}

func BenchmarkPowerStep(b *testing.B) {
	p := Power{Alpha: 0.05, Beta: 0.02}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.Step(i & 1023)
	}
	_ = sink
}

func BenchmarkTableStep(b *testing.B) {
	tb := NewTable(Power{Alpha: 0.05, Beta: 0.02}, 1024)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = tb.Step(i & 1023)
	}
	_ = sink
}
