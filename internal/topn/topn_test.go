package topn

import (
	"math/rand"
	"sort"
	"testing"
)

// refTopN is the obviously-correct oracle: full sort, take n.
func refTopN(recs []Rec, n int) []Rec {
	s := append([]Rec(nil), recs...)
	sort.Slice(s, func(a, b int) bool { return Worse(s[b], s[a]) })
	if len(s) > n {
		s = s[:n]
	}
	return s
}

func equalRecs(a, b []Rec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeapMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		total := rng.Intn(400)
		n := 1 + rng.Intn(20)
		recs := make([]Rec, total)
		for i := range recs {
			// Coarse scores force plenty of ties, exercising the
			// item-index tie-break.
			recs[i] = Rec{Item: int32(i), Score: float64(rng.Intn(7))}
		}
		rng.Shuffle(total, func(a, b int) { recs[a], recs[b] = recs[b], recs[a] })
		h := NewHeap(n)
		for _, r := range recs {
			h.Offer(r)
		}
		got := h.Sorted()
		want := refTopN(recs, n)
		if !equalRecs(got, want) {
			t.Fatalf("trial %d (total=%d n=%d): heap %v != sort %v", trial, total, n, got, want)
		}
	}
}

func TestMergeDisjointPartsEqualsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		total := 1 + rng.Intn(500)
		n := 1 + rng.Intn(15)
		parts := 1 + rng.Intn(5)
		all := make([]Rec, total)
		lists := make([][]Rec, parts)
		heaps := make([]*Heap, parts)
		for p := range heaps {
			heaps[p] = NewHeap(n)
		}
		for i := range all {
			all[i] = Rec{Item: int32(i), Score: float64(rng.Intn(9))}
			heaps[rng.Intn(parts)].Offer(all[i])
		}
		for p := range heaps {
			lists[p] = heaps[p].Sorted()
		}
		got := Merge(n, lists...)
		want := refTopN(all, n)
		if !equalRecs(got, want) {
			t.Fatalf("trial %d: merge %v != global %v", trial, got, want)
		}
	}
}

func TestWorstIsAdmissionThreshold(t *testing.T) {
	h := NewHeap(2)
	if _, ok := h.Worst(); ok {
		t.Fatal("empty heap reported a worst record")
	}
	h.Offer(Rec{Item: 1, Score: 5})
	if h.Full() {
		t.Fatal("heap full after one offer of two")
	}
	h.Offer(Rec{Item: 2, Score: 3})
	if !h.Full() {
		t.Fatal("heap not full at capacity")
	}
	w, ok := h.Worst()
	if !ok || w != (Rec{Item: 2, Score: 3}) {
		t.Fatalf("worst = %v, want item 2 score 3", w)
	}
	// A record worse than the threshold must not displace anything.
	h.Offer(Rec{Item: 3, Score: 2})
	if w2, _ := h.Worst(); w2 != w {
		t.Fatalf("threshold moved on a losing offer: %v", w2)
	}
	// An equal-score, higher-index record is worse too.
	h.Offer(Rec{Item: 9, Score: 3})
	if w2, _ := h.Worst(); w2 != w {
		t.Fatalf("threshold moved on an equal-score higher-index offer: %v", w2)
	}
	// An equal-score, lower-index record displaces.
	h.Offer(Rec{Item: 0, Score: 3})
	if w2, _ := h.Worst(); w2 != (Rec{Item: 0, Score: 3}) {
		t.Fatalf("worst = %v, want item 0 score 3", w2)
	}
}

func TestZeroAndResetBehaviour(t *testing.T) {
	h := NewHeap(0)
	h.Offer(Rec{Item: 1, Score: 1})
	if h.Len() != 0 || len(h.Sorted()) != 0 {
		t.Fatal("n=0 heap kept records")
	}
	h = NewHeap(3)
	for i := 0; i < 5; i++ {
		h.Offer(Rec{Item: int32(i), Score: float64(i)})
	}
	if got := h.Sorted(); len(got) != 3 || got[0].Item != 4 {
		t.Fatalf("sorted = %v", got)
	}
	h.Reset(2)
	h.Offer(Rec{Item: 7, Score: 1})
	if got := h.Sorted(); len(got) != 1 || got[0].Item != 7 {
		t.Fatalf("after reset: %v", got)
	}
}
