// Package topn implements the bounded top-N min-heap behind
// Model.Recommend and the serving layer's candidate scans.
//
// Keeping only the current best N while streaming over a large catalog
// makes a top-N query O(total·log N) instead of O(total·log total),
// with no allocation proportional to the catalog. The same heap merges
// per-shard top-N lists at a scatter/gather gateway: parts are
// disjoint, so offering every shard's local top-N into one heap yields
// exactly the global top-N.
//
// Ordering is total and deterministic: higher score first, and on
// equal scores the lower item index first. Every consumer of the heap
// (the training-side Recommend, the serving index scan, the gateway
// merge) shares this ordering, which is what makes the serving path's
// "bit-identical to Model.Recommend" CI assertion possible.
package topn

// Rec is one scored item.
type Rec struct {
	Item  int32
	Score float64
}

// Worse reports whether a ranks strictly below b in the final
// ordering: lower score, or equal score with a larger item index.
func Worse(a, b Rec) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

// Heap is a bounded min-heap of capacity N ordered worst-first (the
// root is the currently weakest kept recommendation). The zero value
// is unusable; construct with NewHeap.
type Heap struct {
	n    int
	recs []Rec
}

// NewHeap returns an empty heap that keeps the best n records.
func NewHeap(n int) *Heap {
	if n <= 0 {
		return &Heap{}
	}
	return &Heap{n: n, recs: make([]Rec, 0, n)}
}

// Reset empties the heap for reuse, keeping its capacity.
func (h *Heap) Reset(n int) {
	h.n = n
	if cap(h.recs) < n {
		h.recs = make([]Rec, 0, n)
		return
	}
	h.recs = h.recs[:0]
}

// Len returns the number of records currently kept.
func (h *Heap) Len() int { return len(h.recs) }

// Full reports whether the heap holds its full N records — the
// precondition for Worst to be a meaningful admission threshold.
func (h *Heap) Full() bool { return h.n > 0 && len(h.recs) == h.n }

// Worst returns the weakest kept record (the admission threshold once
// the heap is full). ok is false while the heap is empty.
func (h *Heap) Worst() (rec Rec, ok bool) {
	if len(h.recs) == 0 {
		return Rec{}, false
	}
	return h.recs[0], true
}

func (h *Heap) siftUp(i int) {
	s := h.recs
	for i > 0 {
		parent := (i - 1) / 2
		if !Worse(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func siftDown(s []Rec, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && Worse(s[l], s[min]) {
			min = l
		}
		if r < len(s) && Worse(s[r], s[min]) {
			min = r
		}
		if min == i {
			return
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// Offer inserts rec if the heap is below capacity, or replaces the
// current worst if rec outranks it.
func (h *Heap) Offer(rec Rec) {
	if h.n == 0 {
		return
	}
	if len(h.recs) < h.n {
		h.recs = append(h.recs, rec)
		h.siftUp(len(h.recs) - 1)
		return
	}
	if Worse(rec, h.recs[0]) {
		return
	}
	h.recs[0] = rec
	siftDown(h.recs, 0)
}

// Sorted pops the heap into best-first order, consuming it: the heap
// is empty afterwards and the returned slice aliases its storage.
func (h *Heap) Sorted() []Rec {
	s := h.recs
	for n := len(s) - 1; n > 0; n-- {
		s[0], s[n] = s[n], s[0]
		siftDown(s[:n], 0)
	}
	h.recs = h.recs[len(s):]
	return s
}

// Merge folds several best-first (or unordered) candidate lists into
// the global top n. With disjoint candidate sets — per-shard top-n
// lists from a scatter — the result is exactly the top n of the union.
func Merge(n int, lists ...[]Rec) []Rec {
	h := NewHeap(n)
	for _, l := range lists {
		for _, r := range l {
			h.Offer(r)
		}
	}
	return h.Sorted()
}
