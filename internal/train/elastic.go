package train

import (
	"fmt"
	"sync"
)

// ElasticControl is the caller-facing trigger surface of an elastic
// run: the Session (or a CLI signal handler, or a join gate admitting
// a late dialer) asks the running cluster to activate a provisioned
// spare or to drain a member gracefully. The asynchronous runner binds
// the handlers once the failover runtime exists; triggers before that
// (or after the run ends) fail with a typed error rather than block.
type ElasticControl struct {
	mu    sync.Mutex
	join  func(rank int) error
	drain func(rank int) error
}

// Bind installs the runner's join/drain handlers. Called by the
// training runner at startup; callers never invoke it.
func (ec *ElasticControl) Bind(join, drain func(rank int) error) {
	ec.mu.Lock()
	ec.join, ec.drain = join, drain
	ec.mu.Unlock()
}

// Join asks the run to activate a provisioned spare machine. rank -1
// picks the lowest idle spare. The call returns once the join round is
// enqueued; completion is reported through Hooks.Resize.
func (ec *ElasticControl) Join(rank int) error {
	ec.mu.Lock()
	fn := ec.join
	ec.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("train: no elastic run is active")
	}
	return fn(rank)
}

// Drain asks the run to remove a machine gracefully, streaming its
// tokens to its ring buddy with zero lost updates. rank -1 picks the
// leaver deterministically (highest active rank, preferring machines
// that did not just join).
func (ec *ElasticControl) Drain(rank int) error {
	ec.mu.Lock()
	fn := ec.drain
	ec.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("train: no elastic run is active")
	}
	return fn(rank)
}
