package train

import (
	"sync"
	"testing"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/sparse"
)

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := sparse.NewBuilder(8, 6, 0)
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if (i+2*j)%3 != 0 {
				b.Add(i, j, float64((i*j)%5)+1)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.FromMatrix("tiny", m, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNormalizeDefaults(t *testing.T) {
	ds := tinyDataset(t)
	c, err := Config{}.Normalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if c.K <= 0 || c.Alpha <= 0 || c.Machines != 1 || c.Workers != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.MaxUpdates != int64(c.Epochs)*int64(ds.Train.NNZ()) {
		t.Fatalf("MaxUpdates = %d, want epochs×nnz", c.MaxUpdates)
	}
	if c.BatchSize != 100 {
		t.Fatalf("BatchSize default = %d, want 100 (§3.5)", c.BatchSize)
	}
	if c.Circulate != 1 {
		t.Fatalf("Circulate default = %d, want 1 (§3.4)", c.Circulate)
	}
}

func TestNormalizeRejectsBadConfigs(t *testing.T) {
	ds := tinyDataset(t)
	if _, err := (Config{Lambda: -1}).Normalize(ds); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := (Config{Beta: -1}).Normalize(ds); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := (Config{}).Normalize(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestNormalizeKeepsExplicitValues(t *testing.T) {
	ds := tinyDataset(t)
	in := Config{K: 8, Lambda: 0.5, Alpha: 0.1, Beta: 0.2, Machines: 2, Workers: 3,
		BatchSize: 7, Epochs: 4, EvalPoints: 5, Seed: 99}
	c, err := in.Normalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 8 || c.Lambda != 0.5 || c.Machines != 2 || c.Workers != 3 ||
		c.BatchSize != 7 || c.EvalPoints != 5 || c.Seed != 99 {
		t.Fatalf("explicit values overwritten: %+v", c)
	}
	if c.TotalWorkers() != 6 {
		t.Fatalf("TotalWorkers = %d", c.TotalWorkers())
	}
}

func TestScheduleMatchesEq11(t *testing.T) {
	c := Config{Alpha: 0.012, Beta: 0.05}
	s := c.Schedule()
	if s.Step(0) != 0.012 {
		t.Fatalf("Step(0) = %v", s.Step(0))
	}
	if s.Step(10) >= s.Step(1) {
		t.Fatal("schedule not decreasing")
	}
}

func TestTable1(t *testing.T) {
	c, ok := Table1("netflix-like")
	if !ok || c.K != 100 || c.Lambda != 0.05 || c.Alpha != 0.012 || c.Beta != 0.05 {
		t.Fatalf("netflix Table1 = %+v ok=%v", c, ok)
	}
	c, ok = Table1("yahoo-like")
	if !ok || c.Lambda != 1.0 {
		t.Fatalf("yahoo Table1 = %+v ok=%v", c, ok)
	}
	c, ok = Table1("hugewiki-like")
	if !ok || c.Beta != 0 {
		t.Fatalf("hugewiki Table1 = %+v ok=%v", c, ok)
	}
	if _, ok := Table1("unknown"); ok {
		t.Fatal("unknown profile has Table1 entry")
	}
}

func TestSynthDefaultsDistinct(t *testing.T) {
	n := SynthDefaults("netflix-like")
	y := SynthDefaults("yahoo-like")
	if n.Lambda == y.Lambda {
		t.Fatal("profiles share lambda; expected paper's ordering λ_yahoo > λ_netflix")
	}
}

func TestCounterShards(t *testing.T) {
	c := NewCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if c.Total() != 40000 {
		t.Fatalf("Total = %d, want 40000", c.Total())
	}
}

func TestRecorderThresholds(t *testing.T) {
	md := factor.NewInit(4, 4, 2, 1)
	test := []sparse.Entry{{Row: 0, Col: 0, Val: 1}}
	r := NewRecorder(test, 100, 4, nil) // thresholds at 25, 50, 75, 100
	if r.Due(10) {
		t.Fatal("Due too early")
	}
	if !r.Due(25) {
		t.Fatal("not due at threshold")
	}
	r.Sample(md, 25)
	if r.Due(30) {
		t.Fatal("due immediately after sampling")
	}
	if !r.Due(50) {
		t.Fatal("not due at second threshold")
	}
	r.Sample(md, 80) // skips past 50 and 75
	if r.Due(90) {
		t.Fatal("thresholds not advanced past sampled count")
	}
	tr := r.Trace()
	if len(tr.Points) != 2 {
		t.Fatalf("trace has %d points, want 2", len(tr.Points))
	}
	if tr.Points[0].Updates != 25 || tr.Points[1].Updates != 80 {
		t.Fatalf("trace updates: %+v", tr.Points)
	}
}

func TestRecorderElapsedMonotone(t *testing.T) {
	r := NewRecorder(nil, 10, 2, nil)
	a := r.Elapsed()
	time.Sleep(time.Millisecond)
	if b := r.Elapsed(); b <= a {
		t.Fatal("Elapsed not monotone")
	}
}

func TestResultThroughput(t *testing.T) {
	res := &Result{Updates: 1000, Elapsed: 2 * time.Second}
	cfg := Config{Machines: 2, Workers: 5}
	tp := res.Throughput(cfg)
	if tp.PerWorkerPerSec() != 50 {
		t.Fatalf("PerWorkerPerSec = %v, want 50", tp.PerWorkerPerSec())
	}
}
