package train

// This file defines State, the resumable snapshot of a paused training
// run: the factor model, the position in the per-rating step-size
// schedule, the RNG streams and (for NOMAD) the token-ownership map.
// Every solver captures a State into Result.Final when it stops —
// whether it ran to completion or was cancelled — and accepts one back
// through Config.Resume, so a killed run restarts where it left off.
// For deterministic configurations (one worker, no deadline) the
// restart is bit-compatible: the resumed run produces exactly the
// parameters an uninterrupted run would have.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nomad/internal/factor"
	"nomad/internal/rng"
)

// BoldState is the bold-driver schedule position of the DSGD-family
// solvers (§5.1): the current step size and the previous epoch's
// training objective it adapts against.
type BoldState struct {
	Step   float64
	Prev   float64
	Primed bool
}

// State is a solver's full resumable training state. Which fields are
// populated depends on the algorithm; Algorithm records the producer
// and resume is refused across algorithms.
type State struct {
	// Algorithm is the solver that produced this state.
	Algorithm string
	// Seed is the run's seed, kept so a resumed run can re-derive any
	// streams that are not explicitly captured.
	Seed uint64
	// Updates is the cumulative update count at capture time. Resumed
	// runs seed their counters with it, so stop budgets (Epochs,
	// MaxUpdates) and the trace's update axis span segments.
	Updates int64
	// Ring is the epoch-driven solvers' position: DSGD/DSGD++'s ring
	// shift s, biassgd's pass number.
	Ring int64
	// Bold is the bold-driver schedule state (DSGD family); nil for
	// solvers on the eq. 11 schedule.
	Bold *BoldState
	// Model is the factor model at capture time.
	Model *factor.Model
	// Counts holds the per-rating update counts that drive the eq. (11)
	// step-size schedule, in the solver's canonical rating order
	// (NOMAD: CSC order; Hogwild/FPSGD**: CSR entry order). Nil for
	// solvers without per-rating schedules.
	Counts []int32
	// RNG holds the solver's generator streams (xoshiro256** states):
	// by convention the root stream first, then one per worker.
	RNG [][4]uint64
	// Queues is NOMAD's shared-memory token-ownership map: for each
	// worker queue, the parked item tokens in pop order. Nil for other
	// solvers and for distributed runs (whose tokens were folded back
	// into the model at teardown and are re-scattered on resume).
	Queues [][]int32
}

// Validate checks a State against the run it is about to resume: the
// producing algorithm and the model shape (k is the solver's storage
// rank — cfg.K, or cfg.K+2 for the bias-augmented model) must match.
func (s *State) Validate(algorithm string, m, n, k int) error {
	if s == nil {
		return nil
	}
	if s.Algorithm != algorithm {
		return fmt.Errorf("train: resume state from %q cannot resume %q", s.Algorithm, algorithm)
	}
	if s.Model == nil {
		return fmt.Errorf("train: resume state has no model")
	}
	if s.Model.M != m || s.Model.N != n || s.Model.K != k {
		return fmt.Errorf("train: resume model is %d×%d rank %d but run wants %d×%d rank %d",
			s.Model.M, s.Model.N, s.Model.K, m, n, k)
	}
	return nil
}

// CountsFor returns the state's per-rating counts if they match the
// expected rating total, or a fresh zero slice: a resume against a
// different train split warm-starts the factors but restarts the
// per-rating schedule.
func (s *State) CountsFor(nnz int) []int32 {
	if s != nil && len(s.Counts) == nnz {
		return s.Counts
	}
	return make([]int32, nnz)
}

// CaptureStreams records the root and per-worker RNG positions, root
// first — the convention RestoreStreams expects.
func CaptureStreams(root *rng.Source, workers []*rng.Source) [][4]uint64 {
	out := make([][4]uint64, 0, len(workers)+1)
	out = append(out, root.State())
	for _, w := range workers {
		out = append(out, w.State())
	}
	return out
}

// RestoreStreams rebuilds the root and per-worker sources from the
// state's captured streams. If the stream count does not match (e.g.
// the run resumes with a different worker count), fresh streams are
// split from the restored root — statistically sound, though no longer
// the bitwise continuation.
func (s *State) RestoreStreams(root *rng.Source, workers []*rng.Source) {
	streams := s.RNG
	if len(streams) > 0 {
		*root = *rng.FromState(streams[0])
		streams = streams[1:]
	}
	for q := range workers {
		if q < len(streams) {
			workers[q] = rng.FromState(streams[q])
		} else {
			workers[q] = root.Split(uint64(q))
		}
	}
}

// stateMagic identifies the checkpoint container format ("NMCK").
const stateMagic uint32 = 0x4e4d434b

const stateVersion uint32 = 1

// WriteBinary serializes the state. The format is versioned,
// little-endian and self-contained: header, model (factor's own
// binary format), then each optional section with a length prefix.
func (s *State) WriteBinary(w io.Writer) error {
	if s.Model == nil {
		return fmt.Errorf("train: state has no model")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(stateMagic); err != nil {
		return fmt.Errorf("train: write state header: %w", err)
	}
	for _, v := range []any{stateVersion, uint32(len(s.Algorithm))} {
		if err := write(v); err != nil {
			return fmt.Errorf("train: write state header: %w", err)
		}
	}
	if _, err := bw.WriteString(s.Algorithm); err != nil {
		return fmt.Errorf("train: write state header: %w", err)
	}
	boldFields := [3]float64{}
	hasBold := uint32(0)
	if s.Bold != nil {
		hasBold = 1
		boldFields[0] = s.Bold.Step
		boldFields[1] = s.Bold.Prev
		if s.Bold.Primed {
			boldFields[2] = 1
		}
	}
	for _, v := range []any{s.Seed, s.Updates, s.Ring, hasBold, uint32(0), boldFields} {
		if err := write(v); err != nil {
			return fmt.Errorf("train: write state scalars: %w", err)
		}
	}
	if err := s.Model.WriteBinary(bw); err != nil {
		return err
	}
	if err := write(uint64(len(s.Counts))); err != nil {
		return fmt.Errorf("train: write counts: %w", err)
	}
	if len(s.Counts) > 0 {
		if err := write(s.Counts); err != nil {
			return fmt.Errorf("train: write counts: %w", err)
		}
	}
	if err := write(uint64(len(s.RNG))); err != nil {
		return fmt.Errorf("train: write rng: %w", err)
	}
	for _, st := range s.RNG {
		if err := write(st); err != nil {
			return fmt.Errorf("train: write rng: %w", err)
		}
	}
	if err := write(uint64(len(s.Queues))); err != nil {
		return fmt.Errorf("train: write queues: %w", err)
	}
	for _, q := range s.Queues {
		if err := write(uint64(len(q))); err != nil {
			return fmt.Errorf("train: write queues: %w", err)
		}
		if len(q) > 0 {
			if err := write(q); err != nil {
				return fmt.Errorf("train: write queues: %w", err)
			}
		}
	}
	return bw.Flush()
}

// maxStateSection bounds length prefixes read from a checkpoint.
const maxStateSection = 1 << 31

// readInt32Section reads an n-entry int32 section in bounded chunks,
// growing the result as data actually arrives — so a corrupt length
// prefix in a tiny file fails on EOF after at most one chunk instead
// of driving a multi-GiB up-front allocation.
func readInt32Section(br io.Reader, n uint64, what string) ([]int32, error) {
	if n > maxStateSection {
		return nil, fmt.Errorf("train: corrupt checkpoint (%s length %d)", what, n)
	}
	const chunk = 1 << 20
	cap0 := n
	if cap0 > chunk {
		cap0 = chunk
	}
	out := make([]int32, 0, cap0)
	buf := make([]int32, chunk)
	for remaining := n; remaining > 0; {
		c := remaining
		if c > chunk {
			c = chunk
		}
		if err := binary.Read(br, binary.LittleEndian, buf[:c]); err != nil {
			return nil, fmt.Errorf("train: read %s: %w", what, err)
		}
		out = append(out, buf[:c]...)
		remaining -= c
	}
	return out, nil
}

// ReadState deserializes a state written by WriteBinary.
func ReadState(r io.Reader) (*State, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var magic, version, nameLen uint32
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("train: read state header: %w", err)
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("train: not a checkpoint (magic %#x)", magic)
	}
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("train: read state header: %w", err)
	}
	if version != stateVersion {
		return nil, fmt.Errorf("train: unsupported checkpoint version %d", version)
	}
	if err := read(&nameLen); err != nil {
		return nil, fmt.Errorf("train: read state header: %w", err)
	}
	if nameLen > 256 {
		return nil, fmt.Errorf("train: corrupt checkpoint (algorithm name length %d)", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("train: read state header: %w", err)
	}
	s := &State{Algorithm: string(name)}
	var hasBold, reserved uint32
	var boldFields [3]float64
	for _, v := range []any{&s.Seed, &s.Updates, &s.Ring, &hasBold, &reserved, &boldFields} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("train: read state scalars: %w", err)
		}
	}
	if hasBold != 0 {
		s.Bold = &BoldState{Step: boldFields[0], Prev: boldFields[1], Primed: boldFields[2] != 0}
	}
	md, err := factor.ReadBinary(br)
	if err != nil {
		return nil, err
	}
	s.Model = md
	var n uint64
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("train: read counts: %w", err)
	}
	if n > 0 {
		counts, err := readInt32Section(br, n, "counts")
		if err != nil {
			return nil, err
		}
		s.Counts = counts
	}
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("train: read rng: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("train: corrupt checkpoint (rng stream count %d)", n)
	}
	for i := uint64(0); i < n; i++ {
		var st [4]uint64
		if err := read(&st); err != nil {
			return nil, fmt.Errorf("train: read rng: %w", err)
		}
		s.RNG = append(s.RNG, st)
	}
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("train: read queues: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("train: corrupt checkpoint (queue count %d)", n)
	}
	for i := uint64(0); i < n; i++ {
		var l uint64
		if err := read(&l); err != nil {
			return nil, fmt.Errorf("train: read queues: %w", err)
		}
		q, err := readInt32Section(br, l, "queue")
		if err != nil {
			return nil, err
		}
		s.Queues = append(s.Queues, q)
	}
	return s, nil
}
