// Package train defines the configuration, stop conditions, result
// shape and trace recording shared by every matrix-completion algorithm
// in this repository, so the benchmark harness can drive NOMAD and all
// baselines through one interface.
package train

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/loss"
	"nomad/internal/metrics"
	"nomad/internal/netsim"
	"nomad/internal/queue"
	"nomad/internal/sched"
	"nomad/internal/sparse"
	"nomad/internal/vecmath"
)

// Config carries every tunable of a training run. Zero values are
// replaced by sensible defaults in Normalize.
type Config struct {
	// Model hyper-parameters (paper Table 1).
	K      int     // latent dimension k
	Lambda float64 // regularization λ

	// SGD step-size schedule (paper eq. 11) for NOMAD/FPSGD**/Hogwild.
	Alpha, Beta float64
	// BoldStep is the initial step size of the bold-driver schedule
	// used by DSGD and DSGD++ (§5.1).
	BoldStep float64

	// Parallelism: Workers compute threads on each of Machines
	// machines, connected by the given network profile.
	Machines int
	Workers  int
	Profile  netsim.Profile

	// Backend selects the machine-to-machine transport for distributed
	// runs: "" or "sim" for the modelled in-process network (netsim),
	// "tcp" for real TCP sockets — a loopback mesh inside one process,
	// or a true multi-process cluster when Role is set.
	Backend string
	// Role places this process in a multi-process cluster: "" for
	// single-process runs, "coordinator" (rank 0, listens on Listen and
	// waits for Machines-1 workers) or "worker" (joins the coordinator
	// at Join, listening on Listen — may be ":0" — for peer
	// connections). Multi-process runs use the deterministic lockstep
	// runner, so Role implies Lockstep.
	Role   string
	Listen string
	Join   string
	// Lockstep selects the deterministic round-based distributed
	// runner: machines process their whole token queue, exchange
	// tokens at a synchronization point, and the coordinator decides
	// stop at round boundaries. Bitwise-identical results across
	// backends and process placements — the property the cross-backend
	// parity CI asserts — at the cost of the asynchronous overlap the
	// paper advocates.
	Lockstep bool

	// NOMAD-specific knobs.
	BatchSize   int        // tokens per network message (§3.5, default 100)
	QueueKind   queue.Kind // token transport (KindAuto → batched SPSC mesh; see queue.Kind)
	LoadBalance bool       // §3.3 dynamic load balancing
	Circulate   int        // local visits per token per machine pass (§3.4, default 1)

	// Straggle artificially slows worker 0 by the given factor (e.g. 4
	// makes it process tokens 4× slower); 0 or 1 disables it. It exists
	// to reproduce the heterogeneous-worker scenario that motivates
	// §3.3's dynamic load balancing.
	Straggle float64

	// Loss is the per-rating loss (§6 generalization). Nil means the
	// square loss of eq. (1). Only NOMAD and Hogwild honour it; the
	// bulk-synchronous baselines implement the paper's square loss.
	Loss loss.Loss

	// BalanceUsers partitions users by rating count instead of by user
	// count (the paper's footnote-1 alternative), which evens worker
	// load on degree-skewed data.
	BalanceUsers bool

	// Stop conditions: the run ends when any of these is reached.
	Epochs     int           // ≈ sweeps over the training set (0 = use MaxUpdates/Deadline)
	MaxUpdates int64         // hard cap on SGD updates (0 = derived from Epochs)
	Deadline   time.Duration // wall-clock limit (0 = none)

	// EvalPoints is how many RMSE samples the convergence trace should
	// hold (sampled evenly over the run; default 16).
	EvalPoints int

	// Resume, when non-nil, continues a previous run from its captured
	// State: the model, per-rating schedule position, RNG streams and
	// (for NOMAD) token ownership are restored, and Updates counts from
	// the state's total — so Epochs/MaxUpdates budgets span the
	// original run plus the resumed one. The state must come from the
	// same algorithm and a dataset of the same shape (State.Validate).
	Resume *State

	// Precision selects the factor-model element type. Float64 (the
	// zero value) is supported everywhere; Float32 halves model memory
	// and bandwidth and is honoured by the NOMAD shared-memory and
	// asynchronous distributed runners and by Hogwild (see DESIGN.md
	// §9). The deterministic lockstep/multi-process runners and the
	// bulk-synchronous baselines reject it.
	Precision factor.Precision

	// PinWorkers pins each SGD worker goroutine to its own OS thread
	// and, on linux, to a distinct CPU core — the placement used by the
	// multi-core scaling experiments. Best-effort elsewhere (the thread
	// is still locked, but affinity is left to the scheduler).
	PinWorkers bool

	// Failover lets a multi-machine asynchronous run survive the death
	// of a machine: survivors evict it, regenerate the item tokens it
	// held from its buddy's replicated snapshot, adopt its user rows,
	// and resume the epoch (DESIGN.md §11). Only the asynchronous
	// runners support it; lockstep and multi-process runs reject it.
	Failover bool

	// ElasticSpares provisions this many extra machine slots beyond
	// Machines for mid-run scale-out: spares run their communication
	// threads from the start but own no tokens and attract no traffic
	// until a join activates them (DESIGN.md §11). Implies Failover.
	// Normalize grows it to cover any join events in the Chaos schedule.
	ElasticSpares int

	// Elastic, when non-nil, receives the run's join/drain trigger
	// handlers so the caller can resize the cluster mid-run.
	Elastic *ElasticControl

	// Chaos injects a deterministic fault schedule into the run (kill,
	// partition, delay, drop, join or drain machines at named protocol
	// points) — the failure half of the failover test matrix. Kill,
	// partition, join and drain imply Failover.
	Chaos *cluster.ChaosSpec

	// HeartbeatInterval and HeartbeatTimeout tune the tcp backend's
	// liveness probes and silent-peer detection (defaults 500ms / 10s;
	// zero keeps the default, negative timeout disables detection).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	Seed uint64
}

// Normalize fills defaults and derives MaxUpdates from Epochs.
// It returns an error for configurations that cannot run.
func (c Config) Normalize(ds *dataset.Dataset) (Config, error) {
	if ds == nil || ds.Train == nil || ds.Train.NNZ() == 0 {
		return c, fmt.Errorf("train: empty dataset")
	}
	if c.K <= 0 {
		c.K = 16
	}
	if c.Lambda < 0 {
		return c, fmt.Errorf("train: negative lambda %v", c.Lambda)
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	if c.Beta < 0 {
		return c, fmt.Errorf("train: negative beta %v", c.Beta)
	}
	if c.BoldStep <= 0 {
		c.BoldStep = c.Alpha
	}
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Profile.Name == "" {
		c.Profile = netsim.Instant()
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.Circulate <= 0 {
		c.Circulate = 1
	}
	if c.Epochs <= 0 && c.MaxUpdates == 0 && c.Deadline == 0 {
		c.Epochs = 10
	}
	if c.MaxUpdates == 0 {
		if c.Epochs > 0 {
			c.MaxUpdates = int64(c.Epochs) * int64(ds.Train.NNZ())
		} else {
			// Deadline-only run: the wall clock is the only stop.
			c.MaxUpdates = math.MaxInt64
		}
	}
	if c.EvalPoints <= 0 {
		c.EvalPoints = 16
	}
	if c.Loss == nil {
		c.Loss = loss.Square{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch c.Backend {
	case "", "sim", "tcp":
	default:
		return c, fmt.Errorf("train: unknown backend %q (sim, tcp)", c.Backend)
	}
	switch c.Role {
	case "":
	case "coordinator":
		if c.Listen == "" {
			return c, fmt.Errorf("train: coordinator role needs a listen address")
		}
		c.Backend = "tcp"
		c.Lockstep = true
	case "worker":
		if c.Join == "" {
			return c, fmt.Errorf("train: worker role needs the coordinator address to join")
		}
		c.Backend = "tcp"
		c.Lockstep = true
	default:
		return c, fmt.Errorf("train: unknown role %q (coordinator, worker)", c.Role)
	}
	if c.Precision > factor.Float32 {
		return c, fmt.Errorf("train: unknown precision %d", c.Precision)
	}
	if c.Precision != factor.Float64 && (c.Lockstep || c.Role != "") {
		// The lockstep runner's contract is bitwise-identical results
		// across backends and process placements; its wire format and
		// parity tests are float64. Keep float32 out rather than
		// weakening the guarantee.
		return c, fmt.Errorf("train: %v precision is not supported by the lockstep/multi-process runner", c.Precision)
	}
	if st := c.Resume; st != nil && st.Model != nil && st.Model.Precision() != c.Precision {
		return c, fmt.Errorf("train: resume state is %v but the run is configured for %v",
			st.Model.Precision(), c.Precision)
	}
	if c.Role == "" && c.Machines == 1 {
		// A single machine has no cluster: silently falling back to the
		// shared-memory path would hand the caller a nondeterministic
		// async run after they explicitly asked for the reproducible
		// (lockstep) or real-socket (tcp) distributed mode.
		if c.Lockstep {
			return c, fmt.Errorf("train: lockstep needs at least 2 machines, got %d", c.Machines)
		}
		if c.Backend == "tcp" {
			return c, fmt.Errorf("train: the tcp backend needs at least 2 machines, got %d", c.Machines)
		}
	}
	if c.ElasticSpares < 0 {
		return c, fmt.Errorf("train: negative elastic spares %d", c.ElasticSpares)
	}
	if c.Chaos != nil {
		joins := 0
		for _, ev := range c.Chaos.Events() {
			switch ev.Op {
			case cluster.OpKill, cluster.OpPartition:
				// A killed (or long-partitioned) machine takes tokens
				// with it; only a failover run can restore conservation
				// and finish.
				c.Failover = true
			case cluster.OpJoin:
				c.Failover = true
				joins++
				if ev.Rank >= 0 && ev.Rank < c.Machines {
					return c, fmt.Errorf("train: chaos join rank %d must name a provisioned spare (machines %d)", ev.Rank, c.Machines)
				}
			case cluster.OpDrain:
				c.Failover = true
			}
		}
		if joins > c.ElasticSpares {
			// Every scheduled join needs a provisioned slot to activate.
			c.ElasticSpares = joins
		}
	}
	if c.ElasticSpares > 0 {
		// Spares only make sense on a runtime that can reconfigure
		// ownership mid-run.
		c.Failover = true
	}
	if c.Failover {
		if c.Lockstep || c.Role != "" {
			return c, fmt.Errorf("train: failover is only supported by the asynchronous single-process runners (not lockstep or multi-process)")
		}
		if c.Machines < 3 {
			// Two survivors minimum: the arbiter and the buddy must
			// outlive the victim, and a lone survivor has no peer to
			// circulate tokens with.
			return c, fmt.Errorf("train: failover needs at least 3 machines, got %d", c.Machines)
		}
	}
	if c.Chaos != nil {
		for _, ev := range c.Chaos.Events() {
			// Rank -1 is the "pick for me" shorthand, resolved at fire
			// time against the live membership.
			if ev.Rank < -1 || ev.Rank >= c.TotalMachines() {
				return c, fmt.Errorf("train: chaos victim rank %d out of range for %d machines", ev.Rank, c.TotalMachines())
			}
		}
	}
	return c, nil
}

// stepTableSize tabulates this many step sizes (32 KiB of float64s).
// t counts updates per individual rating — roughly the epoch count —
// so 4096 entries cover any realistic run; later t falls back to the
// exact formula.
const stepTableSize = 4096

// Schedule returns the per-rating SGD step-size schedule of eq. (11),
// precomputed into a sched.Table so the hot path replaces the
// per-update Sqrt with a slice load. With NOMAD_REFERENCE_KERNELS set
// the raw Power schedule is returned instead, alongside the reference
// vecmath kernels (the in-tree A/B switch for benchmarking).
func (c Config) Schedule() sched.Schedule {
	p := sched.Power{Alpha: c.Alpha, Beta: c.Beta}
	if vecmath.ReferenceOnly() {
		return p
	}
	return sched.NewTable(p, stepTableSize)
}

// TotalWorkers returns machines × workers-per-machine.
func (c Config) TotalWorkers() int { return c.Machines * c.Workers }

// TotalMachines returns the provisioned machine-slot count: the initial
// members plus any elastic spares held latent for mid-run joins.
func (c Config) TotalMachines() int { return c.Machines + c.ElasticSpares }

// RequireFloat64 is the guard every solver without a float32 hot path
// places after Normalize: it rejects any non-default precision with an
// error naming the algorithm.
func (c Config) RequireFloat64(algo string) error {
	if c.Precision != factor.Float64 {
		return fmt.Errorf("train: %s does not support %v precision", algo, c.Precision)
	}
	return nil
}

// Result is the outcome of a training run.
type Result struct {
	Algorithm string
	Model     *factor.Model
	Trace     metrics.Trace
	Updates   int64
	Elapsed   time.Duration

	// Network accounting (zero for shared-memory runs).
	BytesSent    int64
	MessagesSent int64

	// Final is the resumable snapshot captured when the run stopped —
	// after completion or cancellation alike. Feed it back through
	// Config.Resume (or serialize it) to continue the run.
	Final *State
}

// Throughput summarizes the run's update rate per worker.
func (r *Result) Throughput(cfg Config) metrics.Throughput {
	return metrics.Throughput{
		Updates: float64(r.Updates),
		Seconds: r.Elapsed.Seconds(),
		Workers: cfg.TotalWorkers(),
	}
}

// StorageRanker is implemented by solvers whose stored model rank
// differs from the configured latent dimension (biassgd stores k+2:
// the factors plus a bias and a pinned-one coordinate). Callers
// validating a resume state against a configured k should consult it;
// solvers that do not implement it store exactly k.
type StorageRanker interface {
	StorageRank(k int) int
}

// StorageRankOf returns the rank algo physically stores for a
// configured latent dimension k.
func StorageRankOf(algo Algorithm, k int) int {
	if sr, ok := algo.(StorageRanker); ok {
		return sr.StorageRank(k)
	}
	return k
}

// Algorithm is a trainable matrix-completion solver.
type Algorithm interface {
	// Name returns the solver's short identifier (e.g. "nomad", "dsgd").
	Name() string
	// Train fits a model to the dataset under the given configuration,
	// reporting progress through hooks (which may be nil). It honours
	// ctx end-to-end: when ctx is cancelled or its deadline passes, the
	// solver stops all workers promptly and returns the partial Result
	// — including its resumable Final state — alongside ctx.Err().
	Train(ctx context.Context, ds *dataset.Dataset, cfg Config, hooks *Hooks) (*Result, error)
}

// Paper Table 1 hyper-parameters, keyed by dataset profile.
var table1 = map[string]Config{
	"netflix-like":  {K: 100, Lambda: 0.05, Alpha: 0.012, Beta: 0.05},
	"yahoo-like":    {K: 100, Lambda: 1.00, Alpha: 0.00075, Beta: 0.01},
	"hugewiki-like": {K: 100, Lambda: 0.01, Alpha: 0.001, Beta: 0},
}

// Table1 returns the paper's Table 1 hyper-parameters for a dataset
// profile name, and whether the profile is known.
func Table1(profile string) (Config, bool) {
	c, ok := table1[profile]
	return c, ok
}

// SynthDefaults returns hyper-parameters tuned for this repository's
// scaled synthetic datasets: the paper's λ ratios are kept, but k is
// reduced to match the synthetic ground-truth rank and the step size is
// raised to suit unit-variance ratings at small scale.
func SynthDefaults(profile string) Config {
	c := Config{K: 16, Alpha: 0.05, Beta: 0.02}
	switch profile {
	case "netflix-like":
		c.Lambda = 0.05
	case "yahoo-like":
		c.Lambda = 0.1
	case "hugewiki-like":
		c.Lambda = 0.01
	default:
		c.Lambda = 0.05
	}
	return c
}

// Counter is a sharded atomic update counter. Workers add locally with
// low contention; readers sum the shards. It is the source of the
// "number of updates" axis in the paper's figures.
type Counter struct {
	shards []paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [7]int64 // avoid false sharing between adjacent shards
}

// NewCounter returns a counter with one shard per worker.
func NewCounter(workers int) *Counter {
	if workers < 1 {
		workers = 1
	}
	return &Counter{shards: make([]paddedInt64, workers)}
}

// NewCounterFor returns a per-worker counter seeded with the resumed
// run's update total (if any), so stop budgets and the trace's update
// axis continue across checkpoint/resume segments.
func NewCounterFor(cfg Config, workers int) *Counter {
	c := NewCounter(workers)
	if cfg.Resume != nil {
		c.shards[0].v.Store(cfg.Resume.Updates)
	}
	return c
}

// StartUpdates returns the update count a run begins at: zero for a
// fresh run, the captured total for a resumed one.
func (c Config) StartUpdates() int64 {
	if c.Resume != nil {
		return c.Resume.Updates
	}
	return 0
}

// EpochsDone converts an update count into completed budget-derived
// epochs (MaxUpdates divided into Epochs sweeps), for numbering
// emitted EpochEvents on resumed runs. It returns 0 when the budget
// does not define an epoch size — Epochs unset, a deadline-only run,
// or an explicit MaxUpdates smaller than the epoch count.
func (c Config) EpochsDone(updates int64) int {
	if c.Epochs <= 0 || c.MaxUpdates >= math.MaxInt64 {
		return 0
	}
	size := c.MaxUpdates / int64(c.Epochs)
	if size <= 0 {
		return 0
	}
	return int(updates / size)
}

// Add adds delta to the given worker's shard.
func (c *Counter) Add(worker int, delta int64) { c.shards[worker].v.Add(delta) }

// Total returns the sum over shards.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Recorder samples the convergence trace of a run: (wall time, update
// count, test RMSE) triples — the axes of every figure in the paper.
//
// For asynchronous algorithms the model is evaluated while workers
// mutate it; those reads are deliberately unlocked. They are
// statistical progress samples, exactly like the paper's monitoring,
// and the final sample is always taken after every worker has stopped,
// so reported end-of-run RMSE values are race-free.
type Recorder struct {
	start time.Time
	test  []sparse.Entry
	trace metrics.Trace
	hooks *Hooks // trace points double as streamed TraceEvents

	// Evaluation thresholds in update counts.
	next  int64
	step  int64
	total int64

	// Time-based sampling for deadline-driven runs.
	every      time.Duration
	lastSample time.Time
}

// NewRecorder returns a recorder that will take about points samples
// over a run of totalUpdates updates, evaluating on the test set. It
// records the model's initial RMSE as the trace's first point, so every
// trace starts at (0s, 0 updates, RMSE of the random init) the way the
// paper's convergence figures do.
func NewRecorder(test []sparse.Entry, totalUpdates int64, points int, md *factor.Model) *Recorder {
	if points < 1 {
		points = 1
	}
	step := totalUpdates / int64(points)
	if step < 1 {
		step = 1
	}
	r := &Recorder{start: time.Now(), test: test, next: step, step: step, total: totalUpdates}
	if md != nil {
		r.trace.Add(0, 0, metrics.RMSE(md, test))
	}
	return r
}

// NewRecorderFor builds a Recorder from a normalized Config: samples
// are spaced over the update budget, or over the wall-clock deadline
// for deadline-driven runs (where the update budget is unbounded).
// Trace points are mirrored to hooks as TraceEvents. For resumed runs
// the first sample is taken at the restored update count and the
// thresholds continue from there; the wall clock restarts at zero.
func NewRecorderFor(cfg Config, test []sparse.Entry, md *factor.Model, hooks *Hooks) *Recorder {
	r := NewRecorder(test, cfg.MaxUpdates, cfg.EvalPoints, nil)
	r.hooks = hooks
	if start := cfg.StartUpdates(); start > 0 {
		for r.next <= start {
			r.next += r.step
		}
		if md != nil {
			r.record(md, start)
		}
	} else if md != nil {
		r.record(md, 0)
	}
	if cfg.Deadline > 0 {
		r.every = cfg.Deadline / time.Duration(cfg.EvalPoints)
		r.lastSample = r.start
	}
	return r
}

// Due reports whether the run has crossed the next sampling threshold,
// in updates or (for deadline-driven runs) in elapsed time.
// Synchronous algorithms call this between epochs; NOMAD's monitor
// goroutine polls it.
func (r *Recorder) Due(updates int64) bool {
	if updates >= r.next {
		return true
	}
	return r.every > 0 && time.Since(r.lastSample) >= r.every
}

// Sample evaluates the model and appends a trace point, advancing the
// next sampling threshold past the given update count.
func (r *Recorder) Sample(md *factor.Model, updates int64) {
	r.record(md, updates)
	for r.next <= updates {
		r.next += r.step
	}
	r.lastSample = time.Now()
}

// record evaluates the model, appends the trace point and mirrors it
// to the hooks as a TraceEvent.
func (r *Recorder) record(md *factor.Model, updates int64) {
	e := TraceEvent{
		Seconds: time.Since(r.start).Seconds(),
		Updates: updates,
		RMSE:    metrics.RMSE(md, r.test),
	}
	r.trace.Add(e.Seconds, e.Updates, e.RMSE)
	r.hooks.EmitTrace(e)
}

// Elapsed returns the wall-clock time since the recorder was created.
func (r *Recorder) Elapsed() time.Duration { return time.Since(r.start) }

// Trace returns the recorded trace.
func (r *Recorder) Trace() metrics.Trace { return r.trace }

// Monitor polls until the run's stop condition (update cap, wall
// deadline, or context cancellation) is met, sampling the convergence
// trace and emitting epoch-boundary events on the way, then raises the
// stop flag and returns — ctx.Err() if the context ended the run, nil
// otherwise. Asynchronous algorithms run their workers concurrently
// with this loop; the model reads used for trace samples are
// deliberately unlocked progress snapshots.
func Monitor(ctx context.Context, stop *atomic.Bool, counter *Counter, cfg Config, rec *Recorder, md *factor.Model, hooks *Hooks) error {
	deadline := time.Time{}
	if cfg.Deadline > 0 {
		deadline = time.Now().Add(cfg.Deadline)
	}
	// Epoch boundaries for event emission: the update budget divided
	// into cfg.Epochs sweeps (resumed runs continue mid-sequence).
	var epochSize int64
	if cfg.Epochs > 0 && cfg.MaxUpdates < math.MaxInt64 {
		epochSize = cfg.MaxUpdates / int64(cfg.Epochs)
	}
	epoch := int64(0)
	if epochSize > 0 {
		epoch = cfg.StartUpdates() / epochSize
	}
	done := ctx.Done()
	for {
		select {
		case <-done:
			stop.Store(true)
			return ctx.Err()
		default:
		}
		total := counter.Total()
		for epochSize > 0 && (epoch+1)*epochSize <= total {
			epoch++
			hooks.EmitEpoch(EpochEvent{Epoch: int(epoch), Updates: total})
		}
		if total >= cfg.MaxUpdates || (!deadline.IsZero() && time.Now().After(deadline)) {
			stop.Store(true)
			return nil
		}
		if rec.Due(total) {
			rec.Sample(md, total)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// StopCheck tells synchronous (epoch-driven) algorithms whether to end
// the run after the current epoch, given the work done so far. Context
// cancellation is a stop condition like any other; the caller
// distinguishes it by checking ctx.Err() once the loop exits.
func StopCheck(ctx context.Context, cfg Config, start time.Time, updates int64) bool {
	if ctx.Err() != nil {
		return true
	}
	if updates >= cfg.MaxUpdates {
		return true
	}
	return cfg.Deadline > 0 && time.Since(start) >= cfg.Deadline
}
