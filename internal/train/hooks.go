package train

// This file defines the observer side of a training run. A run is a
// long-lived asynchronous process (the paper's figures are all traces
// sampled mid-flight), so instead of only returning a post-hoc Trace,
// every solver receives a *Hooks and emits typed events as it goes:
// convergence trace points, epoch boundaries, §3.3 load-balance
// decisions and simulated-network accounting. The facade fans these
// out to subscribers.

// TraceEvent is one convergence sample: the axes of every figure in
// the paper (wall-clock seconds, cumulative updates, test RMSE).
type TraceEvent struct {
	Seconds float64
	Updates int64
	RMSE    float64
}

// EpochEvent marks the completion of (approximately) one sweep over
// the training ratings. Synchronous solvers emit it at their true
// epoch barrier; for asynchronous solvers the monitor emits it when
// the update count crosses an epoch-sized multiple.
type EpochEvent struct {
	Epoch   int // 1-based
	Updates int64
}

// BalanceEvent records one §3.3 dynamic load-balancing decision on the
// distributed token-routing path: machine From chose the least-loaded
// known peer To, whose last gossiped queue length was QueueLen.
// (Shared-memory two-choice routing is per-token and far too hot to
// observe per decision.)
type BalanceEvent struct {
	From, To int
	QueueLen int64
}

// NetworkEvent reports cumulative simulated-network accounting. Zero
// for single-machine runs.
type NetworkEvent struct {
	BytesSent    int64
	MessagesSent int64
}

// PeerEvent reports a cluster peer failure on the real-network
// backend: machine Rank stopped responding (connection broke without
// an orderly end-of-stream, or heartbeats timed out). Without
// failover the run aborts with a typed error after emitting it; with
// failover a PeerRecoveredEvent follows once the survivors have
// re-assigned the dead machine's state and resumed.
type PeerEvent struct {
	Rank   int
	Reason string
}

// PeerRecoveredEvent reports a completed failover: dead machine
// Rank's item tokens were regenerated on its buddy, its user rows
// adopted, and token circulation resumed among the survivors. Recovery
// is the detection→resume latency in seconds.
type PeerRecoveredEvent struct {
	Rank     int
	Recovery float64
}

// ResizeEvent reports a completed elastic-membership change: a
// provisioned spare was activated ("join") or a member left gracefully
// ("drain"). Machines is the active-machine count after the change;
// Seconds is the request→resume reconfiguration latency (token
// rebalancing to a joiner continues on the data plane after resume).
type ResizeEvent struct {
	Kind     string // "join" or "drain"
	Rank     int
	Machines int
	Seconds  float64
}

// Hooks carries the event callbacks a training run reports through.
// A nil *Hooks, or any nil callback, disables that event — solvers
// always emit through the nil-safe Emit helpers. Callbacks are invoked
// from solver-internal goroutines (the monitor, the coordinator, a
// machine's sender) and must not block: a stalled subscriber would
// stall training.
type Hooks struct {
	Trace         func(TraceEvent)
	Epoch         func(EpochEvent)
	Balance       func(BalanceEvent)
	Network       func(NetworkEvent)
	Peer          func(PeerEvent)
	PeerRecovered func(PeerRecoveredEvent)
	Resize        func(ResizeEvent)
}

// EmitResize reports a completed membership change; safe on a nil
// receiver.
func (h *Hooks) EmitResize(e ResizeEvent) {
	if h != nil && h.Resize != nil {
		h.Resize(e)
	}
}

// EmitPeer reports a peer failure; safe on a nil receiver.
func (h *Hooks) EmitPeer(e PeerEvent) {
	if h != nil && h.Peer != nil {
		h.Peer(e)
	}
}

// EmitPeerRecovered reports a completed failover; safe on a nil
// receiver.
func (h *Hooks) EmitPeerRecovered(e PeerRecoveredEvent) {
	if h != nil && h.PeerRecovered != nil {
		h.PeerRecovered(e)
	}
}

// EmitTrace reports a convergence sample; safe on a nil receiver.
func (h *Hooks) EmitTrace(e TraceEvent) {
	if h != nil && h.Trace != nil {
		h.Trace(e)
	}
}

// EmitEpoch reports a completed epoch; safe on a nil receiver.
func (h *Hooks) EmitEpoch(e EpochEvent) {
	if h != nil && h.Epoch != nil {
		h.Epoch(e)
	}
}

// EmitBalance reports a load-balance routing decision; safe on a nil
// receiver.
func (h *Hooks) EmitBalance(e BalanceEvent) {
	if h != nil && h.Balance != nil {
		h.Balance(e)
	}
}

// EmitNetwork reports network accounting; safe on a nil receiver.
func (h *Hooks) EmitNetwork(e NetworkEvent) {
	if h != nil && h.Network != nil {
		h.Network(e)
	}
}
