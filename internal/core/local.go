package core

import (
	"nomad/internal/partition"
	"nomad/internal/sparse"
)

// localRatings is one worker's private, item-grouped view of the
// training ratings: for each item j it stores the ratings Ω̄ⱼ^(q) whose
// users are owned by worker q (§3.1). Alongside each rating it keeps
// the per-(i,j) update count t that drives the step-size schedule of
// eq. (11). All of this state is worker-local by construction — the
// reason NOMAD needs no locks around it.
type localRatings struct {
	colPtr []int32 // n+1 offsets into the arrays below
	users  []int32 // global user index of each rating
	vals   []float64
	counts []int32 // updates applied to this (i,j) so far
}

// itemRatings returns the users, values and per-rating update counts
// of worker-local ratings on item j. Returning the counts window
// directly keeps the hot loop's accesses at a plain counts[x] instead
// of re-deriving base+x offsets into the full array per rating.
func (lr *localRatings) itemRatings(j int) (users []int32, vals []float64, counts []int32) {
	lo, hi := lr.colPtr[j], lr.colPtr[j+1]
	return lr.users[lo:hi], lr.vals[lo:hi], lr.counts[lo:hi]
}

// nnz returns the number of worker-local ratings.
func (lr *localRatings) nnz() int { return len(lr.users) }

// buildLocalRatings splits the training matrix by user owner into one
// item-grouped store per worker. Users' partition `users` has one part
// per worker (p parts). The split is a two-pass counting sort over the
// global CSC view, O(nnz + p·n).
func buildLocalRatings(train *sparse.Matrix, users *partition.Partition) []*localRatings {
	p := users.P()
	n := train.Cols()
	out := make([]*localRatings, p)
	for q := 0; q < p; q++ {
		out[q] = &localRatings{colPtr: make([]int32, n+1)}
	}
	// Pass 1: per-worker, per-item counts.
	for j := 0; j < n; j++ {
		rows, _ := train.Col(j)
		for _, i := range rows {
			out[users.Owner(int(i))].colPtr[j+1]++
		}
	}
	for q := 0; q < p; q++ {
		lr := out[q]
		for j := 0; j < n; j++ {
			lr.colPtr[j+1] += lr.colPtr[j]
		}
		total := lr.colPtr[n]
		lr.users = make([]int32, total)
		lr.vals = make([]float64, total)
		lr.counts = make([]int32, total)
	}
	// Pass 2: fill, using a moving cursor per worker per item.
	cursor := make([][]int32, p)
	for q := 0; q < p; q++ {
		cursor[q] = make([]int32, n)
		copy(cursor[q], out[q].colPtr[:n])
	}
	for j := 0; j < n; j++ {
		rows, pos := train.Col(j)
		for x, i := range rows {
			q := users.Owner(int(i))
			c := cursor[q][j]
			out[q].users[c] = i
			out[q].vals[c] = train.ValAt(pos[x])
			cursor[q][j] = c + 1
		}
	}
	return out
}
