package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
)

// distToken is a nomadic token inside one machine: the traveling
// (j, hⱼ) pair plus the list of local workers it still has to visit
// before leaving over the network (§3.4's intra-machine circulation).
type distToken struct {
	tok    cluster.Token
	visits []int8
}

// tokenPool recycles distTokens between a machine's sender (producer
// of spent tokens) and its receiver (consumer): the sender returns a
// token once Sender.Add has copied its vector into the outbound batch
// arena, and the receiver refills it — vector storage and visit-plan
// backing included — from the next inbound arena, so the steady-state
// receive path allocates nothing. A buffered channel with
// non-blocking operations keeps the exchange safe and cheap from each
// side's single goroutine; an empty pool just allocates, a full one
// just drops.
//
// Under the reference wire path (NOMAD_REFERENCE_WIRE) the pool is
// nil: the legacy Sender retains token vectors until flush, so spent
// tokens must not be reused, and inbound vectors are freshly
// allocated by the legacy decode and travel with the token as before.
type tokenPool struct{ free chan *distToken }

// newTokenPool returns a pool of the given capacity, or nil under the
// reference wire path.
func newTokenPool(capacity int) *tokenPool {
	if cluster.ReferenceWire() {
		return nil
	}
	return &tokenPool{free: make(chan *distToken, capacity)}
}

// fromInbound materializes an inbound wire token as a machine-local
// distToken, copying the k-coordinate vector out of the (recycled)
// batch arena into pooled storage.
func (tp *tokenPool) fromInbound(t cluster.Token, k int) *distToken {
	if tp == nil {
		return &distToken{tok: t} // reference wire: the decoded vector travels
	}
	select {
	case tok := <-tp.free:
		tok.tok.Item = t.Item
		vec := tok.tok.Vec
		if cap(vec) < k {
			vec = make([]float64, k)
		}
		vec = vec[:k]
		copy(vec, t.Vec)
		tok.tok.Vec = vec
		return tok
	default:
		vec := make([]float64, k)
		copy(vec, t.Vec)
		return &distToken{tok: cluster.Token{Item: t.Item, Vec: vec}}
	}
}

// put returns a spent token (vector already copied into a batch
// arena) for reuse. No-op under the reference wire path.
func (tp *tokenPool) put(tok *distToken) {
	if tp == nil {
		return
	}
	select {
	case tp.free <- tok:
	default: // pool full: let the GC have it
	}
}

// machine is one simulated machine of the hybrid architecture: Workers
// compute goroutines plus the dedicated sender and receiver goroutines
// the paper reserves for communication (§3.4).
type machine struct {
	id      int
	workers int
	queues  []queue.Queue[*distToken]
	out     chan *distToken
	pool    *tokenPool // sender→receiver distToken recycling

	// lastKnown[r] is the most recent queue-length gossip received
	// from machine r (§3.3).
	lastKnown []atomic.Int64
}

// queueLen is the machine's total backlog: worker queues plus tokens
// waiting to be sent. This is the value gossiped to peers.
func (mc *machine) queueLen() int {
	n := len(mc.out)
	for _, q := range mc.queues {
		n += q.Len()
	}
	return n
}

// trainDistributed runs NOMAD across cfg.Machines simulated machines
// connected by the configured network profile. Resume restores the
// model, per-rating schedule counts and RNG streams; tokens (folded
// into the model when the previous run tore down) are re-scattered.
func trainDistributed(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	if cfg.QueueKind.Resolve() == queue.KindSPSC {
		return trainDistributedMesh(ctx, ds, cfg, hooks)
	}
	// M counts the initial members; Mtot adds the provisioned elastic
	// spares, which run their communication threads from the start but
	// stay latent (no tokens, gossip-poisoned) until a join round.
	M, W := cfg.Machines, cfg.Workers
	Mtot := cfg.TotalMachines()
	p := Mtot * W
	m, n := ds.Rows(), ds.Cols()
	users := partitionUsers(ds, cfg, p) // global worker id = machine*W + worker
	local := buildLocalRatings(ds.Train, users)
	schedule := cfg.Schedule()
	fo := newFailoverRuntime(cfg, hooks, n)
	links, err := buildLinks(ctx, ds, cfg, hooks, fo.detectFunc())
	if err != nil {
		return nil, err
	}
	var chaos *cluster.ChaosController
	if cfg.Chaos != nil {
		chaos = cluster.NewChaosController(cfg.Chaos)
		chaos.SetSnapshotKind(ctlFoReplToks)
		chaos.OnKill(func(victim int) { fo.killMachine(victim) })
		chaos.OnJoin(func(rank int) {
			if err := fo.requestJoin(rank); err != nil {
				fo.fail(err)
			}
		})
		chaos.OnDrain(func(rank int) {
			if err := fo.requestDrain(rank); err != nil {
				fo.fail(err)
			}
		})
		links = chaos.WrapAll(links)
	}
	root := rng.New(cfg.Seed)

	var md *factor.Model
	workerRNG := make([]*rng.Source, p)
	if st := cfg.Resume; st != nil {
		md = st.Model
		importCounts(ds.Train, users, local, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInitP(m, n, cfg.K, cfg.Seed, cfg.Precision)
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	machines := make([]*machine, Mtot)
	for mcID := 0; mcID < Mtot; mcID++ {
		mc := &machine{
			id:        mcID,
			workers:   W,
			queues:    make([]queue.Queue[*distToken], W),
			out:       make(chan *distToken, 4*cfg.BatchSize),
			pool:      newTokenPool(4 * cfg.BatchSize),
			lastKnown: make([]atomic.Int64, Mtot),
		}
		for w := 0; w < W; w++ {
			mc.queues[w] = queue.New[*distToken](cfg.QueueKind, 2*n/p+4)
		}
		// Latent spares lose every least-loaded comparison until a join
		// activates them (and clears the poison).
		for r := M; r < Mtot; r++ {
			mc.lastKnown[r].Store(poisonedQueueLen)
		}
		machines[mcID] = mc
	}

	// Initial placement: every item token starts at a uniformly random
	// machine with a fresh local visit plan (Algorithm 1 lines 6–10).
	permScratch := make([]int, W)
	for j := 0; j < n; j++ {
		vec := make([]float64, cfg.K)
		md.CopyItemRowTo64(j, vec)
		tok := &distToken{tok: cluster.Token{Item: int32(j), Vec: vec}}
		mc := machines[root.Intn(M)]
		if fo != nil {
			fo.noteOwned(mc.id, int32(j))
		}
		deliverLocal(mc, tok, cfg.Circulate, root, permScratch)
	}

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	var stop atomic.Bool

	// A transport failure (TCP peer down) must end the run even though
	// the update budget can no longer be reached: the receiver that
	// observes it cancels the monitor.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	fo.bind(links, md, local, users, func(victim int) {
		// Poison the gossip tables so every §3.3 least-loaded picker
		// shuns the dead machine from its next decision on.
		for _, mc := range machines {
			mc.lastKnown[victim].Store(poisonedQueueLen)
		}
	}, func(rank int) {
		// A spare just activated: clear the poison so pickers can route
		// to it.
		for _, mc := range machines {
			mc.lastKnown[rank].Store(0)
		}
	}, &stop, cancelRun)
	fo.startAgents()
	if cfg.Elastic != nil && fo != nil {
		cfg.Elastic.Bind(fo.requestJoin, fo.requestDrain)
	}
	if chaos != nil {
		chaos.Arm(links)
	}

	// Compute workers.
	var workerWG sync.WaitGroup
	for mcID := 0; mcID < Mtot; mcID++ {
		for w := 0; w < W; w++ {
			workerWG.Add(1)
			go func(mc *machine, w int) {
				defer workerWG.Done()
				runDistWorker(mc, w, md, local[mc.id*W+w], schedule, cfg, counter, &stop,
					workerRNG[mc.id*W+w], fo)
			}(machines[mcID], w)
		}
	}

	// Sender and receiver threads, one of each per machine. Their RNG
	// streams are split off the root before the goroutines start —
	// Split advances the parent stream and is not safe concurrently.
	var senderWG, receiverWG sync.WaitGroup
	for mcID := 0; mcID < Mtot; mcID++ {
		senderRNG := root.Split(uint64(1000 + mcID))
		receiverRNG := root.Split(uint64(2000 + mcID))
		senderWG.Add(1)
		go func(mc *machine) {
			defer senderWG.Done()
			runSender(mc, links[mc.id], cfg, senderRNG, hooks, fo)
		}(machines[mcID])
		receiverWG.Add(1)
		go func(mc *machine) {
			defer receiverWG.Done()
			runReceiver(mc, links[mc.id], cfg, receiverRNG, fo)
			if links[mc.id].Err() != nil && !fo.machineGone(mc.id) {
				cancelRun()
			}
		}(machines[mcID])
	}

	runErr := train.Monitor(runCtx, &stop, counter, cfg, rec, md, hooks)

	// Orderly teardown: workers → senders (flush + end-of-stream) →
	// receivers (drain until every peer's stream has ended). Each stage
	// drains the previous one so no token is lost. The failover runtime
	// is released first so parked senders and mid-protocol agents never
	// block the stages behind them.
	if chaos != nil {
		chaos.Stop()
	}
	fo.shutdown()
	workerWG.Wait()
	for _, mc := range machines {
		close(mc.out)
	}
	senderWG.Wait()
	receiverWG.Wait()
	for _, l := range links {
		l.Close() //nolint:errcheck // idempotent release
	}
	fo.wait()
	if lerr := fo.liveLinkErr(links); lerr != nil {
		return nil, fmt.Errorf("core: distributed transport failed: %w", lerr)
	}
	if ferr := fo.failErr(); ferr != nil {
		return nil, fmt.Errorf("core: failover failed: %w", ferr)
	}
	if runErr != nil && ctx.Err() == nil {
		runErr = nil // monitor was cancelled by teardown plumbing, not the caller
	}

	// Collect every token still queued and write its vector back into
	// the model, completing the final H state. Token conservation is
	// the ownership invariant: each of the n items must be recovered
	// exactly once — a dead machine's queues are skipped (their tokens
	// were regenerated on the buddy during failover).
	collected := 0
	for _, mc := range machines {
		if fo.machineGone(mc.id) {
			continue
		}
		for _, q := range mc.queues {
			for {
				tok, ok := q.TryPop()
				if !ok {
					break
				}
				md.SetItemRowFrom64(int(tok.tok.Item), tok.tok.Vec)
				collected++
			}
		}
	}
	if collected != n {
		return nil, fmt.Errorf("core: token conservation violated: collected %d tokens for %d items", collected, n)
	}

	rec.Sample(md, counter.Total())
	bytesSent, msgsSent := linkTotals(links)
	hooks.EmitNetwork(train.NetworkEvent{BytesSent: bytesSent, MessagesSent: msgsSent})
	return &train.Result{
		Algorithm:    "nomad",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      counter.Total(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    bytesSent,
		MessagesSent: msgsSent,
		Final: &train.State{
			Algorithm: "nomad",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    exportCounts(ds.Train, users, local),
			RNG:       train.CaptureStreams(root, workerRNG),
			// Queues deliberately nil: tokens were folded back into the
			// model above; a resume re-scatters them.
		},
	}, runErr
}

// planVisits fills tok's visit plan — Circulate full permutations of
// the W local workers, with the first stop consumed into the return
// value — and returns that first worker. scratch is a caller-owned
// permutation buffer of length ≥ W, reused across tokens so the
// receive path allocates nothing per token (beyond growing the token's
// own visit plan once). Both transports' delivery paths share it.
func planVisits(tok *distToken, W, circulate int, r *rng.Source, scratch []int) (first int) {
	if W == 1 && circulate == 1 {
		// Single local worker: the only plan is "visit worker 0 once" —
		// no permutation, no RNG draw.
		tok.visits = tok.visits[:0]
		return 0
	}
	perm := scratch[:W]
	r.Perm(perm)
	visits := tok.visits[:0]
	for c := 0; c < circulate; c++ {
		for _, w := range perm {
			visits = append(visits, int8(w))
		}
	}
	tok.visits = visits[1:]
	return perm[0]
}

// deliverLocal plans a token's visits through mc's workers and
// enqueues it at the first stop.
func deliverLocal(mc *machine, tok *distToken, circulate int, r *rng.Source, scratch []int) {
	mc.queues[planVisits(tok, mc.workers, circulate, r, scratch)].Push(tok)
}

// runDistWorker processes tokens from its own queue: SGD on the local
// ratings of the token's item, then hand-off to the next local worker
// or to the sender thread.
func runDistWorker(mc *machine, w int, md *factor.Model, lr *localRatings,
	schedule sched.Schedule, cfg train.Config, counter *train.Counter,
	stop *atomic.Bool, r *rng.Source, fo *failoverRuntime) {

	gw := mc.id*mc.workers + w // global worker id (counter shard)
	hp := newHotPath(md, schedule, cfg)
	straggler := gw == 0 && cfg.Straggle > 1
	var idle idleBackoff
	var batch int64
	var respSeen uint64
	var extras []*localRatings // fostered shards this worker trains beyond its own
	for !stop.Load() && !fo.machineGone(mc.id) {
		if fo.drainingMachine(mc.id) {
			// Graceful leave: stop training and flush this queue forward to
			// the sender, visit plan cancelled — the drain streams every
			// token to the ring buddy. The idle flag is published only
			// after the hand-off, so the sender's quiesce check cannot see
			// "all idle" while a token is still between queue and channel.
			fo.setDrainIdle(mc.id, w, false)
			if tok, ok := mc.queues[w].TryPop(); ok {
				tok.visits = tok.visits[:0]
				mc.out <- tok
				continue
			}
			fo.setDrainIdle(mc.id, w, true)
			idle.wait()
			continue
		}
		tok, ok := mc.queues[w].TryPop()
		if !ok {
			idle.wait()
			continue
		}
		idle.reset()

		j := int(tok.tok.Item)
		usersJ, vals, counts := lr.itemRatings(j)
		var began time.Time
		if straggler {
			began = time.Now()
		}
		// The vector travels with the token; itemSGDVec updates it and
		// mirrors the result into the model (owner write-back so
		// progress monitoring sees current hⱼ).
		hp.itemSGDVec(j, usersJ, vals, counts, tok.tok.Vec)
		if straggler && len(usersJ) > 0 && !stop.Load() {
			// Straggler stretch, skipped once stop is set (prompt stop).
			time.Sleep(time.Duration(float64(time.Since(began)) * (cfg.Straggle - 1)))
		}
		batch += int64(len(usersJ))
		if fo != nil {
			// The responsibility table may name this worker for shards
			// beyond its own: a latent spare's fostered users, or a dead
			// machine's users remapped here by failover. Train those
			// shards' ratings of item j too.
			if g := fo.respGeneration(); g != respSeen {
				respSeen = g
				extras = fo.extraShards(gw, extras)
			}
			for _, ex := range extras {
				au, av, ac := ex.itemRatings(j)
				if len(au) > 0 {
					hp.itemSGDVec(j, au, av, ac, tok.tok.Vec)
					batch += int64(len(au))
				}
			}
		}
		if batch >= 256 {
			counter.Add(gw, batch)
			batch = 0
			// Worker-side budget check; see runSharedWorker.
			if counter.Total() >= cfg.MaxUpdates {
				stop.Store(true)
			}
		}

		if len(tok.visits) > 0 {
			next := tok.visits[0]
			tok.visits = tok.visits[1:]
			mc.queues[next].Push(tok)
		} else {
			mc.out <- tok
		}
	}
	counter.Add(gw, batch)
	_ = r
}

// runSender drains the machine's outbound channel, batching tokens per
// destination (§3.5) and flushing opportunistically whenever the
// channel runs dry so tokens never linger under low traffic. Each §3.3
// least-loaded routing decision is reported as a BalanceEvent. On exit
// it flushes everything pending and ends the machine's outbound
// stream, so peers' receivers know the drain is complete.
func runSender(mc *machine, link cluster.Link, cfg train.Config, r *rng.Source, hooks *train.Hooks, fo *failoverRuntime) {
	s := cluster.NewSender(link, cfg.BatchSize, mc.queueLen)
	pick := fo.wrapPick(machinePicker(mc.id, link.Machines(), cfg.LoadBalance, mc.lastKnown, r, hooks))
	cmds := fo.sendCmds(mc.id) // nil (never ready) without failover
	add := func(tok *distToken) {
		// A scale-out rebalance takes priority: while this machine owes
		// the latest joiner tokens, route them there instead of picking.
		d := fo.donationDest(mc.id)
		if d < 0 {
			d = pick()
		}
		if fo != nil {
			// The token is leaving this machine: clear its ownership bit
			// before it becomes observable anywhere else.
			fo.noteSent(mc.id, d, tok.tok.Item)
		}
		s.Add(d, tok.tok) // copies the vector into the batch arena
		mc.pool.put(tok)
	}
	// drainAll is the scale-in hand-off: stream every token still on
	// this machine to dest (the ring buddy) — the workers are flushing
	// their queues into mc.out — until the machine is demonstrably
	// empty. The quiesce check reads the stations in token-flow order —
	// worker queues, worker idle flags, then the out channel — so a
	// token in flight downstream of one read is always caught by a
	// later one (tokens only move downstream; no new ones arrive, the
	// peers are parked).
	drainAll := func(dest int) {
		fwd := func(tok *distToken) {
			fo.noteSent(mc.id, dest, tok.tok.Item)
			s.Add(dest, tok.tok)
			mc.pool.put(tok)
		}
		for {
			if fo.isStopping() || fo.dead[mc.id].Load() {
				return // killed or torn down mid-drain: hand over to evict/teardown
			}
			select {
			case tok, ok := <-mc.out:
				if !ok {
					return
				}
				fwd(tok)
			default:
				qn := 0
				for _, q := range mc.queues {
					qn += q.Len()
				}
				if qn == 0 && fo.drainIdleAll(mc.id) && len(mc.out) == 0 {
					return
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	// die winds down a killed machine's sender like a crashed process:
	// nothing pending is flushed (those tokens are exactly what failover
	// regenerates), the outbound stream ends so the simulated courier can
	// retire, and the worker channel keeps draining so workers blocked on
	// a final hand-off are released.
	die := func() {
		link.CloseSend()   //nolint:errcheck // aborted transport: best-effort
		for range mc.out { //nolint:revive // drain until closed
		}
	}
	for {
		if fo.machineGone(mc.id) {
			die()
			return
		}
		select {
		case cmd := <-cmds:
			fo.runSenderCmd(mc.id, cmd, s, pick, drainAll)
		case tok, ok := <-mc.out:
			if !ok {
				if fo.machineGone(mc.id) {
					link.CloseSend() //nolint:errcheck
				} else {
					s.Close() //nolint:errcheck // link failure surfaces via link.Err
				}
				return
			}
			add(tok)
		default:
			// Channel dry: push out partial batches, then block.
			s.FlushAll() //nolint:errcheck
			select {
			case cmd := <-cmds:
				fo.runSenderCmd(mc.id, cmd, s, pick, drainAll)
			case tok, ok := <-mc.out:
				if !ok {
					if fo.machineGone(mc.id) {
						link.CloseSend() //nolint:errcheck
					} else {
						s.Close() //nolint:errcheck
					}
					return
				}
				add(tok)
			}
		}
	}
}

// runReceiver unpacks inbound token batches, records queue-length
// gossip and starts each token's local circulation. Inbound batches
// are arena-backed: each token's vector is copied into a recycled
// distToken and the arena is released back to the link's pool. It
// runs until every peer has ended its stream (or the link fails).
func runReceiver(mc *machine, link cluster.Link, cfg train.Config, r *rng.Source, fo *failoverRuntime) {
	scratch := make([]int, mc.workers)
	deliver := func(t cluster.Token) {
		deliverLocal(mc, mc.pool.fromInbound(t, cfg.K), cfg.Circulate, r, scratch)
	}
	cmds := fo.recvCmds(mc.id) // nil (never ready) without failover
	recv := link.Recv()
	for {
		select {
		case cmd := <-cmds:
			fo.handleRecvCmd(mc.id, cmd, deliver)
		case inb, ok := <-recv:
			if !ok {
				// A late injection racing teardown must still land.
				fo.drainRecvCmds(mc.id, deliver)
				return
			}
			if fo != nil && !fo.acceptBatch(mc.id, inb.From) {
				// Dead self or evicted source: discard, but keep draining —
				// a stalled receive channel wedges the transport.
				if mc.pool != nil {
					inb.Batch.Release()
				}
				continue
			}
			mc.lastKnown[inb.From].Store(int64(inb.Batch.QueueLen))
			if fo != nil {
				// Ownership bits are set before any token can reach a
				// worker queue (and hence the sender, which clears them).
				fo.beforeDeliver(mc.id, inb.Batch.Tokens)
			}
			for _, t := range inb.Batch.Tokens {
				deliver(t)
			}
			if fo != nil {
				fo.afterDeliver(mc.id, inb.From, inb.Batch.Tokens, link)
			}
			if mc.pool != nil {
				// The vectors were copied out above; recycle the arena. The
				// reference wire path retains them, so there the batch must
				// keep its backing storage (Release would corrupt it).
				inb.Batch.Release()
			}
		}
	}
}
