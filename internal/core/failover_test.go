package core

// The failover matrix: a 4-machine asynchronous run survives the
// chaos-injected death of machine 2 — on both link backends and both
// token transports, at several protocol points — and still converges,
// conserving all n item tokens through the remap.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"nomad/internal/cluster"
	"nomad/internal/queue"
	"nomad/internal/train"
)

// failoverConfig is the shared 4-machine failover-enabled run.
func failoverConfig(backend string, kind queue.Kind) train.Config {
	cfg := baseConfig()
	cfg.Machines, cfg.Workers = 4, 2
	cfg.Backend = backend
	cfg.QueueKind = kind
	cfg.Failover = true
	return cfg
}

// runFailover trains with the given chaos spec, capturing the typed
// peer events, and requires the run to finish without error (token
// conservation is checked inside the runner's teardown and would
// surface here).
func runFailover(t *testing.T, cfg train.Config, chaos string) (*train.Result, []train.PeerEvent, []train.PeerRecoveredEvent) {
	t.Helper()
	if chaos != "" {
		spec, err := cluster.ParseChaos(chaos)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chaos = spec
	}
	var downs []train.PeerEvent
	var recovs []train.PeerRecoveredEvent
	hooks := &train.Hooks{
		Peer:          func(e train.PeerEvent) { downs = append(downs, e) },
		PeerRecovered: func(e train.PeerRecoveredEvent) { recovs = append(recovs, e) },
	}
	res, err := New().Train(context.Background(), testData(t), cfg, hooks)
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	return res, downs, recovs
}

// requireRecovered asserts the typed event sequence of one survived
// failure of the given rank: PeerDown then PeerRecovered, with a
// plausible recovery latency.
func requireRecovered(t *testing.T, downs []train.PeerEvent, recovs []train.PeerRecoveredEvent, victim int) {
	t.Helper()
	if len(downs) == 0 {
		t.Fatal("no PeerEvent emitted for the killed machine")
	}
	for _, e := range downs {
		if e.Rank != victim {
			t.Fatalf("PeerEvent blames rank %d, killed %d", e.Rank, victim)
		}
	}
	if len(recovs) != 1 {
		t.Fatalf("want exactly one PeerRecoveredEvent, got %d", len(recovs))
	}
	if recovs[0].Rank != victim {
		t.Fatalf("PeerRecoveredEvent names rank %d, killed %d", recovs[0].Rank, victim)
	}
	if recovs[0].Recovery <= 0 || recovs[0].Recovery > 30 {
		t.Fatalf("implausible recovery latency %v s", recovs[0].Recovery)
	}
}

// TestFailoverChaosMatrix kills machine 2 mid-epoch on every
// (backend × transport) combination and requires the survivors to
// reconfigure, conserve all tokens and converge to within 1e-2 of the
// undisturbed run's final RMSE.
func TestFailoverChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover matrix")
	}
	// The undisturbed reference: same dataset, seed and budget, no
	// failure. Async runs are nondeterministic, but both settle onto the
	// same noise floor.
	base, _, _ := runFailover(t, failoverConfig("sim", queue.KindSPSC), "")
	baseline := base.Trace.Final().RMSE
	for _, backend := range []string{"sim", "tcp"} {
		for _, kind := range []queue.Kind{queue.KindSPSC, queue.KindMutex} {
			t.Run(fmt.Sprintf("%s_%s", backend, kind), func(t *testing.T) {
				res, downs, recovs := runFailover(t, failoverConfig(backend, kind), "kill:rank=2,at=mid-epoch")
				requireRecovered(t, downs, recovs, 2)
				requireConverged(t, res)
				if d := math.Abs(res.Trace.Final().RMSE - baseline); d > 1e-2 {
					t.Errorf("final RMSE %.4f drifted %.4f from undisturbed %.4f (> 1e-2)",
						res.Trace.Final().RMSE, d, baseline)
				}
			})
		}
	}
}

// TestFailoverKillPoints kills machine 2 at the remaining injection
// points — rendezvous (before any circulation) and snapshot (mid
// replication stream) — on both backends.
func TestFailoverKillPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover runs")
	}
	for _, backend := range []string{"sim", "tcp"} {
		for _, at := range []string{"rendezvous", "snapshot"} {
			t.Run(backend+"_"+at, func(t *testing.T) {
				res, downs, recovs := runFailover(t, failoverConfig(backend, queue.KindSPSC),
					"kill:rank=2,at="+at)
				requireRecovered(t, downs, recovs, 2)
				requireConverged(t, res)
			})
		}
	}
}

// TestFailoverPartitionHeals: a partition (stalled victim) is not a
// death — the victim must come back and the run must finish with no
// failover at all.
func TestFailoverPartitionHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover run")
	}
	res, _, recovs := runFailover(t, failoverConfig("sim", queue.KindSPSC),
		"partition:rank=1,at=mid-epoch,window=50ms")
	if len(recovs) != 0 {
		t.Fatalf("a healed partition triggered %d failovers", len(recovs))
	}
	requireConverged(t, res)
}

// TestFailoverDropsReplication: lossy replication (dropped snapshots)
// must not break a subsequent kill-failover — regeneration falls back
// to the model's last owner write-back for unreplicated rows.
func TestFailoverDropsReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover run")
	}
	res, downs, recovs := runFailover(t, failoverConfig("sim", queue.KindSPSC),
		"drop:rank=2,at=snapshot,p=1.0")
	// Dropping frames alone kills nobody.
	_ = res
	if len(downs) != 0 || len(recovs) != 0 {
		t.Fatalf("drop chaos caused peer events: %d down, %d recovered", len(downs), len(recovs))
	}
	requireConverged(t, res)
}

// TestFailoverConfigValidation: the modes failover cannot compose with
// are rejected up front.
func TestFailoverConfigValidation(t *testing.T) {
	ds := testData(t)
	twoMachines := failoverConfig("sim", queue.KindSPSC)
	twoMachines.Machines = 2
	if _, err := twoMachines.Normalize(ds); err == nil {
		t.Error("failover with 2 machines accepted")
	}
	lockstep := failoverConfig("sim", queue.KindSPSC)
	lockstep.Lockstep = true
	if _, err := lockstep.Normalize(ds); err == nil {
		t.Error("failover with lockstep accepted")
	}
	badRank := failoverConfig("sim", queue.KindSPSC)
	spec, err := cluster.ParseChaos("kill:rank=9,at=mid-epoch")
	if err != nil {
		t.Fatal(err)
	}
	badRank.Chaos = spec
	if _, err := badRank.Normalize(ds); err == nil {
		t.Error("chaos rank out of range accepted")
	}
	implied, err := cluster.ParseChaos("kill:rank=1,at=mid-epoch")
	if err != nil {
		t.Fatal(err)
	}
	killNoFo := baseConfig()
	killNoFo.Machines, killNoFo.Workers = 4, 2
	killNoFo.Chaos = implied
	norm, err := killNoFo.Normalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !norm.Failover {
		t.Error("kill chaos did not imply failover")
	}
}
