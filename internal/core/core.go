// Package core implements NOMAD, the paper's primary contribution: a
// non-locking, stochastic, multi-machine, asynchronous, decentralized
// matrix-completion solver.
//
// The design follows §3 of the paper directly:
//
//   - Users are partitioned across workers once; their wᵢ rows never
//     move (§3.1).
//   - Item parameters hⱼ are *nomadic*: each lives in exactly one
//     worker's queue at a time. A worker pops a token (j, hⱼ), runs SGD
//     over its locally stored ratings for item j, then forwards the
//     token to another worker — the owner-computes rule that makes the
//     algorithm lock-free and its updates serializable.
//   - In distributed mode, a machine circulates an incoming token
//     through its local workers in a random permutation before sending
//     it over the (simulated) network (§3.4), accumulating ~100 tokens
//     per message (§3.5).
//   - With LoadBalance enabled, token routing prefers lightly loaded
//     recipients using queue-length gossip carried on every message
//     (§3.3).
//
// Shared-memory runs (Machines == 1) keep hⱼ in the model and pass only
// the item index, since ownership transfer makes data races impossible;
// distributed runs physically move the vector through netsim.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/affinity"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/loss"
	"nomad/internal/partition"
	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// NOMAD is the solver. The zero value is ready to use.
type NOMAD struct{}

// New returns a NOMAD solver.
func New() *NOMAD { return &NOMAD{} }

// Name implements train.Algorithm.
func (*NOMAD) Name() string { return "nomad" }

// Train implements train.Algorithm.
func (*NOMAD) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("nomad", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Role != "" {
		// One machine of a real multi-process cluster (deterministic
		// lockstep rounds over TCP); cfg.Machines is the coordinator's
		// cluster size and is learned at the handshake by workers.
		return trainMultiProcess(ctx, ds, cfg, hooks)
	}
	if cfg.Machines == 1 {
		return trainShared(ctx, ds, cfg, hooks)
	}
	if cfg.Lockstep {
		return trainLockstep(ctx, ds, cfg, hooks)
	}
	return trainDistributed(ctx, ds, cfg, hooks)
}

// sharedToken is the nomadic token of the shared-memory runner: just
// the item index, since hⱼ stays in the model under the ownership
// discipline.
type sharedToken struct {
	item int32
}

// trainShared runs Algorithm 1 with p worker goroutines in one
// process. With cfg.Resume set it restores the checkpointed model,
// per-rating schedule counts, RNG streams and token ownership instead
// of initializing fresh; for a single worker the continuation is
// bit-compatible with an uninterrupted run, because the token order,
// schedule position and stop decision are all deterministic.
func trainShared(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	if cfg.QueueKind.Resolve() == queue.KindSPSC {
		return trainSharedMesh(ctx, ds, cfg, hooks)
	}
	p := cfg.Workers
	m, n := ds.Rows(), ds.Cols()
	users := partitionUsers(ds, cfg, p)
	local := buildLocalRatings(ds.Train, users)
	schedule := cfg.Schedule()
	root := rng.New(cfg.Seed)

	var md *factor.Model
	workerRNG := make([]*rng.Source, p)
	queues := make([]queue.Queue[sharedToken], p)
	for q := 0; q < p; q++ {
		queues[q] = queue.New[sharedToken](cfg.QueueKind, 2*n/p+4)
	}
	if st := cfg.Resume; st != nil {
		md = st.Model
		importCounts(ds.Train, users, local, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, workerRNG)
		if err := restoreQueues(queues, st.Queues, n, root); err != nil {
			return nil, err
		}
	} else {
		md = factor.NewInitP(m, n, cfg.K, cfg.Seed, cfg.Precision)
		// Initial token placement: a random assignment of all n item
		// tokens over the worker queues (Algorithm 1 lines 6–10).
		for j := 0; j < n; j++ {
			queues[root.Intn(p)].Push(sharedToken{item: int32(j)})
		}
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			runSharedWorker(q, md, local[q], queues, schedule, cfg, counter, &stop, workerRNG[q])
		}(q)
	}

	runErr := train.Monitor(ctx, &stop, counter, cfg, rec, md, hooks)
	wg.Wait()

	// Ownership invariant: every item token must be parked in exactly
	// one queue now that all workers have stopped. A mismatch would
	// mean a token was lost or duplicated — i.e. the serializability
	// discipline was broken. The drained tokens, in pop order, are the
	// checkpoint's token-ownership map.
	parked := 0
	parkedQueues := make([][]int32, p)
	for qi, q := range queues {
		for {
			tok, ok := q.TryPop()
			if !ok {
				break
			}
			parkedQueues[qi] = append(parkedQueues[qi], tok.item)
			parked++
		}
	}
	if parked != n {
		return nil, fmt.Errorf("core: token conservation violated: %d tokens for %d items", parked, n)
	}

	rec.Sample(md, counter.Total())
	return &train.Result{
		Algorithm: "nomad",
		Model:     md,
		Trace:     rec.Trace(),
		Updates:   counter.Total(),
		Elapsed:   rec.Elapsed(),
		Final: &train.State{
			Algorithm: "nomad",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    exportCounts(ds.Train, users, local),
			RNG:       train.CaptureStreams(root, workerRNG),
			Queues:    parkedQueues,
		},
	}, runErr
}

// hotPath is the per-run selection every SGD worker loop shares:
// kernels, the devirtualized loss fast-path, the tabulated schedule
// and the batched item-pass kernel — all chosen once per run, never
// per rating. Both the shared-memory and distributed workers build one
// and call itemSGDItem (shared memory: the item row lives in the
// model) or itemSGDVec (distributed: the row travels in the token) per
// token. One hotPath serves one worker goroutine: the float32 scratch
// row is not shared.
type hotPath struct {
	md       *factor.Model
	schedule sched.Schedule
	table    *sched.Table // non-nil when schedule is tabulated
	lossFn   loss.Loss
	fused    bool // square loss: skip Grad dispatch entirely
	steps    []float64
	slow     func(int) float64
	lambda   float64

	// Float64 models.
	wData    []float64
	kern     vecmath.Kernel
	itemPass vecmath.ItemPassFunc

	// Float32 models.
	f32        bool
	wData32    []float32
	kern32     vecmath.Kernel32
	itemPass32 vecmath.ItemPassFunc32
	lambda32   float32
	h32        []float32 // per-worker scratch row for itemSGDVec
}

func newHotPath(md *factor.Model, schedule sched.Schedule, cfg train.Config) hotPath {
	hp := hotPath{
		md:       md,
		schedule: schedule,
		lossFn:   cfg.Loss,
		fused:    loss.UseFused(cfg.Loss),
		lambda:   cfg.Lambda,
	}
	hp.table, _ = schedule.(*sched.Table)
	var batched bool
	if md.Precision() == factor.Float32 {
		hp.f32 = true
		hp.wData32 = md.WData32()
		hp.kern32 = vecmath.KernelFor32(cfg.K)
		hp.lambda32 = float32(cfg.Lambda)
		hp.h32 = make([]float32, cfg.K)
		batched = hp.kern32.ItemPass != nil
	} else {
		hp.wData = md.WData()
		hp.kern = vecmath.KernelFor(cfg.K)
		batched = hp.kern.ItemPass != nil
	}
	// Square loss with a tabulated schedule takes the batched kernel:
	// one call per token covers the item's whole rating list.
	if hp.fused && hp.table != nil && batched {
		if hp.f32 {
			hp.itemPass32 = hp.kern32.ItemPass
		} else {
			hp.itemPass = hp.kern.ItemPass
		}
		hp.steps = hp.table.Steps()
		hp.slow = hp.table.Fallback().Step
	}
	return hp
}

// stepFor returns the schedule step for a rating at per-rating count t.
func (hp *hotPath) stepFor(t int32) float64 {
	if hp.table != nil {
		return hp.table.Step(int(t)) // direct, inlinable lookup
	}
	return hp.schedule.Step(int(t))
}

// itemSGD runs the SGD updates for one item's rating list (hRow is the
// item row, shared across the list). Float64 models only; the
// precision-agnostic entry points are itemSGDItem and itemSGDVec.
func (hp *hotPath) itemSGD(usersJ []int32, vals []float64, counts []int32, hRow []float64) {
	if hp.itemPass != nil {
		hp.itemPass(hp.wData, usersJ, vals, counts, hRow, hp.lambda, hp.steps, hp.slow)
		return
	}
	for x, u := range usersJ {
		t := counts[x]
		counts[x] = t + 1
		step := hp.stepFor(t)
		wRow := hp.md.UserRow(int(u))
		if hp.fused {
			hp.kern.Step(wRow, hRow, vals[x], step, hp.lambda)
		} else {
			g := hp.lossFn.Grad(hp.kern.Dot(wRow, hRow), vals[x])
			hp.kern.Grad(wRow, hRow, g, step, hp.lambda)
		}
	}
}

// itemSGD32 is itemSGD for Float32 models. Ratings, step sizes and loss
// gradients stay float64 — only the factor rows and the arithmetic on
// them narrow (the precision contract of DESIGN.md §9).
func (hp *hotPath) itemSGD32(usersJ []int32, vals []float64, counts []int32, hRow []float32) {
	if hp.itemPass32 != nil {
		hp.itemPass32(hp.wData32, usersJ, vals, counts, hRow, hp.lambda32, hp.steps, hp.slow)
		return
	}
	for x, u := range usersJ {
		t := counts[x]
		counts[x] = t + 1
		step := hp.stepFor(t)
		wRow := hp.md.UserRow32(int(u))
		if hp.fused {
			hp.kern32.Step(wRow, hRow, float32(vals[x]), float32(step), hp.lambda32)
		} else {
			g := hp.lossFn.Grad(float64(hp.kern32.Dot(wRow, hRow)), vals[x])
			hp.kern32.Grad(wRow, hRow, float32(g), float32(step), hp.lambda32)
		}
	}
}

// itemSGDItem processes one token when the item row lives in the model
// (the shared-memory runners' ownership discipline).
func (hp *hotPath) itemSGDItem(j int, usersJ []int32, vals []float64, counts []int32) {
	if hp.f32 {
		hp.itemSGD32(usersJ, vals, counts, hp.md.ItemRow32(j))
		return
	}
	hp.itemSGD(usersJ, vals, counts, hp.md.ItemRow(j))
}

// itemSGDVec processes one token whose item row travels as a float64
// vector (the distributed wire format, whatever the model precision).
// It updates vec in place and mirrors the result into the model's item
// row, which the owner keeps current for monitoring snapshots.
func (hp *hotPath) itemSGDVec(j int, usersJ []int32, vals []float64, counts []int32, vec []float64) {
	if hp.f32 {
		h := hp.h32
		for l, v := range vec {
			h[l] = float32(v)
		}
		hp.itemSGD32(usersJ, vals, counts, h)
		row := hp.md.ItemRow32(j)
		for l, v := range h {
			row[l] = v
			vec[l] = float64(v)
		}
		return
	}
	hp.itemSGD(usersJ, vals, counts, vec)
	copy(hp.md.ItemRow(j), vec)
}

// runSharedWorker is Algorithm 1's per-worker loop.
func runSharedWorker(q int, md *factor.Model, lr *localRatings,
	queues []queue.Queue[sharedToken], schedule sched.Schedule, cfg train.Config,
	counter *train.Counter, stop *atomic.Bool, r *rng.Source) {

	p := len(queues)
	if cfg.PinWorkers {
		affinity.Pin(q)
		defer affinity.Unpin()
	}
	hp := newHotPath(md, schedule, cfg)
	loadBalance := cfg.LoadBalance && p > 1
	straggler := q == 0 && cfg.Straggle > 1
	var idle idleBackoff
	var batch int64 // updates since last counter flush
	for !stop.Load() {
		tok, ok := queues[q].TryPop()
		if !ok {
			// Queue momentarily empty: yield, then back off.
			idle.wait()
			continue
		}
		idle.reset()

		// SGD over this worker's ratings for the item (lines 16–21).
		j := int(tok.item)
		usersJ, vals, counts := lr.itemRatings(j)
		var began time.Time
		if straggler {
			began = time.Now()
		}
		hp.itemSGDItem(j, usersJ, vals, counts)
		if straggler && len(usersJ) > 0 && !stop.Load() {
			// Simulate a slow machine: stretch this token's processing
			// time by the configured factor (§3.3 ablation). Skipped once
			// stop is set so cancellation stays prompt.
			time.Sleep(time.Duration(float64(time.Since(began)) * (cfg.Straggle - 1)))
		}
		batch += int64(len(usersJ))
		if batch >= 256 {
			counter.Add(q, batch)
			batch = 0
			// Worker-side budget check: stops the run at a token
			// boundary as soon as the flushed total crosses the update
			// budget, instead of waiting for the monitor's next poll.
			// For a single worker this makes the stop point — and hence
			// checkpoint/resume — fully deterministic.
			if counter.Total() >= cfg.MaxUpdates {
				stop.Store(true)
			}
		}

		// Forward the token (lines 22–23): uniform by default, or the
		// §3.3 least-loaded choice between two random candidates. With
		// one worker there is nowhere else to go — skip the RNG draw;
		// with load balancing, both candidates come from a single draw.
		dst := 0
		if loadBalance {
			var alt int
			dst, alt = r.Pair(p)
			if queues[alt].Len() < queues[dst].Len() {
				dst = alt
			}
		} else if p > 1 {
			dst = r.Intn(p)
		}
		queues[dst].Push(tok)
	}
	counter.Add(q, batch)
}

// partitionUsers splits users across p workers: equal user counts by
// default, or equal rating counts when cfg.BalanceUsers is set (the
// paper's footnote-1 alternative).
func partitionUsers(ds *dataset.Dataset, cfg train.Config, p int) *partition.Partition {
	if !cfg.BalanceUsers {
		return partition.EqualRanges(ds.Rows(), p)
	}
	weights := make([]int, ds.Rows())
	for i := range weights {
		weights[i] = ds.Train.RowDegree(i)
	}
	return partition.EqualWeight(weights, p)
}
