package core

// Backend selection for distributed runs: the token runners are
// written against cluster.Link, and this file decides which transport
// stands behind it — the modelled in-process network (netsim) or real
// TCP sockets (netlink), as a loopback mesh in this process or a true
// multi-process cluster.

import (
	"context"
	"fmt"
	"hash/fnv"

	"nomad/internal/cluster"
	"nomad/internal/dataset"
	"nomad/internal/netlink"
	"nomad/internal/train"
)

// configDigest fingerprints everything two processes must agree on
// before training together: dataset shape, seed, hyper-parameters and
// the stop budget. The rendezvous refuses a worker whose digest
// differs from the coordinator's.
func configDigest(ds *dataset.Dataset, cfg train.Config) uint64 {
	lossName := "square"
	if cfg.Loss != nil {
		lossName = cfg.Loss.Name()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "nomad|seed=%d|k=%d|lambda=%g|alpha=%g|beta=%g|workers=%d|batch=%d|maxupdates=%d|epochs=%d|m=%d|n=%d|nnz=%d|balance=%t|circulate=%d|lockstep=%t|loss=%s",
		cfg.Seed, cfg.K, cfg.Lambda, cfg.Alpha, cfg.Beta, cfg.Workers, cfg.BatchSize,
		cfg.MaxUpdates, cfg.Epochs, ds.Rows(), ds.Cols(), ds.Train.NNZ(),
		cfg.BalanceUsers, cfg.Circulate, cfg.Lockstep, lossName)
	return h.Sum64()
}

// netlinkOptions builds the TCP link options for a run, wiring peer
// failures into the typed event stream. onPeerDown, when non-nil,
// overrides the default whole-run reporting — the failover runtime
// installs its detection entry point there and enables per-peer
// eviction on the links.
func netlinkOptions(cfg train.Config, hooks *train.Hooks, onPeerDown func(self, rank int, err error)) netlink.Options {
	opts := netlink.Options{
		K:                 cfg.K,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		Failover:          cfg.Failover,
		OnPeerDown:        onPeerDown,
	}
	if opts.OnPeerDown == nil {
		opts.OnPeerDown = func(self, rank int, err error) {
			hooks.EmitPeer(train.PeerEvent{Rank: rank, Reason: err.Error()})
		}
	}
	return opts
}

// buildLinks returns one Link per machine for a single-process
// distributed run: netsim endpoints for the sim backend, or a real TCP
// loopback mesh (full rendezvous, wire protocol and failure detection
// on 127.0.0.1) for the tcp backend. onPeerDown is the failover
// detection sink (nil without failover).
func buildLinks(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks, onPeerDown func(self, rank int, err error)) ([]cluster.Link, error) {
	switch cfg.Backend {
	case "", "sim":
		// Elastic spares are provisioned up front: the mesh is built for
		// every slot that could ever join, latent ranks included.
		return cluster.NewSimCluster(cfg.TotalMachines(), cfg.Profile, cfg.K).Links(), nil
	case "tcp":
		return netlink.Loopback(ctx, cfg.TotalMachines(), configDigest(ds, cfg), nil, nil, netlinkOptions(cfg, hooks, onPeerDown))
	}
	return nil, fmt.Errorf("core: unknown distributed backend %q (sim, tcp)", cfg.Backend)
}

// linkTotals sums send-side accounting over a run's endpoints.
func linkTotals(links []cluster.Link) (bytes, msgs int64) {
	for _, l := range links {
		st := l.Stats()
		bytes += st.BytesSent
		msgs += st.MessagesSent
	}
	return bytes, msgs
}

// firstLinkErr reports the first transport failure among the run's
// endpoints, if any.
func firstLinkErr(links []cluster.Link) error {
	for _, l := range links {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}
