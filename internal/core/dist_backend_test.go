package core

// The (sim | tcp) × (transport) backend matrix over the asynchronous
// distributed runners, the bitwise parity guarantees of the lockstep
// runner, and the failure semantics of the real-network backend.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/netlink"
	"nomad/internal/queue"
	"nomad/internal/train"
)

// TestDistributedBackendMatrix runs every async distributed runner
// (the batched SPSC mesh and the legacy mutex transport) over both
// link backends: the simulated network and a real TCP loopback mesh
// speaking the netlink wire protocol.
func TestDistributedBackendMatrix(t *testing.T) {
	ds := testData(t)
	for _, backend := range []string{"sim", "tcp"} {
		for _, kind := range []queue.Kind{queue.KindSPSC, queue.KindMutex} {
			t.Run(fmt.Sprintf("%s_%s", backend, kind), func(t *testing.T) {
				cfg := baseConfig()
				cfg.Machines, cfg.Workers = 3, 2
				cfg.Backend = backend
				cfg.QueueKind = kind
				res := runNomad(t, ds, cfg)
				requireConverged(t, res)
				if res.MessagesSent == 0 || res.BytesSent == 0 {
					t.Fatalf("no network accounting: %d msgs, %d bytes", res.MessagesSent, res.BytesSent)
				}
			})
		}
	}
}

// modelsEqual compares two models bitwise.
func modelsEqual(t *testing.T, a, b *train.Result) {
	t.Helper()
	if a.Model.M != b.Model.M || a.Model.N != b.Model.N || a.Model.K != b.Model.K {
		t.Fatalf("shape mismatch: %d×%d×%d vs %d×%d×%d",
			a.Model.M, a.Model.N, a.Model.K, b.Model.M, b.Model.N, b.Model.K)
	}
	aw, bw := a.Model.WData(), b.Model.WData()
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("W diverges at %d: %v vs %v", i, aw[i], bw[i])
		}
	}
	ah, bh := a.Model.HData(), b.Model.HData()
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("H diverges at %d: %v vs %v", i, ah[i], bh[i])
		}
	}
}

func lockstepConfig() train.Config {
	cfg := baseConfig()
	cfg.Machines, cfg.Workers = 3, 2
	cfg.Lockstep = true
	cfg.Epochs = 4
	return cfg
}

// TestSingleMachineRejectsDistModes: explicitly requested lockstep or
// tcp with one machine must error, not silently fall back to the
// nondeterministic shared-memory path.
func TestSingleMachineRejectsDistModes(t *testing.T) {
	ds := testData(t)
	lk := baseConfig()
	lk.Lockstep = true
	if _, err := New().Train(context.Background(), ds, lk, nil); err == nil {
		t.Error("lockstep with 1 machine accepted")
	}
	tc := baseConfig()
	tc.Backend = "tcp"
	if _, err := New().Train(context.Background(), ds, tc, nil); err == nil {
		t.Error("tcp backend with 1 machine accepted")
	}
}

func TestLockstepConverges(t *testing.T) {
	ds := testData(t)
	res := runNomad(t, ds, lockstepConfig())
	requireConverged(t, res)
	if res.Updates < res.Trace.Points[0].Updates {
		t.Fatalf("updates went backwards")
	}
}

// TestLockstepDeterministicRerun: the whole point of the mode — two
// runs of the same configuration produce bitwise-identical models.
func TestLockstepDeterministicRerun(t *testing.T) {
	ds := testData(t)
	a := runNomad(t, ds, lockstepConfig())
	b := runNomad(t, ds, lockstepConfig())
	modelsEqual(t, a, b)
	if a.Updates != b.Updates {
		t.Fatalf("updates differ: %d vs %d", a.Updates, b.Updates)
	}
}

// TestLockstepBackendParity: the simulated network and a real TCP
// loopback mesh produce bitwise-identical models — the single-process
// side of the cross-backend guarantee the CI distributed job asserts
// against real processes.
func TestLockstepBackendParity(t *testing.T) {
	ds := testData(t)
	sim := lockstepConfig()
	sim.Backend = "sim"
	tcp := lockstepConfig()
	tcp.Backend = "tcp"
	a := runNomad(t, ds, sim)
	b := runNomad(t, ds, tcp)
	modelsEqual(t, a, b)
	if a.Updates != b.Updates {
		t.Fatalf("updates differ: %d vs %d", a.Updates, b.Updates)
	}
	if a.Trace.Final().RMSE != b.Trace.Final().RMSE {
		t.Fatalf("final RMSE differs: %v vs %v", a.Trace.Final().RMSE, b.Trace.Final().RMSE)
	}
}

// TestLockstepResumeBackendParity: a checkpoint taken from a sim
// lockstep run continues identically over sim and over TCP — the
// "checkpoint/resume across process boundaries" guarantee, in its
// single-process form.
func TestLockstepResumeBackendParity(t *testing.T) {
	ds := testData(t)
	first := lockstepConfig()
	first.Epochs = 0
	first.MaxUpdates = int64(ds.Train.NNZ()) // ~1 epoch, stops at a round boundary
	head := runNomad(t, ds, first)
	if head.Final == nil {
		t.Fatal("lockstep coordinator produced no resumable state")
	}
	// Serialize/deserialize so the continuation uses exactly what a
	// checkpoint file would carry.
	var buf bytes.Buffer
	if err := head.Final.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	restore := func() *train.State {
		st, err := train.ReadState(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cont := lockstepConfig()
	cont.Epochs = 0
	cont.MaxUpdates = 3 * int64(ds.Train.NNZ())
	simCfg := cont
	simCfg.Backend = "sim"
	simCfg.Resume = restore()
	tcpCfg := cont
	tcpCfg.Backend = "tcp"
	tcpCfg.Resume = restore()
	a := runNomad(t, ds, simCfg)
	b := runNomad(t, ds, tcpCfg)
	modelsEqual(t, a, b)
	if a.Updates != b.Updates {
		t.Fatalf("updates differ: %d vs %d", a.Updates, b.Updates)
	}
	if a.Updates <= head.Updates {
		t.Fatalf("continuation did not progress: %d after %d", a.Updates, head.Updates)
	}
}

// freePort reserves an ephemeral port for a coordinator listen
// address. (The tiny close-then-reuse window is fine in tests.)
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestMultiProcessLockstepParity drives the real multi-process entry
// points (Role = coordinator/worker, rendezvous and all) in-process
// and requires bitwise parity with the single-process runner.
func TestMultiProcessLockstepParity(t *testing.T) {
	ds := testData(t)
	single := runNomad(t, ds, lockstepConfig())

	addr := freePort(t)
	const M = 3
	results := make([]*train.Result, M)
	errs := make([]error, M)
	var wg sync.WaitGroup
	for r := 0; r < M; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := lockstepConfig()
			if r == 0 {
				cfg.Role, cfg.Listen = "coordinator", addr
			} else {
				cfg.Role, cfg.Listen, cfg.Join = "worker", "127.0.0.1:0", addr
			}
			results[r], errs[r] = New().Train(context.Background(), ds, cfg, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	modelsEqual(t, single, results[0])
	if single.Updates != results[0].Updates {
		t.Fatalf("updates differ: %d vs %d", single.Updates, results[0].Updates)
	}
	// Workers return their partial model and no resumable state.
	for r := 1; r < M; r++ {
		if results[r].Final != nil {
			t.Fatalf("worker %d returned resumable state", r)
		}
		if results[r].Updates != results[0].Updates {
			t.Fatalf("worker %d sees %d global updates, coordinator %d", r, results[r].Updates, results[0].Updates)
		}
	}
}

// TestMultiProcessWorkerKillAborts kills one cluster member mid-epoch
// — abrupt connection loss, no orderly EOF, exactly what a crashed
// process looks like — and requires the surviving coordinator to (a)
// emit the typed peer-failure event and (b) return a typed error from
// Train.
func TestMultiProcessWorkerKillAborts(t *testing.T) {
	ds := testData(t)
	addr := freePort(t)
	const M = 3 // coordinator + 1 honest worker + 1 saboteur

	mkCfg := func(role string) train.Config {
		cfg := lockstepConfig()
		cfg.Epochs = 50 // long enough that the kill lands mid-run
		if role == "coordinator" {
			cfg.Role, cfg.Listen = "coordinator", addr
		} else {
			cfg.Role, cfg.Listen, cfg.Join = "worker", "127.0.0.1:0", addr
		}
		return cfg
	}

	peerEvents := make(chan train.PeerEvent, 8)
	hooks := &train.Hooks{Peer: func(e train.PeerEvent) {
		select {
		case peerEvents <- e:
		default:
		}
	}}

	var wg sync.WaitGroup
	var coordErr, workerErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, coordErr = New().Train(context.Background(), ds, mkCfg("coordinator"), hooks)
	}()
	go func() {
		defer wg.Done()
		_, workerErr = New().Train(context.Background(), ds, mkCfg("worker"), nil)
	}()

	// The saboteur joins like a real worker (same digest), plays two
	// rounds by the book, then dies without a goodbye.
	wcfg, err := mkCfg("worker").Normalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	digest := configDigest(ds, wcfg)
	link, _, err := netlink.Join(context.Background(), addr, "127.0.0.1:0", digest, netlink.Options{K: wcfg.K})
	if err != nil {
		t.Fatalf("saboteur join: %v", err)
	}
	coll := newLockCollector(link)
	for round := uint32(0); round < 2; round++ {
		end := make([]byte, 12)
		end[0] = byte(round)
		if err := link.SendCtl(-1, ctlRoundEnd, end); err != nil {
			t.Fatalf("saboteur round end: %v", err)
		}
		if _, _, err := coll.collectRound(round); err != nil {
			t.Fatalf("saboteur collect: %v", err)
		}
		if _, err := coll.awaitDirective(round); err != nil {
			t.Fatalf("saboteur directive: %v", err)
		}
	}
	link.Abort()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster did not abort after the kill")
	}

	var pd *cluster.PeerDownError
	if !errors.As(coordErr, &pd) {
		t.Fatalf("coordinator err = %v, want *cluster.PeerDownError", coordErr)
	}
	if workerErr == nil {
		t.Fatal("honest worker did not observe the failure")
	}
	select {
	case e := <-peerEvents:
		if e.Rank == 0 {
			t.Fatalf("peer event blames the coordinator: %+v", e)
		}
	default:
		t.Fatal("no PeerEvent emitted")
	}
}
