package core

// The per-machine protocol agent: one goroutine per provisioned rank,
// driven by its ctl channel and notify mailbox, running the
// evict/join/drain round state machine described in failover.go.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/netlink"
	"nomad/internal/partition"
)

// startAgents launches one protocol agent per provisioned machine;
// latent spares participate fully (their fences are trivially
// satisfied and their reports are empty bitmaps).
func (fo *failoverRuntime) startAgents() {
	if fo == nil {
		return
	}
	for i := 0; i < fo.M; i++ {
		fo.agentWG.Add(1)
		go fo.runAgent(i)
	}
}

// foAgent is one machine's protocol state machine. All fields are
// agent-goroutine-owned.
type foAgent struct {
	fo   *failoverRuntime
	i    int
	link cluster.Link

	phase      int
	round      int
	subject    int    // the rank this round is about (victim/joiner/leaver)
	roundEpoch uint64 // the epoch the current round was sealed under

	senderAcked  bool
	drainCmdSent bool
	regenSent    bool
	fenceStart   time.Time

	suspected map[int]bool
	done      map[int]bool
	pending   []foEvent // faults/requests arriving mid-round, replayed after resume

	// fences is keyed by round epoch because fence frames can arrive
	// before the local round start (there is no cross-sender FIFO):
	// they are buffered under their epoch and found when the round
	// begins. Each round deletes its key at resume.
	fences map[uint64]map[int]int64

	reports    map[int][]uint64 // arbiter: rank → ownership bitmap
	lastReport []uint64         // own last snapshot, resent on arbiter succession
	replicas   map[int]*replicaStore
}

func (fo *failoverRuntime) runAgent(i int) {
	defer fo.agentWG.Done()
	a := &foAgent{
		fo: fo, i: i, link: fo.links[i],
		subject:   -1,
		suspected: map[int]bool{},
		done:      map[int]bool{},
		fences:    map[uint64]map[int]int64{},
		reports:   map[int][]uint64{},
		replicas:  map[int]*replicaStore{},
	}
	notify := fo.m[i].notify
	ctl := a.link.Ctl()
	var tick *time.Ticker
	var tickC <-chan time.Time
	stopTick := func() {
		if tick != nil {
			tick.Stop()
			tick, tickC = nil, nil
		}
	}
	defer stopTick()
	for {
		select {
		case ev := <-notify:
			a.handleEvent(ev)
		case ct, ok := <-ctl:
			if !ok {
				return
			}
			a.handleCtl(ct)
		case <-tickC:
			a.checkFences()
		case <-fo.stopping:
			// Abandon the protocol but keep the ctl channel draining: a
			// blocked channel would wedge the transport (the netsim
			// courier and the TCP readers both block on it) and deadlock
			// the teardown this shutdown is part of.
			for range ctl { //nolint:revive // drain until closed
			}
			return
		}
		if a.phase == foFencing && tickC == nil {
			tick = time.NewTicker(foFencePoll)
			tickC = tick.C
		} else if a.phase != foFencing {
			stopTick()
		}
	}
}

// beginRound enters a reconfiguration round: senders will park, the
// fence clock starts, replication pauses.
func (a *foAgent) beginRound(round, subject int, ep uint64) {
	a.round, a.subject = round, subject
	a.phase = foFencing
	a.fenceStart = time.Now()
	a.senderAcked = false
	a.drainCmdSent = false
	a.regenSent = false
	a.roundEpoch = ep
	a.reports = map[int][]uint64{}
	a.lastReport = nil
	a.fo.paused.Store(true)
}

// queuePending defers an event that cannot start while a round is in
// flight; replayed in order after resume.
func (a *foAgent) queuePending(ev foEvent) {
	for _, p := range a.pending {
		if p.kind == ev.kind && p.victim == ev.victim {
			return
		}
	}
	a.pending = append(a.pending, ev)
}

func (a *foAgent) handleEvent(ev foEvent) {
	fo := a.fo
	if fo.gone(a.i) {
		return
	}
	switch ev.kind {
	case evDetect:
		v := ev.victim
		if a.done[v] {
			return
		}
		if a.phase != foIdle {
			if a.round == roundEvict && v == a.subject {
				return
			}
			a.queuePending(ev)
			a.resendRoundState()
			return
		}
		if a.suspected[v] {
			return
		}
		a.suspected[v] = true
		if arb := fo.arbiter(); arb == a.i {
			a.onSuspect(v)
		} else {
			a.link.SendCtl(arb, ctlFoSuspect, foSeal(fo.epoch.Load(), foEncodeVictim(v))) //nolint:errcheck // loss → fence timeout → typed abort
		}
	case evFenced:
		if a.phase != foFencing {
			return
		}
		a.senderAcked = true
		// The sender is parked and flushed: the per-peer counts are
		// final. Announce them so every peer can quiesce.
		for p := 0; p < fo.M; p++ {
			if p == a.i || fo.gone(p) {
				continue
			}
			a.link.SendCtl(p, ctlFoFence, foSeal(a.roundEpoch, foEncodeFence(a.subject, fo.sent[a.i][p].Load()))) //nolint:errcheck
		}
		a.checkFences()
	case evJoin, evDrain:
		if ev.ep != 0 {
			// Re-queued broadcast: re-enter the round under its
			// original epoch, do not re-initiate.
			if ev.kind == evJoin {
				a.onJoinStart(ev.victim, ev.ep)
			} else {
				a.onDrainStart(ev.victim, ev.ep)
			}
			return
		}
		if a.phase != foIdle {
			a.queuePending(ev)
			return
		}
		ep := fo.epoch.Add(1)
		kind := uint8(ctlFoJoin)
		if ev.kind == evDrain {
			kind = ctlFoDrain
		}
		a.link.SendCtl(-1, kind, foSeal(ep, foEncodeVictim(ev.victim))) //nolint:errcheck
		if ev.kind == evJoin {
			a.onJoinStart(ev.victim, ep)
		} else {
			a.onDrainStart(ev.victim, ep)
		}
	}
}

// resendRoundState re-aims round artifacts at the recomputed arbiter:
// when the arbiter dies mid-round, the successor needs the reports
// (and the buddy's regen-done) the dead arbiter may have taken with
// it. Idempotent — receivers treat duplicates as map overwrites.
func (a *foAgent) resendRoundState() {
	if a.phase != foAwaitResume {
		return
	}
	fo := a.fo
	arb := fo.arbiter()
	if a.lastReport != nil {
		if arb == a.i {
			a.onReport(a.i, a.lastReport)
		} else {
			a.link.SendCtl(arb, ctlFoReport, foSeal(a.roundEpoch, foEncodeReport(a.subject, a.lastReport))) //nolint:errcheck
		}
	}
	if a.regenSent && arb != a.i {
		a.link.SendCtl(arb, ctlFoRegenDone, foSeal(a.roundEpoch, foEncodeVictim(a.subject))) //nolint:errcheck
	}
}

func (a *foAgent) handleCtl(ct cluster.Ctl) {
	fo := a.fo
	if ct.Kind < ctlFoSuspect || ct.Kind > ctlFoDrain {
		return
	}
	ep, rest, ok := foOpen(ct.Payload)
	if !ok {
		return
	}
	if fo.gone(a.i) {
		// A dead machine drains and ignores; a drained (parted) machine
		// still honours its own round's resume so its parked sender can
		// unpark and close before teardown.
		if ct.Kind == ctlFoResume {
			if v, ok := foDecodeVictim(rest); ok && v == a.i {
				a.onResume(v)
			}
		}
		return
	}
	if ct.From >= 0 && ct.From < fo.M && fo.gone(ct.From) && ct.Kind != ctlFoResume {
		return // stale frame from a member that already left
	}
	if ep < fo.epoch.Load() && ct.Kind != ctlFoSuspect && ct.Kind != ctlFoResume {
		return // a finished round's frame
	}
	switch ct.Kind {
	case ctlFoSuspect:
		if v, ok := foDecodeVictim(rest); ok && a.i == fo.arbiter() {
			a.onSuspect(v)
		}
	case ctlFoEvict:
		if v, ok := foDecodeVictim(rest); ok {
			a.onEvict(v, "evicted by arbiter", ep)
		}
	case ctlFoJoin:
		if v, ok := foDecodeVictim(rest); ok {
			a.onJoinStart(v, ep)
		}
	case ctlFoDrain:
		if v, ok := foDecodeVictim(rest); ok {
			a.onDrainStart(v, ep)
		}
	case ctlFoFence:
		if _, count, ok := foDecodeFence(rest); ok {
			fs := a.fences[ep]
			if fs == nil {
				fs = map[int]int64{}
				a.fences[ep] = fs
			}
			fs[ct.From] = count
			a.checkFences()
		}
	case ctlFoReport:
		if _, bm, ok := foDecodeReport(rest); ok {
			a.onReport(ct.From, bm)
		}
	case ctlFoRemap:
		if v, items, ok := foDecodeRemap(rest); ok && v == a.subject && a.phase != foIdle {
			a.onRemap(items)
		}
	case ctlFoRegenDone:
		if _, ok := foDecodeVictim(rest); ok && a.i == fo.arbiter() {
			a.onRegenDone()
		}
	case ctlFoResume:
		if v, ok := foDecodeVictim(rest); ok {
			a.onResume(v)
		}
	case ctlFoReplToks:
		if b, err := netlink.DecodeTokenBatch(rest, fo.K); err == nil {
			rs := a.replica(ct.From)
			for _, t := range b.Tokens {
				rs.items[t.Item] = t.Vec // freshly allocated by the decode
			}
		}
	case ctlFoReplRows:
		a.storeReplRows(ct.From, rest)
	}
}

// onSuspect (arbiter only): start an eviction round — bump the epoch,
// broadcast, enter locally.
func (a *foAgent) onSuspect(v int) {
	fo := a.fo
	if a.done[v] {
		return
	}
	if a.phase != foIdle {
		if !(a.round == roundEvict && v == a.subject) {
			a.queuePending(foEvent{kind: evDetect, victim: v, cause: "suspected by peer"})
		}
		return
	}
	a.suspected[v] = true
	ep := fo.epoch.Add(1)
	a.link.SendCtl(-1, ctlFoEvict, foSeal(ep, foEncodeVictim(v))) //nolint:errcheck // dead peers are skipped/harmless
	a.onEvict(v, "evicted by arbiter", ep)
}

// onEvict starts this machine's part of an eviction round: receiver
// stops accepting the victim, sender redirects + parks, fencing begins.
func (a *foAgent) onEvict(v int, cause string, ep uint64) {
	fo := a.fo
	if a.done[v] || v < 0 || v >= fo.M {
		return
	}
	fo.noteDeath(v, cause) // machines that never detected locally learn here
	if a.phase != foIdle {
		if a.round == roundEvict && v == a.subject {
			return
		}
		a.queuePending(foEvent{kind: evDetect, victim: v, cause: cause})
		return
	}
	a.suspected[v] = true
	a.beginRound(roundEvict, v, ep)
	if !a.sendRecvCmd(foRecvCmd{kind: recvMarkDead, victim: v}) {
		return
	}
	a.sendSendCmd(foSendCmd{kind: sendEvict, victim: v})
}

// onJoinStart enters a scale-out round: every sender (the joiner's
// latent one included) flushes and parks so the cluster can account
// for its tokens before the working set grows.
func (a *foAgent) onJoinStart(v int, ep uint64) {
	fo := a.fo
	if v < 0 || v >= fo.M || fo.active[v].Load() || fo.gone(v) {
		return
	}
	if a.phase != foIdle {
		a.queuePending(foEvent{kind: evJoin, victim: v, ep: ep})
		return
	}
	a.beginRound(roundJoin, v, ep)
	a.sendSendCmd(foSendCmd{kind: sendPark})
}

// onDrainStart enters a scale-in round. The leaver does not park: its
// workers switch to flush-forward (drainTarget), and once every peer's
// fence is satisfied its sender streams the remaining tokens to the
// ring buddy (sendDrain, issued by checkFences).
func (a *foAgent) onDrainStart(v int, ep uint64) {
	fo := a.fo
	if v < 0 || v >= fo.M || fo.gone(v) || !fo.active[v].Load() {
		return
	}
	if a.phase != foIdle {
		a.queuePending(foEvent{kind: evDrain, victim: v, ep: ep})
		return
	}
	a.beginRound(roundDrain, v, ep)
	if a.i == v {
		fo.drainTarget.Store(int64(v))
	} else {
		a.sendSendCmd(foSendCmd{kind: sendPark})
	}
}

// pumpRetry nudges the receiver to re-attempt pending SPSC deliveries
// (mesh): during a drain there may be no inbound traffic left to
// trigger the retry organically.
func (a *foAgent) pumpRetry() {
	select {
	case a.fo.m[a.i].recvCmd <- foRecvCmd{kind: recvRetry}:
	default:
	}
}

// checkFences advances from fencing to reporting once the network is
// quiescent from this machine's point of view: its own sender is
// parked, and every present peer's announced send count has been
// matched by the local receive counter (nothing in flight toward us).
// The drain leaver additionally orders its own flush-forward after all
// inbound has landed, so no token can arrive behind its back.
func (a *foAgent) checkFences() {
	fo := a.fo
	if a.phase != foFencing {
		return
	}
	peersOK := true
	fs := a.fences[a.roundEpoch]
	for p := 0; p < fo.M; p++ {
		if p == a.i || fo.gone(p) {
			continue
		}
		c, ok := fs[p]
		if !ok || fo.rcvd[a.i][p].Load() < c {
			peersOK = false
			break
		}
	}
	if a.round == roundDrain && a.subject == a.i {
		if peersOK && !a.drainCmdSent {
			a.drainCmdSent = true
			a.sendSendCmd(foSendCmd{kind: sendDrain, victim: a.subject})
		}
		if !a.senderAcked {
			a.pumpRetry()
		}
	}
	if !(a.senderAcked && peersOK) {
		if time.Since(a.fenceStart) > foFenceTimeout {
			fo.fail(fmt.Errorf("core: failover fence timed out after %v on machine %d", foFenceTimeout, a.i))
		}
		return
	}
	// Quiesced: the ownership bitmap is stable. Snapshot it through the
	// receiver (FIFO after markDead) and report to the arbiter.
	reply := make(chan []uint64, 1)
	if !a.sendRecvCmd(foRecvCmd{kind: recvSnapshot, reply: reply}) {
		return
	}
	var bm []uint64
	select {
	case bm = <-reply:
	case <-fo.stopping:
		return
	}
	a.phase = foAwaitResume
	a.lastReport = bm
	if arb := fo.arbiter(); arb == a.i {
		a.onReport(a.i, bm)
	} else {
		a.link.SendCtl(arb, ctlFoReport, foSeal(a.roundEpoch, foEncodeReport(a.subject, bm))) //nolint:errcheck
	}
}

// onReport (arbiter or successor): once every present machine has
// reported, union the bitmaps — a duplicate is a conservation
// violation — and commit the round.
func (a *foAgent) onReport(from int, bm []uint64) {
	fo := a.fo
	if a.phase == foIdle {
		return // stale report from a finished round
	}
	a.reports[from] = bm
	need, got := 0, 0
	for r := 0; r < fo.M; r++ {
		if fo.gone(r) {
			continue
		}
		need++
		if a.reports[r] != nil {
			got++
		}
	}
	if got < need {
		return
	}
	words := (fo.n + 63) / 64
	union := make([]uint64, words)
	for r := 0; r < fo.M; r++ {
		if fo.gone(r) || a.reports[r] == nil {
			continue
		}
		rep := a.reports[r]
		for w := 0; w < words && w < len(rep); w++ {
			if union[w]&rep[w] != 0 {
				fo.fail(fmt.Errorf("core: failover conservation broken: an item token is owned by two machines"))
				return
			}
			union[w] |= rep[w]
		}
	}
	missing := make([]int32, 0, 64)
	for j := 0; j < fo.n; j++ {
		if union[j>>6]&(1<<uint(j&63)) == 0 {
			missing = append(missing, int32(j))
		}
	}
	switch a.round {
	case roundEvict:
		// missing may also include tokens of a machine that died
		// mid-round: they are regenerated here, and that machine's own
		// queued round then finds a complete union.
		buddy := fo.buddyOf(a.subject)
		if buddy < 0 {
			fo.fail(fmt.Errorf("core: no live buddy for dead machine %d", a.subject))
			return
		}
		if buddy == a.i {
			a.onRemap(missing)
		} else {
			a.link.SendCtl(buddy, ctlFoRemap, foSeal(a.roundEpoch, foEncodeRemap(a.subject, missing))) //nolint:errcheck
		}
	case roundJoin, roundDrain:
		if len(missing) > 0 && fo.deaths.Load() == fo.evictDone.Load() {
			fo.fail(fmt.Errorf("core: %d item tokens missing after a resize with no unrecovered failure", len(missing)))
			return
		}
		// Any missing tokens belong to a mid-round death; its queued
		// eviction round regenerates them.
		if a.round == roundJoin {
			a.finishJoin()
		} else {
			a.finishDrain()
		}
	}
}

// finishJoin (arbiter): activate the spare and publish per-donor token
// quotas carved off each member proportional to its reported load; the
// donors' senders rebalance over the data plane after resume.
func (a *foAgent) finishJoin() {
	fo := a.fo
	J := a.subject
	var donors []int
	var counts []int64
	for r := 0; r < fo.M; r++ {
		if r == J || !fo.selectable(r) {
			continue
		}
		c := int64(0)
		if rep := a.reports[r]; rep != nil {
			for _, w := range rep {
				c += int64(bits.OnesCount64(w))
			}
		}
		donors = append(donors, r)
		counts = append(counts, c)
	}
	quota := partition.CarveShare(counts)
	for x, r := range donors {
		fo.donate[r].Store(quota[x])
	}
	fo.donateTo.Store(int64(J))
	fo.active[J].Store(true)
	fo.lastJoined.Store(int64(J))
	if fo.unpoison != nil {
		fo.unpoison(J)
	}
	fo.respActivate(J)
	fo.noteResized("join", J)
	a.link.SendCtl(-1, ctlFoResume, foSeal(a.roundEpoch, foEncodeVictim(J))) //nolint:errcheck
	a.onResume(J)
}

// finishDrain (arbiter): the leaver's tokens have all streamed to its
// buddy; re-home its rating shards, retire the rank and resume. The
// parted flag is set before the resume broadcast so no unparked sender
// can pick the leaver again.
func (a *foAgent) finishDrain() {
	fo := a.fo
	D := a.subject
	if buddy := fo.buddyOf(D); buddy >= 0 {
		fo.respMove(D, buddy)
	}
	fo.parted[D].Store(true)
	fo.active[D].Store(false)
	if fo.poison != nil {
		fo.poison(D)
	}
	fo.drainTarget.Store(-1)
	fo.noteResized("drain", D)
	a.link.SendCtl(-1, ctlFoResume, foSeal(a.roundEpoch, foEncodeVictim(D))) //nolint:errcheck
	a.onResume(D)
}

// onRemap (buddy only): regenerate the missing tokens — replica first,
// model row (the victim's last owner write-back) as fallback — install
// the victim's replicated user rows, take over its rating shards,
// report regeneration done.
func (a *foAgent) onRemap(missing []int32) {
	fo := a.fo
	rs := a.replicas[a.subject]
	toks := make([]cluster.Token, 0, len(missing))
	for _, j := range missing {
		var vec []float64
		if rs != nil {
			if rv, ok := rs.items[j]; ok {
				vec = make([]float64, len(rv))
				copy(vec, rv)
			}
		}
		if vec == nil {
			vec = make([]float64, fo.K)
			fo.md.CopyItemRowTo64(int(j), vec)
		}
		toks = append(toks, cluster.Token{Item: j, Vec: vec})
	}
	if rs != nil {
		// The victim's workers are dead and its shards not yet moved:
		// nobody else writes these rows, so the install is race-free.
		for u, row := range rs.users {
			fo.md.SetUserRowFrom64(int(u), row)
		}
	}
	if len(toks) > 0 {
		if !a.sendRecvCmd(foRecvCmd{kind: recvInject, toks: toks}) {
			return
		}
	}
	// Re-home the victim's rating shards (its own and any it was
	// fostering): buddy worker w takes over the matching worker-w
	// shard. The generation bump is the workers' rebuild signal.
	fo.respMove(a.subject, a.i)
	a.regenSent = true
	if arb := fo.arbiter(); arb == a.i {
		a.onRegenDone()
	} else {
		a.link.SendCtl(arb, ctlFoRegenDone, foSeal(a.roundEpoch, foEncodeVictim(a.subject))) //nolint:errcheck
	}
}

// onRegenDone (arbiter only): the cluster state is whole again —
// record the recovery and broadcast resume.
func (a *foAgent) onRegenDone() {
	if a.phase == foIdle || a.round != roundEvict {
		return
	}
	a.fo.noteRecovered(a.subject)
	a.link.SendCtl(-1, ctlFoResume, foSeal(a.roundEpoch, foEncodeVictim(a.subject))) //nolint:errcheck
	a.onResume(a.subject)
}

// onResume ends the current round: unpark the local sender, re-enable
// replication, replay any deferred faults/requests.
func (a *foAgent) onResume(v int) {
	if a.phase == foIdle || v != a.subject {
		return
	}
	if a.round == roundEvict {
		a.done[v] = true
	}
	delete(a.fences, a.roundEpoch)
	a.phase, a.round, a.subject = foIdle, roundNone, -1
	a.fo.paused.Store(false)
	a.sendSendCmd(foSendCmd{kind: sendResume})
	for a.phase == foIdle && len(a.pending) > 0 {
		ev := a.pending[0]
		a.pending = a.pending[1:]
		a.handleEvent(ev)
	}
}

func (a *foAgent) sendRecvCmd(cmd foRecvCmd) bool {
	select {
	case a.fo.m[a.i].recvCmd <- cmd:
		return true
	case <-a.fo.stopping:
		return false
	}
}

func (a *foAgent) sendSendCmd(cmd foSendCmd) bool {
	select {
	case a.fo.m[a.i].sendCmd <- cmd:
		return true
	case <-a.fo.stopping:
		return false
	}
}

func (a *foAgent) replica(from int) *replicaStore {
	rs := a.replicas[from]
	if rs == nil {
		rs = &replicaStore{items: map[int32][]float64{}, users: map[int32][]float64{}}
		a.replicas[from] = rs
	}
	return rs
}

// storeReplRows decodes a ctlFoReplRows chunk into the sender's replica.
func (a *foAgent) storeReplRows(from int, payload []byte) {
	if len(payload) < 4 {
		return
	}
	count := int(binary.LittleEndian.Uint32(payload))
	per := 4 + 8*a.fo.K
	if count < 0 || len(payload)-4 != count*per {
		return
	}
	rs := a.replica(from)
	pos := 4
	for c := 0; c < count; c++ {
		u := int32(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		row := rs.users[u]
		if row == nil {
			row = make([]float64, a.fo.K)
			rs.users[u] = row
		}
		for x := range row {
			row[x] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		}
	}
}
