package core

// Failover and elastic membership: surviving the mid-epoch death of a
// machine, activating provisioned spares mid-run (scale-out) and
// retiring members gracefully (scale-in) in the asynchronous
// distributed runners. NOMAD's ownership discipline makes all three
// tractable — at any instant each item token (j, hⱼ) is owned by
// exactly one machine — so every membership change is a bookkeeping
// problem: quiesce the network, account for every token, move or
// regenerate what must move, and resume.
//
// The protocol is arbiter-driven over the links' control plane (frame
// kinds ≥ 16; the lockstep runner owns 1..6) and runs in a per-machine
// "agent" goroutine alongside the sender/receiver pair. All three
// reconfiguration rounds share one skeleton:
//
//	start      the arbiter — the lowest live rank — bumps the
//	           membership epoch and broadcasts the round (evict /
//	           join / drain, with its subject rank)
//	fence      senders park (an eviction first redirects the victim's
//	           pending batch; a drain's leaver instead flushes forward,
//	           see below) and each machine announces its cumulative
//	           per-peer send counts; a peer's fence is satisfied when
//	           the local receive counter catches up — nothing in flight
//	report     with the network quiescent, each machine snapshots its
//	           token-ownership bitmap and reports it to the arbiter
//	commit     the arbiter unions the reports (a duplicate bit is a
//	           conservation violation and aborts) and commits the
//	           round: evict → remap missing tokens to the victim's ring
//	           buddy for regeneration; join → activate the spare,
//	           compute per-donor token quotas (CarveShare) that drain
//	           to the joiner over the data plane; drain → re-home the
//	           leaver's rating shards to its buddy
//	resume     the arbiter broadcasts resume; senders unpark and
//	           circulation continues with the new membership — the
//	           epoch is never restarted
//
// A drain differs in one step: the leaver's workers stop training and
// flush their queues forward, and its sender streams every remaining
// token to the leaver's ring buddy (zero lost updates — state is
// moved, not reconstructed) before it announces its fence.
//
// Sequential faults are survivable while at least two machines remain:
// a death detected mid-round is queued and handled in its own round
// after resume, and if the arbiter itself dies mid-round the next
// lowest live rank takes over — survivors re-aim their buffered
// reports at the successor, so the round completes without restarting.
// Every control frame carries the membership epoch it was sealed
// under; stale-epoch frames (from rounds already finished) are
// dropped, with suspect and resume exempt so late detections and late
// resumes are never lost.
//
// Elastic spares are provisioned up front: links, partitions and
// worker/sender/receiver/agent goroutines exist for Machines +
// ElasticSpares ranks from the start, but a spare is latent — gossip
// poison keeps every picker away from it, it owns no tokens, and its
// user-rating shards are fostered by active workers through the
// responsibility table — until a join round activates it.
//
// Buddy replication is receiver-driven and lossy-tolerant: every
// machine streams the tokens it delivers (and rotating chunks of its
// user-factor rows) to its ring successor as control frames; what was
// updated since the last replicated snapshot is lost on a crash,
// conservation is not.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/netlink"
	"nomad/internal/partition"
	"nomad/internal/train"
)

// Failover control-frame kinds. The lockstep protocol owns 1..6;
// everything here lives at 16+ so the planes can never collide.
const (
	ctlFoSuspect   = uint8(16) + iota // survivor → arbiter: victim rank
	ctlFoEvict                        // arbiter broadcast: victim rank (round start)
	ctlFoFence                        // peer → peer: subject, cumulative send count
	ctlFoReport                       // peer → arbiter: subject, ownership bitmap
	ctlFoRemap                        // arbiter → buddy: victim, missing item list
	ctlFoRegenDone                    // buddy → arbiter: victim
	ctlFoResume                       // arbiter broadcast: subject (round end)
	ctlFoReplToks                     // replication: delivered-token snapshot (AppendTokenBatch payload)
	ctlFoReplRows                     // replication: user-factor row chunk
	ctlFoJoin                         // arbiter broadcast: joining spare rank (round start)
	ctlFoDrain                        // arbiter broadcast: leaving rank (round start)
)

// foFenceTimeout bounds the quiesce wait; a fence that cannot be
// satisfied (a peer that never parks, or frames lost forever) aborts
// the run with a typed error instead of hanging. A variable so the
// fence-timeout test can shrink it.
var foFenceTimeout = 5 * time.Second

const (
	// foFencePoll is the agent's receive-counter polling cadence while
	// fencing.
	foFencePoll = 200 * time.Microsecond
	// replEveryTokens is the replication snapshot cadence: one ctl frame
	// to the ring buddy per this many delivered tokens.
	replEveryTokens = 64
	// replRowChunk is how many user-factor rows ride along with each
	// token snapshot (rotating cursor over the machine's users).
	replRowChunk = 128
	// poisonedQueueLen makes a dead or latent machine lose every §3.3
	// least-loaded comparison without disturbing the gossip table's type.
	poisonedQueueLen = int64(1) << 60
)

// Agent phases.
const (
	foIdle = iota
	foFencing
	foAwaitResume
)

// Reconfiguration round kinds.
const (
	roundNone = iota
	roundEvict
	roundJoin
	roundDrain
)

// foEvent kinds (runner/transport/elastic requests → agent
// notifications).
const (
	evDetect = iota // a peer died (victim, cause)
	evFenced        // own sender flushed and parked
	evJoin          // activate spare (victim = spare rank)
	evDrain         // graceful leave (victim = leaver rank)
)

type foEvent struct {
	kind   int
	victim int
	cause  string
	ep     uint64 // round epoch for re-queued broadcast-origin events; 0 = initiator
}

// foSendCmd kinds (agent → sender goroutine).
const (
	sendEvict = iota // redirect victim's pending batch, flush, park
	sendResume
	sendPark  // flush and park (join/drain rounds on non-leavers)
	sendDrain // stream every local token to the ring buddy, then park
)

type foSendCmd struct {
	kind   int
	victim int
}

// foRecvCmd kinds (agent → receiver goroutine). The command channel is
// FIFO with respect to itself, which is the protocol's ordering
// argument: markDead is enqueued before any later snapshot, so by the
// time the receiver answers the snapshot it has already stopped
// accepting the victim's frames.
const (
	recvMarkDead = iota
	recvSnapshot
	recvInject
	recvRetry // re-attempt pending SPSC deliveries (mesh drain quiesce)
)

type foRecvCmd struct {
	kind   int
	victim int
	reply  chan []uint64   // snapshot: ownership bitmap copy
	toks   []cluster.Token // inject: regenerated tokens (fresh vectors)
}

// replicaStore is one machine's replica of a peer's state, fed by the
// peer's replication stream and consumed only if the peer dies.
type replicaStore struct {
	items map[int32][]float64 // last replicated hⱼ per item delivered there
	users map[int32][]float64 // last replicated user-factor rows
}

// foMachine is the per-machine mailbox set.
type foMachine struct {
	notify  chan foEvent
	sendCmd chan foSendCmd
	recvCmd chan foRecvCmd

	// retry, when set (mesh runner), re-attempts the receiver's pending
	// SPSC deliveries; invoked on the receiver goroutine via recvRetry.
	retry func()

	// Receiver-goroutine-owned state (no locks needed).
	dropFrom []bool            // evicted sources
	repl     *cluster.BatchBuf // pending replication snapshot
	replN    int               // tokens accumulated in repl
	rowCur   int               // rotating cursor into the machine's user list
	rowBuf   []float64         // scratch row for CopyUserRowTo64
}

// failoverRuntime is the shared state of one failover-enabled run: the
// ownership bitmaps, fence counters, membership flags and mailboxes of
// every provisioned machine, plus the global death/recovery record. A
// nil receiver is valid everywhere and means "failover disabled" — the
// runners call straight through without guards on their hot paths
// beyond a nil check and, on the data planes, one atomic op per token.
type failoverRuntime struct {
	M, W, K, n int // M counts every provisioned slot, spares included
	activeN    int // initial member count (ranks < activeN start active)
	backendTCP bool

	hooks *train.Hooks

	links     []cluster.Link
	md        *factor.Model
	local     []*localRatings
	userLists [][]int32 // per machine: global user ids its workers own

	m []*foMachine

	dead   []atomic.Bool // crashed (kill / transport failure)
	parted []atomic.Bool // left gracefully via a drain round
	active []atomic.Bool // member of the working set (false = latent spare)

	owned [][]atomic.Uint64 // [machine][word]: token-ownership bitmaps
	sent  [][]atomic.Int64  // [src][dst] cumulative tokens handed to the sender
	rcvd  [][]atomic.Int64  // [dst][src] cumulative tokens delivered

	epoch  atomic.Uint64 // membership epoch, bumped at each round start
	paused atomic.Bool   // replication paused during reconfiguration

	// resp is the published responsibility table: shard → global worker
	// currently training it. Identity for active members' own shards;
	// latent spares' shards are fostered, and evictions/drains move
	// entries wholesale. Workers watch respGen and rebuild their extras.
	resp    atomic.Pointer[[]int32]
	respGen atomic.Uint64
	respMu  sync.Mutex

	// donate[r] is how many tokens machine r still owes the latest
	// joiner (donateTo); decremented by r's sender as it redirects
	// tokens there, so scale-out rebalances on the data plane.
	donate   []atomic.Int64
	donateTo atomic.Int64

	drainTarget atomic.Int64    // rank mid-drain, -1 otherwise
	widle       [][]atomic.Bool // [machine][worker]: drain-forward idle flags

	deaths     atomic.Int64
	evictDone  atomic.Int64
	deathMu    sync.Mutex
	deathAt    map[int]int64 // victim → detection nanos (cleared on recovery)
	lastVictim atomic.Int64

	elasticMu   sync.Mutex
	claimed     []bool // spare ranks with a join requested
	drainReq    []bool // ranks with a drain requested
	resizeStart atomic.Int64
	lastJoined  atomic.Int64

	stopping chan struct{}
	stopOnce sync.Once

	fatal    atomic.Pointer[foFatal]
	stop     *atomic.Bool
	cancel   func()
	poison   func(victim int) // poisons gossip tables so pickers shun the rank
	unpoison func(rank int)   // clears the poison when a spare activates

	agentWG sync.WaitGroup
}

type foFatal struct{ err error }

// newFailoverRuntime allocates the runtime, or returns nil when the
// config does not enable failover. Allocation is split from bind so
// the detection callback can be wired into the links at build time.
func newFailoverRuntime(cfg train.Config, hooks *train.Hooks, n int) *failoverRuntime {
	if !cfg.Failover {
		return nil
	}
	M, W := cfg.TotalMachines(), cfg.Workers
	words := (n + 63) / 64
	fo := &failoverRuntime{
		M: M, W: W, K: cfg.K, n: n,
		activeN:    cfg.Machines,
		backendTCP: cfg.Backend == "tcp",
		hooks:      hooks,
		m:          make([]*foMachine, M),
		dead:       make([]atomic.Bool, M),
		parted:     make([]atomic.Bool, M),
		active:     make([]atomic.Bool, M),
		owned:      make([][]atomic.Uint64, M),
		sent:       make([][]atomic.Int64, M),
		rcvd:       make([][]atomic.Int64, M),
		donate:     make([]atomic.Int64, M),
		widle:      make([][]atomic.Bool, M),
		claimed:    make([]bool, M),
		drainReq:   make([]bool, M),
		deathAt:    map[int]int64{},
		stopping:   make(chan struct{}),
	}
	fo.donateTo.Store(-1)
	fo.drainTarget.Store(-1)
	fo.lastVictim.Store(-1)
	fo.lastJoined.Store(-1)
	for i := 0; i < M; i++ {
		fo.m[i] = &foMachine{
			notify:   make(chan foEvent, 4*M+16),
			sendCmd:  make(chan foSendCmd, 4),
			recvCmd:  make(chan foRecvCmd, 8),
			dropFrom: make([]bool, M),
			repl:     cluster.NewBatchBuf(),
			rowBuf:   make([]float64, cfg.K),
		}
		fo.owned[i] = make([]atomic.Uint64, words)
		fo.sent[i] = make([]atomic.Int64, M)
		fo.rcvd[i] = make([]atomic.Int64, M)
		fo.widle[i] = make([]atomic.Bool, W)
		fo.active[i].Store(i < fo.activeN)
	}
	// Initial responsibility table: identity for active members, latent
	// spare L's shard (L, w) fostered by active worker ((L mod active)·W
	// + w) so every user partition is trained from the first update.
	resp := make([]int32, M*W)
	for s := range resp {
		resp[s] = int32(s)
	}
	for L := fo.activeN; L < M; L++ {
		for w := 0; w < W; w++ {
			resp[L*W+w] = int32((L%fo.activeN)*W + w)
		}
	}
	fo.resp.Store(&resp)
	fo.respGen.Store(1)
	return fo
}

// bind attaches the run's shared objects once they exist: the (possibly
// chaos-wrapped) links, the model, the per-worker rating shards, the
// user partition (p = M·W parts, machine i owns parts i·W..(i+1)·W-1)
// and the teardown/gossip levers.
func (fo *failoverRuntime) bind(links []cluster.Link, md *factor.Model, local []*localRatings,
	users *partition.Partition, poison, unpoison func(rank int), stop *atomic.Bool, cancel func()) {
	if fo == nil {
		return
	}
	fo.links, fo.md, fo.local = links, md, local
	fo.poison, fo.unpoison, fo.stop, fo.cancel = poison, unpoison, stop, cancel
	fo.userLists = make([][]int32, fo.M)
	for mc := 0; mc < fo.M; mc++ {
		var list []int32
		for w := 0; w < fo.W; w++ {
			list = append(list, users.Part(mc*fo.W+w)...)
		}
		fo.userLists[mc] = list
	}
}

// ---- membership predicates ----

// gone reports whether rank i has left the cluster for good, by crash
// or by graceful drain.
func (fo *failoverRuntime) gone(i int) bool {
	return fo.dead[i].Load() || fo.parted[i].Load()
}

// machineGone is the runners' nil-safe view of gone.
func (fo *failoverRuntime) machineGone(i int) bool { return fo != nil && fo.gone(i) }

// selectable reports whether rank i may receive tokens: an active
// member that has not left.
func (fo *failoverRuntime) selectable(i int) bool {
	return fo.active[i].Load() && !fo.gone(i)
}

// activeCount is the current working-set size.
func (fo *failoverRuntime) activeCount() int {
	nAct := 0
	for r := 0; r < fo.M; r++ {
		if fo.selectable(r) {
			nAct++
		}
	}
	return nAct
}

// buddyOf returns i's ring successor among the selectable machines, or
// -1. The buddy is the replication target, the evict-regeneration site
// and the drain hand-off destination.
func (fo *failoverRuntime) buddyOf(i int) int {
	for d := 1; d < fo.M; d++ {
		if c := (i + d) % fo.M; fo.selectable(c) {
			return c
		}
	}
	return -1
}

// arbiter is the reconfiguration coordinator: the lowest rank still in
// the cluster. Recomputed on demand, which is what makes succession
// work — when the arbiter dies, every survivor's next send lands at
// the same successor.
func (fo *failoverRuntime) arbiter() int {
	for r := 0; r < fo.M; r++ {
		if !fo.gone(r) {
			return r
		}
	}
	return 0
}

// drainingMachine reports whether machine i is the current drain
// leaver; its workers flush forward instead of training.
func (fo *failoverRuntime) drainingMachine(i int) bool {
	return fo != nil && fo.drainTarget.Load() == int64(i)
}

// setDrainIdle publishes worker w of machine i's drain-forward idle
// flag (true = its queue was empty on the last pass).
func (fo *failoverRuntime) setDrainIdle(i, w int, idle bool) {
	if fo != nil {
		fo.widle[i][w].Store(idle)
	}
}

// drainIdleAll reports whether every worker of machine i is idle in
// drain-forward mode.
func (fo *failoverRuntime) drainIdleAll(i int) bool {
	for w := range fo.widle[i] {
		if !fo.widle[i][w].Load() {
			return false
		}
	}
	return true
}

// ---- detection and death accounting ----

// detectFunc returns the OnPeerDown sink wired into the TCP links, or
// nil when failover is disabled.
func (fo *failoverRuntime) detectFunc() func(self, rank int, err error) {
	if fo == nil {
		return nil
	}
	return fo.detect
}

// detect is the failure-detection entry point: transport callbacks and
// the chaos controller land here. self is the observing machine.
func (fo *failoverRuntime) detect(self, rank int, err error) {
	if fo == nil || fo.gone(self) {
		return // a dying machine's own link sees every peer vanish; ignore it
	}
	cause := "peer down"
	if err != nil {
		cause = err.Error()
	}
	fo.noteDeath(rank, cause)
	select {
	case fo.m[self].notify <- foEvent{kind: evDetect, victim: rank, cause: cause}:
	default: // mailbox full: detection is idempotent, another observer's event is queued
	}
}

// noteDeath records a machine death exactly once: the global dead flag
// (the in-process failure detector every picker consults), the gossip
// poison, the detection timestamp and the PeerDown event.
func (fo *failoverRuntime) noteDeath(rank int, cause string) {
	if !fo.dead[rank].CompareAndSwap(false, true) {
		return
	}
	fo.deaths.Add(1)
	fo.lastVictim.Store(int64(rank))
	fo.deathMu.Lock()
	fo.deathAt[rank] = time.Now().UnixNano()
	fo.deathMu.Unlock()
	if fo.poison != nil {
		fo.poison(rank)
	}
	fo.hooks.EmitPeer(train.PeerEvent{Rank: rank, Reason: cause})
}

// noteRecovered records a completed eviction round (once per victim)
// and emits the recovery event with the detection→resume latency.
func (fo *failoverRuntime) noteRecovered(victim int) {
	fo.deathMu.Lock()
	t0, ok := fo.deathAt[victim]
	if ok {
		delete(fo.deathAt, victim)
	}
	fo.deathMu.Unlock()
	if !ok {
		return // duplicate
	}
	fo.evictDone.Add(1)
	d := time.Duration(time.Now().UnixNano() - t0)
	fo.hooks.EmitPeerRecovered(train.PeerRecoveredEvent{Rank: victim, Recovery: d.Seconds()})
}

// killMachine is the chaos controller's kill function: machine victim
// (-1 = highest selectable rank) dies in-process. Its workers, sender
// and receiver observe the dead flag and wind down like a crashed
// process would; on TCP the victim's link is additionally severed so
// the survivors' transports see a real failure. The direct
// notifications double as netsim's failure detector — the simulated
// network has no failure semantics of its own.
func (fo *failoverRuntime) killMachine(victim int) {
	if fo == nil {
		return
	}
	if victim < 0 {
		for r := fo.M - 1; r >= 0; r-- {
			if fo.selectable(r) {
				victim = r
				break
			}
		}
	}
	if victim < 0 {
		return
	}
	fo.noteDeath(victim, "chaos kill")
	if fo.backendTCP && fo.links != nil {
		if a, ok := fo.links[victim].(interface{ Abort() }); ok {
			a.Abort()
		}
	}
	for s := 0; s < fo.M; s++ {
		if s == victim || fo.gone(s) {
			continue
		}
		select {
		case fo.m[s].notify <- foEvent{kind: evDetect, victim: victim, cause: "chaos kill"}:
		default:
		}
	}
}

// ---- elastic membership requests ----

// requestJoin asks the arbiter to activate a provisioned spare (rank
// -1 = lowest unclaimed spare). It returns once the round is enqueued;
// completion is observable through Hooks.Resize.
func (fo *failoverRuntime) requestJoin(rank int) error {
	if fo == nil {
		return fmt.Errorf("core: join requested but failover is disabled")
	}
	fo.elasticMu.Lock()
	if rank < 0 {
		for r := 0; r < fo.M; r++ {
			if !fo.active[r].Load() && !fo.gone(r) && !fo.claimed[r] {
				rank = r
				break
			}
		}
		if rank < 0 {
			fo.elasticMu.Unlock()
			return fmt.Errorf("core: no provisioned spare available to join")
		}
	} else {
		if rank >= fo.M || fo.active[rank].Load() || fo.gone(rank) || fo.claimed[rank] {
			fo.elasticMu.Unlock()
			return fmt.Errorf("core: rank %d is not a joinable spare", rank)
		}
	}
	fo.claimed[rank] = true
	fo.elasticMu.Unlock()
	fo.resizeStart.Store(time.Now().UnixNano())
	return fo.enqueueArbiter(foEvent{kind: evJoin, victim: rank})
}

// requestDrain asks the arbiter to retire a member gracefully (rank
// -1 = highest selectable rank, preferring one that did not just
// join). The leaver's state streams to its ring buddy before it exits.
func (fo *failoverRuntime) requestDrain(rank int) error {
	if fo == nil {
		return fmt.Errorf("core: drain requested but failover is disabled")
	}
	fo.elasticMu.Lock()
	if rank < 0 {
		lastJ := int(fo.lastJoined.Load())
		for r := fo.M - 1; r >= 0; r-- {
			if fo.selectable(r) && !fo.drainReq[r] {
				if rank < 0 {
					rank = r
				}
				if r != lastJ {
					rank = r
					break
				}
			}
		}
		if rank < 0 {
			fo.elasticMu.Unlock()
			return fmt.Errorf("core: no drainable machine available")
		}
	} else {
		if rank >= fo.M || !fo.selectable(rank) || fo.drainReq[rank] {
			fo.elasticMu.Unlock()
			return fmt.Errorf("core: rank %d is not a drainable member", rank)
		}
	}
	pending := 0
	for r := 0; r < fo.M; r++ {
		if fo.drainReq[r] {
			pending++
		}
	}
	if fo.activeCount()-pending-1 < 2 {
		fo.elasticMu.Unlock()
		return fmt.Errorf("core: draining rank %d would leave fewer than 2 machines", rank)
	}
	fo.drainReq[rank] = true
	fo.elasticMu.Unlock()
	fo.resizeStart.Store(time.Now().UnixNano())
	return fo.enqueueArbiter(foEvent{kind: evDrain, victim: rank})
}

// enqueueArbiter delivers a membership request to the current
// arbiter's agent, blocking until accepted or the run stops.
func (fo *failoverRuntime) enqueueArbiter(ev foEvent) error {
	select {
	case fo.m[fo.arbiter()].notify <- ev:
		return nil
	case <-fo.stopping:
		return fmt.Errorf("core: run stopped before the membership change was accepted")
	}
}

// noteResized emits the resize event for a committed membership change.
func (fo *failoverRuntime) noteResized(kind string, rank int) {
	secs := 0.0
	if start := fo.resizeStart.Swap(0); start > 0 {
		secs = time.Duration(time.Now().UnixNano() - start).Seconds()
	}
	fo.hooks.EmitResize(train.ResizeEvent{Kind: kind, Rank: rank, Machines: fo.activeCount(), Seconds: secs})
}

// ---- hot-path hooks (pickers, ownership, donation) ----

// wrapPick makes a destination picker membership-aware: dead, drained
// and latent machines are re-drawn (the gossip poison makes the
// least-loaded picker avoid them on its own; the uniform picker needs
// the retry).
func (fo *failoverRuntime) wrapPick(pick func() int) func() int {
	if fo == nil {
		return pick
	}
	return func() int {
		for {
			if d := pick(); fo.selectable(d) {
				return d
			}
		}
	}
}

// donationDest returns the machine sender i should hand its next token
// to in service of a scale-out rebalance, or -1 to route normally. The
// quota is decremented here; the sender goroutine is its only writer
// after publication.
func (fo *failoverRuntime) donationDest(i int) int {
	if fo == nil {
		return -1
	}
	to := int(fo.donateTo.Load())
	if to < 0 || !fo.selectable(to) {
		return -1
	}
	if q := fo.donate[i].Load(); q > 0 {
		fo.donate[i].Store(q - 1)
		return to
	}
	return -1
}

// sendCmds returns machine i's sender mailbox (nil channel — never
// ready — without failover).
func (fo *failoverRuntime) sendCmds(i int) chan foSendCmd {
	if fo == nil {
		return nil
	}
	return fo.m[i].sendCmd
}

// recvCmds returns machine i's receiver mailbox (nil without failover).
func (fo *failoverRuntime) recvCmds(i int) chan foRecvCmd {
	if fo == nil {
		return nil
	}
	return fo.m[i].recvCmd
}

// setRetryFn installs the mesh receiver's pending-delivery retry hook.
func (fo *failoverRuntime) setRetryFn(i int, fn func()) {
	if fo != nil {
		fo.m[i].retry = fn
	}
}

// noteOwned sets item's ownership bit for machine i: called at initial
// placement, on every delivery (before the token enters the worker
// queues, so it can never be re-sent while unset) and on injection.
//
//nomad:noalloc
func (fo *failoverRuntime) noteOwned(i int, item int32) {
	fo.owned[i][item>>6].Or(1 << uint(item&63))
}

// noteSent records a token handed to machine i's sender toward dst:
// the ownership bit clears (the token is leaving; if it never arrives
// anywhere it is "missing" and the protocol regenerates it) and the
// per-destination fence counter advances.
//
//nomad:noalloc
func (fo *failoverRuntime) noteSent(i, dst int, item int32) {
	fo.owned[i][item>>6].And(^(uint64(1) << uint(item&63)))
	fo.sent[i][dst].Add(1)
}

// acceptBatch reports whether machine i's receiver should deliver a
// batch from src: a dead or drained machine discards everything (it
// must keep draining — the netsim courier stalls network-wide
// otherwise), and survivors drop frames from evicted peers.
func (fo *failoverRuntime) acceptBatch(i, src int) bool {
	if fo == nil {
		return true
	}
	if fo.gone(i) {
		return false
	}
	return !fo.m[i].dropFrom[src]
}

// beforeDeliver sets the ownership bits of an accepted batch. This
// runs before the tokens enter the worker queues: a token must never
// be observable by the sender (which clears bits) before its bit is
// set, or a snapshot could double- or zero-count it.
func (fo *failoverRuntime) beforeDeliver(i int, toks []cluster.Token) {
	for x := range toks {
		fo.noteOwned(i, toks[x].Item)
	}
}

// afterDeliver completes a delivery's accounting: the fence counter
// (strictly after the bits, so a satisfied fence implies the bits are
// visible) and the replication stream to the ring buddy.
func (fo *failoverRuntime) afterDeliver(i, src int, toks []cluster.Token, link cluster.Link) {
	fo.rcvd[i][src].Add(int64(len(toks)))
	m := fo.m[i]
	for x := range toks {
		m.repl.Add(toks[x].Item, toks[x].Vec)
	}
	m.replN += len(toks)
	if m.replN < replEveryTokens || fo.paused.Load() || fo.isStopping() {
		return
	}
	fo.flushReplication(i, link)
}

// flushReplication streams the pending delta snapshot — delivered
// tokens plus a rotating chunk of user-factor rows — to the machine's
// ring buddy, sealed under the current membership epoch. Replication
// is lossy-tolerant: a failed or dropped frame only widens the window
// of updates lost if this machine dies.
func (fo *failoverRuntime) flushReplication(i int, link cluster.Link) {
	m := fo.m[i]
	buddy := fo.buddyOf(i)
	if buddy < 0 {
		m.repl.Reset()
		m.replN = 0
		return
	}
	ep := fo.epoch.Load()
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(ep))
	payload, err := netlink.AppendTokenBatch(hdr, m.repl.Batch(0), fo.K)
	if err == nil {
		link.SendCtl(buddy, ctlFoReplToks, payload) //nolint:errcheck // lossy-tolerant plane
	}
	m.repl.Reset()
	m.replN = 0

	users := fo.userLists[i]
	if len(users) == 0 {
		return
	}
	count := replRowChunk
	if count > len(users) {
		count = len(users)
	}
	rows := make([]byte, 8+count*(4+8*fo.K))
	binary.LittleEndian.PutUint32(rows, uint32(ep))
	binary.LittleEndian.PutUint32(rows[4:], uint32(count))
	pos := 8
	for c := 0; c < count; c++ {
		u := users[m.rowCur]
		m.rowCur++
		if m.rowCur == len(users) {
			m.rowCur = 0
		}
		binary.LittleEndian.PutUint32(rows[pos:], uint32(u))
		pos += 4
		// The row is being written by this machine's own workers; the
		// torn-read risk is the same one the unlocked monitor sampling
		// accepts, and a torn replica row only costs replication fidelity.
		fo.md.CopyUserRowTo64(int(u), m.rowBuf) //nomad:racy-read replication snapshot of live rows
		for _, v := range m.rowBuf {
			binary.LittleEndian.PutUint64(rows[pos:], math.Float64bits(v))
			pos += 8
		}
	}
	link.SendCtl(buddy, ctlFoReplRows, rows) //nolint:errcheck // lossy-tolerant plane
}

// ---- responsibility table ----

// respGeneration is the workers' cheap "did responsibility move?"
// check; 0 without failover.
func (fo *failoverRuntime) respGeneration() uint64 {
	if fo == nil {
		return 0
	}
	return fo.respGen.Load()
}

// extraShards rebuilds, into buf, the rating shards global worker gw
// is responsible for beyond its own, per the published table.
func (fo *failoverRuntime) extraShards(gw int, buf []*localRatings) []*localRatings {
	buf = buf[:0]
	if fo == nil {
		return buf
	}
	t := *fo.resp.Load()
	for s, o := range t {
		if int(o) == gw && s != gw {
			buf = append(buf, fo.local[s])
		}
	}
	return buf
}

// respMove reassigns every shard currently trained by a worker of
// machine from to the matching worker of machine to, and republishes.
func (fo *failoverRuntime) respMove(from, to int) {
	fo.respMu.Lock()
	defer fo.respMu.Unlock()
	t := *fo.resp.Load()
	nt := make([]int32, len(t))
	copy(nt, t)
	for s, o := range nt {
		if int(o)/fo.W == from {
			nt[s] = int32(to*fo.W + s%fo.W)
		}
	}
	fo.resp.Store(&nt)
	fo.respGen.Add(1)
}

// respActivate returns a joining spare's own shards to it: identity
// for shards J·W..(J+1)·W-1, ending their fostering.
func (fo *failoverRuntime) respActivate(J int) {
	fo.respMu.Lock()
	defer fo.respMu.Unlock()
	t := *fo.resp.Load()
	nt := make([]int32, len(t))
	copy(nt, t)
	for s := J * fo.W; s < (J+1)*fo.W; s++ {
		nt[s] = int32(s)
	}
	fo.resp.Store(&nt)
	fo.respGen.Add(1)
}

// ---- goroutine command execution ----

// handleRecvCmd executes an agent command on the receiver goroutine.
// deliver is the runner's delivery closure (shared with the normal
// inbound path so injection uses the same visit planning).
func (fo *failoverRuntime) handleRecvCmd(i int, cmd foRecvCmd, deliver func(cluster.Token)) {
	switch cmd.kind {
	case recvMarkDead:
		fo.m[i].dropFrom[cmd.victim] = true
	case recvSnapshot:
		bm := make([]uint64, len(fo.owned[i]))
		for w := range bm {
			bm[w] = fo.owned[i][w].Load()
		}
		cmd.reply <- bm
	case recvInject:
		for _, t := range cmd.toks {
			fo.noteOwned(i, t.Item)
			deliver(t)
		}
	case recvRetry:
		if fo.m[i].retry != nil {
			fo.m[i].retry()
		}
	}
}

// drainRecvCmds runs any still-queued commands before a receiver
// returns, so a late injection racing teardown is not lost.
func (fo *failoverRuntime) drainRecvCmds(i int, deliver func(cluster.Token)) {
	if fo == nil {
		return
	}
	for {
		select {
		case cmd := <-fo.m[i].recvCmd:
			fo.handleRecvCmd(i, cmd, deliver)
		default:
			return
		}
	}
}

// runSenderCmd executes a failover command on the sender goroutine.
// Every round variant ends the same way: flush (making the fence
// counters final), notify the local agent, and park until resume —
// this machine's share of token circulation pauses, which is what lets
// the snapshot see a quiescent network. drainAll is the runner's
// flush-forward closure: stream every token still on this machine to
// dest (nil on runners that never drain).
func (fo *failoverRuntime) runSenderCmd(i int, cmd foSendCmd, s *cluster.Sender, pick func() int, drainAll func(dest int)) {
	switch cmd.kind {
	case sendEvict:
		counting := func() int {
			d := pick()
			fo.sent[i][d].Add(1)
			return d
		}
		s.Redirect(cmd.victim, counting)
	case sendPark:
		// Nothing to redirect: just flush and park.
	case sendDrain:
		if dest := fo.buddyOf(i); dest >= 0 && drainAll != nil {
			drainAll(dest)
		}
	default:
		return // stray resume from an abandoned protocol
	}
	s.FlushAll() //nolint:errcheck // a real failure surfaces via link.Err
	select {
	case fo.m[i].notify <- foEvent{kind: evFenced}:
	case <-fo.stopping:
		return
	}
	for {
		select {
		case c := <-fo.m[i].sendCmd:
			if c.kind == sendResume {
				return
			}
		case <-fo.stopping:
			return
		}
	}
}

// ---- teardown plumbing ----

// fail aborts the run with a failover-level error: stop the workers,
// cancel the monitor and release everything parked on the protocol.
func (fo *failoverRuntime) fail(err error) {
	if fo == nil {
		return
	}
	if !fo.fatal.CompareAndSwap(nil, &foFatal{err: err}) {
		return
	}
	if fo.stop != nil {
		fo.stop.Store(true)
	}
	if fo.cancel != nil {
		fo.cancel()
	}
	fo.shutdown()
}

// shutdown releases the protocol's blocking points for teardown:
// parked senders unpark, agents abandon any half-finished
// reconfiguration (they keep draining their ctl channels so the
// transports never stall). Idempotent; the runners call it as soon as
// the monitor returns.
func (fo *failoverRuntime) shutdown() {
	if fo == nil {
		return
	}
	fo.stopOnce.Do(func() { close(fo.stopping) })
}

// isStopping reports whether shutdown has begun.
func (fo *failoverRuntime) isStopping() bool {
	select {
	case <-fo.stopping:
		return true
	default:
		return false
	}
}

// wait joins the agent goroutines; called after the links are closed
// (closing the ctl channels is what lets the agents return).
func (fo *failoverRuntime) wait() {
	if fo == nil {
		return
	}
	fo.agentWG.Wait()
}

// liveLinkErr is firstLinkErr restricted to machines still in the
// cluster: a killed victim's endpoint legitimately reports a failure.
func (fo *failoverRuntime) liveLinkErr(links []cluster.Link) error {
	if fo == nil {
		return firstLinkErr(links)
	}
	for i, l := range links {
		if fo.gone(i) {
			continue
		}
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// failErr is the run's failover verdict, checked at teardown: a fatal
// protocol error, or a death the protocol did not finish recovering
// from before the run ended.
func (fo *failoverRuntime) failErr() error {
	if fo == nil {
		return nil
	}
	if f := fo.fatal.Load(); f != nil {
		return f.err
	}
	if fo.deaths.Load() > fo.evictDone.Load() {
		return &cluster.PeerDownError{Rank: int(fo.lastVictim.Load()), Cause: fmt.Errorf("run ended before failover completed")}
	}
	return nil
}

// ---- frame codecs ----

// seal prepends the membership epoch to a control payload; foOpen
// strips and returns it. Every fo-plane frame is sealed so receivers
// can reject frames from rounds already finished.
func foSeal(ep uint64, payload []byte) []byte {
	b := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(ep))
	copy(b[4:], payload)
	return b
}

func foOpen(p []byte) (uint64, []byte, bool) {
	if len(p) < 4 {
		return 0, nil, false
	}
	return uint64(binary.LittleEndian.Uint32(p)), p[4:], true
}

func foEncodeVictim(v int) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(v))
	return b
}

func foDecodeVictim(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	return int(int32(binary.LittleEndian.Uint32(p))), true
}

func foEncodeFence(v int, count int64) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, uint32(v))
	binary.LittleEndian.PutUint64(b[4:], uint64(count))
	return b
}

func foDecodeFence(p []byte) (int, int64, bool) {
	if len(p) < 12 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(p)), int64(binary.LittleEndian.Uint64(p[4:])), true
}

func foEncodeReport(v int, bm []uint64) []byte {
	b := make([]byte, 4+8*len(bm))
	binary.LittleEndian.PutUint32(b, uint32(v))
	for w, x := range bm {
		binary.LittleEndian.PutUint64(b[4+8*w:], x)
	}
	return b
}

func foDecodeReport(p []byte) (int, []uint64, bool) {
	if len(p) < 4 || (len(p)-4)%8 != 0 {
		return 0, nil, false
	}
	bm := make([]uint64, (len(p)-4)/8)
	for w := range bm {
		bm[w] = binary.LittleEndian.Uint64(p[4+8*w:])
	}
	return int(binary.LittleEndian.Uint32(p)), bm, true
}

func foEncodeRemap(v int, items []int32) []byte {
	b := make([]byte, 8+4*len(items))
	binary.LittleEndian.PutUint32(b, uint32(v))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(items)))
	for x, j := range items {
		binary.LittleEndian.PutUint32(b[8+4*x:], uint32(j))
	}
	return b
}

func foDecodeRemap(p []byte) (int, []int32, bool) {
	if len(p) < 8 {
		return 0, nil, false
	}
	count := int(binary.LittleEndian.Uint32(p[4:]))
	if count < 0 || len(p)-8 != 4*count {
		return 0, nil, false
	}
	items := make([]int32, count)
	for x := range items {
		items[x] = int32(binary.LittleEndian.Uint32(p[8+4*x:]))
	}
	return int(binary.LittleEndian.Uint32(p)), items, true
}
