package core

// Failover: surviving the mid-epoch death of a machine in the
// asynchronous distributed runners. NOMAD's ownership discipline makes
// this tractable — at any instant each item token (j, hⱼ) is owned by
// exactly one machine — so recovering from a death is a bookkeeping
// problem: figure out which tokens died with the machine, regenerate
// them once, and re-home the dead machine's user rows.
//
// The protocol is coordinator-driven over the links' control plane
// (frame kinds ≥ 16; the lockstep runner owns 1..6) and runs in a
// per-machine "agent" goroutine alongside the sender/receiver pair:
//
//	detect     a survivor's transport notices the death (TCP read
//	           error, heartbeat timeout, or the chaos controller
//	           acting as netsim's failure detector)
//	suspect    the survivor reports the victim to the arbiter — the
//	           lowest live rank
//	evict      the arbiter broadcasts the eviction; every survivor
//	           stops accepting the victim's frames (receiver), drains
//	           the victim's pending batch over live peers and parks
//	           its sender — token circulation pauses
//	fence      each survivor announces its cumulative per-peer send
//	           counts; a peer's fence is satisfied when its receive
//	           counter catches up, i.e. nothing is in flight
//	report     with senders parked and flights drained, each survivor
//	           snapshots its token-ownership bitmap and reports it
//	remap      the arbiter unions the reports (a duplicate bit is a
//	           conservation violation and aborts), computes the missing
//	           items, and remaps them to the victim's ring buddy
//	regen      the buddy regenerates each missing token from its
//	           replica of the victim's state (falling back to the
//	           model's last owner write-back), installs the victim's
//	           replicated user rows, and its workers adopt the
//	           victim's rating shards
//	resume     the arbiter broadcasts resume; senders unpark and
//	           circulation continues with M-1 machines — the epoch is
//	           never restarted
//
// Exactly one failure per run is survivable; a second death during or
// after reconfiguration aborts with a typed error. Buddy replication
// is receiver-driven and lossy-tolerant: every machine streams the
// tokens it delivers (and rotating chunks of its user-factor rows) to
// its ring successor as control frames; what was updated since the
// last replicated snapshot is lost on failure, conservation is not.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/netlink"
	"nomad/internal/partition"
	"nomad/internal/train"
)

// Failover control-frame kinds. The lockstep protocol owns 1..6;
// everything here lives at 16+ so the planes can never collide.
const (
	ctlFoSuspect   = uint8(16) + iota // survivor → arbiter: victim rank
	ctlFoEvict                        // arbiter broadcast: victim rank
	ctlFoFence                        // survivor → survivor: victim, cumulative send count
	ctlFoReport                       // survivor → arbiter: victim, ownership bitmap
	ctlFoRemap                        // arbiter → buddy: victim, missing item list
	ctlFoRegenDone                    // buddy → arbiter: victim
	ctlFoResume                       // arbiter broadcast: victim
	ctlFoReplToks                     // replication: delivered-token snapshot (AppendTokenBatch payload)
	ctlFoReplRows                     // replication: user-factor row chunk
)

const (
	// foFenceTimeout bounds the quiesce wait; a fence that cannot be
	// satisfied (e.g. a second machine died mid-protocol) aborts the run.
	foFenceTimeout = 5 * time.Second
	// foFencePoll is the agent's receive-counter polling cadence while
	// fencing.
	foFencePoll = 200 * time.Microsecond
	// replEveryTokens is the replication snapshot cadence: one ctl frame
	// to the ring buddy per this many delivered tokens.
	replEveryTokens = 64
	// replRowChunk is how many user-factor rows ride along with each
	// token snapshot (rotating cursor over the machine's users).
	replRowChunk = 128
	// poisonedQueueLen makes a dead machine lose every §3.3 least-loaded
	// comparison without disturbing the gossip table's type.
	poisonedQueueLen = int64(1) << 60
)

// Agent phases.
const (
	foIdle = iota
	foFencing
	foAwaitResume
)

// foEvent kinds (runner/transport → agent notifications).
const (
	evDetect = iota // a peer died (victim, cause)
	evFenced        // own sender redirected, flushed and parked
)

type foEvent struct {
	kind   int
	victim int
	cause  string
}

// foSendCmd kinds (agent → sender goroutine).
const (
	sendEvict = iota
	sendResume
)

type foSendCmd struct {
	kind   int
	victim int
}

// foRecvCmd kinds (agent → receiver goroutine). The command channel is
// FIFO with respect to itself, which is the protocol's ordering
// argument: markDead is enqueued before any later snapshot, so by the
// time the receiver answers the snapshot it has already stopped
// accepting the victim's frames.
const (
	recvMarkDead = iota
	recvSnapshot
	recvInject
)

type foRecvCmd struct {
	kind   int
	victim int
	reply  chan []uint64   // snapshot: ownership bitmap copy
	toks   []cluster.Token // inject: regenerated tokens (fresh vectors)
}

// replicaStore is one machine's replica of a peer's state, fed by the
// peer's replication stream and consumed only if the peer dies.
type replicaStore struct {
	items map[int32][]float64 // last replicated hⱼ per item delivered there
	users map[int32][]float64 // last replicated user-factor rows
}

// foMachine is the per-machine mailbox set.
type foMachine struct {
	notify  chan foEvent
	sendCmd chan foSendCmd
	recvCmd chan foRecvCmd

	// Receiver-goroutine-owned state (no locks needed).
	dropFrom []bool            // evicted sources
	repl     *cluster.BatchBuf // pending replication snapshot
	replN    int               // tokens accumulated in repl
	rowCur   int               // rotating cursor into the machine's user list
	rowBuf   []float64         // scratch row for CopyUserRowTo64
}

// failoverRuntime is the shared state of one failover-enabled run: the
// ownership bitmaps, fence counters and mailboxes of every simulated
// machine, plus the global death/recovery record. A nil receiver is
// valid everywhere and means "failover disabled" — the runners call
// straight through without guards on their hot paths beyond a nil
// check and, on the data planes, one atomic op per token.
type failoverRuntime struct {
	M, W, K, n int
	backendTCP bool

	hooks *train.Hooks

	links     []cluster.Link
	md        *factor.Model
	local     []*localRatings
	userLists [][]int32 // per machine: global user ids its workers own

	m []*foMachine

	dead  []atomic.Bool     // machine-level death (global: shared-process detector)
	owned [][]atomic.Uint64 // [machine][word]: token-ownership bitmaps
	sent  [][]atomic.Int64  // [src][dst] cumulative tokens handed to the sender
	rcvd  [][]atomic.Int64  // [dst][src] cumulative tokens delivered

	paused atomic.Bool // replication paused during reconfiguration

	stopping chan struct{}
	stopOnce sync.Once

	detectNanos atomic.Int64
	victimRank  atomic.Int64 // first victim, -1 while none
	recovered   atomic.Bool

	fatal  atomic.Pointer[foFatal]
	stop   *atomic.Bool
	cancel func()
	poison func(victim int) // poisons gossip tables so pickers shun the victim

	adoption atomic.Pointer[foAdoption]
	adoptGen atomic.Uint64

	agentWG sync.WaitGroup
}

type foFatal struct{ err error }

// foAdoption maps the victim's per-worker rating shards onto the
// buddy's workers: buddy worker w adopts local[victim*W+w].
type foAdoption struct{ victim, buddy int }

// newFailoverRuntime allocates the runtime, or returns nil when the
// config does not enable failover. Allocation is split from bind so
// the detection callback can be wired into the links at build time.
func newFailoverRuntime(cfg train.Config, hooks *train.Hooks, n int) *failoverRuntime {
	if !cfg.Failover {
		return nil
	}
	M, W := cfg.Machines, cfg.Workers
	words := (n + 63) / 64
	fo := &failoverRuntime{
		M: M, W: W, K: cfg.K, n: n,
		backendTCP: cfg.Backend == "tcp",
		hooks:      hooks,
		m:          make([]*foMachine, M),
		dead:       make([]atomic.Bool, M),
		owned:      make([][]atomic.Uint64, M),
		sent:       make([][]atomic.Int64, M),
		rcvd:       make([][]atomic.Int64, M),
		stopping:   make(chan struct{}),
	}
	fo.victimRank.Store(-1)
	for i := 0; i < M; i++ {
		fo.m[i] = &foMachine{
			notify:   make(chan foEvent, 4*M+16),
			sendCmd:  make(chan foSendCmd, 4),
			recvCmd:  make(chan foRecvCmd, 8),
			dropFrom: make([]bool, M),
			repl:     cluster.NewBatchBuf(),
			rowBuf:   make([]float64, cfg.K),
		}
		fo.owned[i] = make([]atomic.Uint64, words)
		fo.sent[i] = make([]atomic.Int64, M)
		fo.rcvd[i] = make([]atomic.Int64, M)
	}
	return fo
}

// bind attaches the run's shared objects once they exist: the (possibly
// chaos-wrapped) links, the model, the per-worker rating shards, the
// user partition (p = M·W parts, machine i owns parts i·W..(i+1)·W-1)
// and the teardown levers.
func (fo *failoverRuntime) bind(links []cluster.Link, md *factor.Model, local []*localRatings,
	users *partition.Partition, poison func(victim int), stop *atomic.Bool, cancel func()) {
	if fo == nil {
		return
	}
	fo.links, fo.md, fo.local = links, md, local
	fo.poison, fo.stop, fo.cancel = poison, stop, cancel
	fo.userLists = make([][]int32, fo.M)
	for mc := 0; mc < fo.M; mc++ {
		var list []int32
		for w := 0; w < fo.W; w++ {
			list = append(list, users.Part(mc*fo.W+w)...)
		}
		fo.userLists[mc] = list
	}
}

// detectFunc returns the OnPeerDown sink wired into the TCP links, or
// nil when failover is disabled.
func (fo *failoverRuntime) detectFunc() func(self, rank int, err error) {
	if fo == nil {
		return nil
	}
	return fo.detect
}

// detect is the failure-detection entry point: transport callbacks and
// the chaos controller land here. self is the observing machine.
func (fo *failoverRuntime) detect(self, rank int, err error) {
	if fo == nil || fo.dead[self].Load() {
		return // a dying machine's own link sees every peer vanish; ignore it
	}
	cause := "peer down"
	if err != nil {
		cause = err.Error()
	}
	fo.noteDeath(rank, cause)
	select {
	case fo.m[self].notify <- foEvent{kind: evDetect, victim: rank, cause: cause}:
	default: // mailbox full: detection is idempotent, another observer's event is queued
	}
}

// noteDeath records a machine death exactly once: the global dead flag
// (the in-process failure detector every picker consults), the gossip
// poison, the detection timestamp and the PeerDown event. A second
// distinct victim is fatal — the protocol survives one failure per run.
func (fo *failoverRuntime) noteDeath(rank int, cause string) {
	if !fo.dead[rank].CompareAndSwap(false, true) {
		return
	}
	if !fo.victimRank.CompareAndSwap(-1, int64(rank)) {
		fo.fail(fmt.Errorf("core: machine %d died after machine %d; only one failure per run is survivable",
			rank, fo.victimRank.Load()))
		return
	}
	fo.detectNanos.CompareAndSwap(0, time.Now().UnixNano())
	if fo.poison != nil {
		fo.poison(rank)
	}
	fo.hooks.EmitPeer(train.PeerEvent{Rank: rank, Reason: cause})
}

// killMachine is the chaos controller's kill function: machine victim
// dies in-process. Its workers, sender and receiver observe the dead
// flag and wind down like a crashed process would (workers stop, the
// sender drops its pending batch and stops transmitting, the receiver
// discards); on TCP the victim's link is additionally severed so the
// survivors' transports see a real failure. The direct notifications
// double as netsim's failure detector — the simulated network has no
// failure semantics of its own.
func (fo *failoverRuntime) killMachine(victim int) {
	if fo == nil {
		return
	}
	fo.noteDeath(victim, "chaos kill")
	if fo.backendTCP && fo.links != nil {
		if a, ok := fo.links[victim].(interface{ Abort() }); ok {
			a.Abort()
		}
	}
	for s := 0; s < fo.M; s++ {
		if s == victim || fo.dead[s].Load() {
			continue
		}
		select {
		case fo.m[s].notify <- foEvent{kind: evDetect, victim: victim, cause: "chaos kill"}:
		default:
		}
	}
}

// machineDead reports whether machine i has died this run.
func (fo *failoverRuntime) machineDead(i int) bool { return fo != nil && fo.dead[i].Load() }

// wrapPick makes a destination picker failover-aware: dead machines
// are re-drawn (the gossip poison makes the least-loaded picker avoid
// them on its own; the uniform picker needs the retry).
func (fo *failoverRuntime) wrapPick(pick func() int) func() int {
	if fo == nil {
		return pick
	}
	return func() int {
		for {
			if d := pick(); !fo.dead[d].Load() {
				return d
			}
		}
	}
}

// sendCmds returns machine i's sender mailbox (nil channel — never
// ready — without failover).
func (fo *failoverRuntime) sendCmds(i int) chan foSendCmd {
	if fo == nil {
		return nil
	}
	return fo.m[i].sendCmd
}

// recvCmds returns machine i's receiver mailbox (nil without failover).
func (fo *failoverRuntime) recvCmds(i int) chan foRecvCmd {
	if fo == nil {
		return nil
	}
	return fo.m[i].recvCmd
}

// noteOwned sets item's ownership bit for machine i: called at initial
// placement, on every delivery (before the token enters the worker
// queues, so it can never be re-sent while unset) and on injection.
//
//nomad:noalloc
func (fo *failoverRuntime) noteOwned(i int, item int32) {
	fo.owned[i][item>>6].Or(1 << uint(item&63))
}

// noteSent records a token handed to machine i's sender toward dst:
// the ownership bit clears (the token is leaving; if it never arrives
// anywhere it is "missing" and the protocol regenerates it) and the
// per-destination fence counter advances.
//
//nomad:noalloc
func (fo *failoverRuntime) noteSent(i, dst int, item int32) {
	fo.owned[i][item>>6].And(^(uint64(1) << uint(item&63)))
	fo.sent[i][dst].Add(1)
}

// acceptBatch reports whether machine i's receiver should deliver a
// batch from src: a dead machine discards everything (it must keep
// draining — the netsim courier stalls network-wide otherwise), and
// survivors drop frames from evicted peers.
func (fo *failoverRuntime) acceptBatch(i, src int) bool {
	if fo == nil {
		return true
	}
	if fo.dead[i].Load() {
		return false
	}
	return !fo.m[i].dropFrom[src]
}

// beforeDeliver sets the ownership bits of an accepted batch. This
// runs before the tokens enter the worker queues: a token must never
// be observable by the sender (which clears bits) before its bit is
// set, or a snapshot could double- or zero-count it.
func (fo *failoverRuntime) beforeDeliver(i int, toks []cluster.Token) {
	for x := range toks {
		fo.noteOwned(i, toks[x].Item)
	}
}

// afterDeliver completes a delivery's accounting: the fence counter
// (strictly after the bits, so a satisfied fence implies the bits are
// visible) and the replication stream to the ring buddy.
func (fo *failoverRuntime) afterDeliver(i, src int, toks []cluster.Token, link cluster.Link) {
	fo.rcvd[i][src].Add(int64(len(toks)))
	m := fo.m[i]
	for x := range toks {
		m.repl.Add(toks[x].Item, toks[x].Vec)
	}
	m.replN += len(toks)
	if m.replN < replEveryTokens || fo.paused.Load() || fo.isStopping() {
		return
	}
	fo.flushReplication(i, link)
}

// flushReplication streams the pending delta snapshot — delivered
// tokens plus a rotating chunk of user-factor rows — to the machine's
// ring buddy. Replication is lossy-tolerant: a failed or dropped
// frame only widens the window of updates lost if this machine dies.
func (fo *failoverRuntime) flushReplication(i int, link cluster.Link) {
	m := fo.m[i]
	buddy := fo.buddyOf(i)
	if buddy < 0 {
		m.repl.Reset()
		m.replN = 0
		return
	}
	payload, err := netlink.AppendTokenBatch(nil, m.repl.Batch(0), fo.K)
	if err == nil {
		link.SendCtl(buddy, ctlFoReplToks, payload) //nolint:errcheck // lossy-tolerant plane
	}
	m.repl.Reset()
	m.replN = 0

	users := fo.userLists[i]
	if len(users) == 0 {
		return
	}
	count := replRowChunk
	if count > len(users) {
		count = len(users)
	}
	rows := make([]byte, 4+count*(4+8*fo.K))
	binary.LittleEndian.PutUint32(rows, uint32(count))
	pos := 4
	for c := 0; c < count; c++ {
		u := users[m.rowCur]
		m.rowCur++
		if m.rowCur == len(users) {
			m.rowCur = 0
		}
		binary.LittleEndian.PutUint32(rows[pos:], uint32(u))
		pos += 4
		// The row is being written by this machine's own workers; the
		// torn-read risk is the same one the unlocked monitor sampling
		// accepts, and a torn replica row only costs replication fidelity.
		fo.md.CopyUserRowTo64(int(u), m.rowBuf) //nomad:racy-read replication snapshot of live rows
		for _, v := range m.rowBuf {
			binary.LittleEndian.PutUint64(rows[pos:], math.Float64bits(v))
			pos += 8
		}
	}
	link.SendCtl(buddy, ctlFoReplRows, rows) //nolint:errcheck // lossy-tolerant plane
}

// handleRecvCmd executes an agent command on the receiver goroutine.
// deliver is the runner's delivery closure (shared with the normal
// inbound path so injection uses the same visit planning).
func (fo *failoverRuntime) handleRecvCmd(i int, cmd foRecvCmd, deliver func(cluster.Token)) {
	switch cmd.kind {
	case recvMarkDead:
		fo.m[i].dropFrom[cmd.victim] = true
	case recvSnapshot:
		bm := make([]uint64, len(fo.owned[i]))
		for w := range bm {
			bm[w] = fo.owned[i][w].Load()
		}
		cmd.reply <- bm
	case recvInject:
		for _, t := range cmd.toks {
			fo.noteOwned(i, t.Item)
			deliver(t)
		}
	}
}

// drainRecvCmds runs any still-queued commands before a receiver
// returns, so a late injection racing teardown is not lost.
func (fo *failoverRuntime) drainRecvCmds(i int, deliver func(cluster.Token)) {
	if fo == nil {
		return
	}
	for {
		select {
		case cmd := <-fo.m[i].recvCmd:
			fo.handleRecvCmd(i, cmd, deliver)
		default:
			return
		}
	}
}

// runSenderCmd executes a failover command on the sender goroutine.
// An eviction redirects the victim's pending batch over the survivors,
// flushes everything (making the fence counters final), acknowledges
// to the local agent and parks until resume — this machine's share of
// token circulation pauses, which is what lets the snapshot see a
// quiescent network.
func (fo *failoverRuntime) runSenderCmd(i int, cmd foSendCmd, s *cluster.Sender, pick func() int) {
	if cmd.kind != sendEvict {
		return // stray resume from an abandoned protocol
	}
	counting := func() int {
		d := pick()
		fo.sent[i][d].Add(1)
		return d
	}
	s.Redirect(cmd.victim, counting)
	s.FlushAll() //nolint:errcheck // a real failure surfaces via link.Err
	select {
	case fo.m[i].notify <- foEvent{kind: evFenced}:
	case <-fo.stopping:
		return
	}
	for {
		select {
		case c := <-fo.m[i].sendCmd:
			if c.kind == sendResume {
				return
			}
		case <-fo.stopping:
			return
		}
	}
}

// adoptedShard returns the victim rating shard global worker gw has
// adopted, or nil. Workers re-check only when adoptGen moves.
func (fo *failoverRuntime) adoptedShard(gw int) *localRatings {
	a := fo.adoption.Load()
	if a == nil || gw/fo.W != a.buddy {
		return nil
	}
	return fo.local[a.victim*fo.W+gw%fo.W]
}

// buddyOf returns i's ring successor among the live machines, or -1.
func (fo *failoverRuntime) buddyOf(i int) int {
	for d := 1; d < fo.M; d++ {
		if c := (i + d) % fo.M; !fo.dead[c].Load() {
			return c
		}
	}
	return -1
}

// arbiter is the reconfiguration coordinator: the lowest live rank.
func (fo *failoverRuntime) arbiter() int {
	for r := 0; r < fo.M; r++ {
		if !fo.dead[r].Load() {
			return r
		}
	}
	return 0
}

// noteRecovered records the completed failover (once) and emits the
// recovery event with the detection→resume latency.
func (fo *failoverRuntime) noteRecovered(victim int) {
	if !fo.recovered.CompareAndSwap(false, true) {
		return
	}
	d := time.Duration(time.Now().UnixNano() - fo.detectNanos.Load())
	fo.hooks.EmitPeerRecovered(train.PeerRecoveredEvent{Rank: victim, Recovery: d.Seconds()})
}

// fail aborts the run with a failover-level error: stop the workers,
// cancel the monitor and release everything parked on the protocol.
func (fo *failoverRuntime) fail(err error) {
	if fo == nil {
		return
	}
	if !fo.fatal.CompareAndSwap(nil, &foFatal{err: err}) {
		return
	}
	if fo.stop != nil {
		fo.stop.Store(true)
	}
	if fo.cancel != nil {
		fo.cancel()
	}
	fo.shutdown()
}

// shutdown releases the protocol's blocking points for teardown:
// parked senders unpark, agents abandon any half-finished
// reconfiguration (they keep draining their ctl channels so the
// transports never stall). Idempotent; the runners call it as soon as
// the monitor returns.
func (fo *failoverRuntime) shutdown() {
	if fo == nil {
		return
	}
	fo.stopOnce.Do(func() { close(fo.stopping) })
}

// isStopping reports whether shutdown has begun.
func (fo *failoverRuntime) isStopping() bool {
	select {
	case <-fo.stopping:
		return true
	default:
		return false
	}
}

// wait joins the agent goroutines; called after the links are closed
// (closing the ctl channels is what lets the agents return).
func (fo *failoverRuntime) wait() {
	if fo == nil {
		return
	}
	fo.agentWG.Wait()
}

// liveLinkErr is firstLinkErr restricted to live machines: a killed
// victim's endpoint legitimately reports a failure.
func (fo *failoverRuntime) liveLinkErr(links []cluster.Link) error {
	if fo == nil {
		return firstLinkErr(links)
	}
	for i, l := range links {
		if fo.dead[i].Load() {
			continue
		}
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// failErr is the run's failover verdict, checked at teardown: a fatal
// protocol error, or a death the protocol did not finish recovering
// from before the run ended.
func (fo *failoverRuntime) failErr() error {
	if fo == nil {
		return nil
	}
	if f := fo.fatal.Load(); f != nil {
		return f.err
	}
	if v := int(fo.victimRank.Load()); v >= 0 && !fo.recovered.Load() {
		return &cluster.PeerDownError{Rank: v, Cause: fmt.Errorf("run ended before failover completed")}
	}
	return nil
}

// startAgents launches one protocol agent per machine.
func (fo *failoverRuntime) startAgents() {
	if fo == nil {
		return
	}
	for i := 0; i < fo.M; i++ {
		fo.agentWG.Add(1)
		go fo.runAgent(i)
	}
}

// foAgent is one machine's protocol state machine, driven by its ctl
// channel and notify mailbox. All fields are agent-goroutine-owned.
type foAgent struct {
	fo   *failoverRuntime
	i    int
	link cluster.Link

	phase       int
	victim      int
	senderAcked bool
	fenceStart  time.Time
	suspected   map[int]bool
	done        map[int]bool
	fences      map[int]int64    // live peer → announced cumulative send count
	reports     map[int][]uint64 // arbiter: live machine → ownership bitmap
	replicas    map[int]*replicaStore
}

func (fo *failoverRuntime) runAgent(i int) {
	defer fo.agentWG.Done()
	a := &foAgent{
		fo: fo, i: i, link: fo.links[i],
		victim:    -1,
		suspected: map[int]bool{},
		done:      map[int]bool{},
		fences:    map[int]int64{},
		reports:   map[int][]uint64{},
		replicas:  map[int]*replicaStore{},
	}
	notify := fo.m[i].notify
	ctl := a.link.Ctl()
	var tick *time.Ticker
	var tickC <-chan time.Time
	stopTick := func() {
		if tick != nil {
			tick.Stop()
			tick, tickC = nil, nil
		}
	}
	defer stopTick()
	for {
		select {
		case ev := <-notify:
			a.handleEvent(ev)
		case ct, ok := <-ctl:
			if !ok {
				return
			}
			a.handleCtl(ct)
		case <-tickC:
			a.checkFences()
		case <-fo.stopping:
			// Abandon the protocol but keep the ctl channel draining: a
			// blocked channel would wedge the transport (the netsim
			// courier and the TCP readers both block on it) and deadlock
			// the teardown this shutdown is part of.
			for range ctl { //nolint:revive // drain until closed
			}
			return
		}
		if a.phase == foFencing && tickC == nil {
			tick = time.NewTicker(foFencePoll)
			tickC = tick.C
		} else if a.phase != foFencing {
			stopTick()
		}
	}
}

func (a *foAgent) handleEvent(ev foEvent) {
	fo := a.fo
	if fo.dead[a.i].Load() {
		return
	}
	switch ev.kind {
	case evDetect:
		v := ev.victim
		if a.done[v] || a.suspected[v] {
			return
		}
		if a.phase != foIdle && v != a.victim {
			fo.fail(fmt.Errorf("core: machine %d died while reconfiguring for machine %d", v, a.victim))
			return
		}
		a.suspected[v] = true
		if arb := fo.arbiter(); arb == a.i {
			a.onSuspect(v)
		} else {
			a.link.SendCtl(arb, ctlFoSuspect, foEncodeVictim(v)) //nolint:errcheck // loss → fence timeout → typed abort
		}
	case evFenced:
		if a.phase != foFencing {
			return
		}
		a.senderAcked = true
		// The sender is parked and flushed: the per-peer counts are
		// final. Announce them so every survivor can quiesce.
		for p := 0; p < fo.M; p++ {
			if p == a.i || fo.dead[p].Load() {
				continue
			}
			a.link.SendCtl(p, ctlFoFence, foEncodeFence(a.victim, fo.sent[a.i][p].Load())) //nolint:errcheck
		}
		a.checkFences()
	}
}

func (a *foAgent) handleCtl(ct cluster.Ctl) {
	fo := a.fo
	if fo.dead[a.i].Load() {
		return // dead machine: drain and ignore
	}
	switch ct.Kind {
	case ctlFoSuspect:
		if v, ok := foDecodeVictim(ct.Payload); ok && a.i == fo.arbiter() {
			a.onSuspect(v)
		}
	case ctlFoEvict:
		if v, ok := foDecodeVictim(ct.Payload); ok {
			a.onEvict(v, "evicted by arbiter")
		}
	case ctlFoFence:
		if _, count, ok := foDecodeFence(ct.Payload); ok {
			a.fences[ct.From] = count
			a.checkFences()
		}
	case ctlFoReport:
		if _, bm, ok := foDecodeReport(ct.Payload); ok {
			a.onReport(ct.From, bm)
		}
	case ctlFoRemap:
		if v, items, ok := foDecodeRemap(ct.Payload); ok && v == a.victim {
			a.onRemap(items)
		}
	case ctlFoRegenDone:
		if _, ok := foDecodeVictim(ct.Payload); ok && a.i == fo.arbiter() {
			a.onRegenDone()
		}
	case ctlFoResume:
		a.onResume()
	case ctlFoReplToks:
		if b, err := netlink.DecodeTokenBatch(ct.Payload, fo.K); err == nil {
			rs := a.replica(ct.From)
			for _, t := range b.Tokens {
				rs.items[t.Item] = t.Vec // freshly allocated by the decode
			}
		}
	case ctlFoReplRows:
		a.storeReplRows(ct.From, ct.Payload)
	}
}

// onSuspect (arbiter only): broadcast the eviction and enter it locally.
func (a *foAgent) onSuspect(v int) {
	if a.done[v] || a.phase != foIdle {
		if a.phase != foIdle && v != a.victim {
			a.fo.fail(fmt.Errorf("core: machine %d suspected while reconfiguring for machine %d", v, a.victim))
		}
		return
	}
	a.link.SendCtl(-1, ctlFoEvict, foEncodeVictim(v)) //nolint:errcheck // dead peers are skipped/harmless
	a.onEvict(v, "evicted by arbiter")
}

// onEvict starts this machine's reconfiguration: receiver stops
// accepting the victim, sender redirects + parks, fencing begins.
func (a *foAgent) onEvict(v int, cause string) {
	fo := a.fo
	if a.done[v] || a.phase != foIdle {
		if a.phase != foIdle && v != a.victim {
			fo.fail(fmt.Errorf("core: machine %d evicted while reconfiguring for machine %d", v, a.victim))
		}
		return
	}
	fo.noteDeath(v, cause) // machines that never detected locally learn here
	a.victim, a.phase, a.fenceStart = v, foFencing, time.Now()
	a.senderAcked = false
	fo.paused.Store(true)
	if !a.sendRecvCmd(foRecvCmd{kind: recvMarkDead, victim: v}) {
		return
	}
	a.sendSendCmd(foSendCmd{kind: sendEvict, victim: v})
}

// checkFences advances from fencing to reporting once the network is
// quiescent from this machine's point of view: its own sender is
// parked, and every live peer's announced send count has been matched
// by the local receive counter (nothing in flight toward us).
func (a *foAgent) checkFences() {
	fo := a.fo
	if a.phase != foFencing {
		return
	}
	complete := a.senderAcked
	if complete {
		for p := 0; p < fo.M; p++ {
			if p == a.i || fo.dead[p].Load() {
				continue
			}
			c, ok := a.fences[p]
			if !ok || fo.rcvd[a.i][p].Load() < c {
				complete = false
				break
			}
		}
	}
	if !complete {
		if time.Since(a.fenceStart) > foFenceTimeout {
			fo.fail(fmt.Errorf("core: failover fence timed out after %v on machine %d", foFenceTimeout, a.i))
		}
		return
	}
	// Quiesced: the ownership bitmap is stable. Snapshot it through the
	// receiver (FIFO after markDead) and report to the arbiter.
	reply := make(chan []uint64, 1)
	if !a.sendRecvCmd(foRecvCmd{kind: recvSnapshot, reply: reply}) {
		return
	}
	var bm []uint64
	select {
	case bm = <-reply:
	case <-fo.stopping:
		return
	}
	a.phase = foAwaitResume
	if arb := fo.arbiter(); arb == a.i {
		a.onReport(a.i, bm)
	} else {
		a.link.SendCtl(arb, ctlFoReport, foEncodeReport(a.victim, bm)) //nolint:errcheck
	}
}

// onReport (arbiter only): once every live machine has reported, union
// the bitmaps — a duplicate is a conservation violation — and remap
// the missing items to the victim's buddy.
func (a *foAgent) onReport(from int, bm []uint64) {
	fo := a.fo
	a.reports[from] = bm
	live := 0
	for r := 0; r < fo.M; r++ {
		if !fo.dead[r].Load() {
			live++
		}
	}
	if len(a.reports) < live {
		return
	}
	words := (fo.n + 63) / 64
	union := make([]uint64, words)
	for _, rep := range a.reports {
		for w := 0; w < words && w < len(rep); w++ {
			if union[w]&rep[w] != 0 {
				fo.fail(fmt.Errorf("core: failover conservation broken: an item token is owned by two machines"))
				return
			}
			union[w] |= rep[w]
		}
	}
	missing := make([]int32, 0, 64)
	for j := 0; j < fo.n; j++ {
		if union[j>>6]&(1<<uint(j&63)) == 0 {
			missing = append(missing, int32(j))
		}
	}
	buddy := fo.buddyOf(a.victim)
	if buddy < 0 {
		fo.fail(fmt.Errorf("core: no live buddy for dead machine %d", a.victim))
		return
	}
	if buddy == a.i {
		a.onRemap(missing)
	} else {
		a.link.SendCtl(buddy, ctlFoRemap, foEncodeRemap(a.victim, missing)) //nolint:errcheck
	}
}

// onRemap (buddy only): regenerate the missing tokens — replica first,
// model row (the victim's last owner write-back) as fallback — install
// the victim's replicated user rows, adopt its rating shards, report
// regeneration done.
func (a *foAgent) onRemap(missing []int32) {
	fo := a.fo
	rs := a.replicas[a.victim]
	toks := make([]cluster.Token, 0, len(missing))
	for _, j := range missing {
		var vec []float64
		if rs != nil {
			if rv, ok := rs.items[j]; ok {
				vec = make([]float64, len(rv))
				copy(vec, rv)
			}
		}
		if vec == nil {
			vec = make([]float64, fo.K)
			fo.md.CopyItemRowTo64(int(j), vec)
		}
		toks = append(toks, cluster.Token{Item: j, Vec: vec})
	}
	if rs != nil {
		// The victim's workers are dead and its shards not yet adopted:
		// nobody else writes these rows, so the install is race-free.
		for u, row := range rs.users {
			fo.md.SetUserRowFrom64(int(u), row)
		}
	}
	if len(toks) > 0 {
		if !a.sendRecvCmd(foRecvCmd{kind: recvInject, toks: toks}) {
			return
		}
	}
	// Publish the adoption: buddy worker w takes over the victim's
	// worker-w rating shard. The atomic gen is the workers' cheap
	// "anything changed?" check.
	fo.adoption.Store(&foAdoption{victim: a.victim, buddy: a.i})
	fo.adoptGen.Add(1)
	if arb := fo.arbiter(); arb == a.i {
		a.onRegenDone()
	} else {
		a.link.SendCtl(arb, ctlFoRegenDone, foEncodeVictim(a.victim)) //nolint:errcheck
	}
}

// onRegenDone (arbiter only): the cluster state is whole again —
// record the recovery and broadcast resume.
func (a *foAgent) onRegenDone() {
	if a.phase == foIdle {
		return
	}
	a.fo.noteRecovered(a.victim)
	a.link.SendCtl(-1, ctlFoResume, foEncodeVictim(a.victim)) //nolint:errcheck
	a.onResume()
}

// onResume unparks the local sender and re-enables replication.
func (a *foAgent) onResume() {
	if a.phase == foIdle {
		return
	}
	a.done[a.victim] = true
	a.phase = foIdle
	a.fo.paused.Store(false)
	a.sendSendCmd(foSendCmd{kind: sendResume})
}

func (a *foAgent) sendRecvCmd(cmd foRecvCmd) bool {
	select {
	case a.fo.m[a.i].recvCmd <- cmd:
		return true
	case <-a.fo.stopping:
		return false
	}
}

func (a *foAgent) sendSendCmd(cmd foSendCmd) bool {
	select {
	case a.fo.m[a.i].sendCmd <- cmd:
		return true
	case <-a.fo.stopping:
		return false
	}
}

func (a *foAgent) replica(from int) *replicaStore {
	rs := a.replicas[from]
	if rs == nil {
		rs = &replicaStore{items: map[int32][]float64{}, users: map[int32][]float64{}}
		a.replicas[from] = rs
	}
	return rs
}

// storeReplRows decodes a ctlFoReplRows chunk into the sender's replica.
func (a *foAgent) storeReplRows(from int, payload []byte) {
	if len(payload) < 4 {
		return
	}
	count := int(binary.LittleEndian.Uint32(payload))
	per := 4 + 8*a.fo.K
	if count < 0 || len(payload)-4 != count*per {
		return
	}
	rs := a.replica(from)
	pos := 4
	for c := 0; c < count; c++ {
		u := int32(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		row := rs.users[u]
		if row == nil {
			row = make([]float64, a.fo.K)
			rs.users[u] = row
		}
		for x := range row {
			row[x] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		}
	}
}

// ---- frame codecs ----

func foEncodeVictim(v int) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(v))
	return b
}

func foDecodeVictim(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(p)), true
}

func foEncodeFence(v int, count int64) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, uint32(v))
	binary.LittleEndian.PutUint64(b[4:], uint64(count))
	return b
}

func foDecodeFence(p []byte) (int, int64, bool) {
	if len(p) < 12 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(p)), int64(binary.LittleEndian.Uint64(p[4:])), true
}

func foEncodeReport(v int, bm []uint64) []byte {
	b := make([]byte, 4+8*len(bm))
	binary.LittleEndian.PutUint32(b, uint32(v))
	for w, x := range bm {
		binary.LittleEndian.PutUint64(b[4+8*w:], x)
	}
	return b
}

func foDecodeReport(p []byte) (int, []uint64, bool) {
	if len(p) < 4 || (len(p)-4)%8 != 0 {
		return 0, nil, false
	}
	bm := make([]uint64, (len(p)-4)/8)
	for w := range bm {
		bm[w] = binary.LittleEndian.Uint64(p[4+8*w:])
	}
	return int(binary.LittleEndian.Uint32(p)), bm, true
}

func foEncodeRemap(v int, items []int32) []byte {
	b := make([]byte, 8+4*len(items))
	binary.LittleEndian.PutUint32(b, uint32(v))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(items)))
	for x, j := range items {
		binary.LittleEndian.PutUint32(b[8+4*x:], uint32(j))
	}
	return b
}

func foDecodeRemap(p []byte) (int, []int32, bool) {
	if len(p) < 8 {
		return 0, nil, false
	}
	count := int(binary.LittleEndian.Uint32(p[4:]))
	if count < 0 || len(p)-8 != 4*count {
		return 0, nil, false
	}
	items := make([]int32, count)
	for x := range items {
		items[x] = int32(binary.LittleEndian.Uint32(p[8+4*x:]))
	}
	return int(binary.LittleEndian.Uint32(p)), items, true
}
