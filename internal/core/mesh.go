package core

// The batched token transport (queue.KindSPSC, the default): workers
// exchange tokens through a p×p mesh of bounded SPSC rings instead of
// p MPMC queues. Tokens are popped in blocks, processed, and routed
// through per-destination out-buffers that are flushed in blocks, so
// the per-token cost of the transport is a slice append — the
// synchronization (one atomic release per block) and the routing RNG
// (one draw per four route choices) are amortized the way the paper
// amortizes network overhead by batching ~100 tokens per message
// (§3.5). Queue-length gossip for §3.3 load balancing reads padded
// atomics instead of taking the destination queues' locks.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/affinity"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
)

// meshBlock is the transport's block size: tokens popped per RecvBatch
// and buffered per destination before a flush. Large enough to
// amortize the per-block atomics to noise, small enough that tokens
// never go stale in a buffer (a token's SGD pass over its rating list
// dwarfs its time in a 64-slot buffer).
const meshBlock = 64

// meshResidual is what one worker leaves behind at stop: the popped
// but unprocessed remainder of its last block (the front of its
// logical queue) and the per-destination out-buffer tokens its lanes
// could not take (the back). The coordinator folds both into the
// token-conservation drain.
type meshResidual struct {
	in  []sharedToken
	out [][]sharedToken
}

// idleBackoff is the empty-queue wait policy shared by all worker
// loops: spin-yield first, then sleep with capped exponential backoff
// (1µs doubling to 128µs). The cap keeps cancellation prompt while the
// doubling keeps a long-idle worker from burning a core at 50kHz the
// way the old fixed 20µs sleep did.
type idleBackoff struct{ spins int }

func (b *idleBackoff) wait() {
	b.spins++
	if b.spins <= 64 {
		runtime.Gosched()
		return
	}
	shift := b.spins - 65
	if shift > 7 {
		shift = 7
	}
	time.Sleep(time.Microsecond << shift)
}

func (b *idleBackoff) reset() { b.spins = 0 }

// tokenRouter amortizes the routing RNG: one xoshiro step yields four
// 16-bit route choices (rng.Quad), so uniform routing pays ¼ draw per
// token and two-choice load balancing ½.
type tokenRouter struct {
	r    *rng.Source
	p    int
	vals [4]int
	left int
}

func (t *tokenRouter) next() int {
	if t.left == 0 {
		t.vals[0], t.vals[1], t.vals[2], t.vals[3] = t.r.Quad(t.p)
		t.left = 4
	}
	t.left--
	return t.vals[t.left]
}

// meshRingCap sizes a mesh lane at twice its expected uniform-routing
// occupancy (n/p tokens per worker spread over p inbound lanes) plus
// block slack, so the p² lanes preallocate ~2n slots total — the same
// O(n) footprint as the MPMC queues they replace — instead of O(n·p).
// Skewed routing that overfills a lane is handled, not lost: the
// producer keeps the overflow in its out-buffer and retries, and the
// restore path preloads what a lane cannot take. For p=1 the single
// lane exceeds n, so the lone worker's flushes always succeed and the
// loop is exactly FIFO.
func meshRingCap(n, p int) int { return 2*n/(p*p) + 4*meshBlock }

// meshFlushThreshold adapts the out-buffer flush block to the token
// pool. With plentiful tokens (n ≫ p·meshBlock) full blocks amortize
// the per-flush atomics best; with few tokens — small matrices, or the
// paper's netflix shape scaled down — holding a scarce token in a
// buffer starves the destination worker, so the threshold shrinks to
// keep every token in circulation. The same reasoning bounds the
// paper's choice of ~100 tokens per network message (§3.5): batching
// pays only when tokens queue up behind each other anyway.
func meshFlushThreshold(n, p int) int {
	t := n / (4 * p)
	if t < 1 {
		return 1
	}
	if t > meshBlock {
		return meshBlock
	}
	return t
}

// trainSharedMesh is trainShared on the batched SPSC transport. The
// single-worker guarantees are unchanged: token order is FIFO, the
// stop decision happens at the same counter-flush boundary, and the
// drained ownership map reconstructs the logical queue exactly, so
// checkpoint/resume stays bit-compatible with an uninterrupted run.
func trainSharedMesh(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	p := cfg.Workers
	m, n := ds.Rows(), ds.Cols()
	users := partitionUsers(ds, cfg, p)
	local := buildLocalRatings(ds.Train, users)
	schedule := cfg.Schedule()
	root := rng.New(cfg.Seed)

	mesh := queue.NewMesh[sharedToken](p, meshRingCap(n, p))
	// preload[q] seeds worker q's self-destination out-buffer with
	// tokens that did not fit in its lanes at placement time; the
	// worker's own flushes feed them into circulation.
	preload := make([][]sharedToken, p)

	var md *factor.Model
	workerRNG := make([]*rng.Source, p)
	if st := cfg.Resume; st != nil {
		md = st.Model
		importCounts(ds.Train, users, local, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, workerRNG)
		if err := restoreMesh(mesh, preload, st.Queues, n, root); err != nil {
			return nil, err
		}
	} else {
		md = factor.NewInitP(m, n, cfg.K, cfg.Seed, cfg.Precision)
		// Initial token placement (Algorithm 1 lines 6–10), spread over
		// source lanes so no lane carries the whole scatter.
		for j := 0; j < n; j++ {
			dst := root.Intn(p)
			if !mesh.Send(j%p, dst, sharedToken{item: int32(j)}) {
				preload[dst] = append(preload[dst], sharedToken{item: int32(j)})
			}
		}
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	var stop atomic.Bool
	residual := make([]meshResidual, p)
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			runSharedWorkerMesh(q, md, local[q], mesh, schedule, cfg, counter, &stop,
				workerRNG[q], preload[q], &residual[q])
		}(q)
	}

	runErr := train.Monitor(ctx, &stop, counter, cfg, rec, md, hooks)
	wg.Wait()

	// Ownership invariant (see trainShared): every token must now be
	// in exactly one place. Per worker, the logical queue order is its
	// unprocessed block remainder (front), then its mesh row, then
	// whatever peers could not flush toward it (back).
	parked := 0
	parkedQueues := make([][]int32, p)
	for q := 0; q < p; q++ {
		for _, tok := range residual[q].in {
			parkedQueues[q] = append(parkedQueues[q], tok.item)
		}
		mesh.Drain(q, func(tok sharedToken) {
			parkedQueues[q] = append(parkedQueues[q], tok.item)
		})
	}
	for src := 0; src < p; src++ {
		for dst, toks := range residual[src].out {
			for _, tok := range toks {
				parkedQueues[dst] = append(parkedQueues[dst], tok.item)
			}
		}
	}
	for q := range parkedQueues {
		parked += len(parkedQueues[q])
	}
	if parked != n {
		return nil, fmt.Errorf("core: token conservation violated: %d tokens for %d items", parked, n)
	}

	rec.Sample(md, counter.Total())
	return &train.Result{
		Algorithm: "nomad",
		Model:     md,
		Trace:     rec.Trace(),
		Updates:   counter.Total(),
		Elapsed:   rec.Elapsed(),
		Final: &train.State{
			Algorithm: "nomad",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    exportCounts(ds.Train, users, local),
			RNG:       train.CaptureStreams(root, workerRNG),
			Queues:    parkedQueues,
		},
	}, runErr
}

// runSharedWorkerMesh is Algorithm 1's per-worker loop on the batched
// transport: pop a block, run SGD per token, route each token into a
// per-destination out-buffer, flush buffers in blocks.
func runSharedWorkerMesh(q int, md *factor.Model, lr *localRatings,
	mesh *queue.Mesh[sharedToken], schedule sched.Schedule, cfg train.Config,
	counter *train.Counter, stop *atomic.Bool, r *rng.Source,
	preload []sharedToken, res *meshResidual) {

	p := mesh.P()
	if cfg.PinWorkers {
		affinity.Pin(q)
		defer affinity.Unpin()
	}
	hp := newHotPath(md, schedule, cfg)
	loadBalance := cfg.LoadBalance && p > 1
	straggler := q == 0 && cfg.Straggle > 1
	route := tokenRouter{r: r, p: p}
	threshold := meshFlushThreshold(md.N, p)

	var in [meshBlock]sharedToken
	out := make([][]sharedToken, p)
	for d := range out {
		out[d] = make([]sharedToken, 0, 2*meshBlock)
	}
	out[q] = append(out[q], preload...)

	// flush pushes out[d]'s tokens into the lane in order, keeping
	// whatever the lane cannot take. Reports whether any token moved.
	flush := func(d int) bool {
		if len(out[d]) == 0 {
			return false
		}
		acc := mesh.SendBatch(q, d, out[d])
		if acc == 0 {
			return false
		}
		rest := copy(out[d], out[d][acc:])
		out[d] = out[d][:rest]
		return true
	}

	var idle idleBackoff
	var batch int64 // updates since last counter flush
	stopped := false
	for !stopped && !stop.Load() {
		k := mesh.RecvBatch(q, in[:])
		if k == 0 {
			// Nothing inbound: push pending tokens along so they keep
			// circulating, then back off.
			moved := false
			for d := 0; d < p; d++ {
				if flush(d) {
					moved = true
				}
			}
			if moved {
				idle.reset()
			} else {
				idle.wait()
			}
			continue
		}
		idle.reset()
		for i := 0; i < k; i++ {
			tok := in[i]

			// SGD over this worker's ratings for the item (lines 16–21).
			j := int(tok.item)
			usersJ, vals, counts := lr.itemRatings(j)
			var began time.Time
			if straggler {
				began = time.Now()
			}
			hp.itemSGDItem(j, usersJ, vals, counts)
			if straggler && len(usersJ) > 0 && !stop.Load() {
				// Simulate a slow machine (§3.3 ablation); skipped once
				// stop is set so cancellation stays prompt.
				time.Sleep(time.Duration(float64(time.Since(began)) * (cfg.Straggle - 1)))
			}
			batch += int64(len(usersJ))
			if batch >= 256 {
				counter.Add(q, batch)
				batch = 0
				// Worker-side budget check; see runSharedWorker.
				if counter.Total() >= cfg.MaxUpdates {
					stop.Store(true)
				}
			}

			// Forward the token (lines 22–23): uniform, or the §3.3
			// least-loaded choice between two candidates — the length
			// probes are single atomic loads, never queue locks.
			dst := 0
			if loadBalance {
				a, b := route.next(), route.next()
				dst = a
				if mesh.ApproxLen(b) < mesh.ApproxLen(a) {
					dst = b
				}
			} else if p > 1 {
				dst = route.next()
			}
			out[dst] = append(out[dst], tok)
			if len(out[dst]) >= threshold {
				flush(dst)
			}
			if stop.Load() {
				// Stop at the same token boundary the unbatched loop
				// would: park the block's unprocessed remainder as the
				// front of this worker's logical queue.
				res.in = append(res.in, in[i+1:k]...)
				stopped = true
				break
			}
		}
	}
	counter.Add(q, batch)

	// Final flush; whatever the lanes cannot take is parked for the
	// coordinator's drain.
	res.out = make([][]sharedToken, p)
	for d := 0; d < p; d++ {
		flush(d)
		if len(out[d]) > 0 {
			res.out[d] = out[d]
		}
	}
}
