package core

// The distributed runner on the batched SPSC transport: each machine's
// W workers plus its sender and receiver threads share a (W+1)-endpoint
// mesh whose last endpoint — the "network port" — is produced into by
// the receiver (inbound tokens starting their §3.4 local circulation)
// and consumed from by the sender (tokens whose visit plan is
// exhausted). Every lane keeps the single-producer single-consumer
// discipline, so the intra-machine transport is identical to the
// shared-memory one and the network batching of §3.5 starts from
// already-batched port reads.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
)

// meshMachine is one simulated machine on the batched transport.
type meshMachine struct {
	id      int
	workers int
	mesh    *queue.Mesh[*distToken]
	pool    *tokenPool // sender→receiver distToken recycling

	// pending holds receiver-delivered tokens whose worker lane was
	// momentarily full; retried on the next inbound message and folded
	// into the final collection at teardown. pendingN mirrors the total
	// held (visible-in-lane before decrement), so a drain's quiesce
	// check can account for tokens parked here.
	pending  [][]*distToken
	pendingN atomic.Int64

	// lastKnown[r] is the most recent queue-length gossip received
	// from machine r (§3.3).
	lastKnown []atomic.Int64
}

// port is the mesh endpoint owned by the communication threads.
func (mc *meshMachine) port() int { return mc.workers }

// queueLen is the machine's total backlog, gossiped to peers. All
// reads are single atomic loads — §3.3 gossip never takes a lock.
func (mc *meshMachine) queueLen() int {
	n := 0
	for d := 0; d <= mc.workers; d++ {
		n += mc.mesh.ApproxLen(d)
	}
	return n
}

// retryPending re-offers tokens whose lane was full when the receiver
// first delivered them.
func (mc *meshMachine) retryPending() {
	for d, toks := range mc.pending {
		if len(toks) == 0 {
			continue
		}
		acc := mc.mesh.SendBatch(mc.port(), d, toks)
		if acc > 0 {
			rest := copy(toks, toks[acc:])
			for i := rest; i < len(toks); i++ {
				toks[i] = nil // release for GC
			}
			mc.pending[d] = toks[:rest]
			// After SendBatch: the tokens are visible in the lane before
			// the pending count drops, so the two never read zero while a
			// token is between stations.
			mc.pendingN.Add(-int64(acc))
		}
	}
}

// machinePicker returns the outbound-destination chooser shared by
// both sender implementations: uniform over peers, or the §3.3
// least-loaded known peer with random tie-break, reported as a
// BalanceEvent.
func machinePicker(id, M int, loadBalance bool, lastKnown []atomic.Int64, r *rng.Source, hooks *train.Hooks) func() int {
	return func() int {
		if M == 1 {
			return 0
		}
		if loadBalance {
			best, bestLen := -1, int64(1<<62)
			ties := 0
			for dst := 0; dst < M; dst++ {
				if dst == id {
					continue
				}
				l := lastKnown[dst].Load()
				switch {
				case l < bestLen:
					best, bestLen, ties = dst, l, 1
				case l == bestLen:
					ties++
					if r.Intn(ties) == 0 {
						best = dst
					}
				}
			}
			hooks.EmitBalance(train.BalanceEvent{From: id, To: best, QueueLen: bestLen})
			return best
		}
		dst := r.Intn(M - 1)
		if dst >= id {
			dst++
		}
		return dst
	}
}

// trainDistributedMesh is trainDistributed on the batched transport.
func trainDistributedMesh(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	// M counts the initial members; Mtot adds the provisioned elastic
	// spares, which run their communication threads from the start but
	// stay latent (no tokens, gossip-poisoned) until a join round.
	M, W := cfg.Machines, cfg.Workers
	Mtot := cfg.TotalMachines()
	p := Mtot * W
	m, n := ds.Rows(), ds.Cols()
	users := partitionUsers(ds, cfg, p) // global worker id = machine*W + worker
	local := buildLocalRatings(ds.Train, users)
	schedule := cfg.Schedule()
	fo := newFailoverRuntime(cfg, hooks, n)
	links, err := buildLinks(ctx, ds, cfg, hooks, fo.detectFunc())
	if err != nil {
		return nil, err
	}
	var chaos *cluster.ChaosController
	if cfg.Chaos != nil {
		chaos = cluster.NewChaosController(cfg.Chaos)
		chaos.SetSnapshotKind(ctlFoReplToks)
		chaos.OnKill(func(victim int) { fo.killMachine(victim) })
		chaos.OnJoin(func(rank int) {
			if err := fo.requestJoin(rank); err != nil {
				fo.fail(err)
			}
		})
		chaos.OnDrain(func(rank int) {
			if err := fo.requestDrain(rank); err != nil {
				fo.fail(err)
			}
		})
		links = chaos.WrapAll(links)
	}
	root := rng.New(cfg.Seed)

	var md *factor.Model
	workerRNG := make([]*rng.Source, p)
	if st := cfg.Resume; st != nil {
		md = st.Model
		importCounts(ds.Train, users, local, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInitP(m, n, cfg.K, cfg.Seed, cfg.Precision)
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	machines := make([]*meshMachine, Mtot)
	for mcID := 0; mcID < Mtot; mcID++ {
		mc := &meshMachine{
			id:        mcID,
			workers:   W,
			mesh:      queue.NewMesh[*distToken](W+1, meshRingCap(n, M*W)),
			pool:      newTokenPool(4 * cfg.BatchSize),
			pending:   make([][]*distToken, W+1),
			lastKnown: make([]atomic.Int64, Mtot),
		}
		// Latent spares lose every least-loaded comparison until a join
		// activates them (and clears the poison).
		for r := M; r < Mtot; r++ {
			mc.lastKnown[r].Store(poisonedQueueLen)
		}
		fo.setRetryFn(mcID, mc.retryPending)
		machines[mcID] = mc
	}

	// Initial placement: every item token starts at a uniformly random
	// machine with a fresh local visit plan (Algorithm 1 lines 6–10).
	permScratch := make([]int, W)
	for j := 0; j < n; j++ {
		vec := make([]float64, cfg.K)
		md.CopyItemRowTo64(j, vec)
		tok := &distToken{tok: cluster.Token{Item: int32(j), Vec: vec}}
		mc := machines[root.Intn(M)]
		if fo != nil {
			fo.noteOwned(mc.id, int32(j))
		}
		deliverMeshLocal(mc, tok, cfg.Circulate, root, permScratch)
	}

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	var stop atomic.Bool

	// A transport failure (TCP peer down) must end the run even though
	// the update budget can no longer be reached.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	fo.bind(links, md, local, users, func(victim int) {
		// Poison the gossip tables so every §3.3 least-loaded picker
		// shuns the dead machine from its next decision on.
		for _, mc := range machines {
			mc.lastKnown[victim].Store(poisonedQueueLen)
		}
	}, func(rank int) {
		// A spare just activated: clear the poison so pickers can route
		// to it.
		for _, mc := range machines {
			mc.lastKnown[rank].Store(0)
		}
	}, &stop, cancelRun)
	fo.startAgents()
	if cfg.Elastic != nil && fo != nil {
		cfg.Elastic.Bind(fo.requestJoin, fo.requestDrain)
	}
	if chaos != nil {
		chaos.Arm(links)
	}

	// Compute workers. residual[mc][w] keeps each worker's unflushed
	// out-buffers for the final collection.
	residual := make([][][][]*distToken, Mtot)
	var workerWG sync.WaitGroup
	for mcID := 0; mcID < Mtot; mcID++ {
		residual[mcID] = make([][][]*distToken, W)
		for w := 0; w < W; w++ {
			workerWG.Add(1)
			go func(mc *meshMachine, w int) {
				defer workerWG.Done()
				residual[mc.id][w] = runDistWorkerMesh(mc, w, md, local[mc.id*W+w], schedule, cfg,
					counter, &stop, workerRNG[mc.id*W+w], fo)
			}(machines[mcID], w)
		}
	}

	// Sender and receiver threads, one of each per machine. Senders
	// exit once workersDone is raised and their port row is dry.
	var workersDone atomic.Bool
	var senderWG, receiverWG sync.WaitGroup
	for mcID := 0; mcID < Mtot; mcID++ {
		// Split before the goroutines start: Split advances the parent
		// stream and is not safe concurrently.
		senderRNG := root.Split(uint64(1000 + mcID))
		receiverRNG := root.Split(uint64(2000 + mcID))
		senderWG.Add(1)
		go func(mc *meshMachine) {
			defer senderWG.Done()
			runMeshSender(mc, links[mc.id], cfg, senderRNG, hooks, &workersDone, fo)
		}(machines[mcID])
		receiverWG.Add(1)
		go func(mc *meshMachine) {
			defer receiverWG.Done()
			runMeshReceiver(mc, links[mc.id], cfg, receiverRNG, fo)
			if links[mc.id].Err() != nil && !fo.machineGone(mc.id) {
				cancelRun()
			}
		}(machines[mcID])
	}

	runErr := train.Monitor(runCtx, &stop, counter, cfg, rec, md, hooks)

	// Orderly teardown: workers → senders (flush + end-of-stream) →
	// receivers (drain until every peer's stream has ended). The
	// workers' exit flushes are published by workerWG.Wait, so a sender
	// observing workersDone drains a complete port row.
	if chaos != nil {
		chaos.Stop()
	}
	fo.shutdown()
	workerWG.Wait()
	workersDone.Store(true)
	senderWG.Wait()
	receiverWG.Wait()
	for _, l := range links {
		l.Close() //nolint:errcheck // idempotent release
	}
	fo.wait()
	if lerr := fo.liveLinkErr(links); lerr != nil {
		return nil, fmt.Errorf("core: distributed transport failed: %w", lerr)
	}
	if ferr := fo.failErr(); ferr != nil {
		return nil, fmt.Errorf("core: failover failed: %w", ferr)
	}
	if runErr != nil && ctx.Err() == nil {
		runErr = nil // monitor cancelled by teardown plumbing, not the caller
	}

	// Collect every token still held anywhere — mesh lanes, receiver
	// overflow, worker residual buffers — and write its vector back
	// into the model. Token conservation is the ownership invariant;
	// a dead machine's holdings are skipped (regenerated on the buddy).
	collected := 0
	collect := func(tok *distToken) {
		md.SetItemRowFrom64(int(tok.tok.Item), tok.tok.Vec)
		collected++
	}
	for _, mc := range machines {
		if fo.machineGone(mc.id) {
			continue
		}
		for d := 0; d <= mc.workers; d++ {
			mc.mesh.Drain(d, collect)
			for _, tok := range mc.pending[d] {
				collect(tok)
			}
		}
	}
	for mcID, perWorker := range residual {
		if fo.machineGone(mcID) {
			continue
		}
		for _, outs := range perWorker {
			for _, toks := range outs {
				for _, tok := range toks {
					collect(tok)
				}
			}
		}
	}
	if collected != n {
		return nil, fmt.Errorf("core: token conservation violated: collected %d tokens for %d items", collected, n)
	}

	rec.Sample(md, counter.Total())
	bytesSent, msgsSent := linkTotals(links)
	hooks.EmitNetwork(train.NetworkEvent{BytesSent: bytesSent, MessagesSent: msgsSent})
	return &train.Result{
		Algorithm:    "nomad",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      counter.Total(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    bytesSent,
		MessagesSent: msgsSent,
		Final: &train.State{
			Algorithm: "nomad",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    exportCounts(ds.Train, users, local),
			RNG:       train.CaptureStreams(root, workerRNG),
			// Queues deliberately nil: tokens were folded back into the
			// model above; a resume re-scatters them.
		},
	}, runErr
}

// deliverMeshLocal plans a token's visits through mc's workers and
// offers it to the first stop's lane, parking it in pending when the
// lane is full. The producer is always the port endpoint (init runs
// before any thread starts, the receiver owns it afterwards).
func deliverMeshLocal(mc *meshMachine, tok *distToken, circulate int, r *rng.Source, scratch []int) {
	first := planVisits(tok, mc.workers, circulate, r, scratch)
	if !mc.mesh.Send(mc.port(), first, tok) {
		mc.pendingN.Add(1)
		mc.pending[first] = append(mc.pending[first], tok)
	}
}

// runDistWorkerMesh processes token blocks from its own mesh row: SGD
// on the local ratings of each token's item, then hand-off to the next
// local worker's lane or the port. It returns its unflushed
// out-buffers for the coordinator's final collection.
func runDistWorkerMesh(mc *meshMachine, w int, md *factor.Model, lr *localRatings,
	schedule sched.Schedule, cfg train.Config, counter *train.Counter,
	stop *atomic.Bool, r *rng.Source, fo *failoverRuntime) [][]*distToken {

	gw := mc.id*mc.workers + w // global worker id (counter shard)
	hp := newHotPath(md, schedule, cfg)
	straggler := gw == 0 && cfg.Straggle > 1
	port := mc.port()
	threshold := meshFlushThreshold(md.N, cfg.Machines*mc.workers)

	var in [meshBlock]*distToken
	out := make([][]*distToken, port+1)
	for d := range out {
		out[d] = make([]*distToken, 0, 2*meshBlock)
	}
	flush := func(d int) bool {
		if len(out[d]) == 0 {
			return false
		}
		acc := mc.mesh.SendBatch(w, d, out[d])
		if acc == 0 {
			return false
		}
		rest := copy(out[d], out[d][acc:])
		for i := rest; i < len(out[d]); i++ {
			out[d][i] = nil // release for GC
		}
		out[d] = out[d][:rest]
		return true
	}

	var idle idleBackoff
	var batch int64
	var respSeen uint64
	var extras []*localRatings // fostered shards this worker trains beyond its own
	for !stop.Load() && !fo.machineGone(mc.id) {
		if fo.drainingMachine(mc.id) {
			// Graceful leave: stop training and forward everything this
			// worker holds — inbound lane tokens and unflushed hand-off
			// buffers alike — to the port, visit plans cancelled. The idle
			// flag is published only after the buffers are demonstrably
			// empty, so the sender's quiesce check cannot miss a token
			// between stations.
			fo.setDrainIdle(mc.id, w, false)
			k := mc.mesh.RecvBatch(w, in[:])
			for i := 0; i < k; i++ {
				tok := in[i]
				in[i] = nil
				tok.visits = tok.visits[:0]
				out[port] = append(out[port], tok)
			}
			for d := 0; d < port; d++ {
				for i, tok := range out[d] {
					tok.visits = tok.visits[:0]
					out[port] = append(out[port], tok)
					out[d][i] = nil
				}
				out[d] = out[d][:0]
			}
			flush(port)
			if k == 0 && len(out[port]) == 0 {
				fo.setDrainIdle(mc.id, w, true)
				idle.wait()
			}
			continue
		}
		k := mc.mesh.RecvBatch(w, in[:])
		if k == 0 {
			moved := false
			for d := 0; d <= port; d++ {
				if flush(d) {
					moved = true
				}
			}
			if moved {
				idle.reset()
			} else {
				idle.wait()
			}
			continue
		}
		idle.reset()
		for i := 0; i < k; i++ {
			tok := in[i]
			in[i] = nil

			j := int(tok.tok.Item)
			usersJ, vals, counts := lr.itemRatings(j)
			var began time.Time
			if straggler {
				began = time.Now()
			}
			// The vector travels with the token; itemSGDVec updates it
			// and mirrors the result into the model (owner write-back so
			// progress monitoring sees current hⱼ).
			hp.itemSGDVec(j, usersJ, vals, counts, tok.tok.Vec)
			if straggler && len(usersJ) > 0 && !stop.Load() {
				time.Sleep(time.Duration(float64(time.Since(began)) * (cfg.Straggle - 1)))
			}
			batch += int64(len(usersJ))
			if fo != nil {
				// The responsibility table may name this worker for shards
				// beyond its own: a latent spare's fostered users, or a
				// dead machine's users remapped here by failover. Train
				// those shards' ratings of item j too.
				if g := fo.respGeneration(); g != respSeen {
					respSeen = g
					extras = fo.extraShards(gw, extras)
				}
				for _, ex := range extras {
					au, av, ac := ex.itemRatings(j)
					if len(au) > 0 {
						hp.itemSGDVec(j, au, av, ac, tok.tok.Vec)
						batch += int64(len(au))
					}
				}
			}
			if batch >= 256 {
				counter.Add(gw, batch)
				batch = 0
				// Worker-side budget check; see runSharedWorker.
				if counter.Total() >= cfg.MaxUpdates {
					stop.Store(true)
				}
			}
			dst := port
			if len(tok.visits) > 0 {
				dst = int(tok.visits[0])
				tok.visits = tok.visits[1:]
			}
			out[dst] = append(out[dst], tok)
			if len(out[dst]) >= threshold {
				flush(dst)
			}
		}
	}
	counter.Add(gw, batch)

	// Final flush; leftovers go back to the coordinator.
	for d := 0; d <= port; d++ {
		flush(d)
	}
	return out
}

// runMeshSender drains the machine's port row in blocks, batching
// tokens per destination machine (§3.5) and flushing opportunistically
// whenever the row runs dry so tokens never linger under low traffic.
// On exit it ends the machine's outbound stream so peers' receivers
// know the drain is complete.
func runMeshSender(mc *meshMachine, link cluster.Link, cfg train.Config, r *rng.Source,
	hooks *train.Hooks, workersDone *atomic.Bool, fo *failoverRuntime) {

	s := cluster.NewSender(link, cfg.BatchSize, mc.queueLen)
	pick := fo.wrapPick(machinePicker(mc.id, link.Machines(), cfg.LoadBalance, mc.lastKnown, r, hooks))
	cmds := fo.sendCmds(mc.id) // nil (never ready) without failover
	port := mc.port()
	add := func(tok *distToken) {
		// A scale-out rebalance takes priority: while this machine owes
		// the latest joiner tokens, route them there instead of picking.
		d := fo.donationDest(mc.id)
		if d < 0 {
			d = pick()
		}
		if fo != nil {
			// The token is leaving this machine: clear its ownership bit
			// before it becomes observable anywhere else.
			fo.noteSent(mc.id, d, tok.tok.Item)
		}
		// Add copies the vector into the batch arena, so the token
		// itself goes straight back to the receive-side pool.
		s.Add(d, tok.tok)
		mc.pool.put(tok)
	}
	var buf [meshBlock]*distToken
	// drainAll is the scale-in hand-off: stream every token still on
	// this machine to dest (the ring buddy) until it is demonstrably
	// empty. The quiesce check reads the stations in token-flow order —
	// receiver pending, mesh lanes, worker idle flags, then one final
	// port sweep — so a token in flight downstream of one read is
	// always caught by a later one (tokens only move downstream; no new
	// ones arrive, the peers are parked).
	drainAll := func(dest int) {
		fwd := func(tok *distToken) {
			fo.noteSent(mc.id, dest, tok.tok.Item)
			s.Add(dest, tok.tok)
			mc.pool.put(tok)
		}
		for {
			if fo.isStopping() || fo.dead[mc.id].Load() {
				return // killed or torn down mid-drain: hand over to evict/teardown
			}
			k := mc.mesh.RecvBatch(port, buf[:])
			for i := 0; i < k; i++ {
				fwd(buf[i])
				buf[i] = nil
			}
			if k > 0 {
				continue
			}
			if mc.pendingN.Load() == 0 && mc.queueLen() == 0 && fo.drainIdleAll(mc.id) {
				if k := mc.mesh.RecvBatch(port, buf[:]); k > 0 {
					for i := 0; i < k; i++ {
						fwd(buf[i])
						buf[i] = nil
					}
					continue
				}
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	var idle idleBackoff
	for {
		if fo.machineGone(mc.id) {
			// A killed (or fully drained) machine's sender winds down like
			// a crashed process: nothing pending is flushed (a victim's
			// tokens are exactly what failover regenerates; a leaver's are
			// already streamed out) and the outbound stream just ends.
			link.CloseSend() //nolint:errcheck // aborted transport: best-effort
			return
		}
		select {
		case cmd := <-cmds:
			fo.runSenderCmd(mc.id, cmd, s, pick, drainAll)
			continue
		default:
		}
		k := mc.mesh.RecvBatch(port, buf[:])
		if k == 0 {
			// Row dry: push out partial batches, then back off.
			s.FlushAll() //nolint:errcheck // link failure surfaces via link.Err
			if workersDone.Load() {
				// All workers have exited and flushed; one final sweep
				// cannot race a producer, so the row is drained for good.
				for {
					k := mc.mesh.RecvBatch(port, buf[:])
					if k == 0 {
						break
					}
					for i := 0; i < k; i++ {
						add(buf[i])
						buf[i] = nil
					}
				}
				s.Close() //nolint:errcheck
				return
			}
			idle.wait()
			continue
		}
		idle.reset()
		for i := 0; i < k; i++ {
			add(buf[i])
			buf[i] = nil
		}
	}
}

// runMeshReceiver unpacks inbound token batches, records queue-length
// gossip and starts each token's local circulation through the mesh.
// Each token's vector is copied out of the arena-backed batch into a
// recycled distToken, then the arena is released back to the link's
// pool. It runs until every peer has ended its stream (or the link
// fails).
func runMeshReceiver(mc *meshMachine, link cluster.Link, cfg train.Config, r *rng.Source, fo *failoverRuntime) {
	scratch := make([]int, mc.workers)
	deliver := func(t cluster.Token) {
		deliverMeshLocal(mc, mc.pool.fromInbound(t, cfg.K), cfg.Circulate, r, scratch)
	}
	cmds := fo.recvCmds(mc.id) // nil (never ready) without failover
	recv := link.Recv()
	for {
		select {
		case cmd := <-cmds:
			fo.handleRecvCmd(mc.id, cmd, deliver)
		case inb, ok := <-recv:
			if !ok {
				// A late injection racing teardown must still land.
				fo.drainRecvCmds(mc.id, deliver)
				return
			}
			if fo != nil && !fo.acceptBatch(mc.id, inb.From) {
				// Dead self or evicted source: discard, but keep draining —
				// a stalled receive channel wedges the transport.
				if mc.pool != nil {
					inb.Batch.Release()
				}
				continue
			}
			mc.lastKnown[inb.From].Store(int64(inb.Batch.QueueLen))
			mc.retryPending()
			if fo != nil {
				// Ownership bits are set before any token can reach a
				// worker lane (and hence the sender, which clears them).
				fo.beforeDeliver(mc.id, inb.Batch.Tokens)
			}
			for _, t := range inb.Batch.Tokens {
				deliver(t)
			}
			if fo != nil {
				fo.afterDeliver(mc.id, inb.From, inb.Batch.Tokens, link)
			}
			if mc.pool != nil {
				// Copied out above; reference wire retains the vectors, so
				// only the pooled path may recycle the arena.
				inb.Batch.Release()
			}
		}
	}
}
