package core

import (
	"context"
	"testing"

	"nomad/internal/dataset"
	"nomad/internal/netsim"
	"nomad/internal/partition"
	"nomad/internal/sparse"
	"nomad/internal/train"
)

// testData builds a small, learnable synthetic dataset.
func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	spec := dataset.Spec{
		Name: "test", Rows: 300, Cols: 60, NNZ: 8000,
		RowSkew: 0.8, ColSkew: 0.8, TrueRank: 4, NoiseSD: 0.1,
		TestFrac: 0.15, Seed: 7,
	}
	ds, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig() train.Config {
	return train.Config{
		K: 8, Lambda: 0.02, Alpha: 0.08, Beta: 0.01,
		Workers: 1, Machines: 1, Epochs: 20, EvalPoints: 5, Seed: 3,
	}
}

func runNomad(t testing.TB, ds *dataset.Dataset, cfg train.Config) *train.Result {
	t.Helper()
	res, err := New().Train(context.Background(), ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireConverged asserts the run improved markedly over its first
// trace sample and reached a sane absolute level for this dataset.
func requireConverged(t *testing.T, res *train.Result) {
	t.Helper()
	tr := res.Trace
	if len(tr.Points) < 2 {
		t.Fatalf("trace too short: %d points", len(tr.Points))
	}
	first, final := tr.Points[0].RMSE, tr.Final().RMSE
	if final > 0.6 {
		t.Errorf("final RMSE %.4f too high (first sample %.4f)", final, first)
	}
	if final >= first {
		t.Errorf("no improvement: first %.4f, final %.4f", first, final)
	}
}

func TestSharedSingleWorkerConverges(t *testing.T) {
	ds := testData(t)
	res := runNomad(t, ds, baseConfig())
	requireConverged(t, res)
	if res.Updates < int64(ds.Train.NNZ()) {
		t.Errorf("only %d updates for %d ratings", res.Updates, ds.Train.NNZ())
	}
	if res.BytesSent != 0 {
		t.Errorf("shared-memory run reported %d network bytes", res.BytesSent)
	}
}

func TestSharedMultiWorkerConverges(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Workers = 4
	res := runNomad(t, ds, cfg)
	requireConverged(t, res)
}

func TestSharedLoadBalanceConverges(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Workers = 4
	cfg.LoadBalance = true
	requireConverged(t, runNomad(t, ds, cfg))
}

func TestSharedAllQueueKinds(t *testing.T) {
	ds := testData(t)
	for _, kind := range allKinds {
		cfg := baseConfig()
		cfg.Workers = 2
		cfg.Epochs = 6
		cfg.QueueKind = kind
		res := runNomad(t, ds, cfg)
		if res.Updates == 0 {
			t.Errorf("queue kind %v: no updates", kind)
		}
	}
}

func TestUpdatesRespectCap(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Workers = 2
	cfg.Epochs = 0
	cfg.MaxUpdates = 5000
	res := runNomad(t, ds, cfg)
	// The stop is asynchronous: workers keep updating while the monitor
	// notices the crossed threshold (and may be mid-evaluation), so the
	// count overshoots. The guarantees are (a) at least the requested
	// work happened and (b) the run ended promptly rather than running
	// unbounded (Epochs=0 means nothing else would stop it).
	if res.Updates < 5000 {
		t.Errorf("stopped at %d updates, below cap 5000", res.Updates)
	}
	if res.Elapsed.Seconds() > 5 {
		t.Errorf("run did not stop promptly: %v elapsed", res.Elapsed)
	}
}

func TestDistributedConverges(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Machines = 2
	cfg.Workers = 2
	cfg.Profile = netsim.Instant()
	res := runNomad(t, ds, cfg)
	requireConverged(t, res)
	if res.MessagesSent == 0 || res.BytesSent == 0 {
		t.Error("distributed run sent no network traffic")
	}
}

func TestDistributedHPCProfile(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Machines = 2
	cfg.Workers = 1
	cfg.Epochs = 8
	cfg.Profile = netsim.HPC()
	requireConverged(t, runNomad(t, ds, cfg))
}

func TestDistributedLoadBalance(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Machines = 3
	cfg.Workers = 1
	cfg.Epochs = 8
	cfg.LoadBalance = true
	requireConverged(t, runNomad(t, ds, cfg))
}

func TestDistributedCirculateTwice(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Machines = 2
	cfg.Workers = 2
	cfg.Epochs = 8
	cfg.Circulate = 2
	requireConverged(t, runNomad(t, ds, cfg))
}

func TestDistributedSmallBatch(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Machines = 2
	cfg.Workers = 1
	cfg.Epochs = 5
	cfg.BatchSize = 1
	res := runNomad(t, ds, cfg)
	// With batch size 1, message count must be at least token moves.
	if res.MessagesSent < 10 {
		t.Errorf("suspiciously few messages: %d", res.MessagesSent)
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Epochs = 0
	cfg.MaxUpdates = 1 << 60
	cfg.Deadline = 150 * 1e6 // 150ms in nanoseconds
	res := runNomad(t, ds, cfg)
	if res.Elapsed.Seconds() > 5 {
		t.Errorf("deadline ignored: ran %v", res.Elapsed)
	}
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	if _, err := New().Train(context.Background(), nil, baseConfig(), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestLocalRatingsPartition(t *testing.T) {
	ds := testData(t)
	p := 4
	users := partition.EqualRanges(ds.Rows(), p)
	local := buildLocalRatings(ds.Train, users)

	// Conservation: every rating appears in exactly one worker's store.
	total := 0
	for _, lr := range local {
		total += lr.nnz()
	}
	if total != ds.Train.NNZ() {
		t.Fatalf("local stores hold %d ratings, train has %d", total, ds.Train.NNZ())
	}

	// Ownership: each stored rating's user belongs to that worker, and
	// the value matches the training matrix.
	for q, lr := range local {
		for j := 0; j < ds.Cols(); j++ {
			usersJ, vals, _ := lr.itemRatings(j)
			for x, u := range usersJ {
				if users.Owner(int(u)) != q {
					t.Fatalf("worker %d stores rating of user %d owned by %d", q, u, users.Owner(int(u)))
				}
				want, ok := ds.Train.At(int(u), j)
				if !ok || want != vals[x] {
					t.Fatalf("rating (%d,%d) mismatch: %v vs %v (ok=%v)", u, j, vals[x], want, ok)
				}
			}
		}
	}
}

func TestLocalRatingsSingleWorkerMatchesCSC(t *testing.T) {
	b := sparse.NewBuilder(4, 3, 0)
	b.Add(0, 0, 1)
	b.Add(1, 0, 2)
	b.Add(2, 1, 3)
	b.Add(3, 2, 4)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	local := buildLocalRatings(m, partition.EqualRanges(4, 1))
	if len(local) != 1 || local[0].nnz() != 4 {
		t.Fatalf("unexpected local store: %d stores", len(local))
	}
	usersJ, vals, _ := local[0].itemRatings(0)
	if len(usersJ) != 2 || usersJ[0] != 0 || usersJ[1] != 1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("item 0 local ratings wrong: %v %v", usersJ, vals)
	}
}

func TestMoreWorkersStillCountUpdates(t *testing.T) {
	// Degenerate: more workers than items. Tokens are scarce; the run
	// must still terminate and count updates.
	ds := testData(t)
	cfg := baseConfig()
	cfg.Workers = 8
	cfg.Epochs = 2
	res := runNomad(t, ds, cfg)
	if res.Updates == 0 {
		t.Fatal("no updates with worker oversubscription")
	}
}
