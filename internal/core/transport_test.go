package core

import (
	"context"
	"testing"

	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/train"
)

// allKinds is every selectable transport, including the auto default.
var allKinds = []queue.Kind{
	queue.KindAuto, queue.KindSPSC, queue.KindMutex, queue.KindLockFree, queue.KindChan,
}

// assertOwnershipMap checks the checkpointed token-ownership map holds
// every item exactly once — the no-loss/no-duplication half of NOMAD's
// serializability discipline that the in-run drain also enforces.
func assertOwnershipMap(t *testing.T, label string, res *train.Result, n int) {
	t.Helper()
	if res.Final == nil {
		t.Fatalf("%s: no final state", label)
	}
	seen := make([]bool, n)
	parked := 0
	for _, items := range res.Final.Queues {
		for _, j := range items {
			if j < 0 || int(j) >= n {
				t.Fatalf("%s: parked token %d out of range [0,%d)", label, j, n)
			}
			if seen[j] {
				t.Fatalf("%s: token %d parked twice", label, j)
			}
			seen[j] = true
			parked++
		}
	}
	if parked != n {
		t.Fatalf("%s: %d tokens parked for %d items", label, parked, n)
	}
}

// TestTokenConservationRandomizedStop is the transport property test:
// for every kind, with load balancing both off and on, stop runs at
// randomized update budgets — so workers are interrupted at arbitrary
// points with tokens in rings, out-buffers and in-flight blocks — and
// demand an exact ownership map every time.
func TestTokenConservationRandomizedStop(t *testing.T) {
	ds := testData(t)
	n := ds.Cols()
	r := rng.New(99)
	for _, kind := range allKinds {
		for _, lb := range []bool{false, true} {
			for rep := 0; rep < 3; rep++ {
				cfg := baseConfig()
				cfg.Workers = 3
				cfg.QueueKind = kind
				cfg.LoadBalance = lb
				cfg.Epochs = 0
				cfg.MaxUpdates = 1000 + int64(r.Intn(20000))
				label := kind.String()
				if lb {
					label += "+lb"
				}
				res, err := New().Train(context.Background(), ds, cfg, nil)
				if err != nil {
					t.Fatalf("%s rep %d (budget %d): %v", label, rep, cfg.MaxUpdates, err)
				}
				assertOwnershipMap(t, label, res, n)
			}
		}
	}
}

// TestMeshTokenConservationDistributed covers the same invariant on
// the distributed mesh runner, where conservation is checked by the
// fold-into-model collection (an error return on violation).
func TestMeshTokenConservationDistributed(t *testing.T) {
	ds := testData(t)
	for _, lb := range []bool{false, true} {
		cfg := baseConfig()
		cfg.Machines = 2
		cfg.Workers = 2
		cfg.QueueKind = queue.KindSPSC
		cfg.LoadBalance = lb
		cfg.Epochs = 0
		cfg.MaxUpdates = 7000
		res, err := New().Train(context.Background(), ds, cfg, nil)
		if err != nil {
			t.Fatalf("lb=%v: %v", lb, err)
		}
		if res.Updates < cfg.MaxUpdates {
			t.Errorf("lb=%v: stopped at %d updates, below budget", lb, res.Updates)
		}
	}
}

// TestMeshSingleWorkerDeterministic: two identical single-worker runs
// on the batched transport must produce byte-identical models and the
// same parked-token order — the determinism that checkpoint/resume
// bit-compatibility is built on.
func TestMeshSingleWorkerDeterministic(t *testing.T) {
	ds := testData(t)
	run := func() *train.Result {
		cfg := baseConfig()
		cfg.QueueKind = queue.KindSPSC
		cfg.Epochs = 3
		return runNomad(t, ds, cfg)
	}
	a, b := run(), run()
	if a.Updates != b.Updates {
		t.Fatalf("update counts diverge: %d vs %d", a.Updates, b.Updates)
	}
	am, bm := a.Model.HData(), b.Model.HData()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("item factors diverge at %d: %v vs %v", i, am[i], bm[i])
		}
	}
	qa, qb := a.Final.Queues, b.Final.Queues
	if len(qa) != 1 || len(qb) != 1 || len(qa[0]) != len(qb[0]) {
		t.Fatalf("parked queue shapes diverge: %d/%d", len(qa[0]), len(qb[0]))
	}
	for i := range qa[0] {
		if qa[0][i] != qb[0][i] {
			t.Fatalf("parked token order diverges at %d: %d vs %d", i, qa[0][i], qb[0][i])
		}
	}
}

// TestMeshResumeRestoresOwnership: a mesh checkpoint with more tokens
// than one lane holds must still restore without loss (overflow goes
// through the worker's preload buffer).
func TestMeshRestoreOverflow(t *testing.T) {
	n := 2000
	mesh := queue.NewMesh[sharedToken](2, 8) // lane capacity 8 ≪ n/2
	preload := make([][]sharedToken, 2)
	saved := make([][]int32, 2)
	for j := 0; j < n; j++ {
		saved[j%2] = append(saved[j%2], int32(j))
	}
	if err := restoreMesh(mesh, preload, saved, n, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	got := 0
	for q := 0; q < 2; q++ {
		mesh.Drain(q, func(sharedToken) { got++ })
		got += len(preload[q])
	}
	if got != n {
		t.Fatalf("restored %d tokens, want %d", got, n)
	}
	// Duplicate detection must survive the overflow path too.
	saved[0][0] = saved[1][0]
	if err := restoreMesh(queue.NewMesh[sharedToken](2, 8), make([][]sharedToken, 2), saved, n, rng.New(1)); err == nil {
		t.Fatal("duplicate parked token accepted")
	}
}
