package core

// Checkpoint plumbing for NOMAD: translating between the run's
// worker-local layout (per-worker item-grouped rating stores, parked
// token queues, split RNG streams) and the flat, layout-independent
// train.State a checkpoint carries.

import (
	"fmt"

	"nomad/internal/partition"
	"nomad/internal/queue"
	"nomad/internal/rng"
	"nomad/internal/sparse"
)

// exportCounts flattens the per-worker, per-rating update counts into
// the training matrix's canonical CSC entry order. Worker-local stores
// are built by one CSC traversal (buildLocalRatings), so replaying
// that traversal visits each worker's array exactly in storage order.
func exportCounts(tr *sparse.Matrix, users *partition.Partition, local []*localRatings) []int32 {
	out := make([]int32, 0, tr.NNZ())
	cur := make([]int32, len(local))
	for j := 0; j < tr.Cols(); j++ {
		rows, _ := tr.Col(j)
		for _, i := range rows {
			q := users.Owner(int(i))
			out = append(out, local[q].counts[cur[q]])
			cur[q]++
		}
	}
	return out
}

// importCounts is the inverse of exportCounts: it scatters canonical
// CSC-ordered counts back into the freshly built worker-local stores.
func importCounts(tr *sparse.Matrix, users *partition.Partition, local []*localRatings, counts []int32) {
	cur := make([]int32, len(local))
	x := 0
	for j := 0; j < tr.Cols(); j++ {
		rows, _ := tr.Col(j)
		for _, i := range rows {
			q := users.Owner(int(i))
			local[q].counts[cur[q]] = counts[x]
			cur[q]++
			x++
		}
	}
}

// forEachParked walks a checkpoint's token-ownership map in pop order,
// calling park(worker, item) per token. Every item must appear exactly
// once — a duplicate would put one item row in two workers' hands and
// break the single-owner discipline that makes NOMAD race-free, so it
// is rejected up front, as are out-of-range indices and short maps.
func forEachParked(saved [][]int32, n int, park func(qi int, item int32)) error {
	seen := make([]bool, n)
	parked := 0
	for qi, items := range saved {
		for _, j := range items {
			if int(j) < 0 || int(j) >= n {
				return fmt.Errorf("core: checkpoint token %d out of range [0,%d)", j, n)
			}
			if seen[j] {
				return fmt.Errorf("core: checkpoint parks item token %d twice", j)
			}
			seen[j] = true
			park(qi, j)
			parked++
		}
	}
	if parked != n {
		return fmt.Errorf("core: checkpoint holds %d tokens for %d items", parked, n)
	}
	return nil
}

// restoreQueues reloads the checkpointed token-ownership map: each
// worker queue gets its parked tokens back in pop order. When the map
// is missing (distributed checkpoints fold tokens into the model) or
// was taken with a different worker count, all n tokens are scattered
// uniformly instead.
func restoreQueues(queues []queue.Queue[sharedToken], saved [][]int32, n int, root *rng.Source) error {
	if len(saved) != len(queues) {
		for j := 0; j < n; j++ {
			queues[root.Intn(len(queues))].Push(sharedToken{item: int32(j)})
		}
		return nil
	}
	return forEachParked(saved, n, func(qi int, item int32) {
		queues[qi].Push(sharedToken{item: item})
	})
}

// restoreMesh is restoreQueues for the batched SPSC transport: worker
// qi's parked tokens refill its self lane in pop order; tokens beyond
// the lane's capacity preload the worker's self-destination out-buffer,
// which the worker flushes behind the lane's content — preserving the
// logical queue order that makes single-worker resume bit-compatible.
func restoreMesh(mesh *queue.Mesh[sharedToken], preload [][]sharedToken, saved [][]int32, n int, root *rng.Source) error {
	p := mesh.P()
	if len(saved) != p {
		for j := 0; j < n; j++ {
			dst := root.Intn(p)
			if !mesh.Send(j%p, dst, sharedToken{item: int32(j)}) {
				preload[dst] = append(preload[dst], sharedToken{item: int32(j)})
			}
		}
		return nil
	}
	return forEachParked(saved, n, func(qi int, item int32) {
		if !mesh.Send(qi, qi, sharedToken{item: item}) {
			preload[qi] = append(preload[qi], sharedToken{item: item})
		}
	})
}
