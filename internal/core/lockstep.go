package core

// The deterministic lockstep runner for distributed NOMAD. Machines
// still exchange nomadic (j, hⱼ) tokens over a cluster.Link, but in
// synchronized rounds: each machine processes its whole token queue
// (circulating every token through its W local workers in a fixed
// order), ships the processed tokens to uniformly chosen peers, marks
// the round's end, and merges the peers' deliveries in rank order.
// The coordinator (rank 0) sums the per-machine update counts carried
// on the round-end markers and decides stop at round boundaries.
//
// The point of the mode is bitwise determinism: for a given (dataset,
// seed, machines, workers) the result is identical whatever the
// backend — the in-process simulated network, a TCP loopback mesh, or
// one process per machine on a real network — because every float
// operation happens in the same order everywhere. That is the property
// the cross-backend CI parity check (RMSE equality between a
// single-process run and a 1-coordinator + N-worker run) rests on. The
// cost is the asynchronous compute/communication overlap the paper
// advocates, so lockstep is a verification harness, not the fast path.
//
// On an in-order link (TCP, or netsim's instant profile — the sim
// backend is pinned to it here) per-peer FIFO guarantees that a
// round's tokens always precede its round-end marker, which is what
// makes the round merge, the stop decision and the teardown drain
// exact: at stop, every token is either in a machine's queue or in a
// fold shipment to the coordinator, never in flight. The coordinator
// gathers the folded item rows, each machine's user rows and step
// counts, verifies that exactly n tokens were recovered, and owns the
// full model and the resumable state.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netlink"
	"nomad/internal/netsim"
	"nomad/internal/partition"
	"nomad/internal/rng"
	"nomad/internal/sparse"
	"nomad/internal/train"
)

// Lockstep control-plane frame kinds.
const (
	ctlRoundEnd  uint8 = 1 // round uint32 | cumulative local updates int64
	ctlDirective uint8 = 2 // round uint32 | stop uint8 | global total int64
	ctlFold      uint8 = 3 // folded tokens int64 | cumulative local updates int64
	ctlCounts    uint8 = 4 // count uint64 | count × int32 step counts (global CSC order restricted to the sender's users)
	ctlUserRows  uint8 = 5 // k uint32 | rows uint32 | rows × (user int32 + k × float64)
	ctlAbort     uint8 = 6 // reason bytes; cascades, every rank returns an error
)

// foldRound tags post-stop fold shipments to the coordinator, which
// folds every arriving token regardless of tag.
const foldRound = ^uint32(0)

// lockstepOwner derives the initial item→machine ownership map. It is
// a pure function of (seed, machines), so every process of a cluster
// computes the same map — the coordinator still broadcasts it in the
// Welcome as the source of truth.
func lockstepOwner(seed uint64, n, machines int) []int32 {
	r := rng.New(seed).Split(7000 + uint64(machines))
	owner := make([]int32, n)
	for j := range owner {
		owner[j] = int32(r.Intn(machines))
	}
	return owner
}

// routeStream derives this rank's token-routing stream. Every rank
// derives all streams in the same order off the (restored) root, so
// the derivation itself is identical across processes.
func routeStream(root *rng.Source, machines, rank int) *rng.Source {
	var mine *rng.Source
	for r := 0; r < machines; r++ {
		s := root.Split(8000 + uint64(r))
		if r == rank {
			mine = s
		}
	}
	return mine
}

// lockDirective is a decoded stop/continue decision from rank 0.
type lockDirective struct {
	round uint32
	stop  bool
	total int64
}

// abortError is a deliberate cluster abort (a cancelled worker), as
// opposed to a transport failure.
type abortError struct {
	from   int
	reason string
}

func (e *abortError) Error() string {
	return fmt.Sprintf("core: machine %d aborted the lockstep run: %s", e.from, e.reason)
}

// lockCollector owns one rank's inbound streams during the round loop.
// Every lockstep token batch carries its round number (in the
// TokenBatch gossip slot, unused in this mode), so tokens are binned
// by round tag — never by arrival interleaving, which the two inbound
// channels do not define an order across. A round is complete when
// every peer's round-end marker for it has arrived.
type lockCollector struct {
	link cluster.Link
	rank int

	// The channels are kept here so a closed one can be nilled out:
	// they close together, but the buffered frames drain at different
	// speeds, and a round-end or directive may still be pending in ctl
	// after recv runs dry (e.g. at the final round, once every peer has
	// already ended its stream). Only both-exhausted is fatal.
	recvCh <-chan cluster.Inbound
	ctlCh  <-chan cluster.Ctl

	byRound []map[uint32][]cluster.Token // per peer: round tag → tokens
	ends    []uint32                     // per peer: round-end markers seen
	cums    [][]int64                    // per peer: update totals, one per round-end
	dirs    []lockDirective              // directives from rank 0, FIFO
}

func newLockCollector(link cluster.Link) *lockCollector {
	m := link.Machines()
	c := &lockCollector{
		link:    link,
		rank:    link.Rank(),
		recvCh:  link.Recv(),
		ctlCh:   link.Ctl(),
		byRound: make([]map[uint32][]cluster.Token, m),
		ends:    make([]uint32, m),
		cums:    make([][]int64, m),
	}
	for r := range c.byRound {
		c.byRound[r] = make(map[uint32][]cluster.Token)
	}
	return c
}

// pump blocks for one inbound event and files it. It returns an error
// when a peer aborts the run, or when both inbound streams are
// exhausted with the caller still waiting.
func (c *lockCollector) pump() error {
	if c.recvCh == nil && c.ctlCh == nil {
		return c.deadErr()
	}
	select {
	case inb, ok := <-c.recvCh:
		if !ok {
			c.recvCh = nil // keep draining ctl
			return nil
		}
		c.bin(inb)
	case ct, ok := <-c.ctlCh:
		if !ok {
			c.ctlCh = nil // keep draining recv
			return nil
		}
		switch ct.Kind {
		case ctlRoundEnd:
			if len(ct.Payload) < 12 {
				return fmt.Errorf("core: short round-end frame from machine %d", ct.From)
			}
			c.ends[ct.From]++
			c.cums[ct.From] = append(c.cums[ct.From], int64(binary.LittleEndian.Uint64(ct.Payload[4:])))
		case ctlDirective:
			if len(ct.Payload) < 13 {
				return fmt.Errorf("core: short directive frame from machine %d", ct.From)
			}
			c.dirs = append(c.dirs, lockDirective{
				round: binary.LittleEndian.Uint32(ct.Payload),
				stop:  ct.Payload[4] != 0,
				total: int64(binary.LittleEndian.Uint64(ct.Payload[5:])),
			})
		case ctlAbort:
			return &abortError{from: ct.From, reason: string(ct.Payload)}
		default:
			return fmt.Errorf("core: unexpected control frame kind %d from machine %d mid-round", ct.Kind, ct.From)
		}
	}
	return nil
}

// bin files one delivered batch under its round tag. Inbound batches
// are arena-backed and recycled on Release, so a bin that outlives
// this call deep-copies the vectors it keeps.
func (c *lockCollector) bin(inb cluster.Inbound) {
	round := uint32(inb.Batch.QueueLen)
	c.byRound[inb.From][round] = appendTokenCopies(c.byRound[inb.From][round], inb.Batch.Tokens)
	inb.Batch.Release()
}

// appendTokenCopies appends deep copies of src's tokens — vectors
// included — onto dst.
func appendTokenCopies(dst []cluster.Token, src []cluster.Token) []cluster.Token {
	for _, t := range src {
		vec := make([]float64, len(t.Vec))
		copy(vec, t.Vec)
		dst = append(dst, cluster.Token{Item: t.Item, Vec: vec})
	}
	return dst
}

func (c *lockCollector) deadErr() error {
	if err := c.link.Err(); err != nil {
		return err
	}
	return fmt.Errorf("core: cluster link closed mid-round")
}

// collectRound waits until every peer has marked the given round's
// end, then returns the merged tokens (peers in rank order — the
// determinism anchor) and each peer's reported cumulative updates. A
// peer's round-end follows its last token batch for that round on the
// same connection, so once it arrives the round's tokens are either
// already binned or sitting earlier in the inbound buffer; the bin
// read below happens after both.
func (c *lockCollector) collectRound(round uint32) ([]cluster.Token, []int64, error) {
	for {
		ready := true
		for r := range c.ends {
			if r != c.rank && c.ends[r] <= round {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		if err := c.pump(); err != nil {
			return nil, nil, err
		}
	}
	// One more sweep of whatever is already buffered, so a round-end
	// popped ahead of its tokens (the two channels race) cannot leave
	// them behind: their batches were necessarily delivered first.
	if err := c.drainBuffered(); err != nil {
		return nil, nil, err
	}
	var tokens []cluster.Token
	cums := make([]int64, len(c.ends))
	for r := range c.ends {
		if r == c.rank {
			continue
		}
		tokens = append(tokens, c.byRound[r][round]...)
		delete(c.byRound[r], round)
		cums[r] = c.cums[r][0]
		c.cums[r] = c.cums[r][1:]
	}
	return tokens, cums, nil
}

// drainBuffered files every already-delivered inbound batch without
// blocking. A closed stream is not an error here: its buffered frames
// have by definition all been read.
func (c *lockCollector) drainBuffered() error {
	for c.recvCh != nil {
		select {
		case inb, ok := <-c.recvCh:
			if !ok {
				c.recvCh = nil
				return nil
			}
			c.bin(inb)
		default:
			return nil
		}
	}
	return nil
}

// awaitDirective blocks until rank 0's decision for the given round.
func (c *lockCollector) awaitDirective(round uint32) (lockDirective, error) {
	for len(c.dirs) == 0 {
		if err := c.pump(); err != nil {
			return lockDirective{}, err
		}
	}
	d := c.dirs[0]
	c.dirs = c.dirs[1:]
	if d.round != round {
		return lockDirective{}, fmt.Errorf("core: directive for round %d while finishing round %d", d.round, round)
	}
	return d, nil
}

// residual returns every token still binned — non-empty only if a
// stream ended mid-round, but folded anyway so token conservation
// never depends on timing.
func (c *lockCollector) residual() []cluster.Token {
	var out []cluster.Token
	for r := range c.byRound {
		for _, toks := range c.byRound[r] {
			out = append(out, toks...)
		}
	}
	return out
}

// sendAbort broadcasts a cluster abort; best effort by design (the
// link may already be failing).
func sendAbort(link cluster.Link, reason string) {
	link.SendCtl(-1, ctlAbort, []byte(reason)) //nolint:errcheck
}

// shipTokens sends a queue of tokens to dst in §3.5-sized batches,
// each tagged with the round it belongs to (the gossip slot is unused
// in lockstep mode).
func shipTokens(link cluster.Link, dst int, tokens []cluster.Token, batchSize int, round uint32) error {
	for len(tokens) > 0 {
		n := min(len(tokens), batchSize)
		if err := link.Send(dst, cluster.TokenBatch{Tokens: tokens[:n], QueueLen: int(round)}); err != nil {
			return err
		}
		tokens = tokens[n:]
	}
	return nil
}

// trainLockstep runs the deterministic round-based distributed mode in
// one process: cfg.Machines lockstep machines over sim or TCP-loopback
// links. Each machine owns a full private model copy (the determinism
// contract is "one machine's memory per machine", whatever the process
// layout), so memory scales with Machines — fine for the verification
// datasets this mode exists for. The rank-0 result, with the gathered
// model, is the run's result.
func trainLockstep(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	linkCfg := cfg
	if cfg.Backend == "" || cfg.Backend == "sim" {
		// Lockstep's round merge needs per-peer FIFO; netsim's latency
		// timers only guarantee it on the instant profile, and modelled
		// latency has nothing to verify in a determinism harness.
		linkCfg.Profile = netsim.Instant()
	}
	links, err := buildLinks(ctx, ds, linkCfg, hooks, nil)
	if err != nil {
		return nil, err
	}
	owner := lockstepOwner(cfg.Seed, ds.Cols(), cfg.Machines)
	results := make([]*train.Result, cfg.Machines)
	errs := make([]error, cfg.Machines)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Machines; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// In one process the coordinator's stop decision covers
			// cancellation for everyone; worker ranks must not race it
			// with their own abort, so only rank 0 watches ctx.
			mctx := ctx
			if r != 0 {
				mctx = context.Background()
			}
			results[r], errs[r] = lockstepMachine(mctx, links[r], ds, cfg, owner, cfg.Resume, hooks)
		}(r)
	}
	wg.Wait()
	if errs[0] != nil && results[0] == nil {
		return nil, errs[0]
	}
	for r := 1; r < cfg.Machines; r++ {
		if errs[0] == nil && errs[r] != nil {
			return nil, fmt.Errorf("core: lockstep machine %d failed: %w", r, errs[r])
		}
	}
	if results[0] != nil {
		bytesSent, msgsSent := linkTotals(links)
		results[0].BytesSent, results[0].MessagesSent = bytesSent, msgsSent
		hooks.EmitNetwork(train.NetworkEvent{BytesSent: bytesSent, MessagesSent: msgsSent})
	}
	return results[0], errs[0]
}

// trainMultiProcess is one process's share of a real cluster: rank 0
// (the coordinator) listens, assigns ranks and broadcasts the
// ownership map and any resume state; workers join and follow. All of
// them then run the same lockstepMachine.
func trainMultiProcess(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	digest := configDigest(ds, cfg)
	opts := netlinkOptions(cfg, hooks, nil)
	if cfg.Role == "coordinator" {
		owner := lockstepOwner(cfg.Seed, ds.Cols(), cfg.Machines)
		coord, err := netlink.NewCoordinator(cfg.Listen, cfg.Machines, digest, owner, cfg.Resume, opts)
		if err != nil {
			return nil, err
		}
		link, err := coord.Run(ctx)
		if err != nil {
			return nil, err
		}
		defer link.Close()
		return lockstepMachine(ctx, link, ds, cfg, owner, cfg.Resume, hooks)
	}
	link, hs, err := netlink.Join(ctx, cfg.Join, cfg.Listen, digest, opts)
	if err != nil {
		return nil, err
	}
	defer link.Close()
	if len(hs.Owner) != ds.Cols() {
		return nil, fmt.Errorf("core: coordinator ownership map covers %d items, dataset has %d", len(hs.Owner), ds.Cols())
	}
	cfg.Machines = link.Machines()
	return lockstepMachine(ctx, link, ds, cfg, hs.Owner, hs.State, hooks)
}

// lockstepMachine is one machine of a lockstep cluster, whatever the
// process layout. Rank 0 is the coordinator: it decides stop, gathers
// the model and owns the returned trace/state; other ranks return
// their partial model and no resumable state.
func lockstepMachine(ctx context.Context, link cluster.Link, ds *dataset.Dataset, cfg train.Config,
	owner []int32, st *train.State, hooks *train.Hooks) (*train.Result, error) {

	rank, M, W := link.Rank(), link.Machines(), cfg.Workers
	p := M * W
	m, n := ds.Rows(), ds.Cols()
	if err := st.Validate("nomad", m, n, cfg.K); err != nil {
		return nil, err
	}
	users := partitionUsers(ds, cfg, p)
	local := buildLocalRatings(ds.Train, users)
	schedule := cfg.Schedule()

	root := rng.New(cfg.Seed)
	var md *factor.Model
	resumeBase := int64(0)
	if st != nil {
		md = st.Model.Clone() // every rank mutates its own copy
		importCounts(ds.Train, users, local, st.CountsFor(ds.Train.NNZ()))
		st.RestoreStreams(root, nil)
		resumeBase = st.Updates
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
	}
	route := routeStream(root, M, rank)

	// This machine's starting tokens, ascending item order.
	var queue []cluster.Token
	for j := 0; j < n; j++ {
		if int(owner[j]) == rank {
			vec := make([]float64, cfg.K)
			copy(vec, md.ItemRow(j))
			queue = append(queue, cluster.Token{Item: int32(j), Vec: vec})
		}
	}

	hp := make([]hotPath, W)
	lrs := make([]*localRatings, W)
	for w := 0; w < W; w++ {
		hp[w] = newHotPath(md, schedule, cfg)
		lrs[w] = local[rank*W+w]
	}

	var rec *train.Recorder
	var epochSize, epoch int64
	start := time.Now()
	if rank == 0 {
		rec = train.NewRecorderFor(cfg, ds.Test, md, hooks)
		if cfg.Epochs > 0 && cfg.MaxUpdates < math.MaxInt64 {
			epochSize = cfg.MaxUpdates / int64(cfg.Epochs)
		}
		if epochSize > 0 {
			epoch = resumeBase / epochSize
		}
	}

	coll := newLockCollector(link)
	outbox := make([][]cluster.Token, M)
	cum := int64(0)  // this machine's updates this segment
	var total int64  // global updates, known after each directive
	var runErr error // coordinator: ctx error that ended the run
	abort := func(err error) (*train.Result, error) {
		var ab *abortError
		if !errors.As(err, &ab) { // only the origin broadcasts
			sendAbort(link, err.Error())
		}
		link.Close() //nolint:errcheck
		return nil, err
	}

	for round := uint32(0); ; round++ {
		if rank != 0 && ctx.Err() != nil {
			return abort(ctx.Err())
		}
		// Process the whole queue: each token visits the machine's W
		// workers in order, then heads for a uniformly chosen peer.
		for i := range queue {
			tok := queue[i]
			j := int(tok.Item)
			for w := 0; w < W; w++ {
				usersJ, vals, counts := lrs[w].itemRatings(j)
				hp[w].itemSGD(usersJ, vals, counts, tok.Vec)
				cum += int64(len(usersJ))
			}
			dst := rank
			if M > 1 {
				dst = route.Intn(M - 1)
				if dst >= rank {
					dst++
				}
			}
			outbox[dst] = append(outbox[dst], tok)
		}
		queue = queue[:0]

		// Ship, then mark the round's end on every peer. The outbox
		// slices are reusable immediately: Send's boundary rule means
		// every link copies or encodes the batch before returning (the
		// sim backend deep-copies into a pooled arena), so no peer ever
		// holds a reference into this machine's backing arrays.
		for dst := 0; dst < M; dst++ {
			if dst == rank {
				queue = append(queue, outbox[dst]...) // self-routed (M == 1 only)
				outbox[dst] = outbox[dst][:0]
				continue
			}
			if err := shipTokens(link, dst, outbox[dst], cfg.BatchSize, round); err != nil {
				return abort(err)
			}
			outbox[dst] = outbox[dst][:0]
		}
		var end [12]byte
		binary.LittleEndian.PutUint32(end[:], round)
		binary.LittleEndian.PutUint64(end[4:], uint64(cum))
		if err := link.SendCtl(-1, ctlRoundEnd, end[:]); err != nil {
			return abort(err)
		}

		// Merge the peers' deliveries for this round, rank order.
		tokens, cums, err := coll.collectRound(round)
		if err != nil {
			return abort(err)
		}
		queue = append(queue, tokens...)

		// Stop decision: the coordinator sums the round-end counters;
		// everyone else obeys its directive.
		if rank == 0 {
			total = resumeBase + cum
			for r, c := range cums {
				if r != 0 {
					total += c
				}
			}
			for epochSize > 0 && (epoch+1)*epochSize <= total {
				epoch++
				hooks.EmitEpoch(train.EpochEvent{Epoch: int(epoch), Updates: total})
			}
			stop := total >= cfg.MaxUpdates ||
				(cfg.Deadline > 0 && time.Since(start) >= cfg.Deadline) ||
				ctx.Err() != nil
			var dir [13]byte
			binary.LittleEndian.PutUint32(dir[:], round)
			if stop {
				dir[4] = 1
			}
			binary.LittleEndian.PutUint64(dir[5:], uint64(total))
			if err := link.SendCtl(-1, ctlDirective, dir[:]); err != nil {
				return abort(err)
			}
			if stop {
				runErr = ctx.Err()
				break
			}
		} else {
			d, err := coll.awaitDirective(round)
			if err != nil {
				return abort(err)
			}
			if d.stop {
				total = d.total
				break
			}
		}
	}

	// Teardown. Out-of-order residue (impossible on an in-order link)
	// is folded with the queue so conservation never depends on timing.
	queue = append(queue, coll.residual()...)
	if rank != 0 {
		return lockstepWorkerFinish(link, ds, cfg, users, local, md, queue, cum, total, rank, W)
	}
	// The coordinator sends nothing after the stop directive, so it
	// ends its stream up front — the sim backend's network shutdown
	// (and hence every drain) waits on all endpoints, this one included.
	link.CloseSend() //nolint:errcheck
	res, err := lockstepGather(link, ds, cfg, users, local, md, queue, total, W, rec, root)
	if err != nil {
		return nil, err
	}
	return res, runErr
}

// lockstepWorkerFinish ships everything the coordinator needs — the
// fold tokens this machine still holds, its per-rating step counts and
// its user rows — then drains the link until every stream has ended.
func lockstepWorkerFinish(link cluster.Link, ds *dataset.Dataset, cfg train.Config,
	users *partition.Partition, local []*localRatings, md *factor.Model,
	queue []cluster.Token, cum, total int64, rank, W int) (*train.Result, error) {

	if err := shipTokens(link, 0, queue, cfg.BatchSize, foldRound); err != nil {
		return nil, err
	}
	var fold [16]byte
	binary.LittleEndian.PutUint64(fold[:], uint64(int64(len(queue))))
	binary.LittleEndian.PutUint64(fold[8:], uint64(cum))
	if err := link.SendCtl(0, ctlFold, fold[:]); err != nil {
		return nil, err
	}
	counts := exportRankCounts(ds.Train, users, local, rank, W)
	payload := make([]byte, 8+4*len(counts))
	binary.LittleEndian.PutUint64(payload, uint64(len(counts)))
	for i, c := range counts {
		binary.LittleEndian.PutUint32(payload[8+4*i:], uint32(c))
	}
	if err := link.SendCtl(0, ctlCounts, payload); err != nil {
		return nil, err
	}
	if err := sendUserRows(link, users, md, cfg.K, rank, W); err != nil {
		return nil, err
	}
	link.CloseSend() //nolint:errcheck
	// Drain until every peer (the coordinator included) ends its
	// stream; nothing after our fold shipment is addressed to us, but
	// stray batches still carry pooled arenas that want recycling.
	recv, ctl := link.Recv(), link.Ctl()
	for recv != nil || ctl != nil {
		select {
		case inb, ok := <-recv:
			if !ok {
				recv = nil
				continue
			}
			inb.Batch.Release()
		case _, ok := <-ctl:
			if !ok {
				ctl = nil
			}
		}
	}
	link.Close() //nolint:errcheck
	if err := link.Err(); err != nil {
		return nil, err
	}
	st := link.Stats()
	return &train.Result{
		Algorithm:    "nomad",
		Model:        md,
		Updates:      total,
		Elapsed:      0,
		BytesSent:    st.BytesSent,
		MessagesSent: st.MessagesSent,
		// Final deliberately nil: the coordinator owns the gathered
		// model and the resumable state.
	}, nil
}

// sendUserRows ships this rank's user factor rows in chunks.
func sendUserRows(link cluster.Link, users *partition.Partition, md *factor.Model, k, rank, W int) error {
	const rowsPerFrame = 512
	var rows []int32
	for w := 0; w < W; w++ {
		rows = append(rows, users.Part(rank*W+w)...)
	}
	for len(rows) > 0 {
		chunk := rows[:min(len(rows), rowsPerFrame)]
		rows = rows[len(chunk):]
		payload := make([]byte, 8+len(chunk)*(4+8*k))
		binary.LittleEndian.PutUint32(payload, uint32(k))
		binary.LittleEndian.PutUint32(payload[4:], uint32(len(chunk)))
		pos := 8
		for _, i := range chunk {
			binary.LittleEndian.PutUint32(payload[pos:], uint32(i))
			pos += 4
			for _, v := range md.UserRow(int(i)) {
				binary.LittleEndian.PutUint64(payload[pos:], math.Float64bits(v))
				pos += 8
			}
		}
		if err := link.SendCtl(0, ctlUserRows, payload); err != nil {
			return err
		}
	}
	return nil
}

// lockstepGather is the coordinator's teardown: fold its own tokens,
// collect every worker's fold tokens, user rows and step counts,
// verify exact token conservation, and assemble the final model and
// resumable state.
func lockstepGather(link cluster.Link, ds *dataset.Dataset, cfg train.Config,
	users *partition.Partition, local []*localRatings, md *factor.Model,
	queue []cluster.Token, total int64, W int,
	rec *train.Recorder, root *rng.Source) (*train.Result, error) {

	n := ds.Cols()
	collected := 0
	for _, tok := range queue {
		copy(md.ItemRow(int(tok.Item)), tok.Vec)
		collected++
	}
	declared := int64(len(queue))
	countsByRank := make(map[int][]int32)

	recv, ctl := link.Recv(), link.Ctl()
	for recv != nil || ctl != nil {
		select {
		case inb, ok := <-recv:
			if !ok {
				recv = nil
				continue
			}
			for _, tok := range inb.Batch.Tokens {
				copy(md.ItemRow(int(tok.Item)), tok.Vec)
				collected++
			}
			inb.Batch.Release()
		case ct, ok := <-ctl:
			if !ok {
				ctl = nil
				continue
			}
			switch ct.Kind {
			case ctlFold:
				if len(ct.Payload) >= 16 {
					declared += int64(binary.LittleEndian.Uint64(ct.Payload))
				}
			case ctlCounts:
				if len(ct.Payload) < 8 {
					return nil, fmt.Errorf("core: short counts frame from machine %d", ct.From)
				}
				cnt := binary.LittleEndian.Uint64(ct.Payload)
				if uint64(len(ct.Payload)) != 8+4*cnt {
					return nil, fmt.Errorf("core: counts frame from machine %d declares %d entries in %d bytes", ct.From, cnt, len(ct.Payload))
				}
				counts := make([]int32, cnt)
				for i := range counts {
					counts[i] = int32(binary.LittleEndian.Uint32(ct.Payload[8+4*i:]))
				}
				countsByRank[ct.From] = counts
			case ctlUserRows:
				if err := applyUserRows(md, ct.Payload); err != nil {
					return nil, fmt.Errorf("core: user rows from machine %d: %w", ct.From, err)
				}
			case ctlAbort:
				return nil, &abortError{from: ct.From, reason: string(ct.Payload)}
			}
		}
	}
	link.Close() //nolint:errcheck
	if err := link.Err(); err != nil {
		return nil, err
	}
	if collected != n || declared != int64(n) {
		return nil, fmt.Errorf("core: token conservation violated: collected %d tokens (%d declared) for %d items", collected, declared, n)
	}
	counts, err := mergeCounts(ds.Train, users, local, countsByRank, W)
	if err != nil {
		return nil, err
	}

	rec.Sample(md, total)
	st := link.Stats()
	return &train.Result{
		Algorithm:    "nomad",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      total,
		Elapsed:      rec.Elapsed(),
		BytesSent:    st.BytesSent,
		MessagesSent: st.MessagesSent,
		Final: &train.State{
			Algorithm: "nomad",
			Seed:      cfg.Seed,
			Updates:   total,
			Model:     md,
			Counts:    counts,
			RNG:       train.CaptureStreams(root, nil),
			// Queues deliberately nil: tokens were folded back into the
			// model; a resume re-scatters them by the ownership map.
		},
	}, nil
}

// applyUserRows writes a ctlUserRows payload into the model.
func applyUserRows(md *factor.Model, payload []byte) error {
	if len(payload) < 8 {
		return fmt.Errorf("short frame")
	}
	k := int(binary.LittleEndian.Uint32(payload))
	rows := int(binary.LittleEndian.Uint32(payload[4:]))
	if k != md.K {
		return fmt.Errorf("rank %d rows for rank-%d model", k, md.K)
	}
	if len(payload) != 8+rows*(4+8*k) {
		return fmt.Errorf("declares %d rank-%d rows in %d bytes", rows, k, len(payload))
	}
	pos := 8
	for r := 0; r < rows; r++ {
		i := int(int32(binary.LittleEndian.Uint32(payload[pos:])))
		pos += 4
		if i < 0 || i >= md.M {
			return fmt.Errorf("user row %d out of range [0,%d)", i, md.M)
		}
		row := md.UserRow(i)
		for c := 0; c < k; c++ {
			row[c] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		}
	}
	return nil
}

// exportRankCounts flattens one machine's per-rating step counts in
// global CSC order restricted to its users — the stream mergeCounts
// re-interleaves on the coordinator.
func exportRankCounts(tr *sparse.Matrix, users *partition.Partition, local []*localRatings, rank, W int) []int32 {
	lo, hi := rank*W, rank*W+W
	cur := make([]int32, len(local))
	var out []int32
	for j := 0; j < tr.Cols(); j++ {
		rows, _ := tr.Col(j)
		for _, i := range rows {
			q := users.Owner(int(i))
			if q >= lo && q < hi {
				out = append(out, local[q].counts[cur[q]])
			}
			cur[q]++
		}
	}
	return out
}

// mergeCounts assembles the canonical CSC-ordered global step counts
// from the coordinator's own worker stores and each worker machine's
// exportRankCounts stream.
func mergeCounts(tr *sparse.Matrix, users *partition.Partition, local []*localRatings, byRank map[int][]int32, W int) ([]int32, error) {
	out := make([]int32, 0, tr.NNZ())
	cur := make([]int32, len(local))
	pos := make(map[int]int)
	for j := 0; j < tr.Cols(); j++ {
		rows, _ := tr.Col(j)
		for _, i := range rows {
			q := users.Owner(int(i))
			r := q / W
			if r == 0 {
				out = append(out, local[q].counts[cur[q]])
			} else {
				stream := byRank[r]
				if pos[r] >= len(stream) {
					return nil, fmt.Errorf("core: machine %d sent %d step counts, need more", r, len(stream))
				}
				out = append(out, stream[pos[r]])
				pos[r]++
			}
			cur[q]++
		}
	}
	for r, stream := range byRank {
		if pos[r] != len(stream) {
			return nil, fmt.Errorf("core: machine %d sent %d step counts, used %d", r, len(stream), pos[r])
		}
	}
	return out, nil
}
