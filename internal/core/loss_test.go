package core

import (
	"testing"

	"nomad/internal/dataset"
	"nomad/internal/loss"
	"nomad/internal/rng"
	"nomad/internal/sparse"
	"nomad/internal/vecmath"
)

// binaryData builds a ±1 matrix from the sign of a low-rank product,
// the binary matrix-completion setting of the paper's §6 extension.
func binaryData(t *testing.T) *dataset.Dataset {
	t.Helper()
	const m, n, rank = 200, 50, 4
	r := rng.New(11)
	wTrue := make([]float64, m*rank)
	hTrue := make([]float64, n*rank)
	for i := range wTrue {
		wTrue[i] = r.Normal(0, 1)
	}
	for i := range hTrue {
		hTrue[i] = r.Normal(0, 1)
	}
	var entries []sparse.Entry
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if r.Float64() > 0.3 {
				continue
			}
			v := -1.0
			if vecmath.Dot(wTrue[i*rank:i*rank+rank], hTrue[j*rank:j*rank+rank]) > 0 {
				v = 1.0
			}
			entries = append(entries, sparse.Entry{Row: int32(i), Col: int32(j), Val: v})
		}
	}
	mtx, err := sparse.FromEntries(m, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromMatrix("binary", mtx, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestLogisticLossLearnsSigns trains NOMAD with the logistic loss on a
// ±1 matrix and checks sign agreement on held-out entries — the §6
// "binary logistic regression" direction running on the nomadic-token
// machinery unchanged.
func TestLogisticLossLearnsSigns(t *testing.T) {
	ds := binaryData(t)
	cfg := baseConfig()
	cfg.Workers = 2
	cfg.Epochs = 40
	cfg.Alpha = 0.3
	cfg.Lambda = 0.005
	cfg.Loss = loss.Logistic{}
	res := runNomad(t, ds, cfg)

	correct := 0
	for _, e := range ds.Test {
		pred := res.Model.Predict(int(e.Row), int(e.Col))
		if (pred > 0) == (e.Val > 0) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Test))
	if acc < 0.75 {
		t.Errorf("logistic NOMAD sign accuracy %.3f, want >= 0.75", acc)
	}
}

// TestAbsoluteLossRobustToOutliers corrupts a few training ratings with
// huge outliers; the absolute loss should end with a markedly better
// test RMSE than the square loss on the same corrupted data.
func TestAbsoluteLossRobustToOutliers(t *testing.T) {
	base := testData(t)
	entries := base.Train.Entries(nil)
	r := rng.New(5)
	for i := range entries {
		if r.Float64() < 0.02 {
			entries[i].Val += 100 // gross outlier
		}
	}
	mtx, err := sparse.FromEntries(base.Train.Rows(), base.Train.Cols(), entries)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := &dataset.Dataset{Name: "corrupted", Train: mtx, Test: base.Test}

	run := func(l loss.Loss, alpha float64) float64 {
		cfg := baseConfig()
		cfg.Epochs = 15
		cfg.Loss = l
		cfg.Alpha = alpha
		res := runNomad(t, corrupted, cfg)
		return res.Trace.Final().RMSE
	}
	square := run(loss.Square{}, 0.08)
	absolute := run(loss.Absolute{}, 0.08)
	if absolute >= square {
		t.Errorf("absolute loss (%.4f) not more robust than square (%.4f) under outliers", absolute, square)
	}
}

// TestBalanceUsersPartition exercises the footnote-1 equal-ratings
// partition end to end.
func TestBalanceUsersPartition(t *testing.T) {
	ds := testData(t)
	cfg := baseConfig()
	cfg.Workers = 4
	cfg.BalanceUsers = true
	requireConverged(t, runNomad(t, ds, cfg))
}
