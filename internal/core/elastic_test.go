package core

// The elasticity matrix: a 4-machine asynchronous run (one provisioned
// spare) survives a chaos schedule that kills one machine, joins the
// spare and drains a member — on both link backends and both token
// transports — conserving all n item tokens across every resize and
// converging to the undisturbed noise floor. Plus arbiter succession
// (the coordinator itself dies) and the fence-timeout abort path.

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/queue"
	"nomad/internal/train"
)

// elasticConfig is the shared 4-machine + 1-spare elastic run.
func elasticConfig(backend string, kind queue.Kind) train.Config {
	cfg := failoverConfig(backend, kind)
	cfg.ElasticSpares = 1
	return cfg
}

// runElastic is runFailover plus typed resize-event capture.
func runElastic(t *testing.T, cfg train.Config, chaos string) (*train.Result, []train.PeerRecoveredEvent, []train.ResizeEvent) {
	t.Helper()
	spec, err := cluster.ParseChaos(chaos)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = spec
	var recovs []train.PeerRecoveredEvent
	var resizes []train.ResizeEvent
	hooks := &train.Hooks{
		PeerRecovered: func(e train.PeerRecoveredEvent) { recovs = append(recovs, e) },
		Resize:        func(e train.ResizeEvent) { resizes = append(resizes, e) },
	}
	res, err := New().Train(t.Context(), testData(t), cfg, hooks)
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	return res, recovs, resizes
}

// requireResized asserts one committed resize of the given kind and
// subject rank, with a plausible request→commit latency.
func requireResized(t *testing.T, resizes []train.ResizeEvent, kind string, rank int) train.ResizeEvent {
	t.Helper()
	for _, e := range resizes {
		if e.Kind != kind {
			continue
		}
		if e.Rank != rank {
			t.Fatalf("%s resize names rank %d, want %d", kind, e.Rank, rank)
		}
		if e.Seconds < 0 || e.Seconds > 30 {
			t.Fatalf("implausible %s latency %v s", kind, e.Seconds)
		}
		return e
	}
	t.Fatalf("no %q ResizeEvent emitted (got %v)", kind, resizes)
	return train.ResizeEvent{}
}

// TestElasticKillJoinDrain runs the full multi-fault schedule — kill a
// machine mid-epoch, activate the provisioned spare, then drain a
// member — on every (backend × transport) combination. The run must
// survive all three membership changes, conserve every item token
// (checked by the runner's teardown) and converge to within 1e-2 of
// the undisturbed run's final RMSE.
func TestElasticKillJoinDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elasticity matrix")
	}
	// The undisturbed reference: same provisioned topology, no faults.
	base, _, _ := runFailover(t, elasticConfig("sim", queue.KindSPSC), "")
	baseline := base.Trace.Final().RMSE
	for _, backend := range []string{"sim", "tcp"} {
		for _, kind := range []queue.Kind{queue.KindSPSC, queue.KindMutex} {
			t.Run(fmt.Sprintf("%s_%s", backend, kind), func(t *testing.T) {
				// Auto-resolved subjects: kill the highest selectable rank
				// (3), join the lowest unclaimed spare (4), drain the
				// highest selectable member that did not just join (2).
				res, recovs, resizes := runElastic(t, elasticConfig(backend, kind),
					"kill@mid-epoch;join@mid-epoch;drain@mid-epoch")
				if len(recovs) != 1 || recovs[0].Rank != 3 {
					t.Fatalf("want one recovery of rank 3, got %v", recovs)
				}
				j := requireResized(t, resizes, "join", 4)
				if j.Machines != 4 {
					t.Errorf("post-join working set %d, want 4", j.Machines)
				}
				d := requireResized(t, resizes, "drain", 2)
				if d.Machines != 3 {
					t.Errorf("post-drain working set %d, want 3", d.Machines)
				}
				requireConverged(t, res)
				if drift := math.Abs(res.Trace.Final().RMSE - baseline); drift > 1e-2 {
					t.Errorf("final RMSE %.4f drifted %.4f from undisturbed %.4f (> 1e-2)",
						res.Trace.Final().RMSE, drift, baseline)
				}
			})
		}
	}
}

// TestElasticArbiterSuccession kills rank 0 — the arbiter — and then
// requests a join: the next-lowest live rank must take over as
// coordinator and drive both rounds to completion without restarting
// the epoch (a restart would lose the budget and show as divergence).
func TestElasticArbiterSuccession(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elasticity run")
	}
	res, recovs, resizes := runElastic(t, elasticConfig("sim", queue.KindSPSC),
		"kill:rank=0,at=mid-epoch;join@mid-epoch")
	if len(recovs) != 1 || recovs[0].Rank != 0 {
		t.Fatalf("want one recovery of rank 0 (the arbiter), got %v", recovs)
	}
	requireResized(t, resizes, "join", 4)
	requireConverged(t, res)
}

// TestElasticDrainOnly: a lone graceful leave loses zero updates — the
// leaver's state is moved, not reconstructed — so no PeerDown or
// recovery events may appear at all.
func TestElasticDrainOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elasticity run")
	}
	cfg := failoverConfig("sim", queue.KindMutex)
	res, recovs, resizes := runElastic(t, cfg, "drain@mid-epoch")
	if len(recovs) != 0 {
		t.Fatalf("a graceful drain produced %d recovery events", len(recovs))
	}
	requireResized(t, resizes, "drain", 3)
	requireConverged(t, res)
}

// TestElasticFenceTimeout: a peer whose outbound control plane stalls
// past the fence deadline must abort the round with the typed fence
// error instead of hanging the run.
func TestElasticFenceTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second timeout run")
	}
	orig := foFenceTimeout
	foFenceTimeout = 150 * time.Millisecond
	defer func() { foFenceTimeout = orig }()

	cfg := elasticConfig("sim", queue.KindSPSC)
	// Rank 2's sends (data and control alike) stall for far longer than
	// the fence timeout; the join round that starts mid-stall can never
	// quiesce.
	spec, err := cluster.ParseChaos("partition:rank=2,at=mid-epoch,window=1200ms;join@+30ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = spec
	_, err = New().Train(t.Context(), testData(t), cfg, nil)
	if err == nil {
		t.Fatal("stalled fence did not abort the run")
	}
	if !strings.Contains(err.Error(), "fence timed out") {
		t.Fatalf("want typed fence-timeout error, got: %v", err)
	}
}

// TestElasticRequestValidation: bad membership requests are rejected
// with typed errors, at config time and at run time.
func TestElasticRequestValidation(t *testing.T) {
	ds := testData(t)

	neg := elasticConfig("sim", queue.KindSPSC)
	neg.ElasticSpares = -1
	if _, err := neg.Normalize(ds); err == nil {
		t.Error("negative ElasticSpares accepted")
	}

	// A chaos join naming an initial member is rejected up front.
	member := failoverConfig("sim", queue.KindSPSC)
	spec, err := cluster.ParseChaos("join:rank=1,at=mid-epoch")
	if err != nil {
		t.Fatal(err)
	}
	member.Chaos = spec
	if _, err := member.Normalize(ds); err == nil {
		t.Error("chaos join naming an initial member accepted")
	}

	// A shorthand join implies one provisioned spare and failover.
	implied := baseConfig()
	implied.Machines, implied.Workers = 4, 2
	spec, err = cluster.ParseChaos("join@+1s")
	if err != nil {
		t.Fatal(err)
	}
	implied.Chaos = spec
	norm, err := implied.Normalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if norm.ElasticSpares != 1 || !norm.Failover {
		t.Errorf("join chaos implied spares=%d failover=%t, want 1 true",
			norm.ElasticSpares, norm.Failover)
	}

	// An unbound ElasticControl reports that no run is active.
	var ec train.ElasticControl
	if err := ec.Join(-1); err == nil {
		t.Error("unbound ElasticControl.Join returned nil")
	}
	if err := ec.Drain(-1); err == nil {
		t.Error("unbound ElasticControl.Drain returned nil")
	}
}
