// Package glals emulates the GraphLab comparators of the paper's
// Appendix F: a distributed ALS in which every row update must acquire
// read access to remote neighbour rows over the network, and the
// "biassgd" bias-model SGD.
//
// GraphLab's distributed ALS updates wᵢ with eq. (3), which needs hⱼ
// for every j ∈ Ωᵢ. When those rows live on other machines, GraphLab
// read-locks and fetches them across the network (§4.2). This package
// reproduces that cost structure: factor rows are partitioned over
// machines, each machine runs a lock-manager goroutine that serializes
// access to its rows, and every row update by a worker requires one
// request/reply round trip per remote machine involved. A popular user
// therefore triggers wide fetches — the behaviour the paper blames for
// GraphLab being orders of magnitude slower than NOMAD (Figs 21–23),
// especially on commodity networks.
package glals

import (
	"context"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/parallel"
	"nomad/internal/partition"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// GLALS is the GraphLab-style distributed ALS solver.
type GLALS struct{}

// New returns a GraphLab-style ALS solver.
func New() *GLALS { return &GLALS{} }

// Name implements train.Algorithm.
func (*GLALS) Name() string { return "glals" }

// fetchReq asks a machine's lock manager for copies of factor rows.
type fetchReq struct {
	replyTo int  // requesting machine
	worker  int  // global worker id for reply routing
	items   bool // true: fetch item rows, false: fetch user rows
	ids     []int32
}

// fetchReply returns the requested rows, k floats each, concatenated.
type fetchReply struct {
	worker int
	data   []float64
}

// fabric is the request/reply plumbing shared by the solvers here.
type fabric struct {
	net      *netsim.Network
	md       *factor.Model
	k        int
	machines int
	replies  []chan fetchReply // per global worker
	pumpDone chan struct{}
}

// newFabric starts one lock-manager pump per machine. The pump owns
// all access to its machine's rows from the network side, which is the
// serialization point that stands in for GraphLab's lock manager.
func newFabric(net *netsim.Network, md *factor.Model, k, machines, workersPer int) *fabric {
	f := &fabric{
		net:      net,
		md:       md,
		k:        k,
		machines: machines,
		replies:  make([]chan fetchReply, machines*workersPer),
		pumpDone: make(chan struct{}),
	}
	for w := range f.replies {
		f.replies[w] = make(chan fetchReply, 4)
	}
	for mc := 0; mc < machines; mc++ {
		go f.pump(mc)
	}
	return f
}

// pump services fetch requests against local rows and routes replies
// back to the waiting worker.
func (f *fabric) pump(mc int) {
	for msg := range f.net.Recv(mc) {
		switch req := msg.Payload.(type) {
		case fetchReq:
			data := make([]float64, 0, len(req.ids)*f.k)
			for _, id := range req.ids {
				if req.items {
					data = append(data, f.md.ItemRow(int(id))...)
				} else {
					data = append(data, f.md.UserRow(int(id))...)
				}
			}
			f.net.Send(mc, req.replyTo, 16+8*len(data), fetchReply{worker: req.worker, data: data})
		case fetchReply:
			f.replies[req.worker] <- req
		}
	}
}

// fetch performs one blocking lock-and-read round trip: worker on
// machine `from` obtains copies of rows `ids` from machine `owner`.
func (f *fabric) fetch(from, owner, worker int, items bool, ids []int32) []float64 {
	f.net.Send(from, owner, 16+4*len(ids), fetchReq{replyTo: from, worker: worker, items: items, ids: ids})
	rep := <-f.replies[worker]
	return rep.data
}

// Train implements train.Algorithm: synchronous ALS sweeps where every
// remote row read pays a network round trip.
func (*GLALS) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("glals"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("glals", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	M, W := cfg.Machines, cfg.Workers
	p := M * W
	m, n := ds.Rows(), ds.Cols()
	k := cfg.K
	// Like plain ALS, the factors and update total are the whole
	// cross-sweep state.
	var md *factor.Model
	var resumed int64
	sweeps := 0
	if st := cfg.Resume; st != nil {
		md = st.Model
		resumed = st.Updates
		sweeps = int(st.Ring) // EpochEvent numbering continues
	} else {
		md = factor.NewInit(m, n, k, cfg.Seed)
	}
	tr := ds.Train
	userPart := partition.EqualRanges(m, M)
	itemPart := partition.EqualRanges(n, M)

	net := netsim.New(M, cfg.Profile)
	f := newFabric(net, md, k, M, W)
	defer net.Shutdown()

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()
	var updates atomic.Int64
	updates.Store(resumed)

	// Scratch per worker.
	grams := make([][]float64, p)
	rhss := make([][]float64, p)
	rows := make([][]float64, p) // gathered neighbour rows
	for q := 0; q < p; q++ {
		grams[q] = make([]float64, k*k)
		rhss[q] = make([]float64, k)
	}

	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		// User sweep: machines update their own users in parallel;
		// remote item rows are fetched through the fabric.
		sweep(f, md, tr, userPart, itemPart, M, W, true, cfg.Lambda, k,
			grams, rhss, rows, counter, &updates)
		// Item sweep: symmetric.
		sweep(f, md, tr, itemPart, userPart, M, W, false, cfg.Lambda, k,
			grams, rhss, rows, counter, &updates)
		sweeps++
		hooks.EmitEpoch(train.EpochEvent{Epoch: sweeps, Updates: updates.Load()})
		if M > 1 {
			hooks.EmitNetwork(train.NetworkEvent{BytesSent: net.BytesSent(), MessagesSent: net.MessagesSent()})
		}
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	return &train.Result{
		Algorithm:    "glals",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      updates.Load(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    net.BytesSent(),
		MessagesSent: net.MessagesSent(),
		Final: &train.State{
			Algorithm: "glals",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(sweeps),
			Model:     md,
		},
	}, ctx.Err()
}

// sweep updates one side's rows (users if userSide, else items) with
// the ALS normal equations, paying a fetch round trip to every remote
// machine whose rows the update reads.
func sweep(f *fabric, md *factor.Model, tr interface {
	Row(int) ([]int32, []float64)
	Col(int) ([]int32, []int64)
	ValAt(int64) float64
}, ownPart, otherPart *partition.Partition, M, W int, userSide bool,
	lambda float64, k int, grams, rhss, gathered [][]float64,
	counter *train.Counter, updates *atomic.Int64) {

	parallel.For(M, M, func(_, mcLo, mcHi int) {
		for mc := mcLo; mc < mcHi; mc++ {
			own := ownPart.Part(mc)
			parallel.For(W, len(own), func(lw, lo, hi int) {
				worker := mc*W + lw
				var touched int64
				for x := lo; x < hi; x++ {
					id := int(own[x])
					var neighbors []int32
					var values []float64
					if userSide {
						cols, vals := tr.Row(id)
						neighbors, values = cols, vals
					} else {
						rws, pos := tr.Col(id)
						neighbors = rws
						values = make([]float64, len(pos))
						for y, pp := range pos {
							values[y] = tr.ValAt(pp)
						}
					}
					if len(neighbors) == 0 {
						continue
					}
					// A user update reads item rows and vice versa.
					nb := gatherRows(f, md, mc, worker, neighbors, otherPart, userSide, k)
					gram := grams[worker]
					rhs := rhss[worker]
					for y := range gram {
						gram[y] = 0
					}
					for y := range rhs {
						rhs[y] = 0
					}
					for y := range neighbors {
						row := nb[y*k : y*k+k]
						vecmath.AddOuterScaled(gram, row, 1, k)
						vecmath.Axpy(values[y], row, rhs)
					}
					for l := 0; l < k; l++ {
						gram[l*k+l] += lambda * float64(len(neighbors))
					}
					if err := vecmath.CholeskySolve(gram, rhs, k); err == nil {
						if userSide {
							copy(md.UserRow(id), rhs)
						} else {
							copy(md.ItemRow(id), rhs)
						}
					}
					touched += int64(len(neighbors))
				}
				counter.Add(worker, touched)
				updates.Add(touched)
				_ = gathered
			})
		}
	})
}

// gatherRows collects the factor rows of the given neighbour ids in
// order: local rows are read directly, remote rows cost one fetch
// round trip per owning machine.
func gatherRows(f *fabric, md *factor.Model, mc, worker int, ids []int32,
	owners *partition.Partition, itemsSide bool, k int) []float64 {

	out := make([]float64, len(ids)*k)
	// Group remote ids by owner.
	var remote map[int][]int32
	var remoteSlot map[int][]int
	for x, id := range ids {
		owner := owners.Owner(int(id))
		if owner == mc {
			if itemsSide {
				copy(out[x*k:], md.ItemRow(int(id)))
			} else {
				copy(out[x*k:], md.UserRow(int(id)))
			}
			continue
		}
		if remote == nil {
			remote = make(map[int][]int32)
			remoteSlot = make(map[int][]int)
		}
		remote[owner] = append(remote[owner], id)
		remoteSlot[owner] = append(remoteSlot[owner], x)
	}
	for owner, rids := range remote {
		data := f.fetch(mc, owner, worker, itemsSide, rids)
		for y, slot := range remoteSlot[owner] {
			copy(out[slot*k:slot*k+k], data[y*k:y*k+k])
		}
	}
	return out
}
