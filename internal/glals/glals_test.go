package glals

import (
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/netsim"
)

func TestSingleMachineALSConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(8 * ds.Train.NNZ())
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
	if res.MessagesSent != 0 {
		t.Error("single-machine glals used the network")
	}
}

func TestDistributedALSFetchesRemoteRows(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Workers = 2
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(6 * ds.Train.NNZ())
	cfg.Profile = netsim.Instant()
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
	if res.MessagesSent == 0 {
		t.Error("distributed glals performed no remote fetches")
	}
}

// TestNetworkCostDominates is the Appendix F claim in miniature: on a
// slow network, glals moves far more bytes per unit progress than the
// nomadic approach would — here we just assert the fetch traffic grows
// with the rating count, i.e. per-update round trips are really paid.
func TestFetchTrafficScalesWithWork(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Epochs = 0
	cfg.Profile = netsim.Instant()

	cfg.MaxUpdates = int64(2 * ds.Train.NNZ())
	short := algotest.Run(t, New(), ds, cfg)
	cfg.MaxUpdates = int64(8 * ds.Train.NNZ())
	long := algotest.Run(t, New(), ds, cfg)
	if long.BytesSent <= short.BytesSent {
		t.Errorf("more sweeps did not increase fetch traffic: %d vs %d", short.BytesSent, long.BytesSent)
	}
}

func TestBiasSGDConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 12
	res := algotest.Run(t, NewBiasSGD(), ds, cfg)
	algotest.RequireConverged(t, res, 0.8) // different model: looser bar
}

func TestBiasSGDDistributed(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Workers = 1
	cfg.Epochs = 8
	cfg.Profile = netsim.Instant()
	res := algotest.Run(t, NewBiasSGD(), ds, cfg)
	if res.MessagesSent == 0 {
		t.Error("distributed biassgd sent no messages")
	}
	algotest.RequireConverged(t, res, 0.9)
}

func TestNames(t *testing.T) {
	if New().Name() != "glals" || NewBiasSGD().Name() != "biassgd" {
		t.Fatal("wrong names")
	}
}
