package glals

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/parallel"
	"nomad/internal/partition"
	"nomad/internal/rng"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// BiasSGD emulates GraphLab's "biassgd" toolkit algorithm (paper
// Appendix F, Fig 23): SGD on the biased model
//
//	Aᵢⱼ ≈ μ + bᵢ + cⱼ + ⟨wᵢ, hⱼ⟩
//
// executed GraphLab-style: item parameters are partitioned over
// machines, and a worker must fetch a remote item's row before updating
// against it and write it back afterwards — two network messages per
// item visit, with last-writer-wins races between machines (the
// asynchronous engine's semantics). As the paper notes, this optimizes
// a different model from objective (1); it is compared on wall-clock
// RMSE behaviour only.
//
// Representation: the biases are stored as two extra latent
// dimensions with one side pinned to 1 —
//
//	wᵢ' = [wᵢ, bᵢ, 1],  hⱼ' = [hⱼ, 1, cⱼ]
//
// so ⟨wᵢ', hⱼ'⟩ = ⟨wᵢ, hⱼ⟩ + bᵢ + cⱼ and the standard RMSE evaluator
// scores the full biased model. μ is folded into the bias init.
type BiasSGD struct{}

// NewBiasSGD returns the biassgd emulation.
func NewBiasSGD() *BiasSGD { return &BiasSGD{} }

// Name implements train.Algorithm.
func (*BiasSGD) Name() string { return "biassgd" }

// StorageRank implements train.StorageRanker: the stored model
// carries two extra dimensions — the bias and its pinned-one partner.
func (*BiasSGD) StorageRank(k int) int { return k + 2 }

// itemReq asks item j's owner for its current row; itemRep answers;
// writeBack returns an updated row to the owner (one-way).
type itemReq struct {
	replyTo, worker int
	item            int32
}

type itemRep struct {
	worker int
	row    []float64
}

type writeBack struct {
	item int32
	row  []float64
}

// Train implements train.Algorithm.
func (*BiasSGD) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("biassgd"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("biassgd", ds.Rows(), ds.Cols(), (*BiasSGD)(nil).StorageRank(cfg.K)); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	M, W := cfg.Machines, cfg.Workers
	p := M * W
	m, n := ds.Rows(), ds.Cols()
	k := cfg.K
	kk := k + 2 // factor dims + (bias, pinned-one)
	tr := ds.Train

	// Global mean, folded into the initial biases.
	var mu float64
	for _, v := range tr.Vals() {
		mu += v
	}
	mu /= float64(tr.NNZ())

	var md *factor.Model
	var resumed int64
	if st := cfg.Resume; st != nil {
		md = st.Model
		resumed = st.Updates
	} else {
		md = factor.New(m, n, kk)
		initRNG := rng.New(cfg.Seed)
		hi := 1 / math.Sqrt(float64(k))
		for i := 0; i < m; i++ {
			row := md.UserRow(i)
			for l := 0; l < k; l++ {
				row[l] = initRNG.Uniform(0, hi)
			}
			row[k] = mu / 2 // bᵢ
			row[k+1] = 1    // pinned
		}
		for j := 0; j < n; j++ {
			row := md.ItemRow(j)
			for l := 0; l < k; l++ {
				row[l] = initRNG.Uniform(0, hi)
			}
			row[k] = 1        // pinned
			row[k+1] = mu / 2 // cⱼ
		}
	}

	userPart := partition.EqualRanges(m, p) // one user block per worker
	itemPart := partition.EqualRanges(n, M) // items owned per machine

	net := netsim.New(M, cfg.Profile)
	defer net.Shutdown()

	replies := make([]chan []float64, p)
	for w := range replies {
		replies[w] = make(chan []float64, 2)
	}
	for mc := 0; mc < M; mc++ {
		go func(mc int) {
			for msg := range net.Recv(mc) {
				switch r := msg.Payload.(type) {
				case itemReq:
					//nomad:racy-read remote row fetch may observe a torn in-progress update; the async SGD protocol tolerates stale rows (keeps glals out of the CI -race list for this test only)
					row := append([]float64(nil), md.ItemRow(int(r.item))...)
					net.Send(mc, r.replyTo, 16+8*kk, itemRep{worker: r.worker, row: row})
				case itemRep:
					replies[r.worker] <- r.row
				case writeBack:
					copy(md.ItemRow(int(r.item)), r.row)
				}
			}
		}(mc)
	}

	schedule := cfg.Schedule()
	// Kernels, selected once per run: predictions run over the full
	// kk = k+2 augmented rows; the factor-coordinate update covers only
	// the first k dims (the bias coordinates follow their own rule).
	dotKK := vecmath.DotKernel(kk)
	gradK := vecmath.KernelFor(k).Grad
	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()
	var updates atomic.Int64
	updates.Store(resumed)
	root := rng.New(cfg.Seed + 1)
	if st := cfg.Resume; st != nil && len(st.RNG) > 0 {
		root = rng.FromState(st.RNG[0])
	}

	// Per-worker item-grouped rating lists, so each item visit costs
	// one fetch regardless of how many local ratings it covers.
	type localCol struct {
		users []int32
		vals  []float64
	}
	locals := make([][]localCol, p)
	for q := 0; q < p; q++ {
		locals[q] = make([]localCol, n)
	}
	for j := 0; j < n; j++ {
		rows, pos := tr.Col(j)
		for x, i := range rows {
			q := userPart.Owner(int(i))
			lc := &locals[q][j]
			lc.users = append(lc.users, i)
			lc.vals = append(lc.vals, tr.ValAt(pos[x]))
		}
	}

	pass := 0
	if st := cfg.Resume; st != nil {
		pass = int(st.Ring) // continue the per-pass step schedule
	}
	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		pass++
		// Derive this pass's per-worker streams before the parallel
		// region: Split mutates the shared root, so concurrent workers
		// must not call it (it raced in earlier versions).
		passRNG := make([]*rng.Source, p)
		for q := 0; q < p; q++ {
			passRNG[q] = root.Split(uint64(q)*1_000_003 + uint64(pass))
		}
		parallel.For(p, p, func(_, qLo, qHi int) {
			for q := qLo; q < qHi; q++ {
				mc := q / W
				r := passRNG[q]
				order := make([]int, n)
				r.Perm(order)
				var touched int64
				step := schedule.Step(pass - 1)
				for _, j := range order {
					lc := &locals[q][j]
					if len(lc.users) == 0 {
						continue
					}
					owner := itemPart.Owner(j)
					var hRow []float64
					if owner == mc {
						hRow = md.ItemRow(j)
					} else {
						net.Send(mc, owner, 16, itemReq{replyTo: mc, worker: q, item: int32(j)})
						hRow = <-replies[q]
					}
					for x, u := range lc.users {
						wRow := md.UserRow(int(u))
						e := lc.vals[x] - dotKK(wRow, hRow)
						se, sl := step*e, step*cfg.Lambda
						gradK(wRow[:k], hRow[:k], e, step, cfg.Lambda)
						// Bias coordinates: the partner side is pinned
						// to 1 and must not move.
						wRow[k] += se - sl*wRow[k]     // bᵢ
						hRow[k+1] += se - sl*hRow[k+1] // cⱼ
					}
					touched += int64(len(lc.users))
					if owner != mc {
						net.Send(mc, owner, 16+8*kk, writeBack{item: int32(j), row: hRow})
					}
				}
				counter.Add(q, touched)
				updates.Add(touched)
			}
		})
		hooks.EmitEpoch(train.EpochEvent{Epoch: pass, Updates: updates.Load()})
		if M > 1 {
			hooks.EmitNetwork(train.NetworkEvent{BytesSent: net.BytesSent(), MessagesSent: net.MessagesSent()})
		}
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	return &train.Result{
		Algorithm:    "biassgd",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      updates.Load(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    net.BytesSent(),
		MessagesSent: net.MessagesSent(),
		Final: &train.State{
			Algorithm: "biassgd",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(pass),
			Model:     md,
			RNG:       [][4]uint64{root.State()},
		},
	}, ctx.Err()
}
