package netlink

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/factor"
	"nomad/internal/train"
)

// testGate opens a gate on an ephemeral port with a 5s handshake
// budget and serves it for the life of the test.
func testGate(t *testing.T, configSum uint64, admit AdmitFunc) *JoinGate {
	t.Helper()
	g, err := OpenJoinGate("127.0.0.1:0", configSum, admit, Options{K: 2, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	go g.Serve(context.Background()) //nolint:errcheck
	return g
}

// TestJoinGateAdmits: a matching-digest dialer receives the full
// ticket — rank, grown cluster size, ownership map, member addresses
// (its own slot filled with what it advertised) and resume state —
// bit-for-bit what the admit function granted.
func TestJoinGateAdmits(t *testing.T) {
	owner := []int32{0, 1, 2, 3, 0}
	st := &train.State{
		Algorithm: "nomad",
		Seed:      7,
		Updates:   4242,
		Model:     factor.NewInit(3, 5, 2, 7),
		Counts:    []int32{4, 5},
		RNG:       [][4]uint64{{9, 8, 7, 6}},
	}
	g := testGate(t, 55, func(addr string) (Admission, error) {
		return Admission{
			Rank:     3,
			Machines: 4,
			Owner:    owner,
			Addrs:    []string{"h0:1", "h1:1", "h2:1"},
			State:    st,
		}, nil
	})
	tk, err := DialJoin(context.Background(), g.Addr(), "joiner:9", 55, Options{K: 2, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("DialJoin: %v", err)
	}
	if tk.Rank != 3 || tk.Machines != 4 || tk.K != 2 {
		t.Fatalf("ticket rank/machines/k = %d/%d/%d, want 3/4/2", tk.Rank, tk.Machines, tk.K)
	}
	if len(tk.Owner) != len(owner) {
		t.Fatalf("ticket owner = %v", tk.Owner)
	}
	for i := range owner {
		if tk.Owner[i] != owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, tk.Owner[i], owner[i])
		}
	}
	if want := []string{"h0:1", "h1:1", "h2:1", "joiner:9"}; len(tk.Addrs) != 4 ||
		tk.Addrs[0] != want[0] || tk.Addrs[1] != want[1] || tk.Addrs[2] != want[2] || tk.Addrs[3] != want[3] {
		t.Fatalf("ticket addrs = %v, want %v", tk.Addrs, want)
	}
	if tk.State == nil || tk.State.Updates != 4242 || tk.State.Seed != 7 {
		t.Fatalf("ticket state = %+v", tk.State)
	}
	if tk.State.Model.M != 3 || tk.State.Model.N != 5 || tk.State.Model.K != 2 {
		t.Fatalf("ticket model shape = %d×%d×%d", tk.State.Model.M, tk.State.Model.N, tk.State.Model.K)
	}
}

// TestJoinGateDigestMismatch: a joiner built from different flags is
// refused before the admit function ever runs, and the gate survives
// to admit the next, correct dialer.
func TestJoinGateDigestMismatch(t *testing.T) {
	var admitted atomic.Int64
	g := testGate(t, 100, func(addr string) (Admission, error) {
		admitted.Add(1)
		return Admission{Rank: 2, Machines: 3}, nil
	})
	_, err := DialJoin(context.Background(), g.Addr(), "", 999, Options{K: 2, RendezvousTimeout: 5 * time.Second})
	var rej *RejectedError
	if !errors.As(err, &rej) || !strings.Contains(rej.Reason, "config digest mismatch") {
		t.Fatalf("mismatched DialJoin err = %v, want *RejectedError about the digest", err)
	}
	if admitted.Load() != 0 {
		t.Fatal("admit ran for a digest-mismatched joiner")
	}
	tk, err := DialJoin(context.Background(), g.Addr(), "", 100, Options{K: 2, RendezvousTimeout: 5 * time.Second})
	if err != nil || tk.Rank != 2 || tk.Machines != 3 {
		t.Fatalf("follow-up DialJoin = %+v, %v", tk, err)
	}
	if admitted.Load() != 1 {
		t.Fatalf("admit ran %d times, want 1", admitted.Load())
	}
}

// TestJoinGateRefusal: the cluster saying no — no spare capacity, say
// — reaches the joiner as a typed rejection carrying the reason.
func TestJoinGateRefusal(t *testing.T) {
	g := testGate(t, 5, func(addr string) (Admission, error) {
		return Admission{}, fmt.Errorf("no spare machine slots provisioned")
	})
	_, err := DialJoin(context.Background(), g.Addr(), "", 5, Options{K: 2, RendezvousTimeout: 5 * time.Second})
	var rej *RejectedError
	if !errors.As(err, &rej) || !strings.Contains(rej.Reason, "no spare machine slots") {
		t.Fatalf("refused DialJoin err = %v, want *RejectedError with the reason", err)
	}
}

// TestJoinGateRetriesDial: DialJoin backs off and retries while the
// gate is still coming up, the same courtesy the rendezvous extends
// to a slow coordinator.
func TestJoinGateRetriesDial(t *testing.T) {
	g, err := OpenJoinGate("127.0.0.1:0", 11, func(addr string) (Admission, error) {
		return Admission{Rank: 1, Machines: 2}, nil
	}, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr := g.Addr()
	g.Close() // nobody listening yet: first dials must be refused
	time.AfterFunc(150*time.Millisecond, func() {
		g2, err := OpenJoinGate(addr, 11, func(string) (Admission, error) {
			return Admission{Rank: 1, Machines: 2}, nil
		}, Options{K: 1, RendezvousTimeout: 5 * time.Second})
		if err != nil {
			return // port raced away; the dialer will time out and fail the test
		}
		t.Cleanup(func() { g2.Close() })
		go g2.Serve(context.Background()) //nolint:errcheck
	})
	tk, err := DialJoin(context.Background(), addr, "", 11, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("DialJoin through boot race: %v", err)
	}
	if tk.Rank != 1 || tk.Machines != 2 {
		t.Fatalf("ticket = %+v", tk)
	}
}
