// Package netlink is the real-network backend of NOMAD's distributed
// mode: a length-prefixed binary wire protocol over TCP, a coordinator
// rendezvous that assigns machine ranks and broadcasts the item
// (column) ownership map, and a mesh Link with heartbeat-based peer
// failure detection. It implements cluster.Link, so the training
// runners in internal/core are identical over netsim and over real
// sockets.
//
// Every frame on the wire is:
//
//	offset  size  field
//	0       4     magic "NMLK" (little-endian uint32 0x4e4d4c4b)
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     reserved (zero)
//	8       4     sender rank (int32; -1 before rank assignment)
//	12      4     payload length (uint32)
//	16      4     CRC-32 (IEEE) of the payload
//	20      n     payload
//
// Frames with a bad magic, an unsupported version, an oversized length
// or a CRC mismatch are rejected before any payload interpretation.
// Token payloads reuse the little-endian layout of the train.State
// checkpoint format (int32 indices, raw float64 bits), and the
// rendezvous broadcasts resume state with train.State's own encoder.
package netlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"nomad/internal/cluster"
)

// Magic identifies a netlink frame ("NMLK").
const Magic uint32 = 0x4e4d4c4b

// Version is the wire-protocol version spoken by this build. A peer
// announcing any other version is rejected at the first frame.
const Version byte = 1

// FrameType tags the meaning of a frame's payload.
type FrameType byte

// Frame types. Hello/Welcome/Mesh/Ready/Go belong to the rendezvous;
// Tokens/Ctl/EOF/Heartbeat/Barrier* to the established link.
const (
	FrameHello      FrameType = 1  // worker → coordinator: config digest + advertised address
	FrameWelcome    FrameType = 2  // coordinator → worker: rank, cluster map, ownership, resume state
	FrameTokens     FrameType = 3  // token batch (§3.5 unit of transfer)
	FrameCtl        FrameType = 4  // opaque control frame (kind byte + payload)
	FrameEOF        FrameType = 5  // orderly end of the sender's stream
	FrameHeartbeat  FrameType = 6  // liveness probe
	FrameBarrierReq FrameType = 7  // member → rank 0: barrier arrival
	FrameBarrierRel FrameType = 8  // rank 0 → member: barrier release
	FrameMesh       FrameType = 9  // peer → peer: identifies the dialler's rank
	FrameReady      FrameType = 10 // worker → coordinator: mesh established
	FrameGo         FrameType = 11 // coordinator → worker: start training
	FrameError      FrameType = 12 // handshake rejection, payload is the reason
)

// headerSize is the fixed frame-header length.
const headerSize = 20

// MaxPayload bounds a frame payload (256 MiB). Length prefixes beyond
// it are rejected before any allocation; payloads under it are read in
// bounded chunks so a corrupt length in a short stream fails on EOF,
// not on an up-front allocation.
const MaxPayload = 1 << 28

// VersionError reports a peer speaking an unsupported protocol
// version.
type VersionError struct {
	Got, Want byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("netlink: protocol version %d, this build speaks %d", e.Got, e.Want)
}

// Wire-format rejection errors.
var (
	ErrBadMagic = errors.New("netlink: bad frame magic")
	ErrBadCRC   = errors.New("netlink: frame payload CRC mismatch")
	ErrOversize = errors.New("netlink: frame payload exceeds MaxPayload")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    FrameType
	From    int
	Payload []byte
}

// AppendFrame appends the encoded frame to buf and returns it. The
// payload may be nil.
func AppendFrame(buf []byte, typ FrameType, from int, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	hdr[5] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(from)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, typ FrameType, from int, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrOversize
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, headerSize+len(payload)), typ, from, payload))
	return err
}

// ReadFrame reads and validates one frame. It rejects bad magic,
// version mismatches, oversized lengths and CRC mismatches with typed
// errors; a stream truncated mid-frame surfaces io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, &VersionError{Got: hdr[4], Want: Version}
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, fmt.Errorf("netlink: reserved header bytes must be zero")
	}
	f := Frame{
		Type: FrameType(hdr[5]),
		From: int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
	}
	length := binary.LittleEndian.Uint32(hdr[12:])
	if length > MaxPayload {
		return Frame{}, ErrOversize
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[16:])
	if length > 0 {
		// Chunked read: a corrupt length prefix on a short stream fails
		// with ErrUnexpectedEOF after at most one chunk.
		const chunk = 1 << 20
		f.Payload = make([]byte, 0, min(int(length), chunk))
		buf := make([]byte, min(int(length), chunk))
		for remaining := int(length); remaining > 0; {
			c := min(remaining, chunk)
			if _, err := io.ReadFull(r, buf[:c]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
			f.Payload = append(f.Payload, buf[:c]...)
			remaining -= c
		}
	}
	if crc32.ChecksumIEEE(f.Payload) != wantCRC {
		return Frame{}, ErrBadCRC
	}
	return f, nil
}

// tokenWireSize is the encoded size of one rank-k token: the item
// index plus the raw float64 coordinates.
func tokenWireSize(k int) int { return 4 + 8*k }

// batchWireSize is the encoded payload size of a TokenBatch of rank-k
// tokens.
func batchWireSize(tokens, k int) int { return 12 + tokens*tokenWireSize(k) }

// AppendTokenBatch encodes a token batch: the sender's gossiped queue
// length (§3.3), the token count, then each (j, hⱼ) pair with hⱼ as
// raw little-endian float64 bits — the same scalar layout the
// train.State checkpoint uses. Every token must have exactly k
// coordinates.
func AppendTokenBatch(buf []byte, batch cluster.TokenBatch, k int) ([]byte, error) {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(int64(batch.QueueLen)))
	buf = append(buf, scratch[:]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(batch.Tokens)))
	buf = append(buf, scratch[:4]...)
	for _, t := range batch.Tokens {
		if len(t.Vec) != k {
			return nil, fmt.Errorf("netlink: token %d has %d coordinates, link rank is %d", t.Item, len(t.Vec), k)
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(t.Item))
		buf = append(buf, scratch[:4]...)
		for _, v := range t.Vec {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	return buf, nil
}

// DecodeTokenBatch decodes an AppendTokenBatch payload, validating the
// declared count against the payload length.
func DecodeTokenBatch(payload []byte, k int) (cluster.TokenBatch, error) {
	if len(payload) < 12 {
		return cluster.TokenBatch{}, fmt.Errorf("netlink: token batch payload %d bytes, want ≥ 12", len(payload))
	}
	batch := cluster.TokenBatch{QueueLen: int(int64(binary.LittleEndian.Uint64(payload)))}
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	if want := batchWireSize(count, k); want != len(payload) {
		return cluster.TokenBatch{}, fmt.Errorf("netlink: token batch declares %d rank-%d tokens (%d bytes) but payload is %d bytes",
			count, k, want, len(payload))
	}
	pos := 12
	batch.Tokens = make([]cluster.Token, count)
	for i := 0; i < count; i++ {
		item := int32(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		vec := make([]float64, k)
		for c := 0; c < k; c++ {
			vec[c] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		}
		batch.Tokens[i] = cluster.Token{Item: item, Vec: vec}
	}
	return batch, nil
}
