// Package netlink is the real-network backend of NOMAD's distributed
// mode: a length-prefixed binary wire protocol over TCP, a coordinator
// rendezvous that assigns machine ranks and broadcasts the item
// (column) ownership map, and a mesh Link with heartbeat-based peer
// failure detection. It implements cluster.Link, so the training
// runners in internal/core are identical over netsim and over real
// sockets.
//
// Every frame on the wire is:
//
//	offset  size  field
//	0       4     magic "NMLK" (little-endian uint32 0x4e4d4c4b)
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     reserved (zero)
//	8       4     sender rank (int32; -1 before rank assignment)
//	12      4     payload length (uint32)
//	16      4     CRC-32 (IEEE) of the payload
//	20      n     payload
//
// Frames with a bad magic, an unsupported version, an oversized length
// or a CRC mismatch are rejected before any payload interpretation.
// Token payloads reuse the little-endian layout of the train.State
// checkpoint format (int32 indices, raw float64 bits), and the
// rendezvous broadcasts resume state with train.State's own encoder.
package netlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"nomad/internal/cluster"
)

// Magic identifies a netlink frame ("NMLK").
const Magic uint32 = 0x4e4d4c4b

// Version is the wire-protocol version spoken by this build. A peer
// announcing any other version is rejected at the first frame.
const Version byte = 1

// FrameType tags the meaning of a frame's payload.
type FrameType byte

// Frame types. Hello/Welcome/Mesh/Ready/Go belong to the rendezvous;
// Tokens/Ctl/EOF/Heartbeat/Barrier* to the established link.
const (
	FrameHello      FrameType = 1  // worker → coordinator: config digest + advertised address
	FrameWelcome    FrameType = 2  // coordinator → worker: rank, cluster map, ownership, resume state
	FrameTokens     FrameType = 3  // token batch (§3.5 unit of transfer)
	FrameCtl        FrameType = 4  // opaque control frame (kind byte + payload)
	FrameEOF        FrameType = 5  // orderly end of the sender's stream
	FrameHeartbeat  FrameType = 6  // liveness probe
	FrameBarrierReq FrameType = 7  // member → rank 0: barrier arrival
	FrameBarrierRel FrameType = 8  // rank 0 → member: barrier release
	FrameMesh       FrameType = 9  // peer → peer: identifies the dialler's rank
	FrameReady      FrameType = 10 // worker → coordinator: mesh established
	FrameGo         FrameType = 11 // coordinator → worker: start training
	FrameError      FrameType = 12 // handshake rejection, payload is the reason
)

// headerSize is the fixed frame-header length.
const headerSize = 20

// MaxPayload bounds a frame payload (256 MiB). Length prefixes beyond
// it are rejected before any allocation; payloads under it are read in
// bounded chunks so a corrupt length in a short stream fails on EOF,
// not on an up-front allocation.
const MaxPayload = 1 << 28

// VersionError reports a peer speaking an unsupported protocol
// version.
type VersionError struct {
	Got, Want byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("netlink: protocol version %d, this build speaks %d", e.Got, e.Want)
}

// Wire-format rejection errors.
var (
	ErrBadMagic = errors.New("netlink: bad frame magic")
	ErrBadCRC   = errors.New("netlink: frame payload CRC mismatch")
	ErrOversize = errors.New("netlink: frame payload exceeds MaxPayload")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    FrameType
	From    int
	Payload []byte
}

// beginFrame appends a frame header with the payload length and CRC
// still zero; finishFrame patches them once the payload has been
// encoded in place. Together they let a frame be serialized into one
// reusable buffer with a single pass over the payload bytes.
func beginFrame(buf []byte, typ FrameType, from int) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	hdr[5] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(from)))
	return append(buf, hdr[:]...)
}

// finishFrame fills in the payload length and CRC of the frame whose
// header starts at off, the payload being everything encoded after it.
func finishFrame(buf []byte, off int) []byte {
	payload := buf[off+headerSize:]
	binary.LittleEndian.PutUint32(buf[off+12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[off+16:], crc32.ChecksumIEEE(payload))
	return buf
}

// AppendFrame appends the encoded frame to buf and returns it. The
// payload may be nil.
//
//nomad:noalloc
func AppendFrame(buf []byte, typ FrameType, from int, payload []byte) []byte {
	off := len(buf)
	buf = beginFrame(buf, typ, from)
	buf = append(buf, payload...)
	return finishFrame(buf, off)
}

// AppendTokenFrame appends one complete FrameTokens frame, encoding
// the batch's token vectors directly into the frame buffer — the
// single copy of the send path. With a buffer of sufficient capacity
// (a connection's reusable write buffer after warm-up) it allocates
// nothing. Oversized batches are rejected before any encoding.
//
//nomad:noalloc
func AppendTokenFrame(buf []byte, from int, batch cluster.TokenBatch, k int) ([]byte, error) {
	if batchWireSize(len(batch.Tokens), k) > MaxPayload {
		return nil, ErrOversize
	}
	off := len(buf)
	buf = beginFrame(buf, FrameTokens, from)
	buf, err := AppendTokenBatch(buf, batch, k)
	if err != nil {
		return nil, err
	}
	return finishFrame(buf, off), nil
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, typ FrameType, from int, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrOversize
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, headerSize+len(payload)), typ, from, payload))
	return err
}

// ReadFrame reads and validates one frame. It rejects bad magic,
// version mismatches, oversized lengths and CRC mismatches with typed
// errors; a stream truncated mid-frame surfaces io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := readFrame(r, nil)
	return f, err
}

// ReadFrameReuse is ReadFrame with a caller-owned payload arena: the
// frame's payload is read into buf (grown as needed) and aliases it.
// The returned buffer must be passed to the next call once the frame
// has been fully consumed — the explicit hand-off that lets one
// buffer serve a connection's whole inbound stream with zero
// steady-state allocation. Payload bytes that must outlive the next
// read (control frames queued for later) are copied by the caller.
func ReadFrameReuse(r io.Reader, buf []byte) (Frame, []byte, error) {
	return readFrame(r, buf)
}

//nomad:noalloc
func readFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	// The header is read into the reusable buffer too (a stack array
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame); every header field is parsed into locals
	// before the payload read below overwrites it.
	buf = slices.Grow(buf[:0], headerSize)[:headerSize] //nomad:alloc-ok reusable buffer warm-up growth
	hdr := buf[:headerSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, buf, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return Frame{}, buf, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, buf, &VersionError{Got: hdr[4], Want: Version} //nomad:alloc-ok rejection path, terminal for the stream
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, buf, fmt.Errorf("netlink: reserved header bytes must be zero") //nomad:alloc-ok rejection path, terminal for the stream
	}
	f := Frame{
		Type: FrameType(hdr[5]),
		From: int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
	}
	length := binary.LittleEndian.Uint32(hdr[12:])
	if length > MaxPayload {
		return Frame{}, buf, ErrOversize
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[16:])
	if length > 0 {
		// Chunked read, directly into the payload buffer: the buffer
		// grows only as data actually arrives, so a corrupt length
		// prefix on a short stream fails with ErrUnexpectedEOF after at
		// most one chunk instead of provoking a giant up-front
		// allocation.
		const chunk = 1 << 20
		payload := buf[:0]
		for remaining := int(length); remaining > 0; {
			c := min(remaining, chunk)
			start := len(payload)
			payload = slices.Grow(payload, c)[:start+c] //nomad:alloc-ok reusable buffer warm-up growth
			if _, err := io.ReadFull(r, payload[start:]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, payload, err
			}
			remaining -= c
		}
		buf = payload
		f.Payload = payload
	}
	if crc32.ChecksumIEEE(f.Payload) != wantCRC {
		return Frame{}, buf, ErrBadCRC
	}
	return f, buf, nil
}

// tokenWireSize is the encoded size of one rank-k token: the item
// index plus the raw float64 coordinates.
func tokenWireSize(k int) int { return 4 + 8*k }

// batchWireSize is the encoded payload size of a TokenBatch of rank-k
// tokens.
func batchWireSize(tokens, k int) int { return 12 + tokens*tokenWireSize(k) }

// AppendTokenBatch encodes a token batch: the sender's gossiped queue
// length (§3.3), the token count, then each (j, hⱼ) pair with hⱼ as
// raw little-endian float64 bits — the same scalar layout the
// train.State checkpoint uses. Every token must have exactly k
// coordinates. The payload is pre-sized once and the vectors are
// stored with batched little-endian writes straight into it, so a
// buffer with warm capacity costs zero allocations.
//
//nomad:noalloc
func AppendTokenBatch(buf []byte, batch cluster.TokenBatch, k int) ([]byte, error) {
	le := binary.LittleEndian
	base := len(buf)
	buf = slices.Grow(buf, batchWireSize(len(batch.Tokens), k))[:base+batchWireSize(len(batch.Tokens), k)] //nomad:alloc-ok reusable buffer warm-up growth
	le.PutUint64(buf[base:], uint64(int64(batch.QueueLen)))
	le.PutUint32(buf[base+8:], uint32(len(batch.Tokens)))
	pos := base + 12
	for i := range batch.Tokens {
		t := &batch.Tokens[i]
		if len(t.Vec) != k {
			return nil, fmt.Errorf("netlink: token %d has %d coordinates, link rank is %d", t.Item, len(t.Vec), k) //nomad:alloc-ok malformed-batch error path
		}
		le.PutUint32(buf[pos:], uint32(t.Item))
		pos += 4
		for _, v := range t.Vec {
			le.PutUint64(buf[pos:], math.Float64bits(v))
			pos += 8
		}
	}
	return buf, nil
}

// tokenBatchCount validates a payload's wire-declared token count
// against the length of the payload actually received — before any
// allocation, and without ever multiplying the wire-supplied count
// (which could overflow): the count must equal the number of whole
// rank-k tokens the payload's bytes can hold.
//
//nomad:noalloc
func tokenBatchCount(payload []byte, k int) (int, error) {
	if len(payload) < 12 {
		return 0, fmt.Errorf("netlink: token batch payload %d bytes, want ≥ 12", len(payload)) //nomad:alloc-ok malformed-batch error path
	}
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	per := tokenWireSize(k)
	rem := len(payload) - 12
	if rem%per != 0 || count != rem/per {
		//nomad:alloc-ok malformed-batch error path
		return 0, fmt.Errorf("netlink: token batch declares %d rank-%d tokens but payload holds %d bytes of token data",
			count, k, rem)
	}
	return count, nil
}

// DecodeTokenBatch decodes an AppendTokenBatch payload, validating the
// declared count against the payload length before allocating. The
// returned batch owns freshly allocated vectors; DecodeTokenBatchInto
// is the allocation-free arena variant.
func DecodeTokenBatch(payload []byte, k int) (cluster.TokenBatch, error) {
	count, err := tokenBatchCount(payload, k)
	if err != nil {
		return cluster.TokenBatch{}, err
	}
	batch := cluster.TokenBatch{QueueLen: int(int64(binary.LittleEndian.Uint64(payload)))}
	pos := 12
	batch.Tokens = make([]cluster.Token, count)
	for i := 0; i < count; i++ {
		item := int32(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		vec := make([]float64, k)
		for c := 0; c < k; c++ {
			vec[c] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		}
		batch.Tokens[i] = cluster.Token{Item: item, Vec: vec}
	}
	return batch, nil
}

// DecodeTokenBatchInto decodes an AppendTokenBatch payload into the
// given arena, validating the declared count first. The returned
// batch's vectors are views into the arena and the batch owns it:
// the consumer calls Release when the tokens have been copied out,
// which recycles a pooled arena (cluster.GetBatchBuf) for the next
// frame. With a warm arena the decode allocates nothing.
//
//nomad:noalloc
func DecodeTokenBatchInto(payload []byte, k int, buf *cluster.BatchBuf) (cluster.TokenBatch, error) {
	count, err := tokenBatchCount(payload, k)
	if err != nil {
		return cluster.TokenBatch{}, err
	}
	le := binary.LittleEndian
	buf.Reset()
	pos := 12
	for i := 0; i < count; i++ {
		item := int32(le.Uint32(payload[pos:]))
		pos += 4
		vec := buf.AddVec(item, k) //nomad:alloc-ok arena warm-up growth, amortized away on reuse
		for c := range vec {
			vec[c] = math.Float64frombits(le.Uint64(payload[pos:]))
			pos += 8
		}
	}
	return buf.HandOff(int(int64(le.Uint64(payload)))), nil
}
