package netlink

// Rendezvous: how a set of processes becomes a NOMAD cluster.
//
//	worker                    coordinator                   worker
//	  │── Hello{digest,addr} ──►│◄── Hello{digest,addr} ──────│
//	  │◄─ Welcome{rank,map,…} ──│─── Welcome{rank,map,…} ────►│
//	  │◄═══════ mesh dial: Mesh{rank} to every lower rank ═══►│
//	  │── Ready ───────────────►│◄──────────────────── Ready ─│
//	  │◄─ Go ───────────────────│─── Go ─────────────────────►│
//
// The coordinator (always rank 0) listens, collects one Hello per
// expected worker, assigns ranks in arrival order, and broadcasts a
// Welcome carrying the cluster size, the peer address list, the item
// ownership map (which machine each column token starts at) and — for
// resumed runs — the full training state in train.State's own binary
// encoding. Workers then dial every lower-ranked peer to complete the
// full mesh, report Ready, and training starts on Go. A config digest
// in the Hello refuses mismatched invocations (different dataset,
// seed, rank or budget) before any training happens.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/train"
)

// ErrConfigMismatch reports a worker whose training configuration
// digest differs from the coordinator's.
var ErrConfigMismatch = errors.New("netlink: handshake config digest mismatch")

// Dial backoff schedule: 10ms doubling to a 1s cap.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffCap  = time.Second
)

// dialBackoff returns the wait before dial attempt+1: capped
// exponential growth from dialBackoffBase, with up to 50% added
// jitter derived from seed so concurrent workers desynchronize.
func dialBackoff(attempt int, seed int64) time.Duration {
	d := dialBackoffBase
	for i := 0; i < attempt && d < dialBackoffCap; i++ {
		d *= 2
	}
	if d > dialBackoffCap {
		d = dialBackoffCap
	}
	// splitmix64 step: cheap, stateless jitter from the seed.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d/2+1))
}

// RejectedError is returned by Join when the coordinator refuses the
// handshake with a FrameError.
type RejectedError struct{ Reason string }

func (e *RejectedError) Error() string { return "netlink: handshake rejected: " + e.Reason }

// Handshake is what a worker learns from the coordinator's Welcome.
type Handshake struct {
	// Owner maps each item (column) to the machine its token starts at.
	Owner []int32
	// State is the resume state for checkpoint-continued runs, nil for
	// fresh ones.
	State *train.State
}

// Coordinator is the rendezvous point of a multi-process cluster. It
// listens immediately (so Addr is known before Run blocks) and becomes
// machine 0 of the mesh.
type Coordinator struct {
	ln        net.Listener
	machines  int
	configSum uint64
	owner     []int32
	state     *train.State
	opts      Options
}

// NewCoordinator listens on the given address for machines-1 workers.
// owner is the item ownership map to broadcast; st, when non-nil, is
// resume state shipped to every worker.
func NewCoordinator(listen string, machines int, configSum uint64, owner []int32, st *train.State, opts Options) (*Coordinator, error) {
	if machines < 2 {
		return nil, fmt.Errorf("netlink: a cluster needs at least 2 machines, got %d", machines)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("netlink: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln, machines: machines, configSum: configSum, owner: owner, state: st, opts: opts}, nil
}

// Addr returns the coordinator's bound address (useful with ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// watch force-closes the given resources when ctx ends mid-handshake,
// unblocking any pending accept or read; the returned stop must be
// deferred.
func watch(ctx context.Context, closers ...func()) func() {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range closers {
				c()
			}
		case <-done:
		}
	}()
	return func() { close(done) }
}

// Run performs the coordinator's side of the rendezvous and returns
// the established rank-0 link. It closes the listener before
// returning.
func (c *Coordinator) Run(ctx context.Context) (*TCP, error) {
	defer c.ln.Close()
	deadline := time.Now().Add(c.opts.rendezvousTimeout())
	conns := make(map[int]net.Conn)
	addrs := make([]string, c.machines)
	fail := func(err error) (*TCP, error) {
		for _, conn := range conns {
			conn.Close()
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	stop := watch(ctx, func() { c.ln.Close() })
	defer stop()

	for rank := 1; rank < c.machines; rank++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("netlink: coordinator accept: %w", err))
		}
		conn.SetDeadline(deadline) //nolint:errcheck
		f, err := ReadFrame(conn)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("netlink: coordinator handshake read: %w", err))
		}
		if f.Type != FrameHello {
			conn.Close()
			return fail(fmt.Errorf("netlink: expected Hello, got frame type %d", f.Type))
		}
		sum, addr, err := decodeHello(f.Payload)
		if err != nil {
			conn.Close()
			return fail(err)
		}
		if sum != c.configSum {
			WriteFrame(conn, FrameError, 0, []byte("config digest mismatch: every process must run the same dataset, seed and hyper-parameters")) //nolint:errcheck
			conn.Close()
			return fail(ErrConfigMismatch)
		}
		conns[rank] = conn
		addrs[rank] = addr
	}

	for rank, conn := range conns {
		if err := WriteFrame(conn, FrameWelcome, 0, c.welcomePayload(rank, addrs)); err != nil {
			return fail(fmt.Errorf("netlink: send welcome to machine %d: %w", rank, err))
		}
	}
	for rank, conn := range conns {
		f, err := ReadFrame(conn)
		if err != nil || f.Type != FrameReady {
			return fail(fmt.Errorf("netlink: machine %d never became ready (frame %v, err %v)", rank, f.Type, err))
		}
	}
	for rank, conn := range conns {
		if err := WriteFrame(conn, FrameGo, 0, nil); err != nil {
			return fail(fmt.Errorf("netlink: send go to machine %d: %w", rank, err))
		}
	}
	for _, conn := range conns {
		conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	return newTCP(ctx, 0, c.machines, conns, c.opts), nil
}

// welcomePayload encodes the Welcome for one worker.
func (c *Coordinator) welcomePayload(rank int, addrs []string) []byte {
	return encodeWelcome(rank, c.machines, c.opts.K, c.configSum, c.owner, addrs, c.state)
}

// encodeWelcome encodes a Welcome payload — shared by the rendezvous
// coordinator and the mid-run JoinGate, so a late joiner speaks the
// exact codec a rendezvous worker does.
func encodeWelcome(rank, machines, k int, configSum uint64, owner []int32, addrs []string, st *train.State) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var w [8]byte
	le.PutUint32(w[:4], uint32(int32(rank)))
	buf.Write(w[:4])
	le.PutUint32(w[:4], uint32(int32(machines)))
	buf.Write(w[:4])
	le.PutUint32(w[:4], uint32(int32(k)))
	buf.Write(w[:4])
	flags := uint32(0)
	if st != nil {
		flags |= 1
	}
	le.PutUint32(w[:4], flags)
	buf.Write(w[:4])
	le.PutUint64(w[:], configSum)
	buf.Write(w[:])
	le.PutUint64(w[:], uint64(len(owner)))
	buf.Write(w[:])
	for _, o := range owner {
		le.PutUint32(w[:4], uint32(o))
		buf.Write(w[:4])
	}
	le.PutUint32(w[:4], uint32(len(addrs)))
	buf.Write(w[:4])
	for _, a := range addrs {
		le.PutUint16(w[:2], uint16(len(a)))
		buf.Write(w[:2])
		buf.WriteString(a)
	}
	if st != nil {
		// The resume state travels in train.State's own versioned binary
		// encoding — the exact bytes a checkpoint file holds.
		if err := st.WriteBinary(&buf); err != nil {
			panic(fmt.Sprintf("netlink: encode resume state: %v", err)) // state was validated by the caller
		}
	}
	return buf.Bytes()
}

// helloPayload encodes a worker's Hello.
func helloPayload(configSum uint64, addr string) []byte {
	buf := make([]byte, 0, 10+len(addr))
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], configSum)
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint16(w[:2], uint16(len(addr)))
	buf = append(buf, w[:2]...)
	return append(buf, addr...)
}

func decodeHello(payload []byte) (sum uint64, addr string, err error) {
	if len(payload) < 10 {
		return 0, "", fmt.Errorf("netlink: short hello (%d bytes)", len(payload))
	}
	sum = binary.LittleEndian.Uint64(payload)
	n := int(binary.LittleEndian.Uint16(payload[8:]))
	if len(payload) != 10+n {
		return 0, "", fmt.Errorf("netlink: hello declares %d-byte address in %d-byte payload", n, len(payload))
	}
	return sum, string(payload[10 : 10+n]), nil
}

// decodeWelcome parses a Welcome payload.
func decodeWelcome(payload []byte) (rank, machines, k int, sum uint64, owner []int32, addrs []string, st *train.State, err error) {
	le := binary.LittleEndian
	if len(payload) < 32 {
		return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: short welcome (%d bytes)", len(payload))
	}
	rank = int(int32(le.Uint32(payload[0:])))
	machines = int(int32(le.Uint32(payload[4:])))
	k = int(int32(le.Uint32(payload[8:])))
	flags := le.Uint32(payload[12:])
	sum = le.Uint64(payload[16:])
	nOwner := le.Uint64(payload[24:])
	if machines < 2 || rank < 1 || rank >= machines || k < 1 {
		return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome rank %d of %d (k=%d) out of range", rank, machines, k)
	}
	pos := 32
	if nOwner > uint64(MaxPayload/4) || pos+int(nOwner)*4 > len(payload) {
		return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome ownership map overruns payload")
	}
	owner = make([]int32, nOwner)
	for i := range owner {
		owner[i] = int32(le.Uint32(payload[pos:]))
		pos += 4
	}
	if pos+4 > len(payload) {
		return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome truncated before address list")
	}
	nAddr := int(le.Uint32(payload[pos:]))
	pos += 4
	if nAddr != machines {
		return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome has %d addresses for %d machines", nAddr, machines)
	}
	addrs = make([]string, nAddr)
	for i := range addrs {
		if pos+2 > len(payload) {
			return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome truncated in address list")
		}
		n := int(le.Uint16(payload[pos:]))
		pos += 2
		if pos+n > len(payload) {
			return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome truncated in address list")
		}
		addrs[i] = string(payload[pos : pos+n])
		pos += n
	}
	if flags&1 != 0 {
		st, err = train.ReadState(bytes.NewReader(payload[pos:]))
		if err != nil {
			return 0, 0, 0, 0, nil, nil, nil, fmt.Errorf("netlink: welcome resume state: %w", err)
		}
	}
	return rank, machines, k, sum, owner, addrs, st, nil
}

// advertiseAddr derives the mesh address a worker announces to the
// coordinator. A wildcard listen host (":0", "0.0.0.0", "[::]") is
// unroutable for peers on other machines, so it is replaced with the
// local IP of the coordinator connection — the interface the cluster
// demonstrably reaches this process on — keeping the listener's port.
// An explicit listen host is respected as given.
func advertiseAddr(ln net.Listener, coord net.Conn) string {
	addr := ln.Addr().String()
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if ip := net.ParseIP(host); ip != nil && !ip.IsUnspecified() {
		return addr
	}
	lhost, _, err := net.SplitHostPort(coord.LocalAddr().String())
	if err != nil {
		return addr
	}
	return net.JoinHostPort(lhost, port)
}

// Join performs a worker's side of the rendezvous: dial the
// coordinator, learn our rank and the cluster map, complete the mesh,
// and return the established link. listen may be empty or ":0" for an
// ephemeral port.
func Join(ctx context.Context, join, listen string, configSum uint64, opts Options) (*TCP, *Handshake, error) {
	if listen == "" {
		listen = ":0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, fmt.Errorf("netlink: worker listen: %w", err)
	}
	defer ln.Close()
	deadline := time.Now().Add(opts.rendezvousTimeout())

	// The coordinator may come up after its workers (CI launches all
	// processes at once), so dialling retries until the rendezvous
	// deadline with capped exponential backoff plus jitter — fast when
	// the coordinator appears quickly, and no thundering herd of
	// synchronized redials when many workers race a slow one.
	d := net.Dialer{Deadline: deadline}
	var coord net.Conn
	for attempt := 0; ; attempt++ {
		var derr error
		coord, derr = d.DialContext(ctx, "tcp", join)
		if derr == nil {
			break
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("netlink: dial coordinator %s: %w", join, derr)
		}
		select {
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("netlink: dial coordinator %s: %w", join, context.Cause(ctx))
		case <-time.After(dialBackoff(attempt, time.Now().UnixNano())):
		}
	}
	conns := map[int]net.Conn{0: coord}
	fail := func(err error) (*TCP, *Handshake, error) {
		for _, conn := range conns {
			conn.Close()
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	stop := watch(ctx, func() { ln.Close() }, func() { coord.Close() })
	defer stop()

	coord.SetDeadline(deadline) //nolint:errcheck
	if err := WriteFrame(coord, FrameHello, -1, helloPayload(configSum, advertiseAddr(ln, coord))); err != nil {
		return fail(fmt.Errorf("netlink: send hello: %w", err))
	}
	f, err := ReadFrame(coord)
	if err != nil {
		return fail(fmt.Errorf("netlink: read welcome: %w", err))
	}
	if f.Type == FrameError {
		return fail(&RejectedError{Reason: string(f.Payload)})
	}
	if f.Type != FrameWelcome {
		return fail(fmt.Errorf("netlink: expected Welcome, got frame type %d", f.Type))
	}
	rank, machines, k, sum, owner, addrs, st, err := decodeWelcome(f.Payload)
	if err != nil {
		return fail(err)
	}
	if sum != configSum {
		return fail(ErrConfigMismatch)
	}
	opts.K = k

	// Mesh: accept one connection from every higher rank while dialling
	// every lower one (the coordinator is already connected).
	var mu sync.Mutex
	acceptErr := make(chan error, 1)
	expect := machines - 1 - rank
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- fmt.Errorf("netlink: mesh accept: %w", err)
				return
			}
			conn.SetDeadline(deadline) //nolint:errcheck
			mf, err := ReadFrame(conn)
			if err != nil || mf.Type != FrameMesh || mf.From <= rank || mf.From >= machines {
				conn.Close()
				acceptErr <- fmt.Errorf("netlink: bad mesh introduction (frame %v, err %v)", mf.Type, err)
				return
			}
			mu.Lock()
			conns[mf.From] = conn
			mu.Unlock()
		}
		acceptErr <- nil
	}()
	for r := 1; r < rank; r++ {
		conn, err := d.DialContext(ctx, "tcp", addrs[r])
		if err != nil {
			<-acceptErr
			return fail(fmt.Errorf("netlink: dial machine %d at %s: %w", r, addrs[r], err))
		}
		conn.SetDeadline(deadline) //nolint:errcheck
		if err := WriteFrame(conn, FrameMesh, rank, nil); err != nil {
			conn.Close()
			<-acceptErr
			return fail(fmt.Errorf("netlink: introduce to machine %d: %w", r, err))
		}
		mu.Lock()
		conns[r] = conn
		mu.Unlock()
	}
	if err := <-acceptErr; err != nil {
		return fail(err)
	}

	if err := WriteFrame(coord, FrameReady, rank, nil); err != nil {
		return fail(fmt.Errorf("netlink: send ready: %w", err))
	}
	f, err = ReadFrame(coord)
	if err != nil || f.Type != FrameGo {
		return fail(fmt.Errorf("netlink: waiting for go (frame %v, err %v)", f.Type, err))
	}
	for _, conn := range conns {
		conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	return newTCP(ctx, rank, machines, conns, opts), &Handshake{Owner: owner, State: st}, nil
}

// Loopback builds a whole cluster of real TCP links inside one
// process, every machine on 127.0.0.1 with an ephemeral port — the
// same wire protocol, rendezvous and failure detection as a
// multi-process run, minus the processes. It is the tcp backend of
// single-process distributed training and the workhorse of the
// (sim | tcp) test matrix. The returned links are indexed by rank.
func Loopback(ctx context.Context, machines int, configSum uint64, owner []int32, st *train.State, opts Options) ([]cluster.Link, error) {
	coord, err := NewCoordinator("127.0.0.1:0", machines, configSum, owner, st, opts)
	if err != nil {
		return nil, err
	}
	links := make([]cluster.Link, machines)
	errc := make(chan error, machines)
	var mu sync.Mutex
	go func() {
		l, err := coord.Run(ctx)
		if err == nil {
			mu.Lock()
			links[0] = l
			mu.Unlock()
		}
		errc <- err
	}()
	for i := 1; i < machines; i++ {
		go func() {
			l, _, err := Join(ctx, coord.Addr(), "127.0.0.1:0", configSum, opts)
			if err == nil {
				mu.Lock()
				links[l.Rank()] = l
				mu.Unlock()
			}
			errc <- err
		}()
	}
	var firstErr error
	for i := 0; i < machines; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		mu.Lock()
		for _, l := range links {
			if l != nil {
				l.Close() //nolint:errcheck
			}
		}
		mu.Unlock()
		return nil, firstErr
	}
	return links, nil
}
