package netlink

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
)

// Options tunes a TCP link and its rendezvous.
type Options struct {
	// K is the factor rank: the number of float64 coordinates each
	// token carries on the wire.
	K int
	// HeartbeatInterval is how often liveness probes are sent to every
	// peer (default 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer down when nothing — tokens,
	// control frames or heartbeats — has arrived from it for this long
	// (default 10s; 0 keeps the default, negative disables).
	HeartbeatTimeout time.Duration
	// RendezvousTimeout bounds the whole handshake (default 60s).
	RendezvousTimeout time.Duration
	// BarrierTimeout bounds every Barrier call: a member that waits
	// longer fails fast with a *cluster.PeerDownError blaming the
	// missing participant instead of hanging until the silent-peer
	// timeout (default 30s; 0 keeps the default, negative disables).
	BarrierTimeout time.Duration
	// Failover keeps the link alive when a peer dies: the dead peer is
	// evicted (sends toward it return a per-peer
	// *cluster.PeerDownError, its stream is treated as ended) while
	// traffic among survivors continues and Err stays nil. Without it
	// the first peer failure fails the whole link.
	Failover bool
	// OnPeerDown, when non-nil, is invoked (once per dead peer, from a
	// link-internal goroutine) when a peer's connection breaks without
	// an orderly end-of-stream or its heartbeats time out. self is the
	// observing endpoint's rank, rank the dead peer's.
	OnPeerDown func(self, rank int, err error)
}

func (o Options) heartbeatInterval() time.Duration {
	if o.HeartbeatInterval <= 0 {
		return 500 * time.Millisecond
	}
	return o.HeartbeatInterval
}

func (o Options) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout == 0 {
		return 10 * time.Second
	}
	return o.HeartbeatTimeout
}

func (o Options) rendezvousTimeout() time.Duration {
	if o.RendezvousTimeout <= 0 {
		return 60 * time.Second
	}
	return o.RendezvousTimeout
}

func (o Options) barrierTimeout() time.Duration {
	if o.BarrierTimeout == 0 {
		return 30 * time.Second
	}
	return o.BarrierTimeout
}

// peer is one established connection of the mesh.
type peer struct {
	rank     int
	conn     net.Conn
	wmu      sync.Mutex   // serializes frame writes, guards wbuf
	wbuf     []byte       // reusable frame-encode buffer: one flush is one syscall
	lastRecv atomic.Int64 // unix nanos of the last frame from this peer
	lastSend atomic.Int64 // unix nanos of the last frame written to this peer
	eof      atomic.Bool  // stream ended: FrameEOF received, or peer evicted
	dead     atomic.Bool  // failover: peer failed and was evicted from the mesh
}

// TCP is a full-mesh cluster.Link over TCP connections, one per peer.
// Frames within a connection are FIFO, so per-peer ordering holds
// across the token and control planes. By default failure of any peer
// fails the whole link: NOMAD's token conservation cannot survive
// losing a machine that holds item tokens, so the run is aborted with
// a typed *cluster.PeerDownError rather than silently diverging. With
// Options.Failover the dead peer is instead evicted from the mesh —
// its stream is treated as ended, sends toward it return a per-peer
// *cluster.PeerDownError, Err stays nil — and the failover protocol
// in internal/core restores conservation by regenerating the tokens
// that died with it.
type TCP struct {
	rank     int
	machines int
	opts     Options
	refwire  bool            // NOMAD_REFERENCE_WIRE: legacy allocating codec paths
	ctx      context.Context // rendezvous context: cancellation fails barriers fast

	peers []*peer // indexed by rank; self is nil

	recv chan cluster.Inbound
	ctl  chan cluster.Ctl
	down chan struct{} // closed on failure or Close: unblocks everything

	sendClosed atomic.Bool
	failErr    atomic.Pointer[cluster.PeerDownError]
	eofLeft    atomic.Int32
	deadPeers  atomic.Int32 // failover: peers evicted so far
	chanOnce   sync.Once    // closes recv+ctl
	downOnce   sync.Once    // closes down + conns
	failOnce   sync.Once    // peer-down reporting

	// Coordinator-mediated barrier state (rank 0 collects arrivals and
	// releases; see Barrier). gen counts this endpoint's Barrier calls.
	bmu      sync.Mutex
	bcond    *sync.Cond
	gen      uint32
	arrivals map[uint32]map[int]bool // rank 0: arrived ranks per generation (self included)
	released map[uint32]bool         // others: releases seen

	wg        sync.WaitGroup
	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

var _ cluster.Link = (*TCP)(nil)

// newTCP wires an established mesh into a running link: one reader
// goroutine per peer plus the heartbeat monitor. ctx is the
// rendezvous context; its cancellation fails in-flight barriers fast.
func newTCP(ctx context.Context, rank, machines int, conns map[int]net.Conn, opts Options) *TCP {
	if ctx == nil {
		ctx = context.Background()
	}
	l := &TCP{
		rank:     rank,
		machines: machines,
		opts:     opts,
		refwire:  cluster.ReferenceWire(),
		ctx:      ctx,
		peers:    make([]*peer, machines),
		recv:     make(chan cluster.Inbound, 4*machines),
		ctl:      make(chan cluster.Ctl, 16*machines),
		down:     make(chan struct{}),
		arrivals: make(map[uint32]map[int]bool),
		released: make(map[uint32]bool),
	}
	l.bcond = sync.NewCond(&l.bmu)
	l.eofLeft.Store(int32(machines - 1))
	now := time.Now().UnixNano()
	for r, conn := range conns {
		p := &peer{rank: r, conn: conn}
		p.lastRecv.Store(now)
		p.lastSend.Store(now)
		l.peers[r] = p
	}
	for _, p := range l.peers {
		if p == nil {
			continue
		}
		l.wg.Add(1)
		go l.reader(p)
	}
	l.wg.Add(1)
	go l.heartbeat()
	// Channel closer of last resort: once every reader has exited
	// (failure or Close), the inbound channels close if the orderly
	// all-EOF path has not already closed them.
	go func() {
		l.wg.Wait()
		l.closeChannels()
	}()
	return l
}

// Rank implements cluster.Link.
func (l *TCP) Rank() int { return l.rank }

// Machines implements cluster.Link.
func (l *TCP) Machines() int { return l.machines }

// Err implements cluster.Link.
func (l *TCP) Err() error {
	if e := l.failErr.Load(); e != nil {
		return e
	}
	return nil
}

// Stats implements cluster.Link, counting wire bytes actually written.
func (l *TCP) Stats() cluster.LinkStats {
	return cluster.LinkStats{BytesSent: l.bytesSent.Load(), MessagesSent: l.msgsSent.Load()}
}

// writeFrame writes one frame to a peer under its write lock: the
// frame is encoded into the peer's reusable buffer and flushed with a
// single Write call — one flush is one syscall, no per-frame
// allocation once the buffer is warm. The reference wire path keeps
// the legacy fresh-buffer-per-frame behaviour for the A/B.
func (l *TCP) writeFrame(p *peer, typ FrameType, payload []byte) error {
	p.wmu.Lock()
	var buf []byte
	if l.refwire {
		buf = AppendFrame(make([]byte, 0, headerSize+len(payload)), typ, l.rank, payload)
	} else {
		buf = AppendFrame(p.wbuf[:0], typ, l.rank, payload)
		p.wbuf = buf
	}
	_, err := p.conn.Write(buf)
	if err == nil {
		p.lastSend.Store(time.Now().UnixNano())
	}
	p.wmu.Unlock()
	if err == nil {
		l.bytesSent.Add(int64(len(buf)))
		l.msgsSent.Add(1)
	}
	return err
}

// Send implements cluster.Link. On the pooled wire path the batch is
// serialized straight into the peer's write buffer — header, batch
// header and token vectors in one pass, so the only copy between the
// sender's arena and the socket is vector → frame — and flushed with
// a single syscall. The batch stays owned by the caller.
func (l *TCP) Send(dst int, batch cluster.TokenBatch) error {
	if l.sendClosed.Load() {
		return cluster.ErrLinkClosed
	}
	if err := l.Err(); err != nil {
		return err
	}
	p := l.peers[dst]
	if p == nil {
		return fmt.Errorf("netlink: send to self (machine %d)", dst)
	}
	if p.dead.Load() {
		return &cluster.PeerDownError{Rank: dst, Cause: errPeerEvicted}
	}
	if l.refwire {
		payload, err := AppendTokenBatch(make([]byte, 0, batchWireSize(len(batch.Tokens), l.opts.K)), batch, l.opts.K)
		if err != nil {
			return err
		}
		if err := l.writeFrame(p, FrameTokens, payload); err != nil {
			return l.sendFailed(p, err)
		}
		return nil
	}
	p.wmu.Lock()
	buf, err := AppendTokenFrame(p.wbuf[:0], l.rank, batch, l.opts.K)
	if err != nil {
		p.wmu.Unlock()
		return err // encode rejection: the link itself is still healthy
	}
	p.wbuf = buf
	_, werr := p.conn.Write(buf)
	if werr == nil {
		p.lastSend.Store(time.Now().UnixNano())
	}
	p.wmu.Unlock()
	if werr != nil {
		return l.sendFailed(p, werr)
	}
	l.bytesSent.Add(int64(len(buf)))
	l.msgsSent.Add(1)
	return nil
}

// errPeerEvicted is the cause carried by sends toward a peer that
// failover already evicted.
var errPeerEvicted = fmt.Errorf("netlink: peer evicted after failure")

// sendFailed reports a write failure toward p: the peer goes down, and
// the caller gets the link error (whole-link mode) or a per-peer
// *cluster.PeerDownError (failover mode, where Err stays nil).
func (l *TCP) sendFailed(p *peer, werr error) error {
	l.peerDown(p, fmt.Errorf("write: %w", werr))
	if err := l.Err(); err != nil {
		return err
	}
	if l.isDown() {
		return cluster.ErrLinkClosed
	}
	return &cluster.PeerDownError{Rank: p.rank, Cause: werr}
}

// Recv implements cluster.Link.
func (l *TCP) Recv() <-chan cluster.Inbound { return l.recv }

// SendCtl implements cluster.Link.
func (l *TCP) SendCtl(dst int, kind uint8, payload []byte) error {
	if l.sendClosed.Load() {
		return cluster.ErrLinkClosed
	}
	if err := l.Err(); err != nil {
		return err
	}
	framed := make([]byte, 0, 1+len(payload))
	framed = append(framed, kind)
	framed = append(framed, payload...)
	if dst == -1 {
		for _, p := range l.peers {
			if p == nil || p.dead.Load() {
				continue // an evicted peer never truncates the broadcast
			}
			if err := l.writeFrame(p, FrameCtl, framed); err != nil {
				if serr := l.sendFailed(p, err); l.Err() != nil || l.isDown() {
					return serr
				}
				// Failover: this peer just died, the rest of the
				// broadcast still goes out.
			}
		}
		return nil
	}
	p := l.peers[dst]
	if p == nil {
		return fmt.Errorf("netlink: ctl to self (machine %d)", dst)
	}
	if p.dead.Load() {
		return &cluster.PeerDownError{Rank: dst, Cause: errPeerEvicted}
	}
	if err := l.writeFrame(p, FrameCtl, framed); err != nil {
		return l.sendFailed(p, err)
	}
	return nil
}

// Ctl implements cluster.Link.
func (l *TCP) Ctl() <-chan cluster.Ctl { return l.ctl }

// CloseSend implements cluster.Link: an EOF frame ends this machine's
// stream on every peer connection.
func (l *TCP) CloseSend() error {
	if !l.sendClosed.CompareAndSwap(false, true) {
		return nil
	}
	for _, p := range l.peers {
		if p == nil || p.dead.Load() {
			continue
		}
		// Best effort: a peer that is already gone has either failed the
		// link (reported elsewhere) or finished its own drain.
		l.writeFrame(p, FrameEOF, nil) //nolint:errcheck
	}
	return nil
}

// Close implements cluster.Link.
func (l *TCP) Close() error {
	l.CloseSend() //nolint:errcheck // best-effort EOF first
	l.downOnce.Do(func() {
		close(l.down)
		for _, p := range l.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	l.broadcastBarrier()
	l.wg.Wait()
	return nil
}

// Abort kills every connection immediately, without the orderly EOF.
// Peers observe it as this machine failing — exactly what a crashed
// process looks like. It exists for failure-injection tests.
func (l *TCP) Abort() {
	l.sendClosed.Store(true)
	l.downOnce.Do(func() {
		close(l.down)
		for _, p := range l.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	l.broadcastBarrier()
}

// broadcastBarrier wakes barrier waiters after a failure or close.
// The broadcast happens under the condition mutex: waiters evaluate
// their predicate (released/arrivals, Err, isDown) while holding bmu,
// so an unlocked broadcast could land between a waiter's predicate
// check and its Wait registration and be lost forever.
func (l *TCP) broadcastBarrier() {
	l.bmu.Lock()
	l.bcond.Broadcast()
	l.bmu.Unlock()
}

// closed reports whether Close/Abort has run.
func (l *TCP) isDown() bool {
	select {
	case <-l.down:
		return true
	default:
		return false
	}
}

// closeChannels ends the inbound streams exactly once.
func (l *TCP) closeChannels() {
	l.chanOnce.Do(func() {
		close(l.recv)
		close(l.ctl)
	})
}

// peerDown handles a failed peer. In failover mode the peer is
// evicted: its connection closes, its stream counts as ended (so the
// orderly all-EOF teardown still completes), sends toward it return
// per-peer errors, and the link — Err() included — stays up for the
// survivors. Otherwise the whole link fails: record the typed error,
// report it, and tear every connection down so all blocked I/O
// unwinds. Surviving peers get an orderly EOF first, so they
// attribute the cluster failure to the machine that actually died,
// not to this endpoint's teardown.
func (l *TCP) peerDown(p *peer, cause error) {
	if l.opts.Failover && !l.isDown() {
		if !p.dead.CompareAndSwap(false, true) {
			return // already evicted
		}
		l.deadPeers.Add(1)
		err := &cluster.PeerDownError{Rank: p.rank, Cause: cause}
		if l.opts.OnPeerDown != nil {
			l.opts.OnPeerDown(l.rank, p.rank, err)
		}
		p.conn.Close()
		if p.eof.CompareAndSwap(false, true) {
			if l.eofLeft.Add(-1) == 0 {
				l.closeChannels()
			}
		}
		// Barrier waiters re-evaluate: the quorum shrank, or their
		// coordinator died.
		l.broadcastBarrier()
		return
	}
	l.failOnce.Do(func() {
		err := &cluster.PeerDownError{Rank: p.rank, Cause: cause}
		l.failErr.Store(err)
		if l.opts.OnPeerDown != nil {
			l.opts.OnPeerDown(l.rank, p.rank, err)
		}
		l.sendClosed.Store(true)
		for _, q := range l.peers {
			if q != nil && q != p && !q.eof.Load() {
				l.writeFrame(q, FrameEOF, nil) //nolint:errcheck // best effort
			}
		}
		l.downOnce.Do(func() {
			close(l.down)
			for _, q := range l.peers {
				if q != nil {
					q.conn.Close()
				}
			}
		})
		l.broadcastBarrier()
	})
}

// peerDead reports whether failover evicted the given rank.
func (l *TCP) peerDead(rank int) bool {
	p := l.peers[rank]
	return p != nil && p.dead.Load()
}

// reader drains one peer's connection, dispatching frames onto the
// typed channels until the stream ends. On the pooled wire path the
// connection owns one payload buffer that every frame is read into
// (ReadFrameReuse) and token batches are decoded into pooled arenas
// whose ownership travels with the Inbound — the consumer Releases
// them; control payloads, which may sit in the ctl channel across
// many frames, are copied out of the read buffer instead.
func (l *TCP) reader(p *peer) {
	defer l.wg.Done()
	var rbuf []byte // connection-owned payload arena (pooled wire path)
	for {
		var f Frame
		var err error
		if l.refwire {
			f, err = ReadFrame(p.conn)
		} else {
			f, rbuf, err = ReadFrameReuse(p.conn, rbuf)
		}
		if err != nil {
			if p.eof.Load() || l.isDown() {
				return // orderly: stream already ended, or we tore down
			}
			l.peerDown(p, err)
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		if p.eof.Load() && f.Type != FrameHeartbeat {
			continue // data after EOF: tolerate, but never deliver
		}
		switch f.Type {
		case FrameTokens:
			var batch cluster.TokenBatch
			if l.refwire {
				batch, err = DecodeTokenBatch(f.Payload, l.opts.K)
			} else {
				arena := cluster.GetBatchBuf()
				batch, err = DecodeTokenBatchInto(f.Payload, l.opts.K, arena)
				if err != nil {
					arena.Release()
				}
			}
			if err != nil {
				l.peerDown(p, err)
				return
			}
			select {
			case l.recv <- cluster.Inbound{From: p.rank, Batch: batch}:
			case <-l.down:
				return
			}
		case FrameCtl:
			if len(f.Payload) < 1 {
				l.peerDown(p, fmt.Errorf("empty control frame"))
				return
			}
			payload := f.Payload[1:]
			if !l.refwire && len(payload) > 0 {
				// The payload aliases this connection's read buffer, which
				// the next ReadFrameReuse overwrites; control frames are
				// rare and small, so the hand-off is a copy.
				payload = append([]byte(nil), payload...)
			}
			select {
			case l.ctl <- cluster.Ctl{From: p.rank, Kind: f.Payload[0], Payload: payload}:
			case <-l.down:
				return
			}
		case FrameEOF:
			// CAS: a failover eviction may already have counted this
			// peer's stream as ended.
			if p.eof.CompareAndSwap(false, true) {
				if l.eofLeft.Add(-1) == 0 {
					// Every peer has ended its stream in order; nothing can
					// be in flight behind a per-connection FIFO, so the
					// inbound channels are complete.
					l.closeChannels()
				}
			}
		case FrameHeartbeat:
			// lastRecv update above is the whole point.
		case FrameBarrierReq:
			l.bmu.Lock()
			l.arriveLocked(barrierGen(f.Payload), p.rank)
			l.bcond.Broadcast()
			l.bmu.Unlock()
		case FrameBarrierRel:
			l.bmu.Lock()
			l.released[barrierGen(f.Payload)] = true
			l.bcond.Broadcast()
			l.bmu.Unlock()
		default:
			l.peerDown(p, fmt.Errorf("unexpected frame type %d on established link", f.Type))
			return
		}
	}
}

// heartbeat probes every live peer and watches for silent ones.
// Explicit heartbeat frames are only written when the data plane has
// been idle towards that peer for a whole interval: every frame we
// send refreshes the peer's view of our liveness (its lastRecv), so
// under load the liveness signal piggybacks on the token flushes and
// the heartbeat loop costs no syscalls at all. The reference wire
// path keeps the legacy always-write behaviour.
func (l *TCP) heartbeat() {
	defer l.wg.Done()
	interval := l.opts.heartbeatInterval()
	timeout := l.opts.heartbeatTimeout()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.down:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for _, p := range l.peers {
			if p == nil || p.eof.Load() {
				continue // drained (or evicted) peers owe us nothing further
			}
			if timeout > 0 && now-p.lastRecv.Load() > int64(timeout) {
				l.peerDown(p, fmt.Errorf("no frames for %s", timeout))
				if l.Err() != nil || l.isDown() {
					return
				}
				continue // failover: keep watching the survivors
			}
			if !l.refwire && now-p.lastSend.Load() < int64(interval) {
				continue // a recent data frame already carried our liveness
			}
			if err := l.writeFrame(p, FrameHeartbeat, nil); err != nil && !p.eof.Load() && !l.isDown() {
				l.peerDown(p, fmt.Errorf("heartbeat write: %w", err))
				if l.Err() != nil || l.isDown() {
					return
				}
			}
		}
	}
}

// barrierGen decodes a barrier frame's generation number.
func barrierGen(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
}

func barrierPayload(gen uint32) []byte {
	return []byte{byte(gen), byte(gen >> 8), byte(gen >> 16), byte(gen >> 24)}
}

// arriveLocked records one barrier arrival. Callers hold bmu.
func (l *TCP) arriveLocked(gen uint32, rank int) {
	set := l.arrivals[gen]
	if set == nil {
		set = make(map[int]bool)
		l.arrivals[gen] = set
	}
	set[rank] = true
}

// barrierQuorum is how many arrivals rank 0 needs: every machine that
// failover has not evicted.
func (l *TCP) barrierQuorum() int {
	return l.machines - int(l.deadPeers.Load())
}

// blame picks the rank a stuck barrier is attributed to: rank 0
// blames the lowest live member that has not arrived; members blame
// the coordinator they are waiting on.
func (l *TCP) blame(gen uint32) int {
	if l.rank != 0 {
		return 0
	}
	l.bmu.Lock()
	defer l.bmu.Unlock()
	arrived := l.arrivals[gen]
	for r, p := range l.peers {
		if p == nil || p.dead.Load() || arrived[r] {
			continue
		}
		return r
	}
	return 0 // everyone arrived or died between the timeout and now
}

// barrierWatchdog bounds one Barrier call: if the configured timeout
// elapses or the rendezvous context is canceled before the barrier
// completes, the blamed peer is taken down — failing the whole link
// (default mode) or evicting the peer and shrinking the quorum
// (failover) — so waiters unblock with a typed error instead of
// hanging until the silent-peer timeout. The returned stop func must
// run when the barrier completes.
func (l *TCP) barrierWatchdog(gen uint32) func() {
	timeout := l.opts.barrierTimeout()
	if timeout <= 0 && l.ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		var timerC <-chan time.Time
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			timerC = t.C
		}
		var cause error
		select {
		case <-done:
			return
		case <-l.down:
			return
		case <-timerC:
			cause = fmt.Errorf("barrier %d timed out after %s", gen, timeout)
		case <-l.ctx.Done():
			cause = fmt.Errorf("barrier %d canceled: %w", gen, context.Cause(l.ctx))
		}
		if p := l.peers[l.blame(gen)]; p != nil {
			l.peerDown(p, cause)
		}
	}()
	return func() { close(done) }
}

// Barrier implements cluster.Link: rank 0 collects one arrival per
// member (its own included) for the current generation, then releases
// everyone. Each endpoint must call Barrier the same number of times;
// concurrent calls on one endpoint are not supported. A member that
// failover has evicted is not waited for; a barrier that outlives
// Options.BarrierTimeout or the rendezvous context fails fast with a
// *cluster.PeerDownError blaming the missing participant.
func (l *TCP) Barrier() error {
	l.bmu.Lock()
	gen := l.gen
	l.gen++
	l.bmu.Unlock()

	stop := l.barrierWatchdog(gen)
	defer stop()

	if l.rank == 0 {
		l.bmu.Lock()
		l.arriveLocked(gen, 0) // self
		for len(l.arrivals[gen]) < l.barrierQuorum() && l.Err() == nil && !l.isDown() {
			l.bcond.Wait()
		}
		delete(l.arrivals, gen)
		l.bmu.Unlock()
		if err := l.Err(); err != nil {
			return err
		}
		if l.isDown() {
			return cluster.ErrLinkClosed
		}
		for _, p := range l.peers {
			if p == nil || p.dead.Load() {
				continue
			}
			if err := l.writeFrame(p, FrameBarrierRel, barrierPayload(gen)); err != nil {
				if serr := l.sendFailed(p, fmt.Errorf("barrier release: %w", err)); l.Err() != nil || l.isDown() {
					return serr
				}
				// Failover: the member died after arriving; the release
				// it will never read is not owed to anyone else.
			}
		}
		return nil
	}

	if err := l.writeFrame(l.peers[0], FrameBarrierReq, barrierPayload(gen)); err != nil {
		return l.sendFailed(l.peers[0], fmt.Errorf("barrier arrive: %w", err))
	}
	l.bmu.Lock()
	for !l.released[gen] && l.Err() == nil && !l.isDown() && !l.peerDead(0) {
		l.bcond.Wait()
	}
	released := l.released[gen]
	delete(l.released, gen)
	l.bmu.Unlock()
	if err := l.Err(); err != nil {
		return err
	}
	if !released && l.peerDead(0) {
		return &cluster.PeerDownError{Rank: 0, Cause: fmt.Errorf("barrier coordinator died")}
	}
	if !released && l.isDown() {
		return cluster.ErrLinkClosed
	}
	return nil
}
