package netlink

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/cluster"
)

// Options tunes a TCP link and its rendezvous.
type Options struct {
	// K is the factor rank: the number of float64 coordinates each
	// token carries on the wire.
	K int
	// HeartbeatInterval is how often liveness probes are sent to every
	// peer (default 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer down when nothing — tokens,
	// control frames or heartbeats — has arrived from it for this long
	// (default 10s; 0 keeps the default, negative disables).
	HeartbeatTimeout time.Duration
	// RendezvousTimeout bounds the whole handshake (default 60s).
	RendezvousTimeout time.Duration
	// OnPeerDown, when non-nil, is invoked (once per link failure, from
	// a link-internal goroutine) when a peer's connection breaks without
	// an orderly end-of-stream or its heartbeats time out.
	OnPeerDown func(rank int, err error)
}

func (o Options) heartbeatInterval() time.Duration {
	if o.HeartbeatInterval <= 0 {
		return 500 * time.Millisecond
	}
	return o.HeartbeatInterval
}

func (o Options) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout == 0 {
		return 10 * time.Second
	}
	return o.HeartbeatTimeout
}

func (o Options) rendezvousTimeout() time.Duration {
	if o.RendezvousTimeout <= 0 {
		return 60 * time.Second
	}
	return o.RendezvousTimeout
}

// peer is one established connection of the mesh.
type peer struct {
	rank     int
	conn     net.Conn
	wmu      sync.Mutex   // serializes frame writes, guards wbuf
	wbuf     []byte       // reusable frame-encode buffer: one flush is one syscall
	lastRecv atomic.Int64 // unix nanos of the last frame from this peer
	lastSend atomic.Int64 // unix nanos of the last frame written to this peer
	eof      atomic.Bool  // FrameEOF received: stream ended in order
}

// TCP is a full-mesh cluster.Link over TCP connections, one per peer.
// Frames within a connection are FIFO, so per-peer ordering holds
// across the token and control planes. Failure of any peer fails the
// whole link: NOMAD's token conservation cannot survive losing a
// machine that holds item tokens, so the run is aborted with a typed
// *cluster.PeerDownError rather than silently diverging.
type TCP struct {
	rank     int
	machines int
	opts     Options
	refwire  bool // NOMAD_REFERENCE_WIRE: legacy allocating codec paths

	peers []*peer // indexed by rank; self is nil

	recv chan cluster.Inbound
	ctl  chan cluster.Ctl
	down chan struct{} // closed on failure or Close: unblocks everything

	sendClosed atomic.Bool
	failErr    atomic.Pointer[cluster.PeerDownError]
	eofLeft    atomic.Int32
	chanOnce   sync.Once // closes recv+ctl
	downOnce   sync.Once // closes down + conns
	failOnce   sync.Once // peer-down reporting

	// Coordinator-mediated barrier state (rank 0 collects arrivals and
	// releases; see Barrier). gen counts this endpoint's Barrier calls.
	bmu      sync.Mutex
	bcond    *sync.Cond
	gen      uint32
	arrivals map[uint32]int  // rank 0: arrivals per generation (self included)
	released map[uint32]bool // others: releases seen

	wg        sync.WaitGroup
	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

var _ cluster.Link = (*TCP)(nil)

// newTCP wires an established mesh into a running link: one reader
// goroutine per peer plus the heartbeat monitor.
func newTCP(rank, machines int, conns map[int]net.Conn, opts Options) *TCP {
	l := &TCP{
		rank:     rank,
		machines: machines,
		opts:     opts,
		refwire:  cluster.ReferenceWire(),
		peers:    make([]*peer, machines),
		recv:     make(chan cluster.Inbound, 4*machines),
		ctl:      make(chan cluster.Ctl, 16*machines),
		down:     make(chan struct{}),
		arrivals: make(map[uint32]int),
		released: make(map[uint32]bool),
	}
	l.bcond = sync.NewCond(&l.bmu)
	l.eofLeft.Store(int32(machines - 1))
	now := time.Now().UnixNano()
	for r, conn := range conns {
		p := &peer{rank: r, conn: conn}
		p.lastRecv.Store(now)
		p.lastSend.Store(now)
		l.peers[r] = p
	}
	for _, p := range l.peers {
		if p == nil {
			continue
		}
		l.wg.Add(1)
		go l.reader(p)
	}
	l.wg.Add(1)
	go l.heartbeat()
	// Channel closer of last resort: once every reader has exited
	// (failure or Close), the inbound channels close if the orderly
	// all-EOF path has not already closed them.
	go func() {
		l.wg.Wait()
		l.closeChannels()
	}()
	return l
}

// Rank implements cluster.Link.
func (l *TCP) Rank() int { return l.rank }

// Machines implements cluster.Link.
func (l *TCP) Machines() int { return l.machines }

// Err implements cluster.Link.
func (l *TCP) Err() error {
	if e := l.failErr.Load(); e != nil {
		return e
	}
	return nil
}

// Stats implements cluster.Link, counting wire bytes actually written.
func (l *TCP) Stats() cluster.LinkStats {
	return cluster.LinkStats{BytesSent: l.bytesSent.Load(), MessagesSent: l.msgsSent.Load()}
}

// writeFrame writes one frame to a peer under its write lock: the
// frame is encoded into the peer's reusable buffer and flushed with a
// single Write call — one flush is one syscall, no per-frame
// allocation once the buffer is warm. The reference wire path keeps
// the legacy fresh-buffer-per-frame behaviour for the A/B.
func (l *TCP) writeFrame(p *peer, typ FrameType, payload []byte) error {
	p.wmu.Lock()
	var buf []byte
	if l.refwire {
		buf = AppendFrame(make([]byte, 0, headerSize+len(payload)), typ, l.rank, payload)
	} else {
		buf = AppendFrame(p.wbuf[:0], typ, l.rank, payload)
		p.wbuf = buf
	}
	_, err := p.conn.Write(buf)
	if err == nil {
		p.lastSend.Store(time.Now().UnixNano())
	}
	p.wmu.Unlock()
	if err == nil {
		l.bytesSent.Add(int64(len(buf)))
		l.msgsSent.Add(1)
	}
	return err
}

// Send implements cluster.Link. On the pooled wire path the batch is
// serialized straight into the peer's write buffer — header, batch
// header and token vectors in one pass, so the only copy between the
// sender's arena and the socket is vector → frame — and flushed with
// a single syscall. The batch stays owned by the caller.
func (l *TCP) Send(dst int, batch cluster.TokenBatch) error {
	if l.sendClosed.Load() {
		return cluster.ErrLinkClosed
	}
	if err := l.Err(); err != nil {
		return err
	}
	p := l.peers[dst]
	if p == nil {
		return fmt.Errorf("netlink: send to self (machine %d)", dst)
	}
	if l.refwire {
		payload, err := AppendTokenBatch(make([]byte, 0, batchWireSize(len(batch.Tokens), l.opts.K)), batch, l.opts.K)
		if err != nil {
			return err
		}
		if err := l.writeFrame(p, FrameTokens, payload); err != nil {
			l.peerDown(p, fmt.Errorf("write: %w", err))
			return l.Err()
		}
		return nil
	}
	p.wmu.Lock()
	buf, err := AppendTokenFrame(p.wbuf[:0], l.rank, batch, l.opts.K)
	if err != nil {
		p.wmu.Unlock()
		return err // encode rejection: the link itself is still healthy
	}
	p.wbuf = buf
	_, werr := p.conn.Write(buf)
	if werr == nil {
		p.lastSend.Store(time.Now().UnixNano())
	}
	p.wmu.Unlock()
	if werr != nil {
		l.peerDown(p, fmt.Errorf("write: %w", werr))
		return l.Err()
	}
	l.bytesSent.Add(int64(len(buf)))
	l.msgsSent.Add(1)
	return nil
}

// Recv implements cluster.Link.
func (l *TCP) Recv() <-chan cluster.Inbound { return l.recv }

// SendCtl implements cluster.Link.
func (l *TCP) SendCtl(dst int, kind uint8, payload []byte) error {
	if l.sendClosed.Load() {
		return cluster.ErrLinkClosed
	}
	if err := l.Err(); err != nil {
		return err
	}
	framed := make([]byte, 0, 1+len(payload))
	framed = append(framed, kind)
	framed = append(framed, payload...)
	if dst == -1 {
		for _, p := range l.peers {
			if p == nil {
				continue
			}
			if err := l.writeFrame(p, FrameCtl, framed); err != nil {
				l.peerDown(p, fmt.Errorf("write: %w", err))
				return l.Err()
			}
		}
		return nil
	}
	p := l.peers[dst]
	if p == nil {
		return fmt.Errorf("netlink: ctl to self (machine %d)", dst)
	}
	if err := l.writeFrame(p, FrameCtl, framed); err != nil {
		l.peerDown(p, fmt.Errorf("write: %w", err))
		return l.Err()
	}
	return nil
}

// Ctl implements cluster.Link.
func (l *TCP) Ctl() <-chan cluster.Ctl { return l.ctl }

// CloseSend implements cluster.Link: an EOF frame ends this machine's
// stream on every peer connection.
func (l *TCP) CloseSend() error {
	if !l.sendClosed.CompareAndSwap(false, true) {
		return nil
	}
	for _, p := range l.peers {
		if p == nil {
			continue
		}
		// Best effort: a peer that is already gone has either failed the
		// link (reported elsewhere) or finished its own drain.
		l.writeFrame(p, FrameEOF, nil) //nolint:errcheck
	}
	return nil
}

// Close implements cluster.Link.
func (l *TCP) Close() error {
	l.CloseSend() //nolint:errcheck // best-effort EOF first
	l.downOnce.Do(func() {
		close(l.down)
		for _, p := range l.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	l.broadcastBarrier()
	l.wg.Wait()
	return nil
}

// Abort kills every connection immediately, without the orderly EOF.
// Peers observe it as this machine failing — exactly what a crashed
// process looks like. It exists for failure-injection tests.
func (l *TCP) Abort() {
	l.sendClosed.Store(true)
	l.downOnce.Do(func() {
		close(l.down)
		for _, p := range l.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	l.broadcastBarrier()
}

// broadcastBarrier wakes barrier waiters after a failure or close.
// The broadcast happens under the condition mutex: waiters evaluate
// their predicate (released/arrivals, Err, isDown) while holding bmu,
// so an unlocked broadcast could land between a waiter's predicate
// check and its Wait registration and be lost forever.
func (l *TCP) broadcastBarrier() {
	l.bmu.Lock()
	l.bcond.Broadcast()
	l.bmu.Unlock()
}

// closed reports whether Close/Abort has run.
func (l *TCP) isDown() bool {
	select {
	case <-l.down:
		return true
	default:
		return false
	}
}

// closeChannels ends the inbound streams exactly once.
func (l *TCP) closeChannels() {
	l.chanOnce.Do(func() {
		close(l.recv)
		close(l.ctl)
	})
}

// peerDown fails the link: record the typed error, report it, and tear
// every connection down so all blocked I/O unwinds. Surviving peers
// get an orderly EOF first, so they attribute the cluster failure to
// the machine that actually died, not to this endpoint's teardown.
func (l *TCP) peerDown(p *peer, cause error) {
	l.failOnce.Do(func() {
		err := &cluster.PeerDownError{Rank: p.rank, Cause: cause}
		l.failErr.Store(err)
		if l.opts.OnPeerDown != nil {
			l.opts.OnPeerDown(p.rank, err)
		}
		l.sendClosed.Store(true)
		for _, q := range l.peers {
			if q != nil && q != p && !q.eof.Load() {
				l.writeFrame(q, FrameEOF, nil) //nolint:errcheck // best effort
			}
		}
		l.downOnce.Do(func() {
			close(l.down)
			for _, q := range l.peers {
				if q != nil {
					q.conn.Close()
				}
			}
		})
		l.broadcastBarrier()
	})
}

// reader drains one peer's connection, dispatching frames onto the
// typed channels until the stream ends. On the pooled wire path the
// connection owns one payload buffer that every frame is read into
// (ReadFrameReuse) and token batches are decoded into pooled arenas
// whose ownership travels with the Inbound — the consumer Releases
// them; control payloads, which may sit in the ctl channel across
// many frames, are copied out of the read buffer instead.
func (l *TCP) reader(p *peer) {
	defer l.wg.Done()
	var rbuf []byte // connection-owned payload arena (pooled wire path)
	for {
		var f Frame
		var err error
		if l.refwire {
			f, err = ReadFrame(p.conn)
		} else {
			f, rbuf, err = ReadFrameReuse(p.conn, rbuf)
		}
		if err != nil {
			if p.eof.Load() || l.isDown() {
				return // orderly: stream already ended, or we tore down
			}
			l.peerDown(p, err)
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		if p.eof.Load() && f.Type != FrameHeartbeat {
			continue // data after EOF: tolerate, but never deliver
		}
		switch f.Type {
		case FrameTokens:
			var batch cluster.TokenBatch
			if l.refwire {
				batch, err = DecodeTokenBatch(f.Payload, l.opts.K)
			} else {
				arena := cluster.GetBatchBuf()
				batch, err = DecodeTokenBatchInto(f.Payload, l.opts.K, arena)
				if err != nil {
					arena.Release()
				}
			}
			if err != nil {
				l.peerDown(p, err)
				return
			}
			select {
			case l.recv <- cluster.Inbound{From: p.rank, Batch: batch}:
			case <-l.down:
				return
			}
		case FrameCtl:
			if len(f.Payload) < 1 {
				l.peerDown(p, fmt.Errorf("empty control frame"))
				return
			}
			payload := f.Payload[1:]
			if !l.refwire && len(payload) > 0 {
				// The payload aliases this connection's read buffer, which
				// the next ReadFrameReuse overwrites; control frames are
				// rare and small, so the hand-off is a copy.
				payload = append([]byte(nil), payload...)
			}
			select {
			case l.ctl <- cluster.Ctl{From: p.rank, Kind: f.Payload[0], Payload: payload}:
			case <-l.down:
				return
			}
		case FrameEOF:
			p.eof.Store(true)
			if l.eofLeft.Add(-1) == 0 {
				// Every peer has ended its stream in order; nothing can
				// be in flight behind a per-connection FIFO, so the
				// inbound channels are complete.
				l.closeChannels()
			}
		case FrameHeartbeat:
			// lastRecv update above is the whole point.
		case FrameBarrierReq:
			l.bmu.Lock()
			l.arrivals[barrierGen(f.Payload)]++
			l.bcond.Broadcast()
			l.bmu.Unlock()
		case FrameBarrierRel:
			l.bmu.Lock()
			l.released[barrierGen(f.Payload)] = true
			l.bcond.Broadcast()
			l.bmu.Unlock()
		default:
			l.peerDown(p, fmt.Errorf("unexpected frame type %d on established link", f.Type))
			return
		}
	}
}

// heartbeat probes every live peer and watches for silent ones.
// Explicit heartbeat frames are only written when the data plane has
// been idle towards that peer for a whole interval: every frame we
// send refreshes the peer's view of our liveness (its lastRecv), so
// under load the liveness signal piggybacks on the token flushes and
// the heartbeat loop costs no syscalls at all. The reference wire
// path keeps the legacy always-write behaviour.
func (l *TCP) heartbeat() {
	defer l.wg.Done()
	interval := l.opts.heartbeatInterval()
	timeout := l.opts.heartbeatTimeout()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.down:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for _, p := range l.peers {
			if p == nil || p.eof.Load() {
				continue // drained peers owe us nothing further
			}
			if timeout > 0 && now-p.lastRecv.Load() > int64(timeout) {
				l.peerDown(p, fmt.Errorf("no frames for %s", timeout))
				return
			}
			if !l.refwire && now-p.lastSend.Load() < int64(interval) {
				continue // a recent data frame already carried our liveness
			}
			if err := l.writeFrame(p, FrameHeartbeat, nil); err != nil && !p.eof.Load() && !l.isDown() {
				l.peerDown(p, fmt.Errorf("heartbeat write: %w", err))
				return
			}
		}
	}
}

// barrierGen decodes a barrier frame's generation number.
func barrierGen(payload []byte) uint32 {
	if len(payload) < 4 {
		return 0
	}
	return uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
}

func barrierPayload(gen uint32) []byte {
	return []byte{byte(gen), byte(gen >> 8), byte(gen >> 16), byte(gen >> 24)}
}

// Barrier implements cluster.Link: rank 0 collects one arrival per
// member (its own included) for the current generation, then releases
// everyone. Each endpoint must call Barrier the same number of times;
// concurrent calls on one endpoint are not supported.
func (l *TCP) Barrier() error {
	l.bmu.Lock()
	gen := l.gen
	l.gen++
	l.bmu.Unlock()

	if l.rank == 0 {
		l.bmu.Lock()
		l.arrivals[gen]++ // self
		for l.arrivals[gen] < l.machines && l.Err() == nil && !l.isDown() {
			l.bcond.Wait()
		}
		delete(l.arrivals, gen)
		l.bmu.Unlock()
		if err := l.Err(); err != nil {
			return err
		}
		if l.isDown() {
			return cluster.ErrLinkClosed
		}
		for _, p := range l.peers {
			if p == nil {
				continue
			}
			if err := l.writeFrame(p, FrameBarrierRel, barrierPayload(gen)); err != nil {
				l.peerDown(p, fmt.Errorf("barrier release: %w", err))
				return l.Err()
			}
		}
		return nil
	}

	if err := l.writeFrame(l.peers[0], FrameBarrierReq, barrierPayload(gen)); err != nil {
		l.peerDown(l.peers[0], fmt.Errorf("barrier arrive: %w", err))
		return l.Err()
	}
	l.bmu.Lock()
	for !l.released[gen] && l.Err() == nil && !l.isDown() {
		l.bcond.Wait()
	}
	delete(l.released, gen)
	l.bmu.Unlock()
	if err := l.Err(); err != nil {
		return err
	}
	if l.isDown() {
		return cluster.ErrLinkClosed
	}
	return nil
}
