package netlink

// Zero-allocation assertions for the steady-state wire hot path: once
// a connection's encode buffer, read buffer and decode arena are warm,
// moving a token batch through the codec must not allocate at all —
// the property the pooled data plane exists for, pinned here with
// testing.AllocsPerRun so a regression fails CI rather than showing up
// as GC pressure in a benchmark.

import (
	"bytes"
	"testing"

	"nomad/internal/cluster"
)

// allocBatch builds a representative §3.5 batch: batchTokens rank-k
// tokens materialized from an arena, exactly like a Sender flush.
func allocBatch(tokens, k int) (cluster.TokenBatch, *cluster.BatchBuf) {
	buf := cluster.NewBatchBuf()
	vec := make([]float64, k)
	for i := 0; i < tokens; i++ {
		for c := range vec {
			vec[c] = float64(i*k + c)
		}
		buf.Add(int32(i), vec)
	}
	return buf.Batch(tokens), buf
}

func TestTokenFrameEncodeAllocFree(t *testing.T) {
	const tokens, k = 100, 16
	batch, _ := allocBatch(tokens, k)
	var wbuf []byte
	var err error
	wbuf, err = AppendTokenFrame(wbuf[:0], 1, batch, k) // warm the buffer
	if err != nil {
		t.Fatalf("AppendTokenFrame: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		wbuf, err = AppendTokenFrame(wbuf[:0], 1, batch, k)
		if err != nil {
			t.Fatalf("AppendTokenFrame: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state token-frame encode allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFrameEncodeAllocFree(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 256)
	wbuf := AppendFrame(nil, FrameCtl, 2, payload) // warm
	allocs := testing.AllocsPerRun(100, func() {
		wbuf = AppendFrame(wbuf[:0], FrameCtl, 2, payload)
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame encode allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFrameDecodeAllocFree(t *testing.T) {
	const tokens, k = 100, 16
	batch, _ := allocBatch(tokens, k)
	wire, err := AppendTokenFrame(nil, 1, batch, k)
	if err != nil {
		t.Fatalf("AppendTokenFrame: %v", err)
	}
	rd := bytes.NewReader(wire)
	var rbuf []byte
	arena := cluster.NewBatchBuf()

	// Warm the read buffer and the arena once.
	f, rbuf, err := ReadFrameReuse(rd, rbuf)
	if err != nil {
		t.Fatalf("ReadFrameReuse: %v", err)
	}
	if _, err := DecodeTokenBatchInto(f.Payload, k, arena); err != nil {
		t.Fatalf("DecodeTokenBatchInto: %v", err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(wire)
		f, rbuf, err = ReadFrameReuse(rd, rbuf)
		if err != nil {
			t.Fatalf("ReadFrameReuse: %v", err)
		}
		got, err := DecodeTokenBatchInto(f.Payload, k, arena)
		if err != nil {
			t.Fatalf("DecodeTokenBatchInto: %v", err)
		}
		if len(got.Tokens) != tokens {
			t.Fatalf("decoded %d tokens, want %d", len(got.Tokens), tokens)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame decode allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTokenBatchArenaRoundTrip pins the arena decode against the
// allocating reference decode: identical tokens, and the handed-off
// batch releases its arena back to the pool without corrupting a copy
// taken before Release.
func TestTokenBatchArenaRoundTrip(t *testing.T) {
	const tokens, k = 7, 5
	batch, _ := allocBatch(tokens, k)
	payload, err := AppendTokenBatch(nil, batch, k)
	if err != nil {
		t.Fatalf("AppendTokenBatch: %v", err)
	}
	ref, err := DecodeTokenBatch(payload, k)
	if err != nil {
		t.Fatalf("DecodeTokenBatch: %v", err)
	}
	got, err := DecodeTokenBatchInto(payload, k, cluster.GetBatchBuf())
	if err != nil {
		t.Fatalf("DecodeTokenBatchInto: %v", err)
	}
	if got.QueueLen != ref.QueueLen || len(got.Tokens) != len(ref.Tokens) {
		t.Fatalf("arena decode = %d tokens (gossip %d), reference = %d (%d)",
			len(got.Tokens), got.QueueLen, len(ref.Tokens), ref.QueueLen)
	}
	for i := range ref.Tokens {
		if got.Tokens[i].Item != ref.Tokens[i].Item {
			t.Fatalf("token %d item = %d, want %d", i, got.Tokens[i].Item, ref.Tokens[i].Item)
		}
		for c := range ref.Tokens[i].Vec {
			if got.Tokens[i].Vec[c] != ref.Tokens[i].Vec[c] {
				t.Fatalf("token %d coord %d = %v, want %v", i, c, got.Tokens[i].Vec[c], ref.Tokens[i].Vec[c])
			}
		}
	}
	// The hand-off contract: copy out, then Release; the copy survives.
	kept := make([]float64, k)
	copy(kept, got.Tokens[3].Vec)
	got.Release()
	for c := range kept {
		if kept[c] != ref.Tokens[3].Vec[c] {
			t.Fatalf("copied-out vector corrupted after Release")
		}
	}
	if got.Tokens != nil {
		t.Fatalf("Release must invalidate the batch's token views")
	}
}

// TestDecodeTokenBatchRejectsInflatedCount is the satellite guard: a
// wire-supplied token count that exceeds what the payload's actual
// length can hold must be rejected before any allocation happens.
func TestDecodeTokenBatchRejectsInflatedCount(t *testing.T) {
	const k = 2
	batch, _ := allocBatch(1, k)
	payload, err := AppendTokenBatch(nil, batch, k)
	if err != nil {
		t.Fatalf("AppendTokenBatch: %v", err)
	}
	// Inflate the declared count far beyond the single token actually
	// present; a decoder that trusts it would allocate gigabytes.
	payload[8], payload[9], payload[10], payload[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecodeTokenBatch(payload, k); err == nil {
		t.Fatal("inflated token count accepted by DecodeTokenBatch")
	}
	if _, err := DecodeTokenBatchInto(payload, k, cluster.NewBatchBuf()); err == nil {
		t.Fatal("inflated token count accepted by DecodeTokenBatchInto")
	}
}
