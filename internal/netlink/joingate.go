package netlink

// Late dial-in: how a machine joins a cluster that is ALREADY running.
//
//	joiner                               join gate (coordinator side)
//	  │── Hello{digest,addr} ─────────────►│  digest check, admit()
//	  │◄─ Welcome{rank,machines,owner,…} ──│  or Error{reason}
//	  │── Ready ──────────────────────────►│  membership change committed
//
// The rendezvous in rendezvous.go freezes the member set once training
// starts; the JoinGate is the listener that stays open afterwards so a
// fresh machine can request admission mid-run. The wire protocol is
// the same Hello/Welcome/Ready exchange a rendezvous worker performs —
// same frames, same codecs, same config-digest refusal — so a joiner
// needs no second protocol. What differs is who decides: an AdmitFunc
// supplied by the running cluster activates a provisioned spare (the
// reverse remap: fence, carve ownership off each survivor, stream the
// moving state, resume) and reports the rank and ownership the joiner
// was granted. The gate replies Welcome only after that commit, so a
// Ready-acknowledged ticket means the data plane is already feeding
// the new member's token share.
//
// The gate is the control-plane half of elastic scale-out. Out-of-
// process data-plane attach (the joiner meshing into the survivors'
// token circulation over these addresses) rides on the gossip
// membership item in the ROADMAP.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"nomad/internal/train"
)

// Admission is what the running cluster grants a late joiner: the rank
// it now occupies, the post-join cluster size, the item-ownership map
// at admission time (empty when the admitting runtime streams
// ownership over the data plane instead), the mesh addresses of the
// active members, and optional resume state.
type Admission struct {
	Rank     int
	Machines int
	Owner    []int32
	Addrs    []string
	State    *train.State
}

// AdmitFunc decides one join request. addr is the joiner's advertised
// mesh address (may be empty). It runs the membership change — it must
// return only once the join has committed — and describes the result;
// returning an error refuses the joiner with that text.
type AdmitFunc func(addr string) (Admission, error)

// JoinGate is a persistent coordinator-side listener admitting late
// joiners into a running cluster. Open it before training starts,
// Serve it for the life of the run, Close it (or cancel the context)
// to stop accepting.
type JoinGate struct {
	ln        net.Listener
	configSum uint64
	admit     AdmitFunc
	opts      Options
}

// OpenJoinGate listens on listen for mid-run join requests, checking
// each against configSum and deciding it with admit.
func OpenJoinGate(listen string, configSum uint64, admit AdmitFunc, opts Options) (*JoinGate, error) {
	if admit == nil {
		return nil, errors.New("netlink: join gate needs an admit function")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("netlink: join gate listen: %w", err)
	}
	return &JoinGate{ln: ln, configSum: configSum, admit: admit, opts: opts}, nil
}

// Addr returns the gate's bound address (useful with ":0").
func (g *JoinGate) Addr() string { return g.ln.Addr().String() }

// Close stops the gate; a blocked Serve returns.
func (g *JoinGate) Close() error { return g.ln.Close() }

// Serve accepts and handles join requests until the context ends or
// the gate is closed, then returns nil. Each request is handled in its
// own goroutine so a stalled dialer cannot block admission of the
// next.
func (g *JoinGate) Serve(ctx context.Context) error {
	stop := watch(ctx, func() { g.ln.Close() })
	defer stop()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return nil // closed by ctx, Close, or teardown: the gate's normal end
		}
		go g.handle(conn)
	}
}

// handle runs one admission exchange. Protocol errors just drop the
// connection: the joiner sees the close and reports its own failure.
func (g *JoinGate) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(g.opts.rendezvousTimeout())) //nolint:errcheck
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameHello {
		return
	}
	sum, addr, err := decodeHello(f.Payload)
	if err != nil {
		return
	}
	if sum != g.configSum {
		WriteFrame(conn, FrameError, 0, []byte("config digest mismatch: a joiner must run the same dataset, seed and hyper-parameters as the cluster")) //nolint:errcheck
		return
	}
	a, err := g.admit(addr)
	if err != nil {
		WriteFrame(conn, FrameError, 0, []byte(err.Error())) //nolint:errcheck
		return
	}
	// The Welcome codec requires one address slot per machine; fill the
	// joiner's own slot with what it advertised so the map it receives
	// is complete.
	if len(a.Addrs) < a.Machines {
		addrs := make([]string, a.Machines)
		copy(addrs, a.Addrs)
		a.Addrs = addrs
	}
	if a.Rank >= 0 && a.Rank < len(a.Addrs) && a.Addrs[a.Rank] == "" {
		a.Addrs[a.Rank] = addr
	}
	if err := WriteFrame(conn, FrameWelcome, 0, encodeWelcome(a.Rank, a.Machines, g.opts.K, g.configSum, a.Owner, a.Addrs, a.State)); err != nil {
		return
	}
	ReadFrame(conn) //nolint:errcheck // the joiner's Ready; best-effort
}

// JoinTicket is everything a late joiner learns from the gate: its
// granted rank in the grown cluster, the new size, the latent
// dimension, the member address map, and the Handshake's ownership map
// and optional resume state.
type JoinTicket struct {
	Rank     int
	Machines int
	K        int
	Addrs    []string
	Handshake
}

// DialJoin asks a running cluster's join gate for admission: dial
// (retrying with capped backoff until the rendezvous deadline, since
// the gate may still be coming up), present the config digest and our
// advertised mesh address, and return the granted ticket. A refusal —
// digest mismatch, no spare capacity — surfaces as a *RejectedError.
func DialJoin(ctx context.Context, gate, advertise string, configSum uint64, opts Options) (*JoinTicket, error) {
	deadline := time.Now().Add(opts.rendezvousTimeout())
	d := net.Dialer{Deadline: deadline}
	var conn net.Conn
	for attempt := 0; ; attempt++ {
		var derr error
		conn, derr = d.DialContext(ctx, "tcp", gate)
		if derr == nil {
			break
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return nil, fmt.Errorf("netlink: dial join gate %s: %w", gate, derr)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netlink: dial join gate %s: %w", gate, context.Cause(ctx))
		case <-time.After(dialBackoff(attempt, time.Now().UnixNano())):
		}
	}
	defer conn.Close()
	stop := watch(ctx, func() { conn.Close() })
	defer stop()
	conn.SetDeadline(deadline) //nolint:errcheck

	if err := WriteFrame(conn, FrameHello, -1, helloPayload(configSum, advertise)); err != nil {
		return nil, fmt.Errorf("netlink: send join hello: %w", err)
	}
	f, err := ReadFrame(conn)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("netlink: read join welcome: %w", err)
	}
	switch f.Type {
	case FrameError:
		return nil, &RejectedError{Reason: string(f.Payload)}
	case FrameWelcome:
	default:
		return nil, fmt.Errorf("netlink: expected Welcome, got frame type %d", f.Type)
	}
	rank, machines, k, sum, owner, addrs, st, err := decodeWelcome(f.Payload)
	if err != nil {
		return nil, err
	}
	if sum != configSum {
		return nil, ErrConfigMismatch
	}
	if err := WriteFrame(conn, FrameReady, rank, nil); err != nil {
		return nil, fmt.Errorf("netlink: send join ready: %w", err)
	}
	return &JoinTicket{Rank: rank, Machines: machines, K: k, Addrs: addrs, Handshake: Handshake{Owner: owner, State: st}}, nil
}
