package netlink

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"nomad/internal/cluster"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello nomad")
	if err := WriteFrame(&buf, FrameTokens, 3, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Type != FrameTokens || f.From != 3 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFrameRoundTripEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameEOF, -1, nil); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Type != FrameEOF || f.From != -1 || len(f.Payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	raw := AppendFrame(nil, FrameTokens, 0, []byte("x"))
	raw[0] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameRejectsVersionMismatch(t *testing.T) {
	raw := AppendFrame(nil, FrameTokens, 0, []byte("x"))
	raw[4] = Version + 41
	var ve *VersionError
	_, err := ReadFrame(bytes.NewReader(raw))
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != Version+41 || ve.Want != Version {
		t.Fatalf("version error = %+v", ve)
	}
}

func TestFrameRejectsCorruptPayload(t *testing.T) {
	raw := AppendFrame(nil, FrameTokens, 0, []byte("payload-bytes"))
	raw[headerSize+4] ^= 0x01 // flip one payload bit; CRC must catch it
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestFrameRejectsCorruptCRC(t *testing.T) {
	raw := AppendFrame(nil, FrameCtl, 1, []byte("abc"))
	raw[16] ^= 0xff // corrupt the stored CRC itself
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	raw := AppendFrame(nil, FrameTokens, 0, bytes.Repeat([]byte("q"), 100))
	for _, cut := range []int{1, headerSize - 1, headerSize, headerSize + 50, len(raw) - 1} {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if cut >= headerSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	raw := AppendFrame(nil, FrameTokens, 0, nil)
	binary.LittleEndian.PutUint32(raw[12:], MaxPayload+1)
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	// A large-but-legal length on a short stream must fail on EOF
	// without a giant up-front allocation.
	binary.LittleEndian.PutUint32(raw[12:], MaxPayload)
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTokenBatchRoundTrip(t *testing.T) {
	const k = 5
	batch := cluster.TokenBatch{
		QueueLen: 42,
		Tokens: []cluster.Token{
			{Item: 0, Vec: []float64{1, 2, 3, 4, 5}},
			{Item: 999, Vec: []float64{-0.5, 1e300, 0, -0, 3.14}},
		},
	}
	payload, err := AppendTokenBatch(nil, batch, k)
	if err != nil {
		t.Fatalf("AppendTokenBatch: %v", err)
	}
	got, err := DecodeTokenBatch(payload, k)
	if err != nil {
		t.Fatalf("DecodeTokenBatch: %v", err)
	}
	if got.QueueLen != 42 || len(got.Tokens) != 2 {
		t.Fatalf("decoded = %+v", got)
	}
	for i, tok := range got.Tokens {
		if tok.Item != batch.Tokens[i].Item {
			t.Fatalf("token %d item = %d", i, tok.Item)
		}
		for c := range tok.Vec {
			if tok.Vec[c] != batch.Tokens[i].Vec[c] {
				t.Fatalf("token %d coord %d = %v, want %v", i, c, tok.Vec[c], batch.Tokens[i].Vec[c])
			}
		}
	}
}

func TestTokenBatchRejectsWrongRank(t *testing.T) {
	if _, err := AppendTokenBatch(nil, cluster.TokenBatch{
		Tokens: []cluster.Token{{Item: 1, Vec: make([]float64, 3)}},
	}, 4); err == nil {
		t.Fatal("encoding a rank-3 token on a rank-4 link accepted")
	}
	payload, _ := AppendTokenBatch(nil, cluster.TokenBatch{
		Tokens: []cluster.Token{{Item: 1, Vec: make([]float64, 4)}},
	}, 4)
	if _, err := DecodeTokenBatch(payload, 5); err == nil {
		t.Fatal("decoding with the wrong rank accepted")
	}
	if _, err := DecodeTokenBatch(payload[:len(payload)-1], 4); err == nil {
		t.Fatal("truncated batch payload accepted")
	}
	if _, err := DecodeTokenBatch(nil, 4); err == nil {
		t.Fatal("empty batch payload accepted")
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and everything it accepts must round-trip back to the
// identical encoding (so the decoder can't silently canonicalize).
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, FrameTokens, 0, []byte("seed-payload")))
	f.Add(AppendFrame(nil, FrameEOF, -1, nil))
	f.Add(AppendFrame(nil, FrameCtl, 3, []byte{1, 0, 0, 0}))
	tb, _ := AppendTokenBatch(nil, cluster.TokenBatch{QueueLen: 7, Tokens: []cluster.Token{{Item: 5, Vec: []float64{1, 2}}}}, 2)
	f.Add(AppendFrame(nil, FrameTokens, 1, tb))
	f.Add([]byte{})
	f.Add([]byte{0x4b, 0x4c, 0x4d, 0x4e})
	corrupt := AppendFrame(nil, FrameHello, 0, []byte("x"))
	corrupt[17] ^= 0xaa
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		re := AppendFrame(nil, fr.Type, fr.From, fr.Payload)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted frame does not re-encode to its wire form")
		}
	})
}

// FuzzDecodeTokenBatch: arbitrary payloads must never panic the token
// decoder, and accepted batches must re-encode identically.
func FuzzDecodeTokenBatch(f *testing.F) {
	for _, k := range []int{1, 2, 16} {
		p, _ := AppendTokenBatch(nil, cluster.TokenBatch{QueueLen: 3, Tokens: []cluster.Token{{Item: 9, Vec: make([]float64, k)}}}, k)
		f.Add(p, k)
	}
	f.Add([]byte{}, 1)
	// An inflated wire count over a short payload: the decoder must
	// validate the count against the bytes actually present before any
	// allocation, never trusting (or multiplying) the wire value.
	inflated, _ := AppendTokenBatch(nil, cluster.TokenBatch{QueueLen: 1, Tokens: []cluster.Token{{Item: 4, Vec: make([]float64, 2)}}}, 2)
	binary.LittleEndian.PutUint32(inflated[8:], 1<<30)
	f.Add(inflated, 2)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 1 || k > 64 {
			return
		}
		batch, err := DecodeTokenBatch(data, k)
		if err != nil {
			return
		}
		re, err := AppendTokenBatch(nil, batch, k)
		if err != nil {
			t.Fatalf("accepted batch fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted batch does not re-encode to its wire form")
		}
	})
}
