package netlink

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/cluster"
	"nomad/internal/factor"
	"nomad/internal/train"
)

func testLoopback(t *testing.T, machines int, opts Options) []cluster.Link {
	t.Helper()
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.RendezvousTimeout == 0 {
		opts.RendezvousTimeout = 10 * time.Second
	}
	links, err := Loopback(context.Background(), machines, 0xfeed, nil, nil, opts)
	if err != nil {
		t.Fatalf("Loopback(%d): %v", machines, err)
	}
	t.Cleanup(func() {
		for _, l := range links {
			l.Close() //nolint:errcheck
		}
	})
	return links
}

func TestLoopbackTokensRoundTrip(t *testing.T) {
	links := testLoopback(t, 3, Options{K: 2})
	batch := cluster.TokenBatch{
		QueueLen: 11,
		Tokens:   []cluster.Token{{Item: 7, Vec: []float64{1.5, -2.5}}},
	}
	if err := links[0].Send(2, batch); err != nil {
		t.Fatalf("Send: %v", err)
	}
	inb := <-links[2].Recv()
	if inb.From != 0 || inb.Batch.QueueLen != 11 || len(inb.Batch.Tokens) != 1 {
		t.Fatalf("inbound = %+v", inb)
	}
	tok := inb.Batch.Tokens[0]
	if tok.Item != 7 || tok.Vec[0] != 1.5 || tok.Vec[1] != -2.5 {
		t.Fatalf("token = %+v", tok)
	}
}

func TestLoopbackCtlAndOrdering(t *testing.T) {
	links := testLoopback(t, 2, Options{K: 1})
	// Tokens then ctl on the same pair must arrive in order.
	for i := 0; i < 10; i++ {
		if err := links[0].Send(1, cluster.TokenBatch{Tokens: []cluster.Token{{Item: int32(i), Vec: []float64{0}}}}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := links[0].SendCtl(1, 5, []byte("end")); err != nil {
		t.Fatalf("SendCtl: %v", err)
	}
	seen := 0
	for seen < 10 {
		select {
		case inb := <-links[1].Recv():
			if int(inb.Batch.Tokens[0].Item) != seen {
				t.Fatalf("token order broken: got %d want %d", inb.Batch.Tokens[0].Item, seen)
			}
			seen++
		case <-links[1].Ctl():
			t.Fatalf("ctl overtook %d pending tokens", 10-seen)
		}
	}
	ct := <-links[1].Ctl()
	if ct.Kind != 5 || string(ct.Payload) != "end" || ct.From != 0 {
		t.Fatalf("ctl = %+v", ct)
	}
}

func TestLoopbackEOFClosesStreams(t *testing.T) {
	links := testLoopback(t, 3, Options{K: 1})
	if err := links[1].Send(0, cluster.TokenBatch{Tokens: []cluster.Token{{Item: 1, Vec: []float64{2}}}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, l := range links {
		if err := l.CloseSend(); err != nil {
			t.Fatalf("CloseSend: %v", err)
		}
	}
	// The pre-EOF token must still be delivered, then the stream ends.
	got := 0
	for inb := range links[0].Recv() {
		got += len(inb.Batch.Tokens)
	}
	if got != 1 {
		t.Fatalf("delivered %d tokens before close, want 1", got)
	}
	for range links[0].Ctl() {
		t.Fatal("unexpected ctl frame")
	}
	if err := links[0].Err(); err != nil {
		t.Fatalf("Err after orderly shutdown = %v", err)
	}
	if err := links[0].Send(1, cluster.TokenBatch{}); !errors.Is(err, cluster.ErrLinkClosed) {
		t.Fatalf("Send after CloseSend = %v, want ErrLinkClosed", err)
	}
}

func TestLoopbackBarrier(t *testing.T) {
	const n = 3
	links := testLoopback(t, n, Options{K: 1})
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		before.Store(0)
		for _, l := range links {
			wg.Add(1)
			go func(l cluster.Link) {
				defer wg.Done()
				before.Add(1)
				if err := l.Barrier(); err != nil {
					t.Errorf("Barrier: %v", err)
					return
				}
				if got := before.Load(); got != n {
					t.Errorf("released with only %d arrivals", got)
				}
				after.Add(1)
			}(l)
		}
		wg.Wait()
	}
	if after.Load() != 3*n {
		t.Fatalf("releases = %d, want %d", after.Load(), 3*n)
	}
}

// TestLoopbackPeerDeathDetected kills one endpoint abruptly (no EOF —
// what a crashed process looks like) and requires the survivors to
// fail the link with a typed *cluster.PeerDownError and fire the
// OnPeerDown callback.
func TestLoopbackPeerDeathDetected(t *testing.T) {
	var downRank atomic.Int32
	downRank.Store(-1)
	links := testLoopback(t, 3, Options{
		K: 1,
		OnPeerDown: func(self, rank int, err error) {
			downRank.Store(int32(rank))
		},
	})
	victim := links[2].(*TCP)
	victim.Abort()
	// Survivor 0's streams must end and report the failure.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-links[0].Recv():
			if ok {
				continue
			}
		case <-deadline:
			t.Fatal("survivor never noticed the dead peer")
		}
		break
	}
	var pd *cluster.PeerDownError
	if err := links[0].Err(); !errors.As(err, &pd) {
		t.Fatalf("Err = %v, want *cluster.PeerDownError", err)
	}
	if pd.Rank != 2 {
		t.Fatalf("down rank = %d, want 2", pd.Rank)
	}
	if downRank.Load() != 2 {
		t.Fatalf("OnPeerDown rank = %d, want 2", downRank.Load())
	}
	if err := links[0].Send(1, cluster.TokenBatch{}); err == nil {
		t.Fatal("Send on a failed link succeeded")
	}
}

// TestLoopbackHeartbeatTimeout covers the silent-peer case: the
// connection stays open but nothing arrives, so the heartbeat monitor
// must declare the peer down. The "silent" peer is a raw TCP server
// that completes a 2-machine rendezvous and then never writes again.
func TestLoopbackHeartbeatTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // fake coordinator for a 2-machine cluster
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != FrameHello {
			return
		}
		sum, _, _ := decodeHello(f.Payload)
		c := &Coordinator{machines: 2, configSum: sum, opts: Options{K: 1}}
		WriteFrame(conn, FrameWelcome, 0, c.welcomePayload(1, []string{"", ""})) //nolint:errcheck
		if rf, err := ReadFrame(conn); err != nil || rf.Type != FrameReady {
			return
		}
		WriteFrame(conn, FrameGo, 0, nil) //nolint:errcheck
		// ... and then: silence. Keep the conn open so only the
		// heartbeat timeout can notice.
		time.Sleep(time.Minute)
		conn.Close()
	}()
	var fired atomic.Bool
	link, _, err := Join(context.Background(), ln.Addr().String(), "127.0.0.1:0", 0xbeef, Options{
		K:                 1,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		OnPeerDown:        func(self, rank int, err error) { fired.Store(true) },
	})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer link.Close()
	select {
	case _, ok := <-link.Recv():
		if ok {
			t.Fatal("unexpected inbound batch")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat timeout never fired")
	}
	var pd *cluster.PeerDownError
	if err := link.Err(); !errors.As(err, &pd) {
		t.Fatalf("Err = %v, want *cluster.PeerDownError", err)
	}
	if !fired.Load() {
		t.Fatal("OnPeerDown not invoked")
	}
}

func TestRendezvousConfigMismatchRejected(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", 2, 1111, nil, nil, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	coordErr := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background())
		coordErr <- err
	}()
	_, _, err = Join(context.Background(), coord.Addr(), "127.0.0.1:0", 2222, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Join err = %v, want *RejectedError", err)
	}
	if err := <-coordErr; !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("coordinator err = %v, want ErrConfigMismatch", err)
	}
}

// TestRendezvousVersionMismatch: a coordinator speaking a different
// protocol version must be rejected by the joiner with a typed
// *VersionError, before any training state is exchanged.
func TestRendezvousVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ReadFrame(conn) //nolint:errcheck // the Hello
		raw := AppendFrame(nil, FrameWelcome, 0, []byte("future"))
		raw[4] = Version + 9 // a build from the future
		conn.Write(raw)      //nolint:errcheck
	}()
	_, _, err = Join(context.Background(), ln.Addr().String(), "127.0.0.1:0", 7, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Join err = %v, want *VersionError", err)
	}
	// And the coordinator side: a bad-version Hello is rejected too.
	coord, err := NewCoordinator("127.0.0.1:0", 2, 1, nil, nil, Options{K: 1, RendezvousTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	coordErr := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background())
		coordErr <- err
	}()
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw := AppendFrame(nil, FrameHello, -1, helloPayload(1, "127.0.0.1:1"))
	raw[4] = Version + 1
	conn.Write(raw) //nolint:errcheck
	defer conn.Close()
	if err := <-coordErr; !errors.As(err, &ve) {
		t.Fatalf("coordinator err = %v, want *VersionError", err)
	}
}

// TestRendezvousBroadcastsOwnershipAndState: the Welcome must carry
// the ownership map and the resume state bit-for-bit.
func TestRendezvousBroadcastsOwnershipAndState(t *testing.T) {
	owner := []int32{0, 1, 1, 0, 2}
	st := &train.State{
		Algorithm: "nomad",
		Seed:      9,
		Updates:   1234,
		Model:     factor.NewInit(3, 5, 2, 9),
		Counts:    []int32{1, 2, 3},
		RNG:       [][4]uint64{{1, 2, 3, 4}},
	}
	coord, err := NewCoordinator("127.0.0.1:0", 2, 77, owner, st, Options{K: 2, RendezvousTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		link *TCP
		err  error
	}
	coordDone := make(chan res, 1)
	go func() {
		l, err := coord.Run(context.Background())
		coordDone <- res{l, err}
	}()
	link, hs, err := Join(context.Background(), coord.Addr(), "127.0.0.1:0", 77, Options{K: 2, RendezvousTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	defer link.Close()
	cr := <-coordDone
	if cr.err != nil {
		t.Fatalf("coordinator: %v", cr.err)
	}
	defer cr.link.Close()
	if link.Rank() != 1 || link.Machines() != 2 {
		t.Fatalf("rank/machines = %d/%d", link.Rank(), link.Machines())
	}
	if len(hs.Owner) != len(owner) {
		t.Fatalf("owner = %v", hs.Owner)
	}
	for i := range owner {
		if hs.Owner[i] != owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, hs.Owner[i], owner[i])
		}
	}
	if hs.State == nil || hs.State.Updates != 1234 || hs.State.Seed != 9 || hs.State.Algorithm != "nomad" {
		t.Fatalf("state = %+v", hs.State)
	}
	if hs.State.Model.M != 3 || hs.State.Model.N != 5 || hs.State.Model.K != 2 {
		t.Fatalf("state model shape = %d×%d×%d", hs.State.Model.M, hs.State.Model.N, hs.State.Model.K)
	}
	for j := 0; j < 5; j++ {
		want := st.Model.ItemRow(j)
		got := hs.State.Model.ItemRow(j)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("state model drifted at item %d coord %d", j, c)
			}
		}
	}
}

func TestLoopbackStats(t *testing.T) {
	links := testLoopback(t, 2, Options{K: 1})
	if err := links[0].Send(1, cluster.TokenBatch{Tokens: []cluster.Token{{Item: 1, Vec: []float64{1}}}}); err != nil {
		t.Fatal(err)
	}
	<-links[1].Recv()
	st := links[0].Stats()
	if st.MessagesSent < 1 || st.BytesSent < int64(headerSize) {
		t.Fatalf("stats = %+v", st)
	}
}
