package netlink

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/cluster"
)

// TestFailoverEvictsDeadPeerOnly: with Options.Failover the death of
// one peer is a per-peer eviction, not a link failure — survivors keep
// a nil Err, keep exchanging traffic among themselves, and get a typed
// per-peer *cluster.PeerDownError only for sends toward the corpse.
func TestFailoverEvictsDeadPeerOnly(t *testing.T) {
	type downEvent struct{ self, rank int }
	downCh := make(chan downEvent, 8)
	links := testLoopback(t, 3, Options{
		K:        1,
		Failover: true,
		OnPeerDown: func(self, rank int, err error) {
			downCh <- downEvent{self, rank}
		},
	})
	links[2].(*TCP).Abort()

	// Each survivor observes the death independently; wait until rank 0
	// itself has evicted the victim before poking its link.
	deadline := time.After(10 * time.Second)
	for seen := false; !seen; {
		select {
		case e := <-downCh:
			if e.rank != 2 {
				t.Fatalf("OnPeerDown blamed rank %d, killed 2", e.rank)
			}
			seen = e.self == 0
		case <-deadline:
			t.Fatal("rank 0 never observed the aborted peer")
		}
	}
	if err := links[0].Err(); err != nil {
		t.Fatalf("survivor Err = %v, want nil under failover", err)
	}

	// Survivor-to-survivor traffic continues.
	batch := cluster.TokenBatch{Tokens: []cluster.Token{{Item: 3, Vec: []float64{1}}}}
	if err := links[0].Send(1, batch); err != nil {
		t.Fatalf("survivor Send: %v", err)
	}
	inb := <-links[1].Recv()
	if inb.From != 0 || inb.Batch.Tokens[0].Item != 3 {
		t.Fatalf("inbound = %+v", inb)
	}

	// Sends toward the dead rank fail with the typed per-peer error;
	// the link itself stays healthy.
	var pd *cluster.PeerDownError
	err := links[0].Send(2, batch)
	if !errors.As(err, &pd) || pd.Rank != 2 {
		t.Fatalf("Send to dead rank = %v, want *cluster.PeerDownError{Rank: 2}", err)
	}
	if err := links[0].Err(); err != nil {
		t.Fatalf("survivor Err after dead-rank send = %v, want nil", err)
	}
}

// TestFailoverBarrierQuorumShrinks: a peer that failover evicted is
// not waited for — survivors' Barrier completes with the shrunken
// quorum instead of hanging until a timeout.
func TestFailoverBarrierQuorumShrinks(t *testing.T) {
	var down atomic.Int32
	links := testLoopback(t, 3, Options{
		K:        1,
		Failover: true,
		OnPeerDown: func(self, rank int, err error) {
			down.Add(1)
		},
	})
	links[2].(*TCP).Abort()
	deadline := time.Now().Add(10 * time.Second)
	for down.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("eviction never observed")
		}
		time.Sleep(time.Millisecond)
	}

	errs := make(chan error, 2)
	for _, i := range []int{0, 1} {
		go func(i int) { errs <- links[i].Barrier() }(i)
	}
	for range 2 {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("survivor Barrier: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("survivor Barrier hung waiting for the evicted peer")
		}
	}
}

// TestBarrierFailsFastOnPeerDeath: without failover, a peer dying
// while the others wait inside Barrier must fail the call promptly
// with a typed *cluster.PeerDownError — death detection, not the
// barrier watchdog, is what unblocks the waiters.
func TestBarrierFailsFastOnPeerDeath(t *testing.T) {
	links := testLoopback(t, 3, Options{K: 1})

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for _, i := range []int{0, 1} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- links[i].Barrier()
		}(i)
	}
	// Give the waiters time to park inside the barrier, then crash the
	// third member instead of arriving.
	time.Sleep(100 * time.Millisecond)
	links[2].(*TCP).Abort()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier hung after the third member died")
	}
	for range 2 {
		var pd *cluster.PeerDownError
		if err := <-errs; !errors.As(err, &pd) {
			t.Fatalf("Barrier = %v, want *cluster.PeerDownError", err)
		}
	}
}

// TestBarrierWatchdogBlamesAbsentee: a member that stays alive but
// never arrives trips BarrierTimeout, and the error blames it.
func TestBarrierWatchdogBlamesAbsentee(t *testing.T) {
	links := testLoopback(t, 3, Options{
		K:              1,
		BarrierTimeout: 300 * time.Millisecond,
	})
	errs := make(chan error, 2)
	for _, i := range []int{0, 1} {
		go func(i int) { errs <- links[i].Barrier() }(i)
	}
	// links[2] is healthy but never calls Barrier.
	for range 2 {
		select {
		case err := <-errs:
			var pd *cluster.PeerDownError
			if !errors.As(err, &pd) {
				t.Fatalf("Barrier = %v, want *cluster.PeerDownError", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("BarrierTimeout watchdog never fired")
		}
	}
}

// TestDialBackoffShape pins the retry schedule: geometric growth from
// the base, a hard cap, and bounded jitter — never negative, never
// more than 50% above the deterministic curve.
func TestDialBackoffShape(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		prevBase := time.Duration(0)
		for attempt := 0; attempt < 12; attempt++ {
			base := dialBackoffBase << attempt
			if base > dialBackoffCap || base <= 0 {
				base = dialBackoffCap
			}
			d := dialBackoff(attempt, seed)
			if d < base {
				t.Fatalf("attempt %d seed %d: %v below deterministic base %v", attempt, seed, d, base)
			}
			if max := base + base/2; d > max {
				t.Fatalf("attempt %d seed %d: %v exceeds base+50%% jitter bound %v", attempt, seed, d, max)
			}
			if base < prevBase {
				t.Fatalf("attempt %d: base shrank %v -> %v", attempt, prevBase, base)
			}
			prevBase = base
		}
		// Far past the cap the wait stays bounded.
		if d := dialBackoff(30, seed); d > dialBackoffCap+dialBackoffCap/2 {
			t.Fatalf("seed %d: capped backoff %v exceeds %v", seed, d, dialBackoffCap+dialBackoffCap/2)
		}
	}
}
