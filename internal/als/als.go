// Package als implements Alternating Least Squares (Zhou et al. 2008;
// paper §2.1): alternately solving the per-row normal equations
//
//	wᵢ ← (HᵀΩᵢ HΩᵢ + λ|Ωᵢ| I)⁻¹ Hᵀ aᵢ
//	hⱼ ← (WᵀΩ̄ⱼ WΩ̄ⱼ + λ|Ω̄ⱼ| I)⁻¹ Wᵀ aⱼ
//
// by Cholesky factorization. Each sweep is embarrassingly parallel over
// rows, then over columns, but every wᵢ update must read *all* hⱼ rated
// by user i (Fig 1a) — the coarse data dependence that makes ALS
// expensive to distribute (see package glals for the GraphLab-style
// distributed variant the paper compares against in Appendix F).
package als

import (
	"context"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/parallel"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// ALS is the solver. The zero value is ready to use.
type ALS struct{}

// New returns an ALS solver.
func New() *ALS { return &ALS{} }

// Name implements train.Algorithm.
func (*ALS) Name() string { return "als" }

// Train implements train.Algorithm. Machines is folded into the worker
// count; for network-cost modelling of distributed ALS use glals.
func (*ALS) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("als"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("als", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	m, n := ds.Rows(), ds.Cols()
	// ALS carries no cross-sweep state beyond the factors: a resume is
	// a warm start from the restored model and update total.
	var md *factor.Model
	var resumed int64
	sweeps := 0
	if st := cfg.Resume; st != nil {
		md = st.Model
		resumed = st.Updates
		sweeps = int(st.Ring) // EpochEvent numbering continues
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
	}
	k := cfg.K
	tr := ds.Train

	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()
	var updates atomic.Int64
	updates.Store(resumed)

	// Per-worker scratch: Gram matrix and right-hand side.
	grams := make([][]float64, p)
	rhss := make([][]float64, p)
	for q := 0; q < p; q++ {
		grams[q] = make([]float64, k*k)
		rhss[q] = make([]float64, k)
	}

	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		// User sweep.
		parallel.For(p, m, func(worker, lo, hi int) {
			var touched int64
			for i := lo; i < hi; i++ {
				touched += int64(solveRow(md.UserRow(i), tr.Row, i, md.ItemRow, cfg.Lambda, grams[worker], rhss[worker], k))
			}
			counter.Add(worker, touched)
			updates.Add(touched)
		})
		// Item sweep (via the CSC view).
		parallel.For(p, n, func(worker, lo, hi int) {
			var touched int64
			for j := lo; j < hi; j++ {
				rows, pos := tr.Col(j)
				if len(rows) == 0 {
					continue
				}
				gram := grams[worker]
				rhs := rhss[worker]
				for x := range gram {
					gram[x] = 0
				}
				for x := range rhs {
					rhs[x] = 0
				}
				for x, i := range rows {
					wi := md.UserRow(int(i))
					vecmath.AddOuterScaled(gram, wi, 1, k)
					vecmath.Axpy(tr.ValAt(pos[x]), wi, rhs)
				}
				for l := 0; l < k; l++ {
					gram[l*k+l] += cfg.Lambda * float64(len(rows))
				}
				if err := vecmath.CholeskySolve(gram, rhs, k); err == nil {
					copy(md.ItemRow(j), rhs)
				}
				touched += int64(len(rows))
			}
			counter.Add(worker, touched)
			updates.Add(touched)
		})
		sweeps++
		hooks.EmitEpoch(train.EpochEvent{Epoch: sweeps, Updates: updates.Load()})
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	return &train.Result{
		Algorithm: "als",
		Model:     md,
		Trace:     rec.Trace(),
		Updates:   updates.Load(),
		Elapsed:   rec.Elapsed(),
		Final: &train.State{
			Algorithm: "als",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(sweeps),
			Model:     md,
		},
	}, ctx.Err()
}

// solveRow solves one user row's normal equations in place and returns
// the number of ratings touched.
func solveRow(wRow []float64, rowFn func(int) ([]int32, []float64), i int,
	itemRow func(int) []float64, lambda float64, gram, rhs []float64, k int) int {

	cols, vals := rowFn(i)
	if len(cols) == 0 {
		return 0
	}
	for x := range gram {
		gram[x] = 0
	}
	for x := range rhs {
		rhs[x] = 0
	}
	for x, j := range cols {
		hj := itemRow(int(j))
		vecmath.AddOuterScaled(gram, hj, 1, k)
		vecmath.Axpy(vals[x], hj, rhs)
	}
	for l := 0; l < k; l++ {
		gram[l*k+l] += lambda * float64(len(cols))
	}
	if err := vecmath.CholeskySolve(gram, rhs, k); err == nil {
		copy(wRow, rhs)
	}
	return len(cols)
}
