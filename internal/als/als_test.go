package als

import (
	"math"
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/metrics"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(10 * ds.Train.NNZ()) // 5 full sweeps
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestMultiWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Workers = 4
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(10 * ds.Train.NNZ())
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

// TestObjectiveMonotone: each ALS half-sweep exactly minimizes the
// objective in its block of variables, so full sweeps never increase
// objective (1).
func TestObjectiveMonotone(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	perSweep := int64(2 * ds.Train.NNZ())
	prev := math.Inf(1)
	for sweeps := 1; sweeps <= 3; sweeps++ {
		c := cfg
		c.MaxUpdates = int64(sweeps) * perSweep
		res := algotest.Run(t, New(), ds, c)
		obj := metrics.Objective(res.Model, ds.Train, cfg.Lambda)
		if obj > prev*(1+1e-9) {
			t.Fatalf("objective increased at sweep %d: %v -> %v", sweeps, prev, obj)
		}
		prev = obj
	}
}

// TestALSBeatsSGDPerSweep: ALS's exact row solves should reach low RMSE
// in very few sweeps — the "rapid initial convergence per iteration"
// property that makes it a serious baseline despite its cost.
func TestALSFastPerSweep(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 0
	cfg.MaxUpdates = int64(4 * ds.Train.NNZ()) // 2 sweeps
	res := algotest.Run(t, New(), ds, cfg)
	if final := res.Trace.Final().RMSE; final > 0.6 {
		t.Errorf("ALS after 2 sweeps: RMSE %.4f, expected < 0.6", final)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "als" {
		t.Fatal("wrong name")
	}
}
