package partition

import (
	"testing"
	"testing/quick"

	"nomad/internal/rng"
)

func TestEqualRangesSizes(t *testing.T) {
	pt := EqualRanges(10, 3)
	if pt.P() != 3 || pt.N() != 10 {
		t.Fatalf("P/N = %d/%d", pt.P(), pt.N())
	}
	sizes := []int{pt.Size(0), pt.Size(1), pt.Size(2)}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualRangesContiguous(t *testing.T) {
	pt := EqualRanges(100, 7)
	for q := 0; q < 7; q++ {
		part := pt.Part(q)
		for x := 1; x < len(part); x++ {
			if part[x] != part[x-1]+1 {
				t.Fatalf("part %d not contiguous at %d", q, x)
			}
		}
	}
}

func TestEqualRangesProperty(t *testing.T) {
	err := quick.Check(func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 500)
		p := int(pRaw%20) + 1
		pt := EqualRanges(n, p)
		if pt.Validate() != nil {
			return false
		}
		// Sizes differ by at most one.
		min, max := n, 0
		for q := 0; q < p; q++ {
			s := pt.Size(q)
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEqualWeightBalances(t *testing.T) {
	// Heavily skewed weights; LPT should spread them evenly.
	weights := make([]int, 100)
	r := rng.New(5)
	total := 0
	for i := range weights {
		weights[i] = 1 + r.Intn(1000)
		total += weights[i]
	}
	p := 4
	pt := EqualWeight(weights, p)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	loads := make([]int, p)
	for q := 0; q < p; q++ {
		for _, i := range pt.Part(q) {
			loads[q] += weights[i]
		}
	}
	ideal := total / p
	for q, l := range loads {
		if l < ideal*7/10 || l > ideal*13/10 {
			t.Errorf("part %d load %d too far from ideal %d", q, l, ideal)
		}
	}
}

func TestEqualWeightSingleHeavy(t *testing.T) {
	// One giant weight should own a part alone (p=2).
	weights := []int{1000, 1, 1, 1, 1}
	pt := EqualWeight(weights, 2)
	heavy := pt.Owner(0)
	if pt.Size(heavy) != 1 {
		t.Fatalf("heavy part has %d members, want 1", pt.Size(heavy))
	}
}

func TestRandomCoverAndValidate(t *testing.T) {
	r := rng.New(11)
	pt := Random(1000, 8, r.Intn)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// With 1000 indices over 8 parts, each part should be non-empty
	// with overwhelming probability.
	for q := 0; q < 8; q++ {
		if pt.Size(q) == 0 {
			t.Fatalf("part %d empty", q)
		}
	}
}

func TestOwnerPartConsistency(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		p := 1 + r.Intn(10)
		pt := Random(n, p, r.Intn)
		for q := 0; q < p; q++ {
			for _, i := range pt.Part(q) {
				if pt.Owner(int(i)) != q {
					return false
				}
			}
		}
		return pt.Validate() == nil
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroIndices(t *testing.T) {
	pt := EqualRanges(0, 3)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.N() != 0 {
		t.Fatal("expected empty partition")
	}
}

func TestPanicsOnInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EqualRanges(10, 0)
}
