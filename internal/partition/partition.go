// Package partition assigns users (or items) to workers.
//
// NOMAD (§3.1) splits the m users into p disjoint sets I₁…I_p of
// approximately equal size, or — the footnoted alternative — of
// approximately equal rating count. The partition of the rows of A is
// induced from that, and never changes during a run. The same machinery
// partitions items for the bulk-synchronous baselines (DSGD's p×p
// blocking, DSGD++'s 2p item blocks, FPSGD**'s p′×p′ grid).
package partition

import (
	"fmt"
	"sort"
)

// Partition maps n indices onto p parts.
type Partition struct {
	p     int
	owner []int32 // owner[i] = part of index i
	parts [][]int32
}

// P returns the number of parts.
func (pt *Partition) P() int { return pt.p }

// N returns the number of partitioned indices.
func (pt *Partition) N() int { return len(pt.owner) }

// Owner returns the part that owns index i.
func (pt *Partition) Owner(i int) int { return int(pt.owner[i]) }

// Part returns the indices owned by part q, in increasing order. The
// slice aliases internal storage and must not be modified.
func (pt *Partition) Part(q int) []int32 { return pt.parts[q] }

// Size returns the number of indices in part q.
func (pt *Partition) Size(q int) int { return len(pt.parts[q]) }

// fromOwner builds the parts lists from an owner array.
func fromOwner(p int, owner []int32) *Partition {
	pt := &Partition{p: p, owner: owner, parts: make([][]int32, p)}
	counts := make([]int, p)
	for _, o := range owner {
		counts[o]++
	}
	for q := 0; q < p; q++ {
		pt.parts[q] = make([]int32, 0, counts[q])
	}
	for i, o := range owner {
		pt.parts[o] = append(pt.parts[o], int32(i))
	}
	return pt
}

// EqualRanges splits indices 0..n-1 into p contiguous ranges whose
// sizes differ by at most one. This is the paper's default "sets of
// approximately equal size".
func EqualRanges(n, p int) *Partition {
	mustValid(n, p)
	owner := make([]int32, n)
	base := n / p
	extra := n % p
	idx := 0
	for q := 0; q < p; q++ {
		size := base
		if q < extra {
			size++
		}
		for c := 0; c < size; c++ {
			owner[idx] = int32(q)
			idx++
		}
	}
	return fromOwner(p, owner)
}

// EqualWeight splits indices into p parts of approximately equal total
// weight (the footnote-1 alternative: equal rating counts). It greedily
// assigns indices in decreasing weight order to the currently lightest
// part, a standard LPT bin-packing heuristic.
func EqualWeight(weights []int, p int) *Partition {
	n := len(weights)
	mustValid(n, p)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, p)
	owner := make([]int32, n)
	for _, i := range order {
		q := 0
		for c := 1; c < p; c++ {
			if load[c] < load[q] {
				q = c
			}
		}
		owner[i] = int32(q)
		load[q] += int64(weights[i])
	}
	return fromOwner(p, owner)
}

// Random assigns each index to a uniformly random part, using the
// provided random stream. NOMAD initializes item-token placement this
// way (Algorithm 1 lines 7–10).
func Random(n, p int, intn func(int) int) *Partition {
	mustValid(n, p)
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = int32(intn(p))
	}
	return fromOwner(p, owner)
}

// Validate checks the structural invariants: every index owned by
// exactly one part and every part list consistent with the owner map.
// It is used by tests and by paranoid callers.
func (pt *Partition) Validate() error {
	seen := make([]bool, len(pt.owner))
	total := 0
	for q, part := range pt.parts {
		for _, i := range part {
			if int(i) < 0 || int(i) >= len(pt.owner) {
				return fmt.Errorf("partition: part %d contains out-of-range index %d", q, i)
			}
			if seen[i] {
				return fmt.Errorf("partition: index %d in multiple parts", i)
			}
			seen[i] = true
			if pt.owner[i] != int32(q) {
				return fmt.Errorf("partition: owner[%d]=%d but found in part %d", i, pt.owner[i], q)
			}
			total++
		}
	}
	if total != len(pt.owner) {
		return fmt.Errorf("partition: parts cover %d of %d indices", total, len(pt.owner))
	}
	return nil
}

func mustValid(n, p int) {
	if n < 0 || p <= 0 {
		panic(fmt.Sprintf("partition: invalid n=%d p=%d", n, p))
	}
}
