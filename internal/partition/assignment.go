package partition

import "fmt"

// Assignment is the mutable side of partitioning: a shard → owner map
// that reconfigures incrementally as the owner set changes, instead of
// being rebuilt from scratch with EqualRanges. The elastic runtime
// keeps one for the rating-shard responsibility table — shards are the
// fixed per-worker rating stores, owners are the live global workers —
// and republishes a snapshot after each membership change, so a resize
// moves only the shards that must move.
type Assignment struct {
	owner []int32
}

// Identity returns the assignment where shard s is owned by owner s —
// every worker responsible for exactly its own shard.
func Identity(p int) *Assignment {
	if p < 0 {
		panic(fmt.Sprintf("partition: invalid assignment size %d", p))
	}
	a := &Assignment{owner: make([]int32, p)}
	for s := range a.owner {
		a.owner[s] = int32(s)
	}
	return a
}

// P returns the number of shards.
func (a *Assignment) P() int { return len(a.owner) }

// Owner returns the owner of shard s.
func (a *Assignment) Owner(s int) int { return int(a.owner[s]) }

// Assign moves shard s to owner o.
func (a *Assignment) Assign(s, o int) { a.owner[s] = int32(o) }

// Owned returns the shards owned by o, ascending.
func (a *Assignment) Owned(o int) []int32 {
	var out []int32
	for s, w := range a.owner {
		if int(w) == o {
			out = append(out, int32(s))
		}
	}
	return out
}

// MoveOwner reassigns every shard owned by from to to — the scale-in
// hand-off (a leaver's shards to its buddy) — and returns how many
// shards moved.
func (a *Assignment) MoveOwner(from, to int) int {
	moved := 0
	for s, w := range a.owner {
		if int(w) == from {
			a.owner[s] = int32(to)
			moved++
		}
	}
	return moved
}

// Snapshot returns a copy of the owner map, suitable for atomic
// publication to readers.
func (a *Assignment) Snapshot() []int32 {
	out := make([]int32, len(a.owner))
	copy(out, a.owner)
	return out
}

// Validate checks every shard is owned by an owner in [0, owners).
func (a *Assignment) Validate(owners int) error {
	for s, w := range a.owner {
		if int(w) < 0 || int(w) >= owners {
			return fmt.Errorf("partition: shard %d assigned to invalid owner %d (have %d owners)", s, w, owners)
		}
	}
	return nil
}

// CarveShare computes the scale-out donation quotas: counts[i] is how
// many items owner i currently holds, and the returned quota[i] is how
// many it should hand to a new member so that the newcomer ends up
// with ≈ 1/(len(counts)+1) of the total, carved off each donor
// proportionally to its load (§3.3's balance goal applied to a
// resize). Donors with nothing to give donate nothing; rounding keeps
// every quota within each donor's holdings.
func CarveShare(counts []int64) []int64 {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	quota := make([]int64, len(counts))
	if total == 0 {
		return quota
	}
	target := total / int64(len(counts)+1)
	for i, c := range counts {
		q := target * c / total
		if q > c {
			q = c
		}
		quota[i] = q
	}
	return quota
}
