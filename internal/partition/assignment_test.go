package partition

import "testing"

func TestIdentityAssignment(t *testing.T) {
	a := Identity(4)
	if a.P() != 4 {
		t.Fatalf("P = %d, want 4", a.P())
	}
	for s := 0; s < 4; s++ {
		if a.Owner(s) != s {
			t.Fatalf("Owner(%d) = %d, want %d", s, a.Owner(s), s)
		}
	}
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentMoveOwner(t *testing.T) {
	a := Identity(5)
	a.Assign(4, 2) // shard 4 also lives on owner 2
	if moved := a.MoveOwner(2, 0); moved != 2 {
		t.Fatalf("MoveOwner moved %d shards, want 2", moved)
	}
	if owned := a.Owned(2); owned != nil {
		t.Fatalf("owner 2 still owns %v after MoveOwner", owned)
	}
	if owned := a.Owned(0); len(owned) != 3 || owned[0] != 0 || owned[1] != 2 || owned[2] != 4 {
		t.Fatalf("owner 0 owns %v, want [0 2 4]", owned)
	}
	// The leaver gone, the remaining owner set [0,1,3] of size 4 is
	// invalid only if a shard still points at an out-of-range owner.
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(3); err == nil {
		t.Fatal("Validate(3) accepted shard owned by rank 3")
	}
}

func TestAssignmentSnapshotIsolated(t *testing.T) {
	a := Identity(3)
	snap := a.Snapshot()
	a.Assign(0, 2)
	if snap[0] != 0 {
		t.Fatal("Snapshot aliases the live owner map")
	}
	if a.Owner(0) != 2 {
		t.Fatal("Assign after Snapshot lost")
	}
}

func TestCarveShareProportional(t *testing.T) {
	counts := []int64{600, 300, 100}
	quota := CarveShare(counts)
	// The newcomer should end up with ≈ 1000/4 = 250, carved off each
	// donor proportionally to its holdings: 150/75/25.
	if quota[0] != 150 || quota[1] != 75 || quota[2] != 25 {
		t.Fatalf("quota = %v, want [150 75 25]", quota)
	}
	var donated int64
	for i, q := range quota {
		if q > counts[i] {
			t.Fatalf("donor %d asked for %d of its %d items", i, q, counts[i])
		}
		donated += q
	}
	if target := int64(1000 / 4); donated > target {
		t.Fatalf("donated %d, more than the newcomer's %d share", donated, target)
	}
}

func TestCarveShareEdges(t *testing.T) {
	for _, q := range CarveShare([]int64{0, 0}) {
		if q != 0 {
			t.Fatal("empty donors asked to donate")
		}
	}
	// One donor with everything: the newcomer gets ≈ half.
	quota := CarveShare([]int64{10})
	if quota[0] != 5 {
		t.Fatalf("single-donor quota = %v, want [5]", quota)
	}
	// Rounding must never exceed holdings even for tiny counts.
	for _, counts := range [][]int64{{1, 1, 1}, {2, 0, 1}, {1}} {
		for i, q := range CarveShare(counts) {
			if q < 0 || q > counts[i] {
				t.Fatalf("counts %v: quota %d for donor %d outside [0,%d]", counts, q, i, counts[i])
			}
		}
	}
}
