// Package parallel provides the fork-join loop used by the
// bulk-synchronous baselines (ALS, CCD++, DSGD's sub-epochs) to spread
// row-wise work across a fixed number of workers.
package parallel

import "sync"

// For splits [0, n) into at most workers contiguous chunks and runs
// body(worker, lo, hi) for each chunk concurrently, returning when all
// chunks are done. body must not panic. With workers <= 1 or tiny n it
// degrades to a serial call, avoiding goroutine overhead.
func For(workers, n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Sum runs body over chunks like For and returns the sum of the
// per-chunk float64 results.
func Sum(workers, n int, body func(worker, lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return body(0, 0, n)
	}
	partials := make([]float64, workers)
	For(workers, n, func(w, lo, hi int) {
		partials[w] = body(w, lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}
