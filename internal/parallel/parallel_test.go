package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	err := quick.Check(func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 200)
		workers := int(wRaw%8) + 1
		touched := make([]int32, n)
		For(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&touched[i], 1)
			}
		})
		for _, c := range touched {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(4, 0, func(_, _, _ int) { called = true })
	For(4, -3, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForSerialFallback(t *testing.T) {
	var calls int
	For(1, 100, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 100 {
			t.Fatalf("serial call got (%d,%d,%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial fallback made %d calls", calls)
	}
}

func TestForDistinctWorkerIDs(t *testing.T) {
	n, workers := 64, 4
	seen := make([]int32, workers)
	For(workers, n, func(w, _, _ int) {
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d invoked %d times", w, c)
		}
	}
}

func TestSum(t *testing.T) {
	got := Sum(4, 1000, func(_, lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(999 * 1000 / 2)
	if got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(4, 0, func(_, _, _ int) float64 { return 1 }); got != 0 {
		t.Fatalf("Sum over empty range = %v", got)
	}
}
