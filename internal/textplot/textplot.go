// Package textplot renders convergence curves as ASCII line charts so
// cmd/nomad-bench can show each regenerated figure directly in the
// terminal, the way the paper shows RMSE-versus-time plots.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options controls chart geometry.
type Options struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 12)
	XLabel string
	YLabel string
}

// markers distinguish overlapping series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series into an ASCII chart. Series with fewer than
// two finite points are skipped. It returns an error only if the
// writer fails; degenerate data produces an empty chart.
func Render(w io.Writer, series []Series, opt Options) error {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 12
	}

	// Bounds over all finite points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		pts := 0
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			pts++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
		if pts >= 2 {
			usable++
		}
	}
	if usable == 0 {
		_, err := fmt.Fprintln(w, "(no plottable series)")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	// Plot with linear interpolation between consecutive points so
	// sparse traces still read as lines.
	for si, s := range series {
		mark := markers[si%len(markers)]
		var prevC, prevR int
		havePrev := false
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				havePrev = false
				continue
			}
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(opt.Width-1)))
			r := opt.Height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(opt.Height-1)))
			if havePrev {
				drawLine(grid, prevC, prevR, c, r, mark)
			} else {
				grid[clamp(r, 0, opt.Height-1)][clamp(c, 0, opt.Width-1)] = mark
			}
			prevC, prevR = c, r
			havePrev = true
		}
	}

	// Frame with y-axis labels on the first, middle and last rows.
	yLab := func(row int) string {
		frac := float64(opt.Height-1-row) / float64(opt.Height-1)
		return fmt.Sprintf("%8.4g", minY+frac*(maxY-minY))
	}
	for r := 0; r < opt.Height; r++ {
		lab := strings.Repeat(" ", 8)
		if r == 0 || r == opt.Height/2 || r == opt.Height-1 {
			lab = yLab(r)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", lab, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", opt.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g  %s\n",
		strings.Repeat(" ", 8), opt.Width/2, minX, opt.Width-opt.Width/2, maxX, opt.XLabel); err != nil {
		return err
	}
	// Legend.
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Label); err != nil {
			return err
		}
	}
	return nil
}

// drawLine rasterizes a segment with the Bresenham algorithm.
func drawLine(grid [][]byte, c0, r0, c1, r1 int, mark byte) {
	h, w := len(grid), len(grid[0])
	dc := abs(c1 - c0)
	dr := -abs(r1 - r0)
	sc, sr := 1, 1
	if c0 > c1 {
		sc = -1
	}
	if r0 > r1 {
		sr = -1
	}
	err := dc + dr
	for {
		grid[clamp(r0, 0, h-1)][clamp(c0, 0, w-1)] = mark
		if c0 == c1 && r0 == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			err += dr
			c0 += sc
		}
		if e2 <= dc {
			err += dc
			r0 += sr
		}
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
