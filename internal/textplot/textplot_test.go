package textplot

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, series []Series, opt Options) string {
	t.Helper()
	var sb strings.Builder
	if err := Render(&sb, series, opt); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRenderBasicShape(t *testing.T) {
	s := []Series{{
		Label: "rmse",
		X:     []float64{0, 1, 2, 3},
		Y:     []float64{2.0, 1.0, 0.6, 0.5},
	}}
	out := render(t, s, Options{Width: 40, Height: 8, XLabel: "seconds"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 plot rows + axis + x labels + 1 legend line.
	if len(lines) != 11 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "seconds") || !strings.Contains(out, "rmse") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no data marks:\n%s", out)
	}
}

func TestRenderMonotoneCurveOrientation(t *testing.T) {
	// A strictly decreasing curve must mark the top-left and
	// bottom-right regions, not the reverse.
	s := []Series{{Label: "d", X: []float64{0, 1}, Y: []float64{10, 0}}}
	out := render(t, s, Options{Width: 20, Height: 6})
	lines := strings.Split(out, "\n")
	top := lines[0]
	bottom := lines[5]
	if !strings.Contains(top[10:], "*") {
		t.Fatalf("top row missing start mark:\n%s", out)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("bottom row missing end mark:\n%s", out)
	}
	// Top row's mark must be left of bottom row's mark.
	if strings.IndexByte(top, '*') > strings.IndexByte(bottom, '*') {
		t.Fatalf("curve orientation wrong:\n%s", out)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	s := []Series{
		{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Label: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	}
	out := render(t, s, Options{Width: 24, Height: 6})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	s := []Series{{
		Label: "gap",
		X:     []float64{0, 1, 2},
		Y:     []float64{1, math.NaN(), 0},
	}}
	out := render(t, s, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("NaN broke rendering:\n%s", out)
	}
}

func TestRenderDegenerate(t *testing.T) {
	out := render(t, []Series{{Label: "single", X: []float64{1}, Y: []float64{1}}}, Options{})
	if !strings.Contains(out, "no plottable series") {
		t.Fatalf("degenerate input not handled:\n%s", out)
	}
	out = render(t, nil, Options{})
	if !strings.Contains(out, "no plottable series") {
		t.Fatalf("empty input not handled:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Constant Y must not divide by zero.
	s := []Series{{Label: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}}
	out := render(t, s, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series vanished:\n%s", out)
	}
}

func TestRenderDefaults(t *testing.T) {
	s := []Series{{Label: "d", X: []float64{0, 1}, Y: []float64{0, 1}}}
	out := render(t, s, Options{}) // default 64×12
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12+2+1 {
		t.Fatalf("default geometry wrong: %d lines", len(lines))
	}
}
