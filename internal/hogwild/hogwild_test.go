package hogwild

import (
	"context"
	"testing"

	"nomad/internal/algotest"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	res := algotest.Run(t, New(), ds, algotest.SGDConfig())
	algotest.RequireConverged(t, res, 0.6)
	if res.BytesSent != 0 {
		t.Error("hogwild should not touch the network")
	}
}

func TestMultiWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Workers = 4
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.7)
}

func TestUpdateCountPlausible(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Epochs = 5
	res := algotest.Run(t, New(), ds, cfg)
	want := int64(5 * ds.Train.NNZ())
	if res.Updates < want {
		t.Errorf("updates %d below configured work %d", res.Updates, want)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "hogwild" {
		t.Fatal("wrong name")
	}
}

func TestRejectsNilDataset(t *testing.T) {
	if _, err := New().Train(context.Background(), nil, algotest.SGDConfig(), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}
