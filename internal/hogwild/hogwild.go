// Package hogwild implements Hogwild!-style asynchronous SGD (Recht et
// al. 2011), the paper's §4.2/§4.3 point of contrast: fully
// asynchronous like NOMAD, but *not serializable* — workers sample
// ratings uniformly at random and update shared factor rows without any
// coordination, so two workers can race on the same wᵢ or hⱼ.
//
// The paper argues (and the serializability ablation benchmark
// measures) that NOMAD's race-free update ordering converges faster;
// this package exists to make that comparison runnable.
package hogwild

import (
	"context"
	"sync"
	"sync/atomic"

	"nomad/internal/affinity"
	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/loss"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// Hogwild is the solver. The zero value is ready to use.
type Hogwild struct{}

// New returns a Hogwild solver.
func New() *Hogwild { return &Hogwild{} }

// Name implements train.Algorithm.
func (*Hogwild) Name() string { return "hogwild" }

// Train implements train.Algorithm. Machines is treated as additional
// worker multiplicity: Hogwild has no distributed story (that is the
// point), so all workers share one memory image.
func (*Hogwild) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("hogwild", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	schedule := cfg.Schedule()

	// Flatten the training entries for O(1) uniform sampling.
	entries := ds.Train.Entries(nil)
	nnz := len(entries)

	// Per-rating update counts for eq. (11), in the entries' canonical
	// order — which is also their checkpoint order. Increments race
	// between workers — deliberately: Hogwild takes no locks anywhere.
	var md *factor.Model
	var counts []int32
	root := rng.New(cfg.Seed)
	workerRNG := make([]*rng.Source, p)
	if st := cfg.Resume; st != nil {
		md = st.Model
		counts = st.CountsFor(nnz)
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInitP(ds.Rows(), ds.Cols(), cfg.K, cfg.Seed, cfg.Precision)
		counts = make([]int32, nnz)
		for q := 0; q < p; q++ {
			workerRNG[q] = root.Split(uint64(q))
		}
	}

	lossFn := cfg.Loss
	f32 := md.Precision() == factor.Float32
	var kern vecmath.Kernel
	var kern32 vecmath.Kernel32
	if f32 {
		kern32 = vecmath.KernelFor32(cfg.K)
	} else {
		kern = vecmath.KernelFor(cfg.K)
	}
	fused := loss.UseFused(lossFn) // devirtualize the default loss
	table, _ := schedule.(*sched.Table)
	lambda := cfg.Lambda
	lambda32 := float32(cfg.Lambda)
	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int, r *rng.Source) {
			defer wg.Done()
			if cfg.PinWorkers {
				affinity.Pin(q)
				defer affinity.Unpin()
			}
			var batch int64
			for !stop.Load() {
				x := r.Intn(nnz)
				e := entries[x]
				t := counts[x]
				counts[x] = t + 1 // racy by design
				var step float64
				if table != nil {
					step = table.Step(int(t)) // direct, inlinable lookup
				} else {
					step = schedule.Step(int(t))
				}
				if f32 {
					wRow := md.UserRow32(int(e.Row))
					hRow := md.ItemRow32(int(e.Col))
					if fused {
						kern32.Step(wRow, hRow, float32(e.Val), float32(step), lambda32)
					} else {
						g := lossFn.Grad(float64(kern32.Dot(wRow, hRow)), e.Val)
						kern32.Grad(wRow, hRow, float32(g), float32(step), lambda32)
					}
				} else {
					wRow := md.UserRow(int(e.Row))
					hRow := md.ItemRow(int(e.Col))
					if fused {
						kern.Step(wRow, hRow, e.Val, step, lambda)
					} else {
						g := lossFn.Grad(kern.Dot(wRow, hRow), e.Val)
						kern.Grad(wRow, hRow, g, step, lambda)
					}
				}
				batch++
				if batch >= 256 {
					counter.Add(q, batch)
					batch = 0
					// Worker-side budget check: stop promptly once the
					// flushed total crosses the update budget.
					if counter.Total() >= cfg.MaxUpdates {
						stop.Store(true)
					}
				}
			}
			counter.Add(q, batch)
		}(q, workerRNG[q])
	}

	runErr := train.Monitor(ctx, &stop, counter, cfg, rec, md, hooks)
	wg.Wait()
	rec.Sample(md, counter.Total())

	return &train.Result{
		Algorithm: "hogwild",
		Model:     md,
		Trace:     rec.Trace(),
		Updates:   counter.Total(),
		Elapsed:   rec.Elapsed(),
		Final: &train.State{
			Algorithm: "hogwild",
			Seed:      cfg.Seed,
			Updates:   counter.Total(),
			Model:     md,
			Counts:    counts,
			RNG:       train.CaptureStreams(root, workerRNG),
		},
	}, runErr
}
