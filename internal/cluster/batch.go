package cluster

// Arena-backed token batches: the allocation-free representation of
// the §3.5 unit of network transfer. A BatchBuf is one flat []float64
// payload plus the token indices; materializing it as a TokenBatch
// hands out Token structs whose Vec fields are views into the flat
// array, so building, encoding and decoding a batch never allocates
// per token. Senders keep one BatchBuf per destination and Reset it
// after every flush; receivers decode into pooled BatchBufs that the
// consumer returns with TokenBatch.Release once the tokens have been
// copied out — the explicit hand-off that lets one arena cycle
// between a connection's reader and the training runner forever.
//
// Ownership rules (see also Link.Send):
//
//   - A batch produced by (*BatchBuf).Batch is a view: the arena's
//     owner may Reset and refill it as soon as the batch's consumer
//     (a Link's Send) returns.
//   - A batch produced by (*BatchBuf).HandOff owns its arena: exactly
//     one consumer must call Release when the tokens are no longer
//     needed, after which every view into the batch is invalid.
//
// NOMAD_REFERENCE_WIRE=1 pins the legacy allocating wire data plane
// (per-token vector allocation on decode, per-frame buffers on
// encode, per-batch pending slices in the Sender, free-running
// heartbeats) — the in-tree A/B switch of the wire-path benchmarks,
// in the mould of NOMAD_REFERENCE_KERNELS and
// NOMAD_REFERENCE_TRANSPORT.

import (
	"os"
	"sync"
)

// referenceWire pins the legacy allocating wire path. Read once at
// startup; SetReferenceWire overrides it for in-process A/B runs.
var referenceWire = os.Getenv("NOMAD_REFERENCE_WIRE") != ""

// ReferenceWire reports whether the legacy wire data plane is forced:
// allocating codec paths in internal/netlink, per-batch pending
// slices in Sender, and heartbeats that always take their own write.
func ReferenceWire() bool { return referenceWire }

// SetReferenceWire overrides the NOMAD_REFERENCE_WIRE switch at run
// time. cmd/nomad-bench uses it to measure both wire sides
// interleaved in one process. The switch is consulted when links and
// senders are constructed — never flip it while a run is active.
func SetReferenceWire(v bool) { referenceWire = v }

// BatchBuf is a reusable arena for one TokenBatch: the token item
// indices plus one flat float64 payload every token vector is a view
// into. The zero value is ready to use. A BatchBuf is not safe for
// concurrent use; the hand-off between goroutines is sequential
// (build → send → Release).
type BatchBuf struct {
	items []int32
	ends  []int32 // ends[i] is the end offset of token i's vector in vals
	vals  []float64
	toks  []Token // materialized views, rebuilt by Batch/HandOff
}

// NewBatchBuf returns an empty, unpooled arena (senders keep theirs
// for the life of the run; use GetBatchBuf for the recycling pool).
func NewBatchBuf() *BatchBuf { return &BatchBuf{} }

// batchPool recycles decode-side arenas between a link's readers and
// the runner that consumes their batches.
var batchPool = sync.Pool{New: func() any { return new(BatchBuf) }}

// GetBatchBuf returns an empty arena from the shared pool. Pair it
// with HandOff so the consumer's Release recycles it.
func GetBatchBuf() *BatchBuf {
	b := batchPool.Get().(*BatchBuf)
	b.Reset()
	return b
}

// Release returns the arena to the shared pool. The caller must not
// touch the arena, or any batch materialized from it, afterwards.
//
//nomad:noalloc
func (b *BatchBuf) Release() { batchPool.Put(b) }

// Reset empties the arena, keeping its capacity.
//
//nomad:noalloc
func (b *BatchBuf) Reset() {
	b.items = b.items[:0]
	b.ends = b.ends[:0]
	b.vals = b.vals[:0]
}

// Len returns the number of tokens accumulated.
func (b *BatchBuf) Len() int { return len(b.items) }

// Add copies one token into the arena.
//
//nomad:noalloc
func (b *BatchBuf) Add(item int32, vec []float64) {
	copy(b.AddVec(item, len(vec)), vec) //nomad:alloc-ok arena warm-up growth, amortized away on reuse
}

// AddVec appends a token with an uninitialized k-coordinate vector
// and returns that vector for the caller to fill in place — the
// decode path writes wire floats straight into the arena through it.
// The caller must overwrite all k coordinates (reused arena capacity
// holds stale values). The returned slice is only valid until the
// next Add/AddVec.
//
//nomad:noalloc
func (b *BatchBuf) AddVec(item int32, k int) []float64 {
	b.items = append(b.items, item)
	start := len(b.vals)
	b.vals = grow(b.vals, start+k) //nomad:alloc-ok arena warm-up growth, amortized away on reuse
	b.ends = append(b.ends, int32(start+k))
	return b.vals[start : start+k]
}

// grow extends s to length n, reallocating amortized-doubling like
// append so steady-state reuse never allocates.
func grow(s []float64, n int) []float64 {
	if n <= cap(s) {
		return s[:n]
	}
	return append(s, make([]float64, n-len(s))...)
}

// Batch materializes the arena as a TokenBatch whose token vectors
// are views into the flat payload. The arena retains ownership: the
// caller may Reset and refill it as soon as the batch's consumer
// returns (Link.Send copies or encodes before returning).
//
//nomad:noalloc
func (b *BatchBuf) Batch(queueLen int) TokenBatch {
	return TokenBatch{Tokens: b.views(), QueueLen: queueLen} //nomad:alloc-ok token-view warm-up growth on cap miss
}

// HandOff materializes like Batch but transfers ownership to the
// batch: the consumer that finishes with the tokens calls
// TokenBatch.Release, which returns the arena to the shared pool.
//
//nomad:noalloc
func (b *BatchBuf) HandOff(queueLen int) TokenBatch {
	return TokenBatch{Tokens: b.views(), QueueLen: queueLen, buf: b} //nomad:alloc-ok token-view warm-up growth on cap miss
}

// views rebuilds the token view slice over the current arena state.
func (b *BatchBuf) views() []Token {
	if cap(b.toks) < len(b.items) {
		b.toks = make([]Token, len(b.items))
	} else {
		b.toks = b.toks[:len(b.items)]
	}
	start := int32(0)
	for i, item := range b.items {
		end := b.ends[i]
		var vec []float64
		if end > start {
			vec = b.vals[start:end:end]
		}
		b.toks[i] = Token{Item: item, Vec: vec}
		start = end
	}
	return b.toks
}

// CloneBatch deep-copies a batch — vectors included — into a pooled
// arena and returns the owning copy. It is the boundary copy of
// by-reference transports: the simulated network delivers payloads
// without serializing them, so it clones at Send and the receiver
// Releases after unpacking, exactly like a decoded wire batch.
func CloneBatch(src TokenBatch) TokenBatch {
	buf := GetBatchBuf()
	for _, t := range src.Tokens {
		buf.Add(t.Item, t.Vec)
	}
	return buf.HandOff(src.QueueLen)
}
