package cluster

import (
	"testing"
	"time"

	"nomad/internal/netsim"
)

func TestParseChaos(t *testing.T) {
	spec, err := ParseChaos("kill:rank=2,at=mid-epoch")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Op != OpKill || spec.Rank != 2 || spec.At != PointMidEpoch {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.After != 5 {
		t.Fatalf("mid-epoch default After = %d, want 5", spec.After)
	}
	spec, err = ParseChaos("drop:rank=1,at=snapshot,p=0.25,seed=9,after=3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Op != OpDrop || spec.P != 0.25 || spec.Seed != 9 || spec.After != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	spec, err = ParseChaos("partition:rank=0,at=barrier,window=120ms")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Op != OpPartition || spec.At != PointBarrier || spec.Window != 120*time.Millisecond {
		t.Fatalf("spec = %+v", spec)
	}
	if spec, err := ParseChaos(""); spec != nil || err != nil {
		t.Fatalf("empty spec = %+v, %v", spec, err)
	}
	for _, bad := range []string{
		"explode:rank=1,at=barrier", // unknown op
		"kill",                      // no pairs
		"kill:rank=1",               // missing at
		"kill:at=barrier",           // missing rank
		"kill:rank=1,at=nowhere",    // unknown point
		"kill:rank=1,at=barrier,after=x",
		"kill:rank=1,at=barrier,bogus=1",
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

// TestChaosKillDeterministic: the kill fires on exactly the After-th
// victim send, exactly once, on every run with the same spec.
func TestChaosKillDeterministic(t *testing.T) {
	for run := 0; run < 3; run++ {
		spec, err := ParseChaos("kill:rank=1,at=mid-epoch,after=3")
		if err != nil {
			t.Fatal(err)
		}
		c := NewSimCluster(2, netsim.Instant(), 2)
		ctrl := NewChaosController(spec)
		killedAt := -1
		var victim int
		ctrl.OnKill(func(v int) { victim = v })
		links := ctrl.WrapAll(c.Links())
		for s := 1; s <= 5; s++ {
			if err := links[1].Send(0, TokenBatch{}); err != nil {
				t.Fatal(err)
			}
			if ctrl.Fired() && killedAt < 0 {
				killedAt = s
			}
		}
		if killedAt != 3 {
			t.Fatalf("run %d: kill fired at send %d, want 3", run, killedAt)
		}
		if victim != 1 {
			t.Fatalf("run %d: kill function got victim %d, want 1", run, victim)
		}
		// Non-victim sends never count.
		if ctrl.sends.Load() != 3 {
			t.Fatalf("run %d: victim send count %d, want 3 (counting stops at fire)", run, ctrl.sends.Load())
		}
		c.Close()
	}
}

// TestChaosDelaySlowsVictimSends: after the trigger, every victim
// send stalls by the window; other ranks are untouched.
func TestChaosDelaySlowsVictimSends(t *testing.T) {
	spec, err := ParseChaos("delay:rank=0,at=mid-epoch,after=1,window=30ms")
	if err != nil {
		t.Fatal(err)
	}
	c := NewSimCluster(2, netsim.Instant(), 2)
	defer c.Close()
	ctrl := NewChaosController(spec)
	links := ctrl.WrapAll(c.Links())
	if err := links[0].Send(1, TokenBatch{}); err != nil { // fires the trigger
		t.Fatal(err)
	}
	start := time.Now()
	if err := links[0].Send(1, TokenBatch{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("victim send took %v, want ≥ ~30ms delay", d)
	}
	start = time.Now()
	if err := links[1].Send(0, TokenBatch{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("non-victim send took %v, should be unaffected", d)
	}
}

// TestChaosDropOnlySnapshots: OpDrop may only lose the lossy-tolerant
// replication plane — the registered snapshot kind — never other
// control frames.
func TestChaosDropOnlySnapshots(t *testing.T) {
	spec, err := ParseChaos("drop:rank=0,at=snapshot,p=1.0,after=1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewSimCluster(2, netsim.Instant(), 2)
	defer c.Close()
	ctrl := NewChaosController(spec)
	const snapKind = 40
	ctrl.SetSnapshotKind(snapKind)
	links := ctrl.WrapAll(c.Links())
	// First snapshot fires the trigger; with p=1 every later snapshot
	// is dropped, while a non-snapshot ctl frame sails through.
	for i := 0; i < 3; i++ {
		if err := links[0].SendCtl(1, snapKind, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := links[0].SendCtl(1, 7, []byte{2}); err != nil {
		t.Fatal(err)
	}
	ct := <-links[1].Ctl()
	if ct.Kind != 7 {
		t.Fatalf("survivor got kind %d first, want only the non-snapshot frame (7)", ct.Kind)
	}
	select {
	case ct := <-links[1].Ctl():
		// At most the pre-trigger snapshot may arrive; 40 after the
		// first means drops failed.
		if ct.Kind == snapKind {
			t.Fatal("a post-trigger snapshot frame leaked through OpDrop")
		}
	default:
	}
}
