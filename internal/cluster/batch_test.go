package cluster

import (
	"testing"

	"nomad/internal/netsim"
)

func TestBatchBufViews(t *testing.T) {
	b := NewBatchBuf()
	b.Add(3, []float64{1, 2})
	b.Add(9, []float64{3, 4})
	copy(b.AddVec(12, 2), []float64{5, 6})
	batch := b.Batch(42)
	if batch.QueueLen != 42 || len(batch.Tokens) != 3 {
		t.Fatalf("batch = %+v", batch)
	}
	want := []struct {
		item int32
		vec  []float64
	}{{3, []float64{1, 2}}, {9, []float64{3, 4}}, {12, []float64{5, 6}}}
	for i, w := range want {
		tok := batch.Tokens[i]
		if tok.Item != w.item || len(tok.Vec) != len(w.vec) {
			t.Fatalf("token %d = %+v, want item %d", i, tok, w.item)
		}
		for c := range w.vec {
			if tok.Vec[c] != w.vec[c] {
				t.Fatalf("token %d coord %d = %v, want %v", i, c, tok.Vec[c], w.vec[c])
			}
		}
	}
	// Reset and refill: same arena, new contents, no stale tokens.
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Add(7, []float64{8, 9})
	batch = b.Batch(1)
	if len(batch.Tokens) != 1 || batch.Tokens[0].Item != 7 || batch.Tokens[0].Vec[1] != 9 {
		t.Fatalf("refilled batch = %+v", batch)
	}
}

// TestBatchBufSteadyStateAllocFree pins the arena build path: after
// warm-up, accumulating and materializing a batch allocates nothing.
func TestBatchBufSteadyStateAllocFree(t *testing.T) {
	b := NewBatchBuf()
	vec := []float64{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		b.Add(int32(i), vec) // warm the arena to its working size
	}
	b.Batch(0)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for i := 0; i < 100; i++ {
			b.Add(int32(i), vec)
		}
		if got := b.Batch(7); len(got.Tokens) != 100 {
			t.Fatalf("batch has %d tokens", len(got.Tokens))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch build allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCloneBatchIsDeep(t *testing.T) {
	src := TokenBatch{QueueLen: 5, Tokens: []Token{{Item: 1, Vec: []float64{10, 20}}}}
	clone := CloneBatch(src)
	src.Tokens[0].Vec[0] = -1 // mutate the original after the boundary copy
	src.Tokens[0].Item = 99
	if clone.QueueLen != 5 || clone.Tokens[0].Item != 1 || clone.Tokens[0].Vec[0] != 10 {
		t.Fatalf("clone shares storage with its source: %+v", clone)
	}
	clone.Release()
	if clone.Tokens != nil {
		t.Fatal("Release must invalidate the clone's views")
	}
	// Double Release on the same value is a no-op, not a double-free.
	clone.Release()
}

// TestSenderCopiesOnAdd pins the new ownership rule: the caller may
// reuse a token's vector as soon as Add returns, because the sender
// copied it into its per-destination arena. The rule deliberately
// does not hold on the legacy pending-slice path, so the arena side
// is pinned explicitly (the CI reference-wire pass sets the switch
// for the whole package).
func TestSenderCopiesOnAdd(t *testing.T) {
	prev := ReferenceWire()
	SetReferenceWire(false)
	defer SetReferenceWire(prev)
	c := NewSimCluster(2, netsim.Instant(), 2)
	s := NewSender(c.Links()[0], 10, nil)
	vec := []float64{1, 2}
	s.Add(1, Token{Item: 4, Vec: vec})
	vec[0], vec[1] = -7, -8 // recycled by the caller
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	batches := drainBatches(t, c)
	if len(batches) != 1 || len(batches[0].Tokens) != 1 {
		t.Fatalf("batches = %+v", batches)
	}
	got := batches[0].Tokens[0]
	if got.Item != 4 || got.Vec[0] != 1 || got.Vec[1] != 2 {
		t.Fatalf("delivered token %+v, want the pre-mutation values {4 [1 2]}", got)
	}
}

// TestSimLinkSendClonesBatch pins the boundary rule on the simulated
// network, which delivers payloads by reference: the caller's batch
// (a sender arena, a lockstep outbox) must be reusable the moment
// Send returns.
func TestSimLinkSendClonesBatch(t *testing.T) {
	c := NewSimCluster(2, netsim.Instant(), 1)
	links := c.Links()
	vec := []float64{3}
	if err := links[0].Send(1, TokenBatch{Tokens: []Token{{Item: 2, Vec: vec}}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	vec[0] = -1 // reuse the backing array immediately
	batches := drainBatches(t, c)
	if len(batches) != 1 || batches[0].Tokens[0].Vec[0] != 3 {
		t.Fatalf("delivered batch saw the caller's reuse: %+v", batches)
	}
}

// TestSenderReferenceWire drives the legacy pending-slice path that
// NOMAD_REFERENCE_WIRE selects, keeping the benchmark baseline alive.
func TestSenderReferenceWire(t *testing.T) {
	prev := ReferenceWire()
	SetReferenceWire(true)
	defer SetReferenceWire(prev)
	c := NewSimCluster(2, netsim.Instant(), 2)
	s := NewSender(c.Links()[0], 2, func() int { return 3 })
	for i := 0; i < 5; i++ {
		s.Add(1, Token{Item: int32(i), Vec: make([]float64, 2)})
	}
	if s.PendingTotal() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingTotal())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	links := c.Links()
	links[1].CloseSend() //nolint:errcheck
	next := int32(0)
	for inb := range links[1].Recv() {
		if inb.Batch.QueueLen != 3 {
			t.Fatalf("gossip = %d, want 3", inb.Batch.QueueLen)
		}
		for _, tok := range inb.Batch.Tokens {
			if tok.Item != next {
				t.Fatalf("token order broken: got %d want %d", tok.Item, next)
			}
			next++
		}
	}
	if next != 5 {
		t.Fatalf("delivered %d tokens, want 5", next)
	}
}
