package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/netsim"
)

// drainBatches closes the receiving side of a two-link sim cluster and
// collects everything machine 1 received. Both endpoints' send sides
// are closed first so the simulated network drains and shuts down.
func drainBatches(t *testing.T, c *SimCluster) []TokenBatch {
	t.Helper()
	links := c.Links()
	links[0].CloseSend() //nolint:errcheck
	links[1].CloseSend() //nolint:errcheck
	var batches []TokenBatch
	for inb := range links[1].Recv() {
		batches = append(batches, inb.Batch)
	}
	return batches
}

func TestSenderBatches(t *testing.T) {
	c := NewSimCluster(2, netsim.Instant(), 4)
	s := NewSender(c.Links()[0], 3, func() int { return 7 })
	for i := 0; i < 7; i++ {
		s.Add(1, Token{Item: int32(i), Vec: make([]float64, 4)})
	}
	// 7 tokens with batch size 3: two automatic flushes, one pending.
	if s.PendingTotal() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingTotal())
	}
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if s.PendingTotal() != 0 {
		t.Fatalf("pending after FlushAll = %d", s.PendingTotal())
	}
	batches := drainBatches(t, c)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if len(batches[0].Tokens) != 3 || len(batches[1].Tokens) != 3 || len(batches[2].Tokens) != 1 {
		t.Fatalf("batch sizes: %d,%d,%d", len(batches[0].Tokens), len(batches[1].Tokens), len(batches[2].Tokens))
	}
	// Token order must be preserved end to end.
	next := int32(0)
	for _, b := range batches {
		if b.QueueLen != 7 {
			t.Fatalf("gossip payload = %d, want 7", b.QueueLen)
		}
		for _, tok := range b.Tokens {
			if tok.Item != next {
				t.Fatalf("token order broken: got %d want %d", tok.Item, next)
			}
			next++
		}
	}
}

func TestSenderFlushEmptyIsNoop(t *testing.T) {
	c := NewSimCluster(2, netsim.Instant(), 4)
	s := NewSender(c.Links()[0], 3, nil)
	if err := s.Flush(1); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if st := c.Links()[0].Stats(); st.MessagesSent != 0 {
		t.Fatal("empty flush sent messages")
	}
	c.Close()
}

func TestSenderWireSizeModelled(t *testing.T) {
	k := 10
	c := NewSimCluster(2, netsim.Instant(), k)
	link := c.Links()[0]
	s := NewSender(link, 100, nil)
	s.Add(1, Token{Item: 1, Vec: make([]float64, k)})
	s.Add(1, Token{Item: 2, Vec: make([]float64, k)})
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	want := int64(8 + 2*netsim.VectorWireSize(k))
	if st := link.Stats(); st.BytesSent != want {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, want)
	}
	c.Close()
}

// TestSenderFlushAfterCloseIsSafe is the regression test for the
// teardown ordering hazard: a sender flushing after the underlying
// link has already closed (a barrier participant exited first) must be
// an idempotent no-op, not a panic through the transport.
func TestSenderFlushAfterCloseIsSafe(t *testing.T) {
	c := NewSimCluster(2, netsim.Instant(), 2)
	link := c.Links()[0]
	s := NewSender(link, 10, nil)
	s.Add(1, Token{Item: 1, Vec: make([]float64, 2)})
	link.CloseSend() //nolint:errcheck // close under the sender's feet
	if err := s.FlushAll(); err != nil {
		t.Fatalf("FlushAll after close returned %v, want nil (inert)", err)
	}
	// Repeated calls stay no-ops.
	if err := s.FlushAll(); err != nil {
		t.Fatalf("second FlushAll: %v", err)
	}
	if err := s.Flush(1); err != nil {
		t.Fatalf("Flush after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after close: %v", err)
	}
	c.Close()
}

func TestSimLinkSendAfterCloseSendFails(t *testing.T) {
	c := NewSimCluster(2, netsim.Instant(), 1)
	link := c.Links()[0]
	link.CloseSend() //nolint:errcheck
	if err := link.Send(1, TokenBatch{}); err != ErrLinkClosed {
		t.Fatalf("Send after CloseSend = %v, want ErrLinkClosed", err)
	}
	if err := link.CloseSend(); err != nil {
		t.Fatalf("second CloseSend: %v", err)
	}
	c.Close()
}

func TestSimLinkCtlRoundTrip(t *testing.T) {
	c := NewSimCluster(3, netsim.Instant(), 1)
	links := c.Links()
	if err := links[0].SendCtl(2, 7, []byte("payload")); err != nil {
		t.Fatalf("SendCtl: %v", err)
	}
	if err := links[1].SendCtl(-1, 9, nil); err != nil {
		t.Fatalf("broadcast SendCtl: %v", err)
	}
	got := map[uint8]int{}
	for i := 0; i < 2; i++ {
		ct := <-links[2].Ctl()
		got[ct.Kind] = ct.From
		if ct.Kind == 7 && string(ct.Payload) != "payload" {
			t.Fatalf("payload = %q", ct.Payload)
		}
	}
	if got[7] != 0 || got[9] != 1 {
		t.Fatalf("ctl senders = %v", got)
	}
	c.Close()
}

func TestSimLinkBarrier(t *testing.T) {
	const n = 3
	c := NewSimCluster(n, netsim.Instant(), 1)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for _, l := range c.Links() {
		wg.Add(1)
		go func(l Link) {
			defer wg.Done()
			before.Add(1)
			if err := l.Barrier(); err != nil {
				t.Errorf("Barrier: %v", err)
			}
			if got := before.Load(); got != n {
				t.Errorf("released with only %d arrivals", got)
			}
			after.Add(1)
		}(l)
	}
	wg.Wait()
	if after.Load() != n {
		t.Fatalf("only %d released", after.Load())
	}
	c.Close()
}

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 4
	b := NewBarrier(n)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Wait()
			// At release, every participant must have arrived.
			if got := before.Load(); got != n {
				t.Errorf("released with only %d arrivals", got)
			}
			after.Add(1)
		}()
	}
	wg.Wait()
	if after.Load() != n {
		t.Fatalf("only %d participants released", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 3, 50
	b := NewBarrier(n)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.Wait()
				// All goroutines must observe the same round.
				phase.Add(1)
				b.Wait()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier deadlocked on reuse")
	}
	if phase.Load() != n*rounds {
		t.Fatalf("phase = %d, want %d", phase.Load(), n*rounds)
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestBlockRoundTrip(t *testing.T) {
	net := netsim.New(2, netsim.Instant())
	k := 3
	src := []float64{
		0, 0, 0,
		1, 2, 3,
		4, 5, 6,
		0, 0, 0,
	}
	SendBlock(net, 0, 1, src, k, 1, 3, 42)
	msg := <-net.Recv(1)
	blk := msg.Payload.(BlockMsg)
	if blk.Lo != 1 || blk.Hi != 3 || blk.Tag != 42 {
		t.Fatalf("block header: %+v", blk)
	}
	dst := make([]float64, len(src))
	ApplyBlock(dst, k, blk)
	for i := 3; i < 9; i++ {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
	if msg.Size != netsim.BlockWireSize(2, k) {
		t.Fatalf("modelled size %d, want %d", msg.Size, netsim.BlockWireSize(2, k))
	}
	net.Shutdown()
}

func TestSendBlockCopies(t *testing.T) {
	// Mutating the source after SendBlock must not affect the message:
	// the block is a snapshot, as a real network send would be.
	net := netsim.New(2, netsim.Instant())
	src := []float64{1, 2}
	SendBlock(net, 0, 1, src, 1, 0, 2, 0)
	src[0] = 99
	msg := <-net.Recv(1)
	if msg.Payload.(BlockMsg).Data[0] != 1 {
		t.Fatal("SendBlock aliased caller memory")
	}
	net.Shutdown()
}
