package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomad/internal/netsim"
)

func TestSenderBatches(t *testing.T) {
	net := netsim.New(2, netsim.Instant())
	s := NewSender(net, 0, 4, 3, func() int { return 7 })
	for i := 0; i < 7; i++ {
		s.Add(1, Token{Item: int32(i)})
	}
	// 7 tokens with batch size 3: two automatic flushes, one pending.
	if s.PendingTotal() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingTotal())
	}
	s.FlushAll()
	if s.PendingTotal() != 0 {
		t.Fatalf("pending after FlushAll = %d", s.PendingTotal())
	}
	var batches []TokenBatch
	go net.Shutdown()
	for msg := range net.Recv(1) {
		batches = append(batches, msg.Payload.(TokenBatch))
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if len(batches[0].Tokens) != 3 || len(batches[1].Tokens) != 3 || len(batches[2].Tokens) != 1 {
		t.Fatalf("batch sizes: %d,%d,%d", len(batches[0].Tokens), len(batches[1].Tokens), len(batches[2].Tokens))
	}
	// Token order must be preserved end to end.
	next := int32(0)
	for _, b := range batches {
		if b.QueueLen != 7 {
			t.Fatalf("gossip payload = %d, want 7", b.QueueLen)
		}
		for _, tok := range b.Tokens {
			if tok.Item != next {
				t.Fatalf("token order broken: got %d want %d", tok.Item, next)
			}
			next++
		}
	}
}

func TestSenderFlushEmptyIsNoop(t *testing.T) {
	net := netsim.New(2, netsim.Instant())
	s := NewSender(net, 0, 4, 3, nil)
	s.Flush(1)
	s.FlushAll()
	if net.MessagesSent() != 0 {
		t.Fatal("empty flush sent messages")
	}
	net.Shutdown()
}

func TestSenderWireSizeModelled(t *testing.T) {
	net := netsim.New(2, netsim.Instant())
	k := 10
	s := NewSender(net, 0, k, 100, nil)
	s.Add(1, Token{Item: 1, Vec: make([]float64, k)})
	s.Add(1, Token{Item: 2, Vec: make([]float64, k)})
	s.FlushAll()
	<-net.Recv(1)
	want := int64(8 + 2*netsim.VectorWireSize(k))
	if net.BytesSent() != want {
		t.Fatalf("BytesSent = %d, want %d", net.BytesSent(), want)
	}
	net.Shutdown()
}

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 4
	b := NewBarrier(n)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Wait()
			// At release, every participant must have arrived.
			if got := before.Load(); got != n {
				t.Errorf("released with only %d arrivals", got)
			}
			after.Add(1)
		}()
	}
	wg.Wait()
	if after.Load() != n {
		t.Fatalf("only %d participants released", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 3, 50
	b := NewBarrier(n)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.Wait()
				// All goroutines must observe the same round.
				phase.Add(1)
				b.Wait()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier deadlocked on reuse")
	}
	if phase.Load() != n*rounds {
		t.Fatalf("phase = %d, want %d", phase.Load(), n*rounds)
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestBlockRoundTrip(t *testing.T) {
	net := netsim.New(2, netsim.Instant())
	k := 3
	src := []float64{
		0, 0, 0,
		1, 2, 3,
		4, 5, 6,
		0, 0, 0,
	}
	SendBlock(net, 0, 1, src, k, 1, 3, 42)
	msg := <-net.Recv(1)
	blk := msg.Payload.(BlockMsg)
	if blk.Lo != 1 || blk.Hi != 3 || blk.Tag != 42 {
		t.Fatalf("block header: %+v", blk)
	}
	dst := make([]float64, len(src))
	ApplyBlock(dst, k, blk)
	for i := 3; i < 9; i++ {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
	if msg.Size != netsim.BlockWireSize(2, k) {
		t.Fatalf("modelled size %d, want %d", msg.Size, netsim.BlockWireSize(2, k))
	}
	net.Shutdown()
}

func TestSendBlockCopies(t *testing.T) {
	// Mutating the source after SendBlock must not affect the message:
	// the block is a snapshot, as a real network send would be.
	net := netsim.New(2, netsim.Instant())
	src := []float64{1, 2}
	SendBlock(net, 0, 1, src, 1, 0, 2, 0)
	src[0] = 99
	msg := <-net.Recv(1)
	if msg.Payload.(BlockMsg).Data[0] != 1 {
		t.Fatal("SendBlock aliased caller memory")
	}
	net.Shutdown()
}
