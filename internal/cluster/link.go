package cluster

// Link is the pluggable machine-to-machine transport behind NOMAD's
// distributed mode. The token runners (internal/core's sender and
// receiver threads) are written against this interface only, so the
// same training code runs over the in-process simulated network
// (netsim, the historical backend) and over real TCP sockets
// (internal/netlink) — one process per machine, or a loopback mesh in
// a single process for tests and benchmarks.
//
// A Link is one machine's endpoint. Data plane: Send/Recv move
// TokenBatch frames (the §3.5 unit of transfer). Control plane:
// SendCtl/Ctl move small opaque frames used by the deterministic
// lockstep runner (round markers, directives, model-gather blocks) and
// by anything else that needs ordered sideband messages. Per-peer FIFO
// ordering holds within each plane and, for in-order backends (TCP,
// netsim's instant profile), across both planes of one peer.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nomad/internal/netsim"
)

// ErrLinkClosed is returned by Send/SendCtl after CloseSend or Close.
var ErrLinkClosed = errors.New("cluster: link closed")

// PeerDownError reports that a cluster peer stopped responding: its
// connection broke without an orderly end-of-stream, or its heartbeats
// timed out. Training runs surface it (wrapped) from Run/Train.
type PeerDownError struct {
	Rank  int
	Cause error
}

func (e *PeerDownError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("cluster: peer machine %d down: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("cluster: peer machine %d down", e.Rank)
}

// Unwrap exposes the transport-level cause.
func (e *PeerDownError) Unwrap() error { return e.Cause }

// Inbound is one delivered token batch.
type Inbound struct {
	From  int
	Batch TokenBatch
}

// Ctl is one delivered control frame.
type Ctl struct {
	From    int
	Kind    uint8
	Payload []byte
}

// LinkStats is cumulative transport accounting for one endpoint's
// sends (modelled bytes for netsim, wire bytes for TCP).
type LinkStats struct {
	BytesSent    int64
	MessagesSent int64
}

// Link is one machine's connection to the rest of the cluster.
type Link interface {
	// Rank is this machine's id in [0, Machines).
	Rank() int
	// Machines is the cluster size.
	Machines() int

	// Send transmits a token batch to peer dst. It may block on
	// backpressure and returns ErrLinkClosed after CloseSend/Close, or
	// a *PeerDownError once the link has failed.
	//
	// Ownership: the batch and its token vectors remain the caller's;
	// implementations copy or encode them before returning, so the
	// caller may reuse the backing arrays (a Sender's per-destination
	// arena, a lockstep outbox) as soon as Send returns.
	Send(dst int, batch TokenBatch) error
	// Recv returns the inbound token-batch channel. It is closed once
	// every peer has ended its stream (CloseSend) and all in-flight
	// batches have been delivered — or when the link fails, in which
	// case Err reports why.
	//
	// Ownership: each delivered batch may be arena-backed; the
	// consumer copies out the vectors it keeps and calls
	// TokenBatch.Release to recycle the arena.
	Recv() <-chan Inbound

	// SendCtl transmits a small control frame to peer dst (dst == -1
	// broadcasts to every peer). Kind is caller-defined.
	SendCtl(dst int, kind uint8, payload []byte) error
	// Ctl returns the inbound control-frame channel, closed together
	// with Recv.
	Ctl() <-chan Ctl

	// Barrier blocks until every machine in the cluster has reached it.
	Barrier() error

	// CloseSend flushes and ends this machine's outbound stream: peers'
	// Recv channels close once all machines have done so. Idempotent.
	CloseSend() error
	// Close releases the endpoint. Idempotent; implies CloseSend.
	Close() error

	// Err reports why the link failed (e.g. a *PeerDownError), or nil
	// after an orderly shutdown.
	Err() error

	// Stats returns cumulative send-side accounting.
	Stats() LinkStats
}

// ctlMsg is the netsim payload wrapper for control frames.
type ctlMsg struct {
	kind    uint8
	payload []byte
}

// SimCluster adapts a netsim.Network to the Link interface: one
// in-process SimLink per simulated machine, sharing the modelled
// latency/bandwidth couriers of netsim unchanged. The network shuts
// down — waiting for in-flight deliveries, then closing every
// endpoint's channels — once all machines have called CloseSend,
// which preserves the historical teardown guarantee that no token in
// flight is lost.
type SimCluster struct {
	net     *netsim.Network
	k       int
	links   []*SimLink
	barrier *Barrier

	closed atomic.Int32 // CloseSend count; == machines triggers Shutdown
}

// NewSimCluster builds a simulated cluster of the given size over the
// network profile. k is the factor rank, used to model token wire
// sizes the way the historical netsim path did.
func NewSimCluster(machines int, p netsim.Profile, k int) *SimCluster {
	c := &SimCluster{
		net:     netsim.New(machines, p),
		k:       k,
		links:   make([]*SimLink, machines),
		barrier: NewBarrier(machines),
	}
	for i := 0; i < machines; i++ {
		l := &SimLink{
			cluster: c,
			rank:    i,
			recv:    make(chan Inbound, 256),
			ctl:     make(chan Ctl, 256),
		}
		c.links[i] = l
		go l.translate()
	}
	return c
}

// Links returns the cluster's endpoints, indexed by rank.
func (c *SimCluster) Links() []Link {
	out := make([]Link, len(c.links))
	for i, l := range c.links {
		out[i] = l
	}
	return out
}

// closeSend records one endpoint's CloseSend; the last one shuts the
// network down, which drains in-flight messages and closes inboxes.
func (c *SimCluster) closeSend() {
	if int(c.closed.Add(1)) == len(c.links) {
		c.net.Shutdown()
	}
}

// Close shuts the whole simulated cluster down regardless of endpoint
// state. Intended for error paths; orderly teardown goes through each
// link's CloseSend.
func (c *SimCluster) Close() {
	for _, l := range c.links {
		l.CloseSend() //nolint:errcheck // idempotent
	}
}

// SimLink is one machine's endpoint on a SimCluster.
type SimLink struct {
	cluster *SimCluster
	rank    int

	mu        sync.RWMutex
	sendClose bool

	recv chan Inbound
	ctl  chan Ctl

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

var _ Link = (*SimLink)(nil)

// translate forwards the netsim inbox onto the typed channels until
// the network shuts down.
func (l *SimLink) translate() {
	for msg := range l.cluster.net.Recv(l.rank) {
		switch p := msg.Payload.(type) {
		case TokenBatch:
			l.recv <- Inbound{From: msg.From, Batch: p}
		case ctlMsg:
			l.ctl <- Ctl{From: msg.From, Kind: p.kind, Payload: p.payload}
		}
	}
	close(l.recv)
	close(l.ctl)
}

// Rank implements Link.
func (l *SimLink) Rank() int { return l.rank }

// Machines implements Link.
func (l *SimLink) Machines() int { return l.cluster.net.Machines() }

// Send implements Link, modelling the batch's wire size exactly as the
// historical netsim path: an 8-byte batch header plus one token wire
// size per token. The simulated network delivers payloads by
// reference, so the boundary copy the wire contract promises is a
// deep clone into a pooled arena — the receiver unpacks it and
// Releases, just like a decoded TCP batch.
func (l *SimLink) Send(dst int, batch TokenBatch) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.sendClose {
		return ErrLinkClosed
	}
	size := 8
	for range batch.Tokens {
		size += netsim.VectorWireSize(l.cluster.k)
	}
	l.cluster.net.Send(l.rank, dst, size, CloneBatch(batch))
	l.bytesSent.Add(int64(size))
	l.msgsSent.Add(1)
	return nil
}

// Recv implements Link.
func (l *SimLink) Recv() <-chan Inbound { return l.recv }

// SendCtl implements Link.
func (l *SimLink) SendCtl(dst int, kind uint8, payload []byte) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.sendClose {
		return ErrLinkClosed
	}
	size := 16 + len(payload)
	if dst == -1 {
		for r := 0; r < l.Machines(); r++ {
			if r == l.rank {
				continue
			}
			l.cluster.net.Send(l.rank, r, size, ctlMsg{kind: kind, payload: payload})
			l.bytesSent.Add(int64(size))
			l.msgsSent.Add(1)
		}
		return nil
	}
	l.cluster.net.Send(l.rank, dst, size, ctlMsg{kind: kind, payload: payload})
	l.bytesSent.Add(int64(size))
	l.msgsSent.Add(1)
	return nil
}

// Ctl implements Link.
func (l *SimLink) Ctl() <-chan Ctl { return l.ctl }

// Barrier implements Link over the cluster-wide reusable barrier.
func (l *SimLink) Barrier() error {
	l.cluster.barrier.Wait()
	return nil
}

// CloseSend implements Link. The send side closes immediately; the
// network-wide shutdown (and hence Recv closure on every endpoint)
// happens once all machines have closed their send sides, so no
// in-flight message is ever dropped.
func (l *SimLink) CloseSend() error {
	l.mu.Lock()
	if l.sendClose {
		l.mu.Unlock()
		return nil
	}
	l.sendClose = true
	l.mu.Unlock()
	l.cluster.closeSend()
	return nil
}

// Close implements Link.
func (l *SimLink) Close() error { return l.CloseSend() }

// Err implements Link; the simulated network does not fail.
func (l *SimLink) Err() error { return nil }

// Stats implements Link.
func (l *SimLink) Stats() LinkStats {
	return LinkStats{BytesSent: l.bytesSent.Load(), MessagesSent: l.msgsSent.Load()}
}
