// Package cluster provides the machine-level plumbing shared by the
// distributed algorithms: nomadic token batching (§3.5: accumulate ~100
// (j, hⱼ) pairs per MPI message), the queue-length gossip payload that
// powers NOMAD's dynamic load balancing (§3.3), and a reusable barrier
// for the bulk-synchronous baselines (DSGD, DSGD++, CCD++).
package cluster

import (
	"errors"
	"sync"

	"nomad/internal/netsim"
)

// Token is one nomadic item parameter in flight: the item index and
// its current factor row hⱼ. In shared-memory mode Vec is nil and the
// row lives in the model; in distributed mode the vector travels.
type Token struct {
	Item int32
	Vec  []float64
}

// TokenBatch is the unit of network transfer between machines. QueueLen
// carries the sender's current total queue length — the single-integer
// payload of §3.3 that lets receivers route work away from busy peers.
//
// A batch may be arena-backed (see BatchBuf): every token's Vec is
// then a view into one flat float64 payload. Inbound batches
// delivered by a Link own their arena; the consumer copies the
// vectors it needs and calls Release to recycle it.
type TokenBatch struct {
	Tokens   []Token
	QueueLen int

	// buf is the owning arena of a handed-off batch, nil for loose or
	// view-only batches.
	buf *BatchBuf
}

// Release returns an owned batch's arena to the shared pool and
// invalidates the batch's token views. It is a no-op for batches that
// own no arena, so consumers may call it unconditionally — but at
// most once per delivered batch, on the delivered value itself.
//
//nomad:noalloc
func (b *TokenBatch) Release() {
	if b.buf == nil {
		return
	}
	buf := b.buf
	b.buf, b.Tokens = nil, nil
	buf.Release()
}

// Sender accumulates outbound tokens per destination machine and
// flushes them as TokenBatch messages of up to BatchSize tokens over a
// Link. It is intended to be driven by a single sender goroutine per
// machine and is not safe for concurrent use.
//
// Add copies the token's vector into a per-destination arena
// (BatchBuf), so the caller keeps ownership of the vector and may
// recycle it as soon as Add returns; each Flush materializes the
// arena as a view batch, sends it, and Resets the arena — zero
// steady-state allocation. Under NOMAD_REFERENCE_WIRE the legacy
// path is restored: Add retains the token (vector included) in a
// per-destination pending slice that is surrendered at flush.
type Sender struct {
	link      Link
	batchSize int
	queueLen  func() int // sampled at flush time for the gossip payload
	refwire   bool
	pending   [][]Token   // reference wire: per-destination retained tokens
	bufs      []*BatchBuf // arena path: per-destination reusable arenas
	dead      []bool      // failover: destinations evicted from routing
	closed    bool
	err       error // first non-closure Send failure, surfaced until Close
}

// NewSender returns a Sender over the given link. queueLen supplies
// the gossip payload; it may be nil, in which case 0 is sent. The
// wire A/B switch is consulted here, once per sender.
func NewSender(link Link, batchSize int, queueLen func() int) *Sender {
	if batchSize < 1 {
		batchSize = 1
	}
	if queueLen == nil {
		queueLen = func() int { return 0 }
	}
	s := &Sender{
		link:      link,
		batchSize: batchSize,
		queueLen:  queueLen,
		refwire:   ReferenceWire(),
	}
	if s.refwire {
		s.pending = make([][]Token, link.Machines())
	} else {
		s.bufs = make([]*BatchBuf, link.Machines())
		for i := range s.bufs {
			s.bufs[i] = NewBatchBuf()
		}
	}
	s.dead = make([]bool, link.Machines())
	return s
}

// MarkDead evicts dst from the sender's routing: tokens still pending
// for it are dropped (the failover protocol regenerates them from the
// ownership report — they hold no bit anywhere, so they are counted
// missing) and every later Add/Flush toward dst is a no-op. Prefer
// Redirect when the tokens should survive locally instead.
func (s *Sender) MarkDead(dst int) {
	if s.dead[dst] {
		return
	}
	s.dead[dst] = true
	if s.refwire {
		s.pending[dst] = nil
		return
	}
	s.bufs[dst].Reset()
}

// Redirect re-routes every token pending for the dead destination to
// live destinations chosen by pick, then marks dead dead. pick must
// never return dead (or another dead destination). The re-adds flush
// through the normal batching path.
func (s *Sender) Redirect(dead int, pick func() int) {
	if s.dead[dead] {
		return
	}
	if s.refwire {
		moved := s.pending[dead]
		s.pending[dead] = nil
		s.dead[dead] = true
		for _, t := range moved {
			s.Add(pick(), t)
		}
		return
	}
	// The arena's views stay valid while we re-add: Add copies into
	// the destination arenas, and dead's arena is only Reset after.
	batch := s.bufs[dead].Batch(0)
	s.dead[dead] = true
	for _, t := range batch.Tokens {
		s.Add(pick(), t)
	}
	s.bufs[dead].Reset()
}

// Add enqueues a token for dst, flushing automatically when the batch
// for that destination is full. The token's vector is copied; the
// caller may reuse it as soon as Add returns (except under the
// reference wire path, which retains it until flush).
//
//nomad:noalloc
func (s *Sender) Add(dst int, t Token) {
	if s.dead[dst] {
		return // evicted destination: counted missing, regenerated by failover
	}
	if s.refwire {
		s.pending[dst] = append(s.pending[dst], t)
		if len(s.pending[dst]) >= s.batchSize {
			s.Flush(dst) //nolint:errcheck // surfaced by the next FlushAll/Close
		}
		return
	}
	s.bufs[dst].Add(t.Item, t.Vec) //nomad:alloc-ok arena warm-up growth, amortized away on reuse
	if s.bufs[dst].Len() >= s.batchSize {
		s.Flush(dst) //nolint:errcheck // surfaced by the next FlushAll/Close
	}
}

// Flush sends any pending tokens for dst immediately. Once the
// underlying link reports closure the sender goes inert: the batch is
// dropped (a closed cluster can never deliver it) and every later
// Flush/FlushAll is a no-op instead of a panic through the transport —
// the teardown ordering hazard where a barrier participant has already
// exited and closed the link under a straggling sender.
func (s *Sender) Flush(dst int) error {
	if s.closed {
		return s.err
	}
	if s.dead[dst] {
		return s.err
	}
	var batch TokenBatch
	if s.refwire {
		if len(s.pending[dst]) == 0 {
			return s.err
		}
		batch = TokenBatch{Tokens: s.pending[dst], QueueLen: s.queueLen()}
	} else {
		if s.bufs[dst].Len() == 0 {
			return s.err
		}
		batch = s.bufs[dst].Batch(s.queueLen())
	}
	if err := s.link.Send(dst, batch); err != nil {
		if errors.Is(err, ErrLinkClosed) {
			s.closed = true
			return nil // orderly teardown already ended the stream
		}
		var pd *PeerDownError
		if errors.As(err, &pd) && s.link.Err() == nil {
			// Failover: one peer died but the link as a whole is still
			// up. Evict the destination and drop the undeliverable
			// batch — its tokens hold no ownership bit anywhere, so
			// the reconfiguration protocol counts them missing and
			// regenerates them on the dead machine's buddy.
			s.MarkDead(dst)
			return nil
		}
		s.closed = true
		// Real failures (a downed peer outside failover mode, an
		// encode rejection) stick: every later Flush/FlushAll/Close
		// keeps reporting them, so a caller that only checks the final
		// Close still sees the root cause instead of a bare
		// conservation violation.
		s.err = err
		return err
	}
	if s.refwire {
		s.pending[dst] = nil // surrendered: the link delivers by reference
	} else {
		s.bufs[dst].Reset() // Send copied or encoded; the arena is ours again
	}
	return nil
}

// FlushAll sends every pending batch. It is idempotent and safe to
// call after the underlying link has been closed (the first closure
// marks the sender inert); a real transport failure keeps being
// reported.
func (s *Sender) FlushAll() error {
	if s.closed {
		return s.err
	}
	for dst := 0; dst < s.link.Machines(); dst++ {
		if err := s.Flush(dst); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes everything still pending and ends the machine's
// outbound stream. Idempotent.
func (s *Sender) Close() error {
	err := s.FlushAll()
	s.closed = true
	if cerr := s.link.CloseSend(); err == nil {
		err = cerr
	}
	return err
}

// PendingTotal reports how many tokens are buffered and unsent.
func (s *Sender) PendingTotal() int {
	n := 0
	if s.refwire {
		for _, p := range s.pending {
			n += len(p)
		}
		return n
	}
	for _, b := range s.bufs {
		n += b.Len()
	}
	return n
}

// Barrier is a reusable synchronization barrier for a fixed number of
// participants, used by the bulk-synchronous baselines to model their
// per-iteration synchronization points (the "curse of the last
// reducer" the paper discusses in §4.1 arises exactly here).
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cluster: barrier needs at least one participant")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait, then releases
// them together. The barrier resets automatically for reuse.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// BlockMsg carries a contiguous block of factor rows between machines,
// as exchanged by DSGD's sub-epoch shuffles and CCD++'s rank
// broadcasts. Rows are identified by the half-open index range
// [Lo, Hi) into the item (or user) dimension.
type BlockMsg struct {
	Lo, Hi int
	Data   []float64 // (Hi-Lo)×k row-major copy
	Tag    int       // protocol-specific (e.g. sub-epoch number or rank index)
}

// SendBlock copies rows [lo, hi) of the given flat row-major factor
// array and sends them from machine src to machine dst with the
// modelled wire size of the block.
func SendBlock(net *netsim.Network, src, dst int, flat []float64, k, lo, hi, tag int) {
	data := make([]float64, (hi-lo)*k)
	copy(data, flat[lo*k:hi*k])
	net.Send(src, dst, netsim.BlockWireSize(hi-lo, k), BlockMsg{Lo: lo, Hi: hi, Data: data, Tag: tag})
}

// ApplyBlock copies a received block into the flat factor array.
func ApplyBlock(flat []float64, k int, b BlockMsg) {
	copy(flat[b.Lo*k:b.Hi*k], b.Data)
}
