package cluster

// Chaos injection: a deterministic, seeded fault harness that wraps
// cluster links and perturbs machines at named protocol points — the
// failure half of the failover test matrix. The harness is driven by a
// ChaosSpec (parsed from the `-chaos=...` flag syntax) and a
// ChaosController shared by every endpoint of the run: the controller
// counts protocol events (data sends, replication snapshots, barrier
// entries, wall-clock delays) and fires each configured fault exactly
// once when its trigger point is reached.
//
// A spec is a *schedule*: one or more events separated by `;`, fired
// strictly in order. Each event waits for its own trigger, which for
// the relative form (`@+duration`) is measured from the moment the
// previous event fired (or from arming, for the first event):
//
//	kill:rank=2,at=mid-epoch              one fault, longhand
//	kill@mid-epoch;join@+2s;drain@+1s     a schedule, shorthand
//
// Faults:
//
//   - kill: the victim machine dies — the registered kill function
//     (installed by the training runner) stops its goroutines and
//     severs its connections, exactly like a crashed process.
//   - partition: the victim's outbound traffic (tokens and control
//     frames alike) stalls for a window, then heals. Heartbeats ride
//     the same connections, so a long window is indistinguishable
//     from a death and triggers failover; a short one only delays.
//   - delay: every victim send after the trigger is slowed by the
//     configured window — a persistent straggler link.
//   - drop: replication snapshot frames from the victim are dropped
//     with probability P (seeded, deterministic). Only the lossy-
//     tolerant replication plane may be dropped: dropping token
//     frames would silently break conservation rather than test it.
//   - join: a provisioned spare machine is activated mid-run (the
//     registered join function runs the elastic scale-out protocol).
//   - drain: a machine leaves gracefully mid-run (the registered
//     drain function runs the elastic scale-in protocol).
//
// A rank of -1 (shorthand events default to it) means "auto": the
// runner's registered callback resolves the subject deterministically
// from the live membership at fire time.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/rng"
)

// ChaosOp is the fault to inject.
type ChaosOp uint8

const (
	// OpKill stops the victim machine mid-run.
	OpKill ChaosOp = iota + 1
	// OpPartition stalls the victim's outbound traffic for Window.
	OpPartition
	// OpDelay slows every victim send by Window after the trigger.
	OpDelay
	// OpDrop drops victim replication snapshots with probability P.
	OpDrop
	// OpJoin activates a provisioned spare machine mid-run.
	OpJoin
	// OpDrain gracefully removes a machine mid-run.
	OpDrain
)

func (o ChaosOp) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpPartition:
		return "partition"
	case OpDelay:
		return "delay"
	case OpDrop:
		return "drop"
	case OpJoin:
		return "join"
	case OpDrain:
		return "drain"
	}
	return fmt.Sprintf("ChaosOp(%d)", uint8(o))
}

// ChaosPoint names the protocol point the fault triggers at.
type ChaosPoint uint8

const (
	// PointRendezvous triggers as soon as the cluster is armed, before
	// any token circulates — the victim dies on the starting line.
	PointRendezvous ChaosPoint = iota + 1
	// PointMidEpoch triggers on the victim's After-th outbound token
	// batch, i.e. in the middle of asynchronous circulation.
	PointMidEpoch
	// PointBarrier triggers on the victim's After-th Barrier entry.
	PointBarrier
	// PointSnapshot triggers on the victim's After-th replication
	// snapshot send (the control kind registered by the runner).
	PointSnapshot
	// PointAfter triggers Delay after the previous event fired (or
	// after arming, for a schedule's first event) — the `@+duration`
	// shorthand.
	PointAfter
)

func (p ChaosPoint) String() string {
	switch p {
	case PointRendezvous:
		return "rendezvous"
	case PointMidEpoch:
		return "mid-epoch"
	case PointBarrier:
		return "barrier"
	case PointSnapshot:
		return "snapshot"
	case PointAfter:
		return "after-delay"
	}
	return fmt.Sprintf("ChaosPoint(%d)", uint8(p))
}

// ChaosSpec describes one injected fault, optionally chained to the
// next event of a schedule.
type ChaosSpec struct {
	Op   ChaosOp
	Rank int        // subject machine; -1 = resolved by the runner at fire time
	At   ChaosPoint // trigger point
	// After is how many occurrences of the trigger point happen before
	// the fault fires (default 1; mid-epoch defaults to 5 so some
	// circulation happens first).
	After int
	// P is the drop probability for OpDrop (default 0.5).
	P float64
	// Window is the stall duration for OpPartition / per-send delay
	// for OpDelay (default 50ms).
	Window time.Duration
	// Seed drives the deterministic drop decisions (default 1).
	Seed uint64
	// Delay is the PointAfter trigger offset, measured from the
	// previous event's firing (or from arming for the first event).
	Delay time.Duration
	// Next is the schedule's following event, nil at the end.
	Next *ChaosSpec
}

func (s *ChaosSpec) String() string {
	one := fmt.Sprintf("%s:rank=%d,at=%s,after=%d", s.Op, s.Rank, s.At, s.After)
	if s.Next != nil {
		return one + ";" + s.Next.String()
	}
	return one
}

// Events flattens the schedule chain into a slice, head first.
func (s *ChaosSpec) Events() []*ChaosSpec {
	var out []*ChaosSpec
	for ev := s; ev != nil; ev = ev.Next {
		out = append(out, ev)
	}
	return out
}

// normalize fills spec defaults in place (the whole chain).
func (s *ChaosSpec) normalize() {
	for ev := s; ev != nil; ev = ev.Next {
		if ev.After <= 0 {
			if ev.At == PointMidEpoch {
				ev.After = 5
			} else {
				ev.After = 1
			}
		}
		if ev.P <= 0 || ev.P > 1 {
			ev.P = 0.5
		}
		if ev.Window <= 0 {
			ev.Window = 50 * time.Millisecond
		}
		if ev.Seed == 0 {
			ev.Seed = 1
		}
		if ev.At == PointAfter && ev.Delay <= 0 {
			ev.Delay = time.Second
		}
	}
}

// ParseChaos parses the -chaos flag syntax: one or more events
// separated by `;`, fired in order. Each event is either longhand
//
//	op:key=value,key=value,...
//
// e.g. "kill:rank=2,at=mid-epoch", "drop:rank=1,at=snapshot,p=0.5",
// "partition:rank=2,at=mid-epoch,window=100ms" — keys: rank (subject
// machine; required for kill/partition/delay/drop, -1 = auto for
// join/drain), at (trigger point, required unless delay is given),
// after (trigger occurrence count), p (drop probability), window
// (duration), delay (fires this long after the previous event; sets
// at=after-delay), seed — or shorthand
//
//	op@point        e.g. kill@mid-epoch   (rank auto-resolved)
//	op@+duration    e.g. join@+2s         (relative-time trigger)
func ParseChaos(s string) (*ChaosSpec, error) {
	if s == "" {
		return nil, nil
	}
	var head, tail *ChaosSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("cluster: chaos schedule %q: empty event", s)
		}
		ev, err := parseChaosEvent(part)
		if err != nil {
			return nil, err
		}
		if head == nil {
			head = ev
		} else {
			tail.Next = ev
		}
		tail = ev
	}
	head.normalize()
	return head, nil
}

func chaosOpByName(name string) (ChaosOp, error) {
	switch name {
	case "kill":
		return OpKill, nil
	case "partition":
		return OpPartition, nil
	case "delay":
		return OpDelay, nil
	case "drop":
		return OpDrop, nil
	case "join":
		return OpJoin, nil
	case "drain":
		return OpDrain, nil
	}
	return 0, fmt.Errorf("cluster: unknown chaos op %q (kill, partition, delay, drop, join, drain)", name)
}

func chaosPointByName(name string) (ChaosPoint, bool) {
	switch name {
	case "rendezvous":
		return PointRendezvous, true
	case "mid-epoch":
		return PointMidEpoch, true
	case "barrier":
		return PointBarrier, true
	case "snapshot":
		return PointSnapshot, true
	}
	return 0, false
}

// parseChaosEvent parses one event of a schedule: the `op@point` /
// `op@+dur` shorthand or the longhand `op:key=value,...` form.
func parseChaosEvent(s string) (*ChaosSpec, error) {
	if opName, at, found := strings.Cut(s, "@"); found {
		op, err := chaosOpByName(opName)
		if err != nil {
			return nil, err
		}
		spec := &ChaosSpec{Op: op, Rank: -1}
		if strings.HasPrefix(at, "+") {
			d, err := time.ParseDuration(at[1:])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("cluster: chaos event %q: bad delay %q", s, at)
			}
			spec.At, spec.Delay = PointAfter, d
			return spec, nil
		}
		pt, ok := chaosPointByName(at)
		if !ok {
			return nil, fmt.Errorf("cluster: chaos event %q: unknown point %q (rendezvous, mid-epoch, barrier, snapshot, +duration)", s, at)
		}
		spec.At = pt
		return spec, nil
	}

	opName, rest, found := strings.Cut(s, ":")
	if !found {
		return nil, fmt.Errorf("cluster: chaos spec %q: want op:key=value,... or op@point", s)
	}
	op, err := chaosOpByName(opName)
	if err != nil {
		return nil, err
	}
	spec := &ChaosSpec{Op: op, Rank: -1}
	rankSet := false
	for _, kv := range strings.Split(rest, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("cluster: chaos spec %q: bad pair %q", s, kv)
		}
		var err error
		switch key {
		case "rank":
			spec.Rank, err = strconv.Atoi(val)
			rankSet = err == nil
		case "at":
			var ok bool
			if spec.At, ok = chaosPointByName(val); !ok {
				err = fmt.Errorf("unknown point %q (rendezvous, mid-epoch, barrier, snapshot)", val)
			}
		case "after":
			spec.After, err = strconv.Atoi(val)
		case "p":
			spec.P, err = strconv.ParseFloat(val, 64)
		case "window":
			spec.Window, err = time.ParseDuration(val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
			spec.At = PointAfter
		case "seed":
			var u uint64
			u, err = strconv.ParseUint(val, 10, 64)
			spec.Seed = u
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: chaos spec %q: %s: %v", s, key, err)
		}
	}
	// Join/drain subjects are resolvable from the live membership at
	// fire time; the classic faults target a specific machine.
	if !rankSet && spec.Op != OpJoin && spec.Op != OpDrain {
		return nil, fmt.Errorf("cluster: chaos spec %q: rank is required", s)
	}
	if spec.At == 0 {
		return nil, fmt.Errorf("cluster: chaos spec %q: at (or delay) is required", s)
	}
	return spec, nil
}

// ChaosController is the shared state of one fault schedule: it counts
// trigger-point occurrences for the current event and fires each event
// exactly once, in order. One controller wraps every endpoint of a run.
type ChaosController struct {
	events []*ChaosSpec
	idx    atomic.Int32 // current event index; len(events) = schedule done
	fired  atomic.Bool  // at least one event has fired

	sends    atomic.Int64 // outbound token batches observed for the current trigger
	snaps    atomic.Int64 // replication snapshot sends observed
	barriers atomic.Int64 // Barrier entries observed

	// Per-event counter baselines, snapped when an event is armed so a
	// later event's After counts occurrences after the previous fire.
	baseSends    atomic.Int64
	baseSnaps    atomic.Int64
	baseBarriers atomic.Int64

	snapKind atomic.Uint32 // 1+kind of the replication ctl frames, 0 = unset

	// Fired-effect state (persists as the schedule advances).
	partRank  atomic.Int32 // partitioned machine, -2 none
	until     atomic.Int64 // partition heal deadline (unix nanos)
	delayRank atomic.Int32 // delayed machine, -2 none
	delayWin  atomic.Int64 // per-send delay (nanos)
	dropRank  atomic.Int32 // snapshot-dropping machine, -2 none

	mu      sync.Mutex
	kill    func(victim int) // installed by the runner; rank -1 = auto
	join    func(rank int)   // elastic scale-out, installed by the runner
	drain   func(rank int)   // elastic scale-in, installed by the runner
	rnd     *rng.Source      // deterministic drop decisions
	dropP   float64
	timer   *time.Timer // pending PointAfter trigger
	links   []Link      // armed endpoints (kill fallback)
	stopped bool
}

// NewChaosController builds a controller for the schedule. The spec is
// normalized (defaults filled) in place.
func NewChaosController(spec *ChaosSpec) *ChaosController {
	spec.normalize()
	c := &ChaosController{events: spec.Events(), rnd: rng.New(spec.Seed)}
	c.partRank.Store(-2)
	c.delayRank.Store(-2)
	c.dropRank.Store(-2)
	return c
}

// Spec returns the (normalized) description of the schedule's first
// event.
func (c *ChaosController) Spec() ChaosSpec { return *c.events[0] }

// Len returns the number of events in the schedule.
func (c *ChaosController) Len() int { return len(c.events) }

// OnKill installs the kill function the runner uses to stop the
// victim machine in-process. Without one, a fired kill falls back to
// aborting the victim's link (netlink-level tests).
func (c *ChaosController) OnKill(fn func(victim int)) {
	c.mu.Lock()
	c.kill = fn
	c.mu.Unlock()
}

// OnJoin installs the elastic scale-out function (rank -1 = runner
// picks the spare deterministically).
func (c *ChaosController) OnJoin(fn func(rank int)) {
	c.mu.Lock()
	c.join = fn
	c.mu.Unlock()
}

// OnDrain installs the elastic scale-in function (rank -1 = runner
// picks the leaver deterministically).
func (c *ChaosController) OnDrain(fn func(rank int)) {
	c.mu.Lock()
	c.drain = fn
	c.mu.Unlock()
}

// SetSnapshotKind registers the control-frame kind that carries
// replication snapshots, so PointSnapshot and OpDrop can recognize
// them.
func (c *ChaosController) SetSnapshotKind(kind uint8) {
	c.snapKind.Store(1 + uint32(kind))
}

// WrapAll wraps every link of a run; every wrapper observes for the
// controller (a uniform wrapper keeps the teardown paths identical
// across ranks).
func (c *ChaosController) WrapAll(links []Link) []Link {
	out := make([]Link, len(links))
	for i, l := range links {
		rank := -1
		if l != nil {
			rank = l.Rank()
		}
		out[i] = &ChaosLink{Link: l, ctrl: c, rank: rank}
	}
	return out
}

// Wrap wraps a single link.
func (c *ChaosController) Wrap(l Link) Link {
	return &ChaosLink{Link: l, ctrl: c, rank: l.Rank()}
}

// Arm starts the schedule: rendezvous-point first events fire
// immediately, relative-time ones start their timer. Called by the
// runner after links are built (pass the run's wrapped links; the kill
// fallback and effect routing use them).
func (c *ChaosController) Arm(links []Link) {
	c.mu.Lock()
	c.links = links
	c.mu.Unlock()
	c.armCurrent()
}

// Stop cancels any pending relative-time trigger; remaining events
// never fire. Called at teardown.
func (c *ChaosController) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

// Fired reports whether any event of the schedule has triggered.
func (c *ChaosController) Fired() bool { return c.fired.Load() }

// Done reports whether every event of the schedule has triggered.
func (c *ChaosController) Done() bool { return int(c.idx.Load()) >= len(c.events) }

// current returns the awaiting event and its index, or nil when the
// schedule is exhausted.
func (c *ChaosController) current() (*ChaosSpec, int32) {
	i := c.idx.Load()
	if int(i) >= len(c.events) {
		return nil, i
	}
	return c.events[i], i
}

// armCurrent prepares the awaiting event: counter baselines are
// snapped, immediate (rendezvous) events fire now, relative-time
// events start their timer.
func (c *ChaosController) armCurrent() {
	ev, i := c.current()
	if ev == nil {
		return
	}
	c.baseSends.Store(c.sends.Load())
	c.baseSnaps.Store(c.snaps.Load())
	c.baseBarriers.Store(c.barriers.Load())
	switch ev.At {
	case PointRendezvous:
		c.fire(i)
	case PointAfter:
		c.mu.Lock()
		if !c.stopped {
			c.timer = time.AfterFunc(ev.Delay, func() { c.fire(i) })
		}
		c.mu.Unlock()
	}
}

// isSnapshot reports whether a ctl kind is the registered
// replication-snapshot kind.
func (c *ChaosController) isSnapshot(kind uint8) bool {
	sk := c.snapKind.Load()
	return sk != 0 && uint8(sk-1) == kind
}

// dropSnapshot decides (deterministically) whether to drop one
// replication snapshot.
func (c *ChaosController) dropSnapshot() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rnd.Float64() < c.dropP
}

// observes reports whether the current event's trigger watches frames
// from rank (rank -1 on the event = any machine).
func chaosObserves(ev *ChaosSpec, rank int) bool {
	return ev.Rank < 0 || ev.Rank == rank
}

// onSend counts an outbound token batch from rank toward a mid-epoch
// trigger.
func (c *ChaosController) onSend(rank int) {
	ev, i := c.current()
	if ev == nil || ev.At != PointMidEpoch || !chaosObserves(ev, rank) {
		return
	}
	if c.sends.Add(1) == c.baseSends.Load()+int64(ev.After) {
		c.fire(i)
	}
}

// onSnap counts a replication snapshot from rank toward a snapshot
// trigger.
func (c *ChaosController) onSnap(rank int) {
	ev, i := c.current()
	if ev == nil || ev.At != PointSnapshot || !chaosObserves(ev, rank) {
		return
	}
	if c.snaps.Add(1) == c.baseSnaps.Load()+int64(ev.After) {
		c.fire(i)
	}
}

// onBarrier counts a barrier entry from rank toward a barrier trigger.
func (c *ChaosController) onBarrier(rank int) {
	ev, i := c.current()
	if ev == nil || ev.At != PointBarrier || !chaosObserves(ev, rank) {
		return
	}
	if c.barriers.Add(1) == c.baseBarriers.Load()+int64(ev.After) {
		c.fire(i)
	}
}

// fire triggers event i exactly once (the idx CAS is the exactly-once
// guarantee), applies its op, and arms the schedule's next event.
func (c *ChaosController) fire(i int32) {
	if !c.idx.CompareAndSwap(i, i+1) {
		return
	}
	ev := c.events[i]
	c.fired.Store(true)
	switch ev.Op {
	case OpKill:
		c.mu.Lock()
		kill := c.kill
		c.mu.Unlock()
		if kill != nil {
			kill(ev.Rank)
		} else if ev.Rank >= 0 {
			// Netlink-level fallback: sever the victim's connections.
			c.mu.Lock()
			links := c.links
			c.mu.Unlock()
			if ev.Rank < len(links) {
				if a, ok := links[ev.Rank].(interface{ Abort() }); ok {
					a.Abort()
				}
			}
		}
	case OpPartition:
		c.until.Store(time.Now().Add(ev.Window).UnixNano())
		c.partRank.Store(int32(ev.Rank))
	case OpDelay:
		c.delayWin.Store(int64(ev.Window))
		c.delayRank.Store(int32(ev.Rank))
	case OpDrop:
		c.mu.Lock()
		c.dropP = ev.P
		c.mu.Unlock()
		c.dropRank.Store(int32(ev.Rank))
	case OpJoin:
		c.mu.Lock()
		join := c.join
		c.mu.Unlock()
		if join != nil {
			join(ev.Rank)
		}
	case OpDrain:
		c.mu.Lock()
		drain := c.drain
		c.mu.Unlock()
		if drain != nil {
			drain(ev.Rank)
		}
	}
	c.armCurrent()
}

// ChaosLink wraps one endpoint, feeding the controller's trigger
// counters and applying fired stall/drop effects to its own rank.
type ChaosLink struct {
	Link
	ctrl *ChaosController
	rank int
}

// Unwrap exposes the wrapped endpoint (e.g. for Abort on a TCP link).
func (c *ChaosLink) Unwrap() Link { return c.Link }

// Abort forwards to the underlying link's Abort when it has one, so
// the in-process kill path works through the wrapper.
func (c *ChaosLink) Abort() {
	if a, ok := c.Link.(interface{ Abort() }); ok {
		a.Abort()
	}
}

// stall applies a fired partition/delay window to this rank's send.
func (c *ChaosLink) stall() {
	if int(c.ctrl.partRank.Load()) == c.rank {
		if until := c.ctrl.until.Load(); until != 0 {
			if d := time.Until(time.Unix(0, until)); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if int(c.ctrl.delayRank.Load()) == c.rank {
		if w := c.ctrl.delayWin.Load(); w > 0 {
			time.Sleep(time.Duration(w))
		}
	}
}

// Send implements cluster.Link, counting outbound token batches toward
// a mid-epoch trigger and applying stall windows.
func (c *ChaosLink) Send(dst int, batch TokenBatch) error {
	c.ctrl.onSend(c.rank)
	c.stall()
	return c.Link.Send(dst, batch)
}

// SendCtl implements cluster.Link, counting replication snapshots
// toward a snapshot trigger and dropping them under a fired OpDrop.
func (c *ChaosLink) SendCtl(dst int, kind uint8, payload []byte) error {
	if c.ctrl.isSnapshot(kind) {
		c.ctrl.onSnap(c.rank)
		if int(c.ctrl.dropRank.Load()) == c.rank && c.ctrl.dropSnapshot() {
			return nil // dropped on the wire
		}
	}
	c.stall()
	return c.Link.SendCtl(dst, kind, payload)
}

// Barrier implements cluster.Link, counting barrier entries toward a
// barrier trigger — the victim dies inside the barrier, after peers
// have started waiting on it.
func (c *ChaosLink) Barrier() error {
	c.ctrl.onBarrier(c.rank)
	return c.Link.Barrier()
}
