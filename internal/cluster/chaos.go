package cluster

// Chaos injection: a deterministic, seeded fault harness that wraps
// cluster links and perturbs one machine (the victim) at a named
// protocol point — the failure half of the failover test matrix. The
// harness is driven by a ChaosSpec (parsed from the `-chaos=...`
// flag syntax) and a ChaosController shared by every endpoint of the
// run: the controller counts the victim's protocol events (data
// sends, replication snapshots, barrier entries) and fires the
// configured fault exactly once when the trigger point is reached.
//
// Faults:
//
//   - kill: the victim machine dies — the registered kill function
//     (installed by the training runner) stops its goroutines and
//     severs its connections, exactly like a crashed process.
//   - partition: the victim's outbound traffic (tokens and control
//     frames alike) stalls for a window, then heals. Heartbeats ride
//     the same connections, so a long window is indistinguishable
//     from a death and triggers failover; a short one only delays.
//   - delay: every victim send after the trigger is slowed by the
//     configured window — a persistent straggler link.
//   - drop: replication snapshot frames from the victim are dropped
//     with probability P (seeded, deterministic). Only the lossy-
//     tolerant replication plane may be dropped: dropping token
//     frames would silently break conservation rather than test it.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nomad/internal/rng"
)

// ChaosOp is the fault to inject.
type ChaosOp uint8

const (
	// OpKill stops the victim machine mid-run.
	OpKill ChaosOp = iota + 1
	// OpPartition stalls the victim's outbound traffic for Window.
	OpPartition
	// OpDelay slows every victim send by Window after the trigger.
	OpDelay
	// OpDrop drops victim replication snapshots with probability P.
	OpDrop
)

func (o ChaosOp) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpPartition:
		return "partition"
	case OpDelay:
		return "delay"
	case OpDrop:
		return "drop"
	}
	return fmt.Sprintf("ChaosOp(%d)", uint8(o))
}

// ChaosPoint names the protocol point the fault triggers at.
type ChaosPoint uint8

const (
	// PointRendezvous triggers as soon as the cluster is armed, before
	// any token circulates — the victim dies on the starting line.
	PointRendezvous ChaosPoint = iota + 1
	// PointMidEpoch triggers on the victim's After-th outbound token
	// batch, i.e. in the middle of asynchronous circulation.
	PointMidEpoch
	// PointBarrier triggers on the victim's After-th Barrier entry.
	PointBarrier
	// PointSnapshot triggers on the victim's After-th replication
	// snapshot send (the control kind registered by the runner).
	PointSnapshot
)

func (p ChaosPoint) String() string {
	switch p {
	case PointRendezvous:
		return "rendezvous"
	case PointMidEpoch:
		return "mid-epoch"
	case PointBarrier:
		return "barrier"
	case PointSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("ChaosPoint(%d)", uint8(p))
}

// ChaosSpec describes one injected fault.
type ChaosSpec struct {
	Op   ChaosOp
	Rank int        // victim machine
	At   ChaosPoint // trigger point
	// After is how many occurrences of the trigger point happen before
	// the fault fires (default 1; mid-epoch defaults to 5 so some
	// circulation happens first).
	After int
	// P is the drop probability for OpDrop (default 0.5).
	P float64
	// Window is the stall duration for OpPartition / per-send delay
	// for OpDelay (default 50ms).
	Window time.Duration
	// Seed drives the deterministic drop decisions (default 1).
	Seed uint64
}

func (s *ChaosSpec) String() string {
	return fmt.Sprintf("%s:rank=%d,at=%s,after=%d", s.Op, s.Rank, s.At, s.After)
}

// normalize fills spec defaults in place.
func (s *ChaosSpec) normalize() {
	if s.After <= 0 {
		if s.At == PointMidEpoch {
			s.After = 5
		} else {
			s.After = 1
		}
	}
	if s.P <= 0 || s.P > 1 {
		s.P = 0.5
	}
	if s.Window <= 0 {
		s.Window = 50 * time.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// ParseChaos parses the -chaos flag syntax:
//
//	op:key=value,key=value,...
//
// e.g. "kill:rank=2,at=mid-epoch", "drop:rank=1,at=snapshot,p=0.5",
// "partition:rank=2,at=mid-epoch,window=100ms". Keys: rank (victim
// machine, required), at (trigger point, required), after (trigger
// occurrence count), p (drop probability), window (duration), seed.
func ParseChaos(s string) (*ChaosSpec, error) {
	if s == "" {
		return nil, nil
	}
	opName, rest, found := strings.Cut(s, ":")
	if !found {
		return nil, fmt.Errorf("cluster: chaos spec %q: want op:key=value,...", s)
	}
	spec := &ChaosSpec{Rank: -1}
	switch opName {
	case "kill":
		spec.Op = OpKill
	case "partition":
		spec.Op = OpPartition
	case "delay":
		spec.Op = OpDelay
	case "drop":
		spec.Op = OpDrop
	default:
		return nil, fmt.Errorf("cluster: unknown chaos op %q (kill, partition, delay, drop)", opName)
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("cluster: chaos spec %q: bad pair %q", s, kv)
		}
		var err error
		switch key {
		case "rank":
			spec.Rank, err = strconv.Atoi(val)
		case "at":
			switch val {
			case "rendezvous":
				spec.At = PointRendezvous
			case "mid-epoch":
				spec.At = PointMidEpoch
			case "barrier":
				spec.At = PointBarrier
			case "snapshot":
				spec.At = PointSnapshot
			default:
				err = fmt.Errorf("unknown point %q (rendezvous, mid-epoch, barrier, snapshot)", val)
			}
		case "after":
			spec.After, err = strconv.Atoi(val)
		case "p":
			spec.P, err = strconv.ParseFloat(val, 64)
		case "window":
			spec.Window, err = time.ParseDuration(val)
		case "seed":
			var u uint64
			u, err = strconv.ParseUint(val, 10, 64)
			spec.Seed = u
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: chaos spec %q: %s: %v", s, key, err)
		}
	}
	if spec.Rank < 0 {
		return nil, fmt.Errorf("cluster: chaos spec %q: rank is required", s)
	}
	if spec.At == 0 {
		return nil, fmt.Errorf("cluster: chaos spec %q: at is required", s)
	}
	spec.normalize()
	return spec, nil
}

// ChaosController is the shared state of one injected fault: it
// counts the victim's trigger-point occurrences and fires the fault
// exactly once. One controller wraps every endpoint of a run.
type ChaosController struct {
	spec  ChaosSpec
	fired atomic.Bool

	sends    atomic.Int64 // victim outbound token batches
	snaps    atomic.Int64 // victim replication snapshot sends
	barriers atomic.Int64 // victim Barrier entries

	snapKind atomic.Uint32 // 1+kind of the replication ctl frames, 0 = unset

	// until is the partition heal deadline (unix nanos), 0 while the
	// partition has not triggered.
	until atomic.Int64

	mu   sync.Mutex
	kill func(victim int) // installed by the runner
	rnd  *rng.Source      // deterministic drop decisions
}

// NewChaosController builds a controller for the spec. The spec is
// normalized (defaults filled) in place.
func NewChaosController(spec *ChaosSpec) *ChaosController {
	spec.normalize()
	return &ChaosController{spec: *spec, rnd: rng.New(spec.Seed)}
}

// Spec returns the (normalized) fault description.
func (c *ChaosController) Spec() ChaosSpec { return c.spec }

// OnKill installs the kill function the runner uses to stop the
// victim machine in-process. Without one, a fired kill falls back to
// aborting the victim's link (netlink-level tests).
func (c *ChaosController) OnKill(fn func(victim int)) {
	c.mu.Lock()
	c.kill = fn
	c.mu.Unlock()
}

// SetSnapshotKind registers the control-frame kind that carries
// replication snapshots, so PointSnapshot and OpDrop can recognize
// them.
func (c *ChaosController) SetSnapshotKind(kind uint8) {
	c.snapKind.Store(1 + uint32(kind))
}

// WrapAll wraps every link of a run; the victim's wrapper observes
// and injects, the others only forward (a uniform wrapper keeps the
// teardown paths identical across ranks).
func (c *ChaosController) WrapAll(links []Link) []Link {
	out := make([]Link, len(links))
	for i, l := range links {
		out[i] = &ChaosLink{Link: l, ctrl: c, victim: l != nil && l.Rank() == c.spec.Rank}
	}
	return out
}

// Wrap wraps a single link.
func (c *ChaosController) Wrap(l Link) Link {
	return &ChaosLink{Link: l, ctrl: c, victim: l.Rank() == c.spec.Rank}
}

// Arm fires rendezvous-point faults: the run is assembled and about
// to start. Called by the runner after links are built.
func (c *ChaosController) Arm(victimLink Link) {
	if c.spec.At == PointRendezvous {
		c.trigger(victimLink)
	}
}

// Fired reports whether the fault has triggered.
func (c *ChaosController) Fired() bool { return c.fired.Load() }

// isSnapshot reports whether a ctl kind is the registered
// replication-snapshot kind.
func (c *ChaosController) isSnapshot(kind uint8) bool {
	sk := c.snapKind.Load()
	return sk != 0 && uint8(sk-1) == kind
}

// dropSnapshot decides (deterministically) whether to drop one
// replication snapshot.
func (c *ChaosController) dropSnapshot() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rnd.Float64() < c.spec.P
}

// trigger fires the fault once. victimLink is the victim's own link
// (used by the kill fallback and by partition/delay windows).
func (c *ChaosController) trigger(victimLink Link) {
	if !c.fired.CompareAndSwap(false, true) {
		return
	}
	switch c.spec.Op {
	case OpKill:
		c.mu.Lock()
		kill := c.kill
		c.mu.Unlock()
		if kill != nil {
			kill(c.spec.Rank)
			return
		}
		// Netlink-level fallback: sever the victim's connections.
		if a, ok := victimLink.(interface{ Abort() }); ok {
			a.Abort()
		}
	case OpPartition, OpDelay:
		c.until.Store(time.Now().Add(c.spec.Window).UnixNano())
	case OpDrop:
		// Nothing to do at trigger time: dropSnapshot consults the
		// fired flag per frame.
	}
}

// ChaosLink wraps one endpoint. Non-victim wrappers forward
// everything unchanged.
type ChaosLink struct {
	Link
	ctrl   *ChaosController
	victim bool
}

// Unwrap exposes the wrapped endpoint (e.g. for Abort on a TCP link).
func (c *ChaosLink) Unwrap() Link { return c.Link }

// Abort forwards to the underlying link's Abort when it has one, so
// the in-process kill path works through the wrapper.
func (c *ChaosLink) Abort() {
	if a, ok := c.Link.(interface{ Abort() }); ok {
		a.Abort()
	}
}

// stall applies a pending partition/delay window to a victim send.
func (c *ChaosLink) stall() {
	spec := &c.ctrl.spec
	switch spec.Op {
	case OpPartition:
		until := c.ctrl.until.Load()
		if until == 0 {
			return
		}
		if d := time.Until(time.Unix(0, until)); d > 0 {
			time.Sleep(d)
		}
	case OpDelay:
		if c.ctrl.until.Load() != 0 {
			time.Sleep(spec.Window)
		}
	}
}

// Send implements cluster.Link, counting the victim's outbound token
// batches toward a mid-epoch trigger and applying stall windows.
func (c *ChaosLink) Send(dst int, batch TokenBatch) error {
	if c.victim && !c.ctrl.fired.Load() && c.ctrl.spec.At == PointMidEpoch {
		if c.ctrl.sends.Add(1) == int64(c.ctrl.spec.After) {
			c.ctrl.trigger(c)
		}
	}
	if c.victim {
		c.stall()
	}
	return c.Link.Send(dst, batch)
}

// SendCtl implements cluster.Link, counting the victim's replication
// snapshots toward a snapshot trigger and dropping them under OpDrop.
func (c *ChaosLink) SendCtl(dst int, kind uint8, payload []byte) error {
	if c.victim && c.ctrl.isSnapshot(kind) {
		if !c.ctrl.fired.Load() && c.ctrl.spec.At == PointSnapshot {
			if c.ctrl.snaps.Add(1) == int64(c.ctrl.spec.After) {
				c.ctrl.trigger(c)
			}
		}
		if c.ctrl.spec.Op == OpDrop && c.ctrl.fired.Load() && c.ctrl.dropSnapshot() {
			return nil // dropped on the wire
		}
	}
	if c.victim {
		c.stall()
	}
	return c.Link.SendCtl(dst, kind, payload)
}

// Barrier implements cluster.Link, counting the victim's barrier
// entries toward a barrier trigger — the victim dies inside the
// barrier, after peers have started waiting on it.
func (c *ChaosLink) Barrier() error {
	if c.victim && !c.ctrl.fired.Load() && c.ctrl.spec.At == PointBarrier {
		if c.ctrl.barriers.Add(1) == int64(c.ctrl.spec.After) {
			c.ctrl.trigger(c)
		}
	}
	return c.Link.Barrier()
}
