// Package algotest provides the shared fixtures used by every
// algorithm package's tests: a small learnable synthetic dataset and
// convergence assertions, so each solver is verified against the same
// bar.
package algotest

import (
	"context"
	"testing"

	"nomad/internal/dataset"
	"nomad/internal/train"
)

// Data returns a small dataset with clear low-rank structure.
func Data(t testing.TB) *dataset.Dataset {
	t.Helper()
	spec := dataset.Spec{
		Name: "algotest", Rows: 300, Cols: 60, NNZ: 8000,
		RowSkew: 0.8, ColSkew: 0.8, TrueRank: 4, NoiseSD: 0.1,
		TestFrac: 0.15, Seed: 7,
	}
	ds, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// SGDConfig returns a configuration suitable for the SGD-family
// algorithms on Data.
func SGDConfig() train.Config {
	return train.Config{
		K: 8, Lambda: 0.02, Alpha: 0.08, Beta: 0.01,
		Workers: 1, Machines: 1, Epochs: 20, EvalPoints: 5, Seed: 3,
	}
}

// Run trains and fails the test on error.
func Run(t testing.TB, algo train.Algorithm, ds *dataset.Dataset, cfg train.Config) *train.Result {
	t.Helper()
	res, err := algo.Train(context.Background(), ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// RequireConverged asserts the run improved markedly and reached a
// sane absolute RMSE for Data (ratings have unit variance + 0.1 noise).
func RequireConverged(t *testing.T, res *train.Result, maxFinal float64) {
	t.Helper()
	tr := res.Trace
	if len(tr.Points) < 2 {
		t.Fatalf("%s: trace too short: %d points", res.Algorithm, len(tr.Points))
	}
	first, final := tr.Points[0].RMSE, tr.Final().RMSE
	if final > maxFinal {
		t.Errorf("%s: final RMSE %.4f above bar %.2f (first %.4f)", res.Algorithm, final, maxFinal, first)
	}
	if final >= first {
		t.Errorf("%s: no improvement: first %.4f final %.4f", res.Algorithm, first, final)
	}
}
