package dsgd

import (
	"testing"

	"nomad/internal/algotest"
	"nomad/internal/netsim"
	"nomad/internal/partition"
)

func TestSingleWorkerConverges(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.BoldStep = 0.05
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
}

func TestMultiWorkerSharedMemory(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Workers = 4
	cfg.BoldStep = 0.05
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
	if res.MessagesSent != 0 {
		t.Error("single machine run used the network")
	}
}

func TestDistributedConvergesAndCommunicates(t *testing.T) {
	ds := algotest.Data(t)
	cfg := algotest.SGDConfig()
	cfg.Machines = 2
	cfg.Workers = 2
	cfg.BoldStep = 0.05
	cfg.Profile = netsim.Instant()
	res := algotest.Run(t, New(), ds, cfg)
	algotest.RequireConverged(t, res, 0.6)
	if res.MessagesSent == 0 {
		t.Error("distributed DSGD sent no blocks")
	}
}

func TestStrataConservationAndDisjointness(t *testing.T) {
	ds := algotest.Data(t)
	p := 4
	up := partition.EqualRanges(ds.Rows(), p)
	ip := partition.EqualRanges(ds.Cols(), p)
	strata := buildStrata(ds, up, ip, p)
	total := 0
	for g := 0; g < p; g++ {
		for s := 0; s < p; s++ {
			blk := strata[g*p+s]
			total += len(blk.users)
			for x := range blk.users {
				if up.Owner(int(blk.users[x])) != g {
					t.Fatalf("stratum (%d,%d) holds foreign user %d", g, s, blk.users[x])
				}
				if ip.Owner(int(blk.items[x])) != s {
					t.Fatalf("stratum (%d,%d) holds foreign item %d", g, s, blk.items[x])
				}
			}
		}
	}
	if total != ds.Train.NNZ() {
		t.Fatalf("strata hold %d ratings, train has %d", total, ds.Train.NNZ())
	}
}

func TestName(t *testing.T) {
	if New().Name() != "dsgd" {
		t.Fatal("wrong name")
	}
}
