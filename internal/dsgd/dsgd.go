// Package dsgd implements Distributed Stochastic Gradient Descent
// (Gemulla et al., KDD 2011), the primary bulk-synchronous baseline of
// the paper's distributed experiments (§4.1, Figs 8, 11, 12, 20).
//
// The rating matrix is blocked p×p over p logical workers (machines ×
// threads). Within sub-epoch s, worker g runs SGD on block
// (I_g, J_{(g+s) mod p}); the blocks are interchangeable strata, so
// workers never share a wᵢ or hⱼ. After every sub-epoch all workers
// synchronize and the item blocks shift one position around the ring,
// crossing the (simulated) network whenever adjacent workers live on
// different machines. This bulk synchronization is precisely what NOMAD
// avoids: computation and communication alternate instead of
// overlapping, and every sub-epoch waits for its slowest worker (the
// "curse of the last reducer").
//
// The step size follows the bold-driver heuristic (§5.1): grow 5% after
// an epoch whose training loss decreased, halve it otherwise.
package dsgd

import (
	"context"
	"sync/atomic"
	"time"

	"nomad/internal/dataset"
	"nomad/internal/factor"
	"nomad/internal/netsim"
	"nomad/internal/parallel"
	"nomad/internal/partition"
	"nomad/internal/rng"
	"nomad/internal/sched"
	"nomad/internal/train"
	"nomad/internal/vecmath"
)

// DSGD is the solver. The zero value is ready to use.
type DSGD struct{}

// New returns a DSGD solver.
func New() *DSGD { return &DSGD{} }

// Name implements train.Algorithm.
func (*DSGD) Name() string { return "dsgd" }

// stratum is the flat rating store of one (user-block, item-block)
// cell, with a scratch permutation for randomized visiting order.
type stratum struct {
	users []int32
	items []int32
	vals  []float64
	perm  []int32
}

// Train implements train.Algorithm.
func (*DSGD) Train(ctx context.Context, ds *dataset.Dataset, cfg train.Config, hooks *train.Hooks) (*train.Result, error) {
	cfg, err := cfg.Normalize(ds)
	if err != nil {
		return nil, err
	}
	if err := cfg.RequireFloat64("dsgd"); err != nil {
		return nil, err
	}
	if err := cfg.Resume.Validate("dsgd", ds.Rows(), ds.Cols(), cfg.K); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := cfg.TotalWorkers()
	m, n := ds.Rows(), ds.Cols()
	userPart := partition.EqualRanges(m, p)
	itemPart := partition.EqualRanges(n, p)
	strata := buildStrata(ds, userPart, itemPart, p)

	net := netsim.New(cfg.Machines, cfg.Profile)
	defer net.Shutdown()
	machineOf := func(g int) int { return g / cfg.Workers }

	driver := sched.NewBoldDriver(cfg.BoldStep)
	root := rng.New(cfg.Seed)
	workerRNG := make([]*rng.Source, p)
	var md *factor.Model
	var updates atomic.Int64
	s := 0 // ring position persists across epochs (and checkpoints)
	if st := cfg.Resume; st != nil {
		md = st.Model
		updates.Store(st.Updates)
		s = int(st.Ring)
		if st.Bold != nil {
			driver.Restore(st.Bold.Step, st.Bold.Prev, st.Bold.Primed)
		}
		st.RestoreStreams(root, workerRNG)
	} else {
		md = factor.NewInit(m, n, cfg.K, cfg.Seed)
		for g := range workerRNG {
			workerRNG[g] = root.Split(uint64(g))
		}
	}
	step := driver.Step
	kern := vecmath.KernelFor(cfg.K) // square loss: fused kernel, chosen once
	counter := train.NewCounterFor(cfg, p)
	rec := train.NewRecorderFor(cfg, ds.Test, md, hooks)
	start := time.Now()

	epoch := cfg.EpochsDone(updates.Load())
	for !train.StopCheck(ctx, cfg, start, updates.Load()) {
		var epochLoss float64
		for sub := 0; sub < p; sub++ {
			losses := make([]float64, p)
			parallel.For(p, p, func(_, lo, hi int) {
				for g := lo; g < hi; g++ {
					blk := strata[g*p+(g+s)%p]
					losses[g] = sgdPass(blk, md, kern, step, cfg.Lambda, workerRNG[g])
					counter.Add(g, int64(len(blk.perm)))
					updates.Add(int64(len(blk.perm)))
				}
			})
			for _, l := range losses {
				epochLoss += l
			}
			exchangeBlocks(net, md, itemPart, machineOf, p, s, cfg.K)
			s++
			if train.StopCheck(ctx, cfg, start, updates.Load()) {
				break
			}
		}
		step = driver.Observe(epochLoss)
		epoch++
		hooks.EmitEpoch(train.EpochEvent{Epoch: epoch, Updates: updates.Load()})
		if cfg.Machines > 1 {
			hooks.EmitNetwork(train.NetworkEvent{BytesSent: net.BytesSent(), MessagesSent: net.MessagesSent()})
		}
		if rec.Due(updates.Load()) {
			rec.Sample(md, updates.Load())
		}
	}
	rec.Sample(md, updates.Load())

	boldStep, boldPrev, boldPrimed := driver.Snapshot()
	return &train.Result{
		Algorithm:    "dsgd",
		Model:        md,
		Trace:        rec.Trace(),
		Updates:      updates.Load(),
		Elapsed:      rec.Elapsed(),
		BytesSent:    net.BytesSent(),
		MessagesSent: net.MessagesSent(),
		Final: &train.State{
			Algorithm: "dsgd",
			Seed:      cfg.Seed,
			Updates:   updates.Load(),
			Ring:      int64(s),
			Bold:      &train.BoldState{Step: boldStep, Prev: boldPrev, Primed: boldPrimed},
			Model:     md,
			RNG:       train.CaptureStreams(root, workerRNG),
		},
	}, ctx.Err()
}

// sgdPass runs one randomized SGD sweep over a stratum and returns the
// sum of squared pre-update errors (the bold driver's loss signal).
// DSGD implements the paper's square loss, so every update goes
// through the fused kernel.
func sgdPass(blk *stratum, md *factor.Model, kern vecmath.Kernel, step, lambda float64, r *rng.Source) float64 {
	for i := range blk.perm {
		blk.perm[i] = int32(i)
	}
	r.Shuffle(len(blk.perm), func(i, j int) { blk.perm[i], blk.perm[j] = blk.perm[j], blk.perm[i] })
	var loss float64
	for _, x := range blk.perm {
		e := kern.Step(md.UserRow(int(blk.users[x])), md.ItemRow(int(blk.items[x])),
			blk.vals[x], step, lambda)
		loss += e * e
	}
	return loss
}

// exchangeBlocks performs the post-sub-epoch ring shift of item
// blocks: worker g receives block (g+s+1) mod p from worker (g+1) mod
// p. Only cross-machine edges touch the network; the coordinator then
// waits for every transfer to arrive — the bulk-synchronization point.
func exchangeBlocks(net *netsim.Network, md *factor.Model,
	itemPart *partition.Partition, machineOf func(int) int, p, s, k int) {

	expected := make([]int, net.Machines())
	for g := 0; g < p; g++ {
		holder := (g + 1) % p
		src, dst := machineOf(holder), machineOf(g)
		if src == dst {
			continue
		}
		blockIdx := (g + s + 1) % p
		part := itemPart.Part(blockIdx)
		if len(part) == 0 {
			continue
		}
		lo := int(part[0])
		hi := lo + len(part) // EqualRanges parts are contiguous
		sendBlock(net, md, src, dst, lo, hi, k, s)
		expected[dst]++
	}
	for mc, count := range expected {
		for i := 0; i < count; i++ {
			<-net.Recv(mc)
		}
	}
}

// sendBlock ships rows [lo,hi) of H with their modelled wire size.
// Factor data is shared in-process, so the payload is only a header;
// the cost is what matters.
func sendBlock(net *netsim.Network, md *factor.Model, src, dst, lo, hi, k, tag int) {
	net.Send(src, dst, netsim.BlockWireSize(hi-lo, k), tag)
	_ = md
}

// buildStrata sorts the training ratings into the p×p grid.
func buildStrata(ds *dataset.Dataset, userPart, itemPart *partition.Partition, p int) []*stratum {
	tr := ds.Train
	counts := make([]int, p*p)
	for i := 0; i < tr.Rows(); i++ {
		g := userPart.Owner(i)
		cols, _ := tr.Row(i)
		for _, j := range cols {
			counts[g*p+itemPart.Owner(int(j))]++
		}
	}
	strata := make([]*stratum, p*p)
	for id := range strata {
		c := counts[id]
		strata[id] = &stratum{
			users: make([]int32, 0, c),
			items: make([]int32, 0, c),
			vals:  make([]float64, 0, c),
			perm:  make([]int32, c),
		}
	}
	for i := 0; i < tr.Rows(); i++ {
		g := userPart.Owner(i)
		cols, vals := tr.Row(i)
		for x, j := range cols {
			blk := strata[g*p+itemPart.Owner(int(j))]
			blk.users = append(blk.users, int32(i))
			blk.items = append(blk.items, j)
			blk.vals = append(blk.vals, vals[x])
		}
	}
	return strata
}
