package benchenv

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestCaptureBasics(t *testing.T) {
	e := Capture()
	if e.GoVersion != runtime.Version() || e.GOARCH != runtime.GOARCH || e.GOOS != runtime.GOOS {
		t.Fatalf("runtime identity wrong: %+v", e)
	}
	if e.NumCPU < 1 || e.GOMAXPROCS < 1 {
		t.Fatalf("degenerate CPU counts: %+v", e)
	}
	if runtime.GOOS == "linux" && e.CPUModel == "" {
		t.Log("no cpu model in /proc/cpuinfo (container?)")
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Env
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("env did not round-trip: %+v vs %+v", back, e)
	}
}
