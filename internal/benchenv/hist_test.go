package benchenv

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramQuantileWithinBucketError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades: exercises many bucket groups.
		v := int64(1) << uint(rng.Intn(31))
		v += rng.Int63n(v + 1)
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		want := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q).Nanoseconds()
		relErr := float64(got-want) / float64(want)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/32+1e-9 {
			t.Fatalf("q=%v: got %d want %d (rel err %.4f > 1/32)", q, got, want, relErr)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max().Nanoseconds() != vals[len(vals)-1] {
		t.Fatalf("max = %d want %d", h.Max().Nanoseconds(), vals[len(vals)-1])
	}
	if h.Min().Nanoseconds() != vals[0] {
		t.Fatalf("min = %d want %d", h.Min().Nanoseconds(), vals[0])
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := 0; v < 64; v++ {
		h.Record(time.Duration(v))
	}
	// Values below 64ns are bucketed exactly, so every quantile must be
	// the true order statistic.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		want := int64(q * 63)
		if got := h.Quantile(q).Nanoseconds(); got != want {
			t.Fatalf("q=%v: got %d want %d", q, got, want)
		}
	}
	if h.Mean() != time.Duration(63/2) {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramMergeEqualsCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, all Histogram
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(1e9))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() || a.Mean() != all.Mean() {
		t.Fatal("merged scalars differ from combined recording")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q=%v: merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(-5 * time.Second) // clamps to zero
	if h.Quantile(1) != 0 || h.Count() != 1 {
		t.Fatalf("negative record mishandled: %v", h.Summary())
	}
	var one Histogram
	one.Record(123 * time.Microsecond)
	s := one.Summary()
	if s.P50Us != 123 || s.P99Us != 123 || s.MaxUs != 123 || s.Count != 1 {
		t.Fatalf("single-sample summary %+v", s)
	}
}

func TestBucketRoundTripMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := bucketIndex(v)
		if idx < prev {
			// Indices must be non-decreasing in v (spot-checked sequence).
			t.Fatalf("bucketIndex(%d) = %d below previous %d", v, idx, prev)
		}
		prev = idx
		mid := bucketMid(idx)
		// The midpoint must sit in the same bucket.
		if bucketIndex(mid) != idx {
			t.Fatalf("bucketMid(%d) = %d maps to bucket %d", idx, mid, bucketIndex(mid))
		}
	}
}
