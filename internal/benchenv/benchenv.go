// Package benchenv captures the machine environment a benchmark record
// was measured on, so every BENCH_*.json is self-describing: two
// records can only be compared meaningfully when their CPU model,
// feature flags and runtime configuration are known.
package benchenv

import (
	"os"
	"runtime"
	"strings"

	"nomad/internal/vecmath"
)

// Env is the environment block embedded in every benchmark JSON.
type Env struct {
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the kernel-reported processor name ("model name" in
	// /proc/cpuinfo); empty when the platform doesn't expose one.
	CPUModel string `json:"cpu_model,omitempty"`
	// SIMDFeatures is the vecmath CPU feature list the SIMD kernels
	// require and detected ("avx2,fma"), empty when the dispatch is on
	// the portable fallbacks.
	SIMDFeatures string `json:"simd_features,omitempty"`
	// SIMDEnabled is whether the SIMD kernels were actually dispatched
	// at capture time (detection AND no NOMAD_NO_SIMD override).
	SIMDEnabled bool `json:"simd_enabled"`
}

// Capture snapshots the current environment.
func Capture() Env {
	return Env{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CPUModel:     cpuModel(),
		SIMDFeatures: vecmath.Features(),
		SIMDEnabled:  vecmath.SIMDEnabled(),
	}
}

// cpuModel reads the processor name from /proc/cpuinfo. Best-effort:
// returns "" on platforms without it.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(key) {
		case "model name", "Processor", "cpu model": // x86, arm, mips spellings
			return strings.TrimSpace(val)
		}
	}
	return ""
}
