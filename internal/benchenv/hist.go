package benchenv

// Histogram is the repository's one latency aggregator: an HDR-style
// log-linear histogram over non-negative nanosecond values, shared by
// nomad-loadgen (request latency percentiles in BENCH_serve.json) and
// nomad-bench -dist (failover recovery latency across reps) so the
// percentile arithmetic exists exactly once.
//
// Layout: values below 64ns are exact; above that, each power-of-two
// range is split into 32 linear sub-buckets, bounding the relative
// quantization error at 1/32 ≈ 3.1% — far below run-to-run noise on a
// shared VM, at ~15KiB per histogram. Recording is a single index
// increment, so per-request overhead is negligible next to an HTTP
// round trip.
//
// A Histogram is not safe for concurrent use; load generators keep one
// per worker and Merge them at the end (the HDR recorder idiom), which
// keeps the hot path free of shared-cacheline contention.

import (
	"fmt"
	"math/bits"
	"time"
)

// histBuckets covers every int64 nanosecond value: group 0 holds the
// 64 exact values below 2^6, then 58 log groups of 32 sub-buckets.
const histBuckets = 59 * 32

// Histogram records a latency distribution. The zero value is ready to
// use.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64 // total nanoseconds, for Mean
	min    int64
	max    int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	exp := bits.Len64(u) - 6
	if exp < 0 {
		exp = 0
	}
	return exp*32 + int(u>>uint(exp))
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(idx int) int64 {
	if idx < 64 {
		return int64(idx)
	}
	exp := idx/32 - 1
	lo := int64(idx-exp*32) << uint(exp)
	return lo + (int64(1)<<uint(exp))/2
}

// Record adds one observation. Negative durations (clock skew) clamp
// to zero rather than corrupting the distribution.
func (h *Histogram) Record(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of the recorded values (the sum is kept
// outside the buckets, so Mean carries no quantization error).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the exact largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the exact smallest recorded value.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded
// distribution, within the bucket quantization bound, clamped to the
// exact observed [min, max]. Quantile(0.99) is the p99.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count-1)) + 1 // 1-based rank of the quantile observation
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// LatencySummary is the JSON shape of a summarized Histogram, embedded
// in benchmark records (microseconds: readable at both the ~100µs
// loopback-HTTP scale and the multi-second recovery scale).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary snapshots the histogram's headline percentiles.
func (h *Histogram) Summary() LatencySummary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencySummary{
		Count:  h.count,
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Quantile(0.50)),
		P90Us:  us(h.Quantile(0.90)),
		P99Us:  us(h.Quantile(0.99)),
		P999Us: us(h.Quantile(0.999)),
		MaxUs:  us(h.Max()),
	}
}

// String renders the headline percentiles for log lines.
func (h *Histogram) String() string {
	s := h.Summary()
	return fmt.Sprintf("n=%d p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
		s.Count, s.P50Us/1e3, s.P99Us/1e3, s.P999Us/1e3, s.MaxUs/1e3)
}
