package sparse

import (
	"bytes"
	"testing"
	"testing/quick"

	"nomad/internal/rng"
)

func mustMatrix(t *testing.T, rows, cols int, entries []Entry) *Matrix {
	t.Helper()
	m, err := FromEntries(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallMatrix(t *testing.T) *Matrix {
	// 3×4:
	//   [ 1 . 2 . ]
	//   [ . 3 . . ]
	//   [ 4 . 5 6 ]
	return mustMatrix(t, 3, 4, []Entry{
		{0, 0, 1}, {0, 2, 2},
		{1, 1, 3},
		{2, 0, 4}, {2, 2, 5}, {2, 3, 6},
	})
}

func TestShapeAndNNZ(t *testing.T) {
	m := smallMatrix(t)
	if m.Rows() != 3 || m.Cols() != 4 || m.NNZ() != 6 {
		t.Fatalf("shape/nnz = %d×%d/%d", m.Rows(), m.Cols(), m.NNZ())
	}
}

func TestRowAccess(t *testing.T) {
	m := smallMatrix(t)
	cols, vals := m.Row(2)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 3 {
		t.Fatalf("row 2 cols = %v", cols)
	}
	if vals[0] != 4 || vals[1] != 5 || vals[2] != 6 {
		t.Fatalf("row 2 vals = %v", vals)
	}
	cols, _ = m.Row(1)
	if len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("row 1 cols = %v", cols)
	}
}

func TestColAccessAndCSRPositions(t *testing.T) {
	m := smallMatrix(t)
	rows, pos := m.Col(2)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Fatalf("col 2 rows = %v", rows)
	}
	if m.ValAt(pos[0]) != 2 || m.ValAt(pos[1]) != 5 {
		t.Fatalf("col 2 values via CSR positions = %v, %v", m.ValAt(pos[0]), m.ValAt(pos[1]))
	}
	rows, _ = m.Col(1)
	if len(rows) != 1 || rows[0] != 1 {
		t.Fatalf("col 1 rows = %v", rows)
	}
}

func TestDegrees(t *testing.T) {
	m := smallMatrix(t)
	if m.RowDegree(0) != 2 || m.RowDegree(1) != 1 || m.RowDegree(2) != 3 {
		t.Fatal("row degrees wrong")
	}
	if m.ColDegree(0) != 2 || m.ColDegree(1) != 1 || m.ColDegree(2) != 2 || m.ColDegree(3) != 1 {
		t.Fatal("col degrees wrong")
	}
}

func TestAt(t *testing.T) {
	m := smallMatrix(t)
	if v, ok := m.At(2, 3); !ok || v != 6 {
		t.Fatalf("At(2,3) = %v,%v", v, ok)
	}
	if _, ok := m.At(0, 1); ok {
		t.Fatal("At(0,1) should be absent")
	}
}

func TestStats(t *testing.T) {
	m := smallMatrix(t)
	rs := m.RowStats()
	if rs.Min != 1 || rs.Max != 3 || rs.Mean != 2 {
		t.Fatalf("row stats = %+v", rs)
	}
	cs := m.ColStats()
	if cs.Min != 1 || cs.Max != 2 || cs.Mean != 1.5 {
		t.Fatalf("col stats = %+v", cs)
	}
}

func TestDuplicateRejected(t *testing.T) {
	_, err := FromEntries(2, 2, []Entry{{0, 0, 1}, {0, 0, 2}})
	if err == nil {
		t.Fatal("duplicate entry accepted")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	for _, e := range []Entry{{-1, 0, 1}, {0, -1, 1}, {2, 0, 1}, {0, 2, 1}} {
		if _, err := FromEntries(2, 2, []Entry{e}); err == nil {
			t.Fatalf("entry %+v accepted", e)
		}
	}
}

func TestInvalidShapeRejected(t *testing.T) {
	if _, err := FromEntries(0, 3, nil); err == nil {
		t.Fatal("0 rows accepted")
	}
	if _, err := FromEntries(3, 0, nil); err == nil {
		t.Fatal("0 cols accepted")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(2, 2, 4)
	b.Add(0, 1, 1.5)
	b.Add(1, 0, -2)
	if b.Len() != 2 {
		t.Fatalf("builder len = %d", b.Len())
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.At(0, 1); !ok || v != 1.5 {
		t.Fatal("builder lost entry")
	}
}

func TestTranspose(t *testing.T) {
	m := smallMatrix(t)
	tr := m.Transpose()
	if tr.Rows() != m.Cols() || tr.Cols() != m.Rows() || tr.NNZ() != m.NNZ() {
		t.Fatal("transpose shape wrong")
	}
	ents := m.Entries(nil)
	for _, e := range ents {
		v, ok := tr.At(int(e.Col), int(e.Row))
		if !ok || v != e.Val {
			t.Fatalf("transpose missing (%d,%d)", e.Col, e.Row)
		}
	}
}

// TestCSRandCSCConsistency is the central invariant: both layouts must
// describe exactly the same set of entries, checked on random matrices.
func TestCSRandCSCConsistency(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(20)
		used := map[[2]int32]bool{}
		var entries []Entry
		n := r.Intn(rows * cols)
		for len(entries) < n {
			e := Entry{Row: int32(r.Intn(rows)), Col: int32(r.Intn(cols)), Val: r.Uniform(-5, 5)}
			key := [2]int32{e.Row, e.Col}
			if used[key] {
				continue
			}
			used[key] = true
			entries = append(entries, e)
		}
		m, err := FromEntries(rows, cols, entries)
		if err != nil {
			return false
		}
		// Every CSC entry must match the CSR value it points at, and
		// column walks must enumerate exactly NNZ entries.
		var count int
		for j := 0; j < cols; j++ {
			rws, pos := m.Col(j)
			for x, i := range rws {
				v, ok := m.At(int(i), j)
				if !ok || v != m.ValAt(pos[x]) {
					return false
				}
				count++
			}
		}
		return count == m.NNZ()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatrices(t, m, m2)
}

func TestTextRoundTrip(t *testing.T) {
	m := smallMatrix(t)
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatrices(t, m, m2)
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a matrix file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadTextRejectsBadLines(t *testing.T) {
	for _, in := range []string{
		"",
		"1 1 1\n0 0\n",
		"1 1 1\nx 0 1\n",
		"1 1 2\n0 0 1\n", // nnz mismatch
	} {
		if _, err := ReadText(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func assertEqualMatrices(t *testing.T, a, b *Matrix) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %d×%d/%d vs %d×%d/%d",
			a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())
	}
	ae := a.Entries(nil)
	be := b.Entries(nil)
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	rows, cols := 2000, 500
	entries := make([]Entry, 0, 50000)
	used := map[[2]int32]bool{}
	for len(entries) < 50000 {
		e := Entry{Row: int32(r.Intn(rows)), Col: int32(r.Intn(cols)), Val: 1}
		key := [2]int32{e.Row, e.Col}
		if used[key] {
			continue
		}
		used[key] = true
		entries = append(entries, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ents := append([]Entry(nil), entries...)
		if _, err := FromEntries(rows, cols, ents); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFromEntriesOrderInvariance: the counting-sort build must produce
// the identical matrix no matter how the input entries are ordered,
// and must not modify the caller's slice.
func TestFromEntriesOrderInvariance(t *testing.T) {
	rows, cols := 37, 23
	var entries []Entry
	for i := 0; i < rows; i++ {
		for j := (i * 3) % 5; j < cols; j += 3 + i%4 {
			entries = append(entries, Entry{Row: int32(i), Col: int32(j), Val: float64(i*100 + j)})
		}
	}
	want, err := FromEntries(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	// A few deterministic shuffles, including fully reversed input.
	perms := [][]Entry{make([]Entry, len(entries)), make([]Entry, len(entries))}
	for i, e := range entries {
		perms[0][len(entries)-1-i] = e
		perms[1][(i*7919)%len(entries)] = e
	}
	for pi, shuffled := range perms {
		snapshot := append([]Entry(nil), shuffled...)
		got, err := FromEntries(rows, cols, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i := range shuffled {
			if shuffled[i] != snapshot[i] {
				t.Fatalf("perm %d: input slice modified at %d", pi, i)
			}
		}
		for i := 0; i < rows; i++ {
			wc, wv := want.Row(i)
			gc, gv := got.Row(i)
			if len(wc) != len(gc) {
				t.Fatalf("perm %d row %d: degree %d vs %d", pi, i, len(gc), len(wc))
			}
			for x := range wc {
				if wc[x] != gc[x] || wv[x] != gv[x] {
					t.Fatalf("perm %d row %d entry %d: (%d,%v) vs (%d,%v)",
						pi, i, x, gc[x], gv[x], wc[x], wv[x])
				}
				if x > 0 && gc[x] <= gc[x-1] {
					t.Fatalf("perm %d row %d: columns not ascending at %d", pi, i, x)
				}
			}
		}
	}
}

func TestFromEntriesDuplicateAnywhere(t *testing.T) {
	// Duplicates must be caught regardless of where they land in the
	// unsorted input.
	base := []Entry{{0, 1, 1}, {2, 0, 2}, {1, 1, 3}, {0, 0, 4}, {2, 2, 5}}
	for pos := 0; pos <= len(base); pos++ {
		entries := append([]Entry(nil), base[:pos]...)
		entries = append(entries, Entry{1, 1, 9}) // duplicates base[2]
		entries = append(entries, base[pos:]...)
		if _, err := FromEntries(3, 3, entries); err == nil {
			t.Fatalf("duplicate at position %d accepted", pos)
		}
	}
}

func BenchmarkFromEntries(b *testing.B) {
	const rows, cols, nnz = 20000, 4000, 400000
	entries := make([]Entry, nnz)
	rnd := uint64(1)
	for i := range entries {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		r := int32(rnd>>33) % rows
		rnd = rnd*6364136223846793005 + 1442695040888963407
		c := int32(rnd>>33) % cols
		// Unique synthetic coordinates: spread duplicates apart by
		// folding the index into the row.
		entries[i] = Entry{Row: (r + int32(i)%rows) % rows, Col: c, Val: float64(i)}
	}
	// Deduplicate once so the benchmark measures the success path.
	seen := map[int64]bool{}
	uniq := entries[:0]
	for _, e := range entries {
		k := int64(e.Row)*int64(cols) + int64(e.Col)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, e)
		}
	}
	entries = uniq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEntries(rows, cols, entries); err != nil {
			b.Fatal(err)
		}
	}
}
