// Package sparse implements the immutable sparse rating matrix used by
// every matrix-completion algorithm in this repository.
//
// A Matrix is built once from (row, col, value) triples and then
// compiled into both CSR (row-major) and CSC (column-major) layouts,
// because the algorithms need both views: SGD-style methods walk a
// user's row or an item's column, ALS/CCD++ need per-row and per-column
// gathers, and NOMAD partitions by user while processing by item. The
// CSC layout also carries, for every entry, its position in the CSR
// value array so per-rating state (residuals, update counts) stored in
// CSR order can be addressed from a column walk.
package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Entry is one observed rating: A[Row, Col] = Val.
type Entry struct {
	Row, Col int32
	Val      float64
}

// Matrix is an immutable sparse matrix in simultaneous CSR and CSC
// form. Construct with NewBuilder/Build or FromEntries.
type Matrix struct {
	rows, cols int
	nnz        int

	// CSR layout.
	rowPtr []int64
	colIdx []int32
	vals   []float64

	// CSC layout. cscToCSR[p] is the index into vals of the entry at
	// CSC position p, so column walks can address CSR-ordered
	// per-entry state.
	colPtr   []int64
	rowIdx   []int32
	cscToCSR []int64
}

// Builder accumulates entries for a Matrix.
type Builder struct {
	rows, cols int
	entries    []Entry
}

// NewBuilder returns a Builder for a rows×cols matrix. The expected
// number of entries may be 0 if unknown.
func NewBuilder(rows, cols, expected int) *Builder {
	return &Builder{rows: rows, cols: cols, entries: make([]Entry, 0, expected)}
}

// Add appends one entry. Bounds are validated at Build time.
func (b *Builder) Add(row, col int, val float64) {
	b.entries = append(b.entries, Entry{Row: int32(row), Col: int32(col), Val: val})
}

// Len reports the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Build compiles the accumulated entries into a Matrix. Duplicate
// (row, col) pairs are rejected; out-of-range indices are errors.
// The builder must not be reused afterwards.
func (b *Builder) Build() (*Matrix, error) {
	return FromEntries(b.rows, b.cols, b.entries)
}

// FromEntries compiles a Matrix directly from a slice of entries,
// which may arrive in any order and is not modified. The row-major
// ordering is established by a two-pass counting sort (stable by
// column, then by row), so the build is O(nnz + rows + cols) rather
// than the O(nnz·log nnz) of a comparison sort — the difference is
// minutes on netflix-scale loads. Duplicate (row, col) pairs are
// rejected.
func FromEntries(rows, cols int, entries []Entry) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid shape %d×%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %d×%d", e.Row, e.Col, rows, cols)
		}
	}
	nnz := len(entries)
	m := &Matrix{
		rows:   rows,
		cols:   cols,
		nnz:    nnz,
		rowPtr: make([]int64, rows+1),
		colIdx: make([]int32, nnz),
		vals:   make([]float64, nnz),
	}
	for _, e := range entries {
		m.rowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	// The permutation scratch uses int32 indices whenever nnz fits —
	// 4 bytes per entry of transient memory instead of 8, which at
	// netflix/hugewiki scale is the difference between fitting and
	// paging — with an int64 path for matrices beyond 2³¹-1 entries.
	var err error
	if nnz <= math.MaxInt32 {
		err = fillSorted(m, entries, make([]int32, nnz))
	} else {
		err = fillSorted(m, entries, make([]int64, nnz))
	}
	if err != nil {
		return nil, err
	}
	m.buildCSC()
	return m, nil
}

// fillSorted writes entries into the CSR arrays in row-major,
// column-ascending order using a two-pass counting sort with byCol as
// the permutation scratch. m.rowPtr must already hold the row offsets.
func fillSorted[I int32 | int64](m *Matrix, entries []Entry, byCol []I) error {
	// Pass 1: stable counting sort of entry indices by column.
	colNext := make([]int64, m.cols+1)
	for _, e := range entries {
		colNext[e.Col+1]++
	}
	for j := 0; j < m.cols; j++ {
		colNext[j+1] += colNext[j]
	}
	for x, e := range entries {
		byCol[colNext[e.Col]] = I(x)
		colNext[e.Col]++
	}
	// Pass 2: scatter the column-ordered indices by row. Stability
	// makes columns ascend within each row, which is also what exposes
	// duplicates as adjacent equal columns during the fill.
	rowNext := make([]int64, m.rows)
	copy(rowNext, m.rowPtr[:m.rows])
	for _, x := range byCol {
		e := entries[x]
		p := rowNext[e.Row]
		if p > m.rowPtr[e.Row] && m.colIdx[p-1] == e.Col {
			return fmt.Errorf("sparse: duplicate entry (%d,%d)", e.Row, e.Col)
		}
		m.colIdx[p] = e.Col
		m.vals[p] = e.Val
		rowNext[e.Row] = p + 1
	}
	return nil
}

// buildCSC derives the column-major view from the CSR arrays.
func (m *Matrix) buildCSC() {
	m.colPtr = make([]int64, m.cols+1)
	m.rowIdx = make([]int32, m.nnz)
	m.cscToCSR = make([]int64, m.nnz)
	for _, c := range m.colIdx {
		m.colPtr[c+1]++
	}
	for j := 0; j < m.cols; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	next := make([]int64, m.cols)
	copy(next, m.colPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.colIdx[p]
			q := next[j]
			next[j]++
			m.rowIdx[q] = int32(i)
			m.cscToCSR[q] = p
		}
	}
}

// Rows returns the number of rows (users).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (items).
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return m.nnz }

// Row returns the column indices and values of row i. The returned
// slices alias internal storage and must not be modified.
func (m *Matrix) Row(i int) (cols []int32, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowRange returns the half-open CSR position range [lo, hi) of row
// i's entries. Positions index Vals and any caller-maintained
// per-entry state stored in CSR order (e.g. CCD++ residuals); entry x
// of Row(i) lives at position lo+x.
func (m *Matrix) RowRange(i int) (lo, hi int64) {
	return m.rowPtr[i], m.rowPtr[i+1]
}

// Col returns the row indices of column j together with, for each
// entry, its position in the CSR value array (usable with Val/ValAt
// and for addressing CSR-ordered per-entry state). The returned slices
// alias internal storage and must not be modified.
func (m *Matrix) Col(j int) (rows []int32, csrPos []int64) {
	lo, hi := m.colPtr[j], m.colPtr[j+1]
	return m.rowIdx[lo:hi], m.cscToCSR[lo:hi]
}

// ValAt returns the value stored at CSR position p (as yielded by Col).
func (m *Matrix) ValAt(p int64) float64 { return m.vals[p] }

// RowDegree returns the number of entries in row i (|Ωᵢ| in the paper).
func (m *Matrix) RowDegree(i int) int { return int(m.rowPtr[i+1] - m.rowPtr[i]) }

// ColDegree returns the number of entries in column j (|Ω̄ⱼ|).
func (m *Matrix) ColDegree(j int) int { return int(m.colPtr[j+1] - m.colPtr[j]) }

// Entries appends all entries in row-major order to dst and returns it.
func (m *Matrix) Entries(dst []Entry) []Entry {
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			dst = append(dst, Entry{Row: int32(i), Col: m.colIdx[p], Val: m.vals[p]})
		}
	}
	return dst
}

// At returns the value at (i, j) and whether it is present, by binary
// search within row i. Intended for tests, not hot paths.
func (m *Matrix) At(i, j int) (float64, bool) {
	cols, vals := m.Row(i)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < int32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == int32(j) {
		return vals[lo], true
	}
	return 0, false
}

// Transpose returns a new Matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	entries := make([]Entry, 0, m.nnz)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			entries = append(entries, Entry{Row: m.colIdx[p], Col: int32(i), Val: m.vals[p]})
		}
	}
	t, err := FromEntries(m.cols, m.rows, entries)
	if err != nil {
		// Impossible: entries come from a valid matrix.
		panic("sparse: transpose of valid matrix failed: " + err.Error())
	}
	return t
}

// Vals returns the CSR-ordered value array. The slice aliases internal
// storage; callers that need per-entry scratch state (e.g. CCD++
// residuals) should copy it.
func (m *Matrix) Vals() []float64 { return m.vals }

// ErrEmpty is returned by operations that require at least one entry.
var ErrEmpty = errors.New("sparse: matrix has no entries")

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// RowStats returns degree statistics over all rows.
func (m *Matrix) RowStats() DegreeStats { return m.stats(m.rows, m.RowDegree) }

// ColStats returns degree statistics over all columns.
func (m *Matrix) ColStats() DegreeStats { return m.stats(m.cols, m.ColDegree) }

func (m *Matrix) stats(n int, deg func(int) int) DegreeStats {
	if n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: deg(0), Max: deg(0)}
	var total int
	for i := 0; i < n; i++ {
		d := deg(i)
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = float64(total) / float64(n)
	return s
}
