package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
)

// Binary format:
//
//	magic  uint32 = 0x4e4d4446 ("NMDF")
//	rows   int64
//	cols   int64
//	nnz    int64
//	then nnz records of (row int32, col int32, val float64)
//
// all little-endian.
const binaryMagic uint32 = 0x4e4d4446

// WriteBinary writes m in the repository's binary matrix format.
func (m *Matrix) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := struct {
		Magic           uint32
		_               uint32
		Rows, Cols, NNZ int64
	}{Magic: binaryMagic, Rows: int64(m.rows), Cols: int64(m.cols), NNZ: int64(m.nnz)}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("sparse: write header: %w", err)
	}
	rec := struct {
		Row, Col int32
		Val      float64
	}{}
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			rec.Row, rec.Col, rec.Val = int32(i), m.colIdx[p], m.vals[p]
			if err := binary.Write(bw, binary.LittleEndian, &rec); err != nil {
				return fmt.Errorf("sparse: write entry: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a Matrix written by WriteBinary.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr struct {
		Magic           uint32
		_               uint32
		Rows, Cols, NNZ int64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("sparse: read header: %w", err)
	}
	if hdr.Magic != binaryMagic {
		return nil, fmt.Errorf("sparse: bad magic %#x", hdr.Magic)
	}
	if hdr.Rows <= 0 || hdr.Cols <= 0 || hdr.NNZ < 0 {
		return nil, fmt.Errorf("sparse: corrupt header %d×%d nnz=%d", hdr.Rows, hdr.Cols, hdr.NNZ)
	}
	entries := make([]Entry, hdr.NNZ)
	var rec struct {
		Row, Col int32
		Val      float64
	}
	for i := range entries {
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("sparse: read entry %d: %w", i, err)
		}
		entries[i] = Entry{Row: rec.Row, Col: rec.Col, Val: rec.Val}
	}
	return FromEntries(int(hdr.Rows), int(hdr.Cols), entries)
}

// WriteText writes m as "row col value" lines, one entry per line,
// preceded by a "%d %d %d" header line of rows, cols, nnz.
func (m *Matrix) WriteText(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.rows, m.cols, m.nnz); err != nil {
		return err
	}
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", i, m.colIdx[p], m.vals[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText reads the text format written by WriteText.
func ReadText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty input")
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: bad header %q: %w", sc.Text(), err)
	}
	entries := make([]Entry, 0, nnz)
	line := 1
	for sc.Scan() {
		line++
		txt := sc.Text()
		if len(txt) == 0 {
			continue
		}
		var i, j int
		var v float64
		f1, f2, f3, ok := splitThree(txt)
		if !ok {
			return nil, fmt.Errorf("sparse: line %d: want 3 fields, got %q", line, txt)
		}
		var err error
		if i, err = strconv.Atoi(f1); err != nil {
			return nil, fmt.Errorf("sparse: line %d row: %w", line, err)
		}
		if j, err = strconv.Atoi(f2); err != nil {
			return nil, fmt.Errorf("sparse: line %d col: %w", line, err)
		}
		if v, err = strconv.ParseFloat(f3, 64); err != nil {
			return nil, fmt.Errorf("sparse: line %d val: %w", line, err)
		}
		entries = append(entries, Entry{Row: int32(i), Col: int32(j), Val: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) != nnz {
		return nil, fmt.Errorf("sparse: header declared %d entries, found %d", nnz, len(entries))
	}
	return FromEntries(rows, cols, entries)
}

// splitThree splits s into exactly three space-separated fields without
// allocating a slice, the hot path of ReadText.
func splitThree(s string) (a, b, c string, ok bool) {
	i := 0
	next := func() (string, bool) {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		start := i
		for i < len(s) && s[i] != ' ' {
			i++
		}
		if start == i {
			return "", false
		}
		return s[start:i], true
	}
	if a, ok = next(); !ok {
		return
	}
	if b, ok = next(); !ok {
		return
	}
	if c, ok = next(); !ok {
		return
	}
	for i < len(s) && s[i] == ' ' {
		i++
	}
	if i != len(s) {
		return "", "", "", false
	}
	return a, b, c, true
}
