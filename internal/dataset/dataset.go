// Package dataset provides the training/test rating collections used
// by the experiments, and synthetic generators that reproduce the
// *shape* of the paper's three proprietary benchmark datasets
// (Table 2: Netflix, Yahoo! Music, Hugewiki).
//
// The real datasets are not redistributable, so we synthesize data the
// way §5.5 of the paper does for its weak-scaling experiment: ground
// truth user/item factors are drawn from an isotropic Gaussian, each
// observed rating is ⟨wᵢ, hⱼ⟩ plus Gaussian noise (σ = 0.1), and the
// per-user / per-item rating counts follow heavy-tailed (Zipf-like)
// distributions mimicking the empirical degree skew of the originals.
// What matters to the algorithms under study is the m:n:|Ω| shape and
// the degree skew — both are preserved at any scale factor.
package dataset

import (
	"fmt"
	"math"

	"nomad/internal/rng"
	"nomad/internal/sparse"
)

// Dataset is a train/test split over a rating matrix.
type Dataset struct {
	Name  string
	Train *sparse.Matrix
	Test  []sparse.Entry
}

// Rows returns the number of users.
func (d *Dataset) Rows() int { return d.Train.Rows() }

// Cols returns the number of items.
func (d *Dataset) Cols() int { return d.Train.Cols() }

// Spec describes a synthetic dataset.
type Spec struct {
	Name     string
	Rows     int   // users (m)
	Cols     int   // items (n)
	NNZ      int64 // total observed ratings before the train/test split
	RowSkew  float64
	ColSkew  float64 // Zipf exponents shaping the degree distributions
	TrueRank int     // rank of the ground-truth factors
	NoiseSD  float64 // σ of the additive rating noise
	TestFrac float64 // fraction of ratings held out for testing
	Quantize bool    // round ratings onto a 1..5 star scale
	Seed     uint64
}

// Shape constants of the paper's Table 2 datasets.
const (
	netflixRows = 2_649_429
	netflixCols = 17_770
	netflixNNZ  = 99_072_112

	yahooRows = 1_999_990
	yahooCols = 624_961
	yahooNNZ  = 252_800_275

	hugewikiRows = 50_082_603
	hugewikiCols = 39_780
	hugewikiNNZ  = 2_736_496_604
)

// scaled shrinks a Table 2 shape by the given factor, preserving the
// mean ratings-per-user and ratings-per-item (rows, cols and nnz all
// scale linearly), with floors so tiny scales stay usable.
func scaled(name string, rows, cols int, nnz int64, scale float64, skewR, skewC float64, quantize bool) Spec {
	if scale <= 0 {
		panic("dataset: scale must be positive")
	}
	r := int(float64(rows) * scale)
	c := int(float64(cols) * scale)
	z := int64(float64(nnz) * scale)
	if r < 32 {
		r = 32
	}
	if c < 16 {
		c = 16
	}
	if z < int64(4*r) {
		z = int64(4 * r)
	}
	// Dimensions shrink linearly but the cell count shrinks
	// quadratically, so tiny scales can push density past what
	// rejection sampling (or the matrix itself) can hold. Add users
	// rather than dropping ratings: that preserves the profile's
	// defining ratings-per-item ratio and the m ≫ n shape, at the cost
	// of a lower ratings-per-user mean (documented in DESIGN.md).
	if maxZ := int64(r) * int64(c) / 4; z > maxZ {
		r = int(4*z/int64(c)) + 1
	}
	return Spec{
		Name:     name,
		Rows:     r,
		Cols:     c,
		NNZ:      z,
		RowSkew:  skewR,
		ColSkew:  skewC,
		TrueRank: 16,
		NoiseSD:  0.1,
		TestFrac: 0.1,
		Quantize: quantize,
		Seed:     42,
	}
}

// NetflixLike returns a spec mimicking the Netflix dataset's shape
// (m ≫ n, ≈5.6K ratings per item, 1–5 star values) at the given scale.
func NetflixLike(scale float64) Spec {
	return scaled("netflix-like", netflixRows, netflixCols, netflixNNZ, scale, 0.9, 0.9, true)
}

// YahooLike returns a spec mimicking Yahoo! Music's shape: a very
// large item set with only ≈404 ratings per item, which makes
// distributed runs communication-bound (§5.3).
func YahooLike(scale float64) Spec {
	return scaled("yahoo-like", yahooRows, yahooCols, yahooNNZ, scale, 0.8, 1.0, false)
}

// HugewikiLike returns a spec mimicking Hugewiki's shape: few items
// with ≈69K ratings each, which makes runs compute-bound.
func HugewikiLike(scale float64) Spec {
	return scaled("hugewiki-like", hugewikiRows, hugewikiCols, hugewikiNNZ, scale, 0.7, 0.8, false)
}

// LongtailLike returns a long-tail catalog shape: an item set an
// order of magnitude larger than the user set with only ≈4.5 ratings
// per item (think storefront catalogs where most items have a handful
// of interactions). With so few ratings per token, per-token transport
// overhead — not SGD arithmetic — dominates NOMAD's worker loop, which
// makes this the token-transport stress workload of the benchmark
// suite (the shared-memory analog of what §5.3 says Yahoo's shape does
// to the network layer).
func LongtailLike(scale float64) Spec {
	return scaled("longtail-like", 80_000, 600_000, 2_700_000, scale, 0.6, 0.6, false)
}

// Grow reproduces the §5.5 weak-scaling generator: the item count is
// fixed at (scaled) Netflix's 17,770 while users and ratings grow
// proportionally to the number of machines.
func Grow(machines int, scale float64) Spec {
	if machines < 1 {
		panic("dataset: machines must be >= 1")
	}
	s := scaled(fmt.Sprintf("grow-%dx", machines),
		480_189*machines, netflixCols, int64(netflixNNZ)*int64(machines), scale, 0.9, 0.9, false)
	return s
}

// ByName returns the named profile ("netflix", "yahoo", "hugewiki",
// "longtail") at the given scale.
func ByName(name string, scale float64) (Spec, error) {
	switch name {
	case "netflix", "netflix-like":
		return NetflixLike(scale), nil
	case "yahoo", "yahoo-like":
		return YahooLike(scale), nil
	case "hugewiki", "hugewiki-like":
		return HugewikiLike(scale), nil
	case "longtail", "longtail-like":
		return LongtailLike(scale), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown profile %q", name)
	}
}

// truth deterministically regenerates the ground-truth factor row for
// index i without storing the full factor matrix: each row is a fresh
// PRNG stream derived from the dataset seed. Coordinates are scaled so
// ⟨wᵢ, hⱼ⟩ has unit variance regardless of rank.
func truth(seed uint64, side uint64, i int, rank int, out []float64) {
	r := rng.New(seed ^ side ^ uint64(i)*0x9e3779b97f4a7c15)
	sd := 1 / math.Sqrt(math.Sqrt(float64(rank))) // (1/⁴√r)² · r = √r... see below
	// Var(⟨w,h⟩) = r · Var(w)·Var(h) = r · sd⁴ = 1 when sd = r^(-1/4).
	for l := 0; l < rank; l++ {
		out[l] = r.Normal(0, sd)
	}
}

// Generate synthesizes the dataset described by the spec.
func (s Spec) Generate() (*Dataset, error) {
	if s.Rows <= 0 || s.Cols <= 0 || s.NNZ <= 0 {
		return nil, fmt.Errorf("dataset: invalid spec %+v", s)
	}
	if s.NNZ > int64(s.Rows)*int64(s.Cols) {
		return nil, fmt.Errorf("dataset: nnz %d exceeds matrix capacity", s.NNZ)
	}
	if s.TestFrac < 0 || s.TestFrac >= 1 {
		return nil, fmt.Errorf("dataset: test fraction %v out of [0,1)", s.TestFrac)
	}
	r := rng.New(s.Seed)

	// Degree-weight tables: Zipf weights over shuffled ranks so that
	// heavy users/items are scattered across the index space.
	rowW := zipfWeights(r, s.Rows, s.RowSkew)
	colW := zipfWeights(r, s.Cols, s.ColSkew)
	rowAlias := rng.NewAlias(r.Split(1), rowW)
	colAlias := rng.NewAlias(r.Split(2), colW)

	// Sample distinct (i, j) pairs.
	seen := make(map[uint64]struct{}, s.NNZ)
	entries := make([]sparse.Entry, 0, s.NNZ)
	wRow := make([]float64, s.TrueRank)
	hRow := make([]float64, s.TrueRank)
	noise := r.Split(3)
	attempts := int64(0)
	maxAttempts := s.NNZ * 50
	for int64(len(entries)) < s.NNZ {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("dataset: rejection sampling stalled at %d/%d entries (matrix too dense for skew)", len(entries), s.NNZ)
		}
		i := rowAlias.Sample()
		j := colAlias.Sample()
		key := uint64(i)*uint64(s.Cols) + uint64(j)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		truth(s.Seed, 0x5555555555555555, i, s.TrueRank, wRow)
		truth(s.Seed, 0xaaaaaaaaaaaaaaaa, j, s.TrueRank, hRow)
		var dot float64
		for l := 0; l < s.TrueRank; l++ {
			dot += wRow[l] * hRow[l]
		}
		v := dot + noise.Normal(0, s.NoiseSD)
		if s.Quantize {
			v = math.Round(3.0 + 1.1*v)
			if v < 1 {
				v = 1
			}
			if v > 5 {
				v = 5
			}
		}
		entries = append(entries, sparse.Entry{Row: int32(i), Col: int32(j), Val: v})
	}
	return split(s.Name, s.Rows, s.Cols, entries, s.TestFrac, r.Split(4))
}

// zipfWeights returns n Zipf(s) weights assigned to shuffled ranks.
func zipfWeights(r *rng.Source, n int, skew float64) []float64 {
	perm := make([]int, n)
	r.Perm(perm)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(perm[i]+1), -skew)
	}
	return w
}

// split partitions entries into train and test. Test entries whose
// user or item would otherwise be absent from the training set are
// moved back to train, so every test prediction is over trained rows.
func split(name string, rows, cols int, entries []sparse.Entry, frac float64, r *rng.Source) (*Dataset, error) {
	trainRowCount := make([]int32, rows)
	trainColCount := make([]int32, cols)
	isTest := make([]bool, len(entries))
	for x := range entries {
		if r.Float64() < frac {
			isTest[x] = true
		} else {
			trainRowCount[entries[x].Row]++
			trainColCount[entries[x].Col]++
		}
	}
	var train []sparse.Entry
	var test []sparse.Entry
	for x, e := range entries {
		if isTest[x] && trainRowCount[e.Row] > 0 && trainColCount[e.Col] > 0 {
			test = append(test, e)
		} else {
			train = append(train, e)
		}
	}
	tm, err := sparse.FromEntries(rows, cols, train)
	if err != nil {
		return nil, fmt.Errorf("dataset: building train matrix: %w", err)
	}
	return &Dataset{Name: name, Train: tm, Test: test}, nil
}

// FromMatrix builds a Dataset by randomly splitting an existing rating
// matrix into train and test portions.
func FromMatrix(name string, m *sparse.Matrix, testFrac float64, seed uint64) (*Dataset, error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, fmt.Errorf("dataset: test fraction %v out of [0,1)", testFrac)
	}
	entries := m.Entries(nil)
	return split(name, m.Rows(), m.Cols(), entries, testFrac, rng.New(seed))
}

// Stats describes a generated dataset for the Table 2 report.
type Stats struct {
	Name           string
	Rows, Cols     int
	TrainNNZ       int
	TestNNZ        int
	RatingsPerItem float64
	RatingsPerUser float64
	MaxItemDegree  int
	MaxUserDegree  int
}

// Stats summarizes the dataset.
func (d *Dataset) Stats() Stats {
	rs := d.Train.RowStats()
	cs := d.Train.ColStats()
	return Stats{
		Name:           d.Name,
		Rows:           d.Rows(),
		Cols:           d.Cols(),
		TrainNNZ:       d.Train.NNZ(),
		TestNNZ:        len(d.Test),
		RatingsPerItem: cs.Mean,
		RatingsPerUser: rs.Mean,
		MaxItemDegree:  cs.Max,
		MaxUserDegree:  rs.Max,
	}
}
