package dataset

import (
	"math"
	"testing"

	"nomad/internal/sparse"
)

func TestGenerateBasicShape(t *testing.T) {
	spec := NetflixLike(0.001)
	d, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != spec.Rows || d.Cols() != spec.Cols {
		t.Fatalf("shape %d×%d, want %d×%d", d.Rows(), d.Cols(), spec.Rows, spec.Cols)
	}
	total := d.Train.NNZ() + len(d.Test)
	if int64(total) != spec.NNZ {
		t.Fatalf("total entries %d, want %d", total, spec.NNZ)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := YahooLike(0.0002)
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Train.NNZ() != b.Train.NNZ() || len(a.Test) != len(b.Test) {
		t.Fatal("same spec produced different splits")
	}
	ae := a.Train.Entries(nil)
	be := b.Train.Entries(nil)
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same spec produced different entries")
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	s1 := NetflixLike(0.0005)
	s2 := s1
	s2.Seed = 777
	a, _ := s1.Generate()
	b, _ := s2.Generate()
	ae := a.Train.Entries(nil)
	be := b.Train.Entries(nil)
	same := 0
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i] == be[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTestEntriesCoveredByTrain(t *testing.T) {
	d, err := NetflixLike(0.001).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Test) == 0 {
		t.Fatal("no test entries generated")
	}
	for _, e := range d.Test {
		if d.Train.RowDegree(int(e.Row)) == 0 {
			t.Fatalf("test user %d has no training ratings", e.Row)
		}
		if d.Train.ColDegree(int(e.Col)) == 0 {
			t.Fatalf("test item %d has no training ratings", e.Col)
		}
	}
}

func TestQuantizedValuesAreStars(t *testing.T) {
	d, err := NetflixLike(0.001).Generate()
	if err != nil {
		t.Fatal(err)
	}
	check := func(v float64) {
		if v < 1 || v > 5 || v != math.Trunc(v) {
			t.Fatalf("quantized rating %v not an integer star", v)
		}
	}
	for _, e := range d.Train.Entries(nil) {
		check(e.Val)
	}
	for _, e := range d.Test {
		check(e.Val)
	}
}

func TestUnquantizedValuesContinuous(t *testing.T) {
	d, err := YahooLike(0.0002).Generate()
	if err != nil {
		t.Fatal(err)
	}
	integers := 0
	ents := d.Train.Entries(nil)
	for _, e := range ents {
		if e.Val == math.Trunc(e.Val) {
			integers++
		}
	}
	if integers == len(ents) {
		t.Fatal("yahoo-like data looks quantized")
	}
}

// TestShapeRatiosPreserved is the Table 2 fidelity check: the defining
// ratios of each profile must hold at small scale.
func TestShapeRatiosPreserved(t *testing.T) {
	cases := []struct {
		spec          Spec
		wantPerItemLo float64
		wantPerItemHi float64
	}{
		// Netflix: 99.07M/17.77K ≈ 5575 ratings/item; rows and nnz both
		// scale linearly so the ratio is preserved exactly by the spec.
		{NetflixLike(0.001), 4000, 7000},
		// Yahoo: ≈404/item.
		{YahooLike(0.0002), 250, 600},
	}
	for _, c := range cases {
		perItem := float64(c.spec.NNZ) / float64(c.spec.Cols)
		if perItem < c.wantPerItemLo || perItem > c.wantPerItemHi {
			t.Errorf("%s: ratings/item = %.0f, want in [%.0f, %.0f]",
				c.spec.Name, perItem, c.wantPerItemLo, c.wantPerItemHi)
		}
		if c.spec.Rows <= c.spec.Cols {
			t.Errorf("%s: rows %d not > cols %d", c.spec.Name, c.spec.Rows, c.spec.Cols)
		}
	}
}

func TestDegreeSkew(t *testing.T) {
	d, err := NetflixLike(0.002).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cs := d.Train.ColStats()
	// Heavy-tailed: the busiest item must be far above the mean.
	if float64(cs.Max) < 3*cs.Mean {
		t.Errorf("item degree distribution not skewed: max=%d mean=%.1f", cs.Max, cs.Mean)
	}
}

func TestGroundTruthSignal(t *testing.T) {
	// The generated values must carry low-rank signal, not pure noise:
	// their variance should be near Var(⟨w,h⟩)+σ² ≈ 1.01.
	d, err := YahooLike(0.0005).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ents := d.Train.Entries(nil)
	var sum, sumSq float64
	for _, e := range ents {
		sum += e.Val
		sumSq += e.Val * e.Val
	}
	n := float64(len(ents))
	variance := sumSq/n - (sum/n)*(sum/n)
	if variance < 0.5 || variance > 2.0 {
		t.Errorf("rating variance %.3f outside [0.5, 2.0]; ground truth scaling broken", variance)
	}
}

func TestGrowScalesUsersNotItems(t *testing.T) {
	g1 := Grow(1, 0.001)
	g4 := Grow(4, 0.001)
	if g4.Cols != g1.Cols {
		t.Fatalf("Grow changed item count: %d vs %d", g4.Cols, g1.Cols)
	}
	if g4.Rows <= g1.Rows {
		t.Fatalf("Grow did not scale users: %d vs %d", g4.Rows, g1.Rows)
	}
	if g4.NNZ <= g1.NNZ {
		t.Fatalf("Grow did not scale ratings: %d vs %d", g4.NNZ, g1.NNZ)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"netflix", "yahoo", "hugewiki"} {
		if _, err := ByName(name, 0.01); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("movielens", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestFromMatrix(t *testing.T) {
	b := sparse.NewBuilder(10, 10, 0)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if (i+j)%2 == 0 {
				b.Add(i, j, float64(i+j))
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromMatrix("half", m, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Train.NNZ()+len(d.Test) != m.NNZ() {
		t.Fatal("split lost entries")
	}
	if len(d.Test) == 0 {
		t.Fatal("no test entries")
	}
}

func TestFromMatrixBadFraction(t *testing.T) {
	m, _ := sparse.FromEntries(2, 2, []sparse.Entry{{Row: 0, Col: 0, Val: 1}})
	if _, err := FromMatrix("x", m, 1.0, 1); err == nil {
		t.Fatal("test fraction 1.0 accepted")
	}
	if _, err := FromMatrix("x", m, -0.1, 1); err == nil {
		t.Fatal("negative test fraction accepted")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	bad := Spec{Rows: 0, Cols: 10, NNZ: 5}
	if _, err := bad.Generate(); err == nil {
		t.Fatal("zero-row spec accepted")
	}
	bad = Spec{Rows: 2, Cols: 2, NNZ: 100, TrueRank: 2}
	if _, err := bad.Generate(); err == nil {
		t.Fatal("overfull spec accepted")
	}
}

func TestStats(t *testing.T) {
	d, err := NetflixLike(0.001).Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Rows != d.Rows() || s.Cols != d.Cols() || s.TrainNNZ != d.Train.NNZ() {
		t.Fatalf("stats inconsistent: %+v", s)
	}
	if s.RatingsPerItem <= 0 || s.RatingsPerUser <= 0 {
		t.Fatalf("stats degenerate: %+v", s)
	}
}
