package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestDeliveryInstant(t *testing.T) {
	n := New(2, Instant())
	n.Send(0, 1, 100, "hello")
	msg := <-n.Recv(1)
	if msg.From != 0 || msg.To != 1 || msg.Size != 100 || msg.Payload != "hello" {
		t.Fatalf("bad message: %+v", msg)
	}
	n.Shutdown()
}

func TestCounters(t *testing.T) {
	n := New(2, Instant())
	n.Send(0, 1, 64, nil)
	n.Send(1, 0, 36, nil)
	<-n.Recv(1)
	<-n.Recv(0)
	if n.BytesSent() != 100 {
		t.Fatalf("BytesSent = %d, want 100", n.BytesSent())
	}
	if n.MessagesSent() != 2 {
		t.Fatalf("MessagesSent = %d, want 2", n.MessagesSent())
	}
	n.Shutdown()
}

func TestPerSenderFIFO(t *testing.T) {
	n := New(2, Instant())
	const count = 1000
	for i := 0; i < count; i++ {
		n.Send(0, 1, 8, i)
	}
	for i := 0; i < count; i++ {
		msg := <-n.Recv(1)
		if msg.Payload.(int) != i {
			t.Fatalf("out of order: got %v at position %d", msg.Payload, i)
		}
	}
	n.Shutdown()
}

func TestShutdownClosesInboxesAfterDrain(t *testing.T) {
	n := New(2, Instant())
	n.Send(0, 1, 8, "last")
	done := make(chan bool)
	go func() {
		var sawLast, closed bool
		for msg := range n.Recv(1) {
			if msg.Payload == "last" {
				sawLast = true
			}
		}
		closed = true
		done <- sawLast && closed
	}()
	n.Shutdown()
	if !<-done {
		t.Fatal("receiver did not observe message then close")
	}
}

func TestSendAfterShutdownIsNoop(t *testing.T) {
	n := New(2, Instant())
	n.Shutdown()
	n.Send(0, 1, 8, nil) // must not panic or deadlock
}

func TestDoubleShutdown(t *testing.T) {
	n := New(1, Instant())
	n.Shutdown()
	n.Shutdown() // must be idempotent
}

func TestSendOutOfRangePanics(t *testing.T) {
	n := New(2, Instant())
	defer n.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(0, 5, 8, nil)
}

func TestLatencyDelaysDelivery(t *testing.T) {
	p := Profile{Name: "slow", Latency: 30 * time.Millisecond}
	n := New(2, p)
	start := time.Now()
	n.Send(0, 1, 8, nil)
	<-n.Recv(1)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("message arrived after %v, want >= ~30ms", elapsed)
	}
	n.Shutdown()
}

func TestBandwidthThrottles(t *testing.T) {
	// 1 MB over a 10 MB/s link must take >= ~100ms of serialization.
	p := Profile{Name: "thin", Bandwidth: 10e6}
	n := New(2, p)
	start := time.Now()
	n.Send(0, 1, 1_000_000, nil)
	n.Send(0, 1, 8, "marker") // queued behind the big one
	for msg := range n.Recv(1) {
		if msg.Payload == "marker" {
			break
		}
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("1MB over 10MB/s took only %v", elapsed)
	}
	n.Shutdown()
}

func TestManySendersNoLoss(t *testing.T) {
	const machines, per = 8, 500
	n := New(machines, Instant())
	var wg sync.WaitGroup
	for m := 0; m < machines; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(m, (m+1)%machines, 8, m*per+i)
			}
		}(m)
	}
	received := make(chan int, machines*per)
	var rg sync.WaitGroup
	for m := 0; m < machines; m++ {
		rg.Add(1)
		go func(m int) {
			defer rg.Done()
			for msg := range n.Recv(m) {
				received <- msg.Payload.(int)
			}
		}(m)
	}
	wg.Wait()
	n.Shutdown()
	rg.Wait()
	close(received)
	seen := make(map[int]bool)
	for v := range received {
		if seen[v] {
			t.Fatalf("message %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != machines*per {
		t.Fatalf("received %d of %d messages", len(seen), machines*per)
	}
}

func TestWireSizes(t *testing.T) {
	if VectorWireSize(100) != 808 {
		t.Fatalf("VectorWireSize(100) = %d", VectorWireSize(100))
	}
	if BlockWireSize(10, 100) != 16+8000 {
		t.Fatalf("BlockWireSize(10,100) = %d", BlockWireSize(10, 100))
	}
}

func TestProfiles(t *testing.T) {
	if HPC().Latency >= Commodity().Latency {
		t.Fatal("HPC latency should be below commodity")
	}
	if HPC().Bandwidth <= Commodity().Bandwidth {
		t.Fatal("HPC bandwidth should exceed commodity")
	}
}
