// Package netsim simulates the inter-machine network that the paper's
// distributed experiments run over (MVAPICH2 on the Stampede HPC
// cluster, MPICH2 over ~1 Gb/s Ethernet on AWS m1.xlarge nodes).
//
// Machines are goroutine groups in one process; what netsim adds is the
// *cost* of communication: every message is charged a per-message
// latency plus a serialization delay (size ÷ link bandwidth) on the
// sender's egress link, so senders with more outbound traffic really do
// fall behind, exactly the effect that separates the commodity-cluster
// results (Fig 11) from the HPC results (Fig 8).
//
// Delays shorter than a scheduling quantum are accumulated as debt and
// slept in batches, so modelled bandwidth stays accurate even when
// individual messages are microseconds long.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a network technology.
type Profile struct {
	Name      string
	Latency   time.Duration // one-way propagation + software stack delay
	Bandwidth float64       // bytes per second per egress link; 0 = infinite
}

// HPC models a high-performance interconnect (InfiniBand-class):
// microsecond latency, multi-GB/s links.
func HPC() Profile {
	return Profile{Name: "hpc", Latency: 5 * time.Microsecond, Bandwidth: 3e9}
}

// Commodity models the paper's AWS setup: ~1 Gb/s Ethernet with
// sub-millisecond but substantial latency.
func Commodity() Profile {
	return Profile{Name: "commodity", Latency: 300 * time.Microsecond, Bandwidth: 125e6}
}

// Instant is a zero-cost network for unit tests.
func Instant() Profile { return Profile{Name: "instant"} }

// Message is one delivered network message.
type Message struct {
	From, To int
	Size     int // modelled wire size in bytes
	Payload  any
}

// Network connects a fixed set of machines. Construct with New; it
// must be Shutdown when the run finishes.
type Network struct {
	profile  Profile
	machines int

	egress  []chan Message // per-sender serialization queue
	inbox   []chan Message
	wg      sync.WaitGroup
	closed  atomic.Bool
	pending sync.WaitGroup // in-flight latency timers

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

// New creates a network of the given number of machines.
func New(machines int, p Profile) *Network {
	if machines <= 0 {
		panic(fmt.Sprintf("netsim: invalid machine count %d", machines))
	}
	n := &Network{
		profile:  p,
		machines: machines,
		egress:   make([]chan Message, machines),
		inbox:    make([]chan Message, machines),
	}
	for i := 0; i < machines; i++ {
		n.egress[i] = make(chan Message, 1024)
		n.inbox[i] = make(chan Message, 1024)
		n.wg.Add(1)
		go n.courier(i)
	}
	return n
}

// courier serializes machine id's outbound messages onto its egress
// link, then schedules delivery after the propagation latency.
func (n *Network) courier(id int) {
	defer n.wg.Done()
	var debt time.Duration // accumulated un-slept serialization time
	const quantum = 200 * time.Microsecond
	for msg := range n.egress[id] {
		if n.profile.Bandwidth > 0 {
			debt += time.Duration(float64(msg.Size) / n.profile.Bandwidth * float64(time.Second))
			if debt >= quantum {
				time.Sleep(debt)
				debt = 0
			}
		}
		n.deliver(msg)
	}
	if debt > 0 {
		time.Sleep(debt)
	}
}

// deliver hands the message to the destination inbox after the
// latency, without blocking the egress link.
func (n *Network) deliver(msg Message) {
	if n.profile.Latency <= 0 {
		n.inbox[msg.To] <- msg
		return
	}
	n.pending.Add(1)
	time.AfterFunc(n.profile.Latency, func() {
		defer n.pending.Done()
		n.inbox[msg.To] <- msg
	})
}

// Machines returns the number of machines on the network.
func (n *Network) Machines() int { return n.machines }

// Send transmits a payload of the given modelled size from one machine
// to another. It panics on out-of-range machine ids and is a no-op
// after Shutdown.
func (n *Network) Send(from, to, size int, payload any) {
	if from < 0 || from >= n.machines || to < 0 || to >= n.machines {
		panic(fmt.Sprintf("netsim: send %d→%d out of range", from, to))
	}
	if n.closed.Load() {
		return
	}
	n.msgsSent.Add(1)
	n.bytesSent.Add(int64(size))
	n.egress[from] <- Message{From: from, To: to, Size: size, Payload: payload}
}

// Recv returns machine id's inbox channel. The channel is closed by
// Shutdown after all in-flight messages have been delivered.
func (n *Network) Recv(id int) <-chan Message { return n.inbox[id] }

// Shutdown stops accepting sends, waits for in-flight messages to be
// delivered, and closes all inboxes. Receivers should drain their
// inbox until it is closed.
func (n *Network) Shutdown() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	for _, e := range n.egress {
		close(e)
	}
	n.wg.Wait()      // couriers done scheduling deliveries
	n.pending.Wait() // latency timers fired
	for _, in := range n.inbox {
		close(in)
	}
}

// BytesSent returns the cumulative modelled bytes accepted for sending.
func (n *Network) BytesSent() int64 { return n.bytesSent.Load() }

// MessagesSent returns the cumulative number of messages sent.
func (n *Network) MessagesSent() int64 { return n.msgsSent.Load() }

// VectorWireSize returns the modelled wire size of one nomadic (j, hⱼ)
// token of rank k: a 4-byte item index, a 4-byte queue-length payload
// (the §3.3 load-balancing hint) and k float64 coordinates.
func VectorWireSize(k int) int { return 8 + 8*k }

// BlockWireSize returns the modelled wire size of a factor block of
// rows×k float64s plus a small header, as exchanged by the
// bulk-synchronous baselines.
func BlockWireSize(rows, k int) int { return 16 + 8*rows*k }
