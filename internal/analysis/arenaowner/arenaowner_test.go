package arenaowner_test

import (
	"testing"

	"nomad/internal/analysis/analysistest"
	"nomad/internal/analysis/arenaowner"
)

func TestArenaOwner(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaowner.Analyzer, "arenaowner/a")
}
