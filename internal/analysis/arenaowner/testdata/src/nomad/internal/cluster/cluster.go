// Package cluster is a fixture stub of nomad/internal/cluster: the
// arena types and the ownership-relevant slice of their method sets,
// with the real signatures, under the real import path.
package cluster

// Token is one (item, vector) payload.
type Token struct {
	Item int32
	Vec  []float64
}

// TokenBatch is a batch of token views, optionally owning its arena.
type TokenBatch struct {
	Tokens   []Token
	QueueLen int

	buf *BatchBuf
}

// Release returns an owned batch's arena to the pool.
func (b *TokenBatch) Release() { b.buf = nil }

// BatchBuf is the flat arena batches are built in.
type BatchBuf struct {
	items []int32
	vals  []float64
}

// NewBatchBuf returns a fresh arena.
func NewBatchBuf() *BatchBuf { return &BatchBuf{} }

// GetBatchBuf takes an arena from the shared pool.
func GetBatchBuf() *BatchBuf { return &BatchBuf{} }

// Release returns the arena to the shared pool.
func (b *BatchBuf) Release() {}

// Reset empties the arena for refill.
func (b *BatchBuf) Reset() { b.items = b.items[:0]; b.vals = b.vals[:0] }

// Len reports the number of buffered tokens.
func (b *BatchBuf) Len() int { return len(b.items) }

// Add appends a token, copying its vector.
func (b *BatchBuf) Add(item int32, vec []float64) {
	b.items = append(b.items, item)
	b.vals = append(b.vals, vec...)
}

// AddVec appends a token and returns its uninitialized vector slot.
func (b *BatchBuf) AddVec(item int32, k int) []float64 {
	b.items = append(b.items, item)
	b.vals = append(b.vals, make([]float64, k)...)
	return b.vals[len(b.vals)-k:]
}

// Batch materializes a view-only batch; the arena keeps ownership.
func (b *BatchBuf) Batch(queueLen int) TokenBatch {
	return TokenBatch{QueueLen: queueLen}
}

// HandOff materializes an owning batch; ownership transfers to it.
func (b *BatchBuf) HandOff(queueLen int) TokenBatch {
	return TokenBatch{QueueLen: queueLen, buf: b}
}
