// Package a seeds every arenaowner violation class next to the legal
// patterns the checker must stay silent on.
package a

import "nomad/internal/cluster"

// useAfterRelease touches a released batch.
func useAfterRelease(b *cluster.BatchBuf) int {
	tb := b.HandOff(1)
	tb.Release()
	return tb.QueueLen // want `use of tb\.QueueLen after Release`
}

// doubleRelease puts the arena back twice.
func doubleRelease(b *cluster.BatchBuf) {
	tb := b.HandOff(0)
	tb.Release()
	tb.Release() // want `double Release of tb`
}

// useAfterHandOff refills an arena whose ownership already moved.
func useAfterHandOff(b *cluster.BatchBuf) cluster.TokenBatch {
	tb := b.HandOff(2)
	b.Reset() // want `use of b after HandOff`
	return tb
}

// staleBatchView keeps a Batch() snapshot across a refill.
func staleBatchView(b *cluster.BatchBuf) int {
	v := b.Batch(0)
	b.Reset()
	b.Add(7, nil)
	return len(v.Tokens) // want `use of v\.Tokens after its arena was invalidated by b\.Reset`
}

// staleTokens keeps a Tokens slice past the batch's Release.
func staleTokens(tb cluster.TokenBatch) int {
	toks := tb.Tokens
	tb.Release()
	return len(toks) // want `use of toks after its arena was invalidated by tb\.Release`
}

// bufFieldAfterRelease reaches through a released arena's root.
func bufFieldAfterRelease(b *cluster.BatchBuf) {
	b.Release()
	b.Add(1, nil) // want `use of b after Release`
}

// --- Legal patterns: all silent. ---

// handOffInReturn consumes in the return statement; effects land
// after the statement, which is past the function's end.
func handOffInReturn(b *cluster.BatchBuf, n int) cluster.TokenBatch {
	return b.HandOff(n)
}

// deferredRelease consumes at function exit, not at its line.
func deferredRelease(b *cluster.BatchBuf) int {
	tb := b.HandOff(0)
	defer tb.Release()
	return len(tb.Tokens)
}

// branchRelease only releases on one path; the checker is
// branch-conservative and keeps the fall-through clean.
func branchRelease(tb cluster.TokenBatch, drop bool) int {
	if drop {
		tb.Release()
	}
	return tb.QueueLen
}

// reacquire revives a name by assignment.
func reacquire(b *cluster.BatchBuf) *cluster.BatchBuf {
	b.Release()
	b = cluster.GetBatchBuf()
	b.Reset()
	return b
}

// viewRefreshed re-cuts the view after the refill instead of
// retaining the stale one.
func viewRefreshed(b *cluster.BatchBuf) int {
	v := b.Batch(0)
	n := len(v.Tokens)
	b.Reset()
	v = b.Batch(0)
	return n + len(v.Tokens)
}

var (
	_ = useAfterRelease
	_ = doubleRelease
	_ = useAfterHandOff
	_ = staleBatchView
	_ = staleTokens
	_ = bufFieldAfterRelease
	_ = handOffInReturn
	_ = deferredRelease
	_ = branchRelease
	_ = reacquire
	_ = viewRefreshed
)
