// Package arenaowner enforces the arena ownership protocol of
// internal/cluster (DESIGN.md §8) inside each function body:
//
//   - a TokenBatch or BatchBuf must not be touched after its Release —
//     Release returns the arena to the shared pool, so a later read is
//     a read of somebody else's in-flight batch;
//   - Release is called at most once per owned value (the pool
//     corrupts on a double put);
//   - BatchBuf.HandOff transfers arena ownership to the returned
//     TokenBatch, so the buf must not be Reset, refilled, or Released
//     by the old owner afterwards;
//   - views — TokenBatch.Tokens slices and Batch() snapshots — die
//     when their arena is Reset, refilled, Released or handed off, and
//     must not be retained across that boundary. (Link.Send itself
//     copies or encodes before returning, per §8, so Send is NOT a
//     consuming operation for the caller.)
//
// The checker is a straight-line scan over each function and function
// literal, deliberately intraprocedural and branch-conservative:
// conditional bodies are scanned against a copy of the ownership
// state, so a Release inside `if drop { ... }` neither poisons nor
// blesses the code after the branch. Deferred and goroutine-spawned
// statements are skipped — `defer tb.Release()` consumes at function
// exit, not at its textual position. Consuming calls take effect
// after their statement completes, so `return buf.HandOff(n)` is
// legal. This misses interprocedural and cross-goroutine protocol
// breaks by design; it exists to catch the easy-to-write local ones
// that -race only sees under lucky interleavings.
package arenaowner

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nomad/internal/analysis/framework"
)

// Analyzer is the arenaowner pass.
var Analyzer = &framework.Analyzer{
	Name: "arenaowner",
	Doc:  "enforce TokenBatch/BatchBuf ownership: no use after Release/HandOff, no double Release, no stale views",
	Run:  run,
}

// clusterPath is the package owning the arena types. Fixtures stub it
// under the same import path.
const clusterPath = "nomad/internal/cluster"

// consumed records how and where a value lost its validity.
type consumed struct {
	how string // "Release" or "HandOff"
	pos token.Pos
}

// viewInfo records which arena a view variable was cut from.
type viewInfo struct {
	arena     string // state key of the arena
	arenaName string // source text of the arena expression, for diagnostics
}

// deadInfo records why a view became invalid.
type deadInfo struct {
	why string // e.g. "b.Reset"
	pos token.Pos
}

// state is the per-scope ownership state.
type state struct {
	consumed map[string]consumed
	views    map[string]viewInfo
	dead     map[string]deadInfo
}

func newState() *state {
	return &state{
		consumed: make(map[string]consumed),
		views:    make(map[string]viewInfo),
		dead:     make(map[string]deadInfo),
	}
}

func (st *state) clone() *state {
	c := newState()
	for k, v := range st.consumed {
		c.consumed[k] = v
	}
	for k, v := range st.views {
		c.views[k] = v
	}
	for k, v := range st.dead {
		c.dead[k] = v
	}
	return c
}

// kill forgets everything rooted at key: assignment to a variable
// revives it (`buf = cluster.GetBatchBuf()` after a Release is fine).
func (st *state) kill(key string) {
	for k := range st.consumed {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(st.consumed, k)
		}
	}
	for k := range st.views {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(st.views, k)
		}
	}
	for k := range st.dead {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(st.dead, k)
		}
	}
}

// effect is a consuming or view-invalidating operation, applied after
// its statement completes.
type effect struct {
	op   string // "Release", "HandOff", "Reset", "Add", "AddVec"
	key  string
	name string
	pos  token.Pos
}

type scanner struct {
	pass *framework.Pass
	pkg  *framework.Package
}

func run(pass *framework.Pass) error {
	for _, pkg := range pass.Pkgs {
		if pkg.Types.Path() == clusterPath {
			// The arena implementation manipulates its own innards
			// (TokenBatch.Release calls buf.Release after nilling).
			continue
		}
		sc := &scanner{pass: pass, pkg: pkg}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						sc.scanBody(n.Body.List, newState())
					}
				case *ast.FuncLit:
					// Scanned as its own scope: captures of outer
					// arenas run at an unknown time, so the outer
					// state does not apply.
					sc.scanBody(n.Body.List, newState())
				}
				return true
			})
		}
	}
	return nil
}

func (sc *scanner) scanBody(stmts []ast.Stmt, st *state) {
	for _, s := range stmts {
		sc.scanStmt(s, st)
	}
}

func (sc *scanner) scanStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Runs at function exit / concurrently: neither a use at this
		// line nor a consumption before the next one.
	case *ast.LabeledStmt:
		sc.scanStmt(s.Stmt, st)
	case *ast.BlockStmt:
		sc.scanBody(s.List, st.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		sc.checkUses(s.Cond, st, nil)
		sc.scanBody(s.Body.List, st.clone())
		if s.Else != nil {
			sc.scanStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		if s.Cond != nil {
			sc.checkUses(s.Cond, st, nil)
		}
		body := st.clone()
		sc.scanBody(s.Body.List, body)
		if s.Post != nil {
			sc.scanStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		sc.checkUses(s.X, st, nil)
		sc.scanBody(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		if s.Tag != nil {
			sc.checkUses(s.Tag, st, nil)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBody(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBody(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sc.scanBody(cc.Body, st.clone())
			}
		}
	default:
		sc.leafStmt(s, st)
	}
}

// leafStmt handles a non-compound statement: check every mention
// against the current state, then apply the statement's consuming
// effects.
func (sc *scanner) leafStmt(s ast.Stmt, st *state) {
	skip := make(map[ast.Node]bool)
	var effects []effect

	// Consuming and refilling calls anywhere in the statement (except
	// inside function literals, which are separate scopes).
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, recv, ok := sc.arenaOp(call)
		if !ok {
			return true
		}
		key, kok := sc.chainKey(recv)
		if !kok {
			return true
		}
		if op == "Release" || op == "HandOff" {
			if ck, c, hit := lookupConsumed(st, key); hit {
				if c.how == "Release" && op == "Release" && ck == key {
					sc.pass.Reportf(recv.Pos(), "double Release of %s (first Release at %s)",
						exprText(recv), sc.pass.Fset.Position(c.pos))
				} else {
					sc.reportUseAfter(recv, c)
				}
				skip[recv] = true
			}
			effects = append(effects, effect{op: op, key: key, name: exprText(recv), pos: call.Pos()})
		} else { // Reset/Add/AddVec: refill, kills views of this arena
			effects = append(effects, effect{op: op, key: key, name: exprText(recv), pos: call.Pos()})
		}
		return true
	})

	if as, ok := s.(*ast.AssignStmt); ok {
		for _, rhs := range as.Rhs {
			sc.checkUses(rhs, st, skip)
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if key, ok := sc.chainKey(id); ok {
					st.kill(key)
				}
			} else {
				// Store through a selector/index is a use of the root.
				sc.checkUses(lhs, st, skip)
				if key, ok := sc.chainKey(lhs); ok {
					st.kill(key)
				}
			}
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lkey, ok := sc.chainKey(id)
				if !ok {
					continue
				}
				if arenaKey, arenaName, ok := sc.viewSource(as.Rhs[i]); ok {
					st.views[lkey] = viewInfo{arena: arenaKey, arenaName: arenaName}
				}
			}
		}
	} else {
		sc.checkUses(s, st, skip)
	}

	for _, e := range effects {
		applyEffect(st, e)
	}
}

func applyEffect(st *state, e effect) {
	switch e.op {
	case "Release", "HandOff":
		if _, ok := st.consumed[e.key]; !ok {
			st.consumed[e.key] = consumed{how: e.op, pos: e.pos}
		}
	}
	// Every arena op — consuming or refilling — invalidates the views
	// cut from that arena.
	for vk, vi := range st.views {
		if vi.arena == e.key {
			if _, ok := st.dead[vk]; !ok {
				st.dead[vk] = deadInfo{why: e.name + "." + e.op, pos: e.pos}
			}
		}
	}
}

// checkUses walks an expression or statement and reports mentions of
// consumed values and dead views.
func (sc *scanner) checkUses(n ast.Node, st *state, skip map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if skip != nil && skip[n] {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		key, ok := sc.chainKey(e)
		if !ok {
			return true // descend: a method selector's receiver may still be a tracked chain
		}
		if _, c, hit := lookupConsumed(st, key); hit {
			sc.reportUseAfter(e, c)
		} else if _, d, hit := lookupDead(st, key); hit {
			sc.pass.Reportf(e.Pos(), "use of %s after its arena was invalidated by %s (at %s)",
				exprText(e), d.why, sc.pass.Fset.Position(d.pos))
		}
		return false // chain handled as a whole
	})
}

func (sc *scanner) reportUseAfter(e ast.Expr, c consumed) {
	if c.how == "Release" {
		sc.pass.Reportf(e.Pos(), "use of %s after Release (released at %s)",
			exprText(e), sc.pass.Fset.Position(c.pos))
		return
	}
	sc.pass.Reportf(e.Pos(), "use of %s after HandOff transferred ownership of the arena (at %s)",
		exprText(e), sc.pass.Fset.Position(c.pos))
}

// lookupConsumed finds key or any owning prefix of it in the consumed
// map: if buf is released, buf.vals is gone with it.
func lookupConsumed(st *state, key string) (string, consumed, bool) {
	for k := key; k != ""; k = chopChain(k) {
		if c, ok := st.consumed[k]; ok {
			return k, c, true
		}
	}
	return "", consumed{}, false
}

func lookupDead(st *state, key string) (string, deadInfo, bool) {
	for k := key; k != ""; k = chopChain(k) {
		if d, ok := st.dead[k]; ok {
			return k, d, true
		}
	}
	return "", deadInfo{}, false
}

func chopChain(k string) string {
	if i := strings.LastIndex(k, "."); i >= 0 {
		return k[:i]
	}
	return ""
}

// arenaOp classifies a call as a consuming or refilling arena
// operation and returns the receiver expression.
func (sc *scanner) arenaOp(call *ast.CallExpr) (op string, recv ast.Expr, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", nil, false
	}
	selection, selOk := sc.pkg.Info.Selections[sel]
	if !selOk || selection.Kind() != types.MethodVal {
		return "", nil, false
	}
	name := selection.Obj().Name()
	rt := selection.Recv()
	switch name {
	case "Release":
		if isClusterType(rt, "TokenBatch") || isClusterType(rt, "BatchBuf") {
			return "Release", sel.X, true
		}
	case "HandOff":
		if isClusterType(rt, "BatchBuf") {
			return "HandOff", sel.X, true
		}
	case "Reset", "Add", "AddVec":
		if isClusterType(rt, "BatchBuf") {
			return name, sel.X, true
		}
	}
	return "", nil, false
}

// viewSource recognizes expressions that create a view of an arena:
// b.Batch(n) snapshots and tb.Tokens slices.
func (sc *scanner) viewSource(e ast.Expr) (arenaKey, arenaName string, ok bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, selOk := e.Fun.(*ast.SelectorExpr)
		if !selOk {
			return "", "", false
		}
		selection, selOk := sc.pkg.Info.Selections[sel]
		if !selOk || selection.Kind() != types.MethodVal || selection.Obj().Name() != "Batch" {
			return "", "", false
		}
		if !isClusterType(selection.Recv(), "BatchBuf") {
			return "", "", false
		}
		key, kok := sc.chainKey(sel.X)
		if !kok {
			return "", "", false
		}
		return key, exprText(sel.X), true
	case *ast.SelectorExpr:
		selection, selOk := sc.pkg.Info.Selections[e]
		if !selOk || selection.Kind() != types.FieldVal || selection.Obj().Name() != "Tokens" {
			return "", "", false
		}
		if !isClusterType(selection.Recv(), "TokenBatch") {
			return "", "", false
		}
		key, kok := sc.chainKey(e.X)
		if !kok {
			return "", "", false
		}
		return key, exprText(e.X), true
	}
	return "", "", false
}

// chainKey names a variable or field-selector chain by the identity
// of its root object plus the field path, so state survives aliasing
// through neither pointers nor copies — exactly the intraprocedural
// discipline the checker promises.
func (sc *scanner) chainKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := sc.pkg.Info.Uses[e]
		if obj == nil {
			obj = sc.pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("o%p", v), true
	case *ast.SelectorExpr:
		selection, ok := sc.pkg.Info.Selections[e]
		if !ok || selection.Kind() != types.FieldVal {
			return "", false
		}
		base, ok := sc.chainKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return sc.chainKey(e.X)
	}
	return "", false
}

func isClusterType(t types.Type, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == clusterPath
}

// exprText renders an ident/selector chain for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	default:
		return "?"
	}
}
