// Package kerneldispatch protects the PR 6 dispatch seam: every
// SGD/eval call site must obtain its arithmetic through
// vecmath.KernelFor / KernelFor32 / DotKernel / DotKernel32 — the
// functions that consult the reference/SIMD/portable dispatch — and
// never invoke the scalar reference kernels directly. A direct
// vecmath.Dot in an eval loop silently pins that path to scalar code
// on every machine and escapes all three A/B switches
// (NOMAD_REFERENCE_KERNELS, NOMAD_NO_SIMD, SetSIMD), which is how a
// 1.5× SIMD win quietly rots.
//
// Both calling and capturing a kernel as a value
// (`dot := vecmath.Dot`) are flagged; vecmath itself is exempt (it IS
// the dispatcher), and deliberate direct use — a cold path that wants
// the reference scalar on purpose — is annotated
//
//	//nomad:direct-kernel <why>
package kerneldispatch

import (
	"go/ast"
	"go/types"

	"nomad/internal/analysis/directive"
	"nomad/internal/analysis/framework"
)

// Analyzer is the kerneldispatch pass.
var Analyzer = &framework.Analyzer{
	Name: "kerneldispatch",
	Doc:  "route SGD/eval arithmetic through KernelFor/KernelFor32 instead of direct scalar kernels",
	Run:  run,
}

// vecmathPath is the dispatcher package. Fixtures stub it under the
// same import path.
const vecmathPath = "nomad/internal/vecmath"

// directKernels are the width-agnostic scalar kernels the dispatch
// seam wraps. Everything else vecmath exports (Axpy, CholeskySolve,
// Norm2Sq, the batch-solver linear algebra) is general vector math
// with no dispatched counterpart and stays fair game.
var directKernels = map[string]bool{
	"Dot": true, "Dot32": true,
	"DotUnrolled": true, "DotUnrolled32": true,
	"SGDUpdate": true, "SGDUpdate32": true,
	"SGDUpdateGrad": true, "SGDUpdateGrad32": true,
	"FusedSGDStep": true, "FusedSGDStep32": true,
}

func run(pass *framework.Pass) error {
	for _, pkg := range pass.Pkgs {
		if pkg.Types.Path() == vecmathPath {
			continue // the dispatcher's own internals
		}
		for _, f := range pkg.Files {
			idx := directive.NewIndex(pass.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != vecmathPath || !directKernels[fn.Name()] {
					return true
				}
				if _, ok := idx.Covered(directive.DirectKernel, id.Pos()); ok {
					return true
				}
				pass.Reportf(id.Pos(),
					"direct use of vecmath.%s bypasses the kernel dispatch; route through vecmath.KernelFor/DotKernel (or annotate //nomad:direct-kernel)",
					fn.Name())
				return true
			})
		}
	}
	return nil
}
