// Package vecmath is a fixture stub of nomad/internal/vecmath: the
// scalar reference kernels the analyzer bans and the dispatch entry
// points it blesses, with the real package's import path.
package vecmath

// Dot is a banned scalar reference kernel.
func Dot(a, b []float64) float64 { return 0 }

// Dot32 is a banned scalar reference kernel.
func Dot32(a, b []float32) float32 { return 0 }

// DotUnrolled is a banned scalar reference kernel.
func DotUnrolled(a, b []float64) float64 { return 0 }

// SGDUpdate is a banned scalar reference kernel.
func SGDUpdate(w, h []float64, err, step, lambda float64) {}

// FusedSGDStep32 is a banned scalar reference kernel.
func FusedSGDStep32(w, h []float32, rating, step, lambda float32) float32 { return 0 }

// Axpy has no dispatched counterpart and is always fine.
func Axpy(alpha float64, x, y []float64) {}

// DotKernel is the blessed dispatcher for float64 dots.
func DotKernel() func(a, b []float64) float64 { return Dot }

// DotKernel32 is the blessed dispatcher for float32 dots.
func DotKernel32() func(a, b []float32) float32 { return Dot32 }

// SGDKernels is the blessed dispatch bundle.
type SGDKernels struct {
	Step func(w, h []float64, err, step, lambda float64)
}

// KernelFor is the blessed dispatcher for SGD kernels.
func KernelFor(rank int) SGDKernels { return SGDKernels{Step: SGDUpdate} }
