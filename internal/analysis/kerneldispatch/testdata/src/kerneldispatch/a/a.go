// Package a seeds kerneldispatch violations: direct calls and value
// captures of the scalar reference kernels, next to the blessed
// dispatch-seam usage that must stay silent.
package a

import "nomad/internal/vecmath"

// Predict evals with a direct scalar dot — the bug class from
// factor.Predict.
func Predict(u, v []float64) float64 {
	return vecmath.Dot(u, v) // want `direct use of vecmath\.Dot bypasses the kernel dispatch`
}

// Predict32 does it in float32.
func Predict32(u, v []float32) float32 {
	return vecmath.Dot32(u, v) // want `direct use of vecmath\.Dot32 bypasses the kernel dispatch`
}

// capture takes a kernel as a value, which pins scalar code just as
// hard as calling it.
var capture = vecmath.SGDUpdate // want `direct use of vecmath\.SGDUpdate bypasses the kernel dispatch`

// train uses the dispatch seam: silent.
func train(w, h []float64, err, step, lambda float64) {
	k := vecmath.KernelFor(len(w))
	k.Step(w, h, err, step, lambda)
	dot := vecmath.DotKernel()
	_ = dot(w, h)
}

// axpyUser calls undipatched vector math: silent.
func axpyUser(x, y []float64) {
	vecmath.Axpy(2, x, y)
}

// referenceCheck wants the scalar kernel on purpose and says why.
func referenceCheck(u, v []float64) float64 {
	return vecmath.Dot(u, v) //nomad:direct-kernel oracle for kernel parity test
}

var _ = train
var _ = axpyUser
var _ = referenceCheck
