package kerneldispatch_test

import (
	"testing"

	"nomad/internal/analysis/analysistest"
	"nomad/internal/analysis/kerneldispatch"
)

func TestKernelDispatch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), kerneldispatch.Analyzer, "kerneldispatch/a")
}
