package directive_test

import (
	"go/ast"
	"testing"

	"nomad/internal/analysis/analysistest"
	"nomad/internal/analysis/directive"
)

// TestParse covers the comment-level grammar directly, including the
// no-verb forms gofmt rewrites out of directive position (so they
// cannot live in a fixture file).
func TestParse(t *testing.T) {
	cases := []struct {
		text    string
		isDir   bool
		problem string // regexp-free substring; empty means well-formed
		verb    directive.Verb
		reason  string
	}{
		{text: "// ordinary comment", isDir: false},
		{text: "//nomad:racy-read monitor sample", isDir: true, verb: directive.RacyRead, reason: "monitor sample"},
		{text: "//nomad:noalloc", isDir: true, verb: directive.NoAlloc},
		{text: "//nomad:noalloc hot ring op", isDir: true, verb: directive.NoAlloc, reason: "hot ring op"},
		{text: "//nomad:alloc-ok cold error path", isDir: true, verb: directive.AllocOK, reason: "cold error path"},
		{text: "//nomad:direct-kernel reference side", isDir: true, verb: directive.DirectKernel, reason: "reference side"},
		{text: "//nomad:", isDir: true, problem: "no verb"},
		{text: "//nomad: spaced out", isDir: true, problem: "no verb"},
		{text: "//nomad:warp-speed yes", isDir: true, problem: "unknown //nomad: verb warp-speed"},
		{text: "//nomad:racy-read", isDir: true, problem: "requires a reason"},
		{text: "//nomad:alloc-ok", isDir: true, problem: "requires a reason"},
		{text: "//nomad:direct-kernel", isDir: true, problem: "requires a reason"},
	}
	for _, tc := range cases {
		d, p, ok := directive.Parse(&ast.Comment{Text: tc.text})
		if ok != tc.isDir {
			t.Errorf("Parse(%q): directive = %v, want %v", tc.text, ok, tc.isDir)
			continue
		}
		if !ok {
			continue
		}
		if tc.problem != "" {
			if p == nil {
				t.Errorf("Parse(%q): well-formed, want problem %q", tc.text, tc.problem)
			}
			continue
		}
		if p != nil {
			t.Errorf("Parse(%q): problem %q, want well-formed", tc.text, p.Message)
			continue
		}
		if d.Verb != tc.verb || d.Reason != tc.reason {
			t.Errorf("Parse(%q) = (%s, %q), want (%s, %q)", tc.text, d.Verb, d.Reason, tc.verb, tc.reason)
		}
	}
}

// TestGrammar runs the directive analyzer over a fixture holding
// every legal placement (which must stay silent) and every class of
// malformed or misplaced directive (which must each produce exactly
// one diagnostic). Expectations are keyed by line because grammar
// diagnostics land on the directive comment's own line.
func TestGrammar(t *testing.T) {
	analysistest.RunExpect(t, analysistest.TestData(t), directive.Analyzer, "directive/a", map[string]string{
		"a.go:33": `unknown //nomad: verb fast-path`,
		"a.go:36": `//nomad:racy-read requires a reason`,
		"a.go:39": `unknown //nomad: verb racy_read`,
		"a.go:43": `//nomad:noalloc must appear in a function's doc comment`,
		"a.go:48": `//nomad:alloc-ok outside a //nomad:noalloc function does nothing`,
	})
}
