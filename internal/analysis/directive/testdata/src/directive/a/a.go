// Package a exercises the //nomad: annotation grammar: well-formed
// directives in every legal position, and each way a directive can be
// malformed or misplaced. The expectations live in the analyzer's
// test (RunExpect), because grammar diagnostics land on the directive
// comment's own line.
package a

import "sync/atomic"

// counters is a struct whose field-level whitelist placement is legal.
type counters struct {
	n    atomic.Int64
	seen int64 //nomad:racy-read monitor samples seen without the lock
}

// hot is a legal function-level mark.
//
//nomad:noalloc steady-state ring operation
func hot(c *counters) int64 {
	v := c.seen //nomad:racy-read progress sample only
	return v + c.n.Load()
}

// waived holds a legal statement-level waiver inside a noalloc
// function.
//
//nomad:noalloc
func waived() *counters {
	//nomad:alloc-ok one-time construction, not steady state
	return &counters{}
}

//nomad:fast-path the verb does not exist
func unknownVerb() {}

//nomad:racy-read
func missingReason() {}

//nomad:racy_read underscore instead of hyphen
func wrongSeparator() {}

func misplacedNoalloc() {
	//nomad:noalloc the mark belongs on a function doc comment
	x := 0
	_ = x
}

//nomad:alloc-ok waiver outside any noalloc function
func strayWaiver() {}

func strayKernel() int {
	return 1 //nomad:direct-kernel no kernel call here is fine placement-wise
}
