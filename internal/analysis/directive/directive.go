// Package directive parses the //nomad: annotation grammar the
// nomadlint analyzers consume, and provides the analyzer that
// validates it.
//
// A directive is a comment of the form
//
//	//nomad:<verb> <reason...>
//
// with no space between // and nomad:. The verbs:
//
//	//nomad:racy-read <reason>     atomicmix: the plain access on this
//	                               line (or the statement below, or
//	                               every access of the struct field
//	                               declared on this line) is a
//	                               deliberate unlocked read — a §3.1
//	                               monitor-style progress sample.
//	                               Reason required.
//	//nomad:noalloc [reason]       noallochot: this function's body
//	                               must produce no escape-analysis
//	                               allocation sites. Doc comment of a
//	                               function declaration only.
//	//nomad:alloc-ok <reason>      noallochot: the statement this line
//	                               covers inside a noalloc function is
//	                               a waived allocation site (amortized
//	                               growth, cold error path). Reason
//	                               required.
//	//nomad:direct-kernel <reason> kerneldispatch: the direct scalar
//	                               kernel call on this line bypasses
//	                               KernelFor deliberately. Reason
//	                               required.
//
// Unknown verbs, missing required reasons and misplaced directives
// are themselves diagnostics (the Analyzer in this package), so a
// typo'd suppression fails lint instead of silently suppressing
// nothing.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"nomad/internal/analysis/framework"
)

// Verb is a directive kind.
type Verb string

// The grammar's verbs.
const (
	RacyRead     Verb = "racy-read"
	NoAlloc      Verb = "noalloc"
	AllocOK      Verb = "alloc-ok"
	DirectKernel Verb = "direct-kernel"
)

// reasonRequired reports whether a verb demands a reason. noalloc is
// the one mark whose meaning is complete without one (the function
// name is the reason); every suppression must say why.
func reasonRequired(v Verb) bool { return v != NoAlloc }

// knownVerbs lists the grammar.
var knownVerbs = map[Verb]bool{RacyRead: true, NoAlloc: true, AllocOK: true, DirectKernel: true}

// Directive is one well-formed //nomad: annotation.
type Directive struct {
	Pos    token.Pos
	Line   int
	Verb   Verb
	Reason string
}

// Problem is one grammar violation.
type Problem struct {
	Pos     token.Pos
	Message string
}

// Parse parses a single comment. ok reports whether the comment is a
// //nomad: directive at all; a non-nil Problem means it is one but is
// malformed (the Directive is then incomplete and must not be used).
func Parse(c *ast.Comment) (d Directive, p *Problem, ok bool) {
	body, isDirective := strings.CutPrefix(c.Text, "//nomad:")
	if !isDirective {
		return Directive{}, nil, false
	}
	verb, reason, _ := strings.Cut(body, " ")
	reason = strings.TrimSpace(reason)
	if verb == "" {
		return Directive{}, &Problem{Pos: c.Pos(), Message: "//nomad: directive with no verb"}, true
	}
	if !knownVerbs[Verb(verb)] {
		return Directive{}, &Problem{Pos: c.Pos(), Message: "unknown //nomad: verb " + verb}, true
	}
	if reason == "" && reasonRequired(Verb(verb)) {
		return Directive{}, &Problem{Pos: c.Pos(), Message: "//nomad:" + verb + " requires a reason"}, true
	}
	return Directive{Pos: c.Pos(), Verb: Verb(verb), Reason: reason}, nil, true
}

// FuncMark returns the noalloc directive of a function's doc comment.
func FuncMark(fd *ast.FuncDecl) (Directive, bool) {
	if fd.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fd.Doc.List {
		if d, p, ok := Parse(c); ok && p == nil && d.Verb == NoAlloc {
			return d, true
		}
	}
	return Directive{}, false
}

// Index resolves the directives of one file to the source spans they
// cover, so analyzers can answer "is this position suppressed by
// verb v" in one lookup.
type Index struct {
	fset  *token.FileSet
	spans []coveredSpan
}

type coveredSpan struct {
	d        Directive
	pos, end token.Pos
}

// NewIndex builds the directive index of a file. Malformed
// directives are excluded (the Analyzer reports them); well-formed
// line-level directives resolve to the innermost statement or struct
// field overlapping their line, or — for a comment alone on its line
// — the statement beginning on the next line.
func NewIndex(fset *token.FileSet, f *ast.File) *Index {
	idx := &Index{fset: fset}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, p, ok := Parse(c)
			if !ok || p != nil || d.Verb == NoAlloc {
				continue // noalloc marks functions; FuncMark handles them
			}
			d.Line = fset.Position(c.Pos()).Line
			if pos, end, found := coverage(fset, f, c, d.Line); found {
				idx.spans = append(idx.spans, coveredSpan{d: d, pos: pos, end: end})
			}
		}
	}
	return idx
}

// Covered returns the directive of the given verb whose span contains
// pos, if any.
func (idx *Index) Covered(v Verb, pos token.Pos) (Directive, bool) {
	for _, s := range idx.spans {
		if s.d.Verb == v && s.pos <= pos && pos < s.end {
			return s.d, true
		}
	}
	return Directive{}, false
}

// coverage computes the span a line-level directive applies to: the
// innermost statement or struct field whose lines include the
// directive's line (trailing comment), falling back to the outermost
// statement starting on the following line (standalone comment).
func coverage(fset *token.FileSet, f *ast.File, c *ast.Comment, line int) (token.Pos, token.Pos, bool) {
	var innermost ast.Node
	var nextLine ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, *ast.Field:
		default:
			return true
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if start <= line && line <= end && n.Pos() < c.Pos() {
			// Trailing: the node's span includes the directive's line and
			// the node begins before the comment. Innermost wins — keep
			// descending.
			if innermost == nil || n.Pos() >= innermost.Pos() {
				innermost = n
			}
		}
		if start == line+1 {
			// Standalone: outermost node starting on the next line wins.
			if nextLine == nil || n.Pos() < nextLine.Pos() {
				nextLine = n
			}
		}
		return true
	})
	if innermost != nil {
		return innermost.Pos(), innermost.End(), true
	}
	if nextLine != nil {
		return nextLine.Pos(), nextLine.End(), true
	}
	return token.NoPos, token.NoPos, false
}

// Analyzer validates the grammar itself: unknown verbs, missing
// reasons, and directives placed where no analyzer will ever read
// them (a suppression that suppresses nothing is a lie in the
// source).
var Analyzer = &framework.Analyzer{
	Name: "nomaddirective",
	Doc:  "validate the //nomad: annotation grammar (verbs, reasons, placement)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			checkFile(pass, f)
		}
	}
	return nil
}

func checkFile(pass *framework.Pass, f *ast.File) {
	// Function docs carrying noalloc, and function body spans, for
	// placement checks.
	type span struct{ pos, end token.Pos }
	var funcBodies []span
	var noallocBodies []span
	docOf := make(map[*ast.CommentGroup]bool) // doc groups of function decls
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Doc != nil {
			docOf[fd.Doc] = true
		}
		s := span{fd.Body.Pos(), fd.Body.End()}
		funcBodies = append(funcBodies, s)
		if _, marked := FuncMark(fd); marked {
			noallocBodies = append(noallocBodies, s)
		}
	}
	inAny := func(spans []span, pos token.Pos) bool {
		for _, s := range spans {
			if s.pos <= pos && pos < s.end {
				return true
			}
		}
		return false
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, p, ok := Parse(c)
			if !ok {
				continue
			}
			if p != nil {
				pass.Reportf(p.Pos, "%s", p.Message)
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			switch d.Verb {
			case NoAlloc:
				if !docOf[cg] {
					pass.Reportf(c.Pos(), "//nomad:noalloc must appear in a function's doc comment")
				}
			case AllocOK:
				if !inAny(noallocBodies, c.Pos()) {
					pass.Reportf(c.Pos(), "//nomad:alloc-ok outside a //nomad:noalloc function does nothing")
					continue
				}
				if _, _, found := coverage(pass.Fset, f, c, line); !found {
					pass.Reportf(c.Pos(), "//nomad:alloc-ok covers no statement")
				}
			case RacyRead:
				pos, _, found := coverage(pass.Fset, f, c, line)
				if !found {
					pass.Reportf(c.Pos(), "//nomad:racy-read covers no statement or field")
					continue
				}
				if !inAny(funcBodies, pos) && !onStructField(pass.Fset, f, line) {
					pass.Reportf(c.Pos(), "//nomad:racy-read must cover an access statement or a struct field")
				}
			case DirectKernel:
				if !inAny(funcBodies, c.Pos()) {
					pass.Reportf(c.Pos(), "//nomad:direct-kernel must cover a call statement inside a function")
					continue
				}
				if _, _, found := coverage(pass.Fset, f, c, line); !found {
					pass.Reportf(c.Pos(), "//nomad:direct-kernel covers no statement")
				}
			}
		}
	}
}

// onStructField reports whether some struct field's declaration spans
// the given line.
func onStructField(fset *token.FileSet, f *ast.File, line int) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, fld := range st.Fields.List {
			if fset.Position(fld.Pos()).Line <= line && line <= fset.Position(fld.End()).Line {
				found = true
			}
		}
		return true
	})
	return found
}

// FieldRacyRead reports whether the struct field declared at the
// given node carries a racy-read directive (trailing comment or the
// line above), returning its reason. atomicmix uses it to whitelist
// every plain access of a monitor-sampled field at the declaration,
// instead of at each of its reads.
func FieldRacyRead(fset *token.FileSet, f *ast.File, fld *ast.Field) (Directive, bool) {
	fldStart := fset.Position(fld.Pos()).Line
	fldEnd := fset.Position(fld.End()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, p, ok := Parse(c)
			if !ok || p != nil || d.Verb != RacyRead {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if (line >= fldStart && line <= fldEnd) || line == fldStart-1 {
				return d, true
			}
		}
	}
	return Directive{}, false
}
