// Package noallochot verifies the zero-alloc claims of NOMAD's hot
// paths against the compiler's own escape analysis. A function whose
// doc comment carries
//
//	//nomad:noalloc
//
// is asserting the PR 5 steady-state discipline: no heap allocation
// per call once buffers are warm. The analyzer replays
// `go build -gcflags=-m` for the package (served from the build cache
// on a warm tree) and reports every "escapes to heap" / "moved to
// heap" site the compiler attributes to a line inside a marked
// function. Deliberate allocations — pool misses, one-time arena
// growth, error paths — are waived per statement with
//
//	//nomad:alloc-ok <why>
//
// What -m cannot see, this checker cannot either: growth inside a
// plain `append(s, x)` is an amortized runtime reallocation, not a
// compiler-visible allocation site, so it passes — which matches the
// discipline being enforced (steady-state zero-alloc with warm
// buffers), not a stricter never-allocates claim. Conversely,
// allocation sites inlined from another package (slices.Grow's make,
// fmt.Errorf's boxing) ARE attributed to the calling line and need a
// waiver.
package noallochot

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"nomad/internal/analysis/directive"
	"nomad/internal/analysis/framework"
)

// Analyzer is the noallochot pass.
var Analyzer = &framework.Analyzer{
	Name: "noallochot",
	Doc:  "check //nomad:noalloc functions against go build -gcflags=-m escape analysis",
	Run:  run,
}

// escapeLine matches the two -m diagnostics that are real heap
// allocations; inline reports and parameter-leak notes are noise.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// constStringEscape matches a string literal escaping on its own —
// the compiler's note for boxing a constant into an interface, as in
// panic("vecmath: Dot length mismatch"). The interface data points at
// a read-only static string, so no per-call allocation happens and
// bounds-check panics stay legal in noalloc kernels. A concatenation
// ("prefix: " + err escapes to heap) does not match and still flags.
var constStringEscape = regexp.MustCompile(`^"(?:[^"\\]|\\.)*" escapes to heap$`)

// markedFn is a //nomad:noalloc function's line span in one file.
type markedFn struct {
	name       string
	start, end int
}

func run(pass *framework.Pass) error {
	for _, pkg := range pass.Pkgs {
		// Marked functions per file basename; skip the compiler run
		// entirely for packages that claim nothing.
		marked := make(map[string][]markedFn)
		files := make(map[string]*ast.File)
		total := 0
		for _, f := range pkg.Files {
			base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			files[base] = f
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := directive.FuncMark(fd); !ok {
					continue
				}
				marked[base] = append(marked[base], markedFn{
					name:  fd.Name.Name,
					start: pass.Fset.Position(fd.Pos()).Line,
					end:   pass.Fset.Position(fd.End()).Line,
				})
				total++
			}
		}
		if total == 0 {
			continue
		}

		out, err := escapeOutput(pkg)
		if err != nil {
			return fmt.Errorf("noallochot: escape analysis of %s: %w", pkg.ImportPath, err)
		}
		indexes := make(map[string]*directive.Index)
		for _, line := range strings.Split(out, "\n") {
			m := escapeLine.FindStringSubmatch(line)
			if m == nil || constStringEscape.MatchString(m[4]) {
				continue
			}
			base := filepath.Base(m[1])
			lineNo, _ := strconv.Atoi(m[2])
			col, _ := strconv.Atoi(m[3])
			f, ok := files[base]
			if !ok {
				continue
			}
			var fn *markedFn
			for i := range marked[base] {
				if mf := &marked[base][i]; lineNo >= mf.start && lineNo <= mf.end {
					fn = mf
					break
				}
			}
			if fn == nil {
				continue
			}
			pos := posAt(pass.Fset, f, lineNo, col)
			idx, ok := indexes[base]
			if !ok {
				idx = directive.NewIndex(pass.Fset, f)
				indexes[base] = idx
			}
			if _, ok := idx.Covered(directive.AllocOK, pos); ok {
				continue
			}
			pass.Reportf(pos, "%s inside //nomad:noalloc function %s; hoist the allocation or waive it with //nomad:alloc-ok <why>",
				m[4], fn.name)
		}
	}
	return nil
}

// posAt converts a compiler file:line:col back into a token.Pos in f.
func posAt(fset *token.FileSet, f *ast.File, line, col int) token.Pos {
	tf := fset.File(f.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return f.Pos()
	}
	p := tf.LineStart(line) + token.Pos(col-1)
	if p < tf.LineStart(line) || int(p) >= tf.Base()+tf.Size() {
		return tf.LineStart(line)
	}
	return p
}

// escapeOutput obtains the compiler's -m output for pkg. Module
// packages are built in place, flags scoped to the one package so
// dependency noise is excluded. Out-of-module fixture packages are
// copied into a throwaway module first: `go build` refuses ad-hoc
// directories, and fixtures are plain directories under testdata.
func escapeOutput(pkg *framework.Package) (string, error) {
	if pkg.InModule {
		cmd := exec.Command("go", "build", "-gcflags="+pkg.ImportPath+"=-m", pkg.ImportPath)
		cmd.Dir = pkg.Dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
		}
		return string(out), nil
	}

	tmp, err := os.MkdirTemp("", "noallochot-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(pkg.Dir, e.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), src, 0o644); err != nil {
			return "", err
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module noallocfixture\n\ngo 1.24\n"), 0o644); err != nil {
		return "", err
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = tmp
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=-m (fixture copy): %v\n%s", err, out)
	}
	return string(out), nil
}
