// Package a seeds noallochot violations: compiler-visible heap
// allocations inside //nomad:noalloc functions, next to waived and
// unmarked allocations that must stay silent.
package a

var sink *int

type point struct{ x, y int }

// hot claims zero-alloc but makes a variable-sized slice per call.
//
//nomad:noalloc
func hot(dst []int, n int) int {
	buf := make([]int, n) // want `make\(\[\]int, n\) escapes to heap inside //nomad:noalloc function hot`
	copy(dst, buf)
	return len(buf)
}

// leak claims zero-alloc but lets a local escape through a sink.
//
//nomad:noalloc
func leak() int {
	x := 42 // want `moved to heap: x inside //nomad:noalloc function leak`
	sink = &x
	return x
}

// boxed claims zero-alloc but returns a pointer to a literal.
//
//nomad:noalloc
func boxed(p point) *point {
	return &point{p.x, p.y} // want `&point\{\.\.\.\} escapes to heap inside //nomad:noalloc function boxed`
}

// warm allocates on purpose — arena warm-up growth — and waives it.
//
//nomad:noalloc
func warm(s []float64, n int) []float64 {
	s = append(s, make([]float64, n)...) //nomad:alloc-ok one-time arena warm-up growth
	return s
}

// addTo is marked and genuinely allocation-free.
//
//nomad:noalloc
func addTo(dst, src []int) {
	for i := range src {
		dst[i] += src[i]
	}
}

// guarded panics on bad input with a constant message: boxing a
// constant string into the panic interface is static data, not a
// per-call allocation, so the kernel-style bounds check is silent.
//
//nomad:noalloc
func guarded(a, b []int) int {
	if len(a) != len(b) {
		panic("guarded: length mismatch")
	}
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// cold allocates freely: unmarked functions are out of scope.
func cold(n int) []int {
	return make([]int, n)
}

var (
	_ = hot
	_ = leak
	_ = boxed
	_ = warm
	_ = addTo
	_ = guarded
	_ = cold
)
