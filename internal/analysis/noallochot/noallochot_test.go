package noallochot_test

import (
	"testing"

	"nomad/internal/analysis/analysistest"
	"nomad/internal/analysis/noallochot"
)

func TestNoAllocHot(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noallochot.Analyzer, "noallochot/a")
}
