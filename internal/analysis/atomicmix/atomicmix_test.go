package atomicmix_test

import (
	"testing"

	"nomad/internal/analysis/analysistest"
	"nomad/internal/analysis/atomicmix"
)

// TestAtomicMix runs the analyzer over both fixture packages in one
// pass: the mix of an atomic write in package a with a plain read in
// package b is exactly the module-wide case the analyzer exists for.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "atomicmix/a", "atomicmix/b")
}
