// Package atomicmix flags variables and struct fields that are
// accessed through sync/atomic in one place and by plain load or
// store in another — the mixed-discipline bug the -race job can only
// catch when a test happens to interleave the two. NOMAD's
// correctness argument (§3.1–3.3: each item column has exactly one
// owner; progress counters are sampled, not locked) leans on every
// shared word having ONE access discipline; a counter that is
// atomic.AddInt64'd in a worker and `x.n++`'d in a monitor satisfies
// neither the ownership story nor the Go memory model.
//
// The analysis is module-wide: the atomic side and the plain side of
// a mix usually live in different packages (a queue length updated in
// internal/queue, probed in internal/core). Deliberate unlocked reads
// — the paper's monitor-style progress samples — are whitelisted with
//
//	//nomad:racy-read <why>
//
// on the access statement, or on the field declaration to bless every
// plain access of a monitor-sampled field at once.
//
// Typed atomics (atomic.Bool, atomic.Int64, ...) cannot be mixed —
// the type system already forces Load/Store — so they are out of
// scope here, as is address-laundering through intermediate pointer
// variables (`p := &x.n; atomic.AddInt64(p, 1)`), which the codebase
// style forbids anyway.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"nomad/internal/analysis/directive"
	"nomad/internal/analysis/framework"
)

// Analyzer is the atomicmix pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc:  "flag mixed sync/atomic and plain access to the same variable or field",
	Run:  run,
}

// atomicFuncs are the sync/atomic functions whose first argument is
// the address of the word they operate on.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
}

// atomicSite is where a word was first seen accessed atomically.
type atomicSite struct {
	pos token.Pos
	fn  string // the sync/atomic function used there
}

func run(pass *framework.Pass) error {
	// Phase 1: every &operand of a sync/atomic call marks its word
	// atomic, module-wide.
	atomicWords := make(map[string]atomicSite)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := atomicCall(pkg.Info, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				un, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				if key, ok := wordKey(pkg, un.X); ok {
					if _, seen := atomicWords[key]; !seen {
						atomicWords[key] = atomicSite{pos: un.X.Pos(), fn: name}
					}
				}
				return true
			})
		}
	}
	if len(atomicWords) == 0 {
		return nil
	}

	// Phase 1.5: field declarations carrying //nomad:racy-read bless
	// every plain access of that field.
	blessed := make(map[string]bool)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			collectBlessedFields(pass.Fset, pkg, f, blessed)
		}
	}

	// Phase 2: any other mention of an atomic word is a plain access.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			idx := directive.NewIndex(pass.Fset, f)
			checkFile(pass, pkg, f, idx, atomicWords, blessed)
		}
	}
	return nil
}

// atomicCall reports whether call invokes a sync/atomic package
// function of interest, returning its name.
func atomicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	if !atomicFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// wordKey names a word (variable or field) stably across packages:
// fields by defining package, receiver type and field name; package
// vars by package and name; locals by declaration position (both
// sides of a local mix necessarily sit in the same package, so the
// position is stable).
func wordKey(pkg *framework.Package, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		if obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return "var " + obj.Pkg().Path() + "." + obj.Name(), true
		}
		return "local " + obj.Pkg().Path() + "." + obj.Name() + "@" + pkg.Fset.Position(obj.Pos()).String(), true
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[e]
		if !ok {
			// Qualified package var: pkgname.Var.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
						return "var " + obj.Pkg().Path() + "." + obj.Name(), true
					}
				}
			}
			return "", false
		}
		if sel.Kind() != types.FieldVal {
			return "", false
		}
		obj := sel.Obj()
		if obj.Pkg() == nil {
			return "", false
		}
		return "field " + obj.Pkg().Path() + "." + namedRecv(sel) + "." + obj.Name(), true
	case *ast.ParenExpr:
		return wordKey(pkg, e.X)
	default:
		return "", false
	}
}

// namedRecv names the receiver type a selection goes through.
func namedRecv(sel *types.Selection) string {
	t := sel.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "_"
}

// fieldDeclKey names a field from its declaration, mirroring wordKey's
// field form for non-embedded access.
func fieldDeclKey(pkgPath, structName, fieldName string) string {
	return "field " + pkgPath + "." + structName + "." + fieldName
}

// collectBlessedFields records fields whose declarations carry a
// racy-read directive.
func collectBlessedFields(fset *token.FileSet, pkg *framework.Package, f *ast.File, blessed map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				continue
			}
			for _, fld := range st.Fields.List {
				if _, ok := directive.FieldRacyRead(fset, f, fld); !ok {
					continue
				}
				for _, name := range fld.Names {
					blessed[fieldDeclKey(pkg.Types.Path(), ts.Name.Name, name.Name)] = true
				}
			}
		}
	}
}

// checkFile reports plain accesses of atomic words in one file.
func checkFile(pass *framework.Pass, pkg *framework.Package, f *ast.File, idx *directive.Index, atomicWords map[string]atomicSite, blessed map[string]bool) {
	// Spans of &word operands inside atomic calls: those mentions ARE
	// the atomic accesses.
	atomicSpans := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := atomicCall(pkg.Info, call); !ok || len(call.Args) == 0 {
			return true
		}
		if un, ok := call.Args[0].(*ast.UnaryExpr); ok && un.Op == token.AND {
			atomicSpans[un.X] = true
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && atomicSpans[e] {
			return false // the atomic access itself; don't descend
		}
		var key string
		var tracked bool
		switch e := n.(type) {
		case *ast.SelectorExpr:
			key, tracked = wordKey(pkg, e)
			if tracked {
				if site, mixed := atomicWords[key]; mixed && !blessed[key] {
					if _, ok := idx.Covered(directive.RacyRead, e.Pos()); !ok {
						pass.Reportf(e.Sel.Pos(),
							"plain access of %s, which is accessed atomically (%s at %s); use sync/atomic or annotate //nomad:racy-read",
							exprString(e), site.fn, pass.Fset.Position(site.pos))
					}
				}
				return false // don't re-flag the inner selector chain
			}
		case *ast.Ident:
			key, tracked = wordKey(pkg, e)
			if tracked {
				if site, mixed := atomicWords[key]; mixed && !blessed[key] {
					if _, ok := idx.Covered(directive.RacyRead, e.Pos()); !ok {
						pass.Reportf(e.Pos(),
							"plain access of %s, which is accessed atomically (%s at %s); use sync/atomic or annotate //nomad:racy-read",
							e.Name, site.fn, pass.Fset.Position(site.pos))
					}
				}
			}
		}
		return true
	}
	ast.Inspect(f, visit)
}

// exprString renders a selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "?"
	}
}
