// Package b reads a's atomically-written field plainly — the
// cross-package mix the module-wide pass exists to catch.
package b

import "atomicmix/a"

// Peek samples a worker counter without the atomic load.
func Peek(s *a.Stats) int64 {
	return s.Hits // want `plain access of s\.Hits, which is accessed atomically`
}

// PeekBlessed is the documented way to do it.
func PeekBlessed(s *a.Stats) int64 {
	return s.Hits //nomad:racy-read monitor-style progress sample
}
