// Package a seeds atomicmix violations: words accessed through
// sync/atomic in one place and plainly in another, at field, package
// and local scope, plus the clean disciplines that must stay silent.
package a

import "sync/atomic"

// Stats is shared between workers and a monitor.
type Stats struct {
	Hits   int64
	misses int64
	done   int64 //nomad:racy-read progress sample, final value re-read after join
	name   string
}

// worker is the atomic side.
func worker(s *Stats) {
	atomic.AddInt64(&s.Hits, 1)
	atomic.AddInt64(&s.misses, 1)
	atomic.AddInt64(&s.done, 1)
	s.name = "worker" // never atomic: no mix
}

// monitor is the plain side.
func monitor(s *Stats) int64 {
	n := s.Hits // want `plain access of s\.Hits, which is accessed atomically \(AddInt64`
	n += atomic.LoadInt64(&s.misses)
	n += s.misses //nomad:racy-read queue-length gossip is approximate by design
	return n + s.done
}

// total is a package-level mixed word.
var total int64

func bump() { atomic.AddInt64(&total, 1) }

func readTotal() int64 { return total } // want `plain access of total, which is accessed atomically`

// localMix mixes on a stack word that escapes into a goroutine.
func localMix() int64 {
	var n int64
	go func() { atomic.AddInt64(&n, 1) }()
	return n // want `plain access of n, which is accessed atomically`
}

// typedClean uses a typed atomic: no mixing is possible and nothing
// is reported.
type typedClean struct{ c atomic.Int64 }

func useTyped(t *typedClean) int64 {
	t.c.Add(1)
	return t.c.Load()
}

var _ = worker
var _ = monitor
var _ = bump
var _ = readTotal
var _ = localMix
var _ = useTyped
