// Package framework is the in-tree skeleton under nomadlint's
// analyzers: the Analyzer/Pass/Diagnostic trio of
// golang.org/x/tools/go/analysis, reduced to what this module needs
// and built purely on the standard library (go/ast, go/types and the
// gc export-data importer), so the lint suite carries no dependency
// the toolchain does not already ship.
//
// It deliberately mirrors the upstream API shape — an Analyzer has a
// Name, a Doc and a Run(*Pass) error — so the analyzers port to the
// real framework mechanically if x/tools ever enters the module. The
// one structural difference is scope: a Pass here sees every package
// under analysis at once (Pass.Pkgs), because the invariants nomadlint
// enforces are module-wide (a field written atomically in
// internal/core and read plainly in internal/train is exactly the bug
// atomicmix exists for), and the upstream Facts machinery would be the
// heaviest part of the framework to reimplement for no extra power at
// this module's size.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker: a name for diagnostics
// and -run filters, documentation, and the Run function applied to a
// fully loaded and type-checked set of packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the canonical import path ("nomad/internal/queue").
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// InModule reports whether the package belongs to the module under
	// analysis (true for everything nomadlint loads; false for
	// analysistest fixtures, which live in a testdata tree). noallochot
	// uses it to decide how to obtain compiler escape output.
	InModule bool
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Pass carries the loaded packages and the report sink into an
// analyzer's Run.
type Pass struct {
	Fset *token.FileSet
	// Pkgs are the packages under analysis (module-wide; dependencies
	// outside the analyzed set appear only through type information).
	Pkgs []*Package

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report reports a pre-built finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Run applies each analyzer to the loaded packages and returns every
// diagnostic, sorted by position then analyzer name. An analyzer
// returning an error aborts the run: analyzer errors are broken
// tooling, not findings, and must not be mistaken for a clean pass.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset: fset,
			Pkgs: pkgs,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
