package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Load enumerates and type-checks the packages matching patterns
// (run from dir, which must lie inside the module), returning one
// Package per match. It shells out to `go list -deps -export -json`,
// so dependencies — the standard library included — are imported from
// compiler export data rather than re-type-checked, exactly how the
// compiler itself sees them; only the matched packages are parsed
// from source, with comments, which is what the analyzers need (the
// //nomad: directive grammar lives in comments).
//
// Test files are not loaded: nomadlint checks the invariants of the
// shipping code, and the monitor-style post-join reads that pervade
// tests would drown the atomicmix signal in suppressions.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			InModule:   true,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return fset, pkgs, nil
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -deps -export -json` over patterns.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// StdExports maps every standard-library import path to its export
// file via one `go list -export std` (served from the build cache
// after the first run). The analysistest harness resolves fixture
// stdlib imports through it.
func StdExports(dir string) (map[string]string, error) {
	listed, err := goList(dir, []string{"std"})
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			m[lp.ImportPath] = lp.Export
		}
	}
	return m, nil
}

// NewExportImporter returns a go/types importer resolving import
// paths through the given path → export-file map.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return exportImporter(fset, exports)
}

// exportImporter returns a go/types importer resolving import paths
// through the export files produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &unsafeAwareImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

// unsafeAwareImporter resolves "unsafe" to types.Unsafe (it has no
// export data) and everything else through the gc importer.
type unsafeAwareImporter struct {
	gc types.Importer
}

func (i *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}
