package framework

import (
	"testing"
)

// TestLoadTypeChecks loads a real module package through the go list
// + export-data pipeline and checks the analyzers' inputs are all
// populated: comments survive parsing (the directive grammar lives
// there) and identifier uses resolve through imported dependencies.
func TestLoadTypeChecks(t *testing.T) {
	fset, pkgs, err := Load(".", []string{"nomad/internal/queue"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "nomad/internal/queue" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if !p.InModule {
		t.Error("InModule = false, want true for a module package")
	}
	if p.Types == nil || p.Types.Scope().Lookup("Mesh") == nil {
		t.Error("type information missing: no Mesh in package scope")
	}
	if len(p.Info.Uses) == 0 {
		t.Error("Info.Uses is empty")
	}
	comments := 0
	for _, f := range p.Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Error("no comments parsed; directives would be invisible")
	}
	if fset == nil {
		t.Error("nil fset")
	}
}

// TestLoadMultiplePackages checks that packages depending on each
// other load side by side, deps resolved via export data.
func TestLoadMultiplePackages(t *testing.T) {
	_, pkgs, err := Load(".", []string{"nomad/internal/cluster", "nomad/internal/netlink"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

// TestLoadBadPattern checks that an unmatched pattern is an error,
// not a silent empty pass.
func TestLoadBadPattern(t *testing.T) {
	if _, _, err := Load(".", []string{"nomad/internal/nosuchpkg"}); err == nil {
		t.Fatal("want error for unknown package")
	}
}
