// Package analysistest runs nomadlint analyzers over golden-file
// fixture packages, in the mould of
// golang.org/x/tools/go/analysis/analysistest: fixtures live under
// testdata/src/<path>, and every line that should produce a finding
// carries a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment. The runner fails the test when a diagnostic appears with
// no matching want on its line, and when a want matches no
// diagnostic — so each analyzer's test demonstrates both the caught
// violation and the clean code it must stay silent on.
//
// Fixture packages are parsed and type-checked from source. Imports
// resolve first against sibling fixture packages under testdata/src
// (so fixtures can model nomad's own packages — a stub
// nomad/internal/cluster with the real ownership API — without
// depending on the shipping code), then against the standard
// library via compiler export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"nomad/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads the fixture packages at testdata/src/<path> for each path
// and applies the analyzer to all of them in one pass, then matches
// the diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	fset, pkgs, err := loadFixtures(testdata, paths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := framework.Run(fset, pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, pkgs, diags)
}

// RunExpect is Run for analyzers whose diagnostics land on
// comment-only lines (the directive grammar checks), where a
// trailing want comment cannot coexist with the directive under
// test. Expectations map "file.go:line" (file base name) to a regexp
// the diagnostic on that line must match; every diagnostic must be
// expected and every expectation must fire.
func RunExpect(t *testing.T, testdata string, a *framework.Analyzer, path string, expects map[string]string) {
	t.Helper()
	fset, pkgs, err := loadFixtures(testdata, []string{path})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := framework.Run(fset, pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	matched := make(map[string]bool, len(expects))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		pat, ok := expects[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("expectation %s: bad regexp %q: %v", key, pat, err)
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match expectation %q", pos, d.Message, pat)
			continue
		}
		matched[key] = true
	}
	for key, pat := range expects {
		if !matched[key] {
			t.Errorf("%s: expected a diagnostic matching %q, got none", key, pat)
		}
	}
}

// want is one expectation: a line that must produce a diagnostic
// matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants matches diagnostics against the fixtures' want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filename := fset.Position(f.Pos()).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", fset.Position(c.Pos()), err)
					}
					line := fset.Position(c.Pos()).Line
					for _, re := range ws {
						wants = append(wants, &want{file: filename, line: line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the regexps of a `// want "..." ...` comment.
// Comments without the want marker yield nil.
func parseWants(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var res []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		lit, tail, err := cutStringLit(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment: %v", err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want pattern %q: %v", lit, err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(tail)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment with no pattern")
	}
	return res, nil
}

// cutStringLit splits one leading Go string literal (quoted or
// backquoted) off s.
func cutStringLit(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("expected string literal at %q", s)
	}
}

// loadFixtures parses and type-checks the named fixture packages plus
// every sibling fixture they import.
func loadFixtures(testdata string, paths []string) (*token.FileSet, []*framework.Package, error) {
	srcRoot := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset:    fset,
		srcRoot: srcRoot,
		cache:   make(map[string]*framework.Package),
	}
	var pkgs []*framework.Package
	for _, path := range paths {
		p, err := ld.load(path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// fixtureLoader type-checks fixture packages from source, memoized,
// with stdlib imports resolved through export data.
type fixtureLoader struct {
	fset    *token.FileSet
	srcRoot string
	cache   map[string]*framework.Package
	std     types.Importer
	loading []string // cycle detection
}

func (l *fixtureLoader) load(path string) (*framework.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	for _, active := range l.loading {
		if active == path {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	var files []*ast.File
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		if dirExists(filepath.Join(l.srcRoot, filepath.FromSlash(ipath))) {
			p, err := l.load(ipath)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.stdImport(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	p := &framework.Package{
		ImportPath: path,
		Dir:        dir,
		InModule:   false,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.cache[path] = p
	return p, nil
}

// stdImport resolves a standard-library import. The export-data
// importer over the whole standard library is built once, lazily.
func (l *fixtureLoader) stdImport(path string) (*types.Package, error) {
	if l.std == nil {
		exports, err := stdExports()
		if err != nil {
			return nil, err
		}
		l.std = framework.NewExportImporter(l.fset, exports)
	}
	return l.std.Import(path)
}

// stdExports caches the standard library's export-file map across
// fixture loaders in the test process (go list serves it from the
// build cache after the first call).
var stdExportsCache map[string]string

func stdExports() (map[string]string, error) {
	if stdExportsCache == nil {
		m, err := framework.StdExports(".")
		if err != nil {
			return nil, err
		}
		stdExportsCache = m
	}
	return stdExportsCache, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
