package metrics

import (
	"math"
	"testing"

	"nomad/internal/factor"
	"nomad/internal/sparse"
)

// rankFixture: 2 users, 4 items. The model scores items by index
// descending for user 0 (item 0 best) and ascending for user 1.
func rankFixture(t *testing.T) (*factor.Model, *sparse.Matrix) {
	t.Helper()
	md := factor.New(2, 4, 1)
	copy(md.UserRow(0), []float64{1})
	copy(md.UserRow(1), []float64{-1})
	for j := 0; j < 4; j++ {
		copy(md.ItemRow(j), []float64{float64(3 - j)}) // scores 3,2,1,0 for user 0
	}
	train, err := sparse.FromEntries(2, 4, []sparse.Entry{
		{Row: 0, Col: 3, Val: 5}, // user 0 already rated item 3
	})
	if err != nil {
		t.Fatal(err)
	}
	return md, train
}

func TestRankingPerfectTop1(t *testing.T) {
	md, train := rankFixture(t)
	// User 0's relevant held-out item is item 0, which the model ranks
	// first among unrated items → precision@1 = recall@1 = ndcg@1 = 1.
	test := []sparse.Entry{{Row: 0, Col: 0, Val: 5}}
	rep := Ranking(md, train, test, 1, 4.0)
	if rep.Users != 1 || rep.PrecisionK != 1 || rep.RecallK != 1 || rep.NDCGK != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRankingMissAtK1(t *testing.T) {
	md, train := rankFixture(t)
	// Relevant item 2 is ranked third for user 0 → top-1 misses it.
	test := []sparse.Entry{{Row: 0, Col: 2, Val: 5}}
	rep := Ranking(md, train, test, 1, 4.0)
	if rep.PrecisionK != 0 || rep.RecallK != 0 || rep.NDCGK != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// At k=3 it is found, at rank 3: precision 1/3, recall 1, ndcg 1/log2(4).
	rep = Ranking(md, train, test, 3, 4.0)
	if math.Abs(rep.PrecisionK-1.0/3) > 1e-12 || rep.RecallK != 1 {
		t.Fatalf("report@3 = %+v", rep)
	}
	wantNDCG := (1 / math.Log2(4)) / 1
	if math.Abs(rep.NDCGK-wantNDCG) > 1e-12 {
		t.Fatalf("ndcg = %v, want %v", rep.NDCGK, wantNDCG)
	}
}

func TestRankingExcludesTrainedItems(t *testing.T) {
	md, train := rankFixture(t)
	// Item 3 is in user 0's training row; even though its test rating
	// is relevant it cannot appear among candidates, so the user's
	// only relevant candidate is unreachable → recall 0.
	test := []sparse.Entry{{Row: 0, Col: 3, Val: 5}}
	rep := Ranking(md, train, test, 4, 4.0)
	if rep.RecallK != 0 {
		t.Fatalf("trained item leaked into ranking: %+v", rep)
	}
}

func TestRankingSkipsUsersWithoutRelevantItems(t *testing.T) {
	md, train := rankFixture(t)
	test := []sparse.Entry{{Row: 1, Col: 0, Val: 1}} // below threshold
	rep := Ranking(md, train, test, 2, 4.0)
	if rep.Users != 0 {
		t.Fatalf("irrelevant user evaluated: %+v", rep)
	}
}

func TestRankingMultipleUsersAveraged(t *testing.T) {
	md, train := rankFixture(t)
	// User 0: relevant item 0, ranked 1st → precision@1 = 1.
	// User 1: model ranks item 3 first (score ascending); relevant
	// item 0 is ranked last → precision@1 = 0.
	test := []sparse.Entry{
		{Row: 0, Col: 0, Val: 5},
		{Row: 1, Col: 0, Val: 5},
	}
	rep := Ranking(md, train, test, 1, 4.0)
	if rep.Users != 2 || math.Abs(rep.PrecisionK-0.5) > 1e-12 {
		t.Fatalf("averaged report = %+v", rep)
	}
}

func TestRankingDefaultK(t *testing.T) {
	md, train := rankFixture(t)
	test := []sparse.Entry{{Row: 0, Col: 0, Val: 5}}
	rep := Ranking(md, train, test, 0, 4.0)
	if rep.K != 10 {
		t.Fatalf("default K = %d", rep.K)
	}
}
