package metrics

import (
	"math"
	"strings"
	"testing"

	"nomad/internal/factor"
	"nomad/internal/sparse"
)

func exactModel(t *testing.T) (*factor.Model, []sparse.Entry) {
	t.Helper()
	md := factor.New(2, 2, 2)
	copy(md.UserRow(0), []float64{1, 0})
	copy(md.UserRow(1), []float64{0, 1})
	copy(md.ItemRow(0), []float64{2, 0})
	copy(md.ItemRow(1), []float64{0, 3})
	test := []sparse.Entry{
		{Row: 0, Col: 0, Val: 2}, // predicted exactly
		{Row: 1, Col: 1, Val: 3}, // predicted exactly
	}
	return md, test
}

func TestRMSEZeroForExactModel(t *testing.T) {
	md, test := exactModel(t)
	if got := RMSE(md, test); got != 0 {
		t.Fatalf("RMSE = %v, want 0", got)
	}
}

func TestRMSEKnownValue(t *testing.T) {
	md, _ := exactModel(t)
	test := []sparse.Entry{
		{Row: 0, Col: 0, Val: 4}, // error 2
		{Row: 1, Col: 1, Val: 3}, // error 0
	}
	want := math.Sqrt((4.0 + 0.0) / 2.0)
	if got := RMSE(md, test); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestRMSEEmptyTestSet(t *testing.T) {
	md, _ := exactModel(t)
	if got := RMSE(md, nil); !math.IsNaN(got) {
		t.Fatalf("RMSE on empty set = %v, want NaN", got)
	}
}

func TestRMSELargeParallelMatchesSerial(t *testing.T) {
	md := factor.NewInit(100, 50, 8, 3)
	var test []sparse.Entry
	for i := 0; i < 100; i++ {
		for j := 0; j < 50; j += 7 {
			test = append(test, sparse.Entry{Row: int32(i), Col: int32(j), Val: 1.0})
		}
	}
	var serial float64
	for _, e := range test {
		d := e.Val - md.Predict(int(e.Row), int(e.Col))
		serial += d * d
	}
	serial = math.Sqrt(serial / float64(len(test)))
	if got := RMSE(md, test); math.Abs(got-serial) > 1e-12 {
		t.Fatalf("parallel RMSE %v != serial %v", got, serial)
	}
}

func TestObjectiveHandComputed(t *testing.T) {
	md, _ := exactModel(t)
	train, err := sparse.FromEntries(2, 2, []sparse.Entry{
		{Row: 0, Col: 0, Val: 3}, // error 1
	})
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.5
	// J = 1/2 [ (3-2)^2 + 0.5*(|w0|^2 + |h0|^2) ] = 1/2 [1 + 0.5*(1+4)]
	want := 0.5 * (1 + 0.5*5)
	if got := Objective(md, train, lambda); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Objective = %v, want %v", got, want)
	}
}

func TestObjectiveNonNegative(t *testing.T) {
	md := factor.NewInit(30, 20, 4, 9)
	b := sparse.NewBuilder(30, 20, 0)
	for i := 0; i < 30; i++ {
		b.Add(i, i%20, float64(i%5))
	}
	train, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := Objective(md, train, 0.1); got < 0 {
		t.Fatalf("Objective negative: %v", got)
	}
}

func TestMAE(t *testing.T) {
	md, _ := exactModel(t)
	test := []sparse.Entry{
		{Row: 0, Col: 0, Val: 4}, // abs error 2
		{Row: 1, Col: 1, Val: 2}, // abs error 1
	}
	if got := MAE(md, test); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("MAE = %v, want 1.5", got)
	}
	if !math.IsNaN(MAE(md, nil)) {
		t.Fatal("MAE on empty set should be NaN")
	}
}

func TestTraceFinalBest(t *testing.T) {
	var tr Trace
	if !math.IsNaN(tr.Final().RMSE) || !math.IsNaN(tr.Best().RMSE) {
		t.Fatal("empty trace should report NaN")
	}
	tr.Add(1, 100, 0.95)
	tr.Add(2, 200, 0.91)
	tr.Add(3, 300, 0.93)
	if tr.Final().RMSE != 0.93 {
		t.Fatalf("Final = %+v", tr.Final())
	}
	if tr.Best().RMSE != 0.91 || tr.Best().Seconds != 2 {
		t.Fatalf("Best = %+v", tr.Best())
	}
}

func TestTraceTimeToRMSE(t *testing.T) {
	var tr Trace
	tr.Add(1, 0, 0.95)
	tr.Add(2, 0, 0.92)
	tr.Add(3, 0, 0.90)
	if s, ok := tr.TimeToRMSE(0.92); !ok || s != 2 {
		t.Fatalf("TimeToRMSE(0.92) = %v,%v", s, ok)
	}
	if _, ok := tr.TimeToRMSE(0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestTraceWriteTSV(t *testing.T) {
	var tr Trace
	tr.Add(1.5, 10, 0.9)
	var sb strings.Builder
	if err := tr.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "1.500\t10\t0.900000\n" {
		t.Fatalf("TSV = %q", sb.String())
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Updates: 1000, Seconds: 2, Workers: 5}
	if got := tp.PerWorkerPerSec(); got != 100 {
		t.Fatalf("PerWorkerPerSec = %v, want 100", got)
	}
	if (Throughput{}).PerWorkerPerSec() != 0 {
		t.Fatal("zero throughput should be 0")
	}
}
