// Package metrics evaluates matrix-completion models: test RMSE (the
// paper's comparison metric, §5.1), the regularized training objective
// J(W,H) of eq. (1) (used by the bold-driver schedule), and time-series
// traces of RMSE versus wall-clock time and update count, which are the
// axes of every convergence figure in the paper.
package metrics

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"nomad/internal/factor"
	"nomad/internal/sparse"
	"nomad/internal/vecmath"
)

// RMSE returns the root-mean-square error of the model on the given
// rating entries, computed in parallel. It returns NaN for an empty
// test set.
func RMSE(md *factor.Model, test []sparse.Entry) float64 {
	if len(test) == 0 {
		return math.NaN()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(test) {
		workers = 1
	}
	f32 := md.Precision() == factor.Float32
	// Specialized prediction kernel, chosen once. The float32 path
	// predicts with float32 accumulation — the same arithmetic its
	// training kernels use — and only the squared-error sum is float64.
	var dot vecmath.DotFunc
	var dot32 vecmath.DotFunc32
	if f32 {
		dot32 = vecmath.DotKernel32(md.K)
	} else {
		dot = vecmath.DotKernel(md.K)
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(test) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(test) {
			hi = len(test)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for _, e := range test[lo:hi] {
				var pred float64
				if f32 {
					pred = float64(dot32(md.UserRow32(int(e.Row)), md.ItemRow32(int(e.Col))))
				} else {
					pred = dot(md.UserRow(int(e.Row)), md.ItemRow(int(e.Col)))
				}
				d := e.Val - pred
				s += d * d
			}
			partials[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range partials {
		total += p
	}
	return math.Sqrt(total / float64(len(test)))
}

// Objective returns the regularized training objective of paper
// eq. (1) in its simplified per-rating form:
//
//	J(W,H) = ½ Σ_{(i,j)∈Ω} [ (A_ij − ⟨wᵢ,hⱼ⟩)² + λ(‖wᵢ‖² + ‖hⱼ‖²) ]
//
// which is exactly the weighted-regularization objective because each
// row's regularizer is counted once per rating.
func Objective(md *factor.Model, train *sparse.Matrix, lambda float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	rows := train.Rows()
	if workers > rows {
		workers = 1
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			if md.Precision() == factor.Float32 {
				// Norms accumulate in float64 (Norm2Sq32) — the objective
				// is a global sum and should not inherit the row kernels'
				// float32 accumulation error.
				dot := vecmath.DotKernel32(md.K)
				for i := lo; i < hi; i++ {
					wRow := md.UserRow32(i)
					wNorm := vecmath.Norm2Sq32(wRow)
					cols, vals := train.Row(i)
					for x, j := range cols {
						d := vals[x] - float64(dot(wRow, md.ItemRow32(int(j))))
						s += d*d + lambda*(wNorm+vecmath.Norm2Sq32(md.ItemRow32(int(j))))
					}
				}
			} else {
				dot := vecmath.DotKernel(md.K)
				for i := lo; i < hi; i++ {
					wRow := md.UserRow(i)
					wNorm := vecmath.Norm2Sq(wRow)
					cols, vals := train.Row(i)
					for x, j := range cols {
						d := vals[x] - dot(wRow, md.ItemRow(int(j)))
						s += d*d + lambda*(wNorm+vecmath.Norm2Sq(md.ItemRow(int(j))))
					}
				}
			}
			partials[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range partials {
		total += p
	}
	return total / 2
}

// MAE returns the mean absolute error on the test entries.
func MAE(md *factor.Model, test []sparse.Entry) float64 {
	if len(test) == 0 {
		return math.NaN()
	}
	var s float64
	for _, e := range test {
		s += math.Abs(e.Val - md.Predict(int(e.Row), int(e.Col)))
	}
	return s / float64(len(test))
}

// Point is one sample of a convergence trace.
type Point struct {
	Seconds float64 // wall-clock seconds since the run started
	Updates int64   // cumulative SGD updates (or equivalent work unit)
	RMSE    float64 // test RMSE at that moment
}

// Trace is a convergence time series. The zero value is ready to use.
// Trace is not safe for concurrent mutation; algorithms record from a
// single monitor goroutine.
type Trace struct {
	Points []Point
}

// Add appends a sample.
func (t *Trace) Add(seconds float64, updates int64, rmse float64) {
	t.Points = append(t.Points, Point{Seconds: seconds, Updates: updates, RMSE: rmse})
}

// Final returns the last sample, or a zero Point if empty.
func (t *Trace) Final() Point {
	if len(t.Points) == 0 {
		return Point{RMSE: math.NaN()}
	}
	return t.Points[len(t.Points)-1]
}

// Best returns the sample with the lowest RMSE, or a zero Point if empty.
func (t *Trace) Best() Point {
	if len(t.Points) == 0 {
		return Point{RMSE: math.NaN()}
	}
	best := t.Points[0]
	for _, p := range t.Points[1:] {
		if p.RMSE < best.RMSE {
			best = p
		}
	}
	return best
}

// TimeToRMSE returns the first wall-clock time at which the trace
// reached or beat the target RMSE, and whether it ever did. This is the
// "time to quality" summary used when comparing solvers.
func (t *Trace) TimeToRMSE(target float64) (float64, bool) {
	for _, p := range t.Points {
		if p.RMSE <= target {
			return p.Seconds, true
		}
	}
	return 0, false
}

// WriteTSV writes the trace as "seconds<tab>updates<tab>rmse" lines.
func (t *Trace) WriteTSV(w io.Writer) error {
	for _, p := range t.Points {
		if _, err := fmt.Fprintf(w, "%.3f\t%d\t%.6f\n", p.Seconds, p.Updates, p.RMSE); err != nil {
			return err
		}
	}
	return nil
}

// Throughput summarizes update rates for the scaling figures (6, 10, 16).
type Throughput struct {
	Updates float64 // total updates performed
	Seconds float64 // wall-clock duration
	Workers int     // worker threads (cores × machines)
}

// PerWorkerPerSec returns updates per worker per second, the y-axis of
// the paper's throughput plots.
func (tp Throughput) PerWorkerPerSec() float64 {
	if tp.Seconds == 0 || tp.Workers == 0 {
		return 0
	}
	return tp.Updates / tp.Seconds / float64(tp.Workers)
}
