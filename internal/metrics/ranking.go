package metrics

import (
	"math"
	"sort"

	"nomad/internal/factor"
	"nomad/internal/sparse"
)

// RankingReport summarizes top-N recommendation quality on a test set:
// for each test user, the model ranks the items it was not trained on,
// and the user's held-out highly rated items count as relevant.
type RankingReport struct {
	Users      int     // test users evaluated
	PrecisionK float64 // mean fraction of top-K that is relevant
	RecallK    float64 // mean fraction of relevant items found in top-K
	NDCGK      float64 // mean normalized discounted cumulative gain
	K          int
}

// Ranking evaluates top-K recommendation quality. An item is relevant
// to a user if their held-out test rating for it is at least relevant
// (e.g. 4.0 on a 5-star scale, or 0 for centered data). Items in the
// user's training row are excluded from the candidate list, mirroring
// deployment. Users with no relevant test items are skipped.
func Ranking(md *factor.Model, train *sparse.Matrix, test []sparse.Entry, k int, relevant float64) RankingReport {
	if k <= 0 {
		k = 10
	}
	// Group relevant test items per user.
	relevantBy := make(map[int32][]int32)
	for _, e := range test {
		if e.Val >= relevant {
			relevantBy[e.Row] = append(relevantBy[e.Row], e.Col)
		}
	}
	rep := RankingReport{K: k}
	type scored struct {
		item  int32
		score float64
	}
	candidates := make([]scored, 0, md.N)
	for user, rel := range relevantBy {
		// Rank all items the user has not rated in training.
		candidates = candidates[:0]
		trainCols, _ := train.Row(int(user))
		rated := make(map[int32]bool, len(trainCols))
		for _, j := range trainCols {
			rated[j] = true
		}
		for j := 0; j < md.N; j++ {
			if rated[int32(j)] {
				continue
			}
			candidates = append(candidates, scored{item: int32(j), score: md.Predict(int(user), j)})
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].score != candidates[b].score {
				return candidates[a].score > candidates[b].score
			}
			return candidates[a].item < candidates[b].item
		})
		top := candidates
		if len(top) > k {
			top = top[:k]
		}
		relSet := make(map[int32]bool, len(rel))
		for _, j := range rel {
			relSet[j] = true
		}
		hits := 0
		var dcg float64
		for rank, c := range top {
			if relSet[c.item] {
				hits++
				dcg += 1 / math.Log2(float64(rank)+2)
			}
		}
		var idcg float64
		ideal := len(rel)
		if ideal > k {
			ideal = k
		}
		for rank := 0; rank < ideal; rank++ {
			idcg += 1 / math.Log2(float64(rank)+2)
		}
		rep.Users++
		rep.PrecisionK += float64(hits) / float64(len(top))
		rep.RecallK += float64(hits) / float64(len(rel))
		if idcg > 0 {
			rep.NDCGK += dcg / idcg
		}
	}
	if rep.Users > 0 {
		rep.PrecisionK /= float64(rep.Users)
		rep.RecallK /= float64(rep.Users)
		rep.NDCGK /= float64(rep.Users)
	}
	return rep
}
