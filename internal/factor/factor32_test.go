package factor

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestFloat32InitIsNarrowedFloat64Init(t *testing.T) {
	md64 := NewInitP(7, 5, 8, 42, Float64)
	md32 := NewInitP(7, 5, 8, 42, Float32)
	if md32.Precision() != Float32 || md64.Precision() != Float64 {
		t.Fatal("precision not recorded")
	}
	for i := 0; i < md64.M; i++ {
		r64, r32 := md64.UserRow(i), md32.UserRow32(i)
		for l := range r64 {
			if r32[l] != float32(r64[l]) {
				t.Fatalf("w[%d][%d]: float32 init %v != narrowed float64 %v", i, l, r32[l], float32(r64[l]))
			}
		}
	}
	for j := 0; j < md64.N; j++ {
		r64, r32 := md64.ItemRow(j), md32.ItemRow32(j)
		for l := range r64 {
			if r32[l] != float32(r64[l]) {
				t.Fatalf("h[%d][%d] mismatch", j, l)
			}
		}
	}
}

func TestPrecisionMismatchPanics(t *testing.T) {
	md64 := New(3, 3, 4)
	md32 := NewP(3, 3, 4, Float32)
	for name, fn := range map[string]func(){
		"UserRow32 on f64": func() { md64.UserRow32(0) },
		"ItemRow32 on f64": func() { md64.ItemRow32(0) },
		"WData32 on f64":   func() { md64.WData32() },
		"HData32 on f64":   func() { md64.HData32() },
		"UserRow on f32":   func() { md32.UserRow(0) },
		"ItemRow on f32":   func() { md32.ItemRow(0) },
		"WData on f32":     func() { md32.WData() },
		"HData on f32":     func() { md32.HData() },
		"CopyFrom mixed":   func() { md64.CopyFrom(md32.Convert(Float64).Convert(Float32)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFloat32RowConversions(t *testing.T) {
	md := NewInitP(4, 6, 8, 9, Float32)
	buf := make([]float64, md.K)
	md.CopyItemRowTo64(2, buf)
	for l, v := range md.ItemRow32(2) {
		if buf[l] != float64(v) {
			t.Fatalf("CopyItemRowTo64 elem %d: %v != %v", l, buf[l], v)
		}
	}
	for l := range buf {
		buf[l] *= 1.5
	}
	md.SetItemRowFrom64(2, buf)
	for l, v := range md.ItemRow32(2) {
		if v != float32(buf[l]) {
			t.Fatalf("SetItemRowFrom64 elem %d: %v != %v", l, v, float32(buf[l]))
		}
	}

	// On a Float64 model the pair is plain copies.
	md64 := NewInit(4, 6, 8, 9)
	md64.CopyItemRowTo64(1, buf)
	for l, v := range md64.ItemRow(1) {
		if buf[l] != v {
			t.Fatalf("f64 CopyItemRowTo64 elem %d differs", l)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	md32 := NewInitP(5, 4, 8, 3, Float32)
	// f32 → f64 → f32 is exact: widening is exact and narrowing a
	// widened value restores it.
	back := md32.Convert(Float64).Convert(Float32)
	for i := 0; i < md32.M; i++ {
		a, b := md32.UserRow32(i), back.UserRow32(i)
		for l := range a {
			if a[l] != b[l] {
				t.Fatalf("convert round trip changed w[%d][%d]", i, l)
			}
		}
	}
}

func TestBinaryRoundTripFloat32(t *testing.T) {
	md := NewInitP(6, 9, 16, 77, Float32)
	var buf bytes.Buffer
	if err := md.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	wantLen := 32 + 4*(md.M*md.K+md.N*md.K) // header + float32 payload
	if buf.Len() != wantLen {
		t.Fatalf("float32 encoding is %d bytes, want %d", buf.Len(), wantLen)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision() != Float32 {
		t.Fatalf("round trip lost precision: %v", got.Precision())
	}
	if got.M != md.M || got.N != md.N || got.K != md.K {
		t.Fatalf("shape changed: %dx%dx%d", got.M, got.N, got.K)
	}
	for i := range md.WData32() {
		if md.WData32()[i] != got.WData32()[i] {
			t.Fatalf("w[%d] changed in round trip", i)
		}
	}
	for i := range md.HData32() {
		if md.HData32()[i] != got.HData32()[i] {
			t.Fatalf("h[%d] changed in round trip", i)
		}
	}
}

// TestBinaryBackCompatZeroReserved: models written before precision
// existed carried a reserved zero uint32 where Prec now lives — they
// must read back as Float64, and Float64 models written today must
// keep writing zero there.
func TestBinaryBackCompatZeroReserved(t *testing.T) {
	md := NewInit(3, 2, 4, 5)
	var buf bytes.Buffer
	if err := md.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if prec := binary.LittleEndian.Uint32(raw[4:8]); prec != 0 {
		t.Fatalf("Float64 model wrote Prec=%d, want 0", prec)
	}
	got, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision() != Float64 {
		t.Fatalf("zero reserved field read as %v", got.Precision())
	}
}

func TestReadBinaryRejectsUnknownPrecision(t *testing.T) {
	md := NewInit(3, 2, 4, 5)
	var buf bytes.Buffer
	if err := md.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[4:8], 7)
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for unknown precision")
	}
}

func TestPredictFloat32(t *testing.T) {
	md := NewP(2, 2, 4, Float32)
	copy(md.UserRow32(0), []float32{1, 2, 3, 4})
	copy(md.ItemRow32(1), []float32{0.5, 0.25, 1, 2})
	want := float64(float32(1*0.5 + 2*0.25 + 3*1 + 4*2))
	if got := md.Predict(0, 1); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}
