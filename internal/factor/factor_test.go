package factor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	md := New(5, 3, 4)
	if len(md.WData()) != 20 || len(md.HData()) != 12 {
		t.Fatalf("W/H lengths = %d/%d", len(md.WData()), len(md.HData()))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		d := dims
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", d)
				}
			}()
			New(d[0], d[1], d[2])
		}()
	}
}

func TestInitRange(t *testing.T) {
	k := 16
	md := NewInit(10, 10, k, 7)
	hi := 1 / math.Sqrt(float64(k))
	for _, v := range md.WData() {
		if v < 0 || v >= hi {
			t.Fatalf("W init %v out of [0, %v)", v, hi)
		}
	}
	for _, v := range md.HData() {
		if v < 0 || v >= hi {
			t.Fatalf("H init %v out of [0, %v)", v, hi)
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	a := NewInit(6, 4, 3, 99)
	b := NewInit(6, 4, 3, 99)
	for i := range a.WData() {
		if a.WData()[i] != b.WData()[i] {
			t.Fatal("same seed produced different W")
		}
	}
}

func TestRowsAliasStorage(t *testing.T) {
	md := New(3, 3, 2)
	md.UserRow(1)[0] = 42
	if md.WData()[2] != 42 {
		t.Fatal("UserRow does not alias WData")
	}
	md.ItemRow(2)[1] = 7
	if md.HData()[5] != 7 {
		t.Fatal("ItemRow does not alias HData")
	}
}

func TestPredict(t *testing.T) {
	md := New(2, 2, 2)
	copy(md.UserRow(0), []float64{1, 2})
	copy(md.ItemRow(1), []float64{3, 4})
	if got := md.Predict(0, 1); got != 11 {
		t.Fatalf("Predict = %v, want 11", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewInit(4, 4, 2, 1)
	b := a.Clone()
	b.UserRow(0)[0] = 1e9
	if a.UserRow(0)[0] == 1e9 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewInit(4, 4, 2, 1)
	b := New(4, 4, 2)
	b.CopyFrom(a)
	for i := range a.WData() {
		if a.WData()[i] != b.WData()[i] {
			t.Fatal("CopyFrom missed W data")
		}
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 2).CopyFrom(New(3, 2, 2))
}

func TestBinaryRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		md := NewInit(3+int(seed%5), 2+int(seed%7), 1+int(seed%4), seed)
		var buf bytes.Buffer
		if err := md.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.M != md.M || got.N != md.N || got.K != md.K {
			return false
		}
		for i := range md.WData() {
			if got.WData()[i] != md.WData()[i] {
				return false
			}
		}
		for i := range md.HData() {
			if got.HData()[i] != md.HData()[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("garbage here not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
